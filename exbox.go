package exbox

import (
	"io"
	"math/rand"

	"exbox/internal/apps"
	"exbox/internal/baseline"
	"exbox/internal/classifier"
	"exbox/internal/eval"
	"exbox/internal/exboxcore"
	"exbox/internal/excr"
	"exbox/internal/iqx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
	"exbox/internal/qoe"
	"exbox/internal/testbed"
	"exbox/internal/traffic"
)

// Domain model (internal/excr).
type (
	// AppClass identifies an application class (web, streaming,
	// conferencing).
	AppClass = excr.AppClass
	// SNRLevel is a discretized wireless channel-quality bin.
	SNRLevel = excr.SNRLevel
	// Space fixes the traffic-matrix dimensionality: classes × levels.
	Space = excr.Space
	// Matrix is a traffic matrix <a_{1,1} … a_{k,r}>.
	Matrix = excr.Matrix
	// Arrival is a new flow offered to a cell carrying Matrix.
	Arrival = excr.Arrival
	// Sample is a labeled (X_m, Y_m) training tuple.
	Sample = excr.Sample
	// Region is an Experiential Capacity Region predicate.
	Region = excr.Region
)

// Application classes and SNR levels used across the evaluation.
const (
	Web          = excr.Web
	Streaming    = excr.Streaming
	Conferencing = excr.Conferencing
	SNRLow       = excr.SNRLow
	SNRHigh      = excr.SNRHigh
)

// Default traffic-matrix spaces.
var (
	// DefaultSpace is 3 application classes × 1 SNR level (the paper's
	// testbed setting).
	DefaultSpace = excr.DefaultSpace
	// MixedSNRSpace is 3 classes × 2 SNR levels (Section 6.3).
	MixedSNRSpace = excr.MixedSNRSpace
)

// NewMatrix returns the all-zero traffic matrix over the space.
func NewMatrix(s Space) Matrix { return excr.NewMatrix(s) }

// Admission control (internal/classifier, internal/baseline).
type (
	// AdmittanceClassifier is ExBox's online SVM learner.
	AdmittanceClassifier = classifier.AdmittanceClassifier
	// ClassifierConfig holds Admittance Classifier hyperparameters.
	ClassifierConfig = classifier.Config
	// Decision is one admission decision with its SVM margin/depth.
	Decision = classifier.Decision
	// Controller is the admission-control interface shared by ExBox
	// and the baselines.
	Controller = classifier.Controller
	// RateBased is the purely rate-driven commercial baseline.
	RateBased = baseline.RateBased
	// MaxClient is the flow-count baseline.
	MaxClient = baseline.MaxClient
)

// NewAdmittanceClassifier returns a fresh classifier (bootstrap phase)
// for the space.
func NewAdmittanceClassifier(s Space, cfg ClassifierConfig) *AdmittanceClassifier {
	return classifier.New(s, cfg)
}

// DefaultClassifierConfig returns the paper's WiFi-testbed
// configuration (RBF SVM, batch 20, 5-fold CV at 0.7).
func DefaultClassifierConfig() ClassifierConfig { return classifier.DefaultConfig() }

// NewRateBased returns a RateBased controller with provisioned
// capacity C in bits per second.
func NewRateBased(capacityBps float64) *RateBased { return baseline.NewRateBased(capacityBps) }

// NewMaxClient returns a MaxClient controller admitting up to max
// flows.
func NewMaxClient(max int) *MaxClient { return baseline.NewMaxClient(max) }

// The middlebox (internal/exboxcore).
type (
	// Middlebox is the ExBox gateway component.
	Middlebox = exboxcore.Middlebox
	// CellID names one access device.
	CellID = exboxcore.CellID
	// Policy selects what happens to inadmissible flows.
	Policy = exboxcore.Policy
	// Candidate pairs a cell with the arrival it would see.
	Candidate = exboxcore.Candidate
	// Outcome is a middlebox admission outcome.
	Outcome = exboxcore.Outcome
	// ActiveFlow describes an admitted flow for re-evaluation.
	ActiveFlow = exboxcore.ActiveFlow
)

// Inadmissible-flow policies.
const (
	Discontinue  = exboxcore.Discontinue
	Deprioritize = exboxcore.Deprioritize
)

// NewMiddlebox returns an empty middlebox for the space.
func NewMiddlebox(s Space, p Policy) *Middlebox { return exboxcore.New(s, p) }

// QoE machinery (internal/qoe, internal/iqx, internal/apps).
type (
	// QoEEstimator maps passive QoS to per-class QoE labels.
	QoEEstimator = qoe.Estimator
	// IQXModel is a fitted QoE = α + β·e^(−γ·QoS) relationship.
	IQXModel = iqx.Model
	// QoS is the passive per-flow measurement vector.
	QoS = metrics.QoS
	// GroundTruthQoE is one instrumented-app measurement.
	GroundTruthQoE = apps.QoE
	// Oracle labels traffic matrices with device-side ground truth.
	Oracle = apps.Oracle
)

// FitIQX fits the IQX hypothesis to paired (QoS, QoE) observations.
func FitIQX(qos, qoeVals []float64) (iqx.FitResult, error) { return iqx.Fit(qos, qoeVals) }

// TrainQoEEstimator runs the Figure 12 methodology on a testbed and
// fits one IQX model per class.
func TrainQoEEstimator(tb *Testbed, classes []AppClass, runs int) (*QoEEstimator, error) {
	return qoe.Train(tb, classes, runs)
}

// MeasureQoE returns the device-side ground-truth QoE for a flow of
// the class under the given QoS (rng adds measurement noise; nil for
// the noiseless model).
func MeasureQoE(class AppClass, q QoS, rng *rand.Rand) GroundTruthQoE {
	return apps.Measure(class, q, rng)
}

// Network substrates (internal/netsim, internal/testbed).
type (
	// Network evaluates the QoS of concurrent flows on a cell.
	Network = netsim.Network
	// FlowSpec describes one downlink flow.
	FlowSpec = netsim.FlowSpec
	// FluidWiFi is the closed-form 802.11 cell model.
	FluidWiFi = netsim.FluidWiFi
	// FluidLTE is the closed-form LTE cell model.
	FluidLTE = netsim.FluidLTE
	// PacketSim is the discrete-event packet-level cell model.
	PacketSim = netsim.PacketSim
	// Testbed emulates the paper's WiFi/LTE lab setups.
	Testbed = testbed.Testbed
	// Shaper applies tc/netem-style impairments to a Network.
	Shaper = testbed.Shaper
)

// Simulated-cell and testbed constructors.
var (
	// SimWiFiConfig is the ns-3-like 802.11n cell of Section 6.
	SimWiFiConfig = netsim.SimWiFi
	// SimLTEConfig is the ns-3-like LTE cell of Section 6.
	SimLTEConfig = netsim.SimLTE
	// TestbedWiFiConfig is the laptop-hosted hotspot cell.
	TestbedWiFiConfig = netsim.TestbedWiFi
	// TestbedLTEConfig is the E-40 small-cell configuration.
	TestbedLTEConfig = netsim.TestbedLTE
)

// Testbed kinds.
const (
	WiFiTestbed = testbed.WiFi
	LTETestbed  = testbed.LTE
)

// NewTestbed returns an emulated lab testbed.
func NewTestbed(kind testbed.Kind, seed int64) *Testbed { return testbed.New(kind, seed) }

// NewWiFiPacketSim returns the packet-level 802.11 simulator.
func NewWiFiPacketSim(seed int64) *PacketSim { return netsim.NewPacketSim(netsim.WiFiCell, seed) }

// NewLTEPacketSim returns the packet-level LTE simulator.
func NewLTEPacketSim(seed int64) *PacketSim { return netsim.NewPacketSim(netsim.LTECell, seed) }

// FlowsForMatrix expands a traffic matrix into per-flow specs.
func FlowsForMatrix(m Matrix) []FlowSpec { return netsim.FlowsForMatrix(m) }

// Workloads (internal/traffic).
type (
	// TrafficEvent is one flow arrival derived from a matrix sequence.
	TrafficEvent = traffic.Event
	// LiveLabConfig parameterizes the LiveLab-like workload generator.
	LiveLabConfig = traffic.LiveLabConfig
)

// RandomMatrices generates the paper's Random traffic scheme.
func RandomMatrices(rng *rand.Rand, n, perClassMax, maxTotal int, s Space) []Matrix {
	return traffic.Random(rng, n, perClassMax, maxTotal, s)
}

// LiveLabMatrices generates the LiveLab-like chronological workload.
func LiveLabMatrices(rng *rand.Rand, cfg LiveLabConfig) []Matrix {
	return traffic.LiveLab(rng, cfg)
}

// DefaultLiveLab returns the 34-user LiveLab-like configuration.
func DefaultLiveLab() LiveLabConfig { return traffic.DefaultLiveLab() }

// ArrivalEvents derives arrival events from a matrix sequence.
func ArrivalEvents(seq []Matrix, assignLevel func(AppClass) SNRLevel) []TrafficEvent {
	return traffic.Arrivals(seq, assignLevel)
}

// Experiments (internal/eval).
type (
	// Figure is a regenerated evaluation figure.
	Figure = eval.Figure
	// Heatmap is a regenerated heatmap figure.
	Heatmap = eval.Heatmap
	// Scale selects Quick (test) or Full (paper-size) experiments.
	Scale = eval.Scale
)

// Experiment scales.
const (
	Quick = eval.Quick
	Full  = eval.Full
)

// Experiment runners, one per figure of the paper.
var (
	Figure2  = eval.Figure2
	Figure3  = eval.Figure3
	Figure7  = eval.Figure7
	Figure8  = eval.Figure8
	Figure9  = eval.Figure9
	Figure10 = eval.Figure10
	Figure11 = eval.Figure11
	Figure12 = eval.Figure12
	Figure13 = eval.Figure13
	Figure14 = eval.Figure14
)

// Multi-flow applications and mobility (Section 4 extensions).
type (
	// AppFlow is one flow of a multi-flow application.
	AppFlow = exboxcore.AppFlow
	// AppRequest is an application (several flows, some dominant)
	// asking to join a cell; see Middlebox.AdmitApp.
	AppRequest = exboxcore.AppRequest
)

// Trace replay (the tcpreplay-into-simulator path).
type (
	// Trace is a synthetic or captured application packet trace.
	Trace = traffic.Trace
	// TracePacket is one packet of a Trace.
	TracePacket = traffic.Packet
	// ReplayFlow describes one flow of a replayed trace set.
	ReplayFlow = netsim.ReplayFlow
	// InjectedPacket is one externally supplied packet for replay.
	InjectedPacket = netsim.InjectedPacket
)

// SynthesizeTrace returns a class-typical packet trace (the stand-in
// for the paper's Skype/YouTube/BBC captures).
func SynthesizeTrace(class AppClass, durationSec float64, rng *rand.Rand) Trace {
	return traffic.Synthesize(class, durationSec, rng)
}

// ReadTrace decodes a trace serialized with Trace.WriteTo.
func ReadTrace(r io.Reader) (Trace, error) { return traffic.ReadTrace(r) }
