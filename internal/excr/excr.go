// Package excr defines the domain model for the Experiential Capacity
// Region (ExCR) introduced by the ExBox paper: application classes,
// SNR levels, traffic matrices <a_{1,1} … a_{k,r}>, flow arrivals, and
// labeled training samples for the Admittance Classifier.
//
// A traffic matrix counts the active flows per (application class, SNR
// level). The ExCR is the set of traffic matrices for which the
// network can satisfy every flow's QoE requirement simultaneously.
package excr

import (
	"fmt"
	"strconv"
	"strings"
)

// AppClass identifies one of the paper's application classes. The
// evaluation uses three (web browsing, video streaming, video
// conferencing); the Space abstraction keeps the rest of the code
// generic in the number of classes.
type AppClass int

// The three application classes used throughout the paper's
// evaluation.
const (
	Web AppClass = iota
	Streaming
	Conferencing
	NumAppClasses = 3
)

// String implements fmt.Stringer.
func (c AppClass) String() string {
	switch c {
	case Web:
		return "web"
	case Streaming:
		return "streaming"
	case Conferencing:
		return "conferencing"
	default:
		return fmt.Sprintf("class%d", int(c))
	}
}

// SNRLevel is a discretized wireless channel quality bin. The paper
// found two levels (low/high) sufficient; Space keeps r general.
type SNRLevel int

// The two SNR bins used in the paper's mixed-SNR experiments.
const (
	SNRLow SNRLevel = iota
	SNRHigh
	NumSNRLevels = 2
)

// String implements fmt.Stringer.
func (l SNRLevel) String() string {
	switch l {
	case SNRLow:
		return "low"
	case SNRHigh:
		return "high"
	default:
		return fmt.Sprintf("snr%d", int(l))
	}
}

// LevelForSNR bins a link SNR in dB into an SNRLevel using a single
// threshold, matching the paper's two-level split (≈23 dB low,
// ≈53 dB high in the ns-3 study; we split at 35 dB).
func LevelForSNR(db float64) SNRLevel {
	if db < 35 {
		return SNRLow
	}
	return SNRHigh
}

// Space fixes the dimensionality of the traffic-matrix universe:
// k application classes × r SNR levels.
type Space struct {
	Classes int // k
	Levels  int // r
}

// DefaultSpace is the paper's evaluation space: 3 application classes
// and a single (high) SNR level for the testbed experiments.
// Mixed-SNR simulations use MixedSNRSpace.
var DefaultSpace = Space{Classes: NumAppClasses, Levels: 1}

// MixedSNRSpace is the 3-class, 2-SNR-level space of Section 6.3.
var MixedSNRSpace = Space{Classes: NumAppClasses, Levels: 2}

// Dim returns k·r, the number of cells in a traffic matrix.
func (s Space) Dim() int { return s.Classes * s.Levels }

// Valid reports whether the space has at least one class and level.
func (s Space) Valid() bool { return s.Classes > 0 && s.Levels > 0 }

// CellIndex maps (class, level) to the flat class-major cell index —
// the position the cell occupies in Counts and in the Features vector.
// Batched scorers use it to dedup per-cell work. It panics when the
// coordinates fall outside the space.
func (s Space) CellIndex(c AppClass, l SNRLevel) int { return s.index(c, l) }

// index maps (class, level) to the flat cell index.
func (s Space) index(c AppClass, l SNRLevel) int {
	if int(c) < 0 || int(c) >= s.Classes || int(l) < 0 || int(l) >= s.Levels {
		panic(fmt.Sprintf("excr: (%v,%v) outside space %dx%d", c, l, s.Classes, s.Levels))
	}
	return int(c)*s.Levels + int(l)
}

// Matrix is a traffic matrix: the number of active flows per
// (application class, SNR level) cell. The zero value is unusable;
// construct with NewMatrix.
type Matrix struct {
	space  Space
	counts []int
}

// NewMatrix returns the all-zero traffic matrix over the space.
func NewMatrix(s Space) Matrix {
	if !s.Valid() {
		panic("excr: NewMatrix with invalid space")
	}
	return Matrix{space: s, counts: make([]int, s.Dim())}
}

// Space returns the matrix's space.
func (m Matrix) Space() Space { return m.space }

// Get returns the flow count in cell (c, l).
func (m Matrix) Get(c AppClass, l SNRLevel) int { return m.counts[m.space.index(c, l)] }

// Set returns a copy of m with cell (c, l) set to n (n >= 0).
func (m Matrix) Set(c AppClass, l SNRLevel, n int) Matrix {
	if n < 0 {
		panic("excr: negative flow count")
	}
	out := m.Clone()
	out.counts[m.space.index(c, l)] = n
	return out
}

// Inc returns a copy of m with one more flow in cell (c, l).
func (m Matrix) Inc(c AppClass, l SNRLevel) Matrix {
	out := m.Clone()
	out.counts[m.space.index(c, l)]++
	return out
}

// Dec returns a copy of m with one fewer flow in cell (c, l).
// It panics if the cell is already empty.
func (m Matrix) Dec(c AppClass, l SNRLevel) Matrix {
	i := m.space.index(c, l)
	if m.counts[i] == 0 {
		panic(fmt.Sprintf("excr: Dec on empty cell (%v,%v)", c, l))
	}
	out := m.Clone()
	out.counts[i]--
	return out
}

// Total returns the total number of active flows.
func (m Matrix) Total() int {
	var t int
	for _, c := range m.counts {
		t += c
	}
	return t
}

// ClassTotal returns the number of active flows of class c across all
// SNR levels.
func (m Matrix) ClassTotal(c AppClass) int {
	var t int
	for l := 0; l < m.space.Levels; l++ {
		t += m.counts[m.space.index(c, SNRLevel(l))]
	}
	return t
}

// LevelTotal returns the number of active flows at SNR level l across
// all classes.
func (m Matrix) LevelTotal(l SNRLevel) int {
	var t int
	for c := 0; c < m.space.Classes; c++ {
		t += m.counts[m.space.index(AppClass(c), l)]
	}
	return t
}

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	out := Matrix{space: m.space, counts: make([]int, len(m.counts))}
	copy(out.counts, m.counts)
	return out
}

// Equal reports whether two matrices have the same space and counts.
func (m Matrix) Equal(o Matrix) bool {
	if m.space != o.space || len(m.counts) != len(o.counts) {
		return false
	}
	for i, v := range m.counts {
		if v != o.counts[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key for use in dedup maps (the online
// learning phase replaces the observed QoE of repeated matrices).
func (m Matrix) Key() string {
	var b strings.Builder
	b.Grow(4 * len(m.counts)) // one allocation for typical 3-digit counts
	for i, v := range m.counts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// AppendKey appends the Key encoding to dst and returns it,
// byte-identical to Key. Callers that build map-lookup keys in a
// reusable buffer (the classifier's sample keys) use it to keep the
// steady-state observation path allocation-free.
func (m Matrix) AppendKey(dst []byte) []byte {
	for i, v := range m.counts {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendInt(dst, int64(v), 10)
	}
	return dst
}

// Counts returns a copy of the flat cell counts in class-major order.
func (m Matrix) Counts() []int {
	out := make([]int, len(m.counts))
	copy(out, m.counts)
	return out
}

// MatrixFromCounts builds a matrix over s from flat class-major cell
// counts, the inverse of Counts. The slice is copied. It panics on a
// length mismatch or a negative count, mirroring Set.
func MatrixFromCounts(s Space, counts []int) Matrix {
	if len(counts) != s.Dim() {
		panic(fmt.Sprintf("excr: %d counts for space %dx%d", len(counts), s.Classes, s.Levels))
	}
	m := NewMatrix(s)
	for i, v := range counts {
		if v < 0 {
			panic("excr: negative flow count")
		}
		m.counts[i] = v
	}
	return m
}

// String renders the matrix as <a11,…,akr>.
func (m Matrix) String() string { return "<" + m.Key() + ">" }

// Dominates reports whether m has at least as many flows as o in every
// cell. If m is achievable and dominates o, then o is achievable too
// (monotonicity of the capacity region); tests and the region sanity
// checker rely on this.
func (m Matrix) Dominates(o Matrix) bool {
	if m.space != o.space {
		return false
	}
	for i, v := range m.counts {
		if v < o.counts[i] {
			return false
		}
	}
	return true
}

// Arrival describes a new flow of class Class at SNR level Level
// arriving while the network carries the flows in Matrix — the X_m
// tuple of the paper.
type Arrival struct {
	Matrix Matrix
	Class  AppClass
	Level  SNRLevel
}

// After returns the traffic matrix that results from admitting the
// arrival.
func (a Arrival) After() Matrix { return a.Matrix.Inc(a.Class, a.Level) }

// Features encodes the arrival for the SVM exactly as the paper does:
// the k·r current cell counts followed by the numeric class and SNR
// level of the new flow.
func (a Arrival) Features() []float64 {
	return a.FeaturesInto(nil)
}

// FeaturesInto encodes the arrival into dst, reusing it when its
// capacity suffices and allocating otherwise. The returned slice has
// length FeatureDim(space) and the same layout as Features. Hot paths
// hold a scratch slice and pass it here so per-arrival feature
// extraction is allocation-free.
func (a Arrival) FeaturesInto(dst []float64) []float64 {
	dim := a.Matrix.space.Dim()
	if cap(dst) < dim+2 {
		dst = make([]float64, dim+2)
	}
	dst = dst[:dim+2]
	for i, v := range a.Matrix.counts {
		dst[i] = float64(v)
	}
	dst[dim] = float64(a.Class)
	dst[dim+1] = float64(a.Level)
	return dst
}

// FeatureDim returns the length of the Features vector for space s.
func FeatureDim(s Space) int { return s.Dim() + 2 }

// Sample is a labeled training tuple (X_m, Y_m): Label is +1 when
// admitting the arrival keeps every flow's QoE acceptable, −1 when it
// would push some flow below its QoE threshold.
type Sample struct {
	Arrival Arrival
	Label   float64
}

// Region is the Experiential Capacity Region over a space, defined by
// an achievability predicate (ground truth from a simulator or
// testbed, or a learned classifier's view).
type Region struct {
	Space      Space
	Achievable func(Matrix) bool
}

// Slice evaluates achievability over a 2-D slice of the region,
// varying class a on the rows (0..maxA) and class b on the columns
// (0..maxB) with every other cell zero and all flows at level l.
// The result is indexed [countA][countB]. This powers the Figure 2
// heatmaps and cmd/excr.
func (r Region) Slice(a, b AppClass, l SNRLevel, maxA, maxB int) [][]bool {
	out := make([][]bool, maxA+1)
	for i := range out {
		out[i] = make([]bool, maxB+1)
		for j := range out[i] {
			m := NewMatrix(r.Space).Set(a, l, i).Set(b, l, j)
			out[i][j] = r.Achievable(m)
		}
	}
	return out
}
