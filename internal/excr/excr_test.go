package excr

import (
	"testing"
	"testing/quick"

	"exbox/internal/mathx"
)

func TestStringers(t *testing.T) {
	if Web.String() != "web" || Streaming.String() != "streaming" || Conferencing.String() != "conferencing" {
		t.Fatal("AppClass strings wrong")
	}
	if AppClass(9).String() != "class9" {
		t.Fatal("unknown class string wrong")
	}
	if SNRLow.String() != "low" || SNRHigh.String() != "high" {
		t.Fatal("SNRLevel strings wrong")
	}
	if SNRLevel(5).String() != "snr5" {
		t.Fatal("unknown level string wrong")
	}
}

func TestLevelForSNR(t *testing.T) {
	if LevelForSNR(23) != SNRLow {
		t.Fatal("23 dB should be low")
	}
	if LevelForSNR(53) != SNRHigh {
		t.Fatal("53 dB should be high")
	}
}

func TestSpace(t *testing.T) {
	if DefaultSpace.Dim() != 3 {
		t.Fatalf("DefaultSpace.Dim = %d", DefaultSpace.Dim())
	}
	if MixedSNRSpace.Dim() != 6 {
		t.Fatalf("MixedSNRSpace.Dim = %d", MixedSNRSpace.Dim())
	}
	if (Space{}).Valid() {
		t.Fatal("zero space should be invalid")
	}
	if FeatureDim(MixedSNRSpace) != 8 {
		t.Fatalf("FeatureDim = %d, want 8 (paper's Fig 13 X has 8 dims)", FeatureDim(MixedSNRSpace))
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(MixedSNRSpace)
	if m.Total() != 0 {
		t.Fatal("fresh matrix not empty")
	}
	m2 := m.Inc(Web, SNRHigh).Inc(Web, SNRHigh).Inc(Streaming, SNRLow)
	if m2.Get(Web, SNRHigh) != 2 || m2.Get(Streaming, SNRLow) != 1 {
		t.Fatalf("counts wrong: %v", m2)
	}
	if m.Total() != 0 {
		t.Fatal("Inc mutated the receiver")
	}
	if m2.Total() != 3 {
		t.Fatalf("Total = %d", m2.Total())
	}
	if m2.ClassTotal(Web) != 2 || m2.ClassTotal(Conferencing) != 0 {
		t.Fatal("ClassTotal wrong")
	}
	if m2.LevelTotal(SNRLow) != 1 || m2.LevelTotal(SNRHigh) != 2 {
		t.Fatal("LevelTotal wrong")
	}
	m3 := m2.Dec(Web, SNRHigh)
	if m3.Get(Web, SNRHigh) != 1 || m2.Get(Web, SNRHigh) != 2 {
		t.Fatal("Dec wrong or mutated receiver")
	}
	m4 := m.Set(Conferencing, SNRLow, 7)
	if m4.Get(Conferencing, SNRLow) != 7 {
		t.Fatal("Set wrong")
	}
}

func TestMatrixPanics(t *testing.T) {
	m := NewMatrix(DefaultSpace)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Dec empty", func() { m.Dec(Web, 0) })
	mustPanic("Set negative", func() { m.Set(Web, 0, -1) })
	mustPanic("out of space", func() { m.Get(Web, SNRHigh) }) // DefaultSpace has 1 level
	mustPanic("invalid space", func() { NewMatrix(Space{}) })
}

func TestKeyEqualString(t *testing.T) {
	a := NewMatrix(DefaultSpace).Inc(Web, 0).Inc(Streaming, 0)
	b := NewMatrix(DefaultSpace).Inc(Streaming, 0).Inc(Web, 0)
	if a.Key() != b.Key() {
		t.Fatal("order of Inc should not matter for Key")
	}
	if !a.Equal(b) {
		t.Fatal("Equal should hold")
	}
	if a.String() != "<1,1,0>" {
		t.Fatalf("String = %q", a.String())
	}
	c := a.Inc(Web, 0)
	if a.Equal(c) || a.Key() == c.Key() {
		t.Fatal("distinct matrices compare equal")
	}
	other := NewMatrix(MixedSNRSpace)
	if a.Equal(other) {
		t.Fatal("matrices of different spaces compare equal")
	}
}

func TestDominates(t *testing.T) {
	a := NewMatrix(DefaultSpace).Set(Web, 0, 3).Set(Streaming, 0, 2)
	b := NewMatrix(DefaultSpace).Set(Web, 0, 1).Set(Streaming, 0, 2)
	if !a.Dominates(b) {
		t.Fatal("a should dominate b")
	}
	if b.Dominates(a) {
		t.Fatal("b should not dominate a")
	}
	if !a.Dominates(a) {
		t.Fatal("Dominates should be reflexive")
	}
}

func TestArrival(t *testing.T) {
	m := NewMatrix(MixedSNRSpace).Set(Web, SNRHigh, 2).Set(Streaming, SNRLow, 1)
	a := Arrival{Matrix: m, Class: Conferencing, Level: SNRLow}
	after := a.After()
	if after.Get(Conferencing, SNRLow) != 1 {
		t.Fatal("After did not add the flow")
	}
	f := a.Features()
	if len(f) != 8 {
		t.Fatalf("feature dim = %d, want 8", len(f))
	}
	// counts are class-major: web(low,high), stream(low,high), conf(low,high)
	want := []float64{0, 2, 1, 0, 0, 0, float64(Conferencing), float64(SNRLow)}
	for i := range want {
		if f[i] != want[i] {
			t.Fatalf("Features = %v, want %v", f, want)
		}
	}
}

func TestRegionSlice(t *testing.T) {
	// Toy region: achievable iff 2·web + 3·stream <= 12.
	r := Region{
		Space: DefaultSpace,
		Achievable: func(m Matrix) bool {
			return 2*m.ClassTotal(Web)+3*m.ClassTotal(Streaming) <= 12
		},
	}
	s := r.Slice(Web, Streaming, 0, 6, 4)
	if len(s) != 7 || len(s[0]) != 5 {
		t.Fatalf("slice dims %dx%d", len(s), len(s[0]))
	}
	if !s[6][0] || s[0][4] == false && 3*4 <= 12 {
		t.Fatal("boundary cells wrong")
	}
	if s[6][1] { // 12 + 3 > 12
		t.Fatal("(6,1) should be unachievable")
	}
	if !s[0][4] { // 12 <= 12
		t.Fatal("(0,4) should be achievable")
	}
}

// Property: Inc then Dec round-trips; totals stay consistent.
func TestQuickIncDecRoundTrip(t *testing.T) {
	rng := mathx.NewRand(17)
	f := func() bool {
		m := NewMatrix(MixedSNRSpace)
		for i := 0; i < 20; i++ {
			c := AppClass(rng.Intn(3))
			l := SNRLevel(rng.Intn(2))
			m = m.Inc(c, l)
			if !m.Dec(c, l).Inc(c, l).Equal(m) {
				return false
			}
		}
		sum := 0
		for c := 0; c < 3; c++ {
			sum += m.ClassTotal(AppClass(c))
		}
		if sum != m.Total() || m.Total() != 20 {
			return false
		}
		sumL := m.LevelTotal(SNRLow) + m.LevelTotal(SNRHigh)
		return sumL == m.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Key is injective over distinct small matrices.
func TestQuickKeyInjective(t *testing.T) {
	rng := mathx.NewRand(18)
	seen := map[string]Matrix{}
	for i := 0; i < 500; i++ {
		m := NewMatrix(MixedSNRSpace)
		for c := 0; c < 3; c++ {
			for l := 0; l < 2; l++ {
				m = m.Set(AppClass(c), SNRLevel(l), rng.Intn(5))
			}
		}
		if prev, ok := seen[m.Key()]; ok && !prev.Equal(m) {
			t.Fatalf("key collision: %v vs %v", prev, m)
		}
		seen[m.Key()] = m
	}
}

// FeaturesInto must match Features exactly and reuse adequate scratch
// without allocating.
func TestFeaturesInto(t *testing.T) {
	m := NewMatrix(MixedSNRSpace).Set(Web, SNRLow, 3).Set(Conferencing, SNRHigh, 7)
	a := Arrival{Matrix: m, Class: Streaming, Level: SNRHigh}
	want := a.Features()
	if len(want) != FeatureDim(MixedSNRSpace) {
		t.Fatalf("Features len %d, want %d", len(want), FeatureDim(MixedSNRSpace))
	}

	// nil dst allocates a fresh slice.
	got := a.FeaturesInto(nil)
	if len(got) != len(want) {
		t.Fatalf("FeaturesInto(nil) len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FeaturesInto(nil)[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Adequate scratch is reused in place (stale content overwritten)...
	scratch := make([]float64, FeatureDim(MixedSNRSpace)+4)
	for i := range scratch {
		scratch[i] = -99
	}
	got = a.FeaturesInto(scratch)
	if &got[0] != &scratch[0] {
		t.Fatal("adequate scratch should be reused")
	}
	if len(got) != len(want) {
		t.Fatalf("reused scratch len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused scratch [%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// ...and with zero allocations.
	if allocs := testing.AllocsPerRun(100, func() {
		scratch = a.FeaturesInto(scratch)
	}); allocs != 0 {
		t.Errorf("FeaturesInto with scratch: %v allocs/op, want 0", allocs)
	}

	// Undersized scratch grows instead of tripping bounds.
	short := make([]float64, 1)
	got = a.FeaturesInto(short)
	if len(got) != len(want) {
		t.Fatalf("grown scratch len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grown scratch [%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// CellIndex must agree with the layout of Counts and Features, and
// panic outside the space like the internal index.
func TestCellIndex(t *testing.T) {
	s := MixedSNRSpace
	seen := map[int]bool{}
	for c := 0; c < s.Classes; c++ {
		for l := 0; l < s.Levels; l++ {
			idx := s.CellIndex(AppClass(c), SNRLevel(l))
			if idx < 0 || idx >= s.Dim() || seen[idx] {
				t.Fatalf("CellIndex(%d,%d) = %d: out of range or duplicate", c, l, idx)
			}
			seen[idx] = true
			m := NewMatrix(s).Set(AppClass(c), SNRLevel(l), 5)
			if m.Counts()[idx] != 5 {
				t.Fatalf("CellIndex(%d,%d) = %d does not match Counts layout", c, l, idx)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CellIndex outside the space should panic")
		}
	}()
	s.CellIndex(AppClass(s.Classes), SNRLow)
}
