package learner

import (
	"errors"

	"exbox/internal/svm"
)

// WarmSVMState is the serializable warm-start state of a WarmSVM: the
// solver state of the last fit plus the per-row keys and labels the
// next fit re-aligns the seed by. A restored state makes the first
// post-restore refit warm instead of cold, so a warm-booted gateway
// keeps the paper's retrain-every-batch cadence cheap from the start.
type WarmSVMState struct {
	Warm   svm.WarmStateData
	Keys   []string
	Labels []float64
}

// ExportState returns a copy of the learner's warm-start state; ok is
// false when no fit has produced one yet.
func (s *WarmSVM) ExportState() (WarmSVMState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == nil {
		return WarmSVMState{}, false
	}
	return WarmSVMState{
		Warm:   s.state.Data(),
		Keys:   append([]string(nil), s.keys...),
		Labels: append([]float64(nil), s.labels...),
	}, true
}

// ImportState installs a previously exported warm-start state,
// replacing whatever seed the learner held. The state is validated
// (aligned keys/labels/alphas, labels in ±1, finite solver state) so a
// corrupt snapshot is rejected with an error rather than poisoning the
// next fit.
func (s *WarmSVM) ImportState(st WarmSVMState) error {
	if len(st.Keys) != len(st.Labels) {
		return errors.New("learner: warm state keys/labels length mismatch")
	}
	if len(st.Warm.Alpha) != len(st.Keys) {
		return errors.New("learner: warm state alphas not aligned to keys")
	}
	for _, l := range st.Labels {
		if l != 1 && l != -1 {
			return errors.New("learner: warm state label outside ±1")
		}
	}
	warm, err := svm.WarmStateFromData(st.Warm)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.state = warm
	s.keys = append(s.keys[:0], st.Keys...)
	s.labels = append(s.labels[:0], st.Labels...)
	s.mu.Unlock()
	return nil
}
