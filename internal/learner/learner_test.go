package learner

import (
	"errors"
	"testing"

	"exbox/internal/dtree"
	"exbox/internal/mathx"
	"exbox/internal/svm"
)

// lineData labels points by the sign of x0 + x1.
func lineData(n int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for len(x) < n {
		p := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		s := p[0] + p[1]
		if s > -0.3 && s < 0.3 {
			continue
		}
		x = append(x, p)
		if s > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y
}

func learners() []Learner {
	return []Learner{
		SVM{Config: svm.DefaultConfig()},
		Tree{Config: dtree.DefaultConfig()},
	}
}

func TestBothLearnersFitLine(t *testing.T) {
	x, y := lineData(300, 1)
	for _, l := range learners() {
		p, err := l.Train(x, y)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		correct := 0
		for i := range x {
			pred := -1.0
			if p.Decision(x[i]) >= 0 {
				pred = 1
			}
			if pred == y[i] {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(x)); acc < 0.95 {
			t.Fatalf("%s: training accuracy %v", l.Name(), acc)
		}
	}
}

func TestOneClassMapped(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{1, 1, 1}
	for _, l := range learners() {
		_, err := l.Train(x, y)
		if !errors.Is(err, ErrOneClass) {
			t.Fatalf("%s: err = %v, want learner.ErrOneClass", l.Name(), err)
		}
	}
}

func TestNames(t *testing.T) {
	if (SVM{Config: svm.DefaultConfig()}).Name() != "svm-rbf" {
		t.Fatal("SVM name wrong")
	}
	if (Tree{}).Name() != "dtree" {
		t.Fatal("Tree name wrong")
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := lineData(150, 2)
	rng := mathx.NewRand(3)
	for _, l := range learners() {
		acc, err := CrossValidate(l, x, y, 5, rng)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if acc < 0.9 {
			t.Fatalf("%s: cv accuracy %v", l.Name(), acc)
		}
	}
}

func TestCrossValidateErrors(t *testing.T) {
	l := Tree{}
	x, y := lineData(10, 4)
	rng := mathx.NewRand(5)
	if _, err := CrossValidate(l, x, y, 1, rng); err == nil {
		t.Fatal("folds < 2 should error")
	}
	if _, err := CrossValidate(l, x, y[:5], 2, rng); err == nil {
		t.Fatal("mismatch should error")
	}
	if _, err := CrossValidate(l, x[:2], y[:2], 5, rng); err == nil {
		t.Fatal("too few samples should error")
	}
}

func TestCrossValidateOneClassFolds(t *testing.T) {
	// Mostly one class: majority fallback must keep CV defined.
	x := [][]float64{{0}, {1}, {2}, {3}, {4}, {100}}
	y := []float64{1, 1, 1, 1, 1, -1}
	rng := mathx.NewRand(6)
	acc, err := CrossValidate(Tree{}, x, y, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("cv accuracy %v out of range", acc)
	}
}
