// Package learner abstracts the supervised binary learner behind
// ExBox's Admittance Classifier. The paper notes the learning
// technique "is not central to the concept of ExBox and can be
// implemented as a separate module that can be refined as needed";
// this package is that module boundary: SVM (the paper's choice) and
// a CART decision tree both satisfy Learner, and the classifier takes
// whichever it is configured with.
package learner

import (
	"errors"
	"math/rand"
	"sync"

	"exbox/internal/dtree"
	"exbox/internal/svm"
)

// Predictor is a trained binary classifier. Decision returns a signed
// score: >= 0 means the positive (+1, admissible) class, and the
// magnitude orders confidence.
type Predictor interface {
	Decision(row []float64) float64
}

// FastPredictor is a Predictor that additionally exposes the
// zero-allocation scoring entry points of the svm inference fast path.
// Callers own dst and scratch; implementations must not retain either
// beyond the call. The classifier's Decide/DecideBatch hot paths use
// this interface when the trained model provides it and fall back to
// plain Decision otherwise (e.g. the decision-tree ablation).
type FastPredictor interface {
	Predictor
	// Dim is the feature dimension; scratch for DecisionInto must be at
	// least this long.
	Dim() int
	// BatchScratch returns the scratch length DecisionBatch needs to
	// score n rows without allocating.
	BatchScratch(n int) int
	// DecisionInto is Decision with caller-provided scratch.
	DecisionInto(dst, row []float64) float64
	// DecisionBatch scores every row into dst (grown when too small),
	// using scratch as workspace, and returns the scores.
	DecisionBatch(dst []float64, rows [][]float64, scratch []float64) []float64
}

// ApproxPredictor is a FastPredictor that additionally carries a
// budget-constrained approximate scoring tier (the svm RFF
// linearization). HasApprox reports whether the tier was actually
// built for this model — a model trained with the tier disabled, or
// whose tier construction failed, answers false and callers must stay
// on the exact path. DecisionApprox scores one raw row through the
// tier without allocating; its sign can disagree with Decision, which
// is why the classifier oracle-gates it (see classifier/health.go).
type ApproxPredictor interface {
	FastPredictor
	HasApprox() bool
	DecisionApprox(row []float64) float64
}

// The svm model is the fast path the classifier relies on.
var (
	_ FastPredictor   = (*svm.Model)(nil)
	_ ApproxPredictor = (*svm.Model)(nil)
)

// The SVM adapters expose the solver's detailed accounting.
var (
	_ DetailedLearner     = SVM{}
	_ WarmDetailedLearner = (*WarmSVM)(nil)
)

// Learner trains Predictors from labeled rows (labels in {-1, +1}).
type Learner interface {
	Train(x [][]float64, y []float64) (Predictor, error)
	Name() string
}

// WarmLearner is a Learner whose fits can be seeded from the state of
// the previous fit. TrainWarm carries one stable key per row so the
// learner can re-align its internal solver state when rows were
// reordered, replaced, or evicted between fits: rows whose key was
// seen in the previous fit inherit their dual variables, everything
// else starts cold. The returned bool reports whether a seed was
// actually used (false on the first fit, after too much churn, or when
// the implementation decided a cold fit was safer).
type WarmLearner interface {
	Learner
	TrainWarm(x [][]float64, y []float64, keys []string) (Predictor, bool, error)
}

// DetailedLearner is a Learner whose fits can report the solver's
// per-phase accounting (svm.SolveStats): kernel/cache/shrink split,
// iteration counts, warm-vs-cold. The classifier's model-health layer
// uses it when enabled; learners without solver phases (the decision
// tree) simply don't implement it.
type DetailedLearner interface {
	Learner
	TrainDetailed(x [][]float64, y []float64, stats *svm.SolveStats) (Predictor, error)
}

// WarmDetailedLearner is the warm-started analogue of DetailedLearner.
type WarmDetailedLearner interface {
	WarmLearner
	TrainWarmDetailed(x [][]float64, y []float64, keys []string, stats *svm.SolveStats) (Predictor, bool, error)
}

// ErrOneClass is returned by Train when the labels contain a single
// class, making the problem unlearnable for now.
var ErrOneClass = errors.New("learner: training data contains a single class")

// SVM adapts internal/svm to the Learner interface.
type SVM struct {
	Config svm.Config
}

// Name implements Learner.
func (s SVM) Name() string { return "svm-" + s.Config.Kernel.String() }

// Train implements Learner.
func (s SVM) Train(x [][]float64, y []float64) (Predictor, error) {
	return s.TrainDetailed(x, y, nil)
}

// TrainDetailed implements DetailedLearner.
func (s SVM) TrainDetailed(x [][]float64, y []float64, stats *svm.SolveStats) (Predictor, error) {
	m, _, err := svm.SolveDetailed(s.Config, x, y, nil, stats)
	if errors.Is(err, svm.ErrOneClass) {
		return nil, ErrOneClass
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// WarmSVM adapts internal/svm to the WarmLearner interface: each
// TrainWarm keeps the fit's solver state (dual variables, threshold,
// frozen feature standardization) keyed by the caller's per-row keys,
// and the next TrainWarm seeds from it. A WarmSVM is stateful and must
// be created per classifier (NewWarmSVM); it is safe for concurrent
// use, though callers normally serialize fits anyway.
type WarmSVM struct {
	Config svm.Config

	mu     sync.Mutex
	state  *svm.WarmState
	keys   []string  // key per position of state.Alpha
	labels []float64 // label per position, to drop seeds whose label flipped
}

// NewWarmSVM returns a warm-starting SVM learner with no seed yet.
func NewWarmSVM(cfg svm.Config) *WarmSVM { return &WarmSVM{Config: cfg} }

// Name implements Learner. It matches SVM's name: the learning
// technique is the same, only the solver's starting point differs.
func (s *WarmSVM) Name() string { return "svm-" + s.Config.Kernel.String() }

// Train implements Learner with a cold fit that does not touch the
// warm state — this is what bootstrap cross-validation calls, and fold
// fits must not pollute the seed.
func (s *WarmSVM) Train(x [][]float64, y []float64) (Predictor, error) {
	return SVM{Config: s.Config}.Train(x, y)
}

// TrainWarm implements WarmLearner.
func (s *WarmSVM) TrainWarm(x [][]float64, y []float64, keys []string) (Predictor, bool, error) {
	return s.TrainWarmDetailed(x, y, keys, nil)
}

// TrainWarmDetailed implements WarmDetailedLearner.
func (s *WarmSVM) TrainWarmDetailed(x [][]float64, y []float64, keys []string, stats *svm.SolveStats) (Predictor, bool, error) {
	if len(keys) != len(x) || len(y) != len(x) {
		return nil, false, errors.New("learner: rows/labels/keys length mismatch")
	}
	s.mu.Lock()
	seed := s.remapLocked(keys, y)
	s.mu.Unlock()

	m, next, err := svm.SolveDetailed(s.Config, x, y, seed, stats)
	if errors.Is(err, svm.ErrOneClass) {
		return nil, false, ErrOneClass
	}
	if err != nil {
		return nil, false, err
	}
	warmed := len(x) > 0 && seed.Usable(len(x), len(x[0]))
	s.mu.Lock()
	s.state = next
	s.keys = append(s.keys[:0], keys...)
	s.labels = append(s.labels[:0], y...)
	s.mu.Unlock()
	return m, warmed, nil
}

// remapLocked aligns the stored dual state to a new row order: rows
// whose key survived (with the same label) keep their alpha, new and
// relabeled rows start at zero. Returns nil when there is no state or
// no overlap, which makes the solver fall back to a cold fit.
func (s *WarmSVM) remapLocked(keys []string, y []float64) *svm.WarmState {
	if s.state == nil || len(s.keys) == 0 {
		return nil
	}
	type prev struct {
		alpha, label float64
	}
	old := make(map[string]prev, len(s.keys))
	for i, k := range s.keys {
		if i < len(s.state.Alpha) && i < len(s.labels) {
			old[k] = prev{alpha: s.state.Alpha[i], label: s.labels[i]}
		}
	}
	alpha := make([]float64, len(keys))
	hits := 0
	for i, k := range keys {
		if p, ok := old[k]; ok && p.label == y[i] {
			alpha[i] = p.alpha
			hits++
		}
	}
	if hits == 0 {
		return nil
	}
	return s.state.Remap(alpha)
}

// Tree adapts internal/dtree to the Learner interface.
type Tree struct {
	Config dtree.Config
}

// Name implements Learner.
func (t Tree) Name() string { return "dtree" }

// Train implements Learner.
func (t Tree) Train(x [][]float64, y []float64) (Predictor, error) {
	m, err := dtree.Train(t.Config, x, y)
	if errors.Is(err, dtree.ErrOneClass) {
		return nil, ErrOneClass
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// CrossValidate estimates generalization accuracy of the learner by
// n-fold cross validation, mirroring svm.CrossValidate but for any
// Learner. Folds are stratified (svm.StratifiedFolds) so a minority
// class with at least two members appears in every training split;
// folds whose training split still collapses to one class (a
// singleton class) are scored by majority-class prediction.
func CrossValidate(l Learner, x [][]float64, y []float64, folds int, rng *rand.Rand) (float64, error) {
	if folds < 2 {
		return 0, errors.New("learner: cross validation needs at least 2 folds")
	}
	if len(x) != len(y) {
		return 0, errors.New("learner: rows/labels mismatch")
	}
	if len(x) < folds {
		return 0, errors.New("learner: fewer samples than folds")
	}
	fold := svm.StratifiedFolds(y, folds, rng)

	var correct, total int
	for f := 0; f < folds; f++ {
		var trainX, testX [][]float64
		var trainY, testY []float64
		for i := range x {
			if fold[i] == f {
				testX = append(testX, x[i])
				testY = append(testY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		p, err := l.Train(trainX, trainY)
		if errors.Is(err, ErrOneClass) {
			cls := 1.0
			if len(trainY) > 0 {
				cls = trainY[0]
			}
			for _, yt := range testY {
				if yt == cls {
					correct++
				}
				total++
			}
			continue
		}
		if err != nil {
			return 0, err
		}
		for i, row := range testX {
			pred := -1.0
			if p.Decision(row) >= 0 {
				pred = 1
			}
			if pred == testY[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, errors.New("learner: empty folds")
	}
	return float64(correct) / float64(total), nil
}
