// Package learner abstracts the supervised binary learner behind
// ExBox's Admittance Classifier. The paper notes the learning
// technique "is not central to the concept of ExBox and can be
// implemented as a separate module that can be refined as needed";
// this package is that module boundary: SVM (the paper's choice) and
// a CART decision tree both satisfy Learner, and the classifier takes
// whichever it is configured with.
package learner

import (
	"errors"
	"math/rand"

	"exbox/internal/dtree"
	"exbox/internal/svm"
)

// Predictor is a trained binary classifier. Decision returns a signed
// score: >= 0 means the positive (+1, admissible) class, and the
// magnitude orders confidence.
type Predictor interface {
	Decision(row []float64) float64
}

// Learner trains Predictors from labeled rows (labels in {-1, +1}).
type Learner interface {
	Train(x [][]float64, y []float64) (Predictor, error)
	Name() string
}

// ErrOneClass is returned by Train when the labels contain a single
// class, making the problem unlearnable for now.
var ErrOneClass = errors.New("learner: training data contains a single class")

// SVM adapts internal/svm to the Learner interface.
type SVM struct {
	Config svm.Config
}

// Name implements Learner.
func (s SVM) Name() string { return "svm-" + s.Config.Kernel.String() }

// Train implements Learner.
func (s SVM) Train(x [][]float64, y []float64) (Predictor, error) {
	m, err := svm.Train(s.Config, x, y)
	if errors.Is(err, svm.ErrOneClass) {
		return nil, ErrOneClass
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Tree adapts internal/dtree to the Learner interface.
type Tree struct {
	Config dtree.Config
}

// Name implements Learner.
func (t Tree) Name() string { return "dtree" }

// Train implements Learner.
func (t Tree) Train(x [][]float64, y []float64) (Predictor, error) {
	m, err := dtree.Train(t.Config, x, y)
	if errors.Is(err, dtree.ErrOneClass) {
		return nil, ErrOneClass
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// CrossValidate estimates generalization accuracy of the learner by
// n-fold cross validation, mirroring svm.CrossValidate but for any
// Learner. Folds whose training split collapses to one class are
// scored by majority-class prediction.
func CrossValidate(l Learner, x [][]float64, y []float64, folds int, rng *rand.Rand) (float64, error) {
	if folds < 2 {
		return 0, errors.New("learner: cross validation needs at least 2 folds")
	}
	if len(x) != len(y) {
		return 0, errors.New("learner: rows/labels mismatch")
	}
	if len(x) < folds {
		return 0, errors.New("learner: fewer samples than folds")
	}
	idx := rng.Perm(len(x))

	var correct, total int
	for f := 0; f < folds; f++ {
		var trainX, testX [][]float64
		var trainY, testY []float64
		for pos, i := range idx {
			if pos%folds == f {
				testX = append(testX, x[i])
				testY = append(testY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		p, err := l.Train(trainX, trainY)
		if errors.Is(err, ErrOneClass) {
			cls := 1.0
			if len(trainY) > 0 {
				cls = trainY[0]
			}
			for _, yt := range testY {
				if yt == cls {
					correct++
				}
				total++
			}
			continue
		}
		if err != nil {
			return 0, err
		}
		for i, row := range testX {
			pred := -1.0
			if p.Decision(row) >= 0 {
				pred = 1
			}
			if pred == testY[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, errors.New("learner: empty folds")
	}
	return float64(correct) / float64(total), nil
}
