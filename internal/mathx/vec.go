// Package mathx provides the small numerical toolkit the rest of the
// repository is built on: dense vector operations, summary statistics,
// linear least squares, and deterministic random-variate helpers.
//
// Everything here is deliberately simple and allocation-conscious; the
// heaviest numerical consumers (the SMO solver in internal/svm and the
// IQX fitter in internal/iqx) operate on small, dense problems where a
// straightforward implementation is both fast enough and auditable.
package mathx

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ: a dimension mismatch is always a
// programming error in this codebase, never a runtime condition.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: Dot dimension mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: SqDist dimension mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mathx: AXPY dimension mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Clone returns a fresh copy of v.
func Clone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to the closed interval [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}
