package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or 0 when len(v) < 2.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}

// StdDev returns the population standard deviation of v.
func StdDev(v []float64) float64 {
	return math.Sqrt(Variance(v))
}

// Median returns the median of v, or 0 for an empty slice.
// v is not modified.
func Median(v []float64) float64 {
	return Quantile(v, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of v using linear
// interpolation between order statistics. v is not modified.
func Quantile(v []float64, q float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := Clone(v)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the smallest element of v. It panics on an empty slice.
func Min(v []float64) float64 {
	if len(v) == 0 {
		panic("mathx: Min of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of v. It panics on an empty slice.
func Max(v []float64) float64 {
	if len(v) == 0 {
		panic("mathx: Max of empty slice")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RMSE returns the root-mean-square error between predictions pred and
// observations obs. It panics if the lengths differ and returns 0 for
// empty input.
func RMSE(pred, obs []float64) float64 {
	if len(pred) != len(obs) {
		panic("mathx: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - obs[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// EWMA is an exponentially weighted moving average with a configurable
// smoothing factor. The zero value is not ready for use; construct one
// with NewEWMA. EWMA is the building block for the passive QoS monitors
// in internal/metrics.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with smoothing factor alpha in (0, 1].
// Larger alpha weights recent observations more heavily.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic("mathx: EWMA alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a new sample into the average. The first sample
// initializes the average directly.
func (e *EWMA) Observe(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average, or 0 before any observation.
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one sample has been observed.
func (e *EWMA) Initialized() bool { return e.init }
