package mathx

import (
	"math"
	"math/rand"
)

// NewRand returns a deterministic *rand.Rand seeded with seed.
// Every stochastic component in the repository takes an explicit
// *rand.Rand so that experiments and tests are reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Normal draws one sample from N(mean, stddev²).
func Normal(rng *rand.Rand, mean, stddev float64) float64 {
	return mean + stddev*rng.NormFloat64()
}

// TruncNormal draws from N(mean, stddev²) truncated to [lo, hi] by
// clamping. Clamping (rather than rejection) keeps the draw O(1) and is
// adequate for the noise models here, where the bounds sit several
// standard deviations from the mean.
func TruncNormal(rng *rand.Rand, mean, stddev, lo, hi float64) float64 {
	return Clamp(Normal(rng, mean, stddev), lo, hi)
}

// Exponential draws from an exponential distribution with the given
// mean. It is used for flow inter-arrival times.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// Pareto draws from a bounded Pareto distribution with shape alpha on
// [lo, hi]. Heavy-tailed sizes (web pages, video segments) use this.
func Pareto(rng *rand.Rand, alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic("mathx: Pareto wants 0 < lo < hi")
	}
	u := rng.Float64()
	// Inverse CDF of the bounded Pareto.
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// WeightedChoice returns an index in [0, len(weights)) drawn with
// probability proportional to weights[i]. It panics if weights is empty
// or sums to a non-positive value.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		panic("mathx: WeightedChoice with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("mathx: WeightedChoice with negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("mathx: WeightedChoice weights sum to zero")
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes idx in place using rng.
func Shuffle(rng *rand.Rand, idx []int) {
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
}

// Perm returns a random permutation of [0, n).
func Perm(rng *rand.Rand, n int) []int {
	return rng.Perm(n)
}
