package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist([]float64{1, 1}, []float64{4, 5}); !almostEq(got, 25, 1e-12) {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY result = %v, want [7 9]", y)
	}
}

func TestScaleAndClone(t *testing.T) {
	v := []float64{1, 2}
	c := Clone(v)
	Scale(3, v)
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("Scale result = %v", v)
	}
	if c[0] != 1 || c[1] != 2 {
		t.Fatal("Clone aliases the original")
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
	if got := ClampInt(7, 0, 5); got != 5 {
		t.Errorf("ClampInt = %d, want 5", got)
	}
}

func TestLinspace(t *testing.T) {
	v := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEq(v[i], want[i], 1e-12) {
			t.Fatalf("Linspace = %v", v)
		}
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(v); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(v); !almostEq(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(v); !almostEq(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestMedianQuantile(t *testing.T) {
	v := []float64{5, 1, 3}
	if got := Median(v); got != 3 {
		t.Fatalf("Median = %v, want 3", got)
	}
	// Median must not reorder the input.
	if v[0] != 5 || v[1] != 1 || v[2] != 3 {
		t.Fatal("Median mutated its input")
	}
	even := []float64{1, 2, 3, 4}
	if got := Median(even); !almostEq(got, 2.5, 1e-12) {
		t.Fatalf("Median(even) = %v, want 2.5", got)
	}
	if got := Quantile(even, 0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", got)
	}
	if got := Quantile(even, 1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(empty) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	v := []float64{3, -1, 7, 2}
	if Min(v) != -1 || Max(v) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(v), Max(v))
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("RMSE identical = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almostEq(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Fatal("fresh EWMA should not be initialized")
	}
	e.Observe(10)
	if e.Value() != 10 {
		t.Fatalf("first sample should initialize, got %v", e.Value())
	}
	e.Observe(20)
	if !almostEq(e.Value(), 15, 1e-12) {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for alpha=0")
		}
	}()
	NewEWMA(0)
}

func TestSolveLinear(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-9) || !almostEq(x[1], 3, 1e-9) {
		t.Fatalf("SolveLinear = %v, want [1 3]", x)
	}
	// Inputs must be untouched.
	if a[0][0] != 2 || b[0] != 5 {
		t.Fatal("SolveLinear mutated its inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	_, err := SolveLinear([][]float64{{1, 2}, {2, 4}}, []float64{1, 2})
	if err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearNeedsPivot(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	x, err := SolveLinear(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-9) || !almostEq(x[1], 2, 1e-9) {
		t.Fatalf("SolveLinear = %v, want [3 2]", x)
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 2 + 3x exactly.
	var rows [][]float64
	var y []float64
	for i := 0; i < 10; i++ {
		x := float64(i)
		rows = append(rows, []float64{1, x})
		y = append(y, 2+3*x)
	}
	beta, err := LeastSquares(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(beta[0], 2, 1e-8) || !almostEq(beta[1], 3, 1e-8) {
		t.Fatalf("beta = %v, want [2 3]", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Fatal("expected error for empty system")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for row/observation mismatch")
	}
}

// Property: solving A·x = b then multiplying back recovers b.
func TestQuickSolveLinearRoundTrip(t *testing.T) {
	rng := NewRand(7)
	f := func() bool {
		n := 1 + rng.Intn(5)
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = rng.NormFloat64()
			}
			a[i][i] += float64(n) // diagonally dominant => well-conditioned
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if !almostEq(Dot(a[i], x), b[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	rng := NewRand(11)
	f := func() bool {
		n := 1 + rng.Intn(40)
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			x := Quantile(v, q)
			if x < prev-1e-12 || x < Min(v)-1e-12 || x > Max(v)+1e-12 {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomHelpers(t *testing.T) {
	rng := NewRand(42)
	// Pareto stays within bounds.
	for i := 0; i < 1000; i++ {
		x := Pareto(rng, 1.2, 10, 1000)
		if x < 10-1e-9 || x > 1000+1e-9 {
			t.Fatalf("Pareto out of bounds: %v", x)
		}
	}
	// TruncNormal respects bounds.
	for i := 0; i < 1000; i++ {
		x := TruncNormal(rng, 0, 100, -1, 1)
		if x < -1 || x > 1 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
	// Exponential has roughly the requested mean.
	var s float64
	const n = 20000
	for i := 0; i < n; i++ {
		s += Exponential(rng, 5)
	}
	if m := s / n; m < 4.5 || m > 5.5 {
		t.Fatalf("Exponential mean = %v, want ~5", m)
	}
}

func TestWeightedChoice(t *testing.T) {
	rng := NewRand(1)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(rng, []float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("WeightedChoice ordering wrong: %v", counts)
	}
	// Zero-weight entries are never chosen.
	for i := 0; i < 1000; i++ {
		if WeightedChoice(rng, []float64{0, 1, 0}) != 1 {
			t.Fatal("WeightedChoice picked a zero-weight entry")
		}
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	rng := NewRand(1)
	for _, w := range [][]float64{nil, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for weights %v", w)
				}
			}()
			WeightedChoice(rng, w)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	a, b := NewRand(123), NewRand(123)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("NewRand with same seed diverged")
		}
	}
}
