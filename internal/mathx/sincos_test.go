package mathx

import (
	"math"
	"testing"
)

func TestFastSincosAccuracy(t *testing.T) {
	// Dense sweep over several periods on both sides of zero: the RFF
	// projections feed arguments of either sign and modest magnitude.
	var worst float64
	for x := -50.0; x <= 50.0; x += 0.00137 {
		s, c := FastSincos(x)
		es, ec := math.Sincos(x)
		if d := math.Abs(s - es); d > worst {
			worst = d
		}
		if d := math.Abs(c - ec); d > worst {
			worst = d
		}
	}
	// Lerp over 2048 bins bounds the error by (2π/2048)²/8 ≈ 1.18e-6;
	// allow a little slack for the range reduction.
	if worst > 2e-6 {
		t.Fatalf("worst FastSincos error %.3g, want <= 2e-6", worst)
	}
}

func TestFastSincosExactPoints(t *testing.T) {
	// Table nodes are exact by construction; 0 in particular must give
	// sin=0, cos=1 bit-for-bit so an all-zero projection is a no-op.
	s, c := FastSincos(0)
	if s != 0 || c != 1 {
		t.Fatalf("FastSincos(0) = %g, %g, want 0, 1", s, c)
	}
}

func TestFastSincosNegativeWrap(t *testing.T) {
	// Negative arguments reduce through the two's-complement mask; they
	// must agree with the positive-argument path shifted by a period.
	for _, x := range []float64{-0.1, -math.Pi, -7.3, -123.456} {
		s1, c1 := FastSincos(x)
		s2, c2 := FastSincos(x + 2*math.Pi*64)
		if math.Abs(s1-s2) > 1e-9 || math.Abs(c1-c2) > 1e-9 {
			t.Fatalf("FastSincos(%g) not periodic: (%g,%g) vs (%g,%g)", x, s1, c1, s2, c2)
		}
	}
}

func TestAllFinite(t *testing.T) {
	cases := []struct {
		v    []float64
		want bool
	}{
		{nil, true},
		{[]float64{}, true},
		{[]float64{0, 1, -2.5, 1e300, -1e-300}, true},
		{[]float64{math.NaN()}, false},
		{[]float64{1, math.Inf(1)}, false},
		{[]float64{math.Inf(-1), 0}, false},
		{[]float64{1, 2, math.NaN(), 4}, false},
	}
	for _, c := range cases {
		if got := AllFinite(c.v); got != c.want {
			t.Errorf("AllFinite(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func BenchmarkFastSincos(b *testing.B) {
	b.ReportAllocs()
	var s, c float64
	for i := 0; i < b.N; i++ {
		ds, dc := FastSincos(float64(i) * 0.37)
		s += ds
		c += dc
	}
	_, _ = s, c
}

func BenchmarkMathSincos(b *testing.B) {
	b.ReportAllocs()
	var s, c float64
	for i := 0; i < b.N; i++ {
		ds, dc := math.Sincos(float64(i) * 0.37)
		s += ds
		c += dc
	}
	_, _ = s, c
}
