package mathx

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular system")

// SolveLinear solves the square linear system A·x = b using Gaussian
// elimination with partial pivoting. A and b are not modified.
// It returns ErrSingular when the pivot collapses below a small
// tolerance, which in this codebase indicates a degenerate fit (for
// example an IQX Jacobian with no curvature left).
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, fmt.Errorf("mathx: SolveLinear wants square system, got %dx? with b of %d", n, len(b))
	}
	// Work on copies: callers reuse their matrices across iterations.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("mathx: SolveLinear row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = Clone(a[i])
	}
	x := Clone(b)

	const tiny = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r][col]); v > best {
				best, pivot = v, r
			}
		}
		if best < tiny {
			return nil, ErrSingular
		}
		m[col], m[pivot] = m[pivot], m[col]
		x[col], x[pivot] = x[pivot], x[col]

		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= m[col][c] * x[c]
		}
		x[col] = s / m[col][col]
	}
	return x, nil
}

// LeastSquares solves the overdetermined system X·beta ≈ y in the
// least-squares sense via the normal equations XᵀX·beta = Xᵀy.
// Each row of x is one observation. The normal-equation route is fine
// here because every design matrix in this repository is tiny (2–4
// parameters) and well scaled.
func LeastSquares(x [][]float64, y []float64) ([]float64, error) {
	if len(x) == 0 {
		return nil, errors.New("mathx: LeastSquares with no rows")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("mathx: LeastSquares rows %d != observations %d", len(x), len(y))
	}
	p := len(x[0])
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("mathx: LeastSquares row %d has %d columns, want %d", r, len(row), p)
		}
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	return SolveLinear(xtx, xty)
}
