package mathx

import "math"

// FastSincos approximates math.Sincos with a table lookup plus linear
// interpolation: one period of sin is sampled at sincosBins points and
// the argument is range-reduced by the table index, so the call is a
// multiply, a floor, two lerps and no branches on the value. The
// absolute error is bounded by (2π/sincosBins)²/8 ≈ 1.2e-6 — far below
// the RBF-approximation error budget of the RFF tier, which is the
// only caller (both when fitting the RFF readout and when scoring, so
// the table error largely cancels between the two).
//
// math.Sincos costs ~15 ns on the reference machine; at 128 frequency
// pairs per decision that alone would blow the sub-microsecond budget.
// The table version costs a few ns.
func FastSincos(x float64) (sin, cos float64) {
	t := x * sincosScale
	f := math.Floor(t)
	frac := t - f
	// Two's-complement & gives the proper non-negative modulus for
	// negative indices (-1 & mask == mask).
	i := int(f) & sincosMask
	sin = sinTab[i] + frac*(sinTab[i+1]-sinTab[i])
	cos = cosTab[i] + frac*(cosTab[i+1]-cosTab[i])
	return sin, cos
}

const (
	sincosBins  = 2048
	sincosMask  = sincosBins - 1
	sincosScale = sincosBins / (2 * math.Pi)
)

// The tables carry one extra entry equal to entry 0 so the i+1 lerp
// neighbor never needs a second mask.
var sinTab, cosTab [sincosBins + 1]float64

func init() {
	for i := 0; i < sincosBins; i++ {
		sinTab[i], cosTab[i] = math.Sincos(2 * math.Pi * float64(i) / sincosBins)
	}
	sinTab[sincosBins] = sinTab[0]
	cosTab[sincosBins] = cosTab[0]
}

// AllFinite reports whether every value is finite (no NaN, no ±Inf).
// The observation boundary uses it to reject corrupt feature rows
// before they can poison a fused dot product. v-v is 0 for finite v
// and NaN for both NaN and ±Inf, so the check is one subtraction per
// element with no math.IsNaN/IsInf calls.
func AllFinite(v []float64) bool {
	for _, x := range v {
		if x-x != 0 {
			return false
		}
	}
	return true
}
