package benchjson

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: exbox/internal/svm
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkRetrainCold-8   	      30	   5681301 ns/op
BenchmarkRetrainWarm-8   	      30	    883932 ns/op
BenchmarkRetrainCold-8   	      30	   5700000 ns/op
BenchmarkRetrainWarm-8   	      30	    900000 ns/op
BenchmarkRetrainWarm-8   	      30	    850000 ns/op
BenchmarkAdmitParallel-8 	 9000000	       133.5 ns/op
BenchmarkDecisionRBF-8   	  300000	      3669 ns/op	       0 B/op	       0 allocs/op
BenchmarkDecisionRBF-8   	  300000	      3700 ns/op	       0 B/op	       0 allocs/op
BenchmarkDecisionRBFRef-8	  250000	      4781 ns/op	      64 B/op	       2 allocs/op
PASS
ok  	exbox/internal/svm	1.386s
`

func TestParseGoBench(t *testing.T) {
	samples, err := ParseGoBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkRetrainCold"].Ns); got != 2 {
		t.Fatalf("cold samples = %d, want 2", got)
	}
	if got := len(samples["BenchmarkRetrainWarm"].Ns); got != 3 {
		t.Fatalf("warm samples = %d, want 3", got)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := samples["BenchmarkRetrainWarm-8"]; ok {
		t.Fatal("suffixed name leaked through")
	}
	if got := samples["BenchmarkAdmitParallel"].Ns[0]; got != 133.5 {
		t.Fatalf("fractional ns/op = %v, want 133.5", got)
	}
	// Runs without -benchmem carry no alloc samples...
	if got := len(samples["BenchmarkRetrainWarm"].Allocs); got != 0 {
		t.Fatalf("warm alloc samples = %d, want 0", got)
	}
	// ...and -benchmem lines record allocs/op, including measured zero.
	if got := samples["BenchmarkDecisionRBF"].Allocs; len(got) != 2 || got[0] != 0 {
		t.Fatalf("rbf alloc samples = %v, want two zeros", got)
	}
	if got := samples["BenchmarkDecisionRBFRef"].Allocs; len(got) != 1 || got[0] != 2 {
		t.Fatalf("ref alloc samples = %v, want [2]", got)
	}
}

func TestMedian(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("odd median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Fatalf("even median = %v, want 2.5", got)
	}
}

func TestSummarize(t *testing.T) {
	sum := Summarize(map[string]*Samples{
		"BenchmarkX": {Ns: []float64{900000, 850000, 883932}},
		"BenchmarkY": {Ns: []float64{100, 120, 110}, Allocs: []float64{0, 0, 0}},
	})
	if e := sum["BenchmarkX"]; e.NsPerOp != 883932 || e.Samples != 3 || e.AllocSamples != 0 {
		t.Fatalf("entry = %+v", e)
	}
	// A measured zero allocs/op must survive as AllocSamples > 0.
	if e := sum["BenchmarkY"]; e.AllocsPerOp != 0 || e.AllocSamples != 3 {
		t.Fatalf("entry = %+v", e)
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := &File{
		Go:     "go1.22",
		Source: "test",
		Benchmarks: map[string]Entry{
			"BenchmarkRetrainWarm": {NsPerOp: 883932, Samples: 5, AllocsPerOp: 0, AllocSamples: 5},
		},
	}
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema {
		t.Fatalf("schema = %q", got.Schema)
	}
	if got.Benchmarks["BenchmarkRetrainWarm"] != f.Benchmarks["BenchmarkRetrainWarm"] {
		t.Fatalf("round trip mismatch: %+v", got.Benchmarks)
	}
}

func TestReadRejectsWrongSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	raw := `{"schema": "other/v9", "benchmarks": {}}`
	if err := os.WriteFile(path, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("wrong schema must be rejected")
	}
}
