// Package benchjson is the shared vocabulary of ExBox's performance
// tooling: the committed benchmark baselines (BENCH_*.json), the
// `exbench -bench` snapshot output, and the CI regression gate
// (internal/tools/benchcheck) all read and write this one format, and
// the gate parses raw `go test -bench` output with it.
package benchjson

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the JSON layout; bump on incompatible changes.
const Schema = "exbox-bench/v1"

// Entry is one benchmark's recorded result.
type Entry struct {
	// NsPerOp is the median wall time per operation in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// Samples is how many `go test` runs the median was taken over.
	Samples int `json:"samples"`
	// AllocsPerOp is the median heap allocations per operation, from
	// runs with -benchmem (or b.ReportAllocs). Zero is a meaningful
	// measurement — the fast paths assert it — so AllocSamples, not
	// this field, says whether allocations were measured.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// AllocSamples is how many runs carried an allocs/op figure; 0
	// means allocations were not measured for this benchmark.
	AllocSamples int `json:"alloc_samples,omitempty"`
}

// Samples collects the repeated raw measurements of one benchmark:
// every run contributes an ns/op figure, and runs under -benchmem
// contribute an allocs/op figure too.
type Samples struct {
	Ns     []float64
	Allocs []float64
}

// File is a benchmark snapshot: a map from benchmark name (without
// the -GOMAXPROCS suffix) to its result, plus provenance.
type File struct {
	Schema     string           `json:"schema"`
	Go         string           `json:"go,omitempty"`
	Source     string           `json:"source,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Read loads a snapshot file and validates its schema.
func Read(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("benchjson: %s: schema %q, want %q", path, f.Schema, Schema)
	}
	return &f, nil
}

// Write saves a snapshot with stable formatting (sorted keys, indented)
// so committed baselines diff cleanly.
func (f *File) Write(path string) error {
	f.Schema = Schema
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// ParseGoBench extracts ns/op — and, from -benchmem runs, allocs/op —
// samples from raw `go test -bench` output (one line per run, repeated
// runs with -count append more samples). The -GOMAXPROCS suffix is
// stripped so names match across machines: "BenchmarkRetrainWarm-8"
// and "BenchmarkRetrainWarm-48" are the same benchmark.
func ParseGoBench(r io.Reader) (map[string]*Samples, error) {
	samples := make(map[string]*Samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines look like:
		//   BenchmarkRetrainWarm-8   100   883932 ns/op   64 B/op   2 allocs/op
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var ns, allocs float64
		nsFound, allocsFound := false, false
		for i := 2; i+1 < len(fields); i++ {
			switch fields[i+1] {
			case "ns/op":
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("benchjson: bad ns/op %q in %q", fields[i], sc.Text())
				}
				ns, nsFound = v, true
			case "allocs/op":
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("benchjson: bad allocs/op %q in %q", fields[i], sc.Text())
				}
				allocs, allocsFound = v, true
			}
		}
		if !nsFound {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		s := samples[name]
		if s == nil {
			s = &Samples{}
			samples[name] = s
		}
		s.Ns = append(s.Ns, ns)
		if allocsFound {
			s.Allocs = append(s.Allocs, allocs)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// Median returns the median of xs (mean of the middle pair for even
// lengths); it panics on an empty slice.
func Median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Summarize collapses per-benchmark samples to median entries, the
// form snapshots store. Allocation medians are recorded only for
// benchmarks whose runs measured them.
func Summarize(samples map[string]*Samples) map[string]Entry {
	out := make(map[string]Entry, len(samples))
	for name, s := range samples {
		e := Entry{NsPerOp: Median(s.Ns), Samples: len(s.Ns)}
		if len(s.Allocs) > 0 {
			e.AllocsPerOp = Median(s.Allocs)
			e.AllocSamples = len(s.Allocs)
		}
		out[name] = e
	}
	return out
}
