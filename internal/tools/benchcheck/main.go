// Command benchcheck is the CI benchmark-regression gate: it parses
// raw `go test -bench` output, takes the median ns/op of each
// benchmark's repeated runs (-count), and compares them against the
// committed baseline (BENCH_baseline.json). A benchmark whose median
// regressed by more than -threshold (default 25%) fails the gate, as
// does a baseline benchmark missing from the run — a silently deleted
// benchmark must not pass the perf gate.
//
// Allocations are gated too, and strictly: when both the baseline and
// the current run carry allocs/op (run with -benchmem), any increase
// of the median fails. Wall time is noisy across runs; allocation
// counts are deterministic, so the zero-allocation decision paths can
// pin exactly 0 and a single regressed alloc trips the gate.
//
// Usage:
//
//	go test -bench 'Retrain|Admit' -benchmem -benchtime 100x -count 5 ./... | tee bench.txt
//	go run ./internal/tools/benchcheck -baseline BENCH_baseline.json bench.txt
//
// Refresh the baseline after an intentional performance change with
// -update, and commit the result:
//
//	go run ./internal/tools/benchcheck -baseline BENCH_baseline.json -update bench.txt
//
// Medians compare a fresh run against numbers measured on possibly
// different hardware, so the threshold is generous; the gate exists to
// catch order-of-magnitude mistakes (an accidentally quadratic loop, a
// lost cache), not single-digit drift. CI runs it on fixed runner
// hardware where 25% is already conservative.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"exbox/internal/tools/benchjson"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "committed baseline snapshot")
	threshold := flag.Float64("threshold", 0.25, "maximum allowed fractional ns/op regression of the median")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	flag.Parse()

	in := io.Reader(os.Stdin)
	switch flag.NArg() {
	case 0:
	case 1:
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	default:
		fatal(fmt.Errorf("at most one input file, got %d", flag.NArg()))
	}

	samples, err := benchjson.ParseGoBench(in)
	if err != nil {
		fatal(err)
	}
	if len(samples) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input — did the bench run fail?"))
	}
	current := benchjson.Summarize(samples)

	if *update {
		f := &benchjson.File{
			Go:         runtime.Version(),
			Source:     "benchcheck -update",
			Benchmarks: current,
		}
		if err := f.Write(*baselinePath); err != nil {
			fatal(err)
		}
		fmt.Printf("benchcheck: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	baseline, err := benchjson.Read(*baselinePath)
	if err != nil {
		fatal(err)
	}

	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		base := baseline.Benchmarks[name]
		cur, ok := current[name]
		if !ok {
			fmt.Printf("FAIL %-28s missing from this run (baseline %.0f ns/op)\n", name, base.NsPerOp)
			failed = true
			continue
		}
		ratio := cur.NsPerOp / base.NsPerOp
		verdict := "ok  "
		if ratio > 1+*threshold {
			verdict = "FAIL"
			failed = true
		}
		fmt.Printf("%s %-28s %12.0f ns/op  baseline %12.0f  (%+.1f%%, %d samples)\n",
			verdict, name, cur.NsPerOp, base.NsPerOp, (ratio-1)*100, cur.Samples)
		if base.AllocSamples > 0 && cur.AllocSamples > 0 && cur.AllocsPerOp > base.AllocsPerOp {
			fmt.Printf("FAIL %-28s %12.1f allocs/op  baseline %12.1f  (any increase fails)\n",
				name, cur.AllocsPerOp, base.AllocsPerOp)
			failed = true
		}
	}
	for name := range current {
		if _, ok := baseline.Benchmarks[name]; !ok {
			fmt.Printf("note %-28s not in baseline; add it with -update\n", name)
		}
	}
	if failed {
		fmt.Printf("benchcheck: FAIL (threshold %.0f%%)\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: ok, %d benchmarks within %.0f%% of baseline\n", len(names), *threshold*100)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
	os.Exit(2)
}
