// Command timelinecheck is the CI smoke gate over /debug/timeline
// output: it validates the JSON shape a scrape consumer relies on —
// an array of series, each with a non-empty name, a kind of "gauge" or
// "delta", a positive resolution, and points as [unixNanos, value]
// pairs with non-decreasing timestamps. It does not pin values or
// series names (those drift with legitimate metric changes); it
// catches the structural breakage that unit tests on the store itself
// can miss once the daemon's wiring is in between.
//
// Usage:
//
//	curl -s http://HOST/debug/timeline | go run ./internal/tools/timelinecheck
//	go run ./internal/tools/timelinecheck -min-series 1 < timeline.json
//
// Exit status 0 when the document is well-formed, 1 otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type series struct {
	Name              string      `json:"name"`
	Kind              string      `json:"kind"`
	ResolutionSeconds float64     `json:"resolution_seconds"`
	Points            [][]float64 `json:"points"`
}

func main() {
	minSeries := flag.Int("min-series", 1, "fail unless at least this many series are present")
	flag.Parse()

	var doc []series
	dec := json.NewDecoder(os.Stdin)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		fatalf("timeline is not a series array: %v", err)
	}
	if len(doc) < *minSeries {
		fatalf("%d series, want at least %d", len(doc), *minSeries)
	}
	if err := validate(doc); err != nil {
		fatalf("%v", err)
	}
	points := 0
	for _, s := range doc {
		points += len(s.Points)
	}
	fmt.Printf("timelinecheck: %d series, %d points ok\n", len(doc), points)
}

func validate(doc []series) error {
	for i, s := range doc {
		if s.Name == "" {
			return fmt.Errorf("series %d: empty name", i)
		}
		if s.Kind != "gauge" && s.Kind != "delta" {
			return fmt.Errorf("series %q: kind %q, want gauge or delta", s.Name, s.Kind)
		}
		if s.ResolutionSeconds <= 0 {
			return fmt.Errorf("series %q: resolution %v, want > 0", s.Name, s.ResolutionSeconds)
		}
		var last float64
		for j, p := range s.Points {
			if len(p) != 2 {
				return fmt.Errorf("series %q point %d: %d elements, want [t, v]", s.Name, j, len(p))
			}
			if t := p[0]; t != float64(int64(t)) || t < 0 {
				return fmt.Errorf("series %q point %d: timestamp %v is not a non-negative integer", s.Name, j, p[0])
			}
			if j > 0 && p[0] < last {
				return fmt.Errorf("series %q point %d: timestamp %v < previous %v", s.Name, j, p[0], last)
			}
			last = p[0]
		}
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "timelinecheck: "+format+"\n", args...)
	os.Exit(1)
}
