// Command figcheck is the CI smoke gate over `exbench -scale quick`
// output: it parses every rendered figure and heatmap and diffs the
// output *shape* — which figures appeared, how many series and rows
// each has, whether x values are strictly increasing, whether heatmap
// grids are complete — against the expectations table below. It does
// not pin numeric values (those drift with legitimate model changes);
// it catches the structural breakage a refactor can smuggle past unit
// tests: a figure that silently stopped rendering, a series that
// vanished, rows that collapsed to one x value.
//
// Usage:
//
//	go run ./cmd/exbench -scale quick | go run ./internal/tools/figcheck
//
// When figures are intentionally added or reshaped, update the
// expectations table here in the same change.
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// expect describes one figure's required shape at quick scale.
type expect struct {
	id      string
	heatmap bool
	series  int // exact series count (figures only)
	minRows int // minimum data-row count
}

// expectations covers every figure exbench renders at quick scale, in
// render order.
var expectations = []expect{
	{id: "fig2a", heatmap: true, minRows: 11},
	{id: "fig2b", heatmap: true, minRows: 11},
	{id: "fig2c", heatmap: true, minRows: 11},
	{id: "fig3", series: 2, minRows: 5},
	{id: "fig7-random", series: 9, minRows: 6},
	{id: "fig7-livelab", series: 9, minRows: 6},
	{id: "fig8-random", series: 9, minRows: 6},
	{id: "fig8-livelab", series: 9, minRows: 6},
	{id: "fig9-wifi-testbed", series: 3, minRows: 3},
	{id: "fig9-lte-testbed", series: 3, minRows: 3},
	{id: "fig10-wifi-testbed", series: 5, minRows: 3},
	{id: "fig10-lte-testbed", series: 5, minRows: 3},
	{id: "fig11-wifi-testbed", series: 9, minRows: 3},
	{id: "fig11-lte-testbed", series: 9, minRows: 3},
	{id: "fig12", series: 3, minRows: 10},
	{id: "fig13", series: 5, minRows: 8},
	{id: "fig14-wifi", series: 9, minRows: 8},
	{id: "fig14-lte", series: 9, minRows: 8},
}

// block is one parsed "== id: title ==" section.
type block struct {
	id     string
	header []string   // column names (or column labels for heatmaps)
	xs     []float64  // first column of each data row
	rows   [][]string // remaining cells of each data row
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) == 2 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if len(os.Args) > 2 {
		fatal(fmt.Errorf("at most one input file, got %d args", len(os.Args)-1))
	}

	blocks, err := parse(in)
	if err != nil {
		fatal(err)
	}

	byID := make(map[string]*block, len(blocks))
	for _, b := range blocks {
		if byID[b.id] != nil {
			fail("figure %s rendered more than once", b.id)
		}
		byID[b.id] = b
	}
	expected := make(map[string]bool, len(expectations))
	for _, e := range expectations {
		expected[e.id] = true
		b := byID[e.id]
		if b == nil {
			fail("figure %s missing from output", e.id)
			continue
		}
		checkShape(e, b)
	}
	for _, b := range blocks {
		if !expected[b.id] {
			fail("figure %s is not in figcheck's expectations — update internal/tools/figcheck", b.id)
		}
	}

	if failed {
		fmt.Printf("figcheck: FAIL (%d problems, %d figures seen)\n", problems, len(blocks))
		os.Exit(1)
	}
	fmt.Printf("figcheck: ok, %d figures match expected shape\n", len(blocks))
}

func checkShape(e expect, b *block) {
	if len(b.xs) < e.minRows {
		fail("figure %s has %d rows, want >= %d", e.id, len(b.xs), e.minRows)
	}
	if e.heatmap {
		// Complete grid: every row carries one value per column.
		for i, row := range b.rows {
			if len(row) != len(b.header) {
				fail("heatmap %s row %d has %d cells, want %d", e.id, i, len(row), len(b.header))
			}
			for j, cell := range row {
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					fail("heatmap %s cell (%d,%d) = %q is not numeric", e.id, i, j, cell)
				}
			}
		}
	} else {
		if got := len(b.header) - 1; got != e.series {
			fail("figure %s has %d series, want %d", e.id, got, e.series)
		}
		for i, row := range b.rows {
			if len(row) != len(b.header)-1 {
				fail("figure %s row %d has %d cells, want %d", e.id, i, len(row), len(b.header)-1)
			}
			for j, cell := range row {
				if cell == "-" {
					continue // series without a sample at this x
				}
				if _, err := strconv.ParseFloat(cell, 64); err != nil {
					fail("figure %s cell (%d,%d) = %q is not numeric", e.id, i, j, cell)
				}
			}
		}
	}
	// x values (row labels for heatmaps) must be strictly increasing:
	// duplicated or shuffled rows mean a broken sweep.
	for i := 1; i < len(b.xs); i++ {
		if b.xs[i] <= b.xs[i-1] {
			fail("figure %s x values not strictly increasing at row %d: %v after %v",
				e.id, i, b.xs[i], b.xs[i-1])
		}
	}
}

// parse splits exbench output into figure blocks. Note lines (#),
// per-figure timing trailers ([figN @ ...]) and blank lines are
// skipped; the first non-note line of a block is its column header.
func parse(r io.Reader) ([]*block, error) {
	var blocks []*block
	var cur *block
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "== "):
			rest := strings.TrimSuffix(strings.TrimPrefix(line, "== "), " ==")
			id, _, ok := strings.Cut(rest, ": ")
			if !ok {
				return nil, fmt.Errorf("figcheck: malformed figure header %q", line)
			}
			cur = &block{id: id}
			blocks = append(blocks, cur)
		case cur == nil, line == "", strings.HasPrefix(line, "#"), strings.HasPrefix(line, "["):
			// Prologue, notes, timing trailers.
		default:
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			if cur.header == nil {
				cur.header = fields
				continue
			}
			x, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				return nil, fmt.Errorf("figcheck: figure %s: row label %q is not numeric", cur.id, fields[0])
			}
			cur.xs = append(cur.xs, x)
			cur.rows = append(cur.rows, fields[1:])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return blocks, nil
}

var (
	failed   bool
	problems int
)

func fail(format string, args ...any) {
	failed = true
	problems++
	fmt.Printf("FAIL "+format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "figcheck: %v\n", err)
	os.Exit(2)
}
