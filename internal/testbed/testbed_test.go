package testbed

import (
	"strings"
	"testing"

	"exbox/internal/apps"
	"exbox/internal/excr"
	"exbox/internal/iqx"
	"exbox/internal/netsim"
)

func TestNewLimits(t *testing.T) {
	if New(WiFi, 1).MaxClients != 10 {
		t.Fatal("WiFi testbed should allow 10 clients")
	}
	if New(LTE, 1).MaxClients != 8 {
		t.Fatal("LTE testbed should allow 8 UEs")
	}
	if WiFi.String() != "wifi-testbed" || LTE.String() != "lte-testbed" {
		t.Fatal("Kind strings wrong")
	}
}

func TestRunRespectsClientLimit(t *testing.T) {
	tb := New(LTE, 2)
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 9)
	if _, err := tb.Run(m); err == nil {
		t.Fatal("9 clients should exceed the LTE limit")
	}
	ok := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 8)
	qoe, err := tb.Run(ok)
	if err != nil {
		t.Fatal(err)
	}
	if len(qoe) != 8 {
		t.Fatalf("got %d measurements", len(qoe))
	}
}

func TestLabel(t *testing.T) {
	tb := New(WiFi, 3)
	// Light load admits.
	light := excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web, Level: 0}
	y, err := tb.Label(light)
	if err != nil || y != 1 {
		t.Fatalf("light arrival: y=%v err=%v", y, err)
	}
	// Arrival beyond client limit errors.
	full := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 10),
		Class:  excr.Web, Level: 0,
	}
	if _, err := tb.Label(full); err == nil {
		t.Fatal("arrival beyond client limit should error")
	}
	// A heavy streaming matrix on the 20 Mbps hotspot is inadmissible.
	heavy := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 9),
		Class:  excr.Streaming, Level: 0,
	}
	y, err = tb.Label(heavy)
	if err != nil {
		t.Fatal(err)
	}
	if y != -1 {
		t.Fatal("10th streaming flow on a 20 Mbps cell should be labeled -1")
	}
}

func TestShaperRateCap(t *testing.T) {
	base := netsim.FluidWiFi{Config: netsim.TestbedWiFi()}
	flows := []netsim.FlowSpec{
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRHigh},
	}
	open := Shaper{Net: base}.Evaluate(flows)
	capped := Shaper{Net: base, RateBps: 2e6}.Evaluate(flows)
	var openTotal, cappedTotal float64
	for i := range flows {
		openTotal += open[i].ThroughputBps
		cappedTotal += capped[i].ThroughputBps
	}
	if openTotal < 4.9e6 {
		t.Fatalf("unshaped total = %v", openTotal)
	}
	if cappedTotal > 2e6+1 {
		t.Fatalf("capped total = %v, want <= 2e6", cappedTotal)
	}
	if capped[0].LossRate <= 0 {
		t.Fatal("throttling should surface as loss")
	}
	if capped[0].DelayMs <= open[0].DelayMs {
		t.Fatal("throttling should add queueing delay")
	}
}

func TestShaperDelayAndLoss(t *testing.T) {
	base := netsim.FluidWiFi{Config: netsim.TestbedWiFi()}
	flows := []netsim.FlowSpec{{Class: excr.Web, Level: excr.SNRHigh}}
	out := Shaper{Net: base, ExtraDelayMs: 200, LossRate: 0.1}.Evaluate(flows)
	plain := Shaper{Net: base}.Evaluate(flows)
	if out[0].DelayMs < plain[0].DelayMs+199 {
		t.Fatalf("delay %v should include +200 ms", out[0].DelayMs)
	}
	if out[0].LossRate < 0.099 {
		t.Fatalf("loss %v should include injected 10%%", out[0].LossRate)
	}
	if !strings.HasSuffix(Shaper{Net: base}.Name(), "+shaped") {
		t.Fatal("Name should mark shaping")
	}
}

func TestThrottleChangesLabels(t *testing.T) {
	// Figure 11's premise: a matrix that was admissible in the clean
	// network becomes inadmissible once the path is degraded.
	tb := New(WiFi, 4)
	a := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 2),
		Class:  excr.Web, Level: 0,
	}
	y1, err := tb.Label(a)
	if err != nil || y1 != 1 {
		t.Fatalf("clean network should admit: y=%v err=%v", y1, err)
	}
	tb.Throttle(0, 800, 0) // savage added latency
	y2, err := tb.Label(a)
	if err != nil {
		t.Fatal(err)
	}
	if y2 != -1 {
		t.Fatal("800 ms added latency should make web flows unacceptable")
	}
	tb.Unthrottle()
	y3, _ := tb.Label(a)
	if y3 != 1 {
		t.Fatal("unthrottling should restore admissibility")
	}
}

func TestTrainingSweepFitsIQX(t *testing.T) {
	// End-to-end Figure 12: sweep → IQX fit should track the app
	// models with small residuals relative to each metric's scale.
	tb := New(WiFi, 5)
	for _, class := range []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing} {
		pts := tb.TrainingSweep(class, DefaultSweepRates(), DefaultSweepDelays(), 3)
		if len(pts) != 10*7*3 {
			t.Fatalf("%v: %d points, want 210", class, len(pts))
		}
		qos := make([]float64, len(pts))
		qoe := make([]float64, len(pts))
		for i, p := range pts {
			qos[i] = p.QoS
			qoe[i] = p.QoE
		}
		res, err := iqx.Fit(qos, qoe)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		var limit float64
		switch class {
		case excr.Conferencing:
			limit = 6 // dB; paper reports RMSE 4.46 dB
		case excr.Streaming:
			limit = 5 // s; paper reports RMSE 3.64 s
		default:
			limit = 3.6 // s; paper reports RMSE 1.37 s on a narrower grid
		}
		if res.RMSE > limit {
			t.Fatalf("%v: IQX RMSE %v exceeds %v (model %v)", class, res.RMSE, limit, res.Model)
		}
		// Direction: delay-like metrics decrease with QoS, PSNR rises.
		if class == excr.Conferencing && res.Model.Decreasing() {
			t.Fatal("conferencing IQX should increase with QoS")
		}
		if class != excr.Conferencing && !res.Model.Decreasing() {
			t.Fatalf("%v IQX should decrease with QoS", class)
		}
	}
}

func TestTrainingSweepRestoresShaping(t *testing.T) {
	tb := New(WiFi, 6)
	tb.Throttle(5e6, 50, 0.01)
	before := tb.Network().Evaluate([]netsim.FlowSpec{{Class: excr.Web, Level: excr.SNRHigh}})
	tb.TrainingSweep(excr.Web, []float64{1e6}, []float64{10}, 1)
	after := tb.Network().Evaluate([]netsim.FlowSpec{{Class: excr.Web, Level: excr.SNRHigh}})
	if before[0] != after[0] {
		t.Fatalf("sweep leaked shaper state: %+v vs %+v", before[0], after[0])
	}
}

func TestOracleAccessors(t *testing.T) {
	tb := New(WiFi, 7)
	var _ apps.Oracle = tb.Oracle()
	if tb.Network() == nil {
		t.Fatal("Network is nil")
	}
	if !tb.Fits(excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 10)) {
		t.Fatal("10 clients should fit the WiFi testbed")
	}
	if tb.Fits(excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 11)) {
		t.Fatal("11 clients should not fit")
	}
}
