// Package testbed emulates the paper's laboratory setups: a WiFi
// hotspot hosted on a laptop serving 10 Samsung Galaxy S6 phones, and
// an ip.access E-40 LTE small cell serving 8 UEs, both with tc/netem
// style traffic shaping in the forwarding path.
//
// A Testbed wraps a netsim backend with a Shaper (rate throttling,
// added latency, injected loss), enforces the client-count limits the
// paper's hardware imposed, and exposes the two workflows the paper's
// controller script ran:
//
//   - Run: execute one traffic matrix and record every flow's
//     ground-truth QoE (the instrumented-app measurements).
//   - TrainingSweep: the Figure 12 methodology — drive a single
//     training device through a grid of shaped rate/latency profiles
//     and record (QoS, QoE) pairs for IQX fitting.
package testbed

import (
	"fmt"
	"math/rand"

	"exbox/internal/apps"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
)

// Shaper applies tc/netem-like impairments on top of a network
// backend: an aggregate rate cap (token-bucket style), additional
// fixed latency, and independent random loss.
type Shaper struct {
	Net netsim.Network
	// RateBps caps aggregate downlink goodput; 0 means unlimited.
	RateBps float64
	// ExtraDelayMs is added to every flow's delay (netem delay).
	ExtraDelayMs float64
	// LossRate is injected independently of congestion loss.
	LossRate float64
}

// Name implements netsim.Network.
func (s Shaper) Name() string { return s.Net.Name() + "+shaped" }

// Evaluate implements netsim.Network: it evaluates the inner network,
// then applies the cap, latency and loss impairments.
func (s Shaper) Evaluate(flows []netsim.FlowSpec) []metrics.QoS {
	qos := s.Net.Evaluate(flows)
	var total float64
	for _, q := range qos {
		total += q.ThroughputBps
	}
	scale := 1.0
	if s.RateBps > 0 && total > s.RateBps {
		scale = s.RateBps / total
	}
	// Utilization of the shaped bottleneck: how full the token bucket
	// runs. Without a cap the inner network's utilization stands.
	var capUtil float64
	if s.RateBps > 0 {
		capUtil = mathx.Clamp(total/s.RateBps, 0, 1)
	}
	for i := range qos {
		granted := qos[i].ThroughputBps * scale
		// Throttling shows up as a little steady-state loss and a
		// standing queue: TCP adapts its rate at the bottleneck, so
		// the loss a shaped flow actually sees stays small even when
		// the rate cut is deep.
		capLoss := 0.05 * (1 - scale)
		qos[i].ThroughputBps = granted
		qos[i].DelayMs += s.ExtraDelayMs
		if scale < 1 {
			qos[i].DelayMs += 200 * (1 - scale) // bufferbloat at the bottleneck
		}
		qos[i].LossRate = 1 - (1-qos[i].LossRate)*(1-s.LossRate)*(1-capLoss)
		qos[i].LossRate = mathx.Clamp(qos[i].LossRate, 0, 1)
		if capUtil > qos[i].Utilization {
			qos[i].Utilization = capUtil
		}
	}
	return qos
}

// Kind selects which lab testbed to emulate.
type Kind int

const (
	// WiFi is the laptop-hosted hotspot: ≈20 Mbps UDP capacity,
	// 30–40 ms RTT, at most 10 clients.
	WiFi Kind = iota
	// LTE is the ip.access E-40 small cell: >30 Mbps, 30–40 ms RTT,
	// at most 8 UEs.
	LTE
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == WiFi {
		return "wifi-testbed"
	}
	return "lte-testbed"
}

// Testbed is one emulated lab setup.
type Testbed struct {
	Kind       Kind
	MaxClients int
	shaper     Shaper
	oracle     apps.Oracle
	rng        *rand.Rand
}

// New returns a testbed of the given kind with the paper's hardware
// limits, seeded for reproducible app-measurement noise.
func New(kind Kind, seed int64) *Testbed {
	rng := mathx.NewRand(seed)
	var net netsim.Network
	maxClients := 10
	switch kind {
	case WiFi:
		net = netsim.FluidWiFi{Config: netsim.TestbedWiFi()}
	case LTE:
		net = netsim.FluidLTE{Config: netsim.TestbedLTE()}
		maxClients = 8
	default:
		panic(fmt.Sprintf("testbed: unknown kind %d", kind))
	}
	tb := &Testbed{
		Kind:       kind,
		MaxClients: maxClients,
		shaper:     Shaper{Net: net},
		rng:        rng,
	}
	tb.oracle = apps.Oracle{Net: tb.shaper, Rng: rng}
	return tb
}

// Throttle reconfigures the shaper, emulating the paper's tc/netem
// runs (e.g. the 200 ms added-latency network of Figure 11).
func (tb *Testbed) Throttle(rateBps, extraDelayMs, lossRate float64) {
	tb.shaper.RateBps = rateBps
	tb.shaper.ExtraDelayMs = extraDelayMs
	tb.shaper.LossRate = lossRate
	tb.oracle = apps.Oracle{Net: tb.shaper, Rng: tb.rng}
}

// Unthrottle removes all shaping.
func (tb *Testbed) Unthrottle() { tb.Throttle(0, 0, 0) }

// Network returns the (possibly shaped) network backend.
func (tb *Testbed) Network() netsim.Network { return tb.shaper }

// Oracle returns the ground-truth labeler backed by this testbed.
func (tb *Testbed) Oracle() apps.Oracle { return tb.oracle }

// Fits reports whether the matrix respects the testbed's client limit
// (the paper only ran matrices with ≤10 WiFi / ≤8 LTE flows).
func (tb *Testbed) Fits(m excr.Matrix) bool { return m.Total() <= tb.MaxClients }

// Run executes one traffic matrix on the testbed and returns the
// ground-truth QoE recorded by each client app. It returns an error if
// the matrix exceeds the client limit.
func (tb *Testbed) Run(m excr.Matrix) ([]apps.QoE, error) {
	if !tb.Fits(m) {
		return nil, fmt.Errorf("testbed: matrix %v needs %d clients, %s supports %d",
			m, m.Total(), tb.Kind, tb.MaxClients)
	}
	return tb.oracle.MeasureMatrix(m), nil
}

// Label returns the ground-truth admissibility Y for an arrival, or an
// error when the post-admission matrix exceeds the client limit.
func (tb *Testbed) Label(a excr.Arrival) (float64, error) {
	if !tb.Fits(a.After()) {
		return 0, fmt.Errorf("testbed: arrival would need %d clients", a.After().Total())
	}
	return tb.oracle.Label(a), nil
}

// SweepPoint is one (QoS, QoE) observation from a training sweep.
type SweepPoint struct {
	RateBps float64 // shaped rate for this profile
	DelayMs float64 // shaped latency for this profile
	QoS     float64 // network-side scalar QoS (throughput/delay)
	QoE     float64 // app-side ground truth (s or dB)
}

// TrainingSweep reproduces the Figure 12 data collection: a single
// training client of the given class runs alone while the shaper walks
// a grid of rate and latency profiles; each profile is repeated runs
// times with app noise. The caller fits IQX on the (QoS, QoE) columns.
//
// The paper's grid is rate 100 kbps–20 Mbps and latency 10–250 ms with
// 10 runs per profile.
func (tb *Testbed) TrainingSweep(class excr.AppClass, rates, delays []float64, runs int) []SweepPoint {
	if runs <= 0 {
		runs = 1
	}
	saved := tb.shaper
	defer func() {
		tb.shaper = saved
		tb.oracle = apps.Oracle{Net: tb.shaper, Rng: tb.rng}
	}()

	single := excr.NewMatrix(excr.DefaultSpace).Set(class, 0, 1)
	var out []SweepPoint
	for _, r := range rates {
		for _, d := range delays {
			tb.Throttle(r, d, 0)
			flows := netsim.FlowsForMatrix(single)
			for run := 0; run < runs; run++ {
				qos := tb.shaper.Evaluate(flows)[0]
				qoe := apps.Measure(class, qos, tb.rng)
				out = append(out, SweepPoint{
					RateBps: r,
					DelayMs: d,
					QoS:     qos.Scalar(),
					QoE:     qoe.Value,
				})
			}
		}
	}
	return out
}

// DefaultSweepRates returns the paper's shaped-rate grid,
// 100 kbps–20 Mbps.
func DefaultSweepRates() []float64 {
	return []float64{0.1e6, 0.25e6, 0.5e6, 1e6, 2e6, 4e6, 8e6, 12e6, 16e6, 20e6}
}

// DefaultSweepDelays returns the paper's added-latency grid,
// 10–250 ms.
func DefaultSweepDelays() []float64 {
	return []float64{10, 25, 50, 100, 150, 200, 250}
}
