package exboxcore

import (
	"errors"
	"strings"
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
)

// streamingApp is a YouTube-like multi-flow app: one dominant video
// flow plus an auxiliary web flow (recommendations/analytics).
func streamingApp() AppRequest {
	return AppRequest{Flows: []AppFlow{
		{Class: excr.Streaming, Dominant: true},
		{Class: excr.Web},
	}}
}

func TestAdmitAppAdmitsWholeApp(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 11)

	current := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 3)
	out, after, err := mb.AdmitApp("ap", current, streamingApp())
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != Admit {
		t.Fatalf("light cell should admit the app, got %v", out.Verdict)
	}
	// All flows (dominant + auxiliary) joined the matrix.
	if after.Get(excr.Streaming, 0) != 4 || after.Get(excr.Web, 0) != 1 {
		t.Fatalf("post matrix %v, want streaming 4 / web 1", after)
	}
}

func TestAdmitAppRejectsOnDominant(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 12)

	over := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 18).Set(excr.Conferencing, 0, 14)
	out, after, err := mb.AdmitApp("ap", over, streamingApp())
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != Reject {
		t.Fatalf("overloaded cell should reject, got %v", out.Verdict)
	}
	if !after.Equal(over) {
		t.Fatal("rejected app must not change the matrix")
	}
}

func TestAdmitAppDeprioritizeStillOccupies(t *testing.T) {
	mb := New(excr.DefaultSpace, Deprioritize)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 13)

	over := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 18).Set(excr.Conferencing, 0, 14)
	out, after, err := mb.AdmitApp("ap", over, streamingApp())
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != LowPriority {
		t.Fatalf("verdict = %v, want low-priority", out.Verdict)
	}
	if after.Total() != over.Total()+2 {
		t.Fatal("deprioritized app should still occupy the cell")
	}
}

func TestAdmitAppMultipleDominant(t *testing.T) {
	// A conferencing app with dominant audio+video flows: the second
	// dominant flow must be classified against the matrix including
	// the first.
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 14)
	req := AppRequest{Flows: []AppFlow{
		{Class: excr.Conferencing, Dominant: true},
		{Class: excr.Conferencing, Dominant: true},
	}}
	out, after, err := mb.AdmitApp("ap", excr.NewMatrix(excr.DefaultSpace), req)
	if err != nil || out.Verdict != Admit {
		t.Fatalf("verdict=%v err=%v", out.Verdict, err)
	}
	if after.Get(excr.Conferencing, 0) != 2 {
		t.Fatalf("post matrix %v", after)
	}
}

func TestAdmitAppErrors(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	_, _, err := mb.AdmitApp("ap", excr.NewMatrix(excr.DefaultSpace), AppRequest{Flows: []AppFlow{{Class: excr.Web}}})
	if !errors.Is(err, ErrNoDominantFlow) {
		t.Fatalf("err = %v, want ErrNoDominantFlow", err)
	}
	_, _, err = mb.AdmitApp("ghost", excr.NewMatrix(excr.DefaultSpace), streamingApp())
	if !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("err = %v, want ErrUnknownCell", err)
	}
}

func TestMigrateFlow(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("wifi", classifier.DefaultConfig())
	mb.AddCell("lte", classifier.DefaultConfig())
	trainCell(t, mb, "wifi", wifiOracle(), 15)
	trainCell(t, mb, "lte", lteOracle(), 16)

	wifiM := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 5)
	lteM := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 2)
	f := ActiveFlow{ID: 1, Class: excr.Streaming}

	newWifi, newLTE, err := mb.MigrateFlow("wifi", "lte", wifiM, lteM, f)
	if err != nil {
		t.Fatal(err)
	}
	if newWifi.Get(excr.Streaming, 0) != 4 || newLTE.Get(excr.Streaming, 0) != 1 {
		t.Fatalf("migration matrices wrong: %v / %v", newWifi, newLTE)
	}

	// Migrating a flow the source does not carry fails.
	if _, _, err := mb.MigrateFlow("wifi", "lte", excr.NewMatrix(excr.DefaultSpace), lteM, f); err == nil {
		t.Fatal("absent flow should fail")
	}
	// Target refusing: overload the LTE matrix.
	overLTE := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Streaming, 0, 18).Set(excr.Web, 0, 15).Set(excr.Conferencing, 0, 15)
	_, _, err = mb.MigrateFlow("wifi", "lte", wifiM, overLTE, f)
	if err == nil || !strings.Contains(err.Error(), "cannot take") {
		t.Fatalf("err = %v, want target-refused", err)
	}
	// Unknown source cell.
	if _, _, err := mb.MigrateFlow("ghost", "lte", wifiM, lteM, f); !errors.Is(err, ErrUnknownCell) {
		t.Fatal("unknown source should fail")
	}
}
