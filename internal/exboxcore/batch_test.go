package exboxcore

import (
	"errors"
	"strings"
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/obs"
	"exbox/internal/traffic"
)

// twinMiddlebox builds one instrumented, deterministically trained
// middlebox; calling it twice with the same seed yields bit-identical
// models, so the per-packet and burst paths can be compared on
// separate instances without sharing any telemetry state.
func twinMiddlebox(t *testing.T, seed int64) (*Middlebox, *obs.Registry) {
	t.Helper()
	mb := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	mb.Instrument(reg, 1024)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	trainCell(t, mb, "ap", wifiOracle(), seed)
	return mb, reg
}

// burstPlan cuts n candidates into bursts of cycling sizes, returning
// the boundary offsets [0, s1, s1+s2, ..., n].
func burstPlan(n int) []int {
	sizes := []int{1, 3, 8, 17, 32}
	bounds := []int{0}
	for i := 0; bounds[len(bounds)-1] < n; i++ {
		next := bounds[len(bounds)-1] + sizes[i%len(sizes)]
		if next > n {
			next = n
		}
		bounds = append(bounds, next)
	}
	return bounds
}

// stripTimed drops the wall-clock-dependent registry lines (latency
// and fit-duration histograms) so the rest of the telemetry — verdict
// and margin counters, histogram bucket counts, training-size gauges —
// can be compared exactly across the two paths.
func stripTimed(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, "seconds") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestAdmitBurstMatchesPerPacket is the burst datapath's determinism
// pin: the same candidate sequence driven per packet (each decision
// conditioning on the matrix left by the previous one) and driven
// through AdmitBurst in mixed-size bursts must produce bit-identical
// outcomes, identical audit-ring records modulo timestamps, and
// identical non-timing telemetry.
func TestAdmitBurstMatchesPerPacket(t *testing.T) {
	mbA, regA := twinMiddlebox(t, 7)
	mbB, regB := twinMiddlebox(t, 7)
	space := excr.DefaultSpace

	const n = 150
	cands := make([]BurstCandidate, n)
	for i := range cands {
		cands[i] = BurstCandidate{Class: excr.AppClass(i % space.Classes), Level: 0}
	}
	bounds := burstPlan(n)

	// decay drains the matrix at burst boundaries (flows expiring), so
	// the load hovers around the region boundary and the verdict
	// sequence alternates — the cascade's multi-pass case.
	decay := func(counts []int) {
		for i := range counts {
			counts[i] = counts[i] * 3 / 4
		}
	}

	// Per-packet reference on middlebox A.
	perPkt := make([]Outcome, 0, n)
	countsA := make([]int, space.Dim())
	var s classifier.Scratch
	for bi := 1; bi < len(bounds); bi++ {
		for g := bounds[bi-1]; g < bounds[bi]; g++ {
			c := cands[g]
			out, err := mbA.AdmitWith("ap", excr.Arrival{
				Matrix: excr.MatrixFromCounts(space, countsA), Class: c.Class, Level: c.Level,
			}, &s)
			if err != nil {
				t.Fatal(err)
			}
			perPkt = append(perPkt, out)
			if out.Verdict == Admit {
				countsA[space.CellIndex(c.Class, c.Level)]++
			}
		}
		decay(countsA)
	}

	// Burst path on middlebox B.
	burst := make([]Outcome, 0, n)
	countsB := make([]int, space.Dim())
	var bs BurstScratch
	var dst []Outcome
	for bi := 1; bi < len(bounds); bi++ {
		lo, hi := bounds[bi-1], bounds[bi]
		var err error
		dst, err = mbB.AdmitBurst("ap", excr.MatrixFromCounts(space, countsB), cands[lo:hi], dst, &bs)
		if err != nil {
			t.Fatal(err)
		}
		for k, out := range dst {
			burst = append(burst, out)
			if out.Verdict == Admit {
				c := cands[lo+k]
				countsB[space.CellIndex(c.Class, c.Level)]++
			}
		}
		decay(countsB)
	}

	if len(perPkt) != len(burst) {
		t.Fatalf("outcome counts differ: %d vs %d", len(perPkt), len(burst))
	}
	admits, rejects := 0, 0
	for i := range perPkt {
		if perPkt[i] != burst[i] {
			t.Fatalf("outcome %d diverged:\nper-packet %+v\nburst      %+v", i, perPkt[i], burst[i])
		}
		if perPkt[i].Verdict == Admit {
			admits++
		} else {
			rejects++
		}
	}
	// The sequence must exercise both verdicts, or the cascade's
	// breaker logic was never on trial.
	if admits == 0 || rejects == 0 {
		t.Fatalf("degenerate workload: %d admits, %d rejects", admits, rejects)
	}

	// Audit rings: same records in the same order, modulo timestamps.
	ringA, ringB := regA.Ring().Snapshot(), regB.Ring().Snapshot()
	if len(ringA) != len(ringB) {
		t.Fatalf("ring lengths differ: %d vs %d", len(ringA), len(ringB))
	}
	for i := range ringA {
		a, b := ringA[i], ringB[i]
		a.UnixNanos, b.UnixNanos = 0, 0
		if a != b {
			t.Fatalf("ring record %d diverged:\nper-packet %+v\nburst      %+v", i, a, b)
		}
	}

	// Every non-timing metric line — verdict counters, margin buckets,
	// classifier counters, health gauges — must agree exactly.
	if a, b := stripTimed(regA.String()), stripTimed(regB.String()); a != b {
		t.Fatalf("telemetry diverged:\nper-packet:\n%s\nburst:\n%s", a, b)
	}
}

// TestAdmitBurstBootstrap covers the one-pass fast path: a
// bootstrapping cell admits everything, so the whole burst commits on
// the first assume-admit pass with Bootstrap flagged on every outcome.
func TestAdmitBurstBootstrap(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	mb.Instrument(reg, 64)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	cands := make([]BurstCandidate, 10)
	for i := range cands {
		cands[i] = BurstCandidate{Class: excr.AppClass(i % 3)}
	}
	out, err := mb.AdmitBurst("ap", excr.NewMatrix(excr.DefaultSpace), cands, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Verdict != Admit || !o.Decision.Bootstrap {
			t.Fatalf("outcome %d: %+v, want bootstrap admit", i, o)
		}
	}
	if got := mb.Cell("ap").admitN.Value(); got != 10 {
		t.Fatalf("admit counter %d, want 10", got)
	}
	if got := reg.Ring().Len(); got != 10 {
		t.Fatalf("ring has %d records, want 10", got)
	}
}

func TestAdmitBurstUnknownCell(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AdmitBurst("ghost", excr.NewMatrix(excr.DefaultSpace), []BurstCandidate{{}}, nil, nil); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("err = %v, want ErrUnknownCell", err)
	}
	if _, err := mb.AdmitBatch("ghost", []excr.Arrival{{Matrix: excr.NewMatrix(excr.DefaultSpace)}}, nil, nil); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("err = %v, want ErrUnknownCell", err)
	}
	if err := mb.ObserveBatch("ghost", []excr.Sample{{Arrival: excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace)}, Label: 1}}); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("err = %v, want ErrUnknownCell", err)
	}
}

// TestAdmitBatchMatchesAdmit pins the independent-arrivals batch: the
// same arrivals decided one by one and in one AdmitBatch call must
// agree bit for bit, including the audit trail.
func TestAdmitBatchMatchesAdmit(t *testing.T) {
	mbA, regA := twinMiddlebox(t, 11)
	mbB, regB := twinMiddlebox(t, 11)
	space := excr.DefaultSpace

	arrivals := make([]excr.Arrival, 40)
	for i := range arrivals {
		m := excr.NewMatrix(space).
			Set(excr.Web, 0, i%12).Set(excr.Streaming, 0, (i*7)%20).Set(excr.Conferencing, 0, i%9)
		arrivals[i] = excr.Arrival{Matrix: m, Class: excr.AppClass(i % space.Classes)}
	}

	var s classifier.Scratch
	perOne := make([]Outcome, len(arrivals))
	for i, a := range arrivals {
		out, err := mbA.AdmitWith("ap", a, &s)
		if err != nil {
			t.Fatal(err)
		}
		perOne[i] = out
	}
	batch, err := mbB.AdmitBatch("ap", arrivals, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perOne {
		if perOne[i] != batch[i] {
			t.Fatalf("outcome %d diverged:\nper-one %+v\nbatch   %+v", i, perOne[i], batch[i])
		}
	}
	ringA, ringB := regA.Ring().Snapshot(), regB.Ring().Snapshot()
	if len(ringA) != len(ringB) {
		t.Fatalf("ring lengths differ: %d vs %d", len(ringA), len(ringB))
	}
	for i := range ringA {
		a, b := ringA[i], ringB[i]
		a.UnixNanos, b.UnixNanos = 0, 0
		if a != b {
			t.Fatalf("ring record %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if a, b := stripTimed(regA.String()), stripTimed(regB.String()); a != b {
		t.Fatalf("telemetry diverged:\nper-one:\n%s\nbatch:\n%s", a, b)
	}
}

// TestObserveBatchMatchesObserve drives the same labeled feed through
// per-sample Observe and through ObserveBatch bursts — across the
// bootstrap graduation and subsequent refits — and requires the
// resulting models to decide identically.
func TestObserveBatchMatchesObserve(t *testing.T) {
	build := func() *Middlebox {
		mb := New(excr.DefaultSpace, Discontinue)
		if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
			t.Fatal(err)
		}
		return mb
	}
	mbA, mbB := build(), build()

	o := wifiOracle()
	samples := make([]excr.Sample, 0, 200)
	for i := 0; i < 200; i++ {
		m := excr.NewMatrix(excr.DefaultSpace).
			Set(excr.Web, 0, i%15).Set(excr.Streaming, 0, (i*3)%22).Set(excr.Conferencing, 0, (i*5)%11)
		a := excr.Arrival{Matrix: m, Class: excr.AppClass(i % 3)}
		samples = append(samples, excr.Sample{Arrival: a, Label: o.Label(a)})
	}

	for _, s := range samples {
		if err := mbA.Observe("ap", s); err != nil {
			t.Fatal(err)
		}
	}
	bounds := burstPlan(len(samples))
	for bi := 1; bi < len(bounds); bi++ {
		if err := mbB.ObserveBatch("ap", samples[bounds[bi-1]:bounds[bi]]); err != nil {
			t.Fatal(err)
		}
	}

	ca, cb := mbA.Cell("ap").Classifier, mbB.Cell("ap").Classifier
	if ca.Bootstrapping() != cb.Bootstrapping() {
		t.Fatalf("phase diverged: %v vs %v", ca.Bootstrapping(), cb.Bootstrapping())
	}
	if ca.ModelVersion() != cb.ModelVersion() {
		t.Fatalf("model version diverged: %d vs %d", ca.ModelVersion(), cb.ModelVersion())
	}
	var s classifier.Scratch
	for i := 0; i < 60; i++ {
		m := excr.NewMatrix(excr.DefaultSpace).
			Set(excr.Web, 0, i%18).Set(excr.Streaming, 0, (i*7)%18).Set(excr.Conferencing, 0, i%7)
		a := excr.Arrival{Matrix: m, Class: excr.AppClass(i % 3)}
		da := ca.DecideScratch(a, &s)
		db := cb.DecideScratch(a, &s)
		if da != db {
			t.Fatalf("probe %d: decisions diverged %+v vs %+v", i, da, db)
		}
	}
}

// TestAdmitWithZeroAlloc pins the single-packet admission path on an
// uninstrumented middlebox: with a caller-owned scratch, AdmitWith
// must not allocate. The batch paths ride on the same scorer, so this
// is the floor the burst pipeline amortizes from.
func TestAdmitWithZeroAlloc(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 7)
	a := lightArrival()
	var s classifier.Scratch
	if _, err := mb.AdmitWith("ap", a, &s); err != nil {
		t.Fatal(err)
	}
	var sink float64
	if got := testing.AllocsPerRun(200, func() {
		out, _ := mb.AdmitWith("ap", a, &s)
		sink += out.Decision.Margin
	}); got != 0 {
		t.Errorf("AdmitWith: %v allocs/op, want 0", got)
	}
	_ = sink
}

// TestAdmitObserveMixedSteadyStateAllocs pins the mixed datapath the
// ingest workers actually run — admissions interleaved with feedback
// observations whose tuples recur (replacement hits) — at zero
// allocations per operation once warmed. This is the AllocsPerRun twin
// of BenchmarkAdmitObserveMixed's CI allocs gate.
func TestAdmitObserveMixedSteadyStateAllocs(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	cfg := classifier.DefaultConfig()
	// Deferred retraining keeps fits off the measured path, as in the
	// live gateway; graduation is forced explicitly.
	cfg.DeferRetrain = true
	mb.AddCell("ap", cfg)
	o := wifiOracle()
	rng := mathx.NewRand(7)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mb.Cell("ap").Classifier.ForceOnline(); err != nil {
		t.Fatal(err)
	}
	a := lightArrival()
	s := excr.Sample{Arrival: a, Label: 1}
	var sc classifier.Scratch
	mb.Observe("ap", s) // insert the key once
	mb.AdmitWith("ap", a, &sc)
	var sink float64
	i := 0
	if got := testing.AllocsPerRun(320, func() {
		if i%16 == 15 {
			mb.Observe("ap", s)
		} else {
			out, _ := mb.AdmitWith("ap", a, &sc)
			sink += out.Decision.Margin
		}
		i++
	}); got != 0 {
		t.Errorf("mixed Observe/Admit steady state: %v allocs/op, want 0", got)
	}
	_ = sink
}
