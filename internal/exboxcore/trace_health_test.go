package exboxcore

import (
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/obs"
	"exbox/internal/obs/trace"
)

func lightArrival() excr.Arrival {
	return excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web}
}

func overloadArrival() excr.Arrival {
	return excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).
			Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 18).Set(excr.Conferencing, 0, 15),
		Class: excr.Streaming,
	}
}

func TestInstrumentIdempotent(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap0", classifier.DefaultConfig())
	reg := obs.NewRegistry()
	mb.Instrument(reg, 16)
	trainCell(t, mb, "ap0", wifiOracle(), 9)
	ring := mb.AuditRing()
	if ring == nil {
		t.Fatal("instrumented middlebox has no audit ring")
	}
	if !mb.Cell("ap0").Classifier.HealthEnabled() {
		t.Fatal("Instrument did not enable health monitoring")
	}
	for i := 0; i < 5; i++ {
		if _, err := mb.Admit("ap0", lightArrival()); err != nil {
			t.Fatal(err)
		}
	}
	history := len(ring.Snapshot())
	if history != 5 {
		t.Fatalf("ring holds %d records, want 5", history)
	}

	// A later cell plus a re-Instrument with the same registry: the new
	// cell gets wired, the ring and its history survive, and nothing
	// double-registers (Registry panics on duplicate names).
	mb.AddCell("ap1", classifier.DefaultConfig())
	mb.Instrument(reg, 16)
	if mb.AuditRing() != ring {
		t.Fatal("re-Instrument with the same registry replaced the audit ring")
	}
	if got := len(ring.Snapshot()); got != history {
		t.Fatalf("re-Instrument lost ring history: %d records, had %d", got, history)
	}
	if !mb.Cell("ap1").Classifier.HealthEnabled() {
		t.Fatal("cell added after Instrument not wired by the second call")
	}

	// A different registry is a restart: everything re-wires and the
	// ring is fresh.
	mb.Instrument(obs.NewRegistry(), 16)
	if mb.AuditRing() == ring {
		t.Fatal("fresh registry should get a fresh audit ring")
	}
	if got := len(mb.AuditRing().Snapshot()); got != 0 {
		t.Fatalf("fresh ring carries %d stale records", got)
	}
}

func TestAdmitTracedEmitsDecisionSpan(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap0", classifier.DefaultConfig())
	trainCell(t, mb, "ap0", wifiOracle(), 10)
	tr := trace.New(8, 1)
	mb.InstrumentTracing(tr)
	if mb.Tracer() != tr {
		t.Fatal("Tracer accessor lost the tracer")
	}

	ft := tr.Start(trace.ID(1), "ap0", int(excr.Web), 0, "sampled")
	out, err := mb.AdmitTraced("ap0", lightArrival(), nil, ft)
	if err != nil {
		t.Fatal(err)
	}
	if err := mb.ObserveTraced("ap0", excr.Sample{Arrival: lightArrival(), Label: 1}, ft); err != nil {
		t.Fatal(err)
	}
	ft.Close()

	v := tr.Snapshot()[0]
	if len(v.Spans) != 2 {
		t.Fatalf("want decision+observe spans, got %+v", v.Spans)
	}
	d := v.Spans[0]
	if d.Kind != trace.KindDecision || d.Verdict != out.Verdict.String() {
		t.Fatalf("decision span wrong: %+v (outcome %+v)", d, out)
	}
	if d.Margin != out.Decision.Margin || d.Depth != out.Decision.Depth {
		t.Fatalf("span margin/depth diverge from outcome: %+v vs %+v", d, out.Decision)
	}
	if d.Model == 0 || d.Model != mb.Cell("ap0").Classifier.ModelVersion() {
		t.Fatalf("decision span model version = %d, want %d", d.Model, mb.Cell("ap0").Classifier.ModelVersion())
	}
	if d.UnixNanos == 0 || d.Bootstrap {
		t.Fatalf("decision span not stamped: %+v", d)
	}
	if v.Verdict != out.Verdict.String() {
		t.Fatalf("trace verdict %q, want %q", v.Verdict, out.Verdict)
	}
	o := v.Spans[1]
	if o.Kind != trace.KindObserve || o.Note != "label +1" {
		t.Fatalf("observe span wrong: %+v", o)
	}
}

func TestSelectNetworkTracedSpan(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("wifi", classifier.DefaultConfig())
	mb.AddCell("lte", classifier.DefaultConfig())
	trainCell(t, mb, "wifi", wifiOracle(), 2)
	trainCell(t, mb, "lte", lteOracle(), 3)
	tr := trace.New(8, 1)
	mb.InstrumentTracing(tr)

	ft := tr.Start(trace.ID(2), "", int(excr.Web), 0, "sampled")
	out, ok, err := mb.SelectNetworkTraced([]Candidate{
		{Cell: "wifi", Arrival: lightArrival()},
		{Cell: "lte", Arrival: lightArrival()},
	}, nil, ft)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	sp := ft.View().Spans[0]
	if sp.Kind != trace.KindSelect || sp.Verdict != "cell:"+string(out.Cell) {
		t.Fatalf("select span wrong: %+v (winner %s)", sp, out.Cell)
	}
	if sp.Note != "2 candidates" {
		t.Fatalf("select note = %q", sp.Note)
	}

	// No admitter: the span must say so instead of naming a cell.
	ft2 := tr.Start(trace.ID(3), "", int(excr.Streaming), 0, "sampled")
	_, ok, err = mb.SelectNetworkTraced([]Candidate{
		{Cell: "wifi", Arrival: overloadArrival()},
	}, nil, ft2)
	if err != nil || ok {
		t.Fatalf("overload should not be admitted (ok=%v err=%v)", ok, err)
	}
	if got := ft2.View().Spans[0].Verdict; got != "no-admitting-cell" {
		t.Fatalf("fallback select verdict = %q", got)
	}
}

// TestReevaluateTracedSpans pins the monitoring shape of a traced flow:
// consecutive "keep" sweeps coalesce into one Monitor span whose Count
// is the streak length, and a flip lands a distinct Reevaluate span
// that flips the trace verdict.
func TestReevaluateTracedSpans(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 5)
	tr := trace.New(8, 1)
	mb.InstrumentTracing(tr)

	ft := tr.Start(trace.ID(4), "ap", int(excr.Web), 0, "sampled")
	comfy := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 3).Set(excr.Streaming, 0, 2)
	active := []ActiveFlow{{ID: 1, Class: excr.Web, Trace: ft}, {ID: 2, Class: excr.Streaming}}
	for i := 0; i < 3; i++ {
		evict, err := mb.Reevaluate("ap", comfy, active)
		if err != nil {
			t.Fatal(err)
		}
		if len(evict) != 0 {
			t.Fatalf("comfortable sweep %d evicted %v", i, evict)
		}
	}
	v := ft.View()
	if len(v.Spans) != 1 || v.Spans[0].Kind != trace.KindMonitor || v.Spans[0].Count != 3 {
		t.Fatalf("3 keep sweeps should coalesce into one Monitor span: %+v", v.Spans)
	}
	if v.Spans[0].Verdict != "keep" || v.Spans[0].Model == 0 {
		t.Fatalf("monitor span wrong: %+v", v.Spans[0])
	}

	over := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 19).Set(excr.Conferencing, 0, 14)
	evict, err := mb.Reevaluate("ap", over, []ActiveFlow{{ID: 3, Class: excr.Streaming, Trace: ft}})
	if err != nil {
		t.Fatal(err)
	}
	if len(evict) != 1 {
		t.Fatalf("overloaded sweep should evict the streaming flow, got %v", evict)
	}
	v = ft.View()
	if len(v.Spans) != 2 || v.Spans[1].Kind != trace.KindReevaluate || v.Spans[1].Verdict != "evict" {
		t.Fatalf("flip should append a Reevaluate span: %+v", v.Spans)
	}
	if v.Verdict != "evict" {
		t.Fatalf("trace verdict should follow the flip, got %q", v.Verdict)
	}
}

// TestAdmitTracedUnsampledZeroAlloc pins the acceptance criterion: the
// unsampled admission path (nil FlowTrace) on a tracing-enabled
// middlebox allocates nothing. The middlebox is deliberately left
// without a metrics registry — the instrumented path's audit-ring
// record is a separate, accounted allocation.
func TestAdmitTracedUnsampledZeroAlloc(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 7)
	mb.InstrumentTracing(trace.New(64, 16))
	a := lightArrival()
	var s classifier.Scratch
	if _, err := mb.AdmitTraced("ap", a, &s, nil); err != nil {
		t.Fatal(err)
	}
	var sink float64
	if got := testing.AllocsPerRun(200, func() {
		out, _ := mb.AdmitTraced("ap", a, &s, nil)
		sink += out.Decision.Margin
	}); got != 0 {
		t.Errorf("unsampled AdmitTraced: %v allocs/op, want 0", got)
	}
	_ = sink
}

// TestHealthVerdicts drives the report through its states: a fresh
// instrumented middlebox is green (checks without evidence are skipped,
// not judged), and tightened thresholds turn real signals yellow/red.
func TestHealthVerdicts(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	reg := obs.NewRegistry()
	mb.Instrument(reg, 64)

	// Bootstrapping cell, empty ring: nothing to judge.
	rep := mb.Health()
	if rep.Status != Green {
		t.Fatalf("fresh middlebox status = %v, want green: %+v", rep.Status, rep)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Cell != "ap" || !rep.Cells[0].Bootstrapping {
		t.Fatalf("cell slice wrong: %+v", rep.Cells)
	}
	if len(rep.Cells[0].Checks) != 0 {
		t.Fatalf("bootstrap cell judged prematurely: %+v", rep.Cells[0].Checks)
	}

	trainCell(t, mb, "ap", wifiOracle(), 11)
	rep = mb.Health()
	cell := rep.Cells[0]
	if cell.Bootstrapping || cell.ModelVersion == 0 || cell.Health == nil {
		t.Fatalf("online cell report wrong: %+v", cell)
	}
	var haveCV, haveRetrain bool
	for _, chk := range cell.Checks {
		switch chk.Name {
		case "cv_accuracy":
			haveCV = true
		case "retrain_latency":
			haveRetrain = true
		}
	}
	if !haveCV || !haveRetrain {
		t.Fatalf("online cell missing cv/retrain checks: %+v", cell.Checks)
	}
	if rep.Status != Green {
		t.Fatalf("healthy online cell status = %v: %+v", rep.Status, rep)
	}

	// An impossible retrain budget turns the same evidence red, and the
	// rollup follows the worst check.
	tight := DefaultHealthThresholds()
	tight.RetrainSecondsYellow = 0
	tight.RetrainSecondsRed = 0
	rep = mb.HealthWith(tight)
	if rep.Status != Red {
		t.Fatalf("zero retrain budget should be red, got %v: %+v", rep.Status, rep)
	}

	// A rejection spike: fill the audit tail with rejects and shrink the
	// window so it is judged.
	for i := 0; i < 8; i++ {
		if _, err := mb.Admit("ap", overloadArrival()); err != nil {
			t.Fatal(err)
		}
	}
	th := DefaultHealthThresholds()
	th.RejectWindow = 8
	th.RejectFracYellow = 0.25
	th.RejectFracRed = 0.75
	rep = mb.HealthWith(th)
	var spike *HealthCheck
	for i := range rep.Checks {
		if rep.Checks[i].Name == "rejection_spike" {
			spike = &rep.Checks[i]
		}
	}
	if spike == nil {
		t.Fatalf("rejection_spike not judged: %+v", rep.Checks)
	}
	if spike.Status != Red || spike.Value != 1 {
		t.Fatalf("all-reject tail should be red at frac 1: %+v", spike)
	}
	if rep.Status != Red {
		t.Fatalf("rollup should follow the spike: %v", rep.Status)
	}
}

func TestHealthStatusJSONAndStrings(t *testing.T) {
	if Green.String() != "green" || Yellow.String() != "yellow" || Red.String() != "red" {
		t.Fatal("status strings wrong")
	}
	b, err := Yellow.MarshalJSON()
	if err != nil || string(b) != `"yellow"` {
		t.Fatalf("MarshalJSON = %s, %v", b, err)
	}
	if worse(Green, Yellow) != Yellow || worse(Red, Yellow) != Red {
		t.Fatal("worse() wrong")
	}
}
