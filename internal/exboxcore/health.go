package exboxcore

import (
	"fmt"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/obs/flightrec"
)

// HealthStatus is the middlebox's traffic-light verdict: Green is
// nominal, Yellow is degraded-but-serving, Red needs operator
// attention. The overall verdict is the worst of the individual
// checks, so a single red check turns the whole report red.
type HealthStatus int

const (
	Green HealthStatus = iota
	Yellow
	Red
)

// String implements fmt.Stringer.
func (s HealthStatus) String() string {
	switch s {
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	default:
		return "red"
	}
}

// MarshalJSON renders the status as its color name, so /debug/health
// reads "yellow" rather than 1.
func (s HealthStatus) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// worse returns the more severe of two statuses.
func worse(a, b HealthStatus) HealthStatus {
	if b > a {
		return b
	}
	return a
}

// HealthThresholds are the cut points the health verdict applies. The
// zero value is not usable; start from DefaultHealthThresholds.
type HealthThresholds struct {
	// DriftYellow/DriftRed bound the margin-distribution PSI against
	// the post-graduation reference window. The conventional PSI
	// reading: < 0.1 stable, 0.1–0.25 shifting, > 0.25 shifted.
	DriftYellow float64 `json:"drift_yellow"`
	DriftRed    float64 `json:"drift_red"`
	// AgreementYellow/AgreementRed bound the online agreement EWMA
	// (how often the live model matches incoming ground-truth labels);
	// the same cut points apply to the cross-validation accuracy. The
	// check waits for MinAgreementSamples before judging.
	AgreementYellow     float64 `json:"agreement_yellow"`
	AgreementRed        float64 `json:"agreement_red"`
	MinAgreementSamples int     `json:"min_agreement_samples"`
	// RetrainSecondsYellow/RetrainSecondsRed bound the worst fit wall
	// time over the last RetrainRecent retrains — the retrain-latency
	// budget: an online classifier that takes seconds to refit is
	// falling behind its own batch cadence.
	RetrainSecondsYellow float64 `json:"retrain_seconds_yellow"`
	RetrainSecondsRed    float64 `json:"retrain_seconds_red"`
	RetrainRecent        int     `json:"retrain_recent"`
	// RejectFracYellow/RejectFracRed bound the rejected fraction of the
	// last RejectWindow audited decisions (middlebox-wide). A rejection
	// spike is the operator-visible symptom of a capacity region that
	// collapsed — whether from real congestion or a bad model.
	RejectFracYellow float64 `json:"reject_frac_yellow"`
	RejectFracRed    float64 `json:"reject_frac_red"`
	RejectWindow     int     `json:"reject_window"`
}

// DefaultHealthThresholds returns the cut points described on
// HealthThresholds.
func DefaultHealthThresholds() HealthThresholds {
	return HealthThresholds{
		DriftYellow:          0.10,
		DriftRed:             0.25,
		AgreementYellow:      0.75,
		AgreementRed:         0.60,
		MinAgreementSamples:  32,
		RetrainSecondsYellow: 0.5,
		RetrainSecondsRed:    2.0,
		RetrainRecent:        8,
		RejectFracYellow:     0.5,
		RejectFracRed:        0.9,
		RejectWindow:         64,
	}
}

// HealthCheck is one evaluated signal: its measured value and the
// status the thresholds assign it.
type HealthCheck struct {
	Name   string       `json:"name"`
	Status HealthStatus `json:"status"`
	Value  float64      `json:"value"`
	Detail string       `json:"detail,omitempty"`
}

// CellHealth is one cell's slice of the health report.
type CellHealth struct {
	Cell          string        `json:"cell"`
	Status        HealthStatus  `json:"status"`
	ModelVersion  uint64        `json:"model_version"`
	Bootstrapping bool          `json:"bootstrapping"`
	Checks        []HealthCheck `json:"checks,omitempty"`
	// Health is the classifier's raw monitor snapshot (retrain history,
	// drift, agreement) when health monitoring is enabled on the cell.
	Health *classifier.HealthSnapshot `json:"health,omitempty"`
}

// HealthReport is the full /debug/health payload: the overall verdict,
// the middlebox-wide checks, and one entry per cell.
type HealthReport struct {
	Status    HealthStatus  `json:"status"`
	UnixNanos int64         `json:"unix_nanos"`
	Checks    []HealthCheck `json:"checks,omitempty"`
	Cells     []CellHealth  `json:"cells"`
}

// grade places v against yellow/red cut points; low=true means lower
// is worse (accuracy-like signals), low=false means higher is worse
// (drift, latency, rejection fraction).
func grade(v, yellow, red float64, low bool) HealthStatus {
	if low {
		switch {
		case v <= red:
			return Red
		case v <= yellow:
			return Yellow
		}
		return Green
	}
	switch {
	case v >= red:
		return Red
	case v >= yellow:
		return Yellow
	}
	return Green
}

// Health computes the health report with the default thresholds.
func (mb *Middlebox) Health() HealthReport {
	return mb.HealthWith(DefaultHealthThresholds())
}

// HealthWith computes the green/yellow/red verdict from the signals
// the health monitors have accumulated: per cell, the margin-drift
// PSI, the online agreement EWMA, the cross-validation accuracy, and
// the retrain-latency budget; middlebox-wide, the rejected fraction of
// the audit ring's tail. Signals that have not accumulated enough
// evidence (a bootstrapping cell, a short audit ring) are skipped
// rather than judged, so a freshly started gateway reports green. It
// runs off the hot path (snapshots and ring walks take locks) and is
// meant for scrape-time or periodic-sweep use.
func (mb *Middlebox) HealthWith(th HealthThresholds) HealthReport {
	rep := HealthReport{UnixNanos: time.Now().UnixNano()}

	// Middlebox-wide: rejection spike over the audit ring's tail. Only
	// judged on a full window, so startup noise doesn't trip it.
	if ring := mb.AuditRing(); ring != nil && th.RejectWindow > 0 {
		recs := ring.Snapshot()
		if len(recs) >= th.RejectWindow {
			tail := recs[len(recs)-th.RejectWindow:]
			rejected := 0
			for _, r := range tail {
				if r.Verdict != Admit.String() {
					rejected++
				}
			}
			frac := float64(rejected) / float64(len(tail))
			rep.Checks = append(rep.Checks, HealthCheck{
				Name:   "rejection_spike",
				Status: grade(frac, th.RejectFracYellow, th.RejectFracRed, false),
				Value:  frac,
				Detail: fmt.Sprintf("%d of last %d decisions not admitted", rejected, len(tail)),
			})
		}
	}

	for _, c := range mb.Cells() {
		ch := CellHealth{
			Cell:          string(c.ID),
			ModelVersion:  c.Classifier.ModelVersion(),
			Bootstrapping: c.Classifier.Bootstrapping(),
		}
		if snap, ok := c.Classifier.HealthSnapshot(); ok {
			ch.Health = &snap
			if snap.DriftReady {
				ch.Checks = append(ch.Checks, HealthCheck{
					Name:   "margin_drift",
					Status: grade(snap.Drift, th.DriftYellow, th.DriftRed, false),
					Value:  snap.Drift,
					Detail: fmt.Sprintf("PSI over %d comparison windows", snap.DriftWindows),
				})
			}
			if snap.AgreementSamples >= th.MinAgreementSamples {
				ch.Checks = append(ch.Checks, HealthCheck{
					Name:   "agreement",
					Status: grade(snap.Agreement, th.AgreementYellow, th.AgreementRed, true),
					Value:  snap.Agreement,
					Detail: fmt.Sprintf("EWMA over %d labeled samples", snap.AgreementSamples),
				})
			}
			if snap.LastCV > 0 {
				ch.Checks = append(ch.Checks, HealthCheck{
					Name:   "cv_accuracy",
					Status: grade(snap.LastCV, th.AgreementYellow, th.AgreementRed, true),
					Value:  snap.LastCV,
				})
			}
			if n := len(snap.History); n > 0 && th.RetrainRecent > 0 {
				recent := snap.History
				if n > th.RetrainRecent {
					recent = recent[n-th.RetrainRecent:]
				}
				var worst float64
				for _, r := range recent {
					if r.Seconds > worst {
						worst = r.Seconds
					}
				}
				ch.Checks = append(ch.Checks, HealthCheck{
					Name:   "retrain_latency",
					Status: grade(worst, th.RetrainSecondsYellow, th.RetrainSecondsRed, false),
					Value:  worst,
					Detail: fmt.Sprintf("worst fit of last %d retrains", len(recent)),
				})
			}
			// Approximate-tier verdict: a demotion means the budget path
			// disagreed with the exact boundary and the cell fell back to
			// slab scoring — degraded latency, correct decisions, so
			// Yellow rather than Red. Cells that never carried a tier
			// (RFF off, or the readout fit failed) skip the check.
			if snap.RFFActive || snap.RFFDemoted {
				chk := HealthCheck{
					Name:  "rff_tier",
					Value: snap.RFFAgreement,
					Detail: fmt.Sprintf("approx-vs-exact agreement over %d samples",
						snap.RFFSamples),
				}
				if snap.RFFDemoted {
					chk.Status = Yellow
					chk.Detail = "demoted to exact scoring; " + chk.Detail
				}
				ch.Checks = append(ch.Checks, chk)
			}
		}
		// Snapshot persistence: a rejected file means the cell cold-started
		// instead of warm-booting (stale-but-serving, so Yellow); repeated
		// save failures mean restarts will keep losing state.
		if rej := c.snapRejects.Load(); rej > 0 {
			ch.Checks = append(ch.Checks, HealthCheck{
				Name:   "snapshot_rejects",
				Status: Yellow,
				Value:  float64(rej),
				Detail: "corrupt or version-skewed snapshot files rejected; cell cold-started",
			})
		}
		if fails := c.snapSaveErrs.Load(); fails > 0 {
			ch.Checks = append(ch.Checks, HealthCheck{
				Name:   "snapshot_save_errors",
				Status: Yellow,
				Value:  float64(fails),
				Detail: "snapshot writes failed; learned state is not being persisted",
			})
		}
		// QoE SLO burn rate: both the fast and the slow window must
		// exceed a cut point to alert (see slo.go). Abstains until the
		// slow window has accumulated MinTicks of evidence. Status
		// transitions are edge-detected here — the health scrape/sweep is
		// the alert cadence — and journaled to the flight recorder.
		if c.slo != nil {
			if b, ok := c.slo.burn(rep.UnixNanos); ok {
				st := c.slo.status(b)
				c.sloFastG.Set(b.FastBurn)
				c.sloSlowG.Set(b.SlowBurn)
				ch.Checks = append(ch.Checks, HealthCheck{
					Name:   "slo_burn",
					Status: st,
					Value:  b.SlowBurn,
					Detail: fmt.Sprintf("burn fast %.2f (%d ticks) / slow %.2f (%d ticks), objective %v",
						b.FastBurn, b.FastTicks, b.SlowBurn, b.SlowTicks, c.slo.cfg.Objective),
				})
				if _, changed := c.slo.transition(st); changed {
					if st > Green {
						c.sloBreachN.Inc()
					}
					if mb.flight != nil {
						mb.flight.Record(flightrec.Record{
							UnixNanos: rep.UnixNanos,
							Cell:      c.flightCell,
							Kind:      flightrec.KindSLOBreach,
							Verdict:   uint8(st),
							Value:     b.FastBurn,
							Aux:       b.SlowBurn,
						})
					}
				}
			}
		}
		for _, chk := range ch.Checks {
			ch.Status = worse(ch.Status, chk.Status)
		}
		rep.Status = worse(rep.Status, ch.Status)
		rep.Cells = append(rep.Cells, ch)
	}
	for _, chk := range rep.Checks {
		rep.Status = worse(rep.Status, chk.Status)
	}
	return rep
}
