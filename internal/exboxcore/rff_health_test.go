package exboxcore

import (
	"strings"
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/obs"
	"exbox/internal/traffic"
)

// feedCell streams n labeled random arrivals into one cell through the
// middlebox Observe path (unlike trainCell it does not require
// graduation, so MinBootstrap-gated setups can use it).
func feedCell(t *testing.T, mb *Middlebox, id CellID, n int, seed int64) {
	t.Helper()
	o := wifiOracle()
	rng := mathx.NewRand(seed)
	for _, e := range traffic.Arrivals(traffic.Random(rng, n, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe(id, excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			t.Fatal(err)
		}
	}
}

// findCheck returns the named check from a cell report, or nil.
func findCheck(ch CellHealth, name string) *HealthCheck {
	for i := range ch.Checks {
		if ch.Checks[i].Name == name {
			return &ch.Checks[i]
		}
	}
	return nil
}

// TestHealthRFFTierGreen: a cell whose fit carries a healthy RFF tier
// reports an rff_tier check, green, with the gate's agreement EWMA as
// its value.
func TestHealthRFFTierGreen(t *testing.T) {
	cfg := classifier.DefaultConfig()
	cfg.SVM.RFF = true
	cfg.BatchSize = 100000
	cfg.MinBootstrap = 1 << 30
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap", cfg); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mb.Instrument(reg, 16)
	feedCell(t, mb, "ap", 200, 13)
	if err := mb.Cell("ap").Classifier.ForceOnline(); err != nil {
		t.Fatal(err)
	}
	feedCell(t, mb, "ap", 40, 14)

	rep := mb.Health()
	chk := findCheck(rep.Cells[0], "rff_tier")
	if chk == nil {
		t.Fatalf("rff_tier check missing: %+v", rep.Cells[0].Checks)
	}
	if chk.Status != Green {
		t.Fatalf("healthy tier judged %v: %+v", chk.Status, chk)
	}
	if chk.Value < 0.95 {
		t.Fatalf("healthy tier agreement %v", chk.Value)
	}
	if got := reg.Counter("exbox_cell_ap_clf_rff_demotions_total").Value(); got != 0 {
		t.Fatalf("demotions = %d, want 0", got)
	}
}

// TestHealthRFFTierDemotedYellow: a tier the oracle gate demoted turns
// the rff_tier check yellow (degraded latency, still-correct
// decisions) and bumps the per-cell demotion counter.
func TestHealthRFFTierDemotedYellow(t *testing.T) {
	cfg := classifier.DefaultConfig()
	cfg.SVM.Gamma = 10 // memorize: the starved tier below cannot follow
	cfg.SVM.RFF = true
	cfg.SVM.RFFDim = 4
	cfg.BatchSize = 100000
	cfg.MinBootstrap = 1 << 30
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap", cfg); err != nil {
		t.Fatal(err)
	}
	// Custom gate config must precede Instrument: EnableHealth is
	// first-call-wins, and Instrument installs the defaults.
	mb.Cell("ap").Classifier.EnableHealth(classifier.HealthConfig{RFFMinSamples: 8})
	reg := obs.NewRegistry()
	mb.Instrument(reg, 16)

	rng := mathx.NewRand(3)
	parity := func() excr.Sample {
		m := excr.NewMatrix(excr.DefaultSpace)
		total := 0
		for c := 0; c < excr.DefaultSpace.Classes; c++ {
			k := rng.Intn(6)
			m = m.Set(excr.AppClass(c), 0, k)
			total += k
		}
		label := 1.0
		if total%2 == 1 {
			label = -1
		}
		return excr.Sample{Arrival: excr.Arrival{Matrix: m, Class: excr.Web}, Label: label}
	}
	for i := 0; i < 120; i++ {
		if err := mb.Observe("ap", parity()); err != nil {
			t.Fatal(err)
		}
	}
	if err := mb.Cell("ap").Classifier.ForceOnline(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if err := mb.Observe("ap", parity()); err != nil {
			t.Fatal(err)
		}
	}

	rep := mb.Health()
	chk := findCheck(rep.Cells[0], "rff_tier")
	if chk == nil {
		t.Fatalf("rff_tier check missing after demotion: %+v", rep.Cells[0].Checks)
	}
	if chk.Status != Yellow || !strings.Contains(chk.Detail, "demoted") {
		t.Fatalf("demoted tier judged %v (%q), want yellow/demoted", chk.Status, chk.Detail)
	}
	if rep.Cells[0].Status < Yellow {
		t.Fatalf("cell rollup %v ignored the demotion", rep.Cells[0].Status)
	}
	if got := reg.Counter("exbox_cell_ap_clf_rff_demotions_total").Value(); got != 1 {
		t.Fatalf("demotions = %d, want 1", got)
	}
	if snap := rep.Cells[0].Health; snap == nil || !snap.RFFDemoted || snap.RFFActive {
		t.Fatalf("snapshot disagrees with check: %+v", snap)
	}

	// A manual retrain rebuilds the tier: the check flips back to green
	// and the promotion is counted.
	if err := mb.Cell("ap").Classifier.Retrain(); err != nil {
		t.Fatal(err)
	}
	rep = mb.Health()
	chk = findCheck(rep.Cells[0], "rff_tier")
	if chk == nil || chk.Status != Green {
		t.Fatalf("promoted tier not green: %+v", chk)
	}
	if got := reg.Counter("exbox_cell_ap_clf_rff_promotions_total").Value(); got != 1 {
		t.Fatalf("promotions = %d, want 1", got)
	}
}
