package exboxcore

import (
	"errors"
	"fmt"

	"exbox/internal/excr"
)

// This file implements the app-based admission control of Section 4.5:
// modern applications open several flows (video data, control,
// analytics, ads), and per-flow admission can split an app across
// verdicts. The paper's heuristic: identify the app's *dominant* flows
// — the ones that determine its QoE — and admit the whole app iff the
// dominant flows are admitted.

// AppFlow is one flow of a multi-flow application.
type AppFlow struct {
	Class excr.AppClass
	Level excr.SNRLevel
	// Dominant marks a flow that determines the app's QoE (e.g. the
	// video data flow of a streaming app, as opposed to its analytics
	// or advertisement flows).
	Dominant bool
}

// AppRequest is an application asking to join a cell.
type AppRequest struct {
	Flows []AppFlow
}

// Dominant returns the request's dominant flows.
func (r AppRequest) Dominant() []AppFlow {
	var out []AppFlow
	for _, f := range r.Flows {
		if f.Dominant {
			out = append(out, f)
		}
	}
	return out
}

// ErrNoDominantFlow is returned when an app request marks no flow as
// dominant; the heuristic has nothing to decide on.
var ErrNoDominantFlow = errors.New("exboxcore: app request has no dominant flow")

// AdmitApp applies the Section 4.5 heuristic on one cell: classify the
// app's dominant flows in sequence against the current traffic matrix
// (each admitted dominant flow joins the matrix seen by the next); if
// every dominant flow is admissible, the whole app — auxiliary flows
// included — is admitted. If any dominant flow is inadmissible the app
// gets the policy verdict.
//
// The returned matrix is the cell's traffic matrix after the decision:
// with all the app's flows added on admit, unchanged on reject, and
// with all flows added under Deprioritize (they ride the best-effort
// class but still occupy the cell).
func (mb *Middlebox) AdmitApp(id CellID, current excr.Matrix, req AppRequest) (Outcome, excr.Matrix, error) {
	dominant := req.Dominant()
	if len(dominant) == 0 {
		return Outcome{}, current, ErrNoDominantFlow
	}
	working := current
	var last Outcome
	admitAll := true
	for _, f := range dominant {
		lvl := f.Level
		if mb.Space.Levels == 1 {
			lvl = 0
		}
		out, err := mb.Admit(id, excr.Arrival{Matrix: working, Class: f.Class, Level: lvl})
		if err != nil {
			return Outcome{}, current, fmt.Errorf("admitting dominant %v flow: %w", f.Class, err)
		}
		last = out
		if out.Verdict != Admit {
			admitAll = false
			break
		}
		working = working.Inc(f.Class, lvl)
	}
	if !admitAll {
		if last.Verdict == LowPriority {
			// Deprioritized apps still occupy airtime.
			return last, addAppFlows(mb.Space, current, req.Flows), nil
		}
		return last, current, nil
	}
	return last, addAppFlows(mb.Space, current, req.Flows), nil
}

// addAppFlows folds every flow of the app into the matrix.
func addAppFlows(space excr.Space, m excr.Matrix, fs []AppFlow) excr.Matrix {
	for _, f := range fs {
		lvl := f.Level
		if space.Levels == 1 {
			lvl = 0
		}
		if int(f.Class) < space.Classes && int(lvl) < space.Levels {
			m = m.Inc(f.Class, lvl)
		}
	}
	return m
}

// MigrateFlow implements the flow-migration primitive of Section 4.2:
// move one admitted flow from one cell to another (WiFi controller AP
// handoff, or LTE S-GW assisted mobility). The target cell must admit
// the flow against its own current matrix; on success the caller's two
// matrices are updated accordingly.
func (mb *Middlebox) MigrateFlow(from, to CellID, fromMatrix, toMatrix excr.Matrix, f ActiveFlow) (excr.Matrix, excr.Matrix, error) {
	if mb.Cell(from) == nil {
		return fromMatrix, toMatrix, fmt.Errorf("%w: %q", ErrUnknownCell, from)
	}
	lvl := f.Level
	if mb.Space.Levels == 1 {
		lvl = 0
	}
	if fromMatrix.Get(f.Class, lvl) == 0 {
		return fromMatrix, toMatrix, fmt.Errorf("exboxcore: flow %d (%v) not present on cell %q", f.ID, f.Class, from)
	}
	out, err := mb.Admit(to, excr.Arrival{Matrix: toMatrix, Class: f.Class, Level: lvl})
	if err != nil {
		return fromMatrix, toMatrix, err
	}
	if out.Verdict != Admit {
		return fromMatrix, toMatrix, fmt.Errorf("exboxcore: cell %q cannot take the flow (%v)", to, out.Verdict)
	}
	return fromMatrix.Dec(f.Class, lvl), toMatrix.Inc(f.Class, lvl), nil
}
