package exboxcore

import (
	"math"
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/obs"
	"exbox/internal/obs/flightrec"
	"exbox/internal/traffic"
)

// drainFlight stops nothing: it runs the recorder's writer against a
// temp dir just long enough to flush the backlog, then decodes it.
func drainFlight(t *testing.T, fr *flightrec.Recorder) []flightrec.DecodedRecord {
	t.Helper()
	dir := t.TempDir()
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- fr.RunWriter(flightrec.WriterConfig{Dir: dir}, done) }()
	close(done)
	if err := <-errc; err != nil {
		t.Fatalf("writer: %v", err)
	}
	recs, err := flightrec.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	return recs
}

// TestAdmitFlightRecordedZeroAlloc is the ISSUE 10 acceptance pin: the
// unsampled admission path with the flight recorder attached (and the
// timeline store ticking in the background over an instrumented
// sibling registry) stays at zero allocations per decision. Flight
// recording is wired independently of Instrument precisely so the
// journal enqueue is a pure by-value ring publish.
func TestAdmitFlightRecordedZeroAlloc(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	o := wifiOracle()
	trainCell(t, mb, "ap", o, 1)
	fr := flightrec.NewRecorder(1 << 16)
	mb.InstrumentFlightRecorder(fr)

	probe := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 12),
		Class:  excr.Web,
	}
	var s classifier.Scratch
	if _, err := mb.AdmitWith("ap", probe, &s); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := mb.AdmitWith("ap", probe, &s); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("flight-recorded Admit allocates %v/op, want 0", n)
	}
	if fr.Depth() == 0 && fr.Drops() == 0 {
		t.Fatal("no admission reached the flight ring")
	}
}

// TestFlightMatchesAuditRing is the replay contract: with both the
// audit ring and the flight recorder attached, every admission's
// journal record must match its audit record bit for bit — same
// sequence number, same timestamp, same margin bits, same verdict,
// cell, class and level — so exlog can reproduce /debug/admissions
// after a crash.
func TestFlightMatchesAuditRing(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	mb.Instrument(reg, 256)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	fr := flightrec.NewRecorder(1 << 12)
	mb.InstrumentFlightRecorder(fr)
	trainCell(t, mb, "ap", wifiOracle(), 1)

	// A spread of distinct arrivals across classes and loads, through
	// all three entry points (scalar, batch, burst).
	rng := mathx.NewRand(9)
	events := traffic.Arrivals(traffic.Random(rng, 20, 10, 0, excr.DefaultSpace), nil)
	var arrivals []excr.Arrival
	for _, e := range events {
		arrivals = append(arrivals, e.Arrival)
	}
	for _, a := range arrivals[:10] {
		if _, err := mb.Admit("ap", a); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := mb.AdmitBatch("ap", arrivals[10:20], nil, nil); err != nil {
		t.Fatal(err)
	}
	var cands []BurstCandidate
	for _, a := range arrivals[20:30] {
		cands = append(cands, BurstCandidate{Class: a.Class, Level: a.Level})
	}
	base := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 3)
	if _, err := mb.AdmitBurst("ap", base, cands, nil, nil); err != nil {
		t.Fatal(err)
	}

	audit := mb.AuditRing().Snapshot()
	if len(audit) != 30 {
		t.Fatalf("audit records: %d", len(audit))
	}
	flight := drainFlight(t, fr)
	bySeq := make(map[uint64]flightrec.DecodedRecord, len(flight))
	for _, rec := range flight {
		if rec.Kind != flightrec.KindAdmission {
			t.Fatalf("unexpected kind %v in journal", rec.Kind)
		}
		bySeq[rec.Seq] = rec
	}
	if len(bySeq) != len(audit) {
		t.Fatalf("journaled %d distinct seqs, audit has %d", len(bySeq), len(audit))
	}
	for _, ar := range audit {
		jr, ok := bySeq[ar.Seq]
		if !ok {
			t.Fatalf("audit seq %d missing from journal", ar.Seq)
		}
		if jr.UnixNanos != ar.UnixNanos {
			t.Fatalf("seq %d: stamp %d != audit %d", ar.Seq, jr.UnixNanos, ar.UnixNanos)
		}
		if math.Float64bits(jr.Value) != math.Float64bits(ar.Margin) {
			t.Fatalf("seq %d: margin bits %x != %x", ar.Seq, math.Float64bits(jr.Value), math.Float64bits(ar.Margin))
		}
		if flightrec.VerdictString(jr.Verdict) != ar.Verdict {
			t.Fatalf("seq %d: verdict %q != %q", ar.Seq, flightrec.VerdictString(jr.Verdict), ar.Verdict)
		}
		if jr.CellName != ar.Cell || int(jr.Class) != ar.Class || int(jr.Level) != ar.Level {
			t.Fatalf("seq %d: identity (%q,%d,%d) != (%q,%d,%d)",
				ar.Seq, jr.CellName, jr.Class, jr.Level, ar.Cell, ar.Class, ar.Level)
		}
		if jr.Model != ar.Model {
			t.Fatalf("seq %d: model %d != %d", ar.Seq, jr.Model, ar.Model)
		}
		if (jr.Flags&flightrec.FlagBootstrap != 0) != ar.Bootstrap {
			t.Fatalf("seq %d: bootstrap flag mismatch", ar.Seq)
		}
	}
}

// TestFlightLifecycleEvents checks the non-admission hooks: a
// background retrain journals KindRetrain with the new model version,
// and snapshot save/load/reject journal KindSnapshot with the right
// verdicts.
func TestFlightLifecycleEvents(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	fr := flightrec.NewRecorder(256)
	mb.InstrumentFlightRecorder(fr)
	trainCell(t, mb, "ap", wifiOracle(), 1)

	dir := t.TempDir()
	if _, err := mb.SaveSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.LoadSnapshots(dir); err != nil {
		t.Fatal(err)
	}

	var saved, loaded bool
	for _, rec := range drainFlight(t, fr) {
		if rec.Kind == flightrec.KindSnapshot && rec.Verdict == 0 {
			saved = true
		}
		if rec.Kind == flightrec.KindSnapshot && rec.Verdict == 1 {
			loaded = true
		}
	}
	if !saved || !loaded {
		t.Fatalf("snapshot events missing: saved=%v loaded=%v", saved, loaded)
	}
}
