// Package exboxcore assembles ExBox itself: the experience-management
// middlebox that sits at the WiFi controller or LTE PDN gateway,
// maintains one Admittance Classifier per cell, and uses them for the
// three QoE-management workflows of Section 4:
//
//   - Admission control: classify each arriving flow against its
//     cell's learned capacity region; inadmissible flows are
//     discontinued or deprioritized according to the administrator's
//     policy.
//   - Network selection: when several cells could carry a flow (e.g.
//     hybrid WiFi+LTE), admit it to the cell whose classifier places
//     the post-admission state deepest inside its capacity region
//     (largest SVM margin).
//   - Dynamics: periodically re-evaluate admitted flows against the
//     current traffic matrix; flows whose re-classification turns
//     negative are handed back for offload or discontinuation.
package exboxcore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/metrics"
	"exbox/internal/obs"
	"exbox/internal/obs/flightrec"
	"exbox/internal/obs/trace"
	"exbox/internal/qoe"
)

// Policy is what the middlebox does with an inadmissible flow
// (Section 4.2): drop it at the gateway or push it into a low-priority
// access category (802.11e-style).
type Policy int

const (
	// Discontinue drops inadmissible flows at the gateway.
	Discontinue Policy = iota
	// Deprioritize admits inadmissible flows into a best-effort,
	// low-priority class instead of dropping them.
	Deprioritize
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Discontinue {
		return "discontinue"
	}
	return "deprioritize"
}

// CellID names one access device (WiFi AP or LTE eNodeB).
type CellID string

// Cell is the middlebox's per-access-device state: a dedicated
// Admittance Classifier learning that cell's ExCR. Per-cell
// serialization lives inside the classifier (its training lock);
// cells never contend with each other.
type Cell struct {
	ID         CellID
	Classifier *classifier.AdmittanceClassifier

	// retrain is the coalescing latch for the background retrainer:
	// capacity 1, non-blocking sends. A burst of observations crossing
	// several batch boundaries collapses into one pending signal, so
	// the worker runs one fit over everything seen, not one per batch.
	// Nil unless the cell's classifier was configured with
	// DeferRetrain.
	retrain  chan struct{}
	stop     chan struct{}
	stopOnce sync.Once

	// Per-cell verdict counters, nil on an uninstrumented middlebox.
	admitN, rejectN, lowpriN *obs.Counter

	// SLO accounting: the burn-rate tracker (nil when SLO accounting
	// is off) and its counters/gauges (nil-safe when uninstrumented).
	slo                *sloTracker
	sloGoodN, sloBadN  *obs.Counter
	sloBreachN         *obs.Counter
	sloFastG, sloSlowG *obs.GaugeFloat

	// flightCell is this cell's interned index in the flight
	// recorder's cell table (0 when no recorder is wired).
	flightCell uint16

	// Snapshot-persistence accounting. The atomics count saves, loads,
	// rejected (corrupt/skewed) files and save failures whether or not
	// the middlebox is instrumented — /debug/health reads them directly;
	// instrumentCellLocked additionally exposes them as
	// clf_snapshot_{saves,loads,rejects}_total. snapMu guards the
	// last-saved watermark that lets an idle periodic sweep skip writes.
	snapSaves, snapLoads, snapRejects, snapSaveErrs atomic.Uint64
	snapMu                                          sync.Mutex
	snapSavedOnce                                   bool
	snapSavedSeq                                    uint64
	snapSavedObs                                    int

	// wired marks which registry this cell's metrics are registered in,
	// making Instrument idempotent per cell: re-instrumenting against
	// the same registry is a no-op, while a fresh (restarted) registry
	// re-wires everything.
	wired *obs.Registry
}

// kickRetrain signals the background retrainer if deferred work is
// pending; the capacity-1 latch coalesces repeated kicks.
func (c *Cell) kickRetrain() {
	if c.retrain == nil || !c.Classifier.RetrainPending() {
		return
	}
	select {
	case c.retrain <- struct{}{}:
	default:
	}
}

// retrainLoop is the cell's background worker: it waits on the latch
// and performs the deferred SVM fits off the admission path. With
// snapshot persistence enabled, each coalesced refit is followed by a
// snapshot write, so the on-disk state tracks every published fit —
// the ISSUE's "save on retrain-coalesce" hook.
func (mb *Middlebox) retrainLoop(c *Cell) {
	defer mb.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.retrain:
			t0 := time.Now()
			_ = c.Classifier.Maintain()
			if mb.flight != nil {
				mb.flight.Record(flightrec.Record{
					Kind:  flightrec.KindRetrain,
					Cell:  c.flightCell,
					Model: c.Classifier.ModelVersion(),
					Value: time.Since(t0).Seconds(),
				})
			}
			if dir := mb.snapshotDir(); dir != "" {
				// Save errors are counted (snapSaveErrs, surfaced by
				// /debug/health); a full disk must not stop retraining.
				_, _ = mb.saveCell(c, dir)
			}
		}
	}
}

// Verdict is the middlebox's disposition for one flow.
type Verdict int

const (
	// Admit carries the flow normally.
	Admit Verdict = iota
	// Reject drops the flow at the gateway.
	Reject
	// LowPriority admits the flow into the best-effort class.
	LowPriority
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case Reject:
		return "reject"
	default:
		return "low-priority"
	}
}

// Outcome reports one admission decision with its classifier detail.
type Outcome struct {
	Cell     CellID
	Verdict  Verdict
	Decision classifier.Decision
}

// Middlebox is the ExBox gateway component. It is safe for concurrent
// use: Admit (and the workflows built on it) is a lock-free read of
// each cell's atomically published model snapshot, Observe serializes
// only on the owning cell's training lock, and the cell registry is
// guarded by a read-write lock so lookups never contend with each
// other. Register cells with classifier.Config.DeferRetrain to move
// the batch SVM fits onto a per-cell background worker; such a
// middlebox should be Closed when done.
type Middlebox struct {
	Space     excr.Space
	Policy    Policy
	Estimator *qoe.Estimator // optional: network-side QoE estimation

	mu      sync.RWMutex // guards cells, order and snapDir
	cells   map[CellID]*Cell
	order   []CellID
	snapDir string         // retrain-hook snapshot directory, "" = off
	wg      sync.WaitGroup // per-cell retrain workers

	// obs is the telemetry hookup, nil when not instrumented. Set once
	// by Instrument before traffic; the hot path reads it without
	// synchronization.
	obs *mbObs

	// tracer is the flow-lifecycle tracer (nil when tracing is off).
	// Set once by InstrumentTracing before traffic; callers that thread
	// their own *trace.FlowTrace through AdmitTraced & co. don't need
	// it, but it lets the middlebox report sampling state and promote
	// flows on behalf of callers that only hold the middlebox.
	tracer *trace.Tracer

	// flight is the flight recorder (nil when not wired). Set once by
	// InstrumentFlightRecorder before traffic; independent of obs so a
	// middlebox can journal events without carrying the audit ring's
	// per-decision allocation. The hot path reads it without
	// synchronization; one enqueue is a by-value lock-free ring publish.
	flight *flightrec.Recorder

	// sloCfg enables per-cell SLO burn-rate accounting (nil = off).
	// Set once by EnableSLO before traffic.
	sloCfg *SLOConfig
}

// mbObs bundles the middlebox-level metrics: the decision audit ring,
// the admission-latency histogram, and the workflow counters.
type mbObs struct {
	reg          *obs.Registry
	ring         *obs.AuditRing
	admitSeconds *obs.Histogram

	// epoch/epochNanos turn one cheap monotonic read (time.Since) into
	// a wall-clock stamp for audit records: on this path a full
	// time.Now() costs roughly twice a monotonic read.
	epoch      time.Time
	epochNanos int64

	// latMask is the admission-latency sampling mask: a decision is
	// timed when ring.Seq()&latMask == 0, i.e. 1 in latMask+1
	// (default 15 → 1-in-16). Power-of-two-minus-one by construction
	// (SetAdmitLatencySampling); set before traffic, read without
	// synchronization on the hot path.
	latMask uint64

	selections      *obs.Counter
	selectionAdmits *obs.Counter
	reevalCalls     *obs.Counter
	reevalFlows     *obs.Counter
	reevalEvicted   *obs.Counter
}

// New returns an empty middlebox for the given traffic-matrix space.
func New(space excr.Space, policy Policy) *Middlebox {
	if !space.Valid() {
		panic("exboxcore: invalid space")
	}
	return &Middlebox{Space: space, Policy: policy, cells: make(map[CellID]*Cell)}
}

// Instrument attaches the middlebox to a metric registry: it creates
// the decision audit ring (the last auditSize admissions; <= 0
// defaults to 256), the admission-latency histogram and the workflow
// counters, and wires per-cell verdict counters plus the full
// classifier.Metrics set (and model-health monitoring) for every cell
// — cells already registered and cells added later alike. Call it
// before the middlebox sees traffic; the admission path reads the
// hookup without synchronization, and every update it makes is a lone
// atomic operation (plus the audit ring's one record allocation), so
// instrumentation adds no locks.
//
// Instrument is idempotent per (cell, registry): calling it again with
// the same registry — say, after AddCell, to pick up the new cell —
// re-wires only cells not yet wired to it and keeps the existing audit
// ring, so counters are never double-registered and the ring's history
// survives. A different registry (a restart with fresh telemetry)
// re-wires everything and gets a fresh ring.
func (mb *Middlebox) Instrument(reg *obs.Registry, auditSize int) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.obs == nil || mb.obs.reg != reg {
		ring := obs.NewAuditRing(auditSize)
		reg.SetRing(ring)
		epoch := time.Now()
		mb.obs = &mbObs{
			reg:        reg,
			ring:       ring,
			epoch:      epoch,
			epochNanos: epoch.UnixNano(),
			latMask:    15,
			// 100ns .. ~1.7s: admission is a lock-free model read, so the
			// low end of the range is where the mass should sit.
			admitSeconds:    reg.Histogram("exbox_admit_seconds", obs.ExpBuckets(1e-7, 4, 12)),
			selections:      reg.Counter("exbox_select_total"),
			selectionAdmits: reg.Counter("exbox_select_admitted_total"),
			reevalCalls:     reg.Counter("exbox_reevaluate_total"),
			reevalFlows:     reg.Counter("exbox_reevaluate_flows_total"),
			reevalEvicted:   reg.Counter("exbox_reevaluate_evicted_total"),
		}
		// The effective sampling rate is exported so timeline consumers
		// can de-bias the sampled latency series.
		reg.Gauge("exbox_admit_latency_sample_rate").Set(int64(mb.obs.latMask + 1))
	}
	for _, id := range mb.order {
		mb.instrumentCellLocked(mb.cells[id])
	}
}

// SetAdmitLatencySampling sets the admission-latency sampling rate to
// 1-in-n, rounding n up to a power of two (n <= 1 means every
// decision), and returns the effective n — also exported as the
// exbox_admit_latency_sample_rate gauge. Call after Instrument and
// before the middlebox sees traffic: the hot path reads the mask
// without synchronization. A no-op (returning 0) when the middlebox is
// not instrumented, since sampling keys off the audit ring's sequence.
func (mb *Middlebox) SetAdmitLatencySampling(n int) int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.obs == nil {
		return 0
	}
	if n < 1 {
		n = 1
	}
	eff := 1
	for eff < n {
		eff <<= 1
	}
	mb.obs.latMask = uint64(eff - 1)
	mb.obs.reg.Gauge("exbox_admit_latency_sample_rate").Set(int64(eff))
	return eff
}

// InstrumentFlightRecorder attaches the flight recorder: every
// admission verdict (and, via the health/retrain/snapshot hooks, every
// notable lifecycle event) is journaled as one fixed-width record. The
// enqueue is a single lock-free by-value ring publish — no locks, no
// allocations — so it rides the zero-allocation admission path, and it
// is independent of Instrument: a middlebox can journal without
// carrying the audit ring. Call before traffic; cell names are
// interned into the recorder's table here. A nil recorder detaches.
func (mb *Middlebox) InstrumentFlightRecorder(fr *flightrec.Recorder) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.flight = fr
	for _, id := range mb.order {
		mb.cells[id].flightCell = fr.CellIndex(string(id))
	}
}

// FlightRecorder returns the attached flight recorder, or nil.
func (mb *Middlebox) FlightRecorder() *flightrec.Recorder {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	return mb.flight
}

// InstrumentTracing attaches the flow-lifecycle tracer. Like
// Instrument, call it before the middlebox sees traffic. A nil tracer
// turns tracing off.
func (mb *Middlebox) InstrumentTracing(tr *trace.Tracer) {
	mb.mu.Lock()
	mb.tracer = tr
	mb.mu.Unlock()
}

// Tracer returns the attached flow-lifecycle tracer, or nil.
func (mb *Middlebox) Tracer() *trace.Tracer {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	return mb.tracer
}

// metricName folds a cell ID into a valid metric-name fragment; the
// rule lives in obs.SanitizeName so timeline consumers can apply the
// same mapping.
func metricName(id string) string {
	return obs.SanitizeName(id)
}

// instrumentCellLocked wires one cell's verdict counters, its
// classifier metrics and its model-health monitor into the attached
// registry, at most once per registry. Caller holds mu and has checked
// mb.obs != nil.
func (mb *Middlebox) instrumentCellLocked(c *Cell) {
	reg := mb.obs.reg
	if c.wired == reg {
		return
	}
	p := "exbox_cell_" + metricName(string(c.ID)) + "_"
	c.admitN = reg.Counter(p + "admit_total")
	c.rejectN = reg.Counter(p + "reject_total")
	c.lowpriN = reg.Counter(p + "lowpriority_total")
	admits := reg.Counter(p + "clf_admit_total")
	rejects := reg.Counter(p + "clf_reject_total")
	// Total decisions are derived so Decide pays one verdict counter,
	// not two.
	reg.GaugeFunc(p+"clf_decisions_total", func() float64 {
		return float64(admits.Value() + rejects.Value())
	})
	c.Classifier.SetMetrics(classifier.Metrics{
		BootstrapDecisions: reg.Counter(p + "clf_bootstrap_decisions_total"),
		Admits:             admits,
		Rejects:            rejects,
		Margin:             reg.HistogramNoSum(p+"clf_margin", obs.SignedExpBuckets(0.01, 4, 8)),
		Observations:       reg.Counter(p + "clf_observations_total"),
		Replacements:       reg.Counter(p + "clf_replacements_total"),
		Evictions:          reg.Counter(p + "clf_evictions_total"),
		TrainingSize:       reg.Gauge(p + "clf_training_size"),
		Fits:               reg.Counter(p + "clf_fits_total"),
		WarmFits:           reg.Counter(p + "clf_warm_fits_total"),
		FitErrors:          reg.Counter(p + "clf_fit_errors_total"),
		FitSeconds:         reg.Histogram(p+"clf_fit_seconds", obs.ExpBuckets(1e-5, 4, 12)),
		CVChecks:           reg.Counter(p + "clf_cv_checks_total"),
		CVScore:            reg.GaugeFloat(p + "clf_cv_score"),
		Graduations:        reg.Counter(p + "clf_graduations_total"),
		KernelCacheHits:    reg.Counter(p + "clf_kernel_cache_hits_total"),
		KernelCacheMisses:  reg.Counter(p + "clf_kernel_cache_misses_total"),
		// Bad features are a middlebox-wide anomaly (corrupt observation
		// or a poisoned model), not a per-cell rate: one shared counter.
		BadFeatures:   reg.Counter("exbox_bad_features_total"),
		RFFDemotions:  reg.Counter(p + "clf_rff_demotions_total"),
		RFFPromotions: reg.Counter(p + "clf_rff_promotions_total"),
	})
	// Snapshot persistence counts on the cell's own atomics (health
	// reads them even uninstrumented); the registry view is derived.
	reg.GaugeFunc(p+"clf_snapshot_saves_total", func() float64 { return float64(c.snapSaves.Load()) })
	reg.GaugeFunc(p+"clf_snapshot_loads_total", func() float64 { return float64(c.snapLoads.Load()) })
	reg.GaugeFunc(p+"clf_snapshot_rejects_total", func() float64 { return float64(c.snapRejects.Load()) })
	// An instrumented cell is a production cell: turn on model-health
	// monitoring (first EnableHealth call wins, so a custom config set
	// before Instrument is kept).
	c.Classifier.EnableHealth(classifier.DefaultHealthConfig())
	if c.slo != nil {
		mb.wireSLOLocked(c)
	}
	c.wired = reg
}

// AuditRing returns the decision audit ring, or nil when the
// middlebox is not instrumented.
func (mb *Middlebox) AuditRing() *obs.AuditRing {
	if mb.obs == nil {
		return nil
	}
	return mb.obs.ring
}

// AddCell registers an access device and creates its Admittance
// Classifier with the given configuration. With cfg.DeferRetrain the
// cell gets a background retrain worker, stopped by Close. On an
// instrumented middlebox the cell's metrics are wired immediately.
func (mb *Middlebox) AddCell(id CellID, cfg classifier.Config) (*Cell, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if _, dup := mb.cells[id]; dup {
		return nil, fmt.Errorf("exboxcore: cell %q already registered", id)
	}
	c := &Cell{ID: id, Classifier: classifier.New(mb.Space, cfg)}
	if mb.flight != nil {
		c.flightCell = mb.flight.CellIndex(string(id))
	}
	if mb.sloCfg != nil {
		c.slo = newSLOTracker(*mb.sloCfg)
	}
	if mb.obs != nil {
		mb.instrumentCellLocked(c)
	}
	if cfg.DeferRetrain {
		c.retrain = make(chan struct{}, 1)
		c.stop = make(chan struct{})
		mb.wg.Add(1)
		go mb.retrainLoop(c)
	}
	mb.cells[id] = c
	mb.order = append(mb.order, id)
	return c, nil
}

// Close stops the per-cell background retrain workers. It is only
// needed when cells were registered with DeferRetrain; on a fully
// synchronous middlebox it is a no-op. Safe to call more than once.
func (mb *Middlebox) Close() {
	mb.mu.RLock()
	for _, c := range mb.cells {
		if c.stop != nil {
			c.stopOnce.Do(func() { close(c.stop) })
		}
	}
	mb.mu.RUnlock()
	mb.wg.Wait()
}

// Cell returns the registered cell, or nil.
func (mb *Middlebox) Cell(id CellID) *Cell {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	return mb.cells[id]
}

// Cells returns the registered cells in registration order.
func (mb *Middlebox) Cells() []*Cell {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	out := make([]*Cell, 0, len(mb.order))
	for _, id := range mb.order {
		out = append(out, mb.cells[id])
	}
	return out
}

// cell is the read-locked registry lookup behind every workflow.
func (mb *Middlebox) cell(id CellID) (*Cell, bool) {
	mb.mu.RLock()
	c, ok := mb.cells[id]
	mb.mu.RUnlock()
	return c, ok
}

// ErrUnknownCell is returned for operations on unregistered cells.
var ErrUnknownCell = errors.New("exboxcore: unknown cell")

// Admit runs admission control for an arrival on one cell and applies
// the policy to the classifier's answer. The decision is a lock-free
// read of the cell's published model, so concurrent admissions scale
// with GOMAXPROCS.
func (mb *Middlebox) Admit(id CellID, a excr.Arrival) (Outcome, error) {
	return mb.AdmitWith(id, a, nil)
}

// AdmitWith is Admit with caller-owned classifier workspace: packet
// workers that hold a per-worker classifier.Scratch pass it here so
// steady-state admission performs no allocation beyond the audit
// ring's record. A nil scratch uses the classifier's internal pool.
func (mb *Middlebox) AdmitWith(id CellID, a excr.Arrival, s *classifier.Scratch) (Outcome, error) {
	return mb.AdmitTraced(id, a, s, nil)
}

// AdmitTraced is AdmitWith with span emission: when ft is non-nil the
// decision span (verdict, margin, depth, model version, duration) is
// appended to the flow's trace. A nil ft — the unsampled common case —
// costs exactly two untaken branches: no clock read, no allocation, so
// the zero-allocation admission path is preserved.
func (mb *Middlebox) AdmitTraced(id CellID, a excr.Arrival, s *classifier.Scratch, ft *trace.FlowTrace) (Outcome, error) {
	cell, ok := mb.cell(id)
	if !ok {
		return Outcome{}, fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	var t0 time.Time
	if ft != nil {
		t0 = time.Now()
	}
	// Admission latency is sampled 1-in-latMask+1 (default 1-in-16,
	// keyed off the audit ring's sequence, which advances once per
	// admission) so the steady-state cost of telemetry is one clock
	// read, a few atomics, and the ring record's single small
	// allocation — never a lock.
	var startOff time.Duration
	sampled := false
	if mb.obs != nil {
		if sampled = mb.obs.ring.Seq()&mb.obs.latMask == 0; sampled {
			startOff = time.Since(mb.obs.epoch)
		}
	}
	d := cell.Classifier.DecideScratch(a, s)
	out := Outcome{Cell: id, Decision: d, Verdict: mb.verdict(d)}
	if mb.obs != nil {
		endOff := time.Since(mb.obs.epoch)
		if sampled {
			mb.obs.admitSeconds.Observe((endOff - startOff).Seconds())
		}
		mb.recordOutcome(cell, a, out, endOff)
	} else if mb.flight != nil {
		// Flight recording without registry instrumentation: the journal
		// enqueue alone, preserving the zero-allocation admission path.
		mb.recordFlight(cell, a, out, 0, 0)
	}
	if ft != nil {
		now := time.Now()
		ft.Add(DecisionSpan(now.UnixNano(), now.Sub(t0).Nanoseconds(), out))
	}
	return out, nil
}

// DecisionSpan builds the trace span for one admission outcome. It is
// exported so callers that promote a flow's trace after the fact (a
// rejection that head sampling skipped) can backfill the decision span
// they already hold the Outcome for.
func DecisionSpan(unixNanos, durNanos int64, out Outcome) trace.Span {
	return trace.Span{
		Kind:      trace.KindDecision,
		UnixNanos: unixNanos,
		DurNanos:  durNanos,
		Verdict:   out.Verdict.String(),
		Margin:    out.Decision.Margin,
		Depth:     out.Decision.Depth,
		Model:     out.Decision.Model,
		Bootstrap: out.Decision.Bootstrap,
	}
}

// verdict applies the middlebox policy to a classifier decision.
func (mb *Middlebox) verdict(d classifier.Decision) Verdict {
	if d.Admit {
		return Admit
	}
	if mb.Policy == Deprioritize {
		return LowPriority
	}
	return Reject
}

// recordOutcome performs the per-decision telemetry: the cell's
// verdict counter, the audit-ring record, and — when a flight recorder
// is wired — the journal record carrying the audit ring's sequence, so
// exlog can replay verdicts bit-for-bit against the audit trail.
// Caller has checked mb.obs != nil and provides the monotonic offset
// for the timestamp.
func (mb *Middlebox) recordOutcome(cell *Cell, a excr.Arrival, out Outcome, endOff time.Duration) {
	switch out.Verdict {
	case Admit:
		cell.admitN.Inc()
	case Reject:
		cell.rejectN.Inc()
	default:
		cell.lowpriN.Inc()
	}
	stamp := mb.obs.epochNanos + int64(endOff)
	seq := mb.obs.ring.Record(obs.DecisionRecord{
		UnixNanos: stamp,
		Cell:      string(out.Cell),
		Class:     int(a.Class),
		Level:     int(a.Level),
		Matrix:    a.Matrix.Key(),
		Margin:    out.Decision.Margin,
		Depth:     out.Decision.Depth,
		Verdict:   out.Verdict.String(),
		Bootstrap: out.Decision.Bootstrap,
		Model:     out.Decision.Model,
	})
	if mb.flight != nil {
		mb.recordFlight(cell, a, out, stamp, seq)
	}
}

// recordFlight journals one admission decision: a single by-value
// lock-free ring publish, zero allocations. Caller has checked
// mb.flight != nil; stamp 0 lets the recorder stamp the record.
func (mb *Middlebox) recordFlight(cell *Cell, a excr.Arrival, out Outcome, stamp int64, seq uint64) {
	var flags uint8
	if out.Decision.Bootstrap {
		flags |= flightrec.FlagBootstrap
	}
	mb.flight.Record(flightrec.Record{
		UnixNanos: stamp,
		Seq:       seq,
		Model:     out.Decision.Model,
		Value:     out.Decision.Margin,
		Aux:       out.Decision.Depth,
		Cell:      cell.flightCell,
		Class:     int8(a.Class),
		Level:     int8(a.Level),
		Kind:      flightrec.KindAdmission,
		Verdict:   uint8(out.Verdict),
		Flags:     flags,
	})
}

// Observe feeds a ground-truth labeled tuple to one cell's classifier.
// When the cell defers retraining, crossing a batch boundary kicks the
// cell's background worker instead of fitting inline.
func (mb *Middlebox) Observe(id CellID, s excr.Sample) error {
	return mb.ObserveTraced(id, s, nil)
}

// ObserveTraced is Observe with span emission: the ground-truth label
// fed back for the flow is appended to its trace, closing the loop
// between what the classifier predicted and what the flow experienced.
func (mb *Middlebox) ObserveTraced(id CellID, s excr.Sample, ft *trace.FlowTrace) error {
	cell, ok := mb.cell(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	cell.Classifier.Observe(s)
	cell.kickRetrain()
	if ft != nil {
		note := "label -1"
		if s.Label == 1 {
			note = "label +1"
		}
		ft.Add(trace.Span{Kind: trace.KindObserve, UnixNanos: time.Now().UnixNano(), Note: note})
	}
	return nil
}

// Candidate pairs a cell with the arrival as that cell would see it
// (each cell carries its own current traffic matrix).
type Candidate struct {
	Cell    CellID
	Arrival excr.Arrival
}

// SelectNetwork implements Section 4.1: classify the flow against
// every candidate cell; among the cells that admit it, pick the one
// whose post-admission state sits deepest inside the capacity region.
// Depth (the margin normalized per cell) is compared rather than the
// raw margin, because raw SVM decision values are not on a common
// scale across independently trained cells. Bootstrap-phase cells
// admit with depth 0, so a trained cell that admits wins over a
// bootstrapping one.
//
// The boolean result is false when no candidate admits the flow; the
// returned Outcome is then the least-bad candidate under the policy.
func (mb *Middlebox) SelectNetwork(cands []Candidate) (Outcome, bool, error) {
	return mb.SelectNetworkWith(cands, nil)
}

// SelectNetworkTraced is SelectNetworkWith with span emission: one
// Select span summarizing the fan-out (how many candidates, which cell
// won — or that none admitted) is appended to the flow's trace.
func (mb *Middlebox) SelectNetworkTraced(cands []Candidate, s *classifier.Scratch, ft *trace.FlowTrace) (Outcome, bool, error) {
	var t0 time.Time
	if ft != nil {
		t0 = time.Now()
	}
	out, ok, err := mb.SelectNetworkWith(cands, s)
	if ft != nil && err == nil {
		now := time.Now()
		sp := trace.Span{
			Kind:      trace.KindSelect,
			UnixNanos: now.UnixNano(),
			DurNanos:  now.Sub(t0).Nanoseconds(),
			Margin:    out.Decision.Margin,
			Depth:     out.Decision.Depth,
			Model:     out.Decision.Model,
			Note:      fmt.Sprintf("%d candidates", len(cands)),
		}
		if ok {
			sp.Verdict = "cell:" + string(out.Cell)
		} else {
			sp.Verdict = "no-admitting-cell"
		}
		ft.Add(sp)
	}
	return out, ok, err
}

// SelectNetworkWith is SelectNetwork with caller-owned classifier
// workspace. Candidates are grouped by cell and each group is scored
// with one DecideBatch call — a single pass over that cell's SV slab
// and a single consistent model snapshot per cell — instead of one
// scalar decision per candidate. Per-candidate telemetry (verdict
// counters, audit-ring records) is preserved; the 1-in-16 admission
// latency sample is not taken here, as selection has its own counters.
func (mb *Middlebox) SelectNetworkWith(cands []Candidate, s *classifier.Scratch) (Outcome, bool, error) {
	if len(cands) == 0 {
		return Outcome{}, false, errors.New("exboxcore: no candidates")
	}
	if mb.obs != nil {
		mb.obs.selections.Inc()
	}
	// Deterministic evaluation order; equal cells end up adjacent, so
	// groups are contiguous runs.
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cell < sorted[j].Cell })

	var best Outcome
	var bestOK bool
	var arrivals []excr.Arrival
	var decisions []classifier.Decision
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j].Cell == sorted[i].Cell {
			j++
		}
		cell, ok := mb.cell(sorted[i].Cell)
		if !ok {
			return Outcome{}, false, fmt.Errorf("%w: %q", ErrUnknownCell, sorted[i].Cell)
		}
		arrivals = arrivals[:0]
		for _, cand := range sorted[i:j] {
			arrivals = append(arrivals, cand.Arrival)
		}
		decisions = cell.Classifier.DecideBatch(decisions[:0], arrivals, s)
		var endOff time.Duration
		if mb.obs != nil {
			endOff = time.Since(mb.obs.epoch)
		}
		for k, d := range decisions {
			out := Outcome{Cell: sorted[i].Cell, Decision: d, Verdict: mb.verdict(d)}
			if mb.obs != nil {
				mb.recordOutcome(cell, arrivals[k], out, endOff)
			}
			admits := out.Verdict == Admit
			switch {
			case admits && (!bestOK || out.Decision.Depth > best.Decision.Depth):
				best, bestOK = out, true
			case !bestOK && (best.Cell == "" || out.Decision.Depth > best.Decision.Depth):
				best = out
			}
		}
		i = j
	}
	if bestOK && mb.obs != nil {
		mb.obs.selectionAdmits.Inc()
	}
	return best, bestOK, nil
}

// ActiveFlow describes one admitted flow for re-evaluation.
type ActiveFlow struct {
	ID    int
	Class excr.AppClass
	Level excr.SNRLevel
	// Trace, when non-nil, receives the re-evaluation verdict as a
	// span: a coalesced Monitor "keep" per sweep streak, or a
	// Reevaluate "evict" when the classification flips. Untraced flows
	// leave it nil and pay one branch.
	Trace *trace.FlowTrace
}

// Reevaluate implements Section 4.3: for each admitted flow, rebuild
// the X tuple it would present if it arrived now (the current matrix
// minus the flow itself) and reclassify. Flows whose classification
// turned negative are returned for offload or discontinuation.
//
// current must be the cell's present traffic matrix including all the
// given flows.
func (mb *Middlebox) Reevaluate(id CellID, current excr.Matrix, active []ActiveFlow) ([]ActiveFlow, error) {
	return mb.ReevaluateWith(id, current, active, nil)
}

// ReevaluateWith is Reevaluate with caller-owned classifier workspace.
// Flows sharing a matrix cell present the exact same re-arrival tuple
// (current minus one flow of that class and level), so the sweep
// classifies each distinct (class, level) once — at most Space.Dim()
// decisions however many flows are active — and the whole set is
// scored with one DecideBatch call against a single model snapshot,
// giving every flow in the sweep a consistent view of the boundary.
func (mb *Middlebox) ReevaluateWith(id CellID, current excr.Matrix, active []ActiveFlow, s *classifier.Scratch) ([]ActiveFlow, error) {
	cell, ok := mb.cell(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	// Validate and group up front: group[cellIndex] is the slot in
	// arrivals covering that (class, level), -1 when no active flow
	// maps there.
	group := make([]int, mb.Space.Dim())
	for i := range group {
		group[i] = -1
	}
	var arrivals []excr.Arrival
	for _, f := range active {
		lvl := f.Level
		if mb.Space.Levels == 1 {
			lvl = 0
		}
		if current.Get(f.Class, lvl) == 0 {
			return nil, fmt.Errorf("exboxcore: flow %d (%v,%v) not present in matrix %v", f.ID, f.Class, lvl, current)
		}
		if idx := mb.Space.CellIndex(f.Class, lvl); group[idx] < 0 {
			group[idx] = len(arrivals)
			arrivals = append(arrivals, excr.Arrival{Matrix: current.Dec(f.Class, lvl), Class: f.Class, Level: lvl})
		}
	}
	decisions := cell.Classifier.DecideBatch(nil, arrivals, s)
	var evict []ActiveFlow
	var nowNanos int64 // one clock read per sweep, only if anything is traced
	for _, f := range active {
		lvl := f.Level
		if mb.Space.Levels == 1 {
			lvl = 0
		}
		d := decisions[group[mb.Space.CellIndex(f.Class, lvl)]]
		if !d.Admit {
			evict = append(evict, f)
		}
		if f.Trace != nil {
			if nowNanos == 0 {
				nowNanos = time.Now().UnixNano()
			}
			sp := trace.Span{UnixNanos: nowNanos, Margin: d.Margin, Depth: d.Depth, Model: d.Model}
			if d.Admit {
				sp.Kind, sp.Verdict = trace.KindMonitor, "keep"
				f.Trace.AddCoalesced(sp)
			} else {
				sp.Kind, sp.Verdict = trace.KindReevaluate, "evict"
				f.Trace.Add(sp)
			}
		}
	}
	if mb.obs != nil {
		mb.obs.reevalCalls.Inc()
		mb.obs.reevalFlows.Add(int64(len(active)))
		mb.obs.reevalEvicted.Add(int64(len(evict)))
	}
	// SLO accounting: every monitored flow that stays inside the
	// capacity region is a good QoE tick, every eviction a bad one —
	// the sliding-window substrate the burn-rate alert reads.
	if cell.slo != nil && len(active) > 0 {
		good := len(active) - len(evict)
		if nowNanos == 0 {
			nowNanos = time.Now().UnixNano()
		}
		cell.slo.add(nowNanos, good, len(evict))
		cell.sloGoodN.Add(int64(good))
		cell.sloBadN.Add(int64(len(evict)))
	}
	return evict, nil
}

// CellLoad is one cell's present state for a middlebox-wide
// re-evaluation sweep: its current traffic matrix (including all the
// listed flows) and the admitted flows to re-check.
type CellLoad struct {
	Cell   CellID
	Matrix excr.Matrix
	Active []ActiveFlow
}

// ReevaluateAll runs the Section 4.3 sweep across many cells at once,
// fanning one goroutine per cell — cells share nothing on the decision
// path, so the sweeps proceed in parallel. It returns the evictions
// per cell (cells whose sweep failed are absent) joined with any
// per-cell errors.
func (mb *Middlebox) ReevaluateAll(loads []CellLoad) (map[CellID][]ActiveFlow, error) {
	evicts := make([][]ActiveFlow, len(loads))
	errs := make([]error, len(loads))
	var wg sync.WaitGroup
	for i := range loads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var s classifier.Scratch
			evicts[i], errs[i] = mb.ReevaluateWith(loads[i].Cell, loads[i].Matrix, loads[i].Active, &s)
		}(i)
	}
	wg.Wait()
	out := make(map[CellID][]ActiveFlow, len(loads))
	for i, l := range loads {
		if errs[i] == nil {
			out[l.Cell] = evicts[i]
		}
	}
	return out, errors.Join(errs...)
}

// EstimateQoE exposes the network-side QoE estimate for a flow when an
// estimator is configured.
func (mb *Middlebox) EstimateQoE(class excr.AppClass, q metrics.QoS) (float64, error) {
	if mb.Estimator == nil {
		return 0, errors.New("exboxcore: no QoE estimator configured")
	}
	return mb.Estimator.Estimate(class, q)
}
