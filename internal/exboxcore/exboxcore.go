// Package exboxcore assembles ExBox itself: the experience-management
// middlebox that sits at the WiFi controller or LTE PDN gateway,
// maintains one Admittance Classifier per cell, and uses them for the
// three QoE-management workflows of Section 4:
//
//   - Admission control: classify each arriving flow against its
//     cell's learned capacity region; inadmissible flows are
//     discontinued or deprioritized according to the administrator's
//     policy.
//   - Network selection: when several cells could carry a flow (e.g.
//     hybrid WiFi+LTE), admit it to the cell whose classifier places
//     the post-admission state deepest inside its capacity region
//     (largest SVM margin).
//   - Dynamics: periodically re-evaluate admitted flows against the
//     current traffic matrix; flows whose re-classification turns
//     negative are handed back for offload or discontinuation.
package exboxcore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/metrics"
	"exbox/internal/qoe"
)

// Policy is what the middlebox does with an inadmissible flow
// (Section 4.2): drop it at the gateway or push it into a low-priority
// access category (802.11e-style).
type Policy int

const (
	// Discontinue drops inadmissible flows at the gateway.
	Discontinue Policy = iota
	// Deprioritize admits inadmissible flows into a best-effort,
	// low-priority class instead of dropping them.
	Deprioritize
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == Discontinue {
		return "discontinue"
	}
	return "deprioritize"
}

// CellID names one access device (WiFi AP or LTE eNodeB).
type CellID string

// Cell is the middlebox's per-access-device state: a dedicated
// Admittance Classifier learning that cell's ExCR. Per-cell
// serialization lives inside the classifier (its training lock);
// cells never contend with each other.
type Cell struct {
	ID         CellID
	Classifier *classifier.AdmittanceClassifier

	// retrain is the coalescing latch for the background retrainer:
	// capacity 1, non-blocking sends. A burst of observations crossing
	// several batch boundaries collapses into one pending signal, so
	// the worker runs one fit over everything seen, not one per batch.
	// Nil unless the cell's classifier was configured with
	// DeferRetrain.
	retrain  chan struct{}
	stop     chan struct{}
	stopOnce sync.Once
}

// kickRetrain signals the background retrainer if deferred work is
// pending; the capacity-1 latch coalesces repeated kicks.
func (c *Cell) kickRetrain() {
	if c.retrain == nil || !c.Classifier.RetrainPending() {
		return
	}
	select {
	case c.retrain <- struct{}{}:
	default:
	}
}

// retrainLoop is the cell's background worker: it waits on the latch
// and performs the deferred SVM fits off the admission path.
func (c *Cell) retrainLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case <-c.retrain:
			_ = c.Classifier.Maintain()
		}
	}
}

// Verdict is the middlebox's disposition for one flow.
type Verdict int

const (
	// Admit carries the flow normally.
	Admit Verdict = iota
	// Reject drops the flow at the gateway.
	Reject
	// LowPriority admits the flow into the best-effort class.
	LowPriority
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case Reject:
		return "reject"
	default:
		return "low-priority"
	}
}

// Outcome reports one admission decision with its classifier detail.
type Outcome struct {
	Cell     CellID
	Verdict  Verdict
	Decision classifier.Decision
}

// Middlebox is the ExBox gateway component. It is safe for concurrent
// use: Admit (and the workflows built on it) is a lock-free read of
// each cell's atomically published model snapshot, Observe serializes
// only on the owning cell's training lock, and the cell registry is
// guarded by a read-write lock so lookups never contend with each
// other. Register cells with classifier.Config.DeferRetrain to move
// the batch SVM fits onto a per-cell background worker; such a
// middlebox should be Closed when done.
type Middlebox struct {
	Space     excr.Space
	Policy    Policy
	Estimator *qoe.Estimator // optional: network-side QoE estimation

	mu    sync.RWMutex // guards cells and order
	cells map[CellID]*Cell
	order []CellID
	wg    sync.WaitGroup // per-cell retrain workers
}

// New returns an empty middlebox for the given traffic-matrix space.
func New(space excr.Space, policy Policy) *Middlebox {
	if !space.Valid() {
		panic("exboxcore: invalid space")
	}
	return &Middlebox{Space: space, Policy: policy, cells: make(map[CellID]*Cell)}
}

// AddCell registers an access device and creates its Admittance
// Classifier with the given configuration. With cfg.DeferRetrain the
// cell gets a background retrain worker, stopped by Close.
func (mb *Middlebox) AddCell(id CellID, cfg classifier.Config) (*Cell, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if _, dup := mb.cells[id]; dup {
		return nil, fmt.Errorf("exboxcore: cell %q already registered", id)
	}
	c := &Cell{ID: id, Classifier: classifier.New(mb.Space, cfg)}
	if cfg.DeferRetrain {
		c.retrain = make(chan struct{}, 1)
		c.stop = make(chan struct{})
		mb.wg.Add(1)
		go c.retrainLoop(&mb.wg)
	}
	mb.cells[id] = c
	mb.order = append(mb.order, id)
	return c, nil
}

// Close stops the per-cell background retrain workers. It is only
// needed when cells were registered with DeferRetrain; on a fully
// synchronous middlebox it is a no-op. Safe to call more than once.
func (mb *Middlebox) Close() {
	mb.mu.RLock()
	for _, c := range mb.cells {
		if c.stop != nil {
			c.stopOnce.Do(func() { close(c.stop) })
		}
	}
	mb.mu.RUnlock()
	mb.wg.Wait()
}

// Cell returns the registered cell, or nil.
func (mb *Middlebox) Cell(id CellID) *Cell {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	return mb.cells[id]
}

// Cells returns the registered cells in registration order.
func (mb *Middlebox) Cells() []*Cell {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	out := make([]*Cell, 0, len(mb.order))
	for _, id := range mb.order {
		out = append(out, mb.cells[id])
	}
	return out
}

// cell is the read-locked registry lookup behind every workflow.
func (mb *Middlebox) cell(id CellID) (*Cell, bool) {
	mb.mu.RLock()
	c, ok := mb.cells[id]
	mb.mu.RUnlock()
	return c, ok
}

// ErrUnknownCell is returned for operations on unregistered cells.
var ErrUnknownCell = errors.New("exboxcore: unknown cell")

// Admit runs admission control for an arrival on one cell and applies
// the policy to the classifier's answer. The decision is a lock-free
// read of the cell's published model, so concurrent admissions scale
// with GOMAXPROCS.
func (mb *Middlebox) Admit(id CellID, a excr.Arrival) (Outcome, error) {
	cell, ok := mb.cell(id)
	if !ok {
		return Outcome{}, fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	d := cell.Classifier.Decide(a)
	out := Outcome{Cell: id, Decision: d, Verdict: Admit}
	if !d.Admit {
		if mb.Policy == Deprioritize {
			out.Verdict = LowPriority
		} else {
			out.Verdict = Reject
		}
	}
	return out, nil
}

// Observe feeds a ground-truth labeled tuple to one cell's classifier.
// When the cell defers retraining, crossing a batch boundary kicks the
// cell's background worker instead of fitting inline.
func (mb *Middlebox) Observe(id CellID, s excr.Sample) error {
	cell, ok := mb.cell(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	cell.Classifier.Observe(s)
	cell.kickRetrain()
	return nil
}

// Candidate pairs a cell with the arrival as that cell would see it
// (each cell carries its own current traffic matrix).
type Candidate struct {
	Cell    CellID
	Arrival excr.Arrival
}

// SelectNetwork implements Section 4.1: classify the flow against
// every candidate cell; among the cells that admit it, pick the one
// whose post-admission state sits deepest inside the capacity region.
// Depth (the margin normalized per cell) is compared rather than the
// raw margin, because raw SVM decision values are not on a common
// scale across independently trained cells. Bootstrap-phase cells
// admit with depth 0, so a trained cell that admits wins over a
// bootstrapping one.
//
// The boolean result is false when no candidate admits the flow; the
// returned Outcome is then the least-bad candidate under the policy.
func (mb *Middlebox) SelectNetwork(cands []Candidate) (Outcome, bool, error) {
	if len(cands) == 0 {
		return Outcome{}, false, errors.New("exboxcore: no candidates")
	}
	// Deterministic evaluation order.
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Cell < sorted[j].Cell })

	var best Outcome
	var bestOK bool
	for _, cand := range sorted {
		out, err := mb.Admit(cand.Cell, cand.Arrival)
		if err != nil {
			return Outcome{}, false, err
		}
		admits := out.Verdict == Admit
		switch {
		case admits && (!bestOK || out.Decision.Depth > best.Decision.Depth):
			best, bestOK = out, true
		case !bestOK && (best.Cell == "" || out.Decision.Depth > best.Decision.Depth):
			best = out
		}
	}
	return best, bestOK, nil
}

// ActiveFlow describes one admitted flow for re-evaluation.
type ActiveFlow struct {
	ID    int
	Class excr.AppClass
	Level excr.SNRLevel
}

// Reevaluate implements Section 4.3: for each admitted flow, rebuild
// the X tuple it would present if it arrived now (the current matrix
// minus the flow itself) and reclassify. Flows whose classification
// turned negative are returned for offload or discontinuation.
//
// current must be the cell's present traffic matrix including all the
// given flows.
func (mb *Middlebox) Reevaluate(id CellID, current excr.Matrix, active []ActiveFlow) ([]ActiveFlow, error) {
	cell, ok := mb.cell(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	var evict []ActiveFlow
	for _, f := range active {
		lvl := f.Level
		if mb.Space.Levels == 1 {
			lvl = 0
		}
		if current.Get(f.Class, lvl) == 0 {
			return nil, fmt.Errorf("exboxcore: flow %d (%v,%v) not present in matrix %v", f.ID, f.Class, lvl, current)
		}
		without := current.Dec(f.Class, lvl)
		d := cell.Classifier.Decide(excr.Arrival{Matrix: without, Class: f.Class, Level: lvl})
		if !d.Admit {
			evict = append(evict, f)
		}
	}
	return evict, nil
}

// EstimateQoE exposes the network-side QoE estimate for a flow when an
// estimator is configured.
func (mb *Middlebox) EstimateQoE(class excr.AppClass, q metrics.QoS) (float64, error) {
	if mb.Estimator == nil {
		return 0, errors.New("exboxcore: no QoE estimator configured")
	}
	return mb.Estimator.Estimate(class, q)
}
