package exboxcore

import (
	"sync"
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/traffic"
)

// TestMiddleboxConcurrentStress hammers one Middlebox from many
// goroutines — Admit, Observe (with deferred retraining, so the
// background worker fits while admissions run) and Reevaluate all
// concurrently. It asserts nothing beyond absence of races, deadlocks
// and errors; run under -race.
func TestMiddleboxConcurrentStress(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	cfg := classifier.DefaultConfig()
	cfg.DeferRetrain = true
	cfg.BatchSize = 5 // cross batch boundaries often to exercise the worker
	if _, err := mb.AddCell("ap", cfg); err != nil {
		t.Fatal(err)
	}
	defer mb.Close()

	o := wifiOracle()
	rng := mathx.NewRand(1)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			t.Fatal(err)
		}
	}
	// Deferred mode leaves graduation to the worker; force it so the
	// stress phase exercises real (non-bootstrap) decisions.
	if err := mb.Cell("ap").Classifier.ForceOnline(); err != nil {
		t.Fatal(err)
	}

	probes := traffic.Arrivals(traffic.Random(mathx.NewRand(2), 40, 20, 0, excr.DefaultSpace), nil)
	var wg sync.WaitGroup
	errc := make(chan error, 16)

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if _, err := mb.Admit("ap", probes[i%len(probes)].Arrival); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := mathx.NewRand(seed)
			for _, e := range traffic.Arrivals(traffic.Random(rng, 40, 20, 0, excr.DefaultSpace), nil) {
				if err := mb.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
					errc <- err
					return
				}
			}
		}(int64(10 + g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 2).Set(excr.Streaming, 0, 2)
		active := []ActiveFlow{
			{ID: 1, Class: excr.Web}, {ID: 2, Class: excr.Streaming},
		}
		for i := 0; i < 100; i++ {
			if _, err := mb.Reevaluate("ap", m, active); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if mb.Cell("ap").Classifier.Bootstrapping() {
		t.Fatal("cell regressed to bootstrap under stress")
	}
}

// TestCloseIdempotent verifies Close is safe to call repeatedly and on
// middleboxes without deferred cells.
func TestCloseIdempotent(t *testing.T) {
	plain := New(excr.DefaultSpace, Discontinue)
	plain.AddCell("ap", classifier.DefaultConfig())
	plain.Close()
	plain.Close()

	cfg := classifier.DefaultConfig()
	cfg.DeferRetrain = true
	async := New(excr.DefaultSpace, Discontinue)
	async.AddCell("ap", cfg)
	o := wifiOracle()
	rng := mathx.NewRand(3)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 10, 20, 0, excr.DefaultSpace), nil) {
		async.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
	}
	async.Close()
	async.Close()
}
