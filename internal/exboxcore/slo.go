package exboxcore

import (
	"sync"
	"time"
)

// This file is the QoE SLO accounting layer (ISSUE 10 tentpole c):
// per-cell sliding windows of good/bad QoE ticks fed by the
// re-evaluation sweeps, reduced to multi-window burn rates the health
// verdict alerts on. The shape is the SRE burn-rate alert: with
// objective o, the burn rate is badFraction/(1-o) — burn 1 means
// exactly spending the error budget, burn 6 on a 15-minute window
// means the monthly budget dies in days — and an alert fires only when
// BOTH a fast and a slow window agree, so a transient blip (fast-only)
// and a long-recovered incident (slow-only) both stay quiet.

// SLOConfig parameterizes the per-cell QoE SLO.
type SLOConfig struct {
	// Objective is the target good-tick fraction (default 0.99).
	Objective float64
	// SlowWindow is the slow burn window (default 15m); the fast
	// window is SlowWindow/15 (so the defaults pair 1m with 15m).
	SlowWindow time.Duration
	// BurnYellow/BurnRed are the burn-rate cut points (defaults 1, 6)
	// a window pair must both exceed.
	BurnYellow, BurnRed float64
	// MinTicks is the evidence gate: fewer QoE ticks than this in the
	// slow window and the check abstains (default 30).
	MinTicks int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if c.SlowWindow <= 0 {
		c.SlowWindow = 15 * time.Minute
	}
	if c.SlowWindow < 15*time.Second {
		c.SlowWindow = 15 * time.Second // fast window floor of 1s
	}
	if c.BurnYellow <= 0 {
		c.BurnYellow = 1
	}
	if c.BurnRed <= c.BurnYellow {
		c.BurnRed = 6 * c.BurnYellow
	}
	if c.MinTicks <= 0 {
		c.MinTicks = 30
	}
	return c
}

// FastWindow returns the fast burn window (SlowWindow/15).
func (c SLOConfig) FastWindow() time.Duration { return c.SlowWindow / 15 }

// sloBucket accumulates one second's QoE ticks.
type sloBucket struct {
	sec       int64
	good, bad uint32
}

// SLOBurn is one cell's burn-rate readout.
type SLOBurn struct {
	FastBadFrac, SlowBadFrac float64
	FastBurn, SlowBurn       float64
	FastTicks, SlowTicks     int64
}

// sloTracker is one cell's sliding window: a power-of-two ring of
// per-second buckets covering the slow window. Ticks arrive from
// re-evaluation sweeps and reads from health scrapes — both off the
// packet path — so a plain mutex is the right tool; nothing here is
// ever touched by Admit.
type sloTracker struct {
	cfg SLOConfig

	mu         sync.Mutex
	buckets    []sloBucket
	lastStatus HealthStatus
}

func newSLOTracker(cfg SLOConfig) *sloTracker {
	cfg = cfg.withDefaults()
	secs := int(cfg.SlowWindow / time.Second)
	if secs < 1 {
		secs = 1
	}
	size := 1
	for size < secs {
		size <<= 1
	}
	return &sloTracker{cfg: cfg, buckets: make([]sloBucket, size)}
}

// add accumulates one sweep's ticks into the current second's bucket.
func (t *sloTracker) add(nowNanos int64, good, bad int) {
	sec := nowNanos / int64(time.Second)
	t.mu.Lock()
	b := &t.buckets[sec&int64(len(t.buckets)-1)]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.good += uint32(good)
	b.bad += uint32(bad)
	t.mu.Unlock()
}

// burn reduces the window to the burn-rate readout. ok is false while
// the slow window holds fewer than MinTicks ticks — the evidence gate.
func (t *sloTracker) burn(nowNanos int64) (SLOBurn, bool) {
	nowSec := nowNanos / int64(time.Second)
	fastSecs := int64(t.cfg.FastWindow() / time.Second)
	if fastSecs < 1 {
		fastSecs = 1
	}
	slowSecs := int64(t.cfg.SlowWindow / time.Second)

	var fastGood, fastBad, slowGood, slowBad int64
	t.mu.Lock()
	for i := range t.buckets {
		b := t.buckets[i]
		age := nowSec - b.sec
		if b.sec == 0 || age < 0 || age >= slowSecs {
			continue
		}
		slowGood += int64(b.good)
		slowBad += int64(b.bad)
		if age < fastSecs {
			fastGood += int64(b.good)
			fastBad += int64(b.bad)
		}
	}
	t.mu.Unlock()

	var out SLOBurn
	out.FastTicks = fastGood + fastBad
	out.SlowTicks = slowGood + slowBad
	if out.SlowTicks < int64(t.cfg.MinTicks) {
		return out, false
	}
	budget := 1 - t.cfg.Objective
	if out.FastTicks > 0 {
		out.FastBadFrac = float64(fastBad) / float64(out.FastTicks)
		out.FastBurn = out.FastBadFrac / budget
	}
	out.SlowBadFrac = float64(slowBad) / float64(out.SlowTicks)
	out.SlowBurn = out.SlowBadFrac / budget
	return out, true
}

// status grades a readout: both windows must clear a cut point for it
// to count, the multi-window rule that keeps blips and stale incidents
// from alerting.
func (t *sloTracker) status(b SLOBurn) HealthStatus {
	switch {
	case b.FastBurn >= t.cfg.BurnRed && b.SlowBurn >= t.cfg.BurnRed:
		return Red
	case b.FastBurn >= t.cfg.BurnYellow && b.SlowBurn >= t.cfg.BurnYellow:
		return Yellow
	}
	return Green
}

// transition records the newly observed status and reports the
// previous one with whether it changed — the edge detector behind
// breach events.
func (t *sloTracker) transition(s HealthStatus) (prev HealthStatus, changed bool) {
	t.mu.Lock()
	prev, changed = t.lastStatus, t.lastStatus != s
	t.lastStatus = s
	t.mu.Unlock()
	return prev, changed
}

// EnableSLO turns on per-cell QoE SLO burn-rate accounting for every
// registered cell (and cells added later): re-evaluation sweeps feed
// good/bad ticks, HealthWith grades the burn rates as the slo_burn
// check, and status transitions are journaled to the flight recorder
// and counted per cell. Call before traffic; calling again replaces
// the config and resets the windows.
func (mb *Middlebox) EnableSLO(cfg SLOConfig) {
	cfg = cfg.withDefaults()
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.sloCfg = &cfg
	for _, id := range mb.order {
		c := mb.cells[id]
		c.slo = newSLOTracker(cfg)
		if mb.obs != nil {
			mb.wireSLOLocked(c)
		}
	}
}

// wireSLOLocked registers one cell's SLO counters and burn gauges.
// Caller holds mu and has checked mb.obs != nil; registration is
// get-or-create, so re-wiring is free.
func (mb *Middlebox) wireSLOLocked(c *Cell) {
	p := "exbox_cell_" + metricName(string(c.ID)) + "_"
	c.sloGoodN = mb.obs.reg.Counter(p + "slo_good_ticks_total")
	c.sloBadN = mb.obs.reg.Counter(p + "slo_bad_ticks_total")
	c.sloBreachN = mb.obs.reg.Counter(p + "slo_breaches_total")
	c.sloFastG = mb.obs.reg.GaugeFloat(p + "slo_burn_fast")
	c.sloSlowG = mb.obs.reg.GaugeFloat(p + "slo_burn_slow")
}

// SLOBurnFor returns the named cell's current burn readout; ok is
// false for unknown cells, disabled SLO accounting, or not enough
// evidence yet.
func (mb *Middlebox) SLOBurnFor(id CellID) (SLOBurn, bool) {
	c, ok := mb.cell(id)
	if !ok || c.slo == nil {
		return SLOBurn{}, false
	}
	return c.slo.burn(time.Now().UnixNano())
}
