package exboxcore

import (
	"math"
	"strings"
	"testing"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/obs"
	"exbox/internal/obs/flightrec"
)

func TestSLOConfigDefaults(t *testing.T) {
	c := SLOConfig{}.withDefaults()
	if c.Objective != 0.99 || c.SlowWindow != 15*time.Minute || c.BurnYellow != 1 || c.BurnRed != 6 || c.MinTicks != 30 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.FastWindow() != time.Minute {
		t.Fatalf("fast window: %v", c.FastWindow())
	}
	// The floor keeps the fast window at >= 1s.
	if c := (SLOConfig{SlowWindow: time.Second}).withDefaults(); c.SlowWindow != 15*time.Second {
		t.Fatalf("slow-window floor: %v", c.SlowWindow)
	}
	// BurnRed must stay above BurnYellow.
	if c := (SLOConfig{BurnYellow: 2, BurnRed: 1}).withDefaults(); c.BurnRed != 12 {
		t.Fatalf("red cut: %v", c.BurnRed)
	}
}

// TestSLOTrackerBurnMath drives the tracker with a synthetic clock and
// pins the burn arithmetic: burn = badFraction / (1 - objective), per
// window, with the evidence gate and window ageing.
func TestSLOTrackerBurnMath(t *testing.T) {
	// 60s slow window -> 4s fast window; objective 0.99 -> 1% budget.
	tr := newSLOTracker(SLOConfig{Objective: 0.99, SlowWindow: time.Minute, MinTicks: 10})
	at := func(sec int64) int64 { return sec * int64(time.Second) }

	// Not enough evidence yet: 9 ticks < MinTicks 10.
	tr.add(at(100), 9, 0)
	if _, ok := tr.burn(at(100)); ok {
		t.Fatal("evidence gate did not hold")
	}

	// 100 ticks spread in the slow window, 2 bad; the bad ones land in
	// the fast window (age < 4s of now=130).
	tr.add(at(90), 49, 0)
	tr.add(at(128), 40, 2)
	b, ok := tr.burn(at(130))
	if !ok {
		t.Fatal("burn abstained with 100 ticks")
	}
	if b.SlowTicks != 100 || b.FastTicks != 42 {
		t.Fatalf("ticks: fast %d slow %d", b.FastTicks, b.SlowTicks)
	}
	if want := 0.02; math.Abs(b.SlowBadFrac-want) > 1e-12 {
		t.Fatalf("slow bad frac: %v, want %v", b.SlowBadFrac, want)
	}
	if want := 2.0; math.Abs(b.SlowBurn-want) > 1e-9 {
		t.Fatalf("slow burn: %v, want %v", b.SlowBurn, want)
	}
	if want := (2.0 / 42.0) / 0.01; math.Abs(b.FastBurn-want) > 1e-9 {
		t.Fatalf("fast burn: %v, want %v", b.FastBurn, want)
	}

	// 70 seconds later the old buckets aged out of the slow window and
	// the gate holds again.
	if _, ok := tr.burn(at(200)); ok {
		t.Fatal("aged-out window still produced a readout")
	}
}

// TestSLOTrackerStatusAndTransition pins the multi-window alert rule
// (both windows must clear a cut) and the edge detector.
func TestSLOTrackerStatusAndTransition(t *testing.T) {
	tr := newSLOTracker(SLOConfig{Objective: 0.99, SlowWindow: time.Minute, BurnYellow: 1, BurnRed: 6})
	cases := []struct {
		fast, slow float64
		want       HealthStatus
	}{
		{0, 0, Green},
		{10, 0.5, Green}, // fast-only blip stays quiet
		{0.5, 10, Green}, // long-recovered incident stays quiet
		{2, 2, Yellow},
		{6, 8, Red},
		{8, 2, Yellow}, // red needs both windows red
	}
	for _, tc := range cases {
		if got := tr.status(SLOBurn{FastBurn: tc.fast, SlowBurn: tc.slow}); got != tc.want {
			t.Errorf("status(fast=%v slow=%v) = %v, want %v", tc.fast, tc.slow, got, tc.want)
		}
	}

	if prev, changed := tr.transition(Yellow); prev != Green || !changed {
		t.Fatalf("first transition: prev %v changed %v", prev, changed)
	}
	if prev, changed := tr.transition(Yellow); prev != Yellow || changed {
		t.Fatalf("steady state: prev %v changed %v", prev, changed)
	}
	if prev, changed := tr.transition(Green); prev != Yellow || !changed {
		t.Fatalf("recovery: prev %v changed %v", prev, changed)
	}
}

// TestReevaluateFeedsSLO checks the tick plumbing end to end: a
// re-evaluation sweep turns kept flows into good ticks and evictions
// into bad ticks, on the tracker and on the per-cell counters.
func TestReevaluateFeedsSLO(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	mb.Instrument(reg, 64)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	mb.EnableSLO(SLOConfig{SlowWindow: time.Minute, MinTicks: 1})
	trainCell(t, mb, "ap", wifiOracle(), 1)

	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 2)
	active := []ActiveFlow{
		{ID: 1, Class: excr.Web, Level: 0},
		{ID: 2, Class: excr.Web, Level: 0},
	}
	evict, err := mb.Reevaluate("ap", m, active)
	if err != nil {
		t.Fatal(err)
	}
	good := int64(len(active) - len(evict))
	bad := int64(len(evict))
	if g := reg.Counter("exbox_cell_ap_slo_good_ticks_total").Value(); g != good {
		t.Fatalf("good ticks counter: %d, want %d", g, good)
	}
	if b := reg.Counter("exbox_cell_ap_slo_bad_ticks_total").Value(); b != bad {
		t.Fatalf("bad ticks counter: %d, want %d", b, bad)
	}
	b, ok := mb.SLOBurnFor("ap")
	if !ok {
		t.Fatal("SLOBurnFor abstained after a sweep")
	}
	if b.SlowTicks != good+bad {
		t.Fatalf("tracker ticks: %d, want %d", b.SlowTicks, good+bad)
	}
	if _, ok := mb.SLOBurnFor("nope"); ok {
		t.Fatal("unknown cell must abstain")
	}
}

// TestHealthSLOBurnCheck drives the slo_burn health check through a
// breach and a recovery: the check appears once there is evidence, the
// breach increments the per-cell counter exactly once per transition
// (edge-detected), journals a flight record, and recovery journals the
// green transition without counting a breach.
func TestHealthSLOBurnCheck(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	mb.Instrument(reg, 64)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	mb.EnableSLO(SLOConfig{Objective: 0.99, SlowWindow: 15 * time.Second, MinTicks: 1})
	fr := flightrec.NewRecorder(64)
	mb.InstrumentFlightRecorder(fr)
	trainCell(t, mb, "ap", wifiOracle(), 1)

	findSLO := func(rep HealthReport) *HealthCheck {
		for _, c := range rep.Cells {
			for i := range c.Checks {
				if c.Checks[i].Name == "slo_burn" {
					return &c.Checks[i]
				}
			}
		}
		return nil
	}

	// No ticks yet: the check must abstain entirely.
	if chk := findSLO(mb.Health()); chk != nil {
		t.Fatalf("slo_burn with no evidence: %+v", chk)
	}

	// All-bad ticks: burn 100 on both windows -> Red.
	cell := mb.Cell("ap")
	cell.slo.add(time.Now().UnixNano(), 0, 10)
	rep := mb.Health()
	chk := findSLO(rep)
	if chk == nil || chk.Status != Red {
		t.Fatalf("breach check: %+v", chk)
	}
	if !strings.Contains(chk.Detail, "objective") {
		t.Fatalf("detail: %q", chk.Detail)
	}
	if rep.Status != Red {
		t.Fatalf("report status: %v", rep.Status)
	}
	breaches := reg.Counter("exbox_cell_ap_slo_breaches_total")
	if breaches.Value() != 1 {
		t.Fatalf("breach counter: %d", breaches.Value())
	}
	if reg.GaugeFloat("exbox_cell_ap_slo_burn_slow").Value() < 6 {
		t.Fatal("slow burn gauge not mirrored")
	}
	if fr.Depth() != 1 {
		t.Fatalf("flight records after breach: %d", fr.Depth())
	}

	// Same status again: edge detector keeps the counter and journal
	// quiet.
	mb.Health()
	if breaches.Value() != 1 || fr.Depth() != 1 {
		t.Fatalf("re-scrape counted again: breaches %d, records %d", breaches.Value(), fr.Depth())
	}

	// Recovery: flood the window with good ticks -> Green transition,
	// journaled but not counted as a breach.
	cell.slo.add(time.Now().UnixNano(), 10000, 0)
	rep = mb.Health()
	if chk := findSLO(rep); chk == nil || chk.Status != Green {
		t.Fatalf("recovery check: %+v", chk)
	}
	if breaches.Value() != 1 {
		t.Fatalf("recovery counted as breach: %d", breaches.Value())
	}
	if fr.Depth() != 2 {
		t.Fatalf("flight records after recovery: %d", fr.Depth())
	}
}

// TestEnableSLOCoversLateCells pins that a cell added after EnableSLO
// still gets a tracker and wired metrics.
func TestEnableSLOCoversLateCells(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	mb.Instrument(reg, 64)
	mb.EnableSLO(SLOConfig{SlowWindow: time.Minute, MinTicks: 1})
	if _, err := mb.AddCell("late", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	c := mb.Cell("late")
	if c.slo == nil {
		t.Fatal("late cell has no SLO tracker")
	}
	c.slo.add(time.Now().UnixNano(), 3, 1)
	if b, ok := mb.SLOBurnFor("late"); !ok || b.SlowTicks != 4 {
		t.Fatalf("late cell burn: %+v ok=%v", b, ok)
	}
}
