package exboxcore

import (
	"fmt"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/obs/trace"
)

// This file is the middlebox's burst datapath: the batched Observe and
// Admit entry points the ingest ring drains into. The per-packet entry
// points (Admit/AdmitTraced, Observe/ObserveTraced) stay the reference
// semantics; everything here is pinned to them by tests — same
// decisions bit for bit, same audit-ring records (modulo timestamps),
// same counter totals — while paying per-burst instead of per-packet
// for the registry lookup, the training-lock handshake, the clock
// reads, and the model-snapshot loads.

// ObserveBatch feeds a burst of labeled tuples to one cell's
// classifier under a single training-lock hold, then kicks the
// background retrainer once. Equivalent to calling Observe per sample
// (the classifier preserves per-sample phase transitions; the retrain
// latch absorbs the collapsed kicks).
func (mb *Middlebox) ObserveBatch(id CellID, samples []excr.Sample) error {
	return mb.ObserveBatchTraced(id, samples, nil)
}

// ObserveBatchTraced is ObserveBatch with span emission: traces[i],
// when non-nil, receives the observe span for samples[i]. traces may
// be nil (no tracing) and must otherwise have len(samples) entries.
// Spans are stamped after the batched observe completes, so their
// timestamps are per-burst rather than per-sample — the span order
// within each flow's own timeline is unchanged.
func (mb *Middlebox) ObserveBatchTraced(id CellID, samples []excr.Sample, traces []*trace.FlowTrace) error {
	if len(samples) == 0 {
		return nil
	}
	cell, ok := mb.cell(id)
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	cell.Classifier.ObserveBatch(samples)
	cell.kickRetrain()
	if traces != nil {
		now := time.Now().UnixNano()
		for i, ft := range traces {
			if ft == nil {
				continue
			}
			note := "label -1"
			if samples[i].Label == 1 {
				note = "label +1"
			}
			ft.Add(trace.Span{Kind: trace.KindObserve, UnixNanos: now, Note: note})
		}
	}
	return nil
}

// BurstCandidate is one admission candidate of an ingest burst, in
// packet order: the flow's traffic class and its SNR level already
// collapsed into the middlebox space (the gateway's level() rule), plus
// the flow's trace when it is sampled.
type BurstCandidate struct {
	Class excr.AppClass
	Level excr.SNRLevel
	Trace *trace.FlowTrace
}

// BurstScratch is caller-owned workspace for AdmitBatch/AdmitBurst:
// the classifier scratch plus the cascade's count, arrival and
// decision buffers. One per worker, grown on demand, reused across
// bursts. Must not be shared concurrently.
type BurstScratch struct {
	clf      classifier.Scratch
	counts   []int                 // running matrix counts across the burst
	cum      []int                 // assumed cumulative counts within a pass
	arrivals []excr.Arrival        // one pass's arrivals
	dec      []classifier.Decision // one pass's speculative decisions
	final    []classifier.Decision // committed decisions, packet order
	finalArr []excr.Arrival        // the arrival each commit was scored on
	bad      []bool                // committed Bad marks, packet order
}

// Clf exposes the embedded classifier scratch so a worker can share
// one workspace between its burst path and any per-packet fallback.
func (bs *BurstScratch) Clf() *classifier.Scratch { return &bs.clf }

// AdmitBatch runs admission control for a burst of independent
// arrivals — each carrying its own traffic matrix — against one model
// snapshot, writing outcomes into dst (grown when too small). The
// decisions and the classifier-side telemetry are exactly DecideBatch;
// the audit ring gets one record per decision in order, and the
// admission-latency histogram, sampled 1-in-16 as on the per-packet
// path, observes the per-decision average of the batch. A nil bs
// allocates locally.
func (mb *Middlebox) AdmitBatch(id CellID, arrivals []excr.Arrival, dst []Outcome, bs *BurstScratch) ([]Outcome, error) {
	cell, ok := mb.cell(id)
	if !ok {
		return dst, fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	n := len(arrivals)
	if cap(dst) < n {
		dst = make([]Outcome, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst, nil
	}
	if bs == nil {
		bs = &BurstScratch{}
	}
	var startOff time.Duration
	sampled := false
	if mb.obs != nil {
		if sampled = mb.obs.ring.Seq()&mb.obs.latMask == 0; sampled {
			startOff = time.Since(mb.obs.epoch)
		}
	}
	bs.dec = cell.Classifier.DecideBatch(bs.dec[:0], arrivals, &bs.clf)
	var endOff time.Duration
	if mb.obs != nil {
		endOff = time.Since(mb.obs.epoch)
		if sampled {
			mb.obs.admitSeconds.Observe((endOff - startOff).Seconds() / float64(n))
		}
	}
	for i, d := range bs.dec {
		out := Outcome{Cell: id, Decision: d, Verdict: mb.verdict(d)}
		dst[i] = out
		if mb.obs != nil {
			mb.recordOutcome(cell, arrivals[i], out, endOff)
		} else if mb.flight != nil {
			mb.recordFlight(cell, arrivals[i], out, 0, 0)
		}
	}
	return dst, nil
}

// AdmitBurst runs admission control for a burst of sequential
// candidates from ONE cell's ingest path, reproducing the per-packet
// matrix dynamics: candidate k's decision conditions on base plus
// every earlier candidate in the burst that was admitted (and is
// inside the space — the same rule TrackAdmitted applies). base is the
// admitted-traffic matrix at burst start; the caller applies
// TrackAdmitted for the admitted outcomes afterwards, exactly as after
// per-packet Admit.
//
// The sequential dependency is resolved without falling back to scalar
// scoring by an adaptive-assumption cascade: each pass scores the
// whole uncommitted window in one PeekBatch under the running
// assumption (every window candidate admits, or every one rejects),
// then commits the longest prefix whose decisions matched the
// assumption PLUS the first breaker — the breaker's own input matrix
// depended only on the (confirmed) prefix, so its decision is valid
// too. The assumption flips to the breaker's verdict and the window
// shrinks. Every pass commits at least one candidate, so a burst of n
// costs at most n batch passes — the worst case (a strictly
// alternating admit/reject sequence) degrades to per-packet cost, and
// a verdict-homogeneous burst, the common case, costs one pass.
//
// Telemetry is recorded once per candidate in packet order after the
// cascade converges: classifier counters/margins/health via
// RecordDecision, the audit-ring record against the matrix the
// committed decision was actually scored on, the 1-in-16-sampled
// latency histogram (observing the burst's per-decision average), and
// the decision span on traced candidates. Speculative passes record
// nothing.
func (mb *Middlebox) AdmitBurst(id CellID, base excr.Matrix, cands []BurstCandidate, dst []Outcome, bs *BurstScratch) ([]Outcome, error) {
	cell, ok := mb.cell(id)
	if !ok {
		return dst, fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	n := len(cands)
	if cap(dst) < n {
		dst = make([]Outcome, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst, nil
	}
	if bs == nil {
		bs = &BurstScratch{}
	}
	var startOff time.Duration
	sampled := false
	if mb.obs != nil {
		if sampled = mb.obs.ring.Seq()&mb.obs.latMask == 0; sampled {
			startOff = time.Since(mb.obs.epoch)
		}
	}
	space := mb.Space
	dim := space.Dim()
	if cap(bs.counts) < dim {
		bs.counts = make([]int, dim)
		bs.cum = make([]int, dim)
	}
	counts, cum := bs.counts[:dim], bs.cum[:dim]
	copy(counts, base.Counts())
	if cap(bs.final) < n {
		bs.final = make([]classifier.Decision, n)
		bs.finalArr = make([]excr.Arrival, n)
		bs.bad = make([]bool, n)
	}
	final, finalArr, bad := bs.final[:n], bs.finalArr[:n], bs.bad[:n]

	// inSpace mirrors ShardedTable.tracked for a candidate about to be
	// admitted: only in-space (class, level) cells contribute to the
	// matrix. Levels are already collapsed by the caller.
	inSpace := func(c BurstCandidate) bool {
		return int(c.Class) >= 0 && int(c.Class) < space.Classes &&
			int(c.Level) >= 0 && int(c.Level) < space.Levels
	}

	committed := 0
	asm := true // assume-admit first: bootstrap and healthy cells mostly admit
	for committed < n {
		m := n - committed
		if cap(bs.arrivals) < m {
			bs.arrivals = make([]excr.Arrival, n)
		}
		arrivals := bs.arrivals[:m]
		if asm {
			// Assume every window candidate admits: candidate k sees
			// base + committed admits + assumed admits of 0..k-1.
			copy(cum, counts)
			for k := 0; k < m; k++ {
				c := cands[committed+k]
				arrivals[k] = excr.Arrival{Matrix: excr.MatrixFromCounts(space, cum), Class: c.Class, Level: c.Level}
				if inSpace(c) {
					cum[space.CellIndex(c.Class, c.Level)]++
				}
			}
		} else {
			// Assume every window candidate rejects: the matrix never
			// moves, so the whole window shares one snapshot.
			mat := excr.MatrixFromCounts(space, counts)
			for k := 0; k < m; k++ {
				c := cands[committed+k]
				arrivals[k] = excr.Arrival{Matrix: mat, Class: c.Class, Level: c.Level}
			}
		}
		bs.dec = cell.Classifier.PeekBatch(bs.dec[:0], arrivals, &bs.clf)
		// Commit the matching prefix plus the first breaker; the
		// breaker flips the assumption for the next pass.
		commitEnd := m
		nextAsm := asm
		for k := 0; k < m; k++ {
			if bs.dec[k].Admit != asm {
				commitEnd = k + 1
				nextAsm = bs.dec[k].Admit
				break
			}
		}
		for k := 0; k < commitEnd; k++ {
			g := committed + k
			final[g] = bs.dec[k]
			finalArr[g] = arrivals[k]
			bad[g] = bs.clf.Bad(k)
			if bs.dec[k].Admit && inSpace(cands[g]) {
				counts[space.CellIndex(cands[g].Class, cands[g].Level)]++
			}
		}
		committed += commitEnd
		asm = nextAsm
	}

	var endOff time.Duration
	var perDec time.Duration
	if mb.obs != nil {
		endOff = time.Since(mb.obs.epoch)
		if sampled {
			mb.obs.admitSeconds.Observe((endOff - startOff).Seconds() / float64(n))
		}
		perDec = (endOff - startOff) / time.Duration(n)
	}
	var nowNanos int64
	for _, c := range cands {
		if c.Trace != nil {
			nowNanos = time.Now().UnixNano()
			break
		}
	}
	for g := 0; g < n; g++ {
		d := final[g]
		out := Outcome{Cell: id, Decision: d, Verdict: mb.verdict(d)}
		dst[g] = out
		cell.Classifier.RecordDecision(d, bad[g])
		if mb.obs != nil {
			mb.recordOutcome(cell, finalArr[g], out, endOff)
		} else if mb.flight != nil {
			mb.recordFlight(cell, finalArr[g], out, 0, 0)
		}
		if ft := cands[g].Trace; ft != nil {
			ft.Add(DecisionSpan(nowNanos, perDec.Nanoseconds(), out))
		}
	}
	return dst, nil
}
