package exboxcore

import (
	"sync"
	"sync/atomic"
	"testing"

	"exbox/internal/apps"
	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/obs"
	"exbox/internal/obs/flightrec"
	"exbox/internal/obs/trace"
	"exbox/internal/traffic"
)

// Benchmarks for the concurrent admission path. Run with several
// GOMAXPROCS values to see the scaling, e.g.
//
//	go test -bench Admit -cpu 1,2,4,8 ./internal/exboxcore
//
// BenchmarkAdmitParallel exercises the real architecture: Admit is a
// lock-free read of the cell's published model snapshot, so throughput
// scales with cores. BenchmarkAdmitGlobalLock reproduces the pre-
// refactor architecture — one mutex across the whole per-decision path
// — as the baseline the parallel numbers are compared against.

func benchMiddlebox(b *testing.B) *Middlebox {
	b.Helper()
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		b.Fatal(err)
	}
	o := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(1)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			b.Fatal(err)
		}
	}
	if mb.Cell("ap").Classifier.Bootstrapping() {
		b.Fatal("cell did not graduate")
	}
	return mb
}

func benchProbe() excr.Arrival {
	return excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 12),
		Class:  excr.Web,
	}
}

func BenchmarkAdmitParallel(b *testing.B) {
	mb := benchMiddlebox(b)
	probe := benchProbe()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := mb.Admit("ap", probe); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdmitInstrumented is BenchmarkAdmitParallel with the full
// obs hookup attached (counters, margin + latency histograms, audit
// ring). Comparing the two shows the cost of always-on telemetry; the
// instrumentation is atomic-only, so it must stay within noise of the
// uninstrumented path.
func BenchmarkAdmitInstrumented(b *testing.B) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.Instrument(obs.NewRegistry(), 256)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		b.Fatal(err)
	}
	o := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(1)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			b.Fatal(err)
		}
	}
	if mb.Cell("ap").Classifier.Bootstrapping() {
		b.Fatal("cell did not graduate")
	}
	probe := benchProbe()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := mb.Admit("ap", probe); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAdmitGlobalLock(b *testing.B) {
	mb := benchMiddlebox(b)
	probe := benchProbe()
	var mu sync.Mutex // the old single-pipeline gateway lock
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			mu.Lock()
			_, err := mb.Admit("ap", probe)
			mu.Unlock()
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdmitObserveMixed interleaves admissions with ground-truth
// observations (deferred retraining), the live gateway's steady state:
// the admission path must not stall behind training-set updates or
// background fits.
func BenchmarkAdmitObserveMixed(b *testing.B) {
	mb := New(excr.DefaultSpace, Discontinue)
	cfg := classifier.DefaultConfig()
	cfg.DeferRetrain = true
	if _, err := mb.AddCell("ap", cfg); err != nil {
		b.Fatal(err)
	}
	defer mb.Close()
	o := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(1)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := mb.Cell("ap").Classifier.ForceOnline(); err != nil {
		b.Fatal(err)
	}
	// Labels are precomputed so the loop measures the middlebox datapath,
	// not the simulated oracle (the QoE estimator stand-in allocates in
	// its fluid model, which a real deployment never runs per packet).
	events := traffic.Arrivals(traffic.Random(mathx.NewRand(2), 50, 20, 0, excr.DefaultSpace), nil)
	samples := make([]excr.Sample, len(events))
	for i, e := range events {
		samples[i] = excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}
	}
	probe := benchProbe()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%16 == 15 {
				if err := mb.Observe("ap", samples[i%len(samples)]); err != nil {
					b.Fatal(err)
				}
			} else {
				if _, err := mb.Admit("ap", probe); err != nil {
					b.Fatal(err)
				}
			}
			i++
		}
	})
}

// BenchmarkAdmitTracedUnsampled is the tracing gate: a tracer is
// attached but the flow is not sampled (nil FlowTrace), which is the
// steady-state packet path. It must match BenchmarkAdmitParallel —
// the nil check is two untaken branches and zero allocations.
func BenchmarkAdmitTracedUnsampled(b *testing.B) {
	mb := benchMiddlebox(b)
	mb.InstrumentTracing(trace.New(256, 16))
	probe := benchProbe()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var s classifier.Scratch
		for pb.Next() {
			if _, err := mb.AdmitTraced("ap", probe, &s, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdmitTracedSampled is the worst case: every admission
// carries a live FlowTrace, so each decision pays two clock reads and
// the span append under the trace's mutex. Real deployments sample
// 1-in-16; this bounds the per-sampled-flow overhead.
func BenchmarkAdmitTracedSampled(b *testing.B) {
	mb := benchMiddlebox(b)
	tr := trace.New(256, 1)
	mb.InstrumentTracing(tr)
	probe := benchProbe()
	b.ReportAllocs()
	b.ResetTimer()
	var id atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		var s classifier.Scratch
		var ft *trace.FlowTrace
		n := 0
		for pb.Next() {
			// A fresh trace every 16 decisions, so the append never
			// degenerates into the span-cap drop path.
			if n%16 == 0 {
				ft = tr.Start(trace.ID(id.Add(1)), "ap", int(excr.Web), 0, "sampled")
			}
			if _, err := mb.AdmitTraced("ap", probe, &s, ft); err != nil {
				b.Fatal(err)
			}
			n++
		}
	})
}

// Workflow benchmarks for the batched scoring paths: network selection
// across two trained cells and the re-evaluation sweep of an active
// flow population. Both use a per-caller scratch, the way exboxd's
// sweeper does, so steady state is allocation-free up to the audit
// records.

func benchHybridMiddlebox(b *testing.B) *Middlebox {
	b.Helper()
	mb := New(excr.DefaultSpace, Discontinue)
	for i, cell := range []struct {
		id CellID
		o  apps.Oracle
	}{
		{"wifi", apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}},
		{"lte", apps.Oracle{Net: netsim.FluidLTE{Config: netsim.SimLTE()}}},
	} {
		if _, err := mb.AddCell(cell.id, classifier.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
		rng := mathx.NewRand(int64(i + 1))
		for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
			if err := mb.Observe(cell.id, excr.Sample{Arrival: e.Arrival, Label: cell.o.Label(e.Arrival)}); err != nil {
				b.Fatal(err)
			}
		}
		if mb.Cell(cell.id).Classifier.Bootstrapping() {
			b.Fatalf("cell %s did not graduate", cell.id)
		}
	}
	return mb
}

func BenchmarkSelectNetwork(b *testing.B) {
	mb := benchHybridMiddlebox(b)
	wifiLoad := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 12)
	lteLoad := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 5).Set(excr.Conferencing, 0, 2)
	cands := []Candidate{
		{Cell: "wifi", Arrival: excr.Arrival{Matrix: wifiLoad, Class: excr.Web}},
		{Cell: "lte", Arrival: excr.Arrival{Matrix: lteLoad, Class: excr.Web}},
	}
	var s classifier.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mb.SelectNetworkWith(cands, &s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReevaluate sweeps 60 active flows (20 per class) in one
// call; the grouped scorer reduces that to one decision per class.
func BenchmarkReevaluate(b *testing.B) {
	mb := benchMiddlebox(b)
	m := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 20).Set(excr.Streaming, 0, 20).Set(excr.Conferencing, 0, 20)
	var active []ActiveFlow
	for i := 0; i < 60; i++ {
		active = append(active, ActiveFlow{ID: i, Class: excr.AppClass(i % 3)})
	}
	var s classifier.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mb.ReevaluateWith("ap", m, active, &s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitFlightRecorded is BenchmarkAdmitParallel with the
// flight recorder attached and its writer draining to disk in the
// background. The journal enqueue is a by-value publish into a
// preallocated ring, so the path must stay allocation-free and within
// noise of the bare parallel benchmark.
func BenchmarkAdmitFlightRecorded(b *testing.B) {
	mb := benchMiddlebox(b)
	fr := flightrec.NewRecorder(1 << 16)
	dir := b.TempDir()
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		errc <- fr.RunWriter(flightrec.WriterConfig{Dir: dir, SegmentBytes: 64 << 20}, done)
	}()
	mb.InstrumentFlightRecorder(fr)
	probe := benchProbe()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var s classifier.Scratch
		for pb.Next() {
			if _, err := mb.AdmitWith("ap", probe, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(done)
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
}
