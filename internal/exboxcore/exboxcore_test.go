package exboxcore

import (
	"errors"
	"testing"

	"exbox/internal/apps"
	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
	"exbox/internal/traffic"
)

// trainCell feeds labeled random traffic into one cell until online.
func trainCell(t *testing.T, mb *Middlebox, id CellID, o apps.Oracle, seed int64) {
	t.Helper()
	rng := mathx.NewRand(seed)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe(id, excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			t.Fatal(err)
		}
	}
	if mb.Cell(id).Classifier.Bootstrapping() {
		t.Fatalf("cell %s did not graduate", id)
	}
}

func wifiOracle() apps.Oracle {
	return apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
}

func lteOracle() apps.Oracle {
	return apps.Oracle{Net: netsim.FluidLTE{Config: netsim.SimLTE()}}
}

func TestAddCellAndAccessors(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap1", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if _, err := mb.AddCell("ap1", classifier.DefaultConfig()); err == nil {
		t.Fatal("duplicate cell should error")
	}
	if mb.Cell("ap1") == nil || mb.Cell("nope") != nil {
		t.Fatal("Cell lookup wrong")
	}
	mb.AddCell("ap2", classifier.DefaultConfig())
	cells := mb.Cells()
	if len(cells) != 2 || cells[0].ID != "ap1" || cells[1].ID != "ap2" {
		t.Fatal("Cells order wrong")
	}
}

func TestNewPanicsOnInvalidSpace(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(excr.Space{}, Discontinue)
}

func TestAdmitPolicies(t *testing.T) {
	for _, policy := range []Policy{Discontinue, Deprioritize} {
		mb := New(excr.DefaultSpace, policy)
		mb.AddCell("ap", classifier.DefaultConfig())
		trainCell(t, mb, "ap", wifiOracle(), 1)

		good := excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web}
		out, err := mb.Admit("ap", good)
		if err != nil || out.Verdict != Admit {
			t.Fatalf("policy %v: light arrival verdict %v err %v", policy, out.Verdict, err)
		}
		bad := excr.Arrival{
			Matrix: excr.NewMatrix(excr.DefaultSpace).
				Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 18).Set(excr.Conferencing, 0, 15),
			Class: excr.Streaming,
		}
		out, err = mb.Admit("ap", bad)
		if err != nil {
			t.Fatal(err)
		}
		want := Reject
		if policy == Deprioritize {
			want = LowPriority
		}
		if out.Verdict != want {
			t.Fatalf("policy %v: overload verdict %v, want %v", policy, out.Verdict, want)
		}
	}
}

func TestAdmitUnknownCell(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	_, err := mb.Admit("ghost", excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace)})
	if !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("err = %v, want ErrUnknownCell", err)
	}
	if err := mb.Observe("ghost", excr.Sample{Arrival: excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace)}, Label: 1}); !errors.Is(err, ErrUnknownCell) {
		t.Fatal("Observe should reject unknown cell")
	}
	if _, err := mb.Reevaluate("ghost", excr.NewMatrix(excr.DefaultSpace), nil); !errors.Is(err, ErrUnknownCell) {
		t.Fatal("Reevaluate should reject unknown cell")
	}
}

func TestSelectNetworkPrefersEmptierCell(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("wifi", classifier.DefaultConfig())
	mb.AddCell("lte", classifier.DefaultConfig())
	trainCell(t, mb, "wifi", wifiOracle(), 2)
	trainCell(t, mb, "lte", lteOracle(), 3)

	// WiFi is loaded past its region boundary (≈100 Mbps of demand on
	// a ~97 Mbps cell); LTE carries a comfortable interior load.
	loadedWiFi := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 10).Set(excr.Streaming, 0, 20).Set(excr.Conferencing, 0, 5)
	lightLTE := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 3).Set(excr.Streaming, 0, 3).Set(excr.Conferencing, 0, 3)
	arr := func(m excr.Matrix) excr.Arrival {
		return excr.Arrival{Matrix: m, Class: excr.Conferencing, Level: 0}
	}
	out, ok, err := mb.SelectNetwork([]Candidate{
		{Cell: "wifi", Arrival: arr(loadedWiFi)},
		{Cell: "lte", Arrival: arr(lightLTE)},
	})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if out.Cell != "lte" {
		t.Fatalf("selected %s, want lte (decision: %+v)", out.Cell, out.Decision)
	}
}

func TestSelectNetworkNoAdmitter(t *testing.T) {
	mb := New(excr.DefaultSpace, Deprioritize)
	mb.AddCell("wifi", classifier.DefaultConfig())
	trainCell(t, mb, "wifi", wifiOracle(), 4)
	overload := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 18).Set(excr.Conferencing, 0, 15)
	out, ok, err := mb.SelectNetwork([]Candidate{
		{Cell: "wifi", Arrival: excr.Arrival{Matrix: overload, Class: excr.Streaming}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("no cell should admit the overload")
	}
	if out.Verdict != LowPriority {
		t.Fatalf("fallback verdict = %v, want low-priority under Deprioritize", out.Verdict)
	}
	if _, _, err := mb.SelectNetwork(nil); err == nil {
		t.Fatal("empty candidates should error")
	}
}

func TestReevaluateEvictsAfterChange(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 5)

	// A comfortable matrix: nothing should be evicted.
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 3).Set(excr.Streaming, 0, 2)
	active := []ActiveFlow{
		{ID: 1, Class: excr.Web}, {ID: 2, Class: excr.Streaming},
	}
	evict, err := mb.Reevaluate("ap", m, active)
	if err != nil {
		t.Fatal(err)
	}
	if len(evict) != 0 {
		t.Fatalf("comfortable matrix should evict nothing, got %v", evict)
	}

	// An overloaded matrix: streaming flows should be flagged.
	over := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 19).Set(excr.Conferencing, 0, 14)
	activeOver := []ActiveFlow{
		{ID: 1, Class: excr.Streaming}, {ID: 2, Class: excr.Web},
	}
	evict, err = mb.Reevaluate("ap", over, activeOver)
	if err != nil {
		t.Fatal(err)
	}
	if len(evict) == 0 {
		t.Fatal("overloaded matrix should evict at least one flow")
	}
}

func TestReevaluateValidatesPresence(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	empty := excr.NewMatrix(excr.DefaultSpace)
	_, err := mb.Reevaluate("ap", empty, []ActiveFlow{{ID: 1, Class: excr.Web}})
	if err == nil {
		t.Fatal("flow absent from matrix should error")
	}
}

func TestEstimateQoEWithoutEstimator(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.EstimateQoE(excr.Web, metrics.QoS{}); err == nil {
		t.Fatal("expected error without estimator")
	}
}

func TestStringers(t *testing.T) {
	if Discontinue.String() != "discontinue" || Deprioritize.String() != "deprioritize" {
		t.Fatal("Policy strings wrong")
	}
	if Admit.String() != "admit" || Reject.String() != "reject" || LowPriority.String() != "low-priority" {
		t.Fatal("Verdict strings wrong")
	}
}

// TestSelectNetworkDuplicateCellCandidates: several candidates on the
// same cell form one batched group; the deepest admitting placement
// still wins and unknown cells still error.
func TestSelectNetworkDuplicateCellCandidates(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("wifi", classifier.DefaultConfig())
	trainCell(t, mb, "wifi", wifiOracle(), 2)

	light := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 2)
	loaded := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 10).Set(excr.Streaming, 0, 20).Set(excr.Conferencing, 0, 5)
	arr := func(m excr.Matrix) excr.Arrival {
		return excr.Arrival{Matrix: m, Class: excr.Conferencing, Level: 0}
	}
	wantLight := mb.Cell("wifi").Classifier.Decide(arr(light))
	var s classifier.Scratch
	out, ok, err := mb.SelectNetworkWith([]Candidate{
		{Cell: "wifi", Arrival: arr(loaded)},
		{Cell: "wifi", Arrival: arr(light)},
	}, &s)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if out.Cell != "wifi" || out.Decision.Depth != wantLight.Depth {
		t.Fatalf("selected %+v, want the light placement (depth %v)", out, wantLight.Depth)
	}

	if _, _, err := mb.SelectNetwork([]Candidate{{Cell: "nope", Arrival: arr(light)}}); !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("unknown cell error = %v", err)
	}
}

// TestReevaluateDedupMatchesScalar pins the grouped sweep to per-flow
// scalar decisions: flows sharing a (class, level) must get exactly
// the verdict a fresh Decide on their re-arrival tuple yields.
func TestReevaluateDedupMatchesScalar(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("ap", classifier.DefaultConfig())
	trainCell(t, mb, "ap", wifiOracle(), 5)

	over := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 19).Set(excr.Conferencing, 0, 14)
	active := []ActiveFlow{
		{ID: 1, Class: excr.Streaming}, {ID: 2, Class: excr.Web},
		{ID: 3, Class: excr.Streaming}, {ID: 4, Class: excr.Conferencing},
		{ID: 5, Class: excr.Web},
	}
	var s classifier.Scratch
	evict, err := mb.ReevaluateWith("ap", over, active, &s)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for _, f := range active {
		d := mb.Cell("ap").Classifier.Decide(excr.Arrival{
			Matrix: over.Dec(f.Class, 0), Class: f.Class, Level: 0,
		})
		want[f.ID] = !d.Admit
	}
	got := map[int]bool{}
	for _, f := range evict {
		got[f.ID] = true
	}
	for id, w := range want {
		if got[id] != w {
			t.Fatalf("flow %d evicted=%v, scalar path says %v (evict=%v)", id, got[id], w, evict)
		}
	}
}

// TestReevaluateAll fans the sweep across cells and joins per-cell
// failures without dropping the healthy cells' results.
func TestReevaluateAll(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	mb.AddCell("wifi", classifier.DefaultConfig())
	mb.AddCell("lte", classifier.DefaultConfig())
	trainCell(t, mb, "wifi", wifiOracle(), 2)
	trainCell(t, mb, "lte", lteOracle(), 3)

	comfy := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 3).Set(excr.Streaming, 0, 2)
	over := excr.NewMatrix(excr.DefaultSpace).
		Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 19).Set(excr.Conferencing, 0, 14)
	loads := []CellLoad{
		{Cell: "wifi", Matrix: over, Active: []ActiveFlow{{ID: 1, Class: excr.Streaming}, {ID: 2, Class: excr.Web}}},
		{Cell: "lte", Matrix: comfy, Active: []ActiveFlow{{ID: 3, Class: excr.Web}}},
	}
	evicts, err := mb.ReevaluateAll(loads)
	if err != nil {
		t.Fatal(err)
	}
	if len(evicts["wifi"]) == 0 {
		t.Fatal("overloaded wifi should evict at least one flow")
	}
	if len(evicts["lte"]) != 0 {
		t.Fatalf("comfortable lte should evict nothing, got %v", evicts["lte"])
	}

	// One failing cell: its error is joined, the rest still report.
	loads = append(loads, CellLoad{Cell: "nope", Matrix: comfy})
	evicts, err = mb.ReevaluateAll(loads)
	if !errors.Is(err, ErrUnknownCell) {
		t.Fatalf("joined error = %v, want ErrUnknownCell", err)
	}
	if _, ok := evicts["nope"]; ok {
		t.Fatal("failed cell must be absent from the result map")
	}
	if len(evicts["wifi"]) == 0 {
		t.Fatal("healthy cells must still report despite a failing one")
	}
}
