package exboxcore

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"

	"exbox/internal/obs/flightrec"
	"exbox/internal/snapshot"
)

// This file is the middlebox's persistence sweep: every cell's
// classifier state encoded with internal/snapshot and written
// atomically to one file per cell, plus the warm-boot restore that
// reads them back. A cell whose file is missing, torn, corrupt or
// version-skewed simply cold-starts — restore never fails the whole
// middlebox and never panics — and each rejection is counted so
// /debug/health can surface it.

// SnapshotFileName is the on-disk name for one cell's snapshot. Cell
// IDs are path-escaped so arbitrary IDs ("ap/1") cannot climb out of
// the snapshot directory.
func SnapshotFileName(id CellID) string {
	return url.PathEscape(string(id)) + ".snap"
}

// EnableSnapshotPersistence makes the per-cell retrain workers write a
// fresh snapshot after every coalesced refit, in addition to whatever
// periodic or shutdown sweeps the caller runs. Call it before traffic,
// alongside Instrument.
func (mb *Middlebox) EnableSnapshotPersistence(dir string) {
	mb.mu.Lock()
	mb.snapDir = dir
	mb.mu.Unlock()
}

// snapshotDir returns the retrain-hook directory ("" when disabled).
func (mb *Middlebox) snapshotDir() string {
	mb.mu.RLock()
	defer mb.mu.RUnlock()
	return mb.snapDir
}

// EncodeCellSnapshot exports one cell's state under its training locks
// and returns the encoded snapshot plus the fit sequence it captures —
// the payload and ETag of the /snapshot/{cell} publish endpoint.
func (mb *Middlebox) EncodeCellSnapshot(id CellID) ([]byte, uint64, error) {
	c, ok := mb.cell(id)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrUnknownCell, id)
	}
	ps, err := c.Classifier.ExportState()
	if err != nil {
		return nil, 0, err
	}
	return snapshot.Encode(ps), ps.FitSeq, nil
}

// SaveSnapshots writes every cell's current state into dir, one file
// per cell, each write atomic (temp + fsync + rename). Cells whose
// state is unchanged since their last save — same fit sequence, same
// observation count — are skipped, so a periodic sweep over an idle
// gateway costs exports but no writes. It returns how many files were
// written; on error the sweep keeps going and the first error is
// returned after all cells were attempted.
func (mb *Middlebox) SaveSnapshots(dir string) (int, error) {
	var saved int
	var firstErr error
	for _, c := range mb.Cells() {
		n, err := mb.saveCell(c, dir)
		saved += n
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cell %q: %w", c.ID, err)
		}
	}
	return saved, firstErr
}

// saveCell exports, encodes and atomically writes one cell's snapshot,
// skipping the write when nothing changed since the last save. Returns
// 1 when a file was written.
func (mb *Middlebox) saveCell(c *Cell, dir string) (int, error) {
	ps, err := c.Classifier.ExportState()
	if err != nil {
		c.snapSaveErrs.Add(1)
		return 0, err
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if c.snapSavedOnce && c.snapSavedSeq == ps.FitSeq && c.snapSavedObs == ps.Observed {
		return 0, nil
	}
	if err := snapshot.Save(filepath.Join(dir, SnapshotFileName(c.ID)), snapshot.Encode(ps)); err != nil {
		c.snapSaveErrs.Add(1)
		return 0, err
	}
	c.snapSavedOnce, c.snapSavedSeq, c.snapSavedObs = true, ps.FitSeq, ps.Observed
	c.snapSaves.Add(1)
	if mb.flight != nil {
		mb.flight.Record(flightrec.Record{
			Kind:    flightrec.KindSnapshot,
			Cell:    c.flightCell,
			Model:   ps.FitSeq,
			Verdict: snapshotSaved,
		})
	}
	return 1, nil
}

// Flight-record verdict values for KindSnapshot events.
const (
	snapshotSaved    = 0
	snapshotLoaded   = 1
	snapshotRejected = 2
)

// LoadSnapshots warm-boots every registered cell from dir: for each
// cell with a snapshot file, decode it and import it into the cell's
// classifier. A missing file is a normal cold start; a file that fails
// decoding or validation is counted on the cell's reject counter and
// that cell cold-starts — the error never propagates, because a stale
// or torn snapshot must not keep the gateway from serving. It returns
// how many cells were restored; the error covers only I/O failures
// reading an existing file.
func (mb *Middlebox) LoadSnapshots(dir string) (int, error) {
	var loaded int
	var firstErr error
	for _, c := range mb.Cells() {
		path := filepath.Join(dir, SnapshotFileName(c.ID))
		data, err := snapshot.Load(path)
		if err != nil {
			if !os.IsNotExist(err) && firstErr == nil {
				firstErr = fmt.Errorf("cell %q: %w", c.ID, err)
			}
			continue
		}
		ps, err := snapshot.Decode(data)
		if err == nil {
			err = c.Classifier.ImportState(ps)
		}
		if err != nil {
			c.snapRejects.Add(1)
			if mb.flight != nil {
				mb.flight.Record(flightrec.Record{
					Kind:    flightrec.KindSnapshot,
					Cell:    c.flightCell,
					Verdict: snapshotRejected,
				})
			}
			continue
		}
		// The restored state is what's on disk: the next sweep can skip
		// its write until something changes.
		c.snapMu.Lock()
		c.snapSavedOnce, c.snapSavedSeq, c.snapSavedObs = true, ps.FitSeq, ps.Observed
		c.snapMu.Unlock()
		c.snapLoads.Add(1)
		if mb.flight != nil {
			mb.flight.Record(flightrec.Record{
				Kind:    flightrec.KindSnapshot,
				Cell:    c.flightCell,
				Model:   ps.FitSeq,
				Verdict: snapshotLoaded,
			})
		}
		loaded++
	}
	return loaded, firstErr
}
