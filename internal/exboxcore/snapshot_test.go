package exboxcore

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/obs"
	"exbox/internal/traffic"
)

// probeArrivals returns fresh arrivals to compare verdicts on.
func probeArrivals(n int, seed int64) []excr.Arrival {
	evs := traffic.Arrivals(traffic.Random(mathx.NewRand(seed), n, 20, 0, excr.DefaultSpace), nil)
	out := make([]excr.Arrival, len(evs))
	for i, e := range evs {
		out[i] = e.Arrival
	}
	return out
}

// TestWarmBootEndToEnd is the tentpole's acceptance test: train a
// middlebox, save its snapshots, build a completely fresh middlebox
// from the same directory, and assert it serves identical admission
// verdicts — margins bit-equal — with zero refits. Runs under -race in
// CI, so it also exercises the save/load paths against the concurrent
// middlebox machinery.
func TestWarmBootEndToEnd(t *testing.T) {
	dir := t.TempDir()
	cfg := classifier.DefaultConfig()
	cfg.WarmStart = true
	o := wifiOracle()

	first := New(excr.DefaultSpace, Discontinue)
	first.Instrument(obs.NewRegistry(), 64)
	if _, err := first.AddCell("ap0", cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := first.AddCell("ap1", cfg); err != nil {
		t.Fatal(err)
	}
	trainCell(t, first, "ap0", o, 71)
	trainCell(t, first, "ap1", lteOracle(), 72)
	saved, err := first.SaveSnapshots(dir)
	if err != nil {
		t.Fatalf("SaveSnapshots: %v", err)
	}
	if saved != 2 {
		t.Fatalf("saved %d snapshots, want 2", saved)
	}
	// Unchanged state: the second sweep writes nothing.
	if n, err := first.SaveSnapshots(dir); err != nil || n != 0 {
		t.Fatalf("idle sweep wrote %d files (err %v), want 0", n, err)
	}

	second := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	second.Instrument(reg, 64)
	for _, id := range []CellID{"ap0", "ap1"} {
		if _, err := second.AddCell(id, cfg); err != nil {
			t.Fatal(err)
		}
	}
	fits := reg.Counter("exbox_cell_ap0_clf_fits_total")
	loaded, err := second.LoadSnapshots(dir)
	if err != nil {
		t.Fatalf("LoadSnapshots: %v", err)
	}
	if loaded != 2 {
		t.Fatalf("loaded %d snapshots, want 2", loaded)
	}
	for _, c := range second.Cells() {
		if c.Classifier.Bootstrapping() {
			t.Fatalf("cell %s still bootstrapping after warm boot", c.ID)
		}
		if got, want := c.Classifier.ModelVersion(), first.Cell(c.ID).Classifier.ModelVersion(); got != want {
			t.Fatalf("cell %s model version %d, want %d", c.ID, got, want)
		}
	}
	if fits.Value() != 0 {
		t.Fatalf("warm boot performed %d refits, want 0", fits.Value())
	}

	for _, id := range []CellID{"ap0", "ap1"} {
		for _, a := range probeArrivals(25, 73) {
			oa, err := first.Admit(id, a)
			if err != nil {
				t.Fatal(err)
			}
			ob, err := second.Admit(id, a)
			if err != nil {
				t.Fatal(err)
			}
			if oa.Verdict != ob.Verdict ||
				math.Float64bits(oa.Decision.Margin) != math.Float64bits(ob.Decision.Margin) ||
				math.Float64bits(oa.Decision.Depth) != math.Float64bits(ob.Decision.Depth) {
				t.Fatalf("cell %s: warm-booted verdict diverged: %+v != %+v", id, oa, ob)
			}
		}
	}
	if fits.Value() != 0 {
		t.Fatalf("admissions after warm boot triggered %d refits, want 0", fits.Value())
	}
}

// TestLoadSnapshotsRejectsCorrupt: a corrupt file must cold-start its
// cell, bump the reject counter, flag /debug/health yellow — and never
// error the load or crash.
func TestLoadSnapshotsRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	cfg := classifier.DefaultConfig()
	src := New(excr.DefaultSpace, Discontinue)
	if _, err := src.AddCell("ap0", cfg); err != nil {
		t.Fatal(err)
	}
	trainCell(t, src, "ap0", wifiOracle(), 74)
	if _, err := src.SaveSnapshots(dir); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, SnapshotFileName("ap0"))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	dst := New(excr.DefaultSpace, Discontinue)
	reg := obs.NewRegistry()
	dst.Instrument(reg, 64)
	if _, err := dst.AddCell("ap0", cfg); err != nil {
		t.Fatal(err)
	}
	loaded, err := dst.LoadSnapshots(dir)
	if err != nil {
		t.Fatalf("corrupt snapshot errored the load: %v", err)
	}
	if loaded != 0 {
		t.Fatalf("loaded %d snapshots from a corrupt file, want 0", loaded)
	}
	c := dst.Cell("ap0")
	if !c.Classifier.Bootstrapping() {
		t.Fatal("cell should cold-start after a rejected snapshot")
	}
	if got := c.snapRejects.Load(); got != 1 {
		t.Fatalf("snapshot rejects = %d, want 1", got)
	}
	rep := dst.Health()
	var flagged bool
	for _, ch := range rep.Cells {
		for _, chk := range ch.Checks {
			if chk.Name == "snapshot_rejects" && chk.Status == Yellow {
				flagged = true
			}
		}
	}
	if !flagged {
		t.Fatal("health report does not flag the rejected snapshot")
	}
	// The cold cell still serves (bootstrap admits).
	out, err := dst.Admit("ap0", probeArrivals(1, 75)[0])
	if err != nil || out.Verdict != Admit {
		t.Fatalf("cold-started cell unusable: %+v, %v", out, err)
	}
}

// TestLoadSnapshotsMissingDirAndFiles: nothing on disk is a normal
// cold start, not an error.
func TestLoadSnapshotsMissingDirAndFiles(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap0", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	if n, err := mb.LoadSnapshots(t.TempDir()); err != nil || n != 0 {
		t.Fatalf("empty dir: loaded %d, err %v", n, err)
	}
	if n, err := mb.LoadSnapshots(filepath.Join(t.TempDir(), "never-created")); err != nil || n != 0 {
		t.Fatalf("missing dir: loaded %d, err %v", n, err)
	}
}

// TestRetrainLoopSavesSnapshot: with persistence enabled, the deferred
// retrain worker writes a snapshot after its coalesced fit.
func TestRetrainLoopSavesSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := classifier.DefaultConfig()
	cfg.DeferRetrain = true
	mb := New(excr.DefaultSpace, Discontinue)
	defer mb.Close()
	mb.EnableSnapshotPersistence(dir)
	if _, err := mb.AddCell("ap0", cfg); err != nil {
		t.Fatal(err)
	}
	o := wifiOracle()
	rng := mathx.NewRand(76)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 40, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap0", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, SnapshotFileName("ap0"))
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retrain worker never wrote a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestEncodeCellSnapshot covers the /snapshot/{cell} publish surface:
// the encoded bytes decode to the cell's current fit, and the returned
// sequence matches the model version (the endpoint's ETag).
func TestEncodeCellSnapshot(t *testing.T) {
	mb := New(excr.DefaultSpace, Discontinue)
	if _, err := mb.AddCell("ap0", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	trainCell(t, mb, "ap0", wifiOracle(), 77)
	data, seq, err := mb.EncodeCellSnapshot("ap0")
	if err != nil {
		t.Fatal(err)
	}
	if want := mb.Cell("ap0").Classifier.ModelVersion(); seq != want {
		t.Fatalf("snapshot seq %d, want model version %d", seq, want)
	}
	if len(data) == 0 {
		t.Fatal("empty snapshot payload")
	}
	if _, _, err := mb.EncodeCellSnapshot("nope"); err == nil {
		t.Fatal("unknown cell should error")
	}
}
