package dtree

import (
	"errors"
	"testing"
	"testing/quick"

	"exbox/internal/mathx"
)

// boxData labels points +1 inside the axis-aligned box [0,5]×[0,5].
func boxData(n int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		p := []float64{rng.Float64() * 10, rng.Float64() * 10}
		x = append(x, p)
		if p[0] <= 5 && p[1] <= 5 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y
}

func accuracy(t *Tree, x [][]float64, y []float64) float64 {
	c := 0
	for i := range x {
		if t.Predict(x[i]) == y[i] {
			c++
		}
	}
	return float64(c) / float64(len(x))
}

func TestTrainBox(t *testing.T) {
	x, y := boxData(400, 1)
	tr, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(tr, x, y); acc < 0.97 {
		t.Fatalf("training accuracy = %v", acc)
	}
	// Held-out accuracy.
	xt, yt := boxData(400, 2)
	if acc := accuracy(tr, xt, yt); acc < 0.9 {
		t.Fatalf("holdout accuracy = %v", acc)
	}
	if tr.Depth() < 2 || tr.Leaves() < 2 {
		t.Fatalf("degenerate tree: depth=%d leaves=%d", tr.Depth(), tr.Leaves())
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(DefaultConfig(), nil, nil); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := Train(DefaultConfig(), [][]float64{{1}}, []float64{1, -1}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Train(DefaultConfig(), [][]float64{{1}, {2, 3}}, []float64{1, -1}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	if _, err := Train(DefaultConfig(), [][]float64{{1}, {2}}, []float64{1, 0}); err == nil {
		t.Fatal("expected error for bad label")
	}
	_, err := Train(DefaultConfig(), [][]float64{{1}, {2}}, []float64{1, 1})
	if !errors.Is(err, ErrOneClass) {
		t.Fatalf("err = %v, want ErrOneClass", err)
	}
}

func TestDepthBound(t *testing.T) {
	x, y := boxData(500, 3)
	cfg := Config{MaxDepth: 3, MinLeaf: 1}
	tr, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth() > 4 { // root at depth 1 + 3 splits
		t.Fatalf("depth %d exceeds bound", tr.Depth())
	}
}

func TestMinLeaf(t *testing.T) {
	x, y := boxData(200, 4)
	tr, err := Train(Config{MaxDepth: 20, MinLeaf: 50}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Leaves() > 4 {
		t.Fatalf("MinLeaf=50 should give few leaves, got %d", tr.Leaves())
	}
}

func TestDecisionSignedPurity(t *testing.T) {
	x, y := boxData(400, 5)
	tr, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	inside := tr.Decision([]float64{2, 2})
	outside := tr.Decision([]float64{9, 9})
	if inside <= 0 || outside >= 0 {
		t.Fatalf("decision signs wrong: inside=%v outside=%v", inside, outside)
	}
	if inside > 1 || outside < -1 {
		t.Fatalf("purity out of [-1,1]: %v %v", inside, outside)
	}
}

func TestConstantFeatureIgnored(t *testing.T) {
	// Second feature is constant: the tree must split on the first.
	x := [][]float64{{1, 7}, {2, 7}, {3, 7}, {10, 7}, {11, 7}, {12, 7}}
	y := []float64{1, 1, 1, -1, -1, -1}
	tr, err := Train(Config{MaxDepth: 4, MinLeaf: 1}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if accuracy(tr, x, y) != 1 {
		t.Fatal("separable 1-D data should be fit exactly")
	}
}

// Property: predictions are deterministic and bounded; depth respects
// the configuration.
func TestQuickTreeInvariants(t *testing.T) {
	rng := mathx.NewRand(6)
	f := func() bool {
		n := 20 + rng.Intn(100)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			if x[i][0]+x[i][1] > 0 {
				y[i] = 1
			} else {
				y[i] = -1
			}
		}
		// Guarantee both classes.
		y[0], y[1] = 1, -1
		maxDepth := 2 + rng.Intn(8)
		tr, err := Train(Config{MaxDepth: maxDepth, MinLeaf: 1 + rng.Intn(5)}, x, y)
		if err != nil {
			return errors.Is(err, ErrOneClass)
		}
		if tr.Depth() > maxDepth+1 {
			return false
		}
		for i := range x {
			d := tr.Decision(x[i])
			if d < -1 || d > 1 {
				return false
			}
			if tr.Decision(x[i]) != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
