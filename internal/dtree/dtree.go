// Package dtree implements a CART-style binary classification tree —
// the alternative supervised learner the paper mentions alongside SVM
// ("other supervised classification methods (e.g., decision trees)
// could be used by ExBox as well"). It plugs into the Admittance
// Classifier through internal/learner.
//
// The tree greedily splits on the axis-aligned threshold minimizing
// Gini impurity, with depth and leaf-size bounds for regularization.
// Decision values are signed leaf purities in [-1, 1], so thresholding
// at 0 recovers the class and the magnitude is a crude confidence.
package dtree

import (
	"errors"
	"fmt"
	"sort"
)

// Config bounds tree growth.
type Config struct {
	// MaxDepth limits tree height; 0 means 12.
	MaxDepth int
	// MinLeaf is the minimum samples per leaf; 0 means 2.
	MinLeaf int
}

// DefaultConfig returns bounds that work well on ExCR-sized problems.
func DefaultConfig() Config { return Config{MaxDepth: 12, MinLeaf: 2} }

// ErrOneClass is returned by Train when the labels contain one class.
var ErrOneClass = errors.New("dtree: training data contains a single class")

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	left, right *node
	value       float64 // signed purity at leaves
}

// Tree is a trained decision tree. Immutable after training.
type Tree struct {
	root *node
	dim  int
}

// Train grows a tree on rows x with labels y in {-1, +1}.
func Train(cfg Config, x [][]float64, y []float64) (*Tree, error) {
	if len(x) == 0 {
		return nil, errors.New("dtree: no training data")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("dtree: %d rows but %d labels", len(x), len(y))
	}
	dim := len(x[0])
	var pos, neg int
	for i, yi := range y {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("dtree: row %d has dim %d, want %d", i, len(x[i]), dim)
		}
		switch yi {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("dtree: label %v at row %d, want ±1", yi, i)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrOneClass
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 2
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{dim: dim}
	t.root = grow(cfg, x, y, idx, 0)
	return t, nil
}

// grow recursively builds the subtree over the sample indices idx.
func grow(cfg Config, x [][]float64, y []float64, idx []int, depth int) *node {
	var pos int
	for _, i := range idx {
		if y[i] > 0 {
			pos++
		}
	}
	n := len(idx)
	purity := float64(2*pos-n) / float64(n) // in [-1, 1]
	if depth >= cfg.MaxDepth || n < 2*cfg.MinLeaf || pos == 0 || pos == n {
		return &node{feature: -1, value: purity}
	}

	bestFeat, bestThresh, bestGini := -1, 0.0, giniOf(pos, n)
	dim := len(x[idx[0]])
	order := make([]int, n)
	for f := 0; f < dim; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		// Sweep split points between distinct consecutive values.
		leftPos, leftN := 0, 0
		for k := 0; k < n-1; k++ {
			i := order[k]
			leftN++
			if y[i] > 0 {
				leftPos++
			}
			v, next := x[i][f], x[order[k+1]][f]
			if v == next {
				continue
			}
			rightN := n - leftN
			if leftN < cfg.MinLeaf || rightN < cfg.MinLeaf {
				continue
			}
			rightPos := pos - leftPos
			g := (float64(leftN)*giniOf(leftPos, leftN) + float64(rightN)*giniOf(rightPos, rightN)) / float64(n)
			if g < bestGini-1e-12 {
				bestGini, bestFeat, bestThresh = g, f, (v+next)/2
			}
		}
	}
	if bestFeat < 0 {
		return &node{feature: -1, value: purity}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestFeat] <= bestThresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &node{
		feature:   bestFeat,
		threshold: bestThresh,
		left:      grow(cfg, x, y, left, depth+1),
		right:     grow(cfg, x, y, right, depth+1),
	}
}

// giniOf returns the Gini impurity of a node with pos positives of n.
func giniOf(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Decision returns the signed purity of the leaf the row lands in.
func (t *Tree) Decision(row []float64) float64 {
	n := t.root
	for n.feature >= 0 {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Predict returns +1 or -1 for the row.
func (t *Tree) Predict(row []float64) float64 {
	if t.Decision(row) >= 0 {
		return 1
	}
	return -1
}

// Depth returns the height of the tree (leaves have depth 1).
func (t *Tree) Depth() int { return depthOf(t.root) }

func depthOf(n *node) int {
	if n == nil {
		return 0
	}
	if n.feature < 0 {
		return 1
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Leaves returns the number of leaves.
func (t *Tree) Leaves() int { return leavesOf(t.root) }

func leavesOf(n *node) int {
	if n == nil {
		return 0
	}
	if n.feature < 0 {
		return 1
	}
	return leavesOf(n.left) + leavesOf(n.right)
}
