package svm

import (
	"math"
	"testing"

	"exbox/internal/mathx"
)

// overlapData builds a dim-d dataset of two heavily overlapping
// Gaussian clouds. The overlap forces a large fraction of the training
// set to become (mostly bound) support vectors, which is what the
// ≥200-SV inference benchmarks and the slab tests want.
func overlapData(n, dim int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		label := 1.0
		if i%2 == 0 {
			for j := range row {
				row[j] += 0.8
			}
			label = -1
		}
		x = append(x, row)
		y = append(y, label)
	}
	return x, y
}

// probeRows draws fresh rows from the same distribution scale as the
// training data, plus a few far-out and axis-aligned corner cases.
func probeRows(n, dim int, seed int64) [][]float64 {
	rng := mathx.NewRand(seed)
	rows := make([][]float64, 0, n+3)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64() * 2
		}
		rows = append(rows, row)
	}
	zero := make([]float64, dim)
	far := make([]float64, dim)
	axis := make([]float64, dim)
	for j := range far {
		far[j] = 25
	}
	axis[0] = -7
	return append(rows, zero, far, axis)
}

// pinTol is the equivalence-pinning tolerance: the folded/slab paths
// must agree with the pre-refactor scalar path to 1e-12 (scaled by the
// decision magnitude for values above 1).
func pinEqual(a, ref float64) bool {
	return math.Abs(a-ref) <= 1e-12*(1+math.Abs(ref))
}

// TestFastPathMatchesScalar pins the folded-scaler / slab fast path to
// the pre-refactor scalar implementation across kernels, dimensions
// and randomized models: Decision, DecisionInto and DecisionBatch must
// all reproduce decisionScalar to 1e-12.
func TestFastPathMatchesScalar(t *testing.T) {
	for _, kernel := range []KernelKind{Linear, RBF} {
		for _, dim := range []int{2, 5, 9} {
			for seed := int64(1); seed <= 3; seed++ {
				x, y := overlapData(120, dim, seed*100+int64(dim))
				cfg := DefaultConfig()
				cfg.Kernel = kernel
				m, err := Train(cfg, x, y)
				if err != nil {
					t.Fatalf("%v dim=%d seed=%d: %v", kernel, dim, seed, err)
				}
				checkFastPath(t, m, probeRows(40, dim, seed))
			}
		}
	}
}

// TestFastPathMatchesScalarWarm repeats the pinning on models
// round-tripped through warm-start retraining: the warm path freezes
// the seed fit's scaler, which is exactly the state the folding must
// reproduce.
func TestFastPathMatchesScalarWarm(t *testing.T) {
	for _, kernel := range []KernelKind{Linear, RBF} {
		x, y := overlapData(240, 5, 7)
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		_, warm, err := Solve(cfg, x[:200], y[:200], nil)
		if err != nil {
			t.Fatal(err)
		}
		m, _, err := Solve(cfg, x, y, warm)
		if err != nil {
			t.Fatal(err)
		}
		if !warm.Usable(len(x), 5) {
			t.Fatal("warm state should be usable for the grown set")
		}
		checkFastPath(t, m, probeRows(40, 5, 8))
	}
}

func checkFastPath(t *testing.T, m *Model, rows [][]float64) {
	t.Helper()
	scratch := make([]float64, m.Dim())
	batch := m.DecisionBatch(nil, rows, nil)
	if len(batch) != len(rows) {
		t.Fatalf("DecisionBatch returned %d scores for %d rows", len(batch), len(rows))
	}
	for i, row := range rows {
		ref := m.decisionScalar(row)
		if d := m.Decision(row); !pinEqual(d, ref) {
			t.Fatalf("row %d: Decision %v, scalar %v (diff %g)", i, d, ref, d-ref)
		}
		if d := m.DecisionInto(scratch, row); !pinEqual(d, ref) {
			t.Fatalf("row %d: DecisionInto %v, scalar %v (diff %g)", i, d, ref, d-ref)
		}
		if !pinEqual(batch[i], ref) {
			t.Fatalf("row %d: DecisionBatch %v, scalar %v (diff %g)", i, batch[i], ref, batch[i]-ref)
		}
	}
}

// TestFastPathMatchesScalarConstantFeature repeats the 1e-12 pinning
// with a constant feature column appended: the scaler's zero-variance
// guard (σ forced to 1) must survive the folded linear weights, the
// standardized slab, and — when enabled — the RFF projection build.
// Probes deliberately vary the "constant" column too: both paths must
// standardize it identically, guard or not.
func TestFastPathMatchesScalarConstantFeature(t *testing.T) {
	for _, kernel := range []KernelKind{Linear, RBF} {
		x, y := overlapData(120, 4, 11)
		for i := range x {
			x[i] = append(x[i], 7) // constant fifth column
		}
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		cfg.RFF = true // exercise buildRFF's fold over the guarded σ
		m, err := Train(cfg, x, y)
		if err != nil {
			t.Fatal(err)
		}
		rows := probeRows(40, 5, 12)
		for i := range rows {
			if i%2 == 0 {
				rows[i][4] = 7 // in-distribution constant
			}
		}
		checkFastPath(t, m, rows)
		if kernel == RBF {
			if !m.HasRFF() {
				t.Fatal("RFF tier not built with constant feature")
			}
			for i, row := range rows {
				if d := m.DecisionRFF(row); math.IsNaN(d) || math.IsInf(d, 0) {
					t.Fatalf("row %d: non-finite RFF decision %v", i, d)
				}
			}
		}
	}
}

// TestDecisionAllocs locks in the zero-allocation contract of the fast
// path: DecisionInto with caller scratch and DecisionBatch with
// preallocated dst+scratch must not allocate for either kernel, and
// the linear Decision is allocation-free even without scratch.
func TestDecisionAllocs(t *testing.T) {
	for _, kernel := range []KernelKind{Linear, RBF} {
		x, y := overlapData(150, 5, 3)
		cfg := DefaultConfig()
		cfg.Kernel = kernel
		m, err := Train(cfg, x, y)
		if err != nil {
			t.Fatal(err)
		}
		rows := probeRows(16, 5, 4)
		scratch := make([]float64, m.Dim())
		var sink float64
		if got := testing.AllocsPerRun(200, func() {
			sink += m.DecisionInto(scratch, rows[0])
		}); got != 0 {
			t.Errorf("%v DecisionInto: %v allocs/op, want 0", kernel, got)
		}
		dst := make([]float64, len(rows))
		batchScratch := make([]float64, m.BatchScratch(len(rows)))
		if got := testing.AllocsPerRun(200, func() {
			out := m.DecisionBatch(dst, rows, batchScratch)
			sink += out[0]
		}); got != 0 {
			t.Errorf("%v DecisionBatch: %v allocs/op, want 0", kernel, got)
		}
		if kernel == Linear {
			if got := testing.AllocsPerRun(200, func() {
				sink += m.Decision(rows[0])
			}); got != 0 {
				t.Errorf("linear Decision: %v allocs/op, want 0", got)
			}
		}
		_ = sink
	}
}

// TestDecisionBatchEdgeCases covers the growth and empty-input paths.
func TestDecisionBatchEdgeCases(t *testing.T) {
	x, y := overlapData(100, 4, 5)
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.DecisionBatch(nil, nil, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d scores", len(out))
	}
	rows := probeRows(8, 4, 6)
	// Undersized dst and scratch must be grown, not trip bounds.
	short := make([]float64, 1)
	out := m.DecisionBatch(short, rows, make([]float64, 3))
	for i, row := range rows {
		if ref := m.decisionScalar(row); !pinEqual(out[i], ref) {
			t.Fatalf("grown batch row %d: %v, want %v", i, out[i], ref)
		}
	}
	// Oversized dst is reused and trimmed.
	big := make([]float64, 32)
	out = m.DecisionBatch(big, rows, nil)
	if len(out) != len(rows) || &out[0] != &big[0] {
		t.Fatal("oversized dst should be reused and trimmed")
	}
}

// TestDecisionIntoShortScratchPanics pins the scratch contract: a too-
// short scratch is a programming error, not a silent fallback.
func TestDecisionIntoShortScratchPanics(t *testing.T) {
	x, y := overlapData(80, 5, 9)
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short scratch")
		}
	}()
	m.DecisionInto(make([]float64, 2), probeRows(1, 5, 10)[0])
}
