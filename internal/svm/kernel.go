// Package svm implements the support-vector-machine learner at the
// heart of ExBox's Admittance Classifier: a from-scratch soft-margin
// binary SVM trained with Platt's Sequential Minimal Optimization
// (SMO), with linear and Gaussian (RBF) kernels, feature
// standardization, and n-fold cross-validation.
//
// The paper uses an off-the-shelf SVM library; this package plays that
// role with stdlib-only Go. Problem sizes in ExBox are small (tens to
// a few thousand training tuples, dimension k·r+2), so a careful SMO
// with a full kernel cache is more than fast enough and keeps the
// training-latency benchmarks of Section 5.3 meaningful.
package svm

import (
	"fmt"
	"math"

	"exbox/internal/mathx"
)

// KernelKind selects the kernel function used by the SVM.
type KernelKind int

const (
	// Linear is the inner-product kernel K(a,b) = a·b.
	Linear KernelKind = iota
	// RBF is the Gaussian kernel K(a,b) = exp(-gamma·|a-b|²).
	RBF
)

// String implements fmt.Stringer.
func (k KernelKind) String() string {
	switch k {
	case Linear:
		return "linear"
	case RBF:
		return "rbf"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

// kernelFunc returns the kernel evaluation function for the kind, with
// gamma applied for RBF.
func kernelFunc(kind KernelKind, gamma float64) func(a, b []float64) float64 {
	switch kind {
	case Linear:
		return mathx.Dot
	case RBF:
		return func(a, b []float64) float64 {
			return math.Exp(-gamma * mathx.SqDist(a, b))
		}
	default:
		panic(fmt.Sprintf("svm: unknown kernel %v", kind))
	}
}
