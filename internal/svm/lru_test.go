package svm

import (
	"testing"

	"exbox/internal/mathx"
)

func TestRowLRUBasics(t *testing.T) {
	c := newRowLRU(2)
	r1, r2, r3 := []float64{1}, []float64{2}, []float64{3}
	c.Put(1, r1)
	c.Put(2, r2)
	if row, ok := c.Get(1); !ok || &row[0] != &r1[0] {
		t.Fatal("row 1 should be cached")
	}
	// 1 was just used, so inserting 3 must evict 2 (the LRU), not 1.
	c.Put(3, r3)
	if _, ok := c.Get(2); ok {
		t.Fatal("row 2 should have been evicted as least recently used")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("row 1 (recently used) must survive the eviction")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("row 3 was just inserted")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
}

func TestRowLRURemove(t *testing.T) {
	c := newRowLRU(4)
	for i := 0; i < 4; i++ {
		c.Put(i, []float64{float64(i)})
	}
	c.Remove(0) // head-adjacent
	c.Remove(3) // most recent
	c.Remove(9) // absent: no-op
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// The list must still be intact: fill and evict through it.
	c.Put(5, []float64{5})
	c.Put(6, []float64{6})
	c.Put(7, []float64{7}) // evicts 1, the oldest survivor
	if _, ok := c.Get(1); ok {
		t.Fatal("row 1 should have been evicted")
	}
	for _, i := range []int{2, 5, 6, 7} {
		if _, ok := c.Get(i); !ok {
			t.Fatalf("row %d should be cached", i)
		}
	}
}

// TestCachedRowsMatchUncached is the regression test that let the old
// per-step error "pinning" in takeStep go: kernel rows served through
// the LRU cache must agree bitwise with freshly computed ones, whether
// they were cached, evicted and recomputed, or never cached at all.
func TestCachedRowsMatchUncached(t *testing.T) {
	x, y := ringData(64, 31)
	cfg := DefaultConfig()
	gamma := 1.0 / float64(len(x[0]))
	scaler := FitScaler(x)
	xs := scaler.TransformAll(x)

	// One trainer on the full-matrix path, one forced onto a tiny LRU
	// so rows are constantly evicted and recomputed.
	full := newTrainer(cfg, gamma, xs, y)
	lru := newTrainer(cfg, gamma, xs, y)
	lru.kfull = nil
	lru.lru = newRowLRU(3)

	rng := mathx.NewRand(32)
	for step := 0; step < 500; step++ {
		i := rng.Intn(len(xs))
		a, b := full.kRow(i), lru.kRow(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d col %d: cached %v != uncached %v", i, j, b[j], a[j])
			}
		}
	}
	if lru.lru.Len() > 3 {
		t.Fatalf("lru grew past its capacity: %d", lru.lru.Len())
	}
}
