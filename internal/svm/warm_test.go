package svm

import (
	"math"
	"testing"

	"exbox/internal/mathx"
)

// tightConfig is DefaultConfig with the KKT tolerance cranked down so
// independent solves land on (numerically) the same optimum; the
// equivalence tests compare decision functions at 1e-6.
func tightConfig() Config {
	cfg := DefaultConfig()
	cfg.Tol = 1e-8
	cfg.Eps = 1e-11
	cfg.MaxPasses = 10
	cfg.MaxIter = 4_000_000
	return cfg
}

// TestWarmStartEquivalence is the headline property of the incremental
// solver: a warm-started fit must reach the same decision function as
// a cold fit of the same problem. The seed is deliberately perturbed —
// alphas scaled down and a third of them zeroed — so the solver has
// real re-optimization to do from the warm state, not just a no-op
// verification sweep.
func TestWarmStartEquivalence(t *testing.T) {
	x, y := ringData(310, 21)
	cfg := tightConfig()

	cold, state, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := append([]float64(nil), state.Alpha...)
	for i := range perturbed {
		perturbed[i] *= 0.9
		if i%3 == 0 {
			perturbed[i] = 0
		}
	}
	warmModel, _, err := Solve(cfg, x, y, state.Remap(perturbed))
	if err != nil {
		t.Fatal(err)
	}
	// Held-out grid over the data's support.
	for gx := -4.0; gx <= 4.0; gx += 0.5 {
		for gy := -4.0; gy <= 4.0; gy += 0.5 {
			p := []float64{gx, gy}
			dw, dc := warmModel.Decision(p), cold.Decision(p)
			if math.Abs(dw-dc) > 1e-6 {
				t.Fatalf("decision mismatch at %v: warm=%v cold=%v (|Δ|=%g)",
					p, dw, dc, math.Abs(dw-dc))
			}
		}
	}
}

// TestWarmStartGrownBatch is the online scenario the solver exists
// for: fit n rows, observe a batch of B more, refit warm. The warm fit
// keeps the seed's feature standardization (that is what makes it
// cheap), so its decision function is not bitwise that of a cold refit
// — but it must classify like one everywhere except a thin band around
// the boundary.
func TestWarmStartGrownBatch(t *testing.T) {
	const n, batch = 300, 10
	x, y := ringData(n+batch, 22)
	cfg := DefaultConfig()

	_, seed, err := Solve(cfg, x[:n], y[:n], nil)
	if err != nil {
		t.Fatal(err)
	}
	warmModel, next, err := Solve(cfg, x, y, seed)
	if err != nil {
		t.Fatal(err)
	}
	coldModel, _, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next == nil || len(next.Alpha) != n+batch {
		t.Fatalf("warm fit returned unusable next state: %+v", next)
	}
	disagree := 0
	for gx := -4.0; gx <= 4.0; gx += 0.25 {
		for gy := -4.0; gy <= 4.0; gy += 0.25 {
			p := []float64{gx, gy}
			dw, dc := warmModel.Decision(p), coldModel.Decision(p)
			if math.Abs(dc) < 0.05 {
				continue // boundary band: sign there is solver noise
			}
			if (dw >= 0) != (dc >= 0) {
				disagree++
			}
		}
	}
	if disagree > 0 {
		t.Fatalf("warm and cold fits disagree on %d off-boundary grid points", disagree)
	}
	if acc := trainAccuracy(warmModel, x, y); acc < 0.97 {
		t.Fatalf("warm-started accuracy = %v, want >= 0.97", acc)
	}
}

// TestWarmStartRepairsInfeasibleSeed feeds the solver a deliberately
// broken seed — out-of-box values and an unbalanced Σ αᵢyᵢ — and
// requires the same decisions as a cold fit: warm state must never be
// able to corrupt a result, only speed one up.
func TestWarmStartRepairsInfeasibleSeed(t *testing.T) {
	x, y := ringData(200, 23)
	cfg := tightConfig()
	_, state, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]float64, len(x))
	rng := mathx.NewRand(24)
	for i := range bad {
		bad[i] = rng.Float64()*3*cfg.C - cfg.C // in [-C, 2C]
	}
	warmModel, _, err := Solve(cfg, x, y, state.Remap(bad))
	if err != nil {
		t.Fatal(err)
	}
	coldModel, _, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x {
		dw, dc := warmModel.Decision(row), coldModel.Decision(row)
		if math.Abs(dw-dc) > 1e-5 {
			t.Fatalf("broken seed changed the solution: warm=%v cold=%v", dw, dc)
		}
	}
}

// TestWarmStartShortAndLongSeeds exercises the alignment rules: seeds
// shorter than the dataset leave the tail cold, seeds longer than the
// dataset are truncated; both must still train correctly.
func TestWarmStartShortAndLongSeeds(t *testing.T) {
	x, y := ringData(150, 25)
	cfg := DefaultConfig()
	_, state, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	long := append(append([]float64(nil), state.Alpha...), 1, 2, 3)
	for _, seed := range []*WarmState{state.Remap(state.Alpha[:10]), state.Remap(long)} {
		m, _, err := Solve(cfg, x, y, seed)
		if err != nil {
			t.Fatal(err)
		}
		if acc := trainAccuracy(m, x, y); acc < 0.97 {
			t.Fatalf("seed len %d: accuracy = %v, want >= 0.97", len(seed.Alpha), acc)
		}
	}
}

// TestWarmStateRefreshRules checks the guards that force periodic cold
// refits: a seed from a much smaller dataset is ignored, and a seed
// reused maxWarmAge times expires so the frozen standardization cannot
// go stale forever.
func TestWarmStateRefreshRules(t *testing.T) {
	x, y := ringData(200, 26)
	cfg := DefaultConfig()
	_, state, err := Solve(cfg, x[:100], y[:100], nil)
	if err != nil {
		t.Fatal(err)
	}
	if state.Usable(len(x), len(x[0])) {
		t.Fatal("seed from 100 rows must not be usable at 200 rows (>25% growth)")
	}
	if !state.Usable(110, 2) {
		t.Fatal("seed from 100 rows should be usable at 110 rows")
	}
	aged := *state
	aged.age = maxWarmAge
	if aged.Usable(100, 2) {
		t.Fatal("expired seed must not be usable")
	}
	// Reuse bumps age: after a warm fit the returned state is older.
	_, next, err := Solve(cfg, x[:110], y[:110], state)
	if err != nil {
		t.Fatal(err)
	}
	if next.age != 1 {
		t.Fatalf("warm reuse should age the state: age = %d, want 1", next.age)
	}
	if next.n != state.n {
		t.Fatalf("warm reuse must keep the scaler horizon: n = %d, want %d", next.n, state.n)
	}
	// A cold fit resets the horizon and age.
	_, fresh, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.age != 0 || fresh.n != len(x) {
		t.Fatalf("cold fit state: age=%d n=%d, want 0 and %d", fresh.age, fresh.n, len(x))
	}
}

// TestSolveAlphasFeasible checks the returned dual variables are a
// feasible SMO state: inside the box and balanced across classes —
// exactly what the next warm start assumes.
func TestSolveAlphasFeasible(t *testing.T) {
	x, y := ringData(250, 26)
	cfg := DefaultConfig()
	_, state, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Alpha) != len(x) {
		t.Fatalf("got %d alphas for %d rows", len(state.Alpha), len(x))
	}
	var s float64
	for i, a := range state.Alpha {
		if a < 0 || a > cfg.C {
			t.Fatalf("alpha[%d] = %v outside [0, %v]", i, a, cfg.C)
		}
		s += a * y[i]
	}
	if math.Abs(s) > 1e-8 {
		t.Fatalf("sum alpha*y = %v, want 0", s)
	}
}

// TestKKTHoldsAfterShrinkingSolve verifies working-set shrinking never
// terminates on a state that violates the KKT conditions globally: the
// unshrink pass must catch examples that drifted while parked.
func TestKKTHoldsAfterShrinkingSolve(t *testing.T) {
	x, y := ringData(500, 27)
	cfg := DefaultConfig()
	m, state, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	slack := 2 * cfg.Tol
	for i, row := range x {
		r := y[i]*m.Decision(row) - 1
		switch {
		case state.Alpha[i] <= 1e-12:
			if r < -slack {
				t.Fatalf("KKT violated at zero alpha %d: y·f-1 = %v", i, r)
			}
		case state.Alpha[i] >= cfg.C-1e-12:
			if r > slack {
				t.Fatalf("KKT violated at bound alpha %d: y·f-1 = %v", i, r)
			}
		default:
			if math.Abs(r) > slack {
				t.Fatalf("KKT violated at free alpha %d: y·f-1 = %v", i, r)
			}
		}
	}
}
