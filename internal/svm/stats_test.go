package svm

import (
	"math"
	"testing"
)

// TestSolveDetailedMatchesSolve pins that the instrumented path is the
// same solver: identical model, just with accounting attached.
func TestSolveDetailedMatchesSolve(t *testing.T) {
	x, y := ringData(160, 11)
	cfg := DefaultConfig()
	plain, _, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	var stats SolveStats
	detailed, _, err := SolveDetailed(cfg, x, y, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if plain.NumSV() != detailed.NumSV() {
		t.Fatalf("SV count diverged: %d vs %d", plain.NumSV(), detailed.NumSV())
	}
	for i, row := range x {
		a, b := plain.Decision(row), detailed.Decision(row)
		if math.Abs(a-b) > 1e-9 {
			t.Fatalf("decision %d diverged: %v vs %v", i, a, b)
		}
	}
}

func TestSolveStatsAccounting(t *testing.T) {
	x, y := ringData(200, 7)
	cfg := DefaultConfig()
	var stats SolveStats
	// Poison the stats first: SolveDetailed must reset them.
	stats.Iters = 999999
	m, warm, err := SolveDetailed(cfg, x, y, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Warm {
		t.Fatal("cold solve reported warm")
	}
	if stats.Rows != len(x) {
		t.Fatalf("rows = %d, want %d", stats.Rows, len(x))
	}
	if stats.Iters <= 0 || stats.Iters == 999999 || stats.Steps <= 0 {
		t.Fatalf("solver work not accounted: iters=%d steps=%d", stats.Iters, stats.Steps)
	}
	if stats.KernelRows <= 0 || stats.KernelRows != stats.CacheMisses {
		t.Fatalf("kernel rows %d must equal cache misses %d (each miss materializes one row)",
			stats.KernelRows, stats.CacheMisses)
	}
	if stats.TotalSeconds <= 0 {
		t.Fatal("total time not measured")
	}
	if stats.InitSeconds < 0 || stats.KernelSeconds < 0 || stats.ShrinkSeconds < 0 {
		t.Fatalf("negative phase time: %+v", stats)
	}
	if sum := stats.InitSeconds + stats.KernelSeconds + stats.ShrinkSeconds; sum > stats.TotalSeconds*1.5 {
		t.Fatalf("phase times %v exceed total %v", sum, stats.TotalSeconds)
	}
	if m.NumSV() <= 0 {
		t.Fatal("no support vectors")
	}
	if got := stats.CacheHitRate(); got < 0 || got > 1 {
		t.Fatalf("cache hit rate %v out of [0,1]", got)
	}

	// A warm re-solve over the same data must say so and converge in no
	// more iterations than the cold solve.
	var warmStats SolveStats
	if _, _, err := SolveDetailed(cfg, x, y, warm, &warmStats); err != nil {
		t.Fatal(err)
	}
	if !warmStats.Warm {
		t.Fatal("warm solve not flagged")
	}
	if warmStats.Iters > stats.Iters {
		t.Fatalf("warm solve took more iterations (%d) than cold (%d)", warmStats.Iters, stats.Iters)
	}
}

// TestSolveNilStatsUnchanged pins that the plain entry point carries no
// accounting: a nil stats pointer must not be touched (and must not
// crash any phase).
func TestSolveNilStatsUnchanged(t *testing.T) {
	x, y := linearlySeparable(120, 0.5, 3)
	if _, _, err := Solve(DefaultConfig(), x, y, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveDetailed(DefaultConfig(), x, y, nil, nil); err != nil {
		t.Fatal(err)
	}
}
