package svm

import (
	"math"

	"exbox/internal/mathx"
)

// This file is the budget-constrained RBF inference tier: a random
// Fourier feature (RFF) linearization of the trained kernel expansion,
// built once per fit, that collapses online scoring from a walk over
// the whole support-vector slab (~NumSV fused dot products plus exps)
// to one pass over D/2 frequency projections — the same order of work
// as the folded linear path.
//
// The construction follows Rahimi & Recht: for frequencies w_k drawn
// from N(0, 2γI), the features [cos(w_k·z), sin(w_k·z)] span an
// unbiased Monte-Carlo approximation of the RBF kernel. Projecting the
// SV expansion analytically onto those features converges only as
// O(‖f‖_H/√D) though, and models whose alphas sit at the box bound
// carry an RKHS norm large enough to need thousands of frequencies.
// Instead the readout is *refit*: ridge regression of the exact
// decision values on the training rows against a dictionary of the D
// random features, the standardized coordinates themselves (the ExCR
// boundary is near-linear in the count features, so the linear terms
// carry most of the signal and the Fourier terms only model the
// curvature), and an intercept. On the LiveLab-like integer count
// workload this reaches ≥99% sign agreement at D=256 where the
// analytic projection stalls near 90%; on adversarial targets it can
// still fall short, which is exactly what the classifier's
// agreement-gated demotion (classifier/health.go) is for.
//
// The fit and the scorer both evaluate the features with
// mathx.FastSincos, so the lookup table's ~1e-6 interpolation error
// appears on both sides of the regression and largely cancels.
//
// Everything is folded into raw-feature space at build time (the same
// trick as the linear path's wFold): scoring reads the raw row
// directly, touches only flat preallocated slices, and allocates
// nothing.

// rffModel is the built inference tier. All weights are in raw
// (unstandardized) feature space.
type rffModel struct {
	nf  int // frequency pairs (D/2)
	dim int

	// Projection u_k = wProj[k·dim:]·row + phase[k] folds the feature
	// standardization into the frequency matrix.
	wProj []float64 // nf×dim, row-major
	phase []float64 // nf

	// Readout: score = bias + wLin·row + Σ_k wCos[k]·cos(u_k) + wSin[k]·sin(u_k).
	wCos []float64 // nf
	wSin []float64 // nf
	wLin []float64 // dim
	bias float64
}

// defaultRFFDim is the dictionary size when Config.RFFDim is 0: 128
// cos/sin pairs, the paper-workload sweet spot (≥99% sign agreement at
// well under the 1 µs budget).
const defaultRFFDim = 256

// maxRFFFitRows caps the ridge-fit design matrix: training sets larger
// than this are stride-sampled. The normal equations are O(rows·D²),
// so the cap keeps the per-fit overhead bounded as the training set
// grows toward MaxTrainingSet.
const maxRFFFitRows = 768

// rffSeed derives the frequency RNG seed deterministically from the
// fit's own state, so rebuilding a model from the same data yields the
// same tier (reproducible scripts) while different fits get fresh
// frequencies.
func rffSeed(gamma float64, dim, nsv int, b, coefSum float64) int64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	mix(math.Float64bits(gamma))
	mix(uint64(dim))
	mix(uint64(nsv))
	mix(math.Float64bits(b))
	mix(math.Float64bits(coefSum))
	return int64(h)
}

// buildRFF fits the inference tier for a just-built RBF model against
// its own exact decisions on the (standardized) training rows. It
// returns nil — and the model simply stays on the exact slab — when
// the dictionary is degenerate or the normal equations are singular.
func buildRFF(cfg Config, m *Model, xs [][]float64) *rffModel {
	dim := m.dim
	D := cfg.RFFDim
	if D <= 0 {
		D = defaultRFFDim
	}
	nf := D / 2
	if nf < 1 || dim == 0 || len(xs) == 0 {
		return nil
	}
	D = 2 * nf // ignore an odd remainder

	var coefSum float64
	for _, c := range m.svCoef {
		coefSum += c
	}
	rng := mathx.NewRand(rffSeed(m.gamma, dim, len(m.svCoef), m.b, coefSum))
	sc := math.Sqrt(2 * m.gamma)
	W := make([]float64, nf*dim) // frequencies in standardized space
	for k := range W {
		W[k] = rng.NormFloat64() * sc
	}

	// Ridge fit of the exact decisions on a stride-sampled subset of
	// the training rows. Dictionary: D Fourier features, the dim
	// standardized coordinates, one intercept.
	nfeat := D + dim + 1
	stride := 1
	if len(xs) > maxRFFFitRows {
		stride = len(xs)/maxRFFFitRows + 1
	}
	A := make([][]float64, nfeat)
	for i := range A {
		A[i] = make([]float64, nfeat)
	}
	bvec := make([]float64, nfeat)
	f := make([]float64, nfeat)
	nfit := 0
	for i := 0; i < len(xs); i += stride {
		z := xs[i]
		for k := 0; k < nf; k++ {
			var u float64
			wk := W[k*dim : (k+1)*dim]
			for j, zj := range z {
				u += wk[j] * zj
			}
			f[2*k+1], f[2*k] = mathx.FastSincos(u)
		}
		copy(f[D:], z)
		f[nfeat-1] = 1
		ti := m.rbfOver(z, mathx.Dot(z, z))
		nfit++
		// Upper triangle only; mirrored below.
		for a := 0; a < nfeat; a++ {
			fa := f[a]
			bvec[a] += fa * ti
			row := A[a]
			for b := a; b < nfeat; b++ {
				row[b] += fa * f[b]
			}
		}
	}
	for a := 0; a < nfeat; a++ {
		for b := 0; b < a; b++ {
			A[a][b] = A[b][a]
		}
		A[a][a] += 1e-5 * float64(nfit)
	}
	wr, err := mathx.SolveLinear(A, bvec)
	if err != nil {
		return nil
	}

	// Fold the standardization into raw-feature space:
	// u_k = Σ_j W_kj·(x_j−μ_j)/σ_j = (W_k/σ)·x − Σ_j W_kj·μ_j/σ_j.
	r := &rffModel{
		nf:    nf,
		dim:   dim,
		wProj: make([]float64, nf*dim),
		phase: make([]float64, nf),
		wCos:  make([]float64, nf),
		wSin:  make([]float64, nf),
		wLin:  make([]float64, dim),
		bias:  wr[nfeat-1],
	}
	for k := 0; k < nf; k++ {
		r.wCos[k] = wr[2*k]
		r.wSin[k] = wr[2*k+1]
		for j := 0; j < dim; j++ {
			w := W[k*dim+j]
			r.wProj[k*dim+j] = w / m.scaler.Std[j]
			r.phase[k] -= w * m.scaler.Mean[j] / m.scaler.Std[j]
		}
	}
	for j := 0; j < dim; j++ {
		v := wr[D+j]
		r.wLin[j] = v / m.scaler.Std[j]
		r.bias -= v * m.scaler.Mean[j] / m.scaler.Std[j]
	}
	return r
}

// HasRFF reports whether the model carries a built RFF inference tier
// (Config.RFF on an RBF fit whose readout regression succeeded).
func (m *Model) HasRFF() bool { return m.rff != nil }

// DecisionRFF scores one raw feature row through the RFF tier: one
// pass over the folded frequency projections, no standardization step,
// no allocation. Models without a tier fall back to the exact
// Decision, so callers may use DecisionRFF unconditionally.
func (m *Model) DecisionRFF(row []float64) float64 {
	r := m.rff
	if r == nil {
		return m.Decision(row)
	}
	if len(row) != r.dim {
		panic("svm: row dim mismatch in DecisionRFF")
	}
	s := r.bias
	wLin := r.wLin[:len(row)]
	for j, v := range row {
		s += wLin[j] * v
	}
	// One fused pass over the projection slab; re-slicing wk to the
	// row length lets the compiler drop the inner bounds checks.
	dim := r.dim
	wProj, phase, wCos, wSin := r.wProj, r.phase, r.wCos, r.wSin
	for k := 0; k < r.nf; k++ {
		u := phase[k]
		wk := wProj[k*dim:]
		wk = wk[:len(row)]
		for j, v := range row {
			u += wk[j] * v
		}
		sin, cos := mathx.FastSincos(u)
		s += wCos[k]*cos + wSin[k]*sin
	}
	return s
}

// HasApprox implements learner.ApproxPredictor.
func (m *Model) HasApprox() bool { return m.HasRFF() }

// DecisionApprox implements learner.ApproxPredictor.
func (m *Model) DecisionApprox(row []float64) float64 { return m.DecisionRFF(row) }
