package svm

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"exbox/internal/mathx"
)

// linearlySeparable builds a 2-D dataset split by the line x0 + x1 = 0
// with the given margin.
func linearlySeparable(n int, margin float64, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for len(x) < n {
		p := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		s := p[0] + p[1]
		if math.Abs(s) < margin {
			continue
		}
		x = append(x, p)
		if s > 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y
}

// ringData builds a dataset only an RBF kernel can separate: +1 inside
// a radius-1 disk, -1 on a radius-3 ring.
func ringData(n int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		theta := rng.Float64() * 2 * math.Pi
		var r float64
		var label float64
		if i%2 == 0 {
			r, label = rng.Float64()*0.8, 1
		} else {
			r, label = 2.5+rng.Float64(), -1
		}
		x = append(x, []float64{r * math.Cos(theta), r * math.Sin(theta)})
		y = append(y, label)
	}
	return x, y
}

func trainAccuracy(m *Model, x [][]float64, y []float64) float64 {
	correct := 0
	for i, row := range x {
		if m.Predict(row) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestLinearSeparable(t *testing.T) {
	x, y := linearlySeparable(200, 0.5, 1)
	cfg := Config{Kernel: Linear, C: 10, Tol: 1e-3, Eps: 1e-5, MaxPasses: 5}
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(m, x, y); acc < 0.99 {
		t.Fatalf("linear training accuracy = %v, want >= 0.99", acc)
	}
	if m.NumSV() == 0 || m.NumSV() == len(x) {
		t.Fatalf("suspicious support vector count %d of %d", m.NumSV(), len(x))
	}
}

func TestRBFRing(t *testing.T) {
	x, y := ringData(200, 2)
	cfg := DefaultConfig()
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(m, x, y); acc < 0.97 {
		t.Fatalf("rbf ring training accuracy = %v, want >= 0.97", acc)
	}
	// A linear kernel must do clearly worse on the ring.
	lin, err := Train(Config{Kernel: Linear, C: 10, Tol: 1e-3, Eps: 1e-5, MaxPasses: 5}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if accLin := trainAccuracy(lin, x, y); accLin > 0.8 {
		t.Fatalf("linear kernel should fail on ring data, got accuracy %v", accLin)
	}
}

func TestDecisionSignMatchesPredict(t *testing.T) {
	x, y := ringData(120, 3)
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x {
		d := m.Decision(row)
		p := m.Predict(row)
		if (d >= 0) != (p == 1) {
			t.Fatalf("Decision %v disagrees with Predict %v", d, p)
		}
	}
}

func TestDecisionMagnitudeGrowsWithDepth(t *testing.T) {
	// For a clean linear boundary, points farther inside the positive
	// half-space should score higher: the property ExBox's network
	// selection relies on.
	x, y := linearlySeparable(300, 0.8, 4)
	m, err := Train(Config{Kernel: Linear, C: 10, Tol: 1e-4, Eps: 1e-6, MaxPasses: 8}, x, y)
	if err != nil {
		t.Fatal(err)
	}
	near := m.Decision([]float64{0.5, 0.5})
	far := m.Decision([]float64{4, 4})
	if !(far > near && near > 0) {
		t.Fatalf("margin ordering wrong: near=%v far=%v", near, far)
	}
}

func TestTrainValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Train(cfg, nil, nil); err == nil {
		t.Fatal("expected error for empty data")
	}
	if _, err := Train(cfg, [][]float64{{1}}, []float64{1, 1}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Train(cfg, [][]float64{{1}, {2}}, []float64{1, 0.5}); err == nil {
		t.Fatal("expected error for non ±1 label")
	}
	if _, err := Train(cfg, [][]float64{{1}, {2, 3}}, []float64{1, -1}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
	bad := cfg
	bad.C = 0
	if _, err := Train(bad, [][]float64{{1}, {2}}, []float64{1, -1}); err == nil {
		t.Fatal("expected error for C=0")
	}
	_, err := Train(cfg, [][]float64{{1}, {2}}, []float64{1, 1})
	if !errors.Is(err, ErrOneClass) {
		t.Fatalf("err = %v, want ErrOneClass", err)
	}
}

func TestTinyDataset(t *testing.T) {
	// Two points, one per class: SMO must converge instantly.
	m, err := Train(DefaultConfig(), [][]float64{{0, 0}, {1, 1}}, []float64{-1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict([]float64{0, 0}) != -1 || m.Predict([]float64{1, 1}) != 1 {
		t.Fatal("two-point dataset misclassified")
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Identical points with identical labels must not break SMO
	// (eta == 0 path).
	x := [][]float64{{1, 1}, {1, 1}, {1, 1}, {-1, -1}, {-1, -1}, {-1, -1}}
	y := []float64{1, 1, 1, -1, -1, -1}
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(m, x, y); acc != 1 {
		t.Fatalf("accuracy on duplicated points = %v", acc)
	}
}

func TestNoisyLabelsStillTrain(t *testing.T) {
	x, y := linearlySeparable(300, 0.2, 5)
	rng := mathx.NewRand(6)
	for i := range y {
		if rng.Float64() < 0.05 {
			y[i] = -y[i]
		}
	}
	cfg := DefaultConfig()
	cfg.C = 1
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc := trainAccuracy(m, x, y); acc < 0.85 {
		t.Fatalf("accuracy with 5%% label noise = %v, want >= 0.85", acc)
	}
}

func TestConstantFeatureDoesNotNaN(t *testing.T) {
	// Third column is constant; the scaler must not divide by zero.
	x := [][]float64{{0, 0, 7}, {1, 1, 7}, {2, 2, 7}, {3, 3, 7}}
	y := []float64{-1, -1, 1, 1}
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d := m.Decision([]float64{1.5, 1.5, 7}); math.IsNaN(d) {
		t.Fatal("Decision is NaN with constant feature")
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := linearlySeparable(150, 0.5, 7)
	rng := mathx.NewRand(8)
	acc, err := CrossValidate(Config{Kernel: Linear, C: 10, Tol: 1e-3, Eps: 1e-5, MaxPasses: 5}, x, y, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("cv accuracy = %v, want >= 0.95", acc)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	rng := mathx.NewRand(9)
	x, y := linearlySeparable(10, 0.5, 10)
	if _, err := CrossValidate(DefaultConfig(), x, y, 1, rng); err == nil {
		t.Fatal("expected error for folds < 2")
	}
	if _, err := CrossValidate(DefaultConfig(), x[:3], y[:3], 5, rng); err == nil {
		t.Fatal("expected error for fewer samples than folds")
	}
	if _, err := CrossValidate(DefaultConfig(), x, y[:5], 2, rng); err == nil {
		t.Fatal("expected error for mismatched labels")
	}
}

func TestCrossValidateOneClassFoldHandled(t *testing.T) {
	// 5 positives, 1 negative: some training splits may lose the
	// negative entirely; CV must still return a value.
	x := [][]float64{{0}, {1}, {2}, {3}, {4}, {10}}
	y := []float64{1, 1, 1, 1, 1, -1}
	rng := mathx.NewRand(11)
	acc, err := CrossValidate(DefaultConfig(), x, y, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("cv accuracy out of range: %v", acc)
	}
}

func TestScaler(t *testing.T) {
	x := [][]float64{{0, 10}, {2, 10}, {4, 10}}
	s := FitScaler(x)
	if s.Mean[0] != 2 || s.Mean[1] != 10 {
		t.Fatalf("means = %v", s.Mean)
	}
	if s.Std[1] != 1 {
		t.Fatalf("constant column std should fall back to 1, got %v", s.Std[1])
	}
	z := s.Transform([]float64{2, 10})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("Transform of mean = %v, want zeros", z)
	}
	if FitScaler(nil) != nil {
		t.Fatal("FitScaler(empty) should be nil")
	}
}

func TestKernelKindString(t *testing.T) {
	if Linear.String() != "linear" || RBF.String() != "rbf" {
		t.Fatal("KernelKind.String wrong")
	}
	if KernelKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestTrainingDeterministic(t *testing.T) {
	x, y := ringData(100, 12)
	m1, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, -0.2}
	if m1.Decision(probe) != m2.Decision(probe) {
		t.Fatal("training is not deterministic for identical data")
	}
}

// Property: predictions are invariant under feature translation and
// positive scaling, because the model standardizes internally.
func TestQuickScaleInvariance(t *testing.T) {
	x, y := linearlySeparable(80, 0.5, 13)
	cfg := Config{Kernel: Linear, C: 10, Tol: 1e-3, Eps: 1e-5, MaxPasses: 5}
	base, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRand(14)
	f := func() bool {
		scale := 0.5 + rng.Float64()*10
		shift := rng.NormFloat64() * 100
		xs := make([][]float64, len(x))
		for i, row := range x {
			xs[i] = []float64{row[0]*scale + shift, row[1]*scale + shift}
		}
		m, err := Train(cfg, xs, y)
		if err != nil {
			return false
		}
		for i, row := range x {
			// Skip points hugging the boundary: standardization is
			// only affine-invariant up to floating-point rounding.
			if math.Abs(base.Decision(x[i])) < 0.05 {
				continue
			}
			p := []float64{row[0]*scale + shift, row[1]*scale + shift}
			if m.Predict(p) != base.Predict(x[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: the trained decision function respects label symmetry —
// flipping every label flips the sign of the decision function.
func TestQuickLabelSymmetry(t *testing.T) {
	x, y := linearlySeparable(60, 0.5, 15)
	cfg := Config{Kernel: Linear, C: 10, Tol: 1e-3, Eps: 1e-5, MaxPasses: 5}
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	yneg := make([]float64, len(y))
	for i := range y {
		yneg[i] = -y[i]
	}
	mneg, err := Train(cfg, x, yneg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x {
		a, b := m.Decision(row), mneg.Decision(row)
		if math.Abs(a+b) > 1e-6*(1+math.Abs(a)) {
			t.Fatalf("label symmetry violated: %v vs %v", a, b)
		}
	}
}
