package svm

import (
	"math"
	"testing"
)

// bitsEqual is the round-trip criterion for restored models: not
// "close", bit-identical — the snapshot stores the folded inference
// representation verbatim, so the restored decision function must be
// the very same float64s.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// roundTrip pushes a model through State/ModelFromState.
func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	r, err := ModelFromState(m.State())
	if err != nil {
		t.Fatalf("ModelFromState: %v", err)
	}
	return r
}

// probeRows builds deterministic probe points covering the data range.
func stateProbes(dim int) [][]float64 {
	var rows [][]float64
	for i := -4; i <= 4; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = float64(i) * (1 + 0.25*float64(j))
		}
		rows = append(rows, row)
	}
	return rows
}

func TestModelStateRoundTripLinear(t *testing.T) {
	x, y := linearlySeparable(200, 0.5, 11)
	cfg := Config{Kernel: Linear, C: 10, Tol: 1e-3, Eps: 1e-5, MaxPasses: 5}
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, m)
	for _, row := range stateProbes(m.Dim()) {
		if a, b := m.Decision(row), r.Decision(row); !bitsEqual(a, b) {
			t.Fatalf("linear decision diverged after round trip: %v != %v at %v", a, b, row)
		}
	}
}

func TestModelStateRoundTripRBF(t *testing.T) {
	x, y := ringData(200, 12)
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	r := roundTrip(t, m)
	if r.NumSV() != m.NumSV() {
		t.Fatalf("support vectors: %d != %d", r.NumSV(), m.NumSV())
	}
	rows := stateProbes(m.Dim())
	for _, row := range rows {
		if a, b := m.Decision(row), r.Decision(row); !bitsEqual(a, b) {
			t.Fatalf("RBF decision diverged after round trip: %v != %v at %v", a, b, row)
		}
	}
	// The batched slab path must agree bit-for-bit too — it walks the
	// restored slab directly.
	sa := make([]float64, m.BatchScratch(len(rows)))
	sb := make([]float64, r.BatchScratch(len(rows)))
	da := m.DecisionBatch(nil, rows, sa)
	db := r.DecisionBatch(nil, rows, sb)
	for i := range da {
		if !bitsEqual(da[i], db[i]) {
			t.Fatalf("batched decision diverged at row %d: %v != %v", i, da[i], db[i])
		}
	}
}

func TestModelStateRoundTripRFF(t *testing.T) {
	x, y := livelabData(300, 6, 13)
	cfg := DefaultConfig()
	cfg.RFF = true
	cfg.RFFDim = 64
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasRFF() {
		t.Skip("RFF tier did not build on this fit")
	}
	r := roundTrip(t, m)
	if !r.HasRFF() {
		t.Fatal("restored model lost its RFF tier")
	}
	for _, row := range stateProbes(m.Dim()) {
		if a, b := m.DecisionRFF(row), r.DecisionRFF(row); !bitsEqual(a, b) {
			t.Fatalf("RFF decision diverged after round trip: %v != %v at %v", a, b, row)
		}
		if a, b := m.Decision(row), r.Decision(row); !bitsEqual(a, b) {
			t.Fatalf("exact decision diverged after round trip: %v != %v at %v", a, b, row)
		}
	}
}

// TestModelStateIsolation: mutating an exported state must not reach
// the model, and a model built from a state must not alias it.
func TestModelStateIsolation(t *testing.T) {
	x, y := ringData(120, 14)
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	row := stateProbes(m.Dim())[2]
	want := m.Decision(row)
	st := m.State()
	r, err := ModelFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.SVSlab {
		st.SVSlab[i] = math.Pi
	}
	for i := range st.SVNorm {
		st.SVNorm[i] = -1
	}
	if got := m.Decision(row); !bitsEqual(got, want) {
		t.Fatal("mutating exported state changed the source model")
	}
	if got := r.Decision(row); !bitsEqual(got, want) {
		t.Fatal("mutating exported state changed the rebuilt model")
	}
}

func TestModelFromStateRejectsCorruptState(t *testing.T) {
	x, y := ringData(150, 15)
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	base := m.State()
	cases := []struct {
		name   string
		mutate func(st *ModelState)
	}{
		{"zero dim", func(st *ModelState) { st.Dim = 0 }},
		{"unknown kernel", func(st *ModelState) { st.Config.Kernel = KernelKind(99) }},
		{"negative gamma", func(st *ModelState) { st.Gamma = -1 }},
		{"NaN threshold", func(st *ModelState) { st.BFold = math.NaN() }},
		{"scaler length", func(st *ModelState) { st.ScalerMean = st.ScalerMean[:1] }},
		{"zero scaler std", func(st *ModelState) { st.ScalerStd[0] = 0 }},
		{"NaN coefficient", func(st *ModelState) { st.SVCoef[0] = math.NaN() }},
		{"slab stride", func(st *ModelState) { st.SVSlab = st.SVSlab[:len(st.SVSlab)-1] }},
		{"norms length", func(st *ModelState) { st.SVNorm = append(st.SVNorm, 0) }},
		{"linear weights on RBF", func(st *ModelState) { st.WFold = []float64{1, 2, 3, 4} }},
		{"rff shape", func(st *ModelState) {
			st.RFF = &RFFState{NumFreq: 4, Dim: st.Dim, WProj: []float64{1}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := base // shallow copy; mutations below replace or index slices
			st.ScalerMean = append([]float64(nil), base.ScalerMean...)
			st.ScalerStd = append([]float64(nil), base.ScalerStd...)
			st.SVCoef = append([]float64(nil), base.SVCoef...)
			st.SVSlab = append([]float64(nil), base.SVSlab...)
			st.SVNorm = append([]float64(nil), base.SVNorm...)
			tc.mutate(&st)
			if _, err := ModelFromState(st); err == nil {
				t.Fatal("corrupt state was accepted")
			}
		})
	}
}

func TestWarmStateDataRoundTrip(t *testing.T) {
	x, y := ringData(150, 16)
	_, state, err := Solve(tightConfig(), x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := state.Data()
	r, err := WarmStateFromData(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Alpha) != len(state.Alpha) || !bitsEqual(r.b, state.b) ||
		r.n != state.n || r.age != state.age {
		t.Fatal("warm state fields diverged after round trip")
	}
	for i := range r.Alpha {
		if !bitsEqual(r.Alpha[i], state.Alpha[i]) {
			t.Fatalf("alpha %d diverged", i)
		}
	}
	if (r.scaler == nil) != (state.scaler == nil) {
		t.Fatal("scaler presence diverged")
	}
	if !r.Usable(d.N, len(d.ScalerMean)) {
		t.Fatal("restored warm state not usable for its own shape")
	}
	// A restored seed must actually warm-start a solve.
	if _, _, err := Solve(tightConfig(), x, y, r); err != nil {
		t.Fatalf("solve from restored warm state: %v", err)
	}
}

func TestWarmStateFromDataRejectsCorrupt(t *testing.T) {
	cases := []struct {
		name string
		d    WarmStateData
	}{
		{"scaler mismatch", WarmStateData{ScalerMean: []float64{1}, ScalerStd: []float64{1, 2}}},
		{"NaN alpha", WarmStateData{Alpha: []float64{math.NaN()}}},
		{"zero std", WarmStateData{ScalerMean: []float64{0}, ScalerStd: []float64{0}}},
		{"negative n", WarmStateData{N: -1}},
		{"negative age", WarmStateData{Age: -3}},
		{"infinite b", WarmStateData{B: math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := WarmStateFromData(tc.d); err == nil {
				t.Fatal("corrupt warm state was accepted")
			}
		})
	}
}
