package svm

import (
	"errors"
	"math/rand"
)

// StratifiedFolds assigns each labeled sample to a fold, spreading
// every class round-robin over the folds in a random order: fold[i]
// is the held-out fold of sample i. Plain modulo assignment over one
// shuffle — what CrossValidate used to do — degenerates when a class
// has fewer members than there are folds: the minority samples can
// all land in one fold, leaving that fold's *training* split
// single-class (SMO's Σ αᵢyᵢ = 0 constraint is then trivially
// infeasible and the fold silently falls back to majority-class
// scoring, skewing the accuracy estimate). Round-robin per class
// guarantees every training split contains every class that has at
// least two members.
func StratifiedFolds(y []float64, folds int, rng *rand.Rand) []int {
	fold := make([]int, len(y))
	next := make(map[float64]int, 2)
	for _, i := range rng.Perm(len(y)) {
		c := y[i]
		fold[i] = next[c] % folds
		next[c]++
	}
	return fold
}

// CrossValidate estimates generalization accuracy by n-fold cross
// validation: the data is split into folds stratified random subsets
// (see StratifiedFolds), the model is trained on folds-1 of them and
// tested on the held-out one, and the mean accuracy over all folds is
// returned.
//
// This is exactly the procedure ExBox's bootstrap phase runs to decide
// when the Admittance Classifier is trustworthy enough to go online.
// Folds whose training split degenerates to a single class (possible
// only when a class has a single member in the whole set) are scored
// by majority-class prediction, mirroring how a trivial classifier
// would behave there.
func CrossValidate(cfg Config, x [][]float64, y []float64, folds int, rng *rand.Rand) (float64, error) {
	if folds < 2 {
		return 0, errors.New("svm: cross validation needs at least 2 folds")
	}
	if len(x) != len(y) {
		return 0, errors.New("svm: rows/labels mismatch")
	}
	if len(x) < folds {
		return 0, errors.New("svm: fewer samples than folds")
	}
	fold := StratifiedFolds(y, folds, rng)

	var correct, total int
	for f := 0; f < folds; f++ {
		var trainX, testX [][]float64
		var trainY, testY []float64
		for i := range x {
			if fold[i] == f {
				testX = append(testX, x[i])
				testY = append(testY, y[i])
			} else {
				trainX = append(trainX, x[i])
				trainY = append(trainY, y[i])
			}
		}
		m, err := Train(cfg, trainX, trainY)
		if errors.Is(err, ErrOneClass) {
			// Majority (only) class predictor.
			var cls float64 = 1
			if len(trainY) > 0 {
				cls = trainY[0]
			}
			for _, yt := range testY {
				if yt == cls {
					correct++
				}
				total++
			}
			continue
		}
		if err != nil {
			return 0, err
		}
		for i, row := range testX {
			if m.Predict(row) == testY[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, errors.New("svm: empty folds")
	}
	return float64(correct) / float64(total), nil
}
