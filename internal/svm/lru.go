package svm

// rowLRU is a bounded least-recently-used cache of kernel-matrix rows,
// used when the training set is too large for a full n×n matrix. SMO
// concentrates its steps on a small working set, and the LRU keeps
// exactly that set resident: every Get refreshes recency, and rows of
// examples shrunk out of the working set are removed eagerly so the
// budget is spent on rows the solver will actually touch again.
type rowLRU struct {
	cap  int
	m    map[int]*lruEntry
	head *lruEntry // most recently used
	tail *lruEntry // least recently used
}

type lruEntry struct {
	idx        int
	row        []float64
	prev, next *lruEntry
}

func newRowLRU(capacity int) *rowLRU {
	if capacity < 1 {
		capacity = 1
	}
	return &rowLRU{cap: capacity, m: make(map[int]*lruEntry, capacity)}
}

// Get returns the cached row for training index i, refreshing its
// recency.
func (c *rowLRU) Get(i int) ([]float64, bool) {
	e, ok := c.m[i]
	if !ok {
		return nil, false
	}
	c.moveToFront(e)
	return e.row, true
}

// Put inserts (or refreshes) the row for training index i, evicting
// the least-recently-used row when the cache is full.
func (c *rowLRU) Put(i int, row []float64) {
	if e, ok := c.m[i]; ok {
		e.row = row
		c.moveToFront(e)
		return
	}
	if len(c.m) >= c.cap {
		c.evictLRU()
	}
	e := &lruEntry{idx: i, row: row}
	c.m[i] = e
	c.pushFront(e)
}

// Remove drops the row for training index i if cached.
func (c *rowLRU) Remove(i int) {
	if e, ok := c.m[i]; ok {
		c.unlink(e)
		delete(c.m, i)
	}
}

// Len returns the number of cached rows.
func (c *rowLRU) Len() int { return len(c.m) }

func (c *rowLRU) evictLRU() {
	if c.tail == nil {
		return
	}
	e := c.tail
	c.unlink(e)
	delete(c.m, e.idx)
}

func (c *rowLRU) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *rowLRU) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *rowLRU) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
