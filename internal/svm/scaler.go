package svm

import "exbox/internal/mathx"

// Scaler standardizes features to zero mean and unit variance, the
// usual preconditioning for SMO convergence. Columns with zero
// variance are passed through unshifted in scale (divisor 1) so that
// constant features cannot produce NaNs.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-column mean and standard deviation from x.
// It returns nil when x is empty.
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return nil
	}
	dim := len(x[0])
	s := &Scaler{Mean: make([]float64, dim), Std: make([]float64, dim)}
	col := make([]float64, len(x))
	for j := 0; j < dim; j++ {
		for i, row := range x {
			col[i] = row[j]
		}
		s.Mean[j] = mathx.Mean(col)
		sd := mathx.StdDev(col)
		if sd < 1e-12 {
			sd = 1
		}
		s.Std[j] = sd
	}
	return s
}

// Transform returns a standardized copy of row.
func (s *Scaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row, returning fresh slices.
func (s *Scaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}
