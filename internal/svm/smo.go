package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Config holds the SVM hyperparameters. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Kernel selects Linear or RBF.
	Kernel KernelKind
	// C is the soft-margin penalty. Larger C fits the training data
	// harder.
	C float64
	// Gamma is the RBF kernel width (ignored for Linear). When 0 it
	// defaults to 1/dim at training time, the usual libsvm default.
	Gamma float64
	// Tol is the KKT violation tolerance used by SMO.
	Tol float64
	// Eps is the minimum alpha step considered progress.
	Eps float64
	// MaxPasses bounds full sweeps over the training set without
	// progress before SMO gives up and returns the current model.
	MaxPasses int
	// MaxIter is a hard ceiling on examine steps, a safety valve
	// against pathological data. 0 means a generous default.
	MaxIter int
}

// DefaultConfig returns the configuration used by the ExBox
// Admittance Classifier: an RBF kernel with a moderate penalty, chosen
// because the ExCR boundary is curved in traffic-matrix space.
func DefaultConfig() Config {
	return Config{
		Kernel:    RBF,
		C:         10,
		Gamma:     0, // 1/dim at train time
		Tol:       1e-3,
		Eps:       1e-5,
		MaxPasses: 5,
	}
}

// ErrOneClass is returned by Train when the labels contain only one
// class; no separating boundary exists to learn. The Admittance
// Classifier treats this as "keep bootstrapping".
var ErrOneClass = errors.New("svm: training data contains a single class")

// Model is a trained SVM. Models are immutable after training and safe
// for concurrent use.
type Model struct {
	cfg    Config
	gamma  float64
	scaler *Scaler

	// Support vectors in standardized feature space.
	svX     [][]float64
	svCoef  []float64 // alpha_i * y_i
	b       float64
	wLinear []float64 // collapsed weights, linear kernel only
}

// Train fits a soft-margin SVM on rows x with labels y in {-1,+1}.
// Features are standardized internally; the returned model applies the
// same standardization at prediction time.
func Train(cfg Config, x [][]float64, y []float64) (*Model, error) {
	if len(x) == 0 {
		return nil, errors.New("svm: no training data")
	}
	if len(x) != len(y) {
		return nil, fmt.Errorf("svm: %d rows but %d labels", len(x), len(y))
	}
	if cfg.C <= 0 {
		return nil, errors.New("svm: C must be positive")
	}
	dim := len(x[0])
	var pos, neg int
	for i, yi := range y {
		if len(x[i]) != dim {
			return nil, fmt.Errorf("svm: row %d has dim %d, want %d", i, len(x[i]), dim)
		}
		switch yi {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("svm: label %v at row %d, want +1 or -1", yi, i)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, ErrOneClass
	}

	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = 1 / float64(dim)
	}
	scaler := FitScaler(x)
	xs := scaler.TransformAll(x)

	tr := newTrainer(cfg, gamma, xs, y)
	tr.solve()

	// The trainer follows Platt's convention u(x) = Σ αᵢyᵢK(xᵢ,x) − b;
	// the model stores the negated threshold so Decision can add it.
	m := &Model{cfg: cfg, gamma: gamma, scaler: scaler, b: -tr.b}
	for i, a := range tr.alpha {
		if a > 1e-12 {
			m.svX = append(m.svX, xs[i])
			m.svCoef = append(m.svCoef, a*y[i])
		}
	}
	if cfg.Kernel == Linear {
		w := make([]float64, dim)
		for i, sv := range m.svX {
			for j, v := range sv {
				w[j] += m.svCoef[i] * v
			}
		}
		m.wLinear = w
	}
	return m, nil
}

// NumSV returns the number of support vectors retained by the model.
func (m *Model) NumSV() int { return len(m.svX) }

// Decision returns the signed distance-like score f(x) of the sample:
// positive inside the admissible half-space, negative outside. ExBox's
// network selection uses the magnitude as "how far inside the capacity
// region" a candidate placement sits.
func (m *Model) Decision(row []float64) float64 {
	z := m.scaler.Transform(row)
	if m.wLinear != nil {
		var s float64
		for j, v := range z {
			s += m.wLinear[j] * v
		}
		return s + m.b
	}
	k := kernelFunc(m.cfg.Kernel, m.gamma)
	var s float64
	for i, sv := range m.svX {
		s += m.svCoef[i] * k(sv, z)
	}
	return s + m.b
}

// Predict returns +1 or -1 for the sample.
func (m *Model) Predict(row []float64) float64 {
	if m.Decision(row) >= 0 {
		return 1
	}
	return -1
}

// trainer holds the SMO working state.
type trainer struct {
	cfg   Config
	gamma float64
	x     [][]float64
	y     []float64
	n     int

	alpha []float64
	b     float64
	errs  []float64 // E_i = f(x_i) - y_i, maintained incrementally

	kern  func(a, b []float64) float64
	kdiag []float64
	// Full kernel matrix when n is small enough; otherwise rows are
	// computed on demand through kRow with a tiny cache.
	kfull    [][]float64
	rowCache map[int][]float64
	rowOrder []int
}

// kernelCacheLimit bounds the n for which a full n×n kernel matrix is
// precomputed (n=3000 → ~72 MB of float64, acceptable).
const kernelCacheLimit = 3000

func newTrainer(cfg Config, gamma float64, x [][]float64, y []float64) *trainer {
	n := len(x)
	tr := &trainer{
		cfg:   cfg,
		gamma: gamma,
		x:     x,
		y:     y,
		n:     n,
		alpha: make([]float64, n),
		errs:  make([]float64, n),
		kern:  kernelFunc(cfg.Kernel, gamma),
		kdiag: make([]float64, n),
	}
	for i := range tr.errs {
		tr.errs[i] = -y[i] // f = 0 initially
	}
	if n <= kernelCacheLimit {
		tr.kfull = make([][]float64, n)
	} else {
		tr.rowCache = make(map[int][]float64)
	}
	for i := 0; i < n; i++ {
		tr.kdiag[i] = tr.kern(x[i], x[i])
	}
	return tr
}

// kRow returns row i of the kernel matrix, computing and caching it as
// needed.
func (tr *trainer) kRow(i int) []float64 {
	if tr.kfull != nil {
		if tr.kfull[i] == nil {
			row := make([]float64, tr.n)
			for j := 0; j < tr.n; j++ {
				row[j] = tr.kern(tr.x[i], tr.x[j])
			}
			tr.kfull[i] = row
		}
		return tr.kfull[i]
	}
	if row, ok := tr.rowCache[i]; ok {
		return row
	}
	row := make([]float64, tr.n)
	for j := 0; j < tr.n; j++ {
		row[j] = tr.kern(tr.x[i], tr.x[j])
	}
	// Bounded cache with FIFO eviction: SMO revisits a small working
	// set, so even a crude policy hits well.
	const maxRows = 512
	if len(tr.rowOrder) >= maxRows {
		evict := tr.rowOrder[0]
		tr.rowOrder = tr.rowOrder[1:]
		delete(tr.rowCache, evict)
	}
	tr.rowCache[i] = row
	tr.rowOrder = append(tr.rowOrder, i)
	return row
}

// solve runs Platt's SMO main loop: alternate full passes with passes
// over the non-bound subset until a full pass makes no progress.
func (tr *trainer) solve() {
	maxIter := tr.cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 200 * tr.n
		if maxIter < 20000 {
			maxIter = 20000
		}
	}
	// Deterministic tie-breaking RNG for the second-choice heuristic
	// fallback; seeded from the problem size so training is
	// reproducible for a given dataset.
	rng := rand.New(rand.NewSource(int64(tr.n)*2654435761 + 1))

	iter := 0
	examineAll := true
	passesWithoutProgress := 0
	for passesWithoutProgress < tr.cfg.maxPasses() && iter < maxIter {
		changed := 0
		if examineAll {
			for i := 0; i < tr.n && iter < maxIter; i++ {
				changed += tr.examine(i, rng)
				iter++
			}
		} else {
			for i := 0; i < tr.n && iter < maxIter; i++ {
				if tr.alpha[i] > 0 && tr.alpha[i] < tr.cfg.C {
					changed += tr.examine(i, rng)
					iter++
				}
			}
		}
		if examineAll {
			examineAll = false
		} else if changed == 0 {
			examineAll = true
		}
		if changed == 0 {
			passesWithoutProgress++
		} else {
			passesWithoutProgress = 0
		}
	}
}

func (c Config) maxPasses() int {
	if c.MaxPasses <= 0 {
		return 2
	}
	return c.MaxPasses
}

// examine applies the KKT check to example i2 and, if violated, picks a
// partner i1 by the second-choice heuristic and attempts a step.
func (tr *trainer) examine(i2 int, rng *rand.Rand) int {
	y2 := tr.y[i2]
	a2 := tr.alpha[i2]
	e2 := tr.errs[i2]
	r2 := e2 * y2
	tol, c := tr.cfg.Tol, tr.cfg.C

	if (r2 < -tol && a2 < c) || (r2 > tol && a2 > 0) {
		// Heuristic 1: maximize |E1 - E2| over non-bound alphas.
		best, bestGap := -1, -1.0
		for i := 0; i < tr.n; i++ {
			if tr.alpha[i] > 0 && tr.alpha[i] < c {
				gap := math.Abs(tr.errs[i] - e2)
				if gap > bestGap {
					bestGap, best = gap, i
				}
			}
		}
		if best >= 0 && tr.takeStep(best, i2) {
			return 1
		}
		// Heuristic 2: loop over non-bound from a random start.
		start := rng.Intn(tr.n)
		for k := 0; k < tr.n; k++ {
			i1 := (start + k) % tr.n
			if tr.alpha[i1] > 0 && tr.alpha[i1] < c {
				if tr.takeStep(i1, i2) {
					return 1
				}
			}
		}
		// Heuristic 3: loop over everything.
		start = rng.Intn(tr.n)
		for k := 0; k < tr.n; k++ {
			i1 := (start + k) % tr.n
			if tr.takeStep(i1, i2) {
				return 1
			}
		}
	}
	return 0
}

// takeStep jointly optimizes alpha[i1], alpha[i2]. Returns true when a
// meaningful update happened.
func (tr *trainer) takeStep(i1, i2 int) bool {
	if i1 == i2 {
		return false
	}
	a1, a2 := tr.alpha[i1], tr.alpha[i2]
	y1, y2 := tr.y[i1], tr.y[i2]
	e1, e2 := tr.errs[i1], tr.errs[i2]
	s := y1 * y2
	c := tr.cfg.C

	var lo, hi float64
	if s < 0 {
		lo = math.Max(0, a2-a1)
		hi = math.Min(c, c+a2-a1)
	} else {
		lo = math.Max(0, a1+a2-c)
		hi = math.Min(c, a1+a2)
	}
	if lo >= hi {
		return false
	}

	row1 := tr.kRow(i1)
	k11 := tr.kdiag[i1]
	k22 := tr.kdiag[i2]
	k12 := row1[i2]
	eta := k11 + k22 - 2*k12

	var a2new float64
	if eta > 0 {
		a2new = a2 + y2*(e1-e2)/eta
		if a2new < lo {
			a2new = lo
		} else if a2new > hi {
			a2new = hi
		}
	} else {
		// Degenerate curvature: evaluate the objective at both clip
		// ends and move to the better one.
		f1 := y1*e1 - a1*k11 - s*a2*k12
		f2 := y2*e2 - a2*k22 - s*a1*k12
		l1 := a1 + s*(a2-lo)
		h1 := a1 + s*(a2-hi)
		objLo := l1*f1 + lo*f2 + 0.5*l1*l1*k11 + 0.5*lo*lo*k22 + s*lo*l1*k12
		objHi := h1*f1 + hi*f2 + 0.5*h1*h1*k11 + 0.5*hi*hi*k22 + s*hi*h1*k12
		switch {
		case objLo < objHi-tr.cfg.Eps:
			a2new = lo
		case objLo > objHi+tr.cfg.Eps:
			a2new = hi
		default:
			a2new = a2
		}
	}
	if math.Abs(a2new-a2) < tr.cfg.Eps*(a2new+a2+tr.cfg.Eps) {
		return false
	}
	a1new := a1 + s*(a2-a2new)
	if a1new < 0 {
		a2new += s * a1new
		a1new = 0
	} else if a1new > c {
		a2new += s * (a1new - c)
		a1new = c
	}

	// Threshold update (Platt eq. 20-22).
	row2 := tr.kRow(i2)
	b1 := e1 + y1*(a1new-a1)*k11 + y2*(a2new-a2)*k12 + tr.b
	b2 := e2 + y1*(a1new-a1)*k12 + y2*(a2new-a2)*k22 + tr.b
	var bnew float64
	switch {
	case a1new > 0 && a1new < c:
		bnew = b1
	case a2new > 0 && a2new < c:
		bnew = b2
	default:
		bnew = (b1 + b2) / 2
	}
	deltaB := bnew - tr.b
	tr.b = bnew

	d1 := y1 * (a1new - a1)
	d2 := y2 * (a2new - a2)
	tr.alpha[i1] = a1new
	tr.alpha[i2] = a2new
	for i := 0; i < tr.n; i++ {
		tr.errs[i] += d1*row1[i] + d2*row2[i] - deltaB
	}
	// Pin the two updated examples to exact values to stop cache drift.
	tr.errs[i1] = tr.f(i1, row1) - y1
	tr.errs[i2] = tr.f(i2, row2) - y2
	return true
}

// f recomputes the decision value for training index i exactly; row is
// the kernel row for i (reused to avoid recomputation).
func (tr *trainer) f(i int, row []float64) float64 {
	var s float64
	for j := 0; j < tr.n; j++ {
		if tr.alpha[j] > 0 {
			s += tr.alpha[j] * tr.y[j] * row[j]
		}
	}
	return s - tr.b
}
