package svm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Config holds the SVM hyperparameters. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Kernel selects Linear or RBF.
	Kernel KernelKind
	// C is the soft-margin penalty. Larger C fits the training data
	// harder.
	C float64
	// Gamma is the RBF kernel width (ignored for Linear). When 0 it
	// defaults to 1/dim at training time, the usual libsvm default.
	Gamma float64
	// Tol is the KKT violation tolerance used by SMO.
	Tol float64
	// Eps is the minimum alpha step considered progress.
	Eps float64
	// MaxPasses bounds full sweeps over the training set without
	// progress before SMO gives up and returns the current model.
	MaxPasses int
	// MaxIter is a hard ceiling on examine steps, a safety valve
	// against pathological data. 0 means a generous default.
	MaxIter int
	// CacheRows bounds the kernel-row LRU cache used when the training
	// set is too large for a full kernel matrix (see
	// kernelCacheLimit). 0 means 512 rows.
	CacheRows int
	// RFF enables the budget-constrained RBF inference tier: a random
	// Fourier feature linearization with a ridge-refit readout, built
	// at model construction (see rff.go), scoring through DecisionRFF.
	// Ignored for the linear kernel, which is already one dot product.
	RFF bool
	// RFFDim is the RFF dictionary size D (cos/sin pairs count as two).
	// 0 means 256.
	RFFDim int
	// PruneTol drops support vectors whose dual variable ended at or
	// below the tolerance after the solve (reduced-set selection): their
	// kernel terms contribute ~α·1 each, so pruning trades a bounded
	// decision-value perturbation for a shorter slab walk. The dual
	// equality Σ αᵢyᵢ = 0 is repaired by scaling down the heavier
	// class, the same repair warm seeding applies. 0 (the default)
	// disables pruning and keeps fits bit-identical to earlier
	// versions; SolveStats.Pruned reports how many were dropped.
	PruneTol float64
	// QuantizeSVs stores the standardized support-vector slab a second
	// time as int16 with one scale per feature (see buildQuantSlab)
	// and scores RBF decisions against that slab, shrinking the
	// decision working set ~4× so large admission bursts stay cache
	// resident. The float64 slab is retained and decisionScalar keeps
	// scoring against it, so the exact path remains available as the
	// oracle the equivalence tests and the health monitor compare to.
	// Ignored for the linear kernel. Off by default: decisions are
	// bit-identical to earlier versions unless this is set.
	QuantizeSVs bool
}

// DefaultConfig returns the configuration used by the ExBox
// Admittance Classifier: an RBF kernel with a moderate penalty, chosen
// because the ExCR boundary is curved in traffic-matrix space.
func DefaultConfig() Config {
	return Config{
		Kernel:    RBF,
		C:         10,
		Gamma:     0, // 1/dim at train time
		Tol:       1e-3,
		Eps:       1e-5,
		MaxPasses: 5,
	}
}

// ErrOneClass is returned by Train when the labels contain only one
// class; no separating boundary exists to learn. The Admittance
// Classifier treats this as "keep bootstrapping".
var ErrOneClass = errors.New("svm: training data contains a single class")

// Model is a trained SVM. Models are immutable after training and safe
// for concurrent use. The representation is the inference fast path
// built by buildModel (see predict.go): everything that can be
// precomputed — the kernel closure, the feature standardization, the
// support-vector layout — is folded in at construction so scoring is
// fused arithmetic over contiguous memory.
type Model struct {
	cfg    Config
	gamma  float64
	scaler *Scaler
	dim    int

	svCoef []float64 // alpha_i * y_i per retained support vector
	b      float64

	// Linear kernel: collapsed weights in standardized space (wLinear,
	// kept for the reference path) and their scaler-folded counterpart
	// over raw features (wFold, bFold) the fast path uses.
	wLinear []float64
	wFold   []float64
	bFold   float64

	// RBF kernel: standardized support vectors packed row-major with
	// stride dim, plus their precomputed squared norms.
	svSlab []float64
	svNorm []float64

	// Quantized slab (Config.QuantizeSVs, RBF only): the support
	// vectors again as int16 with a per-feature step size, plus the
	// squared norms of the *dequantized* vectors, so the decision is
	// exactly the RBF decision of the dequantized model. qSlab == nil
	// when quantization is off.
	qScale []float64 // dim: standardized units per int16 step
	qSlab  []int16   // len(svCoef)×dim, row-major
	qNorm  []float64 // len(svCoef): ‖q·scale‖² per support vector

	// rff is the optional budget-constrained inference tier
	// (Config.RFF; see rff.go), nil when disabled or when its readout
	// fit failed.
	rff *rffModel
}

// Train fits a soft-margin SVM on rows x with labels y in {-1,+1}.
// Features are standardized internally; the returned model applies the
// same standardization at prediction time.
func Train(cfg Config, x [][]float64, y []float64) (*Model, error) {
	m, _, err := Solve(cfg, x, y, nil)
	return m, err
}

// WarmState carries the solver state of one fit so the next fit over a
// grown dataset can start from it instead of from zero. States are
// value snapshots: Solve never mutates a state it was given.
type WarmState struct {
	// Alpha holds the dual variables, aligned to the rows of the fit
	// that produced the state. Callers that reorder or evict training
	// rows between fits should re-align the values and install them
	// with Remap; unmatched rows simply start at 0.
	Alpha []float64

	b      float64 // threshold at the seed's optimum (Platt convention)
	scaler *Scaler // frozen feature standardization of the seed fit
	n      int     // training rows when the scaler was fitted
	age    int     // consecutive warm reuses of the frozen scaler
}

// Remap returns a copy of the state with the dual variables replaced
// by alpha — the caller's re-alignment of the previous values to a new
// row order — keeping the frozen scaler and threshold.
func (w *WarmState) Remap(alpha []float64) *WarmState {
	c := *w
	c.Alpha = alpha
	return &c
}

// maxWarmAge bounds how many consecutive fits may reuse one frozen
// scaler before a cold refit re-standardizes: the warm path trades a
// slightly stale standardization for an exactly-optimal seed, and the
// periodic refresh stops the staleness from compounding as the
// feature distribution drifts.
const maxWarmAge = 64

// Usable reports whether the state can seed a fit of n rows of the
// given dimension: the scaler must match the features, the dataset
// must not have changed size by more than ~25% since the scaler was
// fitted, and the scaler must not have been reused too many times.
func (w *WarmState) Usable(n, dim int) bool {
	return w != nil && len(w.Alpha) > 0 && w.scaler != nil &&
		len(w.scaler.Mean) == dim && w.age < maxWarmAge &&
		4*n >= 3*w.n && 4*n <= 5*w.n
}

// Solve fits like Train and additionally accepts and returns solver
// state, enabling warm-started incremental retraining: pass the state
// returned by a previous Solve over a prefix of the current rows (new
// rows implicitly start at α = 0) and SMO starts from that
// near-optimal point instead of from zero, which is what makes ExBox's
// after-every-batch refits cheap. A usable warm state also freezes the
// seed fit's feature standardization, so the kernel geometry of the
// shared rows is unchanged and the seed is exactly optimal for them;
// the standardization is refreshed by a cold fit when the dataset has
// grown past the state's horizon or the state has been reused
// maxWarmAge times.
//
// The seed is advisory. Its alphas may be shorter than x (extra rows
// start cold), they are clipped to [0, C], and the dual equality
// constraint Σ αᵢyᵢ = 0 is repaired by scaling down the heavier side,
// so a seed re-aligned from a slightly different dataset (rows
// evicted, labels replaced) still yields a feasible start. The seed
// must come from a fit with the same kernel, C and gamma to be a
// useful starting point; the solver converges to the optimum either
// way.
func Solve(cfg Config, x [][]float64, y []float64, warm *WarmState) (*Model, *WarmState, error) {
	return solveWithStats(cfg, x, y, warm, nil)
}

// solveWithStats is the Solve body; stats, when non-nil, collects
// per-phase counters and timings (see SolveDetailed).
func solveWithStats(cfg Config, x [][]float64, y []float64, warm *WarmState, stats *SolveStats) (*Model, *WarmState, error) {
	if len(x) == 0 {
		return nil, nil, errors.New("svm: no training data")
	}
	if len(x) != len(y) {
		return nil, nil, fmt.Errorf("svm: %d rows but %d labels", len(x), len(y))
	}
	if cfg.C <= 0 {
		return nil, nil, errors.New("svm: C must be positive")
	}
	dim := len(x[0])
	var pos, neg int
	for i, yi := range y {
		if len(x[i]) != dim {
			return nil, nil, fmt.Errorf("svm: row %d has dim %d, want %d", i, len(x[i]), dim)
		}
		switch yi {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, nil, fmt.Errorf("svm: label %v at row %d, want +1 or -1", yi, i)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, nil, ErrOneClass
	}

	gamma := cfg.Gamma
	if gamma <= 0 {
		gamma = 1 / float64(dim)
	}
	useWarm := warm.Usable(len(x), dim)
	var tInit time.Time
	if stats != nil {
		stats.Warm = useWarm
		tInit = time.Now()
	}
	var scaler *Scaler
	if useWarm {
		scaler = warm.scaler
	} else {
		scaler = FitScaler(x)
	}
	xs := scaler.TransformAll(x)

	tr := newTrainer(cfg, gamma, xs, y)
	tr.stats = stats
	if useWarm {
		tr.initWarm(warm)
	}
	if stats != nil {
		stats.InitSeconds = time.Since(tInit).Seconds()
	}
	tr.solve()

	if cfg.PruneTol > 0 {
		if pruned := pruneAlpha(tr.alpha, y, cfg.PruneTol, cfg.C); pruned > 0 && stats != nil {
			stats.Pruned = pruned
		}
	}

	// The trainer follows Platt's convention u(x) = Σ αᵢyᵢK(xᵢ,x) − b;
	// the model stores the negated threshold so Decision can add it.
	m := buildModel(cfg, gamma, scaler, xs, y, tr.alpha, -tr.b)
	next := &WarmState{
		Alpha:  append([]float64(nil), tr.alpha...),
		b:      tr.b,
		scaler: scaler,
		n:      len(x),
		age:    0,
	}
	if useWarm {
		next.n = warm.n // the scaler's horizon, not this fit's size
		next.age = warm.age + 1
	}
	return m, next, nil
}

// trainer holds the SMO working state.
type trainer struct {
	cfg   Config
	gamma float64
	x     [][]float64
	y     []float64
	n     int

	alpha []float64
	b     float64
	errs  []float64 // E_i = f(x_i) - y_i, maintained incrementally

	// active marks the solver's working set. Bound examples whose KKT
	// condition holds with margin are shrunk out of the sweeps (and the
	// error-update loop) and re-checked once at the end.
	active  []bool
	nActive int

	kern  func(a, b []float64) float64
	kdiag []float64
	// Full kernel matrix when n is small enough; otherwise rows are
	// computed on demand through kRow with a bounded LRU cache.
	kfull [][]float64
	lru   *rowLRU

	// stats, when non-nil, accumulates the per-phase accounting of
	// SolveDetailed. Every touch is nil-guarded so the plain Solve path
	// pays only untaken branches.
	stats *SolveStats
}

// kernelCacheLimit bounds the n for which a full n×n kernel matrix is
// precomputed (n=3000 → ~72 MB of float64, acceptable).
const kernelCacheLimit = 3000

// shrinkMargin is the multiple of Tol by which a bound example must
// satisfy its KKT condition before shrinking drops it from the working
// set; a conservative margin keeps the final unshrink pass cheap.
const shrinkMargin = 10

func newTrainer(cfg Config, gamma float64, x [][]float64, y []float64) *trainer {
	n := len(x)
	tr := &trainer{
		cfg:     cfg,
		gamma:   gamma,
		x:       x,
		y:       y,
		n:       n,
		alpha:   make([]float64, n),
		errs:    make([]float64, n),
		active:  make([]bool, n),
		nActive: n,
		kern:    kernelFunc(cfg.Kernel, gamma),
		kdiag:   make([]float64, n),
	}
	for i := range tr.errs {
		tr.errs[i] = -y[i] // f = 0 initially
		tr.active[i] = true
	}
	if n <= kernelCacheLimit {
		tr.kfull = make([][]float64, n)
	} else {
		rows := cfg.CacheRows
		if rows <= 0 {
			rows = 512
		}
		tr.lru = newRowLRU(rows)
	}
	for i := 0; i < n; i++ {
		tr.kdiag[i] = tr.kern(x[i], x[i])
	}
	return tr
}

// initWarm seeds the dual variables from a previous fit. The seed is
// clipped to the box [0, C], rebalanced so Σ αᵢyᵢ = 0 holds exactly
// (rows may have been evicted or relabeled since the seed was taken),
// and the error cache is rebuilt from the seeded support vectors and
// the seed's threshold so the first sweep sees a consistent state.
func (tr *trainer) initWarm(warm *WarmState) {
	c := tr.cfg.C
	m := len(warm.Alpha)
	if m > tr.n {
		m = tr.n
	}
	for i := 0; i < m; i++ {
		a := warm.Alpha[i]
		if a < 0 {
			a = 0
		} else if a > c {
			a = c
		}
		tr.alpha[i] = a
	}
	// Repair dual feasibility: scale down whichever class carries the
	// excess so the equality constraint holds before SMO starts (SMO
	// steps preserve it but never restore it).
	var pos, neg float64
	for i, a := range tr.alpha {
		if a == 0 {
			continue
		}
		if tr.y[i] > 0 {
			pos += a
		} else {
			neg += a
		}
	}
	switch s := pos - neg; {
	case s > 0 && pos > 0:
		f := (pos - s) / pos
		for i := range tr.alpha {
			if tr.y[i] > 0 {
				tr.alpha[i] *= f
			}
		}
	case s < 0 && neg > 0:
		f := (neg + s) / neg
		for i := range tr.alpha {
			if tr.y[i] < 0 {
				tr.alpha[i] *= f
			}
		}
	}

	var sv []int
	for i, a := range tr.alpha {
		if a > 1e-12 {
			sv = append(sv, i)
		}
	}
	if len(sv) == 0 {
		return // fully cold after repair: errs are already -y, b = 0
	}
	// The seed's threshold transfers directly: the frozen scaler keeps
	// the kernel geometry of the shared rows identical, so at the seed
	// optimum the same b makes the non-bound errors vanish.
	tr.b = warm.b
	// E_i = Σ_j α_j y_j K(i, j) − b − y_i over the seeded support
	// vectors; this O(n·|SV|) pass is the whole cost of warm-starting.
	for i := 0; i < tr.n; i++ {
		var g float64
		for _, j := range sv {
			g += tr.alpha[j] * tr.y[j] * tr.kern(tr.x[i], tr.x[j])
		}
		tr.errs[i] = g - tr.b - tr.y[i]
	}
}

// pruneAlpha zeroes dual variables at or below tol (Config.PruneTol)
// so buildModel drops their support vectors, then repairs the dual
// equality Σ αᵢyᵢ = 0 by scaling down whichever class carries the
// excess — the same repair initWarm applies to re-aligned seeds, so
// the pruned solution stays a feasible (slightly perturbed) dual
// point and can still seed the next warm fit. Variables at the box
// bound C are never pruned regardless of tol: they are the misfit
// examples, not numerical dust. Returns how many support vectors
// (α > the 1e-12 retention threshold) were dropped.
func pruneAlpha(alpha, y []float64, tol, c float64) int {
	pruned := 0
	for i, a := range alpha {
		if a > 0 && a <= tol && a < c {
			if a > 1e-12 {
				pruned++
			}
			alpha[i] = 0
		}
	}
	if pruned == 0 {
		return 0
	}
	var pos, neg float64
	for i, a := range alpha {
		if a == 0 {
			continue
		}
		if y[i] > 0 {
			pos += a
		} else {
			neg += a
		}
	}
	switch s := pos - neg; {
	case s > 0 && pos > 0:
		f := (pos - s) / pos
		for i := range alpha {
			if y[i] > 0 {
				alpha[i] *= f
			}
		}
	case s < 0 && neg > 0:
		f := (neg + s) / neg
		for i := range alpha {
			if y[i] < 0 {
				alpha[i] *= f
			}
		}
	}
	return pruned
}

// kRow returns row i of the kernel matrix, computing and caching it as
// needed.
func (tr *trainer) kRow(i int) []float64 {
	if tr.kfull != nil {
		if tr.kfull[i] == nil {
			tr.kfull[i] = tr.computeRow(i)
		} else if tr.stats != nil {
			tr.stats.CacheHits++
		}
		return tr.kfull[i]
	}
	if row, ok := tr.lru.Get(i); ok {
		if tr.stats != nil {
			tr.stats.CacheHits++
		}
		return row
	}
	row := tr.computeRow(i)
	tr.lru.Put(i, row)
	return row
}

// computeRow materializes kernel row i, charging the work to the
// kernel phase when accounting is on.
func (tr *trainer) computeRow(i int) []float64 {
	var t0 time.Time
	if tr.stats != nil {
		t0 = time.Now()
	}
	row := make([]float64, tr.n)
	for j := 0; j < tr.n; j++ {
		row[j] = tr.kern(tr.x[i], tr.x[j])
	}
	if tr.stats != nil {
		tr.stats.KernelRows++
		tr.stats.CacheMisses++
		tr.stats.KernelSeconds += time.Since(t0).Seconds()
	}
	return row
}

// solve runs the SMO main loop with working-set shrinking: alternate
// full passes over the active set with passes over its non-bound
// subset until a full pass makes no progress, dropping converged bound
// examples from the sweeps along the way; then restore the shrunk
// examples, rebuild their error terms, and verify the KKT conditions
// globally, resuming (without further shrinking) if the reduced
// problem's solution does not survive the full check.
func (tr *trainer) solve() {
	maxIter := tr.cfg.MaxIter
	if maxIter <= 0 {
		maxIter = 200 * tr.n
		if maxIter < 20000 {
			maxIter = 20000
		}
	}
	// Deterministic tie-breaking RNG for the second-choice heuristic
	// fallback; seeded from the problem size so training is
	// reproducible for a given dataset.
	rng := rand.New(rand.NewSource(int64(tr.n)*2654435761 + 1))

	iter := 0
	shrinking := true
	for {
		tr.sweeps(rng, &iter, maxIter, shrinking)
		if iter >= maxIter || tr.nActive == tr.n {
			if tr.stats != nil {
				tr.stats.Iters = iter
			}
			return
		}
		tr.unshrink()
		shrinking = false
	}
}

// sweeps is one convergence run over the current active set: Platt's
// alternation of full and non-bound-only passes until MaxPasses passes
// in a row make no progress.
func (tr *trainer) sweeps(rng *rand.Rand, iter *int, maxIter int, shrinking bool) {
	examineAll := true
	passesWithoutProgress := 0
	for passesWithoutProgress < tr.cfg.maxPasses() && *iter < maxIter {
		changed := 0
		for i := 0; i < tr.n && *iter < maxIter; i++ {
			if !tr.active[i] {
				continue
			}
			if !examineAll && !(tr.alpha[i] > 0 && tr.alpha[i] < tr.cfg.C) {
				continue
			}
			changed += tr.examine(i, rng)
			*iter++
		}
		if examineAll && shrinking {
			tr.shrink()
		}
		if examineAll {
			examineAll = false
		} else if changed == 0 {
			examineAll = true
		}
		if changed == 0 {
			passesWithoutProgress++
		} else {
			passesWithoutProgress = 0
		}
	}
}

// shrink drops bound examples whose KKT condition holds with a
// comfortable margin from the active set: SMO will not pick them again
// until the rest of the working set moves the boundary substantially,
// and the final unshrink pass re-checks them anyway. Their cached
// kernel rows are released so the LRU budget stays on live rows.
func (tr *trainer) shrink() {
	var t0 time.Time
	if tr.stats != nil {
		t0 = time.Now()
		defer func() { tr.stats.ShrinkSeconds += time.Since(t0).Seconds() }()
	}
	tol, c := tr.cfg.Tol, tr.cfg.C
	for i := 0; i < tr.n; i++ {
		if !tr.active[i] {
			continue
		}
		a := tr.alpha[i]
		if a > 0 && a < c {
			continue // non-bound examples always stay active
		}
		r := tr.errs[i] * tr.y[i]
		if (a <= 0 && r > shrinkMargin*tol) || (a >= c && r < -shrinkMargin*tol) {
			tr.active[i] = false
			tr.nActive--
			if tr.stats != nil {
				tr.stats.Shrunk++
			}
			if tr.lru != nil {
				tr.lru.Remove(i)
			}
		}
	}
}

// unshrink reactivates every shrunk example, rebuilding its error term
// exactly from the support vectors (errors of inactive examples go
// stale the moment they are shrunk: the incremental update loop skips
// them on purpose).
func (tr *trainer) unshrink() {
	var t0 time.Time
	if tr.stats != nil {
		t0 = time.Now()
		tr.stats.Unshrinks++
		defer func() { tr.stats.ShrinkSeconds += time.Since(t0).Seconds() }()
	}
	var sv []int
	for i, a := range tr.alpha {
		if a > 1e-12 {
			sv = append(sv, i)
		}
	}
	for i := 0; i < tr.n; i++ {
		if tr.active[i] {
			continue
		}
		var g float64
		for _, j := range sv {
			g += tr.alpha[j] * tr.y[j] * tr.kern(tr.x[i], tr.x[j])
		}
		tr.errs[i] = g - tr.b - tr.y[i]
		tr.active[i] = true
	}
	tr.nActive = tr.n
}

func (c Config) maxPasses() int {
	if c.MaxPasses <= 0 {
		return 2
	}
	return c.MaxPasses
}

// examine applies the KKT check to example i2 and, if violated, picks a
// partner i1 by the second-choice heuristic and attempts a step.
func (tr *trainer) examine(i2 int, rng *rand.Rand) int {
	y2 := tr.y[i2]
	a2 := tr.alpha[i2]
	e2 := tr.errs[i2]
	r2 := e2 * y2
	tol, c := tr.cfg.Tol, tr.cfg.C

	if (r2 < -tol && a2 < c) || (r2 > tol && a2 > 0) {
		// Heuristic 1: maximize |E1 - E2| over active non-bound alphas.
		best, bestGap := -1, -1.0
		for i := 0; i < tr.n; i++ {
			if tr.active[i] && tr.alpha[i] > 0 && tr.alpha[i] < c {
				gap := math.Abs(tr.errs[i] - e2)
				if gap > bestGap {
					bestGap, best = gap, i
				}
			}
		}
		if best >= 0 && tr.takeStep(best, i2) {
			return 1
		}
		// Heuristic 2: loop over active non-bound from a random start.
		start := rng.Intn(tr.n)
		for k := 0; k < tr.n; k++ {
			i1 := (start + k) % tr.n
			if tr.active[i1] && tr.alpha[i1] > 0 && tr.alpha[i1] < c {
				if tr.takeStep(i1, i2) {
					return 1
				}
			}
		}
		// Heuristic 3: loop over the whole active set.
		start = rng.Intn(tr.n)
		for k := 0; k < tr.n; k++ {
			i1 := (start + k) % tr.n
			if tr.active[i1] && tr.takeStep(i1, i2) {
				return 1
			}
		}
	}
	return 0
}

// takeStep jointly optimizes alpha[i1], alpha[i2]. Returns true when a
// meaningful update happened.
func (tr *trainer) takeStep(i1, i2 int) bool {
	if i1 == i2 {
		return false
	}
	a1, a2 := tr.alpha[i1], tr.alpha[i2]
	y1, y2 := tr.y[i1], tr.y[i2]
	e1, e2 := tr.errs[i1], tr.errs[i2]
	s := y1 * y2
	c := tr.cfg.C

	var lo, hi float64
	if s < 0 {
		lo = math.Max(0, a2-a1)
		hi = math.Min(c, c+a2-a1)
	} else {
		lo = math.Max(0, a1+a2-c)
		hi = math.Min(c, a1+a2)
	}
	if lo >= hi {
		return false
	}

	// Only the scalar K(i1,i2) is needed to evaluate the step; full
	// kernel rows are fetched after the step is accepted, so the many
	// rejected takeStep attempts of the second-choice heuristics cost
	// one kernel evaluation instead of a whole row.
	k11 := tr.kdiag[i1]
	k22 := tr.kdiag[i2]
	k12 := tr.kernAt(i1, i2)
	eta := k11 + k22 - 2*k12

	var a2new float64
	if eta > 0 {
		a2new = a2 + y2*(e1-e2)/eta
		if a2new < lo {
			a2new = lo
		} else if a2new > hi {
			a2new = hi
		}
	} else {
		// Degenerate curvature: evaluate the objective at both clip
		// ends and move to the better one.
		f1 := y1*e1 - a1*k11 - s*a2*k12
		f2 := y2*e2 - a2*k22 - s*a1*k12
		l1 := a1 + s*(a2-lo)
		h1 := a1 + s*(a2-hi)
		objLo := l1*f1 + lo*f2 + 0.5*l1*l1*k11 + 0.5*lo*lo*k22 + s*lo*l1*k12
		objHi := h1*f1 + hi*f2 + 0.5*h1*h1*k11 + 0.5*hi*hi*k22 + s*hi*h1*k12
		switch {
		case objLo < objHi-tr.cfg.Eps:
			a2new = lo
		case objLo > objHi+tr.cfg.Eps:
			a2new = hi
		default:
			a2new = a2
		}
	}
	if math.Abs(a2new-a2) < tr.cfg.Eps*(a2new+a2+tr.cfg.Eps) {
		return false
	}
	a1new := a1 + s*(a2-a2new)
	if a1new < 0 {
		a2new += s * a1new
		a1new = 0
	} else if a1new > c {
		a2new += s * (a1new - c)
		a1new = c
	}

	// Threshold update (Platt eq. 20-22).
	b1 := e1 + y1*(a1new-a1)*k11 + y2*(a2new-a2)*k12 + tr.b
	b2 := e2 + y1*(a1new-a1)*k12 + y2*(a2new-a2)*k22 + tr.b
	var bnew float64
	switch {
	case a1new > 0 && a1new < c:
		bnew = b1
	case a2new > 0 && a2new < c:
		bnew = b2
	default:
		bnew = (b1 + b2) / 2
	}
	deltaB := bnew - tr.b
	tr.b = bnew

	d1 := y1 * (a1new - a1)
	d2 := y2 * (a2new - a2)
	tr.alpha[i1] = a1new
	tr.alpha[i2] = a2new
	if tr.stats != nil {
		tr.stats.Steps++
	}
	// The incremental update is exact — row values are deterministic
	// whether cached or recomputed — so no per-step re-derivation of
	// E_{i1}, E_{i2} is needed. Shrunk examples are skipped; their
	// errors are rebuilt from scratch on unshrink.
	row1 := tr.kRow(i1)
	row2 := tr.kRow(i2)
	for i := 0; i < tr.n; i++ {
		if tr.active[i] {
			tr.errs[i] += d1*row1[i] + d2*row2[i] - deltaB
		}
	}
	return true
}

// kernAt returns the single kernel value K(i, j), served from an
// already-cached row when one exists but never materializing a new
// row.
func (tr *trainer) kernAt(i, j int) float64 {
	if tr.kfull != nil {
		if tr.kfull[i] != nil {
			return tr.kfull[i][j]
		}
		if tr.kfull[j] != nil {
			return tr.kfull[j][i]
		}
	} else if tr.lru != nil {
		if row, ok := tr.lru.Get(i); ok {
			return row[j]
		}
		if row, ok := tr.lru.Get(j); ok {
			return row[i]
		}
	}
	if tr.stats != nil {
		tr.stats.ScalarEvals++
	}
	return tr.kern(tr.x[i], tr.x[j])
}
