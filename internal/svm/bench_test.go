package svm

import (
	"math"
	"testing"

	"exbox/internal/mathx"
)

// Retraining benchmarks at ExBox's paper-realistic online batch sizes:
// a cell has n observed tuples, a batch of B new flows lands, and the
// Admittance Classifier refits on n+B rows. Cold is the pre-PR
// behavior (SMO from zero); Warm seeds the solver with the previous
// fit's dual variables. The CI perf gate (internal/tools/benchcheck)
// tracks both against BENCH_baseline.json.

// shellData builds a dim-d dataset with a spherical boundary —
// curved like the ExCR boundary, so the RBF kernel is doing real work.
func shellData(n, dim int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		var r float64
		if i%2 == 0 {
			r = 0.2 + rng.Float64()*0.8 // inside the shell
		} else {
			r = 2.0 + rng.Float64()*1.5 // outside
		}
		var norm float64
		for j := range row {
			row[j] = rng.NormFloat64()
			norm += row[j] * row[j]
		}
		norm = math.Sqrt(norm)
		for j := range row {
			row[j] = row[j] / norm * r
		}
		x = append(x, row)
		if i%2 == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y
}

func benchRetrain(b *testing.B, n, batch int, warmStart bool) {
	b.Helper()
	x, y := shellData(n+batch, 5, 41)
	cfg := DefaultConfig()
	_, warm, err := Solve(cfg, x[:n], y[:n], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var seed *WarmState
		if warmStart {
			seed = warm
		}
		if _, _, err := Solve(cfg, x, y, seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrainCold(b *testing.B)   { benchRetrain(b, 500, 10, false) }
func BenchmarkRetrainWarm(b *testing.B)   { benchRetrain(b, 500, 10, true) }
func BenchmarkRetrainCold1k(b *testing.B) { benchRetrain(b, 1000, 20, false) }
func BenchmarkRetrainWarm1k(b *testing.B) { benchRetrain(b, 1000, 20, true) }
