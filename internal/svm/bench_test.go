package svm

import (
	"math"
	"testing"

	"exbox/internal/mathx"
)

// Retraining benchmarks at ExBox's paper-realistic online batch sizes:
// a cell has n observed tuples, a batch of B new flows lands, and the
// Admittance Classifier refits on n+B rows. Cold is the pre-PR
// behavior (SMO from zero); Warm seeds the solver with the previous
// fit's dual variables. The CI perf gate (internal/tools/benchcheck)
// tracks both against BENCH_baseline.json.

// shellData builds a dim-d dataset with a spherical boundary —
// curved like the ExCR boundary, so the RBF kernel is doing real work.
func shellData(n, dim int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		var r float64
		if i%2 == 0 {
			r = 0.2 + rng.Float64()*0.8 // inside the shell
		} else {
			r = 2.0 + rng.Float64()*1.5 // outside
		}
		var norm float64
		for j := range row {
			row[j] = rng.NormFloat64()
			norm += row[j] * row[j]
		}
		norm = math.Sqrt(norm)
		for j := range row {
			row[j] = row[j] / norm * r
		}
		x = append(x, row)
		if i%2 == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y
}

func benchRetrain(b *testing.B, n, batch int, warmStart bool) {
	b.Helper()
	x, y := shellData(n+batch, 5, 41)
	cfg := DefaultConfig()
	_, warm, err := Solve(cfg, x[:n], y[:n], nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var seed *WarmState
		if warmStart {
			seed = warm
		}
		if _, _, err := Solve(cfg, x, y, seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRetrainCold(b *testing.B)   { benchRetrain(b, 500, 10, false) }
func BenchmarkRetrainWarm(b *testing.B)   { benchRetrain(b, 500, 10, true) }
func BenchmarkRetrainCold1k(b *testing.B) { benchRetrain(b, 1000, 20, false) }
func BenchmarkRetrainWarm1k(b *testing.B) { benchRetrain(b, 1000, 20, true) }

// Inference benchmarks: the per-arrival cost every steady-state ExBox
// workflow pays. The RBF model is trained on heavily overlapping
// clouds so it retains well over 200 support vectors — the regime
// where the contiguous slab beats pointer-chased rows. The *Ref
// variant runs the pre-refactor scalar path on the same model, so the
// committed BENCH_pr4.json records before/after on one machine.

func benchDecisionModel(b *testing.B, kernel KernelKind) (*Model, []float64) {
	b.Helper()
	x, y := overlapData(600, 5, 41)
	cfg := DefaultConfig()
	cfg.Kernel = kernel
	m, err := Train(cfg, x, y)
	if err != nil {
		b.Fatal(err)
	}
	if kernel == RBF && m.NumSV() < 200 {
		b.Fatalf("RBF bench model has %d SVs, want >= 200", m.NumSV())
	}
	return m, x[1]
}

func BenchmarkDecisionLinear(b *testing.B) {
	m, row := benchDecisionModel(b, Linear)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Decision(row)
	}
	_ = sink
}

func BenchmarkDecisionRBF(b *testing.B) {
	m, row := benchDecisionModel(b, RBF)
	scratch := make([]float64, m.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.DecisionInto(scratch, row)
	}
	_ = sink
}

// BenchmarkDecisionRFF scores the same heavy RBF model through the
// random-Fourier-feature tier: the sub-microsecond budget path the CI
// gate pins (ns/op and the 0 allocs/op contract).
func BenchmarkDecisionRFF(b *testing.B) {
	x, y := overlapData(600, 5, 41)
	cfg := DefaultConfig()
	cfg.RFF = true
	m, err := Train(cfg, x, y)
	if err != nil {
		b.Fatal(err)
	}
	if !m.HasRFF() {
		b.Fatal("RFF tier not built")
	}
	if m.NumSV() < 200 {
		b.Fatalf("RFF bench model has %d SVs, want >= 200", m.NumSV())
	}
	row := x[1]
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.DecisionRFF(row)
	}
	_ = sink
}

func BenchmarkDecisionRBFRef(b *testing.B) {
	m, row := benchDecisionModel(b, RBF)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.decisionScalar(row)
	}
	_ = sink
}

// BenchmarkDecisionBatchRBF scores 16 rows per op in one slab pass —
// the Reevaluate/SelectNetwork shape. ns/op is for the whole batch.
func BenchmarkDecisionBatchRBF(b *testing.B) {
	m, _ := benchDecisionModel(b, RBF)
	rows := probeRows(16, 5, 3)
	dst := make([]float64, len(rows))
	scratch := make([]float64, m.BatchScratch(len(rows)))
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		out := m.DecisionBatch(dst, rows, scratch)
		sink += out[0]
	}
	_ = sink
}
