package svm

import "time"

// SolveStats reports how one Solve call spent its effort, split the
// way the solver actually works: seeding (scaler + kdiag + warm error
// rebuild), kernel-row computation, and shrinking bookkeeping. The
// classifier's model-health layer records one of these per retrain so
// an operator can see where a slow refit went and whether the kernel
// cache is earning its memory.
//
// Counters are exact; the phase timings are wall-clock and only
// meaningful relative to each other (TotalSeconds includes solver time
// not attributed to a phase).
type SolveStats struct {
	// Warm reports whether the fit was seeded from a usable WarmState.
	Warm bool `json:"warm"`
	// Rows is the training-set size.
	Rows int `json:"rows"`
	// Iters is the number of examine steps the SMO loop ran.
	Iters int `json:"iters"`
	// Steps is the number of accepted takeStep updates.
	Steps int `json:"steps"`
	// KernelRows counts full kernel rows computed (cache misses plus
	// first touches); CacheHits/CacheMisses split the row lookups.
	KernelRows  int `json:"kernel_rows"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// ScalarEvals counts single kernel evaluations served outside any
	// cached row (the kernAt fallback on rejected steps).
	ScalarEvals int `json:"scalar_evals"`
	// Shrunk is how many examples working-set shrinking dropped;
	// Unshrinks is how many global restore-and-recheck passes ran.
	Shrunk    int `json:"shrunk"`
	Unshrinks int `json:"unshrinks"`
	// Pruned is how many support vectors post-solve reduced-set
	// selection dropped (Config.PruneTol; 0 when pruning is off).
	Pruned int `json:"pruned"`

	// Phase wall-clock split, in seconds.
	InitSeconds   float64 `json:"init_seconds"`
	KernelSeconds float64 `json:"kernel_seconds"`
	ShrinkSeconds float64 `json:"shrink_seconds"`
	TotalSeconds  float64 `json:"total_seconds"`
}

// CacheHitRate returns the fraction of kernel-row lookups served from
// cache (full matrix or LRU), or 0 when there were none.
func (s *SolveStats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// SolveDetailed is Solve with per-phase accounting: when stats is
// non-nil it is overwritten with the counters and timings of this fit.
// The solve itself is bit-identical to Solve — the counters are plain
// increments and the timers wrap whole phases, so passing nil (what
// Solve does) keeps the hot loops free of clock calls.
func SolveDetailed(cfg Config, x [][]float64, y []float64, warm *WarmState, stats *SolveStats) (*Model, *WarmState, error) {
	if stats != nil {
		*stats = SolveStats{Rows: len(x)}
	}
	t0 := time.Now()
	m, next, err := solveWithStats(cfg, x, y, warm, stats)
	if stats != nil {
		stats.TotalSeconds = time.Since(t0).Seconds()
	}
	return m, next, err
}
