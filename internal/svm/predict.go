package svm

import (
	"fmt"
	"math"

	"exbox/internal/mathx"
)

// This file is the inference fast path: the representation a trained
// Model keeps for scoring, built once at construction, and the
// zero-allocation Decision / DecisionInto / DecisionBatch entry points
// every steady-state ExBox workflow (admission, network selection,
// re-evaluation) runs on.
//
// The layout follows the liblinear/libsvm playbook: collapse whatever
// can be precomputed into contiguous memory so a decision is fused
// arithmetic over flat slices, never pointer chasing or per-call
// closure construction.
//
//   - Linear kernel: the feature standardization is folded into the
//     collapsed weight vector at construction, so a decision is one
//     dot product over the *raw* feature row:
//
//       f(x) = Σ_j w_j·(x_j−μ_j)/σ_j + b = Σ_j (w_j/σ_j)·x_j + b′
//       with b′ = b − Σ_j w_j·μ_j/σ_j.
//
//   - RBF kernel: the support vectors are standardized once and stored
//     in a single row-major slab (stride dim) with their squared norms
//     precomputed, so a decision standardizes the sample z once and
//     evaluates K(z,sv) = exp(−γ·(‖z‖²+‖sv‖²−2·z·sv)) streaming over
//     the slab — one pass of fused dot products over contiguous
//     memory.
//
// Scratch ownership: DecisionInto and DecisionBatch borrow the
// caller's scratch for the duration of the call only; the model never
// retains dst or scratch, so callers may pool and reuse them freely
// across calls and models. The returned slice of DecisionBatch aliases
// dst (or its reallocation) and is owned by the caller.

// buildModel assembles the inference representation from a solved
// dual: support vectors with alpha above the retention threshold are
// packed into the slab (RBF) or collapsed into scaler-folded weights
// (linear). xs holds the standardized training rows.
func buildModel(cfg Config, gamma float64, scaler *Scaler, xs [][]float64, y, alpha []float64, b float64) *Model {
	dim := 0
	if len(xs) > 0 {
		dim = len(xs[0])
	}
	m := &Model{cfg: cfg, gamma: gamma, scaler: scaler, dim: dim, b: b}
	var svIdx []int
	for i, a := range alpha {
		if a > 1e-12 {
			svIdx = append(svIdx, i)
			m.svCoef = append(m.svCoef, a*y[i])
		}
	}
	switch cfg.Kernel {
	case Linear:
		// Collapse the support vectors into one weight vector in
		// standardized space, then fold the standardization into it so
		// Decision works on raw rows.
		w := make([]float64, dim)
		for k, i := range svIdx {
			mathx.AXPY(m.svCoef[k], xs[i], w)
		}
		m.wLinear = w
		m.wFold = make([]float64, dim)
		m.bFold = b
		for j, wj := range w {
			m.wFold[j] = wj / scaler.Std[j]
			m.bFold -= wj * scaler.Mean[j] / scaler.Std[j]
		}
	default: // RBF
		m.svSlab = make([]float64, len(svIdx)*dim)
		m.svNorm = make([]float64, len(svIdx))
		for k, i := range svIdx {
			row := m.svSlab[k*dim : (k+1)*dim]
			copy(row, xs[i])
			m.svNorm[k] = mathx.Dot(row, row)
		}
		// The RFF tier fits its readout against this model's own exact
		// decisions on the training rows, so it is built last.
		if cfg.RFF && len(m.svCoef) > 0 {
			m.rff = buildRFF(cfg, m, xs)
		}
	}
	return m
}

// NumSV returns the number of support vectors retained by the model.
func (m *Model) NumSV() int { return len(m.svCoef) }

// Dim returns the feature dimension the model was trained on; scratch
// passed to DecisionInto must be at least this long.
func (m *Model) Dim() int { return m.dim }

// BatchScratch returns the scratch length DecisionBatch needs to score
// n rows without allocating.
func (m *Model) BatchScratch(n int) int { return n * (m.dim + 1) }

// Decision returns the signed distance-like score f(x) of the sample:
// positive inside the admissible half-space, negative outside. ExBox's
// network selection uses the magnitude as "how far inside the capacity
// region" a candidate placement sits.
//
// For the linear kernel this is allocation-free (the scaler is folded
// into the weights); for RBF it allocates one scratch row per call —
// steady-state callers should hold scratch and use DecisionInto.
func (m *Model) Decision(row []float64) float64 {
	if m.wFold != nil {
		return mathx.Dot(m.wFold, row) + m.bFold
	}
	return m.DecisionInto(make([]float64, m.dim), row)
}

// DecisionInto is Decision with caller-provided scratch: dst must have
// length at least Dim() and holds the standardized sample during the
// call. The model does not retain dst. With adequate scratch the call
// performs no allocation.
func (m *Model) DecisionInto(dst, row []float64) float64 {
	if m.wFold != nil {
		return mathx.Dot(m.wFold, row) + m.bFold
	}
	if len(row) != m.dim {
		panic(fmt.Sprintf("svm: row dim %d, model dim %d", len(row), m.dim))
	}
	if len(dst) < m.dim {
		panic(fmt.Sprintf("svm: scratch len %d, need %d", len(dst), m.dim))
	}
	z := dst[:m.dim]
	var zn float64
	for j, v := range row {
		zj := (v - m.scaler.Mean[j]) / m.scaler.Std[j]
		z[j] = zj
		zn += zj * zj
	}
	return m.rbfOver(z, zn)
}

// rbfOver evaluates the RBF decision for one standardized sample z
// with squared norm zn, streaming once over the support-vector slab.
func (m *Model) rbfOver(z []float64, zn float64) float64 {
	s := m.b
	g := m.gamma
	for i, c := range m.svCoef {
		sv := m.svSlab[i*m.dim : (i+1)*m.dim]
		var dot float64
		for j, zj := range z {
			dot += zj * sv[j]
		}
		s += c * math.Exp(-g*(zn+m.svNorm[i]-2*dot))
	}
	return s
}

// DecisionBatch scores every row, writing the decisions into dst
// (reallocated when too small) and using scratch as workspace. Pass
// dst with capacity len(rows) and scratch with length BatchScratch
// (len(rows)) to make the call allocation-free. For the RBF kernel the
// whole batch is scored in one pass over the support-vector slab, so
// each support vector is loaded once for all rows. Returns the scores,
// aliased to dst when it was large enough.
func (m *Model) DecisionBatch(dst []float64, rows [][]float64, scratch []float64) []float64 {
	n := len(rows)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if m.wFold != nil {
		for r, row := range rows {
			dst[r] = mathx.Dot(m.wFold, row) + m.bFold
		}
		return dst
	}
	if need := n * (m.dim + 1); len(scratch) < need {
		scratch = make([]float64, need)
	}
	z := scratch[: n*m.dim : n*m.dim]
	zn := scratch[n*m.dim : n*m.dim+n]
	for r, row := range rows {
		if len(row) != m.dim {
			panic(fmt.Sprintf("svm: row %d dim %d, model dim %d", r, len(row), m.dim))
		}
		zr := z[r*m.dim : (r+1)*m.dim]
		var norm float64
		for j, v := range row {
			zj := (v - m.scaler.Mean[j]) / m.scaler.Std[j]
			zr[j] = zj
			norm += zj * zj
		}
		zn[r] = norm
		dst[r] = m.b
	}
	g := m.gamma
	for i, c := range m.svCoef {
		sv := m.svSlab[i*m.dim : (i+1)*m.dim]
		norm := m.svNorm[i]
		for r := 0; r < n; r++ {
			zr := z[r*m.dim : (r+1)*m.dim]
			var dot float64
			for j, zj := range zr {
				dot += zj * sv[j]
			}
			dst[r] += c * math.Exp(-g*(zn[r]+norm-2*dot))
		}
	}
	return dst
}

// Predict returns +1 or -1 for the sample.
func (m *Model) Predict(row []float64) float64 {
	if m.Decision(row) >= 0 {
		return 1
	}
	return -1
}

// decisionScalar is the pre-refactor prediction path — standardize a
// copy of the row, construct the kernel closure, walk the support
// vectors one at a time — kept verbatim as the oracle the equivalence
// tests pin the fast path against.
func (m *Model) decisionScalar(row []float64) float64 {
	z := m.scaler.Transform(row)
	if m.wLinear != nil {
		var s float64
		for j, v := range z {
			s += m.wLinear[j] * v
		}
		return s + m.b
	}
	k := kernelFunc(m.cfg.Kernel, m.gamma)
	var s float64
	for i, c := range m.svCoef {
		s += c * k(m.svSlab[i*m.dim:(i+1)*m.dim], z)
	}
	return s + m.b
}
