package svm

import (
	"fmt"
	"math"

	"exbox/internal/mathx"
)

// This file is the inference fast path: the representation a trained
// Model keeps for scoring, built once at construction, and the
// zero-allocation Decision / DecisionInto / DecisionBatch entry points
// every steady-state ExBox workflow (admission, network selection,
// re-evaluation) runs on.
//
// The layout follows the liblinear/libsvm playbook: collapse whatever
// can be precomputed into contiguous memory so a decision is fused
// arithmetic over flat slices, never pointer chasing or per-call
// closure construction.
//
//   - Linear kernel: the feature standardization is folded into the
//     collapsed weight vector at construction, so a decision is one
//     dot product over the *raw* feature row:
//
//       f(x) = Σ_j w_j·(x_j−μ_j)/σ_j + b = Σ_j (w_j/σ_j)·x_j + b′
//       with b′ = b − Σ_j w_j·μ_j/σ_j.
//
//   - RBF kernel: the support vectors are standardized once and stored
//     in a single row-major slab (stride dim) with their squared norms
//     precomputed, so a decision standardizes the sample z once and
//     evaluates K(z,sv) = exp(−γ·(‖z‖²+‖sv‖²−2·z·sv)) streaming over
//     the slab — one pass of fused dot products over contiguous
//     memory.
//
// Scratch ownership: DecisionInto and DecisionBatch borrow the
// caller's scratch for the duration of the call only; the model never
// retains dst or scratch, so callers may pool and reuse them freely
// across calls and models. The returned slice of DecisionBatch aliases
// dst (or its reallocation) and is owned by the caller.

// buildModel assembles the inference representation from a solved
// dual: support vectors with alpha above the retention threshold are
// packed into the slab (RBF) or collapsed into scaler-folded weights
// (linear). xs holds the standardized training rows.
func buildModel(cfg Config, gamma float64, scaler *Scaler, xs [][]float64, y, alpha []float64, b float64) *Model {
	dim := 0
	if len(xs) > 0 {
		dim = len(xs[0])
	}
	m := &Model{cfg: cfg, gamma: gamma, scaler: scaler, dim: dim, b: b}
	var svIdx []int
	for i, a := range alpha {
		if a > 1e-12 {
			svIdx = append(svIdx, i)
			m.svCoef = append(m.svCoef, a*y[i])
		}
	}
	switch cfg.Kernel {
	case Linear:
		// Collapse the support vectors into one weight vector in
		// standardized space, then fold the standardization into it so
		// Decision works on raw rows.
		w := make([]float64, dim)
		for k, i := range svIdx {
			mathx.AXPY(m.svCoef[k], xs[i], w)
		}
		m.wLinear = w
		m.wFold = make([]float64, dim)
		m.bFold = b
		for j, wj := range w {
			m.wFold[j] = wj / scaler.Std[j]
			m.bFold -= wj * scaler.Mean[j] / scaler.Std[j]
		}
	default: // RBF
		m.svSlab = make([]float64, len(svIdx)*dim)
		m.svNorm = make([]float64, len(svIdx))
		for k, i := range svIdx {
			row := m.svSlab[k*dim : (k+1)*dim]
			copy(row, xs[i])
			m.svNorm[k] = mathx.Dot(row, row)
		}
		// The RFF tier fits its readout against this model's own exact
		// decisions on the training rows, so it is built before the
		// quantized slab switches the decision paths over.
		if cfg.RFF && len(m.svCoef) > 0 {
			m.rff = buildRFF(cfg, m, xs)
		}
		if cfg.QuantizeSVs {
			m.buildQuantSlab()
		}
	}
	return m
}

// buildQuantSlab derives the int16 representation from the exact slab:
// one step size per feature (max|sv_j| across support vectors divided
// into the int16 range) and each coordinate rounded to its nearest
// step. The dequantized norms are precomputed so scoring needs only
// the scaled-sample dot against the int16 rows. The derivation is a
// pure function of the exact slab — same slab in, bit-identical
// quantized slab out — which is what lets ModelFromState rebuild it
// instead of serializing it.
func (m *Model) buildQuantSlab() {
	nsv, dim := len(m.svCoef), m.dim
	if nsv == 0 || dim == 0 {
		return
	}
	m.qScale = make([]float64, dim)
	for j := 0; j < dim; j++ {
		var maxAbs float64
		for i := 0; i < nsv; i++ {
			if v := math.Abs(m.svSlab[i*dim+j]); v > maxAbs {
				maxAbs = v
			}
		}
		// A feature that is zero across every support vector gets step
		// 0: its quantized coordinates and the scaled sample coordinate
		// are both exactly 0, matching the exact slab.
		m.qScale[j] = maxAbs / 32767
	}
	m.qSlab = make([]int16, nsv*dim)
	m.qNorm = make([]float64, nsv)
	for i := 0; i < nsv; i++ {
		var norm float64
		for j := 0; j < dim; j++ {
			step := m.qScale[j]
			var q float64
			if step > 0 {
				q = math.Round(m.svSlab[i*dim+j] / step)
				if q > 32767 {
					q = 32767
				} else if q < -32767 {
					q = -32767
				}
			}
			m.qSlab[i*dim+j] = int16(q)
			dq := q * step
			norm += dq * dq
		}
		m.qNorm[i] = norm
	}
}

// NumSV returns the number of support vectors retained by the model.
func (m *Model) NumSV() int { return len(m.svCoef) }

// Dim returns the feature dimension the model was trained on; scratch
// passed to DecisionInto must be at least this long.
func (m *Model) Dim() int { return m.dim }

// BatchScratch returns the scratch length DecisionBatch needs to score
// n rows without allocating.
func (m *Model) BatchScratch(n int) int { return n * (m.dim + 1) }

// Decision returns the signed distance-like score f(x) of the sample:
// positive inside the admissible half-space, negative outside. ExBox's
// network selection uses the magnitude as "how far inside the capacity
// region" a candidate placement sits.
//
// For the linear kernel this is allocation-free (the scaler is folded
// into the weights); for RBF it allocates one scratch row per call —
// steady-state callers should hold scratch and use DecisionInto.
func (m *Model) Decision(row []float64) float64 {
	if m.wFold != nil {
		return mathx.Dot(m.wFold, row) + m.bFold
	}
	return m.DecisionInto(make([]float64, m.dim), row)
}

// DecisionInto is Decision with caller-provided scratch: dst must have
// length at least Dim() and holds the standardized sample during the
// call. The model does not retain dst. With adequate scratch the call
// performs no allocation.
func (m *Model) DecisionInto(dst, row []float64) float64 {
	if m.wFold != nil {
		return mathx.Dot(m.wFold, row) + m.bFold
	}
	if len(row) != m.dim {
		panic(fmt.Sprintf("svm: row dim %d, model dim %d", len(row), m.dim))
	}
	if len(dst) < m.dim {
		panic(fmt.Sprintf("svm: scratch len %d, need %d", len(dst), m.dim))
	}
	z := dst[:m.dim]
	var zn float64
	for j, v := range row {
		zj := (v - m.scaler.Mean[j]) / m.scaler.Std[j]
		z[j] = zj
		zn += zj * zj
	}
	if m.qSlab != nil {
		return m.rbfQuantOver(z, zn)
	}
	return m.rbfOver(z, zn)
}

// rbfOver evaluates the RBF decision for one standardized sample z
// with squared norm zn, streaming once over the support-vector slab.
func (m *Model) rbfOver(z []float64, zn float64) float64 {
	s := m.b
	g := m.gamma
	for i, c := range m.svCoef {
		sv := m.svSlab[i*m.dim : (i+1)*m.dim]
		var dot float64
		for j, zj := range z {
			dot += zj * sv[j]
		}
		s += c * math.Exp(-g*(zn+m.svNorm[i]-2*dot))
	}
	return s
}

// rbfQuantOver is rbfOver against the int16 slab. The kernel argument
// uses z·svq = Σ_j (z_j·step_j)·q_ij, so z is rescaled once (in place
// — it is caller scratch and already consumed into zn) and the slab
// walk is a float64 accumulation over int16 loads: the same arithmetic
// as the exact path with the support vectors replaced by their
// dequantized values.
func (m *Model) rbfQuantOver(z []float64, zn float64) float64 {
	for j := range z {
		z[j] *= m.qScale[j]
	}
	s := m.b
	g := m.gamma
	dim := m.dim
	for i, c := range m.svCoef {
		q := m.qSlab[i*dim : (i+1)*dim]
		var dot float64
		for j, zj := range z {
			dot += zj * float64(q[j])
		}
		s += c * math.Exp(-g*(zn+m.qNorm[i]-2*dot))
	}
	return s
}

// DecisionBatch scores every row, writing the decisions into dst
// (reallocated when too small) and using scratch as workspace. Pass
// dst with capacity len(rows) and scratch with length BatchScratch
// (len(rows)) to make the call allocation-free. For the RBF kernel the
// whole batch is scored in one pass over the support-vector slab, so
// each support vector is loaded once for all rows. Returns the scores,
// aliased to dst when it was large enough.
func (m *Model) DecisionBatch(dst []float64, rows [][]float64, scratch []float64) []float64 {
	n := len(rows)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	if m.wFold != nil {
		for r, row := range rows {
			dst[r] = mathx.Dot(m.wFold, row) + m.bFold
		}
		return dst
	}
	if need := n * (m.dim + 1); len(scratch) < need {
		scratch = make([]float64, need)
	}
	z := scratch[: n*m.dim : n*m.dim]
	zn := scratch[n*m.dim : n*m.dim+n]
	for r, row := range rows {
		if len(row) != m.dim {
			panic(fmt.Sprintf("svm: row %d dim %d, model dim %d", r, len(row), m.dim))
		}
		zr := z[r*m.dim : (r+1)*m.dim]
		var norm float64
		for j, v := range row {
			zj := (v - m.scaler.Mean[j]) / m.scaler.Std[j]
			zr[j] = zj
			norm += zj * zj
		}
		zn[r] = norm
		dst[r] = m.b
	}
	g := m.gamma
	if m.qSlab != nil {
		// Quantized batch: rescale every standardized row by the
		// per-feature step once, then stream the whole batch over the
		// int16 slab — each support-vector row is ~4× smaller, so far
		// more of the slab survives in cache between rows.
		for r := 0; r < n; r++ {
			zr := z[r*m.dim : (r+1)*m.dim]
			for j := range zr {
				zr[j] *= m.qScale[j]
			}
		}
		for i, c := range m.svCoef {
			q := m.qSlab[i*m.dim : (i+1)*m.dim]
			norm := m.qNorm[i]
			for r := 0; r < n; r++ {
				zr := z[r*m.dim : (r+1)*m.dim]
				var dot float64
				for j, zj := range zr {
					dot += zj * float64(q[j])
				}
				dst[r] += c * math.Exp(-g*(zn[r]+norm-2*dot))
			}
		}
		return dst
	}
	for i, c := range m.svCoef {
		sv := m.svSlab[i*m.dim : (i+1)*m.dim]
		norm := m.svNorm[i]
		for r := 0; r < n; r++ {
			zr := z[r*m.dim : (r+1)*m.dim]
			var dot float64
			for j, zj := range zr {
				dot += zj * sv[j]
			}
			dst[r] += c * math.Exp(-g*(zn[r]+norm-2*dot))
		}
	}
	return dst
}

// Predict returns +1 or -1 for the sample.
func (m *Model) Predict(row []float64) float64 {
	if m.Decision(row) >= 0 {
		return 1
	}
	return -1
}

// decisionScalar is the pre-refactor prediction path — standardize a
// copy of the row, construct the kernel closure, walk the support
// vectors one at a time — kept verbatim as the oracle the equivalence
// tests pin the fast path against.
func (m *Model) decisionScalar(row []float64) float64 {
	z := m.scaler.Transform(row)
	if m.wLinear != nil {
		var s float64
		for j, v := range z {
			s += m.wLinear[j] * v
		}
		return s + m.b
	}
	k := kernelFunc(m.cfg.Kernel, m.gamma)
	var s float64
	for i, c := range m.svCoef {
		s += c * k(m.svSlab[i*m.dim:(i+1)*m.dim], z)
	}
	return s + m.b
}
