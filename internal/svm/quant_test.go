package svm

import (
	"math"
	"testing"
)

// trainQuantPair fits the same data twice — once with QuantizeSVs off,
// once on — so tests can compare the production paths of both against
// each other and against the scalar oracle.
func trainQuantPair(t testing.TB, n, dim int, seed int64) (exact, quant *Model) {
	x, y := overlapData(n, dim, seed)
	cfg := DefaultConfig()
	cfg.Kernel = RBF
	exact, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	cfg.QuantizeSVs = true
	quant, err = Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if quant.qSlab == nil {
		t.Fatal("QuantizeSVs set but no quantized slab built")
	}
	if exact.qSlab != nil {
		t.Fatal("quantized slab built with QuantizeSVs off")
	}
	return exact, quant
}

// TestQuantOffBitIdentical pins that the flag changes nothing but the
// inference representation: the solver ignores QuantizeSVs, so the
// exact slab, coefficients and threshold of the quantized model are
// bitwise equal to the model trained with the flag off, and scoring
// both through the same (scalar-oracle) algorithm is bit-identical.
// With the flag off no quantized slab exists at all, so DecisionInto
// takes exactly the pre-quantization code path.
func TestQuantOffBitIdentical(t *testing.T) {
	for _, dim := range []int{2, 5, 9} {
		exact, quant := trainQuantPair(t, 150, dim, int64(dim)*31)
		if exact.NumSV() != quant.NumSV() {
			t.Fatalf("dim=%d: SV count diverged %d vs %d", dim, exact.NumSV(), quant.NumSV())
		}
		if exact.b != quant.b {
			t.Fatalf("dim=%d: threshold diverged", dim)
		}
		for i := range exact.svSlab {
			if exact.svSlab[i] != quant.svSlab[i] {
				t.Fatalf("dim=%d: exact slab diverged at %d", dim, i)
			}
		}
		for i := range exact.svCoef {
			if exact.svCoef[i] != quant.svCoef[i] {
				t.Fatalf("dim=%d: coefficients diverged at %d", dim, i)
			}
		}
		for i, row := range probeRows(40, dim, int64(dim)) {
			e := exact.decisionScalar(row)
			q := quant.decisionScalar(row)
			if e != q {
				t.Fatalf("dim=%d row %d: oracle %v vs quant-model oracle %v — exact representation not bit-identical", dim, i, e, q)
			}
		}
	}
}

// TestQuantSignAgreement is the PR 4/6-style oracle pinning for the
// int16 slab: on fitted models the quantized decision must agree in
// sign with the exact decision on every probe whose exact margin isn't
// hairline, and the value must track the exact one closely (int16
// resolution is ~3e-5 of the per-feature range, which perturbs the
// kernel sum far below these bounds).
func TestQuantSignAgreement(t *testing.T) {
	for _, dim := range []int{2, 5, 9} {
		for seed := int64(1); seed <= 3; seed++ {
			_, quant := trainQuantPair(t, 150, dim, seed*100+int64(dim))
			scratch := make([]float64, dim)
			rows := probeRows(60, dim, seed)
			for i, row := range rows {
				e := quant.decisionScalar(row)
				q := quant.DecisionInto(scratch, row)
				if math.Abs(q-e) > 1e-3*(1+math.Abs(e)) {
					t.Errorf("dim=%d seed=%d row %d: quantized %v drifted from exact %v", dim, seed, i, q, e)
				}
				if math.Abs(e) > 1e-2 && math.Signbit(q) != math.Signbit(e) {
					t.Errorf("dim=%d seed=%d row %d: sign flip — quantized %v, exact %v", dim, seed, i, q, e)
				}
			}
			// Batch path must be bit-identical to the scalar quantized path.
			dst := make([]float64, len(rows))
			batch := quant.DecisionBatch(dst, rows, make([]float64, quant.BatchScratch(len(rows))))
			for i, row := range rows {
				if got := quant.DecisionInto(scratch, row); batch[i] != got {
					t.Fatalf("dim=%d seed=%d row %d: DecisionBatch %v != DecisionInto %v", dim, seed, i, batch[i], got)
				}
			}
		}
	}
}

// TestQuantStateRoundTrip checks the rebuild-on-import contract: a
// quantized model exported through State and restored with
// ModelFromState re-derives the identical int16 slab from the verbatim
// exact slab, so restored decisions are bit-equal.
func TestQuantStateRoundTrip(t *testing.T) {
	_, quant := trainQuantPair(t, 150, 5, 77)
	got, err := ModelFromState(quant.State())
	if err != nil {
		t.Fatal(err)
	}
	if got.qSlab == nil {
		t.Fatal("restored model lost the quantized slab")
	}
	for i, v := range quant.qSlab {
		if got.qSlab[i] != v {
			t.Fatalf("qSlab[%d] = %d, want %d — rebuild not deterministic", i, got.qSlab[i], v)
		}
	}
	scratch := make([]float64, 5)
	for i, row := range probeRows(30, 5, 9) {
		if a, b := quant.DecisionInto(scratch, row), got.DecisionInto(scratch, row); a != b {
			t.Fatalf("row %d: decision %v != restored %v", i, a, b)
		}
	}
}

// TestQuantZeroFeature covers the step-0 corner: a feature that is
// constant across the training set standardizes to 0 on every support
// vector, so its quantization step is 0 and both representations agree
// exactly on that coordinate.
func TestQuantZeroFeature(t *testing.T) {
	x, y := overlapData(120, 4, 5)
	for _, row := range x {
		row[2] = 3.25 // constant feature
	}
	cfg := DefaultConfig()
	cfg.Kernel = RBF
	cfg.QuantizeSVs = true
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.qSlab == nil {
		t.Fatal("no quantized slab")
	}
	if m.qScale[2] != 0 {
		t.Fatalf("constant feature got step %v, want 0", m.qScale[2])
	}
	scratch := make([]float64, 4)
	for i, row := range probeRows(20, 4, 6) {
		row[2] = 3.25
		e := m.decisionScalar(row)
		q := m.DecisionInto(scratch, row)
		if math.IsNaN(q) {
			t.Fatalf("row %d: NaN from zero-step feature", i)
		}
		if math.Abs(q-e) > 1e-3*(1+math.Abs(e)) {
			t.Fatalf("row %d: quantized %v vs exact %v", i, q, e)
		}
	}
}

// BenchmarkDecisionQuantRBF is BenchmarkDecisionRBF over the int16
// slab: same ≥200-SV model shape, ~4× smaller decision working set.
func BenchmarkDecisionQuantRBF(b *testing.B) {
	x, y := overlapData(600, 5, 17)
	cfg := DefaultConfig()
	cfg.Kernel = RBF
	cfg.QuantizeSVs = true
	m, err := Train(cfg, x, y)
	if err != nil {
		b.Fatal(err)
	}
	if m.NumSV() < 200 {
		b.Fatalf("bench model has %d SVs, want >= 200", m.NumSV())
	}
	row := x[1]
	scratch := make([]float64, m.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.DecisionInto(scratch, row)
	}
	_ = sink
}

// BenchmarkDecisionBatchQuantRBF mirrors BenchmarkDecisionBatchRBF
// (16 rows per op, one slab pass) against the quantized slab.
func BenchmarkDecisionBatchQuantRBF(b *testing.B) {
	x, y := overlapData(600, 5, 17)
	cfg := DefaultConfig()
	cfg.Kernel = RBF
	cfg.QuantizeSVs = true
	m, err := Train(cfg, x, y)
	if err != nil {
		b.Fatal(err)
	}
	rows := probeRows(16, 5, 3)
	dst := make([]float64, len(rows))
	scratch := make([]float64, m.BatchScratch(len(rows)))
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		out := m.DecisionBatch(dst, rows, scratch)
		sink += out[0]
	}
	_ = sink
}
