package svm

import (
	"errors"
	"fmt"

	"exbox/internal/mathx"
)

// This file is the serialization boundary of a trained Model: plain
// exported structs that carry the complete inference representation —
// the folded weights, the standardized support-vector slab, the RFF
// tier's readout, the warm-start solver state — so a snapshot codec
// (internal/snapshot) can persist a fit and a warm-booted process can
// restore it with bit-identical decisions.
//
// Derived fields are serialized verbatim, never recomputed on import:
// wFold/bFold, the slab, the RFF projection are all the result of
// floating-point folding at build time, and re-deriving them from the
// dual variables would reproduce the same values only up to rounding.
// Storing the built representation is what makes a restored model's
// Decision bit-equal to the one that was saved. The one exception is
// the quantized slab (Config.QuantizeSVs): it is a pure function of
// the serialized exact slab — same rounding every time — so
// ModelFromState rebuilds it instead of carrying an int16 payload
// through the codec, and the rebuilt decisions are still bit-equal.
//
// ModelFromState validates every structural invariant the inference
// fast path relies on (slab stride, scaler length, finite values), so
// a decoded-from-disk state can never panic the decision paths: a
// corrupt snapshot fails here with an error and the caller cold-starts.

// RFFState is the serializable form of the random-Fourier-feature
// inference tier. All weights are in raw (unstandardized) feature
// space, exactly as the built tier holds them.
type RFFState struct {
	NumFreq int // frequency pairs (D/2)
	Dim     int
	WProj   []float64 // NumFreq×Dim, row-major
	Phase   []float64 // NumFreq
	WCos    []float64 // NumFreq
	WSin    []float64 // NumFreq
	WLin    []float64 // Dim
	Bias    float64
}

// ModelState is the complete serializable state of a trained Model.
// State/ModelFromState round-trip it; all slices are private copies.
type ModelState struct {
	Config     Config
	Gamma      float64
	Dim        int
	ScalerMean []float64
	ScalerStd  []float64
	SVCoef     []float64
	B          float64

	// Linear kernel representation (empty for RBF).
	WLinear []float64
	WFold   []float64
	BFold   float64

	// RBF kernel representation (empty for Linear).
	SVSlab []float64 // len(SVCoef)×Dim, row-major
	SVNorm []float64 // len(SVCoef)

	// RFF is the optional approximate tier, nil when absent.
	RFF *RFFState
}

// State exports the model's full inference representation for
// serialization. Every slice is a fresh copy; mutating the result
// never touches the (immutable) model.
func (m *Model) State() ModelState {
	st := ModelState{
		Config: m.cfg,
		Gamma:  m.gamma,
		Dim:    m.dim,
		B:      m.b,
		BFold:  m.bFold,
	}
	if m.scaler != nil {
		st.ScalerMean = append([]float64(nil), m.scaler.Mean...)
		st.ScalerStd = append([]float64(nil), m.scaler.Std...)
	}
	st.SVCoef = append([]float64(nil), m.svCoef...)
	st.WLinear = append([]float64(nil), m.wLinear...)
	st.WFold = append([]float64(nil), m.wFold...)
	st.SVSlab = append([]float64(nil), m.svSlab...)
	st.SVNorm = append([]float64(nil), m.svNorm...)
	if m.rff != nil {
		st.RFF = &RFFState{
			NumFreq: m.rff.nf,
			Dim:     m.rff.dim,
			WProj:   append([]float64(nil), m.rff.wProj...),
			Phase:   append([]float64(nil), m.rff.phase...),
			WCos:    append([]float64(nil), m.rff.wCos...),
			WSin:    append([]float64(nil), m.rff.wSin...),
			WLin:    append([]float64(nil), m.rff.wLin...),
			Bias:    m.rff.bias,
		}
	}
	return st
}

// errBadState prefixes ModelFromState validation failures.
func errBadState(format string, args ...interface{}) error {
	return fmt.Errorf("svm: invalid model state: "+format, args...)
}

// ModelFromState rebuilds a Model from an exported state, validating
// every invariant the inference paths depend on. The rebuilt model's
// Decision/DecisionInto/DecisionBatch/DecisionRFF are bit-equal to the
// exported model's (the folded representations are restored verbatim).
// The input slices are copied; the caller may reuse them.
func ModelFromState(st ModelState) (*Model, error) {
	dim := st.Dim
	if dim < 1 {
		return nil, errBadState("dim %d", dim)
	}
	if st.Config.Kernel != Linear && st.Config.Kernel != RBF {
		return nil, errBadState("unknown kernel %d", st.Config.Kernel)
	}
	if !(st.Gamma > 0) || !mathx.AllFinite([]float64{st.Gamma, st.B, st.BFold}) {
		return nil, errBadState("non-finite or non-positive gamma/threshold")
	}
	if len(st.ScalerMean) != dim || len(st.ScalerStd) != dim {
		return nil, errBadState("scaler len %d/%d, dim %d", len(st.ScalerMean), len(st.ScalerStd), dim)
	}
	for _, sd := range st.ScalerStd {
		if !(sd > 0) { // rejects 0, negatives, NaN
			return nil, errBadState("scaler std %v", sd)
		}
	}
	for _, s := range [][]float64{st.ScalerMean, st.ScalerStd, st.SVCoef, st.WLinear, st.WFold, st.SVSlab, st.SVNorm} {
		if !mathx.AllFinite(s) {
			return nil, errBadState("non-finite weights")
		}
	}
	nsv := len(st.SVCoef)
	switch st.Config.Kernel {
	case Linear:
		if len(st.WLinear) != dim || len(st.WFold) != dim {
			return nil, errBadState("linear weights len %d/%d, dim %d", len(st.WLinear), len(st.WFold), dim)
		}
		if len(st.SVSlab) != 0 || len(st.SVNorm) != 0 || st.RFF != nil {
			return nil, errBadState("linear model carries RBF state")
		}
	case RBF:
		if len(st.WLinear) != 0 || len(st.WFold) != 0 {
			return nil, errBadState("RBF model carries linear weights")
		}
		if len(st.SVSlab) != nsv*dim {
			return nil, errBadState("slab len %d, want %d×%d", len(st.SVSlab), nsv, dim)
		}
		if len(st.SVNorm) != nsv {
			return nil, errBadState("norms len %d, want %d", len(st.SVNorm), nsv)
		}
	}
	if r := st.RFF; r != nil {
		switch {
		case r.NumFreq < 1 || r.Dim != dim:
			return nil, errBadState("rff shape %d×%d, dim %d", r.NumFreq, r.Dim, dim)
		case len(r.WProj) != r.NumFreq*dim,
			len(r.Phase) != r.NumFreq, len(r.WCos) != r.NumFreq, len(r.WSin) != r.NumFreq,
			len(r.WLin) != dim:
			return nil, errBadState("rff slice lengths inconsistent with %d×%d", r.NumFreq, dim)
		}
		for _, s := range [][]float64{r.WProj, r.Phase, r.WCos, r.WSin, r.WLin, {r.Bias}} {
			if !mathx.AllFinite(s) {
				return nil, errBadState("non-finite rff weights")
			}
		}
	}

	m := &Model{
		cfg:   st.Config,
		gamma: st.Gamma,
		dim:   dim,
		b:     st.B,
		bFold: st.BFold,
		scaler: &Scaler{
			Mean: append([]float64(nil), st.ScalerMean...),
			Std:  append([]float64(nil), st.ScalerStd...),
		},
		svCoef: append([]float64(nil), st.SVCoef...),
	}
	if st.Config.Kernel == Linear {
		m.wLinear = append([]float64(nil), st.WLinear...)
		m.wFold = append([]float64(nil), st.WFold...)
	} else {
		m.svSlab = append([]float64(nil), st.SVSlab...)
		m.svNorm = append([]float64(nil), st.SVNorm...)
		if st.Config.QuantizeSVs {
			m.buildQuantSlab()
		}
	}
	if r := st.RFF; r != nil {
		m.rff = &rffModel{
			nf:    r.NumFreq,
			dim:   r.Dim,
			wProj: append([]float64(nil), r.WProj...),
			phase: append([]float64(nil), r.Phase...),
			wCos:  append([]float64(nil), r.WCos...),
			wSin:  append([]float64(nil), r.WSin...),
			wLin:  append([]float64(nil), r.WLin...),
			bias:  r.Bias,
		}
	}
	return m, nil
}

// WarmStateData is the serializable form of a WarmState: the dual
// variables plus the frozen standardization and its reuse accounting.
type WarmStateData struct {
	Alpha      []float64
	B          float64
	ScalerMean []float64
	ScalerStd  []float64
	N          int // training rows when the scaler was fitted
	Age        int // consecutive warm reuses of the frozen scaler
}

// Data exports the warm state for serialization (slices are copies).
func (w *WarmState) Data() WarmStateData {
	d := WarmStateData{
		Alpha: append([]float64(nil), w.Alpha...),
		B:     w.b,
		N:     w.n,
		Age:   w.age,
	}
	if w.scaler != nil {
		d.ScalerMean = append([]float64(nil), w.scaler.Mean...)
		d.ScalerStd = append([]float64(nil), w.scaler.Std...)
	}
	return d
}

// WarmStateFromData rebuilds a WarmState, validating it well enough
// that Solve's Usable gate and initWarm cannot be tripped up by a
// corrupt snapshot.
func WarmStateFromData(d WarmStateData) (*WarmState, error) {
	if len(d.ScalerMean) != len(d.ScalerStd) {
		return nil, errors.New("svm: invalid warm state: scaler length mismatch")
	}
	if !mathx.AllFinite(d.Alpha) || !mathx.AllFinite(d.ScalerMean) || !mathx.AllFinite(d.ScalerStd) ||
		!mathx.AllFinite([]float64{d.B}) {
		return nil, errors.New("svm: invalid warm state: non-finite values")
	}
	for _, sd := range d.ScalerStd {
		if !(sd > 0) {
			return nil, errors.New("svm: invalid warm state: non-positive scaler std")
		}
	}
	if d.N < 0 || d.Age < 0 {
		return nil, errors.New("svm: invalid warm state: negative counters")
	}
	w := &WarmState{
		Alpha: append([]float64(nil), d.Alpha...),
		b:     d.B,
		n:     d.N,
		age:   d.Age,
	}
	if len(d.ScalerMean) > 0 {
		w.scaler = &Scaler{
			Mean: append([]float64(nil), d.ScalerMean...),
			Std:  append([]float64(nil), d.ScalerStd...),
		}
	}
	return w, nil
}
