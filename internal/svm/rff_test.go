package svm

import (
	"math"
	"testing"

	"exbox/internal/mathx"
)

// livelabData synthesizes the LiveLab-like admission workload shape:
// integer per-class flow counts with a capacity-threshold label. Each
// feature carries a fixed "bandwidth cost" weight, a row is admissible
// when its weighted load is at or below the population mean — the same
// near-linear-with-curvature boundary the ExCR traffic matrices
// produce, which is the regime the RFF tier is built for.
func livelabData(n, dim int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	w := make([]float64, dim)
	for j := range w {
		w[j] = 0.5 + 2.5*rng.Float64()
	}
	capacity := 0.0
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		load := 0.0
		for j := range row {
			row[j] = float64(rng.Intn(20))
			load += row[j] * w[j]
		}
		x = append(x, row)
		capacity += load
	}
	capacity /= float64(n)
	for i := range x {
		load := 0.0
		for j, v := range x[i] {
			load += v * w[j]
		}
		if load <= capacity {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y
}

// signAgreement scores the RFF tier against the decisionScalar oracle
// over the probe rows, returning the agreeing fraction.
func signAgreement(t *testing.T, m *Model, probes [][]float64) float64 {
	t.Helper()
	if !m.HasRFF() {
		t.Fatal("model has no RFF tier")
	}
	agree := 0
	for _, row := range probes {
		exact := m.decisionScalar(row)
		approx := m.DecisionRFF(row)
		if math.IsNaN(approx) || math.IsInf(approx, 0) {
			t.Fatalf("non-finite RFF decision %v for row %v", approx, row)
		}
		if (exact >= 0) == (approx >= 0) {
			agree++
		}
	}
	return float64(agree) / float64(len(probes))
}

// TestRFFAgreementLiveLab is the tentpole acceptance property: at the
// default D=256 dictionary the tier reaches ≥99% sign agreement with
// the exact oracle on the LiveLab-like workload, for both a cold fit
// and a warm-started refit (the exboxd steady state).
func TestRFFAgreementLiveLab(t *testing.T) {
	x, y := livelabData(600, 5, 41)
	probes, _ := livelabData(2000, 5, 77)
	cfg := DefaultConfig()
	cfg.RFF = true

	cold, warmState, err := Solve(cfg, x, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ag := signAgreement(t, cold, probes); ag < 0.99 {
		t.Fatalf("cold-fit RFF agreement %.4f, want >= 0.99", ag)
	}

	// Warm refit over a slightly grown set, like an online batch.
	x2, y2 := livelabData(650, 5, 41)
	warm, _, err := Solve(cfg, x2, y2, warmState)
	if err != nil {
		t.Fatal(err)
	}
	if ag := signAgreement(t, warm, probes); ag < 0.99 {
		t.Fatalf("warm-fit RFF agreement %.4f, want >= 0.99", ag)
	}
}

// TestRFFAgreementAboveDemotionThreshold checks the harder fixtures:
// the heavily overlapping clouds of the equivalence tests carry dual
// mass at the box bound (a large RKHS norm, the worst case for random
// features), so they won't reach 99% — but they must clear the
// classifier's demotion threshold on in-distribution probes, which is
// what keeps the tier usable-by-default with the oracle gate as the
// backstop.
func TestRFFAgreementAboveDemotionThreshold(t *testing.T) {
	x, y := overlapData(600, 5, 41)
	cfg := DefaultConfig()
	cfg.RFF = true
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	probes, _ := overlapData(2000, 5, 99)
	if ag := signAgreement(t, m, probes); ag < 0.9 {
		t.Fatalf("overlap-fixture RFF agreement %.4f, want >= 0.9 (demotion threshold)", ag)
	}
}

// TestRFFDeterministic pins reproducibility: two fits of the same data
// must produce bit-identical RFF decisions (frequencies are seeded
// from the fit state, never from a global RNG).
func TestRFFDeterministic(t *testing.T) {
	x, y := livelabData(300, 5, 7)
	cfg := DefaultConfig()
	cfg.RFF = true
	m1, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	probes, _ := livelabData(200, 5, 8)
	for _, row := range probes {
		d1, d2 := m1.DecisionRFF(row), m2.DecisionRFF(row)
		if d1 != d2 {
			t.Fatalf("non-deterministic RFF decision: %v vs %v", d1, d2)
		}
	}
}

// TestRFFSmallDim exercises non-default dictionary sizes, including an
// odd one (rounded down to pairs) and the degenerate D=1 (no pairs —
// tier not built, exact fallback).
func TestRFFSmallDim(t *testing.T) {
	x, y := livelabData(300, 5, 7)
	probes, _ := livelabData(200, 5, 8)
	for _, D := range []int{2, 17, 64} {
		cfg := DefaultConfig()
		cfg.RFF = true
		cfg.RFFDim = D
		m, err := Train(cfg, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if !m.HasRFF() {
			t.Fatalf("D=%d: tier not built", D)
		}
		for _, row := range probes {
			if d := m.DecisionRFF(row); math.IsNaN(d) || math.IsInf(d, 0) {
				t.Fatalf("D=%d: non-finite decision %v", D, d)
			}
		}
	}
	cfg := DefaultConfig()
	cfg.RFF = true
	cfg.RFFDim = 1
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasRFF() {
		t.Fatal("D=1 must not build a tier")
	}
	if got, want := m.DecisionRFF(probes[0]), m.Decision(probes[0]); got != want {
		t.Fatalf("tier-less DecisionRFF = %v, want exact %v", got, want)
	}
}

// TestRFFOffByDefault pins that the tier costs nothing unless asked
// for: DefaultConfig fits carry no tier and DecisionRFF falls back to
// the exact path.
func TestRFFOffByDefault(t *testing.T) {
	x, y := livelabData(200, 5, 7)
	m, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if m.HasRFF() || m.HasApprox() {
		t.Fatal("DefaultConfig built an RFF tier")
	}
	if got, want := m.DecisionRFF(x[0]), m.Decision(x[0]); got != want {
		t.Fatalf("DecisionRFF = %v, want %v", got, want)
	}
}

// TestRFFConstantFeature ties the tier to the scaler's zero-variance
// guard: a constant column has σ forced to 1, and the folded
// projection must stay finite and agree with the exact path's sign.
func TestRFFConstantFeature(t *testing.T) {
	x, y := livelabData(300, 5, 7)
	for i := range x {
		x[i] = append(x[i], 42) // constant sixth column
	}
	cfg := DefaultConfig()
	cfg.RFF = true
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasRFF() {
		t.Fatal("tier not built with constant feature")
	}
	probes, _ := livelabData(500, 5, 8)
	for i := range probes {
		probes[i] = append(probes[i], 42)
	}
	if ag := signAgreement(t, m, probes); ag < 0.95 {
		t.Fatalf("constant-feature agreement %.4f, want >= 0.95", ag)
	}
}

// TestDecisionRFFAllocs pins the online scoring path at zero
// allocations.
func TestDecisionRFFAllocs(t *testing.T) {
	x, y := livelabData(300, 5, 7)
	cfg := DefaultConfig()
	cfg.RFF = true
	m, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}
	row := x[0]
	if n := testing.AllocsPerRun(100, func() { m.DecisionRFF(row) }); n != 0 {
		t.Fatalf("DecisionRFF allocates %v per op, want 0", n)
	}
}

// TestPruneReducesSVs exercises the post-solve reduced-set selection:
// with a tolerance, the pruned model must report the drop in
// SolveStats, carry fewer support vectors, and keep a high sign
// agreement with the unpruned fit.
func TestPruneReducesSVs(t *testing.T) {
	x, y := livelabData(600, 5, 41)
	cfg := DefaultConfig()
	base, err := Train(cfg, x, y)
	if err != nil {
		t.Fatal(err)
	}

	cfg.PruneTol = 0.05 * cfg.C
	var stats SolveStats
	pruned, _, err := SolveDetailed(cfg, x, y, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned == 0 {
		t.Fatal("SolveStats.Pruned = 0, want > 0")
	}
	if pruned.NumSV() >= base.NumSV() {
		t.Fatalf("pruned model has %d SVs, base %d", pruned.NumSV(), base.NumSV())
	}
	if base.NumSV()-pruned.NumSV() != stats.Pruned {
		t.Fatalf("SV drop %d != Pruned %d", base.NumSV()-pruned.NumSV(), stats.Pruned)
	}
	probes, _ := livelabData(1000, 5, 77)
	agree := 0
	for _, row := range probes {
		if (base.Decision(row) >= 0) == (pruned.Decision(row) >= 0) {
			agree++
		}
	}
	if ag := float64(agree) / float64(len(probes)); ag < 0.97 {
		t.Fatalf("pruned-vs-base agreement %.4f, want >= 0.97", ag)
	}
}

// TestPruneOffIsBitIdentical pins that PruneTol=0 (the default) leaves
// the solve untouched: same support vectors, same decisions, so every
// pre-existing equivalence guarantee carries over.
func TestPruneOffIsBitIdentical(t *testing.T) {
	x, y := livelabData(300, 5, 7)
	m1, err := Train(DefaultConfig(), x, y)
	if err != nil {
		t.Fatal(err)
	}
	var stats SolveStats
	m2, _, err := SolveDetailed(DefaultConfig(), x, y, nil, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pruned != 0 {
		t.Fatalf("Pruned = %d with PruneTol 0", stats.Pruned)
	}
	if m1.NumSV() != m2.NumSV() {
		t.Fatalf("SV count changed: %d vs %d", m1.NumSV(), m2.NumSV())
	}
	for _, row := range x[:50] {
		if m1.Decision(row) != m2.Decision(row) {
			t.Fatal("decision changed with PruneTol 0")
		}
	}
}

// TestStratifiedFoldsMinorityClass is the CrossValidate regression
// test: 3 positives among 50 negatives with 5 folds. The old modulo
// split could drop all positives into one fold's test split, leaving
// single-class training splits to the silent majority fallback;
// stratified assignment must place the positives in three distinct
// folds, so at least two positives survive into every training split
// that holds one out and all five splits stay two-class.
func TestStratifiedFoldsMinorityClass(t *testing.T) {
	const folds = 5
	y := make([]float64, 53)
	for i := range y {
		y[i] = -1
	}
	y[7], y[23], y[48] = 1, 1, 1
	for seed := int64(0); seed < 20; seed++ {
		fold := StratifiedFolds(y, folds, mathx.NewRand(seed))
		if len(fold) != len(y) {
			t.Fatalf("fold assignment length %d, want %d", len(fold), len(y))
		}
		posFolds := map[int]int{}
		for i, f := range fold {
			if f < 0 || f >= folds {
				t.Fatalf("fold %d out of range", f)
			}
			if y[i] == 1 {
				posFolds[f]++
			}
		}
		if len(posFolds) != 3 {
			t.Fatalf("seed %d: positives landed in %d folds, want 3 distinct", seed, len(posFolds))
		}
		// Every held-out fold leaves >= 2 positives in its training
		// split: no fold can make training single-class.
		for f := 0; f < folds; f++ {
			if 3-posFolds[f] < 2 {
				t.Fatalf("seed %d: fold %d leaves %d positives for training", seed, f, 3-posFolds[f])
			}
		}
	}

	// End to end: CV on an actual 3-positive/50-negative set returns a
	// real estimate without erroring, for both entry points.
	x := make([][]float64, len(y))
	rng := mathx.NewRand(3)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		if y[i] == 1 {
			x[i][0] += 4
		}
	}
	acc, err := CrossValidate(DefaultConfig(), x, y, folds, mathx.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.5 || acc > 1 {
		t.Fatalf("cv accuracy %v out of range", acc)
	}
}
