package flows

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"

	"exbox/internal/excr"
)

func batchSpace() excr.Space { return excr.Space{Classes: 3, Levels: 2} }

// refShardIndex is the pre-refactor hash/fnv implementation, kept here
// verbatim to pin ShardIndex's inline FNV-1a to it: flow→shard
// placement must not move.
func refShardIndex(st *ShardedTable, k Key) int {
	c := canonical(k)
	h := fnv.New32a()
	h.Write([]byte(c.Src))
	h.Write([]byte{0, byte(c.SrcPort >> 8), byte(c.SrcPort)})
	h.Write([]byte(c.Dst))
	h.Write([]byte{0, byte(c.DstPort >> 8), byte(c.DstPort), byte(c.Proto)})
	return int(h.Sum32()) % len(st.shards)
}

func randomKey(rng *rand.Rand) Key {
	return Key{
		Src:     fmt.Sprintf("10.0.%d.%d", rng.Intn(8), rng.Intn(32)),
		Dst:     fmt.Sprintf("192.168.%d.%d", rng.Intn(4), rng.Intn(16)),
		SrcPort: uint16(1024 + rng.Intn(60000)),
		DstPort: uint16(rng.Intn(1024)),
		Proto:   Proto([]Proto{TCP, UDP}[rng.Intn(2)]),
	}
}

func TestShardIndexMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shards := range []int{1, 7, 32, 256} {
		st := NewShardedTable(shards, 4, 60, batchSpace())
		for i := 0; i < 500; i++ {
			k := randomKey(rng)
			if got, want := st.ShardIndex(k), refShardIndex(st, k); got != want {
				t.Fatalf("shards=%d key=%v: ShardIndex %d, reference %d", shards, k, got, want)
			}
			// Direction independence must survive the refactor too.
			if got, rev := st.ShardIndex(k), st.ShardIndex(k.Reverse()); got != rev {
				t.Fatalf("key %v: shard %d but reverse hashes to %d", k, got, rev)
			}
		}
	}
}

// TestObserveBatchMatchesPerPacket drives the same packet sequence
// through per-packet Do+Observe and through ObserveBatch bursts, and
// checks every per-flow observable ends up identical.
func TestObserveBatchMatchesPerPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	keys := make([]Key, 40)
	for i := range keys {
		keys[i] = randomKey(rng)
	}
	pkts := make([]PacketObs, 600)
	for i := range pkts {
		pkts[i] = PacketObs{
			Key:  keys[rng.Intn(len(keys))],
			Meta: PacketMeta{Time: float64(i) * 0.01, Bytes: 40 + rng.Intn(1400), Up: rng.Intn(2) == 0},
		}
	}

	perPacket := NewShardedTable(16, 6, 60, batchSpace())
	for _, p := range pkts {
		perPacket.Do(p.Key, func(tb *Table) { tb.Observe(p.Key, p.Meta) })
	}

	batched := NewShardedTable(16, 6, 60, batchSpace())
	var sc BatchScratch
	visited := 0
	for start := 0; start < len(pkts); start += 64 {
		end := start + 64
		if end > len(pkts) {
			end = len(pkts)
		}
		batched.ObserveBatch(&sc, pkts[start:end], func(i int, tb *Table, f *Flow) {
			visited++
			if f == nil {
				t.Fatal("nil flow in visit")
			}
		})
	}
	if visited != len(pkts) {
		t.Fatalf("visited %d packets, want %d", visited, len(pkts))
	}

	a, b := perPacket.Active(), batched.Active()
	if len(a) != len(b) {
		t.Fatalf("flow counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		fa, fb := a[i], b[i]
		if fa.Key != fb.Key || fa.Packets != fb.Packets || fa.Bytes != fb.Bytes ||
			fa.FirstSeen != fb.FirstSeen || fa.LastSeen != fb.LastSeen || len(fa.Head) != len(fb.Head) {
			t.Fatalf("flow %v diverged: per-packet %+v vs batched %+v", fa.Key, fa, fb)
		}
		for j := range fa.Head {
			if fa.Head[j] != fb.Head[j] {
				t.Fatalf("flow %v head[%d] diverged", fa.Key, j)
			}
		}
	}
}

// TestDoBatchLockOncePerShard counts lock acquisitions indirectly: the
// visit callback records the shard slot sequence, which must be a set
// of contiguous runs — one per touched shard — in slot order.
func TestDoBatchLockOncePerShard(t *testing.T) {
	st := NewShardedTable(8, 4, 60, batchSpace())
	rng := rand.New(rand.NewSource(5))
	pkts := make([]PacketObs, 100)
	for i := range pkts {
		pkts[i] = PacketObs{Key: randomKey(rng), Meta: PacketMeta{Time: float64(i)}}
	}
	var slots []int
	st.DoBatch(nil, len(pkts),
		func(i int) int { return st.ShardIndex(pkts[i].Key) },
		func(i int, tb *Table) { slots = append(slots, st.ShardIndex(pkts[i].Key)) })
	if len(slots) != len(pkts) {
		t.Fatalf("visited %d, want %d", len(slots), len(pkts))
	}
	for i := 1; i < len(slots); i++ {
		if slots[i] < slots[i-1] {
			t.Fatalf("shard slot sequence not grouped in slot order at %d: %v", i, slots[max(0, i-3):i+1])
		}
	}
}

// TestObserveBatchConcurrent is a -race smoke: several workers drive
// disjoint bursts through ObserveBatch while a sweeper walks the
// table, mirroring the gateway's concurrency shape.
func TestObserveBatchConcurrent(t *testing.T) {
	st := NewShardedTable(8, 4, 60, batchSpace())
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			var sc BatchScratch
			pkts := make([]PacketObs, 32)
			for round := 0; round < 50; round++ {
				for i := range pkts {
					pkts[i] = PacketObs{Key: randomKey(rng), Meta: PacketMeta{Time: float64(round)}}
				}
				st.ObserveBatch(&sc, pkts, func(i int, tb *Table, f *Flow) { _ = f.Packets })
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case <-done:
			if st.Len() == 0 {
				t.Fatal("no flows tracked")
			}
			return
		default:
			st.Sweep(func(tb *Table) { _ = tb.Len() })
		}
	}
}
