package flows

import (
	"testing"

	"exbox/internal/excr"
)

func key() Key {
	return Key{Src: "10.0.0.2", Dst: "93.184.216.34", SrcPort: 41000, DstPort: 443, Proto: TCP}
}

func TestKeyStringAndReverse(t *testing.T) {
	k := key()
	if k.String() != "10.0.0.2:41000->93.184.216.34:443/tcp" {
		t.Fatalf("String = %q", k.String())
	}
	r := k.Reverse()
	if r.Src != k.Dst || r.SrcPort != k.DstPort || r.Proto != k.Proto {
		t.Fatalf("Reverse wrong: %+v", r)
	}
	if r.Reverse() != k {
		t.Fatal("double reverse should round trip")
	}
	if UDP.String() != "udp" || Proto(99).String() != "proto99" {
		t.Fatal("Proto strings wrong")
	}
}

func TestObserveCreatesAndAccounts(t *testing.T) {
	tab := NewTable(3, 30)
	f := tab.Observe(key(), PacketMeta{Time: 1, Bytes: 100, Up: true})
	if tab.Len() != 1 || f.Packets != 1 || f.Bytes != 100 {
		t.Fatalf("flow state wrong: %+v", f)
	}
	tab.Observe(key(), PacketMeta{Time: 1.1, Bytes: 200})
	tab.Observe(key(), PacketMeta{Time: 1.2, Bytes: 300})
	tab.Observe(key(), PacketMeta{Time: 1.3, Bytes: 400})
	if f.Packets != 4 || f.Bytes != 1000 {
		t.Fatalf("accounting wrong: %+v", f)
	}
	if len(f.Head) != 3 {
		t.Fatalf("head should cap at 3, got %d", len(f.Head))
	}
	if f.FirstSeen != 1 || f.LastSeen != 1.3 {
		t.Fatalf("times wrong: %+v", f)
	}
}

func TestObserveFoldsReverseDirection(t *testing.T) {
	tab := NewTable(10, 30)
	up := tab.Observe(key(), PacketMeta{Time: 1, Bytes: 100, Up: true})
	down := tab.Observe(key().Reverse(), PacketMeta{Time: 1.05, Bytes: 1400, Up: true})
	if up != down {
		t.Fatal("reverse packets should fold into one flow")
	}
	if tab.Len() != 1 {
		t.Fatalf("table should hold one flow, got %d", tab.Len())
	}
	// The reverse packet's direction must be flipped.
	if up.Head[1].Up {
		t.Fatal("reverse packet should be recorded as downlink")
	}
	if got := tab.Get(key().Reverse()); got != up {
		t.Fatal("Get should find the flow by reverse key")
	}
}

func TestGetMissing(t *testing.T) {
	tab := NewTable(10, 30)
	if tab.Get(key()) != nil {
		t.Fatal("missing flow should be nil")
	}
}

func TestExpire(t *testing.T) {
	tab := NewTable(10, 10)
	tab.Observe(key(), PacketMeta{Time: 0, Bytes: 100})
	k2 := key()
	k2.SrcPort = 50000
	tab.Observe(k2, PacketMeta{Time: 8, Bytes: 100})
	gone := tab.Expire(12)
	if len(gone) != 1 || gone[0].Key.SrcPort != 41000 {
		t.Fatalf("expire wrong: %v", gone)
	}
	if tab.Len() != 1 {
		t.Fatalf("table should keep the fresh flow, len=%d", tab.Len())
	}
	// Sorted output with several expiring flows.
	tab2 := NewTable(10, 1)
	for i := 0; i < 5; i++ {
		k := key()
		k.SrcPort = uint16(40000 + i)
		tab2.Observe(k, PacketMeta{Time: float64(5 - i), Bytes: 10})
	}
	gone = tab2.Expire(100)
	for i := 1; i < len(gone); i++ {
		if gone[i].FirstSeen < gone[i-1].FirstSeen {
			t.Fatal("Expire output not sorted")
		}
	}
}

// TestRejectedFlowExpiresDespiteTraffic is the regression test for
// the immortal-rejected-flow bug: a client whose flow was rejected
// keeps transmitting into the drop, and those packets must not
// refresh the flow's activity clock — otherwise the dead flow never
// expires, never leaves the table, and never feeds its labeled
// sample back for online learning.
func TestRejectedFlowExpiresDespiteTraffic(t *testing.T) {
	tab := NewTable(10, 10)
	f := tab.Observe(key(), PacketMeta{Time: 0, Bytes: 100})
	f.Decided, f.Admitted = true, false // gateway rejected it at t=0
	// The client keeps blasting packets long past the idle timeout.
	for i := 1; i <= 30; i++ {
		tab.Observe(key(), PacketMeta{Time: float64(i), Bytes: 100})
	}
	if f.Packets != 31 || f.Bytes != 3100 {
		t.Fatalf("dropped packets must still be accounted: %+v", f)
	}
	if f.LastSeen != 0 {
		t.Fatalf("rejected flow's LastSeen refreshed to %v, want 0", f.LastSeen)
	}
	gone := tab.Expire(11)
	if len(gone) != 1 || gone[0] != f {
		t.Fatalf("rejected flow should expire at its idle timeout, got %v", gone)
	}

	// Control: an admitted flow with the same traffic pattern stays.
	tab2 := NewTable(10, 10)
	g := tab2.Observe(key(), PacketMeta{Time: 0, Bytes: 100})
	g.Decided, g.Admitted = true, true
	for i := 1; i <= 30; i++ {
		tab2.Observe(key(), PacketMeta{Time: float64(i), Bytes: 100})
	}
	if gone := tab2.Expire(31); len(gone) != 0 {
		t.Fatalf("admitted active flow must not expire, got %v", gone)
	}
}

func TestActiveSorted(t *testing.T) {
	tab := NewTable(10, 30)
	for i := 0; i < 4; i++ {
		k := key()
		k.SrcPort = uint16(40000 + i)
		tab.Observe(k, PacketMeta{Time: float64(4 - i), Bytes: 10})
	}
	act := tab.Active()
	if len(act) != 4 {
		t.Fatalf("Active len = %d", len(act))
	}
	for i := 1; i < len(act); i++ {
		if act[i].FirstSeen < act[i-1].FirstSeen {
			t.Fatal("Active not sorted")
		}
	}
}

func TestMatrixCountsOnlyAdmittedClassified(t *testing.T) {
	tab := NewTable(10, 30)
	mk := func(port uint16) *Flow {
		k := key()
		k.SrcPort = port
		return tab.Observe(k, PacketMeta{Time: 1, Bytes: 10})
	}
	a := mk(1) // classified + admitted: counted
	a.Class, a.Classified, a.Admitted, a.Decided = excr.Web, true, true, true
	b := mk(2) // not yet decided: not counted
	b.Class, b.Classified = excr.Streaming, true
	c := mk(3) // rejected: not counted
	c.Class, c.Classified, c.Decided, c.Admitted = excr.Conferencing, true, true, false
	d := mk(4) // admitted at low SNR in a mixed space
	d.Class, d.Classified, d.Admitted, d.Decided = excr.Streaming, true, true, true
	d.SNR = excr.SNRLow

	m := tab.Matrix(excr.MixedSNRSpace)
	if m.Total() != 2 {
		t.Fatalf("matrix total = %d, want 2 (%v)", m.Total(), m)
	}
	if m.Get(excr.Web, excr.SNRLow) != 1 { // a.SNR zero value = low
		t.Fatalf("web count wrong: %v", m)
	}
	if m.Get(excr.Streaming, excr.SNRLow) != 1 {
		t.Fatalf("streaming count wrong: %v", m)
	}
	// Single-level space folds SNR.
	m1 := tab.Matrix(excr.DefaultSpace)
	if m1.Total() != 2 {
		t.Fatalf("single-level total = %d", m1.Total())
	}
}

func TestReadyToClassify(t *testing.T) {
	tab := NewTable(3, 30)
	f := tab.Observe(key(), PacketMeta{Time: 1, Bytes: 10})
	if f.ReadyToClassify(3) {
		t.Fatal("1 packet should not be ready")
	}
	tab.Observe(key(), PacketMeta{Time: 1.1, Bytes: 10})
	tab.Observe(key(), PacketMeta{Time: 1.2, Bytes: 10})
	if !f.ReadyToClassify(3) {
		t.Fatal("3 packets should be ready")
	}
	f.Classified = true
	if f.ReadyToClassify(3) {
		t.Fatal("already classified flow should not re-classify")
	}
}

func TestReadyBySilence(t *testing.T) {
	tab := NewTable(10, 30)
	f := tab.Observe(key(), PacketMeta{Time: 1, Bytes: 10})
	tab.Observe(key(), PacketMeta{Time: 2, Bytes: 10})
	// Head (2 packets) never reaches the cap of 10; the flow becomes
	// classifiable only after enough silence.
	if f.ReadyToClassify(tab.HeadCap) {
		t.Fatal("short head must not be ready by count")
	}
	if f.ReadyBySilence(3, 2) {
		t.Fatal("1s of silence is not enough")
	}
	if !f.ReadyBySilence(4, 2) {
		t.Fatal("2s of silence should resolve the silence case")
	}
	f.Classified = true
	if f.ReadyBySilence(10, 2) {
		t.Fatal("classified flow must not re-classify")
	}
	// A flow with no packets recorded can never be classified.
	empty := &Flow{}
	if empty.ReadyBySilence(100, 2) {
		t.Fatal("empty head must not be ready")
	}
}

func TestExpiryWithLateClassification(t *testing.T) {
	// The gateway pattern: a short flow goes silent, the sweep
	// classifies it by silence and decides admission, and the later
	// expiry returns it with its classification intact.
	tab := NewTable(10, 5)
	f := tab.Observe(key(), PacketMeta{Time: 0, Bytes: 120})
	tab.Observe(key(), PacketMeta{Time: 0.5, Bytes: 80})

	if !f.ReadyBySilence(3, 2) {
		t.Fatal("flow should be silence-classifiable at t=3")
	}
	f.Class, f.Classified = excr.Web, true
	f.Decided, f.Admitted = true, true
	if got := tab.Matrix(excr.DefaultSpace).Get(excr.Web, 0); got != 1 {
		t.Fatalf("late-classified flow missing from matrix: %d", got)
	}

	gone := tab.Expire(6)
	if len(gone) != 1 || !gone[0].Classified || gone[0].Class != excr.Web {
		t.Fatalf("expiry lost the late classification: %+v", gone)
	}
	if tab.Len() != 0 {
		t.Fatalf("table should be empty, len=%d", tab.Len())
	}
	if got := tab.Matrix(excr.DefaultSpace).Total(); got != 0 {
		t.Fatalf("expired flow still in matrix: %d", got)
	}
}

func TestNewTableDefaults(t *testing.T) {
	tab := NewTable(0, 0)
	if tab.HeadCap != 10 || tab.IdleTimeout != 60 {
		t.Fatalf("defaults wrong: %+v", tab)
	}
}

func TestObserveRunHintFastPath(t *testing.T) {
	tb := NewTable(3, 60)
	k := key()

	// No hint: behaves exactly like Observe, creating the flow.
	f := tb.ObserveRun(k, PacketMeta{Time: 1, Bytes: 100, Up: true}, nil)
	if f == nil || f.Packets != 1 {
		t.Fatalf("ObserveRun create: %+v", f)
	}

	// Matching hint: the same record is updated without a lookup.
	f2 := tb.ObserveRun(k, PacketMeta{Time: 2, Bytes: 50, Up: true}, f)
	if f2 != f {
		t.Fatal("matching hint did not return the hinted flow")
	}
	if f.Packets != 2 || f.Bytes != 150 || f.LastSeen != 2 {
		t.Fatalf("hinted observe misaccounted: %+v", f)
	}

	// Mismatched hint: falls back to the map and creates the other flow.
	other := Key{Src: "10.0.0.9", Dst: k.Dst, SrcPort: 999, DstPort: k.DstPort, Proto: k.Proto}
	g := tb.ObserveRun(other, PacketMeta{Time: 3, Bytes: 10, Up: true}, f)
	if g == f {
		t.Fatal("mismatched hint reused the wrong flow")
	}
	if g.Packets != 1 || tb.Len() != 2 {
		t.Fatalf("fallback create wrong: %+v len=%d", g, tb.Len())
	}

	// Reverse-key packet with the forward flow as hint: the hint must
	// NOT match (hint.Key equality is exact), so the reverse fold — and
	// its direction flip — stays with Observe.
	r := tb.ObserveRun(k.Reverse(), PacketMeta{Time: 4, Bytes: 30, Up: true}, f)
	if r != f {
		t.Fatal("reverse packet did not fold into the forward flow")
	}
	if f.Packets != 3 {
		t.Fatalf("reverse fold misaccounted: %+v", f)
	}
	if got := f.Head[2]; got.Up {
		t.Fatalf("reverse fold did not flip Up: %+v", got)
	}
}

func TestObserveOwnedMatchesObserve(t *testing.T) {
	ta, tb := NewTable(3, 60), NewTable(3, 60)
	k := key()
	fa := ta.Observe(k, PacketMeta{Time: 1, Bytes: 100, Up: true})
	fb := tb.Observe(k, PacketMeta{Time: 1, Bytes: 100, Up: true})
	for i := 0; i < 5; i++ {
		p := PacketMeta{Time: float64(2 + i), Bytes: 40 + i, Up: i%2 == 0}
		ta.Observe(k, p)
		tb.ObserveOwned(fb, p)
	}
	if fa.Packets != fb.Packets || fa.Bytes != fb.Bytes || fa.LastSeen != fb.LastSeen || len(fa.Head) != len(fb.Head) {
		t.Fatalf("ObserveOwned diverged from Observe:\n%+v\n%+v", fa, fb)
	}
}
