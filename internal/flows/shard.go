package flows

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"exbox/internal/excr"
	"exbox/internal/obs"
)

// ShardedTable is the concurrency-safe flow table behind the gateway's
// parallel packet workers. Flows are partitioned across independently
// locked shards by a direction-independent hash of the 5-tuple (a flow
// and its reverse land on the same shard, so fold-on-reverse keeps
// working), and the admitted traffic matrix — the X every admission
// decision conditions on — is maintained as a flat array of atomic
// counters, so reading it never takes any lock.
type ShardedTable struct {
	space  excr.Space
	shards []tableShard
	counts []atomic.Int64 // admitted flows per (class, level), class-major

	// Telemetry (nil-safe no-ops until Instrument is called).
	expiredN *obs.Counter
	trackedN *obs.Gauge
}

type tableShard struct {
	mu sync.Mutex
	t  *Table
	_  [40]byte // pad to a cache line so shard locks don't false-share
}

// NewShardedTable returns a table with nShards independently locked
// partitions, each keeping headCap packets per flow and expiring flows
// idle longer than idleTimeout seconds. The space fixes the shape of
// the tracked traffic matrix. nShards <= 0 defaults to 32.
func NewShardedTable(nShards, headCap int, idleTimeout float64, space excr.Space) *ShardedTable {
	if nShards <= 0 {
		nShards = 32
	}
	st := &ShardedTable{
		space:  space,
		shards: make([]tableShard, nShards),
		counts: make([]atomic.Int64, space.Dim()),
	}
	for i := range st.shards {
		st.shards[i].t = NewTable(headCap, idleTimeout)
	}
	return st
}

// Instrument registers the table's telemetry under the given name
// prefix: an expiry counter and a tracked-flow gauge updated on the
// maintenance path, plus scrape-time gauges for total and per-shard
// occupancy and for every cell of the admitted traffic matrix. The
// occupancy gauges take the owning shard's lock when scraped — the
// scrape is a cold path — while the matrix gauges read the atomic
// counters, so nothing here touches the per-packet path. Call before
// the table sees concurrent traffic.
func (st *ShardedTable) Instrument(reg *obs.Registry, prefix string) {
	st.expiredN = reg.Counter(prefix + "_expired_total")
	st.trackedN = reg.Gauge(prefix + "_tracked_flows")
	reg.GaugeFunc(prefix+"_active_flows", func() float64 { return float64(st.Len()) })
	for i := range st.shards {
		s := &st.shards[i]
		reg.GaugeFunc(fmt.Sprintf("%s_shard_%d_flows", prefix, i), func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.t.Len())
		})
	}
	for c := 0; c < st.space.Classes; c++ {
		for l := 0; l < st.space.Levels; l++ {
			idx := c*st.space.Levels + l
			reg.GaugeFunc(fmt.Sprintf("%s_matrix_c%d_l%d", prefix, c, l), func() float64 {
				return float64(st.counts[idx].Load())
			})
		}
	}
}

// canonical orients the key direction-independently so k and
// k.Reverse() hash identically.
func canonical(k Key) Key {
	r := k.Reverse()
	if k.Src < r.Src {
		return k
	}
	if k.Src > r.Src {
		return r
	}
	if k.SrcPort <= r.SrcPort {
		return k
	}
	return r
}

// ShardIndex returns the shard slot owning k — an inline FNV-1a over
// the canonical key, allocation-free, producing exactly the hash the
// original hash/fnv implementation did (pinned by a test). It is
// exported so the ingest read loop can hash each packet once at
// publish time and hand the precomputed slot to DoBatch.
func (st *ShardedTable) ShardIndex(k Key) int {
	c := canonical(k)
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(c.Src); i++ {
		h = (h ^ uint32(c.Src[i])) * prime32
	}
	h = (h ^ 0) * prime32
	h = (h ^ uint32(byte(c.SrcPort>>8))) * prime32
	h = (h ^ uint32(byte(c.SrcPort))) * prime32
	for i := 0; i < len(c.Dst); i++ {
		h = (h ^ uint32(c.Dst[i])) * prime32
	}
	h = (h ^ 0) * prime32
	h = (h ^ uint32(byte(c.DstPort>>8))) * prime32
	h = (h ^ uint32(byte(c.DstPort))) * prime32
	h = (h ^ uint32(byte(c.Proto))) * prime32
	return int(h) % len(st.shards)
}

func (st *ShardedTable) shardFor(k Key) *tableShard {
	return &st.shards[st.ShardIndex(k)]
}

// Do runs fn on the shard owning k while holding that shard's lock.
// All reads and writes of flows on that shard — Observe, classification
// and decision fields — must happen inside fn; flow pointers must not
// escape it.
func (st *ShardedTable) Do(k Key, fn func(t *Table)) {
	s := st.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	fn(s.t)
}

// Sweep visits every shard in turn, calling fn under the shard's lock.
// The expiry/re-evaluation sweep uses it to walk the whole table
// without ever holding more than one shard lock at a time.
func (st *ShardedTable) Sweep(fn func(t *Table)) {
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		fn(s.t)
		s.mu.Unlock()
	}
}

// HeadCap returns the per-flow head capacity (uniform across shards).
func (st *ShardedTable) HeadCap() int { return st.shards[0].t.HeadCap }

// Len returns the number of tracked flows across all shards.
func (st *ShardedTable) Len() int {
	n := 0
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		n += s.t.Len()
		s.mu.Unlock()
	}
	return n
}

// cell flattens a flow's (class, SNR) to its class-major matrix slot,
// collapsing the level in single-level spaces like Table.Matrix does.
func (st *ShardedTable) cell(class excr.AppClass, lvl excr.SNRLevel) int {
	if st.space.Levels == 1 {
		lvl = 0
	}
	return int(class)*st.space.Levels + int(lvl)
}

// Tracked reports whether the flow contributes to the running matrix:
// classified, decided, admitted, and inside the space.
func (st *ShardedTable) tracked(f *Flow) bool {
	if !f.Classified || !f.Decided || !f.Admitted {
		return false
	}
	lvl := f.SNR
	if st.space.Levels == 1 {
		lvl = 0
	}
	return int(f.Class) < st.space.Classes && int(lvl) < st.space.Levels
}

// TrackAdmitted folds a newly admitted, classified flow into the
// running traffic matrix. Call it (under the owning shard's Do) right
// after setting the flow's Classified/Decided/Admitted fields.
func (st *ShardedTable) TrackAdmitted(f *Flow) {
	if st.tracked(f) {
		st.counts[st.cell(f.Class, f.SNR)].Add(1)
		st.trackedN.Add(1)
	}
}

// UntrackAdmitted removes a previously tracked flow from the running
// matrix — used when re-evaluation discontinues an admitted flow. For
// a flow still in the table, call it under the owning shard's Do
// before clearing Admitted, so the matrix deduction and the flag flip
// are one atomic step against the packet workers. A flow already
// removed from the table (Expire's evictees) is exclusively owned by
// the caller — no worker can reach it — so no shard lock is needed;
// Expire untracks after releasing the lock for exactly that reason.
func (st *ShardedTable) UntrackAdmitted(f *Flow) {
	if st.tracked(f) {
		st.counts[st.cell(f.Class, f.SNR)].Add(-1)
		st.trackedN.Add(-1)
	}
}

// Matrix returns a snapshot of the admitted traffic matrix from the
// atomic counters. It is lock-free, so the per-packet admission path
// can read it without touching any shard.
func (st *ShardedTable) Matrix() excr.Matrix {
	flat := make([]int, len(st.counts))
	for i := range st.counts {
		if v := st.counts[i].Load(); v > 0 {
			flat[i] = int(v)
		}
	}
	return excr.MatrixFromCounts(st.space, flat)
}

// Expire removes flows idle past the timeout from every shard and
// returns them sorted by first-seen time (flow key on ties, so the
// label-feedback order is deterministic across runs). Admitted flows
// leaving the table are deducted from the running matrix — after the
// shard unlocks, which is safe because the evictees are already out of
// the table and exclusively ours (see UntrackAdmitted).
func (st *ShardedTable) Expire(now float64) []*Flow {
	var out []*Flow
	for i := range st.shards {
		s := &st.shards[i]
		s.mu.Lock()
		gone := s.t.Expire(now)
		s.mu.Unlock()
		for _, f := range gone {
			st.UntrackAdmitted(f)
		}
		st.expiredN.Add(int64(len(gone)))
		out = append(out, gone...)
	}
	sort.Slice(out, func(i, j int) bool { return flowBefore(out[i], out[j]) })
	return out
}

// Active returns copies of the live flows across all shards sorted by
// first-seen time (flow key on ties). Copies, not live records: the
// caller holds no shard lock, so it must not see pointers the packet
// workers are mutating.
func (st *ShardedTable) Active() []Flow {
	var out []Flow
	st.Sweep(func(t *Table) {
		for _, f := range t.Active() {
			out = append(out, *f)
		}
	})
	sort.Slice(out, func(i, j int) bool { return flowBefore(&out[i], &out[j]) })
	return out
}
