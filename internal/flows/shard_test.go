package flows

import (
	"fmt"
	"sync"
	"testing"

	"exbox/internal/excr"
)

func shardKey(i int) Key {
	return Key{
		Src: fmt.Sprintf("10.0.%d.%d", i/250, i%250), Dst: "sink",
		SrcPort: uint16(40000 + i), DstPort: 9, Proto: UDP,
	}
}

func TestShardedFoldsReverseKey(t *testing.T) {
	st := NewShardedTable(8, 5, 30, excr.DefaultSpace)
	k := shardKey(1)
	var f1, f2 *Flow
	st.Do(k, func(tab *Table) { f1 = tab.Observe(k, PacketMeta{Time: 1, Bytes: 100, Up: true}) })
	st.Do(k.Reverse(), func(tab *Table) { f2 = tab.Observe(k.Reverse(), PacketMeta{Time: 1.1, Bytes: 200, Up: true}) })
	if f1 != f2 {
		t.Fatal("a flow and its reverse must land on the same shard and fold")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	if f1.Head[1].Up {
		t.Fatal("reverse packet direction should be flipped")
	}
}

func TestShardedMatrixTracking(t *testing.T) {
	st := NewShardedTable(4, 5, 30, excr.MixedSNRSpace)
	k := shardKey(2)
	st.Do(k, func(tab *Table) {
		f := tab.Observe(k, PacketMeta{Time: 1, Bytes: 100})
		f.SNR = excr.SNRHigh
		f.Class, f.Classified, f.Decided, f.Admitted = excr.Streaming, true, true, true
		st.TrackAdmitted(f)
	})
	m := st.Matrix()
	if m.Get(excr.Streaming, excr.SNRHigh) != 1 || m.Total() != 1 {
		t.Fatalf("matrix = %v, want one streaming/high flow", m)
	}

	// A rejected flow never enters the matrix.
	k2 := shardKey(3)
	st.Do(k2, func(tab *Table) {
		f := tab.Observe(k2, PacketMeta{Time: 1, Bytes: 100})
		f.Class, f.Classified, f.Decided, f.Admitted = excr.Web, true, true, false
		st.TrackAdmitted(f)
	})
	if st.Matrix().Total() != 1 {
		t.Fatalf("rejected flow leaked into the matrix: %v", st.Matrix())
	}

	// Re-evaluation discontinues the admitted flow.
	st.Do(k, func(tab *Table) {
		f := tab.Get(k)
		st.UntrackAdmitted(f)
		f.Admitted = false
	})
	if st.Matrix().Total() != 0 {
		t.Fatalf("discontinued flow still counted: %v", st.Matrix())
	}
}

func TestShardedExpireAdjustsMatrix(t *testing.T) {
	st := NewShardedTable(4, 5, 10, excr.DefaultSpace)
	for i := 0; i < 3; i++ {
		k := shardKey(10 + i)
		st.Do(k, func(tab *Table) {
			f := tab.Observe(k, PacketMeta{Time: float64(i), Bytes: 100})
			f.Class, f.Classified, f.Decided, f.Admitted = excr.Web, true, true, true
			st.TrackAdmitted(f)
		})
	}
	if st.Matrix().Get(excr.Web, 0) != 3 {
		t.Fatalf("matrix = %v", st.Matrix())
	}
	gone := st.Expire(11.5) // flows first seen at t=0 and t=1 are idle >= 10s
	if len(gone) != 2 {
		t.Fatalf("expired %d flows, want 2", len(gone))
	}
	if gone[0].FirstSeen > gone[1].FirstSeen {
		t.Fatal("Expire output not sorted")
	}
	if st.Len() != 1 || st.Matrix().Get(excr.Web, 0) != 1 {
		t.Fatalf("post-expiry state wrong: len=%d matrix=%v", st.Len(), st.Matrix())
	}
}

func TestShardedSilenceSweep(t *testing.T) {
	st := NewShardedTable(4, 10, 30, excr.DefaultSpace)
	k := shardKey(20)
	// A short flow: only 2 of 10 head packets ever arrive.
	st.Do(k, func(tab *Table) {
		tab.Observe(k, PacketMeta{Time: 1, Bytes: 100})
		tab.Observe(k, PacketMeta{Time: 1.5, Bytes: 100})
	})
	found := 0
	st.Sweep(func(tab *Table) {
		for _, f := range tab.Active() {
			if f.ReadyBySilence(5, 2) {
				found++
			}
		}
	})
	if found != 1 {
		t.Fatalf("silence sweep found %d flows, want 1", found)
	}
}

// TestShardedConcurrent drives packet workers, a matrix reader and an
// expiry sweeper concurrently; run under -race.
func TestShardedConcurrent(t *testing.T) {
	st := NewShardedTable(8, 5, 1000, excr.DefaultSpace)
	const workers, flowsPer, packets = 4, 32, 20

	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < flowsPer; i++ {
				k := shardKey(w*flowsPer + i)
				for p := 0; p < packets; p++ {
					st.Do(k, func(tab *Table) {
						f := tab.Observe(k, PacketMeta{Time: float64(p), Bytes: 100})
						if f.Packets == 5 && !f.Decided {
							f.Class, f.Classified, f.Decided, f.Admitted = excr.Web, true, true, true
							st.TrackAdmitted(f)
						}
					})
				}
			}
		}(w)
	}

	stop := make(chan struct{})
	var sweeper sync.WaitGroup
	sweeper.Add(1)
	go func() {
		defer sweeper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = st.Matrix()
				_ = st.Expire(0) // timeout is huge; nothing expires
				_ = st.Active()
			}
		}
	}()

	writers.Wait()
	close(stop)
	sweeper.Wait()

	want := workers * flowsPer
	if st.Len() != want {
		t.Fatalf("Len = %d, want %d", st.Len(), want)
	}
	if got := st.Matrix().Get(excr.Web, 0); got != want {
		t.Fatalf("matrix count = %d, want %d", got, want)
	}
}
