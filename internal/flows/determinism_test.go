package flows

import (
	"fmt"
	"testing"

	"exbox/internal/excr"
)

// tieKey builds distinct keys that all share one FirstSeen tick.
func tieKey(i int) Key {
	return Key{
		Src: fmt.Sprintf("10.1.%d.%d", i/200, i%200), Dst: "sink",
		SrcPort: uint16(50000 + i), DstPort: 443, Proto: TCP,
	}
}

// TestKeyLessOrdersFields: the tie-break comparator is a strict weak
// order over (Src, Dst, SrcPort, DstPort, Proto), in that precedence.
func TestKeyLessOrdersFields(t *testing.T) {
	base := Key{Src: "a", Dst: "b", SrcPort: 1, DstPort: 2, Proto: TCP}
	cases := []struct {
		name string
		hi   Key
	}{
		{"src", Key{Src: "z", Dst: "a", SrcPort: 0, DstPort: 0, Proto: UDP}},
		{"dst", Key{Src: "a", Dst: "c", SrcPort: 0, DstPort: 0, Proto: UDP}},
		{"sport", Key{Src: "a", Dst: "b", SrcPort: 2, DstPort: 0, Proto: UDP}},
		{"dport", Key{Src: "a", Dst: "b", SrcPort: 1, DstPort: 3, Proto: UDP}},
		{"proto", Key{Src: "a", Dst: "b", SrcPort: 1, DstPort: 2, Proto: UDP}},
	}
	for _, tc := range cases {
		if !base.Less(tc.hi) || tc.hi.Less(base) {
			t.Fatalf("%s: want %+v < %+v strictly", tc.name, base, tc.hi)
		}
	}
	if base.Less(base) {
		t.Fatal("Less must be irreflexive")
	}
}

// TestExpireOrderDeterministicOnTies is the regression test for the
// sort.Slice-on-FirstSeen bug: with every flow sharing one arrival
// tick the old comparator gave map-iteration order, so two identical
// tables could expire the same flows in different orders. Now the key
// breaks the tie, so repeated runs — and independently built tables —
// must agree element-for-element.
func TestExpireOrderDeterministicOnTies(t *testing.T) {
	build := func(perm []int) *Table {
		tab := NewTable(5, 30)
		for _, i := range perm {
			tab.Observe(tieKey(i), PacketMeta{Time: 1, Bytes: 100})
		}
		return tab
	}
	perms := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7},
		{7, 6, 5, 4, 3, 2, 1, 0},
		{3, 0, 7, 1, 6, 2, 5, 4},
	}
	var want []Key
	for _, perm := range perms {
		gone := build(perm).Expire(100)
		if len(gone) != 8 {
			t.Fatalf("expired %d flows, want 8", len(gone))
		}
		got := make([]Key, len(gone))
		for i, f := range gone {
			got[i] = f.Key
		}
		for i := 1; i < len(gone); i++ {
			if !flowBefore(gone[i-1], gone[i]) {
				t.Fatalf("expire output not strictly ordered at %d: %+v !< %+v", i, gone[i-1].Key, gone[i].Key)
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("insertion order changed expire order: perm %v gave %+v at %d, want %+v", perm, got[i], i, want[i])
			}
		}
	}
}

// TestActiveOrderDeterministicOnTies: Active has the same contract —
// FirstSeen ascending, key-ordered within one tick — on both the plain
// table and the sharded one (where flows additionally arrive from
// different shards).
func TestActiveOrderDeterministicOnTies(t *testing.T) {
	tab := NewTable(5, 30)
	st := NewShardedTable(8, 5, 30, excr.DefaultSpace)
	// Two ticks, four tied flows each, fed in scrambled order.
	for _, i := range []int{5, 1, 6, 2, 7, 3, 4, 0} {
		tick := float64(1 + i/4)
		k := tieKey(i)
		tab.Observe(k, PacketMeta{Time: tick, Bytes: 100})
		st.Do(k, func(t *Table) { t.Observe(k, PacketMeta{Time: tick, Bytes: 100}) })
	}
	flat := tab.Active()
	if len(flat) != 8 {
		t.Fatalf("plain Active returned %d flows, want 8", len(flat))
	}
	for i := 1; i < len(flat); i++ {
		if !flowBefore(flat[i-1], flat[i]) {
			t.Fatalf("plain Active not strictly ordered at %d", i)
		}
	}
	sharded := st.Active()
	if len(sharded) != 8 {
		t.Fatalf("sharded Active returned %d flows, want 8", len(sharded))
	}
	for i := range sharded {
		if sharded[i].Key != flat[i].Key {
			t.Fatalf("sharded Active order diverged from plain at %d: %+v != %+v", i, sharded[i].Key, flat[i].Key)
		}
	}
	// Sharded expiry honors the same global order across shards.
	gone := st.Expire(100)
	if len(gone) != 8 {
		t.Fatalf("sharded Expire returned %d flows, want 8", len(gone))
	}
	for i := range gone {
		if gone[i].Key != flat[i].Key {
			t.Fatalf("sharded Expire order diverged at %d: %+v != %+v", i, gone[i].Key, flat[i].Key)
		}
	}
}
