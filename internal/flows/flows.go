// Package flows provides the middlebox-side flow abstraction: 5-tuple
// keys, per-flow packet accounting, and a flow table with idle expiry.
// The live gateway (cmd/exboxd and examples/livegateway) builds on it,
// and the flow classifier consumes the first-packets window it keeps.
//
// The design follows the usual middlebox pattern: a flow must be
// observed briefly before an admission decision can be made, because
// traffic classification needs the first few packets (Section 4.2 of
// the paper).
package flows

import (
	"fmt"
	"sort"

	"exbox/internal/excr"
	"exbox/internal/obs/trace"
)

// Proto is an IP protocol number; only TCP and UDP appear here.
type Proto uint8

// Common transport protocols.
const (
	TCP Proto = 6
	UDP Proto = 17
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("proto%d", uint8(p))
	}
}

// Key is a directed flow 5-tuple. The convention is client→server:
// Src identifies the mobile device, Dst the remote service.
type Key struct {
	Src, Dst         string // IP addresses (opaque strings)
	SrcPort, DstPort uint16
	Proto            Proto
}

// String implements fmt.Stringer.
func (k Key) String() string {
	return fmt.Sprintf("%s:%d->%s:%d/%s", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Reverse returns the opposite direction's key, used to fold both
// directions of a connection into one flow record.
func (k Key) Reverse() Key {
	return Key{Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort, Proto: k.Proto}
}

// Less orders keys lexicographically (Src, Dst, SrcPort, DstPort,
// Proto). It is the tie-break behind the time-sorted flow listings:
// FirstSeen alone is non-deterministic on same-tick arrivals, and the
// listings feed label feedback and the exit report, which must not
// reorder across runs.
func (k Key) Less(o Key) bool {
	if k.Src != o.Src {
		return k.Src < o.Src
	}
	if k.Dst != o.Dst {
		return k.Dst < o.Dst
	}
	if k.SrcPort != o.SrcPort {
		return k.SrcPort < o.SrcPort
	}
	if k.DstPort != o.DstPort {
		return k.DstPort < o.DstPort
	}
	return k.Proto < o.Proto
}

// flowBefore is the deterministic ordering every Expire/Active listing
// sorts by: first-seen time, then flow key on ties.
func flowBefore(a, b *Flow) bool {
	if a.FirstSeen != b.FirstSeen {
		return a.FirstSeen < b.FirstSeen
	}
	return a.Key.Less(b.Key)
}

// PacketMeta is the per-packet information the gateway records: no
// payload, matching the paper's note that classification works on
// encrypted traffic.
type PacketMeta struct {
	Time  float64 // seconds
	Bytes int
	Up    bool // client→server direction
}

// Flow is the table's per-flow record.
type Flow struct {
	Key  Key
	SNR  excr.SNRLevel // wireless link quality of the client, as reported by the AP/eNodeB
	Head []PacketMeta  // first packets, capped at the table's HeadCap

	Packets   int
	Bytes     int
	FirstSeen float64
	LastSeen  float64

	// Class is valid once Classified is true.
	Class      excr.AppClass
	Classified bool
	// Admitted reports the middlebox's decision for this flow.
	Admitted bool
	Decided  bool

	// Trace is the flow's lifecycle trace when the gateway sampled it
	// (or promoted it on a rejection), nil otherwise. The table only
	// carries it; the gateway owns span emission.
	Trace *trace.FlowTrace
}

// ReadyToClassify reports whether enough of the flow's head has been
// seen for the classifier to run (headCap packets; short flows that
// never fill the head are caught by ReadyBySilence instead).
func (f *Flow) ReadyToClassify(headCap int) bool {
	return !f.Classified && len(f.Head) >= headCap
}

// ReadyBySilence resolves the silence case: a short flow whose head
// never reached the cap can still be classified once it has at least
// one packet and has been quiet for silence seconds, since no further
// head packets are coming. The gateway's periodic sweep uses this so
// sparse flows get an admission decision instead of passing forever
// undecided.
func (f *Flow) ReadyBySilence(now, silence float64) bool {
	return !f.Classified && len(f.Head) > 0 && now-f.LastSeen >= silence
}

// Table tracks active flows at the gateway.
type Table struct {
	// HeadCap is how many leading packets are retained per flow for
	// classification.
	HeadCap int
	// IdleTimeout expires flows with no traffic for this many seconds.
	IdleTimeout float64

	flows map[Key]*Flow
}

// NewTable returns a table keeping headCap packets per flow and
// expiring flows idle longer than idleTimeout seconds.
func NewTable(headCap int, idleTimeout float64) *Table {
	if headCap <= 0 {
		headCap = 10
	}
	if idleTimeout <= 0 {
		idleTimeout = 60
	}
	return &Table{HeadCap: headCap, IdleTimeout: idleTimeout, flows: make(map[Key]*Flow)}
}

// Len returns the number of tracked flows.
func (t *Table) Len() int { return len(t.flows) }

// Get returns the flow for the key (or its reverse), or nil.
func (t *Table) Get(k Key) *Flow {
	if f, ok := t.flows[k]; ok {
		return f
	}
	if f, ok := t.flows[k.Reverse()]; ok {
		return f
	}
	return nil
}

// Observe accounts one packet to its flow, creating the flow on first
// sight. The returned flow is the live record (not a copy). A packet
// arriving on the reverse key is folded into the same flow with Up
// flipped.
func (t *Table) Observe(k Key, p PacketMeta) *Flow {
	f, ok := t.flows[k]
	if !ok {
		if rf, rok := t.flows[k.Reverse()]; rok {
			f = rf
			p.Up = !p.Up
		} else {
			f = &Flow{Key: k, FirstSeen: p.Time, LastSeen: p.Time}
			t.flows[k] = f
		}
	}
	t.observeInto(f, p)
	return f
}

// ObserveRun is Observe with a same-flow hint: when hint is the flow
// record k resolves to (its canonical key equals k exactly — a reverse
// hit never matches, so the direction flip stays with Observe), the
// map lookup is skipped entirely. UDP traffic arrives in per-flow
// packet trains, so a burst pipeline that passes the previous packet's
// flow as the hint pays one lookup per train instead of one per
// packet. Only sound while the caller has held the shard's lock
// continuously since hint was resolved: across a lock release the
// pointer may name a flow the sweep has already expired — which is
// exactly why the per-packet path, unlocking between packets, can
// never take this shortcut.
func (t *Table) ObserveRun(k Key, p PacketMeta, hint *Flow) *Flow {
	if hint != nil && hint.Key == k {
		t.observeInto(hint, p)
		return hint
	}
	return t.Observe(k, p)
}

// ObserveOwned folds one packet into f without any lookup or check:
// the caller asserts that f is the live record the packet's key
// resolves to. A gateway with interned per-client state can prove this
// by pointer identity — the same client entry implies the same key —
// for consecutive packets of a train, which is the byte-by-byte
// comparison ObserveRun performs, for free. The soundness requirement
// is the same as ObserveRun's: the shard lock must have been held
// continuously since f was resolved.
func (t *Table) ObserveOwned(f *Flow, p PacketMeta) {
	t.observeInto(f, p)
}

// observeInto folds one packet into an already-resolved flow record.
func (t *Table) observeInto(f *Flow, p PacketMeta) {
	f.Packets++
	f.Bytes += p.Bytes
	// A decided-and-rejected flow is being dropped at the gateway: its
	// client may keep transmitting into the drop, and refreshing
	// LastSeen on those packets would keep the dead flow alive forever
	// — never expiring, never feeding its labeled sample back, and
	// padding the flow table. Keep counting its packets and bytes, but
	// let its activity clock run out.
	if p.Time > f.LastSeen && !(f.Decided && !f.Admitted) {
		f.LastSeen = p.Time
	}
	if len(f.Head) < t.HeadCap {
		f.Head = append(f.Head, p)
	}
}

// Expire removes and returns flows idle past the timeout at time now,
// sorted by first-seen time (flow key on ties) for deterministic
// processing.
func (t *Table) Expire(now float64) []*Flow {
	var out []*Flow
	for k, f := range t.flows {
		if now-f.LastSeen >= t.IdleTimeout {
			out = append(out, f)
			delete(t.flows, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return flowBefore(out[i], out[j]) })
	return out
}

// Active returns the live flows sorted by first-seen time (flow key on
// ties).
func (t *Table) Active() []*Flow {
	out := make([]*Flow, 0, len(t.flows))
	for _, f := range t.flows {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return flowBefore(out[i], out[j]) })
	return out
}

// Matrix summarizes the admitted, classified flows as a traffic matrix
// over the space — the X the Admittance Classifier conditions on.
func (t *Table) Matrix(space excr.Space) excr.Matrix {
	m := excr.NewMatrix(space)
	for _, f := range t.flows {
		if !f.Classified || !f.Decided || !f.Admitted {
			continue
		}
		lvl := f.SNR
		if space.Levels == 1 {
			lvl = 0
		}
		if int(f.Class) < space.Classes && int(lvl) < space.Levels {
			m = m.Inc(f.Class, lvl)
		}
	}
	return m
}
