package flows

// This file is the flow table's burst entry point. The per-packet path
// (ShardedTable.Do) pays one shard-lock handshake and one key hash per
// packet; an ingest burst of B packets grouped by shard pays the hash
// once per packet (or zero, when the read loop pre-hashed at publish
// time) and each touched shard's lock exactly once. Grouping is a
// stable two-pass counting sort over the shard indices — no
// comparison sort, no allocation once the scratch has warmed up.
//
// Ordering contract: visits are grouped by shard and walk shards in
// slot order, so cross-shard arrival interleaving is not preserved —
// but relative order WITHIN a shard is, and a flow's packets all map
// to one shard (the hash is direction-canonical), so every per-flow
// observable (head window, byte counts, LastSeen monotonicity,
// classification trigger point) is identical to calling Do per packet
// in arrival order.

// BatchScratch is caller-owned workspace for DoBatch/ObserveBatch: the
// per-packet shard slots, the per-shard counters, and the grouped
// visit order. One per worker; grown on demand and reused across
// bursts. Must not be shared concurrently.
type BatchScratch struct {
	shard []int32 // per-packet shard slot
	count []int32 // per-shard counter, then run-end offsets
	order []int32 // packet indices, grouped by shard (stable)
}

// DoBatch runs visit(i, t) for every packet index i in [0, n), holding
// the owning shard's lock and taking each distinct shard's lock once
// per call. shardOf(i) must return ShardIndex of packet i's key — the
// ingest ring stores the slot computed at publish time, so the hash is
// off the drain path entirely. A nil sc allocates locally (convenience
// for cold callers); workers pass their own.
func (st *ShardedTable) DoBatch(sc *BatchScratch, n int, shardOf func(int) int, visit func(int, *Table)) {
	if n == 0 {
		return
	}
	if sc == nil {
		sc = &BatchScratch{}
	}
	ns := len(st.shards)
	if cap(sc.shard) < n {
		sc.shard = make([]int32, n)
		sc.order = make([]int32, n)
	}
	if cap(sc.count) < ns {
		sc.count = make([]int32, ns)
	}
	shard, order, count := sc.shard[:n], sc.order[:n], sc.count[:ns]
	for s := range count {
		count[s] = 0
	}
	for i := 0; i < n; i++ {
		s := shardOf(i)
		shard[i] = int32(s)
		count[s]++
	}
	// Prefix sums turn counts into run-start offsets; the stable
	// scatter advances them, leaving count[s] at the run's end.
	off := int32(0)
	for s := range count {
		c := count[s]
		count[s] = off
		off += c
	}
	for i := 0; i < n; i++ {
		s := shard[i]
		order[count[s]] = int32(i)
		count[s]++
	}
	start := int32(0)
	for s := 0; s < ns; s++ {
		end := count[s]
		if end == start {
			continue
		}
		sh := &st.shards[s]
		sh.mu.Lock()
		for _, i := range order[start:end] {
			visit(int(i), sh.t)
		}
		sh.mu.Unlock()
		start = end
	}
}

// PacketObs is one packet of an ingest burst: the directed flow key
// and the per-packet metadata to account.
type PacketObs struct {
	Key  Key
	Meta PacketMeta
}

// ObserveBatch folds a burst of packets into the table, taking each
// touched shard's lock once, and calls visit for every packet with the
// live flow record while still holding the owning shard's lock — the
// window where callers read or set flow decision state, exactly as
// inside Do. Flow pointers must not escape visit. See the file comment
// for the ordering contract. visit may be nil.
func (st *ShardedTable) ObserveBatch(sc *BatchScratch, pkts []PacketObs, visit func(i int, t *Table, f *Flow)) {
	st.DoBatch(sc, len(pkts),
		func(i int) int { return st.ShardIndex(pkts[i].Key) },
		func(i int, t *Table) {
			f := t.Observe(pkts[i].Key, pkts[i].Meta)
			if visit != nil {
				visit(i, t, f)
			}
		})
}
