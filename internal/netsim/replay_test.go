package netsim

import (
	"testing"

	"exbox/internal/excr"
)

// cbrSchedule builds a constant-bit-rate injected schedule for flow f.
func cbrSchedule(flow int, bps float64, pktBytes int, dur float64) []InjectedPacket {
	gap := float64(pktBytes*8) / bps
	var out []InjectedPacket
	for t := 0.0; t < dur; t += gap {
		out = append(out, InjectedPacket{Flow: flow, AtSec: t, Bytes: pktBytes})
	}
	return out
}

func TestEvaluateInjectedLightLoad(t *testing.T) {
	ps := NewPacketSim(WiFiCell, 1)
	meta := []ReplayFlow{
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Web, Level: excr.SNRHigh},
	}
	pkts := append(cbrSchedule(0, 4e6, 1400, 10), cbrSchedule(1, 1e6, 1200, 10)...)
	qos, err := ps.EvaluateInjected(meta, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if qos[0].ThroughputBps < 3.5e6 || qos[0].ThroughputBps > 4.5e6 {
		t.Fatalf("flow 0 goodput = %v, want ≈4 Mbps", qos[0].ThroughputBps)
	}
	if qos[1].ThroughputBps < 0.8e6 || qos[1].ThroughputBps > 1.2e6 {
		t.Fatalf("flow 1 goodput = %v, want ≈1 Mbps", qos[1].ThroughputBps)
	}
	if qos[0].LossRate > 0.001 || qos[1].LossRate > 0.001 {
		t.Fatal("light replay should be lossless")
	}
}

func TestEvaluateInjectedOverload(t *testing.T) {
	// Inject 40 Mbps into a testbed cell that can carry ~20 Mbps.
	ps := NewPacketSim(WiFiCell, 2)
	ps.WiFi = TestbedWiFi()
	meta := make([]ReplayFlow, 8)
	var pkts []InjectedPacket
	for i := range meta {
		meta[i] = ReplayFlow{Class: excr.Streaming, Level: excr.SNRHigh}
		pkts = append(pkts, cbrSchedule(i, 5e6, 1400, 8)...)
	}
	qos, err := ps.EvaluateInjected(meta, pkts)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	lossy := 0
	for _, q := range qos {
		total += q.ThroughputBps
		if q.LossRate > 0.05 {
			lossy++
		}
	}
	// The DES MAC sustains ≈26 Mbps of 1400 B frames at 30 Mbps PHY,
	// and the post-run drain window adds a little measured goodput.
	if total > 33e6 {
		t.Fatalf("aggregate %v exceeds cell capacity band", total)
	}
	if lossy < 6 {
		t.Fatalf("only %d flows saw loss under 2x overload", lossy)
	}
}

func TestEvaluateInjectedUnsorted(t *testing.T) {
	ps := NewPacketSim(LTECell, 3)
	meta := []ReplayFlow{{Class: excr.Conferencing, Level: excr.SNRHigh}}
	pkts := []InjectedPacket{
		{Flow: 0, AtSec: 2, Bytes: 1000},
		{Flow: 0, AtSec: 0.5, Bytes: 1000},
		{Flow: 0, AtSec: 1, Bytes: 1000},
	}
	qos, err := ps.EvaluateInjected(meta, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if qos[0].ThroughputBps <= 0 {
		t.Fatal("unsorted input should still deliver")
	}
}

func TestEvaluateInjectedValidation(t *testing.T) {
	ps := NewPacketSim(WiFiCell, 4)
	meta := []ReplayFlow{{Class: excr.Web, Level: excr.SNRHigh}}
	if _, err := ps.EvaluateInjected(meta, []InjectedPacket{{Flow: 5, AtSec: 0, Bytes: 100}}); err == nil {
		t.Fatal("out-of-range flow should error")
	}
	if _, err := ps.EvaluateInjected(meta, []InjectedPacket{{Flow: 0, AtSec: -1, Bytes: 100}}); err == nil {
		t.Fatal("negative time should error")
	}
	if _, err := ps.EvaluateInjected(meta, []InjectedPacket{{Flow: 0, AtSec: 0, Bytes: 0}}); err == nil {
		t.Fatal("zero-size packet should error")
	}
	out, err := ps.EvaluateInjected(nil, nil)
	if err != nil || len(out) != 0 {
		t.Fatal("empty replay should be a no-op")
	}
}
