package netsim

import (
	"math"
	"sort"

	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
)

// WiFiConfig parameterizes a single 802.11 cell.
type WiFiConfig struct {
	// PHYRateBps maps each SNR level to the station's PHY bit rate.
	PHYRateBps map[excr.SNRLevel]float64
	// MACEfficiency is the fraction of PHY rate available as goodput
	// after DIFS/backoff/ACK/header overhead (~0.6–0.7 for 802.11n).
	MACEfficiency float64
	// BaseDelayMs is the unloaded round-trip time through the cell.
	BaseDelayMs float64
	// MaxDelayMs caps the modeled delay (queues are finite).
	MaxDelayMs float64
	// Profiles gives per-class traffic characteristics.
	Profiles map[excr.AppClass]ClassProfile
}

// TestbedWiFi mirrors the paper's laptop-hosted hotspot: ~20 Mbps UDP
// capacity, 30–40 ms RTT, 10 clients.
func TestbedWiFi() WiFiConfig {
	return WiFiConfig{
		PHYRateBps: map[excr.SNRLevel]float64{
			excr.SNRLow:  14e6, // −80 dBm placement, a couple of MCS steps down
			excr.SNRHigh: 30e6,
		},
		MACEfficiency: 0.67, // 30 Mbps PHY → ~20 Mbps goodput
		BaseDelayMs:   35,
		MaxDelayMs:    1000,
		Profiles:      DefaultProfiles(),
	}
}

// SimWiFi mirrors the ns-3 802.11n 5 GHz WLAN of Section 6: a
// well-provisioned cell able to carry ≈25 streaming or ≈40
// conferencing flows.
func SimWiFi() WiFiConfig {
	return WiFiConfig{
		PHYRateBps: map[excr.SNRLevel]float64{
			excr.SNRLow:  20e6,  // ≈23 dB SNR
			excr.SNRHigh: 150e6, // ≈53 dB SNR
		},
		MACEfficiency: 0.65,
		BaseDelayMs:   5,
		MaxDelayMs:    2000,
		Profiles:      DefaultProfiles(),
	}
}

// FluidWiFi is the closed-form WiFi backend. DCF gives each contending
// station an equal long-run frame share, which equalizes goodput while
// letting low-PHY-rate stations consume disproportionate airtime: the
// 802.11 performance anomaly. The model water-fills goodput under the
// airtime constraint Σ xᵢ/rᵢ ≤ MACEfficiency.
type FluidWiFi struct {
	Config WiFiConfig
}

// Name implements Network.
func (w FluidWiFi) Name() string { return "fluid-wifi" }

// Evaluate implements Network.
func (w FluidWiFi) Evaluate(flows []FlowSpec) []metrics.QoS {
	if err := validateFlows(flows); err != nil {
		panic(err)
	}
	n := len(flows)
	out := make([]metrics.QoS, n)
	if n == 0 {
		return out
	}
	cfg := w.Config

	// Airtime cost per delivered bit for each flow.
	cost := make([]float64, n)
	dem := make([]float64, n)
	for i, f := range flows {
		rate := cfg.PHYRateBps[f.Level]
		if rate <= 0 {
			rate = 1e6
		}
		cost[i] = 1 / (rate * cfg.MACEfficiency)
		dem[i] = demand(f, cfg.Profiles)
	}

	x := waterfillEqualThroughput(dem, cost)

	// Airtime utilization drives queueing delay for everyone: the
	// medium is shared, so one station's backlog delays all.
	var util float64
	for i := range x {
		util += x[i] * cost[i]
	}
	util = mathx.Clamp(util, 0, 0.999)

	// DCF contention degrades everyone's goodput smoothly once the
	// channel-busy fraction passes ~3/4.
	eff := contentionEfficiency(util, 0.75, 1.0)
	for i := range flows {
		loss := 0.0
		if dem[i] > 0 {
			loss = mathx.Clamp((dem[i]-x[i])/dem[i], 0, 1)
		}
		delay := cfg.BaseDelayMs + queueDelayMs(util, cfg.MaxDelayMs)
		if loss > 0 {
			// Saturated flows sit behind a standing queue whose depth
			// grows with how far demand overshoots capacity.
			sev := mathx.Clamp(loss*4, 0, 1)
			delay += sev * (cfg.MaxDelayMs - delay)
		}
		out[i] = metrics.QoS{
			ThroughputBps: x[i] * eff,
			DelayMs:       math.Min(delay, cfg.MaxDelayMs),
			LossRate:      loss,
			Utilization:   util,
		}
	}
	return out
}

// waterfillEqualThroughput solves max-min throughput allocation under
// Σ xᵢ·costᵢ ≤ 1 with per-flow demand caps: each flow receives
// min(demand, T) where the common level T exhausts the airtime budget.
func waterfillEqualThroughput(dem, cost []float64) []float64 {
	n := len(dem)
	x := make([]float64, n)
	// If every demand fits, grant everything.
	var need float64
	for i := range dem {
		need += dem[i] * cost[i]
	}
	if need <= 1 {
		copy(x, dem)
		return x
	}
	// Sort demands ascending; peel off flows whose demand sits below
	// the rising water level.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return dem[idx[a]] < dem[idx[b]] })

	budget := 1.0
	var costRemaining float64
	for _, i := range idx {
		costRemaining += cost[i]
	}
	for pos, i := range idx {
		// Water level if all remaining flows were uncapped.
		level := budget / costRemaining
		if dem[i] <= level {
			x[i] = dem[i]
			budget -= dem[i] * cost[i]
			costRemaining -= cost[i]
			continue
		}
		// Everyone from here on is capped at the common level.
		for _, j := range idx[pos:] {
			x[j] = level
		}
		break
	}
	return x
}

// contentionEfficiency models the smooth per-flow goodput decline TCP
// flows experience as the medium fills up before hard saturation:
// collisions and backoff on WiFi, HARQ retransmissions and scheduling
// jitter on LTE. It multiplies the delivered throughput; shortfall is
// visible to the gateway as reduced goodput (not loss).
func contentionEfficiency(util, knee, slope float64) float64 {
	if util <= knee {
		return 1
	}
	return math.Max(1-slope*(util-knee), 0.4)
}

// queueDelayMs models queueing delay growth with utilization using an
// M/M/1-like 1/(1-ρ) curve. It caps at 300 ms (or maxMs if smaller):
// AQM and finite buffers bound steady-state bloat; the standing-queue
// penalty of outright saturation is applied separately from loss.
func queueDelayMs(util, maxMs float64) float64 {
	base := 10.0 // ms of queueing at light load
	d := base * util / (1 - util)
	return math.Min(d, math.Min(maxMs, 300))
}

// LTEConfig parameterizes a single LTE cell.
type LTEConfig struct {
	// CellRateBps maps each SNR (CQI) level to the rate a UE would get
	// with the whole cell to itself.
	CellRateBps map[excr.SNRLevel]float64
	// PerUEOverhead is the fraction of cell capacity lost per attached
	// active UE to control signalling (PDCCH, CQI reports, RB
	// granularity). 0 defaults to 2.5%.
	PerUEOverhead float64
	// BaseDelayMs is the unloaded round-trip time through the cell.
	BaseDelayMs float64
	// MaxDelayMs caps the modeled delay.
	MaxDelayMs float64
	// Profiles gives per-class traffic characteristics.
	Profiles map[excr.AppClass]ClassProfile
}

// TestbedLTE mirrors the paper's ip.access E-40 small cell: >30 Mbps
// capacity, 30–40 ms RTT, at most 8 UEs.
func TestbedLTE() LTEConfig {
	return LTEConfig{
		CellRateBps: map[excr.SNRLevel]float64{
			excr.SNRLow:  10e6,
			excr.SNRHigh: 32e6,
		},
		// Lab-grade EPC: heavy per-UE control overhead (the paper's
		// E-40 cannot even attach more than 8 UEs).
		PerUEOverhead: 0.05,
		BaseDelayMs:   35,
		MaxDelayMs:    1000,
		Profiles:      DefaultProfiles(),
	}
}

// SimLTE mirrors the ns-3 indoor LTE cell of Section 6 (23 dBm eNodeB).
func SimLTE() LTEConfig {
	return LTEConfig{
		CellRateBps: map[excr.SNRLevel]float64{
			excr.SNRLow:  18e6,
			excr.SNRHigh: 75e6,
		},
		BaseDelayMs: 15,
		MaxDelayMs:  2000,
		Profiles:    DefaultProfiles(),
	}
}

// FluidLTE is the closed-form LTE backend. The eNodeB scheduler hands
// out resource blocks, so fairness is in resource share: a UE's rate is
// its share of the cell times its own CQI-determined spectral
// efficiency. Low-CQI UEs therefore hurt mostly themselves — the
// structural difference from WiFi the paper leans on.
type FluidLTE struct {
	Config LTEConfig
}

// Name implements Network.
func (l FluidLTE) Name() string { return "fluid-lte" }

// Evaluate implements Network.
func (l FluidLTE) Evaluate(flows []FlowSpec) []metrics.QoS {
	if err := validateFlows(flows); err != nil {
		panic(err)
	}
	n := len(flows)
	out := make([]metrics.QoS, n)
	if n == 0 {
		return out
	}
	cfg := l.Config

	// Resource share needed per bit for flow i is 1/rate_i; fairness
	// is max-min in the resource fraction fᵢ with Σ fᵢ ≤ 1 and
	// xᵢ = fᵢ·rateᵢ capped by demand. Equivalently water-fill the
	// resource fractions.
	overhead := cfg.PerUEOverhead
	if overhead <= 0 {
		overhead = 0.025
	}
	capacityFactor := math.Max(1-overhead*float64(n), 0.5)
	rate := make([]float64, n)
	dem := make([]float64, n)
	fracDemand := make([]float64, n) // resource fraction to satisfy demand
	for i, f := range flows {
		r := cfg.CellRateBps[f.Level] * capacityFactor
		if r <= 0 {
			r = 1e6
		}
		rate[i] = r
		dem[i] = demand(f, cfg.Profiles)
		fracDemand[i] = dem[i] / r
	}
	frac := waterfillEqualShare(fracDemand)

	var util float64
	for i := range frac {
		util += frac[i]
	}
	util = mathx.Clamp(util, 0, 0.999)

	// The scheduler isolates UEs better than DCF, so the contention
	// knee sits later and the slope is shallower.
	eff := contentionEfficiency(util, 0.8, 1.2)
	for i := range flows {
		x := frac[i] * rate[i]
		loss := 0.0
		if dem[i] > 0 {
			loss = mathx.Clamp((dem[i]-x)/dem[i], 0, 1)
		}
		// LTE queues are per-UE: a saturated UE sees a standing queue
		// that deepens with its own overshoot; others see mild
		// scheduler delay only.
		delay := cfg.BaseDelayMs + 0.5*queueDelayMs(util, cfg.MaxDelayMs)
		if loss > 1e-9 {
			sev := mathx.Clamp(loss*4, 0, 1)
			delay += sev * (cfg.MaxDelayMs - delay)
		}
		out[i] = metrics.QoS{
			ThroughputBps: x * eff,
			DelayMs:       math.Min(delay, cfg.MaxDelayMs),
			LossRate:      loss,
			Utilization:   util,
		}
	}
	return out
}

// waterfillEqualShare max-min allocates a unit resource across flows
// with per-flow caps: every flow gets min(cap, F) where the common
// share F exhausts the budget.
func waterfillEqualShare(caps []float64) []float64 {
	n := len(caps)
	out := make([]float64, n)
	var need float64
	for _, c := range caps {
		need += c
	}
	if need <= 1 {
		copy(out, caps)
		return out
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return caps[idx[a]] < caps[idx[b]] })
	budget := 1.0
	remaining := n
	for pos, i := range idx {
		level := budget / float64(remaining)
		if caps[i] <= level {
			out[i] = caps[i]
			budget -= caps[i]
			remaining--
			continue
		}
		for _, j := range idx[pos:] {
			out[j] = level
		}
		break
	}
	return out
}
