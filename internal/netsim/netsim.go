// Package netsim is the wireless-network substrate standing in for the
// paper's ns-3 simulations and lab testbeds. It models a single WiFi
// access point or LTE eNodeB serving downlink flows and reports
// per-flow QoS (goodput, delay, loss).
//
// Two interchangeable backends implement the Network interface:
//
//   - Fluid: a closed-form capacity-sharing model. WiFi's DCF gives
//     stations equal per-frame (hence throughput) shares, so a low-SNR
//     station's airtime cost is socialized — the 802.11 "performance
//     anomaly" that Figure 3 of the paper demonstrates. LTE's
//     per-TTI resource scheduler gives equal resource-block shares, so
//     a low-CQI UE mostly hurts itself. Fluid evaluation is O(n·log n)
//     per traffic matrix and powers the large parameter sweeps.
//
//   - PacketSim: a discrete-event, packet-level simulation of the same
//     cell with per-station queues, on/off traffic per application
//     class, tail-drop losses and measured queueing delay. It is used
//     to validate the fluid model and for figure-scale runs.
//
// Both accept the same FlowSpec descriptions and are deterministic for
// a given seed.
package netsim

import (
	"fmt"

	"exbox/internal/excr"
	"exbox/internal/metrics"
)

// FlowSpec describes one downlink flow offered to a cell.
type FlowSpec struct {
	ID    int
	Class excr.AppClass
	Level excr.SNRLevel
	// DemandBps overrides the class's default offered load when > 0.
	DemandBps float64
	// PacketBytes overrides the class's default packet size when > 0.
	PacketBytes int
}

// Network evaluates the steady-state QoS each flow would experience if
// the given set of flows ran concurrently on the cell.
type Network interface {
	// Evaluate returns one QoS per flow, in input order.
	Evaluate(flows []FlowSpec) []metrics.QoS
	// Name identifies the backend and cell type for logs.
	Name() string
}

// ClassProfile captures the traffic characteristics of one application
// class: its offered load and packetization. Values are modeled on the
// traces the paper replays (BBC page loads, 720p YouTube, Skype video).
type ClassProfile struct {
	DemandBps   float64 // mean offered load, bits per second
	PacketBytes int     // typical downlink packet size
	Burstiness  float64 // peak-to-mean ratio of the on/off arrival process
}

// DefaultProfiles returns the per-class traffic profiles used across
// the experiments.
func DefaultProfiles() map[excr.AppClass]ClassProfile {
	return map[excr.AppClass]ClassProfile{
		// Web: short on/off bursts while a page loads; low average but
		// very bursty (think 1.5 MB page fetched in a couple seconds,
		// then idle while reading).
		excr.Web: {DemandBps: 1.0e6, PacketBytes: 1200, Burstiness: 4},
		// Streaming: 720p YouTube-like; chunked CBR around 4 Mbps.
		excr.Streaming: {DemandBps: 4.0e6, PacketBytes: 1400, Burstiness: 1.5},
		// Conferencing: Skype-like realtime video, ~2 Mbps, steady.
		excr.Conferencing: {DemandBps: 2.0e6, PacketBytes: 1000, Burstiness: 1.2},
	}
}

// demand resolves the offered load of a flow against the profiles.
func demand(f FlowSpec, profiles map[excr.AppClass]ClassProfile) float64 {
	if f.DemandBps > 0 {
		return f.DemandBps
	}
	if p, ok := profiles[f.Class]; ok {
		return p.DemandBps
	}
	return 1e6
}

// packetBytes resolves the packet size of a flow against the profiles.
func packetBytes(f FlowSpec, profiles map[excr.AppClass]ClassProfile) int {
	if f.PacketBytes > 0 {
		return f.PacketBytes
	}
	if p, ok := profiles[f.Class]; ok {
		return p.PacketBytes
	}
	return 1200
}

// FlowsForMatrix expands a traffic matrix into one FlowSpec per active
// flow, with IDs assigned in deterministic cell order.
//
// Convention: in a single-SNR-level space the one level stands for
// "high SNR" — the paper's testbed experiments place every client near
// the AP and split by SNR only in the mixed-SNR simulations.
func FlowsForMatrix(m excr.Matrix) []FlowSpec {
	var out []FlowSpec
	id := 0
	s := m.Space()
	for c := 0; c < s.Classes; c++ {
		for l := 0; l < s.Levels; l++ {
			level := excr.SNRLevel(l)
			if s.Levels == 1 {
				level = excr.SNRHigh
			}
			n := m.Get(excr.AppClass(c), excr.SNRLevel(l))
			for i := 0; i < n; i++ {
				out = append(out, FlowSpec{ID: id, Class: excr.AppClass(c), Level: level})
				id++
			}
		}
	}
	return out
}

// validateFlows rejects malformed specs early with a clear message.
func validateFlows(flows []FlowSpec) error {
	for i, f := range flows {
		if f.DemandBps < 0 {
			return fmt.Errorf("netsim: flow %d has negative demand", i)
		}
		if f.PacketBytes < 0 {
			return fmt.Errorf("netsim: flow %d has negative packet size", i)
		}
	}
	return nil
}
