package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
)

func highFlows(class excr.AppClass, n int) []FlowSpec {
	out := make([]FlowSpec, n)
	for i := range out {
		out[i] = FlowSpec{ID: i, Class: class, Level: excr.SNRHigh}
	}
	return out
}

func TestWaterfillEqualThroughputUnderLoad(t *testing.T) {
	// Two flows, same cost; budget only fits half the total demand.
	dem := []float64{10, 10}
	cost := []float64{0.1, 0.1} // full satisfaction needs 2.0 > 1
	x := waterfillEqualThroughput(dem, cost)
	if math.Abs(x[0]-5) > 1e-9 || math.Abs(x[1]-5) > 1e-9 {
		t.Fatalf("waterfill = %v, want [5 5]", x)
	}
}

func TestWaterfillRespectsSmallDemands(t *testing.T) {
	dem := []float64{1, 100}
	cost := []float64{0.1, 0.005}
	x := waterfillEqualThroughput(dem, cost)
	if x[0] != 1 {
		t.Fatalf("small demand should be fully granted, got %v", x[0])
	}
	// Remaining budget: 1 - 0.1 = 0.9 → x1 = 0.9/0.005 = 180 > demand? no, capped.
	want := math.Min(100, 0.9/0.005)
	if math.Abs(x[1]-want) > 1e-9 {
		t.Fatalf("x1 = %v, want %v", x[1], want)
	}
}

func TestWaterfillAllFit(t *testing.T) {
	x := waterfillEqualThroughput([]float64{1, 2}, []float64{0.1, 0.1})
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("unsaturated waterfill = %v", x)
	}
}

func TestWaterfillEqualShare(t *testing.T) {
	f := waterfillEqualShare([]float64{0.9, 0.9, 0.05})
	if f[2] != 0.05 {
		t.Fatalf("small cap should be granted, got %v", f[2])
	}
	if math.Abs(f[0]-f[1]) > 1e-9 {
		t.Fatalf("equal caps should get equal shares: %v", f)
	}
	if s := f[0] + f[1] + f[2]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("shares should exhaust budget, sum=%v", s)
	}
}

// Property: waterfill never exceeds demand, never exceeds budget, and
// is max-min fair (all capped flows share one level).
func TestQuickWaterfillInvariants(t *testing.T) {
	rng := mathx.NewRand(21)
	f := func() bool {
		n := 1 + rng.Intn(20)
		dem := make([]float64, n)
		cost := make([]float64, n)
		for i := range dem {
			dem[i] = rng.Float64() * 20
			cost[i] = 0.001 + rng.Float64()*0.2
		}
		x := waterfillEqualThroughput(dem, cost)
		var spent float64
		level := -1.0
		for i := range x {
			if x[i] < -1e-12 || x[i] > dem[i]+1e-9 {
				return false
			}
			spent += x[i] * cost[i]
			if x[i] < dem[i]-1e-9 { // capped flow
				if level < 0 {
					level = x[i]
				} else if math.Abs(level-x[i]) > 1e-6*(1+level) {
					return false
				}
			}
		}
		return spent <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFluidWiFiLightLoad(t *testing.T) {
	w := FluidWiFi{Config: SimWiFi()}
	qos := w.Evaluate(highFlows(excr.Streaming, 3))
	for _, q := range qos {
		if math.Abs(q.ThroughputBps-4e6) > 1 {
			t.Fatalf("light load should satisfy demand, got %v", q.ThroughputBps)
		}
		if q.LossRate != 0 {
			t.Fatalf("no loss expected at light load, got %v", q.LossRate)
		}
		if q.DelayMs < SimWiFi().BaseDelayMs || q.DelayMs > SimWiFi().BaseDelayMs+10 {
			t.Fatalf("delay %v out of expected light-load band", q.DelayMs)
		}
	}
}

func TestFluidWiFiSaturation(t *testing.T) {
	w := FluidWiFi{Config: SimWiFi()}
	// 97.5 Mbps effective / 4 Mbps ≈ 24 streaming flows; 40 must saturate.
	qos := w.Evaluate(highFlows(excr.Streaming, 40))
	sat := 0
	for _, q := range qos {
		if q.LossRate > 0.01 {
			sat++
		}
		if q.ThroughputBps > 4e6+1 {
			t.Fatalf("throughput above demand: %v", q.ThroughputBps)
		}
	}
	if sat != len(qos) {
		t.Fatalf("expected all 40 streaming flows degraded, got %d", sat)
	}
}

func TestFluidWiFiCapacityCrossover(t *testing.T) {
	// The streaming capacity should sit near the paper's ≈25 flows for
	// the ns-3-like cell.
	w := FluidWiFi{Config: SimWiFi()}
	atCap := func(n int) bool {
		for _, q := range w.Evaluate(highFlows(excr.Streaming, n)) {
			if q.LossRate > 0.01 {
				return true
			}
		}
		return false
	}
	if atCap(20) {
		t.Fatal("20 streaming flows should fit")
	}
	if !atCap(32) {
		t.Fatal("32 streaming flows should not fit")
	}
	// Conferencing capacity should be distinctly higher (≈40).
	c := func(n int) bool {
		for _, q := range w.Evaluate(highFlows(excr.Conferencing, n)) {
			if q.LossRate > 0.01 {
				return true
			}
		}
		return false
	}
	if c(35) {
		t.Fatal("35 conferencing flows should fit")
	}
	if !c(50) {
		t.Fatal("50 conferencing flows should not fit")
	}
}

func TestWiFiPerformanceAnomaly(t *testing.T) {
	// Figure 3's shape: adding low-SNR stations hurts high-SNR
	// stations too, because DCF is throughput-fair.
	w := FluidWiFi{Config: TestbedWiFi()}
	allHigh := w.Evaluate([]FlowSpec{
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRHigh},
	})
	mixed := w.Evaluate([]FlowSpec{
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRLow},
		{Class: excr.Streaming, Level: excr.SNRLow},
	})
	if mixed[0].ThroughputBps >= allHigh[0].ThroughputBps {
		t.Fatalf("high-SNR station should lose throughput when low-SNR stations join: %v vs %v",
			mixed[0].ThroughputBps, allHigh[0].ThroughputBps)
	}
}

func TestLTEIsolatesLowCQI(t *testing.T) {
	// In LTE the resource-fair scheduler largely isolates good UEs
	// from a bad one: the high-CQI UE keeps its demand satisfied.
	l := FluidLTE{Config: SimLTE()}
	mixed := l.Evaluate([]FlowSpec{
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRLow},
		{Class: excr.Streaming, Level: excr.SNRLow},
	})
	if mixed[0].LossRate > 0 || math.Abs(mixed[0].ThroughputBps-4e6) > 1e5 {
		t.Fatalf("high-CQI UE should be unaffected at light load: %+v", mixed[0])
	}
}

func TestLTESaturation(t *testing.T) {
	l := FluidLTE{Config: TestbedLTE()}
	// 32 Mbps cell: 20 streaming flows (50 Mbps demand) must degrade.
	qos := l.Evaluate(highFlows(excr.Streaming, 20))
	for _, q := range qos {
		if q.LossRate <= 0 {
			t.Fatalf("expected saturation loss, got %+v", q)
		}
	}
}

func TestFlowsForMatrix(t *testing.T) {
	m := excr.NewMatrix(excr.MixedSNRSpace).
		Set(excr.Web, excr.SNRHigh, 2).
		Set(excr.Conferencing, excr.SNRLow, 1)
	flows := FlowsForMatrix(m)
	if len(flows) != 3 {
		t.Fatalf("len = %d, want 3", len(flows))
	}
	// Deterministic IDs and cell order.
	if flows[0].Class != excr.Web || flows[0].Level != excr.SNRHigh || flows[0].ID != 0 {
		t.Fatalf("first flow wrong: %+v", flows[0])
	}
	if flows[2].Class != excr.Conferencing || flows[2].Level != excr.SNRLow {
		t.Fatalf("last flow wrong: %+v", flows[2])
	}
	if got := FlowsForMatrix(excr.NewMatrix(excr.DefaultSpace)); len(got) != 0 {
		t.Fatal("empty matrix should yield no flows")
	}
}

func TestEvaluateEmptyAndInvalid(t *testing.T) {
	for _, net := range []Network{FluidWiFi{Config: SimWiFi()}, FluidLTE{Config: SimLTE()}, NewPacketSim(WiFiCell, 1)} {
		if got := net.Evaluate(nil); len(got) != 0 {
			t.Fatalf("%s: Evaluate(nil) returned %d entries", net.Name(), len(got))
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative demand")
		}
	}()
	FluidWiFi{Config: SimWiFi()}.Evaluate([]FlowSpec{{DemandBps: -1}})
}

func TestPacketSimWiFiLightLoad(t *testing.T) {
	ps := NewPacketSim(WiFiCell, 7)
	qos := ps.Evaluate(highFlows(excr.Streaming, 3))
	for i, q := range qos {
		if q.ThroughputBps < 3.0e6 || q.ThroughputBps > 5.2e6 {
			t.Fatalf("flow %d goodput = %v, want ≈4 Mbps", i, q.ThroughputBps)
		}
		if q.LossRate > 0.001 {
			t.Fatalf("flow %d loss = %v at light load", i, q.LossRate)
		}
	}
}

func TestPacketSimWiFiOverload(t *testing.T) {
	ps := NewPacketSim(WiFiCell, 8)
	qos := ps.Evaluate(highFlows(excr.Streaming, 40))
	var totalTput, lossy float64
	for _, q := range qos {
		totalTput += q.ThroughputBps
		if q.LossRate > 0.02 {
			lossy++
		}
	}
	// Aggregate goodput should sit near the cell's effective capacity.
	if totalTput < 70e6 || totalTput > 115e6 {
		t.Fatalf("aggregate goodput = %v, want ~97 Mbps", totalTput)
	}
	if lossy < 30 {
		t.Fatalf("only %v flows saw loss under 40-flow overload", lossy)
	}
}

func TestPacketSimLTE(t *testing.T) {
	ps := NewPacketSim(LTECell, 9)
	qos := ps.Evaluate(highFlows(excr.Conferencing, 4))
	for i, q := range qos {
		if q.ThroughputBps < 1.5e6 || q.ThroughputBps > 2.6e6 {
			t.Fatalf("flow %d goodput = %v, want ≈2 Mbps", i, q.ThroughputBps)
		}
	}
	// Overload: 40 streaming UEs; per-UE overhead halves the 75 Mbps
	// cell, so aggregate goodput should land near 37.5 Mbps.
	qos = ps.Evaluate(highFlows(excr.Streaming, 40))
	var total float64
	for _, q := range qos {
		total += q.ThroughputBps
	}
	if total < 28e6 || total > 50e6 {
		t.Fatalf("aggregate LTE goodput = %v, want near 37.5 Mbps", total)
	}
}

func TestPacketSimDeterministic(t *testing.T) {
	a := NewPacketSim(WiFiCell, 42).Evaluate(highFlows(excr.Streaming, 5))
	b := NewPacketSim(WiFiCell, 42).Evaluate(highFlows(excr.Streaming, 5))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at flow %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewPacketSim(WiFiCell, 43).Evaluate(highFlows(excr.Streaming, 5))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical results (suspicious)")
	}
}

func TestPacketSimAnomalyMatchesFluid(t *testing.T) {
	// Cross-validate the two backends: both must show the WiFi anomaly
	// and agree on per-flow throughput within a loose band.
	flows := []FlowSpec{
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRHigh},
		{Class: excr.Streaming, Level: excr.SNRLow},
		{Class: excr.Streaming, Level: excr.SNRLow},
		{Class: excr.Streaming, Level: excr.SNRLow},
		{Class: excr.Streaming, Level: excr.SNRLow},
		{Class: excr.Streaming, Level: excr.SNRLow},
		{Class: excr.Streaming, Level: excr.SNRLow},
	}
	cfg := TestbedWiFi()
	fluid := FluidWiFi{Config: cfg}.Evaluate(flows)
	ps := NewPacketSim(WiFiCell, 11)
	ps.WiFi = cfg
	pkt := ps.Evaluate(flows)
	for i := range flows {
		f, p := fluid[i].ThroughputBps, pkt[i].ThroughputBps
		if f <= 0 || p <= 0 {
			t.Fatalf("flow %d zero throughput: fluid=%v pkt=%v", i, f, p)
		}
		// The fluid model folds DCF collision losses into a contention
		// efficiency the packet simulator does not model, so at deep
		// saturation the two diverge; a factor-3 band still catches
		// structural disagreement.
		ratio := p / f
		if ratio < 0.33 || ratio > 3.1 {
			t.Fatalf("flow %d fluid/packet disagree: fluid=%.0f pkt=%.0f", i, f, p)
		}
	}
	// Both should starve the high-SNR flow well below its 4 Mbps
	// demand: the performance anomaly.
	if fluid[0].ThroughputBps > 3.0e6 || pkt[0].ThroughputBps > 3.0e6 {
		t.Fatalf("anomaly missing: fluid=%v pkt=%v", fluid[0].ThroughputBps, pkt[0].ThroughputBps)
	}
}

func TestCellKindString(t *testing.T) {
	if WiFiCell.String() != "wifi" || LTECell.String() != "lte" {
		t.Fatal("CellKind strings wrong")
	}
	if NewPacketSim(WiFiCell, 1).Name() != "packet-wifi" {
		t.Fatal("Name wrong")
	}
}

// Property: adding a flow to a WiFi cell never improves anyone's QoS —
// throughput weakly decreases and delay weakly increases for the flows
// already present. This is the monotonicity the ExCR concept rests on.
func TestQuickFluidMonotoneInLoad(t *testing.T) {
	w := FluidWiFi{Config: SimWiFi()}
	rng := mathx.NewRand(51)
	f := func() bool {
		m := excr.NewMatrix(excr.DefaultSpace)
		for c := 0; c < 3; c++ {
			m = m.Set(excr.AppClass(c), 0, rng.Intn(15))
		}
		if m.Total() == 0 {
			return true
		}
		before := w.Evaluate(FlowsForMatrix(m))
		grown := m.Inc(excr.AppClass(rng.Intn(3)), 0)
		after := w.Evaluate(FlowsForMatrix(grown))
		// Compare flows by position; FlowsForMatrix emits cells in the
		// same order, with the new flow inserted within its class run,
		// so compare per-class aggregates instead of positions.
		for c := 0; c < 3; c++ {
			cls := excr.AppClass(c)
			bTput, bDelay := classStats(m, before, cls)
			aTput, aDelay := classStats(grown, after, cls)
			if m.Get(cls, 0) == 0 {
				continue
			}
			if aTput > bTput+1e-6 {
				return false
			}
			if aDelay < bDelay-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// classStats returns the mean per-flow throughput and delay of a class.
func classStats(m excr.Matrix, qos []metrics.QoS, cls excr.AppClass) (tput, delay float64) {
	flows := FlowsForMatrix(m)
	n := 0
	for i, f := range flows {
		if f.Class == cls {
			tput += qos[i].ThroughputBps
			delay += qos[i].DelayMs
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return tput / float64(n), delay / float64(n)
}

// Property: fluid and packet backends agree on which flows are starved
// (goodput below half demand) for random high-SNR matrices, within a
// one-flow tolerance.
func TestQuickFluidPacketStarvationAgreement(t *testing.T) {
	rng := mathx.NewRand(52)
	for trial := 0; trial < 8; trial++ {
		m := excr.NewMatrix(excr.DefaultSpace).
			Set(excr.Web, 0, rng.Intn(8)).
			Set(excr.Streaming, 0, rng.Intn(8)).
			Set(excr.Conferencing, 0, rng.Intn(8))
		if m.Total() == 0 {
			continue
		}
		// At deep saturation the backends diverge by design: DCF is
		// frame-fair (bigger frames win) while the fluid waterfill is
		// byte-fair. Compare them only up to moderate overload.
		demand := float64(m.Get(excr.Web, 0))*1e6 +
			float64(m.Get(excr.Streaming, 0))*4e6 +
			float64(m.Get(excr.Conferencing, 0))*2e6
		if demand > 1.25*20.1e6 {
			continue
		}
		flows := FlowsForMatrix(m)
		cfg := TestbedWiFi()
		fluid := FluidWiFi{Config: cfg}.Evaluate(flows)
		ps := NewPacketSim(WiFiCell, int64(trial))
		ps.WiFi = cfg
		pkt := ps.Evaluate(flows)
		profiles := cfg.Profiles
		disagree := 0
		for i, f := range flows {
			dem := profiles[f.Class].DemandBps
			fs := fluid[i].ThroughputBps < dem/2
			pk := pkt[i].ThroughputBps < dem/2
			if fs != pk {
				disagree++
			}
		}
		if disagree > 1+len(flows)/4 {
			t.Fatalf("trial %d (%v): %d/%d starvation disagreements", trial, m, disagree, len(flows))
		}
	}
}
