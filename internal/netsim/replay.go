package netsim

import (
	"container/heap"
	"fmt"
	"sort"

	"exbox/internal/excr"
	"exbox/internal/metrics"
)

// InjectedPacket is one externally supplied downlink packet for trace
// replay: the tcpreplay-into-tap-interface path of the paper's ns-3
// setup. Flow indexes into the replay's flow descriptors.
type InjectedPacket struct {
	Flow  int
	AtSec float64
	Bytes int
}

// ReplayFlow describes one flow of a replayed trace set.
type ReplayFlow struct {
	Class excr.AppClass
	Level excr.SNRLevel
}

// EvaluateInjected runs the packet-level simulation over an externally
// supplied packet schedule instead of the built-in generators —
// replaying real or synthetic captures through the simulated cell.
// Packets need not be sorted. The returned QoS is per flow, in
// descriptor order, measured over the span of the injected schedule.
func (ps *PacketSim) EvaluateInjected(flowsMeta []ReplayFlow, pkts []InjectedPacket) ([]metrics.QoS, error) {
	n := len(flowsMeta)
	out := make([]metrics.QoS, n)
	if n == 0 {
		return out, nil
	}
	var evs eventHeap
	end := 0.0
	for i, p := range pkts {
		if p.Flow < 0 || p.Flow >= n {
			return nil, fmt.Errorf("netsim: packet %d references flow %d of %d", i, p.Flow, n)
		}
		if p.Bytes <= 0 || p.AtSec < 0 {
			return nil, fmt.Errorf("netsim: packet %d has invalid size/time", i)
		}
		if p.AtSec > end {
			end = p.AtSec
		}
		evs = append(evs, event{at: p.AtSec, kind: 0, pkt: packet{flow: p.Flow, bytes: p.Bytes, arrival: p.AtSec}})
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].at < evs[b].at })
	heap.Init(&evs)

	ps.flowLevels = make([]excr.SNRLevel, n)
	for i, f := range flowsMeta {
		ps.flowLevels[i] = f.Level
	}
	qcap := ps.QueueCap
	if qcap <= 0 {
		qcap = 200
	}
	dur := end
	if dur <= 0 {
		dur = 1
	}

	queues := make([][]packet, n)
	stats := make([]flowStats, n)
	switch ps.Kind {
	case WiFiCell:
		ps.runWiFi(&evs, queues, stats, qcap, dur)
	case LTECell:
		ps.runLTE(&evs, queues, stats, qcap, dur)
	default:
		return nil, fmt.Errorf("netsim: unknown cell kind %d", ps.Kind)
	}

	baseDelay, maxDelay := ps.delays()
	for i := range out {
		s := stats[i]
		qos := metrics.QoS{DelayMs: baseDelay}
		if s.delivered > 0 {
			qos.ThroughputBps = s.deliveredBits / dur
			qos.DelayMs = minF(baseDelay+1e3*s.delaySum/float64(s.delivered), maxDelay)
		}
		if s.delivered+s.dropped > 0 {
			qos.LossRate = float64(s.dropped) / float64(s.delivered+s.dropped)
		}
		if s.dropped > 0 && s.delivered == 0 {
			qos.DelayMs = maxDelay
		}
		out[i] = qos
	}
	return out, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
