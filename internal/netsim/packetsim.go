package netsim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
)

// CellKind selects which radio access technology PacketSim models.
type CellKind int

const (
	// WiFiCell simulates an 802.11 DCF cell: one shared medium,
	// round-robin frame opportunities across stations.
	WiFiCell CellKind = iota
	// LTECell simulates an LTE cell: a per-TTI scheduler splitting
	// resources equally among backlogged UEs.
	LTECell
)

// String implements fmt.Stringer.
func (k CellKind) String() string {
	if k == WiFiCell {
		return "wifi"
	}
	return "lte"
}

// PacketSim is the discrete-event, packet-level backend. Each flow is
// an on/off packet process feeding a per-station downlink queue at the
// AP/eNodeB; the MAC drains queues according to the cell kind. QoS is
// measured per flow from delivered packets: goodput, mean queueing
// delay on top of the base RTT, and tail-drop loss.
//
// PacketSim is not safe for concurrent Evaluate calls; create one per
// goroutine.
type PacketSim struct {
	Kind     CellKind
	WiFi     WiFiConfig
	LTE      LTEConfig
	Duration float64 // simulated seconds; the paper uses 16 s runs
	Seed     int64
	QueueCap int // packets per station queue; 0 means 200

	flowLevels []excr.SNRLevel // per-flow SNR, set for the current run
}

// NewPacketSim returns a simulator with the paper's 16-second runs and
// the ns-3-like cell configuration for the kind.
func NewPacketSim(kind CellKind, seed int64) *PacketSim {
	ps := &PacketSim{Kind: kind, Duration: 16, Seed: seed, QueueCap: 200}
	if kind == WiFiCell {
		ps.WiFi = SimWiFi()
	} else {
		ps.LTE = SimLTE()
	}
	return ps
}

// Name implements Network.
func (ps *PacketSim) Name() string { return fmt.Sprintf("packet-%s", ps.Kind) }

// wifiFrameOverheadSec approximates per-frame MAC overhead (DIFS,
// average backoff, SIFS+ACK, PHY headers) in the A-MPDU aggregation
// era.
const wifiFrameOverheadSec = 60e-6

// lteTTISec is the LTE scheduling interval.
const lteTTISec = 1e-3

// packet is one queued downlink packet.
type packet struct {
	flow    int
	bytes   int
	arrival float64
}

// event is a heap entry: a packet arrival (kind 0) or a WiFi service
// completion (kind 1).
type event struct {
	at   float64
	kind int
	pkt  packet
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// flowStats accumulates per-flow delivery statistics.
type flowStats struct {
	deliveredBits float64
	delivered     int
	dropped       int
	delaySum      float64
}

// Evaluate implements Network.
func (ps *PacketSim) Evaluate(flows []FlowSpec) []metrics.QoS {
	if err := validateFlows(flows); err != nil {
		panic(err)
	}
	n := len(flows)
	out := make([]metrics.QoS, n)
	if n == 0 {
		return out
	}
	dur := ps.Duration
	if dur <= 0 {
		dur = 16
	}
	qcap := ps.QueueCap
	if qcap <= 0 {
		qcap = 200
	}
	profiles := ps.profiles()
	rng := mathx.NewRand(ps.Seed)

	ps.flowLevels = make([]excr.SNRLevel, n)
	for i, f := range flows {
		ps.flowLevels[i] = f.Level
	}

	evs := ps.generateArrivals(flows, profiles, dur, rng)
	heap.Init(&evs)

	queues := make([][]packet, n)
	stats := make([]flowStats, n)

	switch ps.Kind {
	case WiFiCell:
		ps.runWiFi(&evs, queues, stats, qcap, dur)
	case LTECell:
		ps.runLTE(&evs, queues, stats, qcap, dur)
	default:
		panic(fmt.Sprintf("netsim: unknown cell kind %d", ps.Kind))
	}

	baseDelay, maxDelay := ps.delays()
	for i := range flows {
		s := stats[i]
		qos := metrics.QoS{DelayMs: baseDelay}
		if s.delivered > 0 {
			qos.ThroughputBps = s.deliveredBits / dur
			qos.DelayMs = math.Min(baseDelay+1e3*s.delaySum/float64(s.delivered), maxDelay)
		}
		if s.delivered+s.dropped > 0 {
			qos.LossRate = float64(s.dropped) / float64(s.delivered+s.dropped)
		}
		if s.dropped > 0 && s.delivered == 0 {
			qos.DelayMs = maxDelay
		}
		out[i] = qos
	}
	return out
}

// generateArrivals pre-computes every packet arrival per flow from an
// on/off process whose long-run mean matches the class demand.
func (ps *PacketSim) generateArrivals(flows []FlowSpec, profiles map[excr.AppClass]ClassProfile, dur float64, rng *rand.Rand) eventHeap {
	var evs eventHeap
	for i, f := range flows {
		dem := demand(f, profiles)
		pbytes := packetBytes(f, profiles)
		burst := 1.5
		if p, ok := profiles[f.Class]; ok && p.Burstiness > 0 {
			burst = p.Burstiness
		}
		peak := dem * burst
		pktGap := float64(pbytes*8) / peak
		// Short on/off cycles keep the realized mean close to the
		// class demand within a 16 s run while preserving burstiness.
		meanOn := 0.3
		meanOff := meanOn * (burst - 1)
		t := rng.Float64() * meanOn // staggered start
		onLeft := mathx.Exponential(rng, meanOn)
		for t < dur {
			evs = append(evs, event{at: t, kind: 0, pkt: packet{flow: i, bytes: pbytes, arrival: t}})
			t += pktGap
			onLeft -= pktGap
			if onLeft <= 0 {
				if meanOff > 1e-9 {
					t += mathx.Exponential(rng, meanOff)
				}
				onLeft = mathx.Exponential(rng, meanOn)
			}
		}
	}
	return evs
}

func (ps *PacketSim) profiles() map[excr.AppClass]ClassProfile {
	if ps.Kind == WiFiCell {
		if ps.WiFi.Profiles != nil {
			return ps.WiFi.Profiles
		}
	} else if ps.LTE.Profiles != nil {
		return ps.LTE.Profiles
	}
	return DefaultProfiles()
}

func (ps *PacketSim) delays() (base, max float64) {
	if ps.Kind == WiFiCell {
		base, max = ps.WiFi.BaseDelayMs, ps.WiFi.MaxDelayMs
	} else {
		base, max = ps.LTE.BaseDelayMs, ps.LTE.MaxDelayMs
	}
	if max <= 0 {
		max = 2000
	}
	return base, max
}

// runWiFi serves the shared medium: whenever idle, the AP takes the
// head-of-line packet from the next non-empty station queue in
// round-robin order — DCF's long-run equal frame share — and occupies
// the air for the frame's transmission time at that station's PHY rate.
// Low-SNR stations therefore consume disproportionate airtime, which is
// exactly the 802.11 performance anomaly the paper's Figure 3 shows.
func (ps *PacketSim) runWiFi(evs *eventHeap, queues [][]packet, stats []flowStats, qcap int, dur float64) {
	rates := ps.WiFi.PHYRateBps
	rr := 0
	serving := false

	serviceTime := func(p packet) float64 {
		r := rates[ps.flowLevels[p.flow]]
		if r <= 0 {
			r = 1e6
		}
		return float64(p.bytes*8)/r + wifiFrameOverheadSec
	}
	startNext := func(now float64) {
		if serving {
			return
		}
		for scan := 0; scan < len(queues); scan++ {
			i := (rr + scan) % len(queues)
			if len(queues[i]) > 0 {
				p := queues[i][0]
				queues[i] = queues[i][1:]
				rr = i + 1
				serving = true
				heap.Push(evs, event{at: now + serviceTime(p), kind: 1, pkt: p})
				return
			}
		}
	}

	for evs.Len() > 0 {
		e := heap.Pop(evs).(event)
		if e.at > dur+5 { // bounded drain after the run
			break
		}
		switch e.kind {
		case 0: // arrival
			if len(queues[e.pkt.flow]) >= qcap {
				stats[e.pkt.flow].dropped++
			} else {
				queues[e.pkt.flow] = append(queues[e.pkt.flow], e.pkt)
			}
			startNext(e.at)
		case 1: // frame delivered
			s := &stats[e.pkt.flow]
			s.delivered++
			s.deliveredBits += float64(e.pkt.bytes * 8)
			s.delaySum += e.at - e.pkt.arrival
			serving = false
			startNext(e.at)
		}
	}
}

// runLTE advances a 1 ms TTI clock. Each TTI the scheduler splits the
// cell's resources equally among backlogged UEs; a UE drains
// bits = (cellRate(level)/nBacklogged)·TTI from its queue. Because the
// split is in resources rather than frames, a low-CQI UE's poor
// spectral efficiency costs mostly itself.
func (ps *PacketSim) runLTE(evs *eventHeap, queues [][]packet, stats []flowStats, qcap int, dur float64) {
	rates := ps.LTE.CellRateBps
	overhead := ps.LTE.PerUEOverhead
	if overhead <= 0 {
		overhead = 0.025
	}
	capacityFactor := math.Max(1-overhead*float64(len(queues)), 0.5)
	residual := make([]float64, len(queues)) // partially-used TTI budget

	now := 0.0
	for now < dur+5 {
		// Ingest arrivals up to the start of this TTI.
		for evs.Len() > 0 && (*evs)[0].at <= now {
			e := heap.Pop(evs).(event)
			if len(queues[e.pkt.flow]) >= qcap {
				stats[e.pkt.flow].dropped++
			} else {
				queues[e.pkt.flow] = append(queues[e.pkt.flow], e.pkt)
			}
		}
		backlogged := 0
		for i := range queues {
			if len(queues[i]) > 0 {
				backlogged++
			}
		}
		next := now + lteTTISec
		if backlogged > 0 {
			share := 1.0 / float64(backlogged)
			for i := range queues {
				if len(queues[i]) == 0 {
					continue
				}
				r := rates[ps.flowLevels[i]] * capacityFactor
				if r <= 0 {
					r = 1e6
				}
				budget := r*share*lteTTISec + residual[i]
				for len(queues[i]) > 0 {
					p := queues[i][0]
					bits := float64(p.bytes * 8)
					if budget < bits {
						break
					}
					budget -= bits
					queues[i] = queues[i][1:]
					s := &stats[i]
					s.delivered++
					s.deliveredBits += bits
					s.delaySum += next - p.arrival
				}
				if len(queues[i]) > 0 {
					residual[i] = budget
				} else {
					residual[i] = 0
				}
			}
		}
		now = next
		if evs.Len() == 0 {
			empty := true
			for i := range queues {
				if len(queues[i]) > 0 {
					empty = false
					break
				}
			}
			if empty {
				break
			}
		}
	}
}
