package baseline

import (
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
)

func TestRateBased(t *testing.T) {
	// Capacity for exactly 4 streaming flows at 4 Mbps.
	r := NewRateBased(16e6)
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 3)
	if !r.Decide(excr.Arrival{Matrix: m, Class: excr.Streaming}).Admit {
		t.Fatal("4th streaming flow fits 16 Mbps")
	}
	m = m.Inc(excr.Streaming, 0)
	if r.Decide(excr.Arrival{Matrix: m, Class: excr.Streaming}).Admit {
		t.Fatal("5th streaming flow must be rejected")
	}
	// With 3 streaming flows (12 Mbps used), a lighter class still
	// fits the leftover capacity even though another stream would not.
	three := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 3)
	if !r.Decide(excr.Arrival{Matrix: three, Class: excr.Web}).Admit {
		t.Fatal("web flow (1 Mbps) should fit the remaining 4 Mbps")
	}
}

func TestRateBasedCustomDemands(t *testing.T) {
	r := &RateBased{CapacityBps: 5e6, Demands: map[excr.AppClass]float64{excr.Web: 5e6}}
	empty := excr.NewMatrix(excr.DefaultSpace)
	if !r.Decide(excr.Arrival{Matrix: empty, Class: excr.Web}).Admit {
		t.Fatal("first 5 Mbps flow fits exactly")
	}
	one := empty.Inc(excr.Web, 0)
	if r.Decide(excr.Arrival{Matrix: one, Class: excr.Web}).Admit {
		t.Fatal("second 5 Mbps flow must be rejected")
	}
	// Unknown class in Demands map falls back to defaults.
	if !r.Decide(excr.Arrival{Matrix: empty, Class: excr.Conferencing}).Admit {
		t.Fatal("conferencing should use default demand and fit")
	}
}

func TestMaxClient(t *testing.T) {
	mc := NewMaxClient(10)
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 9)
	if !mc.Decide(excr.Arrival{Matrix: m, Class: excr.Web}).Admit {
		t.Fatal("10th client should be admitted")
	}
	m = m.Inc(excr.Web, 0)
	if mc.Decide(excr.Arrival{Matrix: m, Class: excr.Web}).Admit {
		t.Fatal("11th client must be rejected")
	}
}

func TestControllersIgnoreObservations(t *testing.T) {
	// Baselines satisfy the Controller interface and are insensitive
	// to training data.
	var controllers = []classifier.Controller{NewRateBased(20e6), NewMaxClient(10)}
	a := excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web}
	for _, c := range controllers {
		before := c.Decide(a)
		for i := 0; i < 50; i++ {
			c.Observe(excr.Sample{Arrival: a, Label: -1})
		}
		if c.Decide(a) != before {
			t.Fatalf("%s changed its decision after observations", c.Name())
		}
	}
	if controllers[0].Name() != "RateBased" || controllers[1].Name() != "MaxClient" {
		t.Fatal("names wrong")
	}
}
