// Package baseline implements the two admission-control baselines the
// paper compares ExBox against:
//
//   - RateBased: the purely rate-driven scheme used by commercial
//     products (Cisco, Ruckus, Microsoft Skype for Business): a flow
//     is admitted while the sum of per-flow rate requirements stays
//     under the provisioned capacity C.
//
//   - MaxClient: the maximum-flow-count scheme (Aruba, IBM): admit up
//     to N flows, reject everything beyond.
//
// Both are stateless with respect to observations — they have no
// training phase and ignore ground-truth labels — which is exactly why
// the paper finds them insensitive to batch size and unable to adapt.
package baseline

import (
	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/netsim"
)

// RateBased admits a flow of class g only when
// C − Σ_{ongoing flows} c_f ≥ c_g, with per-class rate requirements
// taken from the traffic profiles.
type RateBased struct {
	// CapacityBps is C, the provisioned capacity. The paper sets it to
	// the maximum UDP throughput measured on each testbed.
	CapacityBps float64
	// Demands maps each class to its rate requirement c_f. Nil uses
	// netsim.DefaultProfiles.
	Demands map[excr.AppClass]float64
}

// NewRateBased returns a RateBased controller for capacity C using the
// default class demands.
func NewRateBased(capacityBps float64) *RateBased {
	return &RateBased{CapacityBps: capacityBps}
}

// Name implements classifier.Controller.
func (r *RateBased) Name() string { return "RateBased" }

// Observe implements classifier.Controller; RateBased does not learn.
func (r *RateBased) Observe(excr.Sample) {}

// Decide implements classifier.Controller.
func (r *RateBased) Decide(a excr.Arrival) classifier.Decision {
	used := 0.0
	space := a.Matrix.Space()
	for c := 0; c < space.Classes; c++ {
		cls := excr.AppClass(c)
		used += float64(a.Matrix.ClassTotal(cls)) * r.demand(cls)
	}
	admit := r.CapacityBps-used >= r.demand(a.Class)
	return classifier.Decision{Admit: admit}
}

func (r *RateBased) demand(c excr.AppClass) float64 {
	if r.Demands != nil {
		if d, ok := r.Demands[c]; ok {
			return d
		}
	}
	if p, ok := netsim.DefaultProfiles()[c]; ok {
		return p.DemandBps
	}
	return 1e6
}

// MaxClient admits up to MaxFlows concurrent flows. The paper
// configures 10, following Aruba's and IBM's defaults.
type MaxClient struct {
	MaxFlows int
}

// NewMaxClient returns a MaxClient controller with the given limit.
func NewMaxClient(max int) *MaxClient { return &MaxClient{MaxFlows: max} }

// Name implements classifier.Controller.
func (m *MaxClient) Name() string { return "MaxClient" }

// Observe implements classifier.Controller; MaxClient does not learn.
func (m *MaxClient) Observe(excr.Sample) {}

// Decide implements classifier.Controller.
func (m *MaxClient) Decide(a excr.Arrival) classifier.Decision {
	return classifier.Decision{Admit: a.Matrix.Total() < m.MaxFlows}
}
