package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"exbox/internal/mathx"
)

func TestConfusionCounts(t *testing.T) {
	var c Confusion
	c.Observe(+1, +1) // TP
	c.Observe(+1, -1) // FP
	c.Observe(-1, -1) // TN
	c.Observe(-1, +1) // FN
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Fatalf("counts wrong: %+v", c)
	}
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.Precision(); got != 0.5 {
		t.Fatalf("Precision = %v", got)
	}
	if got := c.Recall(); got != 0.5 {
		t.Fatalf("Recall = %v", got)
	}
	if got := c.Accuracy(); got != 0.5 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := c.F1(); got != 0.5 {
		t.Fatalf("F1 = %v", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	var c Confusion
	if c.Precision() != 1 || c.Recall() != 1 {
		t.Fatal("empty confusion should report precision=recall=1")
	}
	if c.Accuracy() != 0 {
		t.Fatal("empty confusion accuracy should be 0")
	}
	c.Observe(-1, -1)
	if c.Precision() != 1 {
		t.Fatal("no admissions yet: precision should stay 1")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	b := Confusion{TP: 10, FP: 20, TN: 30, FN: 40}
	a.Add(b)
	if a.TP != 11 || a.FP != 22 || a.TN != 33 || a.FN != 44 {
		t.Fatalf("Add result: %+v", a)
	}
}

func TestConfusionString(t *testing.T) {
	c := Confusion{TP: 1}
	if c.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

// Property: metrics always land in [0,1] no matter the outcome stream.
func TestQuickConfusionBounds(t *testing.T) {
	rng := mathx.NewRand(3)
	f := func() bool {
		var c Confusion
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			pred := float64(rng.Intn(3) - 1) // -1, 0, +1: 0 must count as reject
			act := float64(rng.Intn(2)*2 - 1)
			c.Observe(pred, act)
		}
		for _, v := range []float64{c.Precision(), c.Recall(), c.Accuracy(), c.F1()} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return c.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQoSScalar(t *testing.T) {
	q := QoS{ThroughputBps: 10e6, DelayMs: 50}
	if got := q.Scalar(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Scalar = %v, want 0.2", got)
	}
	// Delay floor prevents blow-up.
	q = QoS{ThroughputBps: 1e6, DelayMs: 0}
	if got := q.Scalar(); got != 1 {
		t.Fatalf("Scalar with zero delay = %v, want 1", got)
	}
}

func TestMonitorLifecycle(t *testing.T) {
	m := NewMonitorAt(0.5, 0)
	if m.Ready() {
		t.Fatal("fresh monitor must not be ready")
	}
	m.AddBytes(125_000) // 1 Mbit
	m.Tick(1.0)
	m.ObserveDelay(40)
	m.ObserveLoss(0.01)
	if !m.Ready() {
		t.Fatal("monitor should be ready after throughput+delay samples")
	}
	qos := m.Snapshot()
	if math.Abs(qos.ThroughputBps-1e6) > 1 {
		t.Fatalf("throughput = %v, want 1e6", qos.ThroughputBps)
	}
	if qos.DelayMs != 40 {
		t.Fatalf("delay = %v", qos.DelayMs)
	}
	if qos.LossRate != 0.01 {
		t.Fatalf("loss = %v", qos.LossRate)
	}
	// Second window halves the rate; EWMA(0.5) should land between.
	m.AddBytes(62_500)
	m.Tick(2.0)
	got := m.Snapshot().ThroughputBps
	if got <= 0.5e6 || got >= 1e6 {
		t.Fatalf("smoothed throughput = %v, want in (0.5e6, 1e6)", got)
	}
}

func TestMonitorIgnoresNonAdvancingTick(t *testing.T) {
	m := NewMonitorAt(0.5, 0)
	m.AddBytes(1000)
	m.Tick(0) // dt == 0: must be ignored, not divide by zero
	if m.Ready() {
		t.Fatal("tick with no elapsed time should not initialize throughput")
	}
}

// TestMonitorFirstTickOpensWindow is the regression test for the
// first-window dilution bug: a monitor created mid-run (at t=100 here)
// must not divide its first window's bytes by the full 0..now span.
// The first Tick only opens the window; the second closes a properly
// bounded one and must yield the exact rate.
func TestMonitorFirstTickOpensWindow(t *testing.T) {
	m := NewMonitor(0.5)
	m.AddBytes(999_999) // pre-window bytes: discarded when the window opens
	m.Tick(100.0)
	if m.Ready() {
		t.Fatal("opening tick must not book a throughput sample")
	}
	m.AddBytes(125_000) // 1 Mbit over the 1s window below
	m.Tick(101.0)
	m.ObserveDelay(1)
	got := m.Snapshot().ThroughputBps
	if math.Abs(got-1e6) > 1 {
		t.Fatalf("first closed window throughput = %v, want 1e6 (diluted by the pre-open span?)", got)
	}
}

func TestMonitorLossClamped(t *testing.T) {
	m := NewMonitor(1.0)
	m.ObserveLoss(7)
	if got := m.Snapshot().LossRate; got != 1 {
		t.Fatalf("loss = %v, want clamped to 1", got)
	}
	m.ObserveLoss(-3)
	if got := m.Snapshot().LossRate; got != 0 {
		t.Fatalf("loss = %v, want clamped to 0", got)
	}
}
