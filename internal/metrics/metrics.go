// Package metrics provides the evaluation arithmetic used throughout
// the ExBox experiments (precision, recall, accuracy over admission
// decisions) and passive per-flow QoS monitors that mirror what the
// middlebox can observe on the network side (throughput, delay, loss).
package metrics

import (
	"fmt"

	"exbox/internal/mathx"
)

// Confusion accumulates binary admission outcomes. The positive class
// is "admit" (+1): a true positive is a flow that was admitted and
// indeed kept the network's QoE acceptable.
type Confusion struct {
	TP, FP, TN, FN int
}

// Observe records one decision. predicted and actual follow the paper's
// label convention: +1 admissible, -1 inadmissible. Any positive value
// counts as +1 and any other value as -1.
func (c *Confusion) Observe(predicted, actual float64) {
	p := predicted > 0
	a := actual > 0
	switch {
	case p && a:
		c.TP++
	case p && !a:
		c.FP++
	case !p && !a:
		c.TN++
	default:
		c.FN++
	}
}

// Add merges another confusion matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total returns the number of recorded decisions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Precision is the ratio of correctly admitted flows to admitted flows.
// Following the paper's usage, an undefined ratio (no admissions yet)
// reports 1: the classifier has made no admission mistakes.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is the ratio of correctly admitted flows to flows that could
// have been admitted. Undefined (no admissible flows seen) reports 1.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy is the overall fraction of correct decisions (admit or
// reject). Undefined (no decisions) reports 0.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// F1 returns the harmonic mean of precision and recall, 0 when both
// are 0.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String renders the matrix compactly for logs.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d p=%.3f r=%.3f a=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Precision(), c.Recall(), c.Accuracy())
}

// QoS is the per-flow quality-of-service snapshot the middlebox
// measures passively at the gateway. Section 5.3 of the paper models
// the scalar QoS driving IQX as throughput/delay; Scalar implements
// that convention.
type QoS struct {
	ThroughputBps float64 // application-level goodput, bits per second
	DelayMs       float64 // round-trip delay, milliseconds
	LossRate      float64 // packet loss fraction in [0, 1]
	// Utilization is the fraction of the cell's capacity in use
	// (channel-busy fraction at a WiFi AP, resource-block usage at an
	// eNodeB). Gateways can measure it passively; the app models use
	// it to slow short bursts down in busy cells.
	Utilization float64
}

// Scalar collapses the QoS vector into the single value used by the
// IQX hypothesis: average throughput (Mbps) divided by delay (ms).
// A floor on delay avoids division blow-ups on idealized simulations.
func (q QoS) Scalar() float64 {
	d := q.DelayMs
	if d < 1 {
		d = 1
	}
	return (q.ThroughputBps / 1e6) / d
}

// Monitor is a passive per-flow QoS monitor fed from gateway
// observations (bytes forwarded, RTT probes, loss counts). It keeps
// exponentially weighted estimates so the middlebox reacts to drift
// without being whipped by per-packet noise.
type Monitor struct {
	tput  *mathx.EWMA
	delay *mathx.EWMA
	loss  *mathx.EWMA

	bytes    float64
	lastTick float64
	opened   bool // a window is open: lastTick marks its start
}

// NewMonitor returns a monitor with smoothing factor alpha (0,1].
// The first Tick opens the accounting window; use NewMonitorAt to
// open it at a known start time instead.
func NewMonitor(alpha float64) *Monitor {
	return &Monitor{
		tput:  mathx.NewEWMA(alpha),
		delay: mathx.NewEWMA(alpha),
		loss:  mathx.NewEWMA(alpha),
	}
}

// NewMonitorAt returns a monitor whose first accounting window opens
// at time start (seconds), so the first Tick already closes a window.
func NewMonitorAt(alpha, start float64) *Monitor {
	m := NewMonitor(alpha)
	m.lastTick = start
	m.opened = true
	return m
}

// AddBytes accounts payload bytes forwarded for the flow.
func (m *Monitor) AddBytes(n int) { m.bytes += float64(n) }

// Tick closes the current accounting window at time now (seconds) and
// folds the window's throughput into the estimate. A monitor that has
// never ticked has no window to close: its first Tick only opens one,
// discarding bytes that accumulated before it. Closing instead would
// divide those bytes by now-0 — a flow started late in a run would
// book an arbitrarily diluted first throughput sample (the window it
// never lived through), skewing the EWMA until enough real windows
// wash it out.
func (m *Monitor) Tick(now float64) {
	if !m.opened {
		m.opened = true
		m.lastTick = now
		m.bytes = 0
		return
	}
	dt := now - m.lastTick
	if dt <= 0 {
		return
	}
	m.tput.Observe(m.bytes * 8 / dt)
	m.bytes = 0
	m.lastTick = now
}

// ObserveDelay folds one RTT sample (milliseconds) into the estimate.
func (m *Monitor) ObserveDelay(ms float64) { m.delay.Observe(ms) }

// ObserveLoss folds one loss-rate sample in [0,1] into the estimate.
func (m *Monitor) ObserveLoss(rate float64) { m.loss.Observe(mathx.Clamp(rate, 0, 1)) }

// Snapshot returns the current QoS estimate.
func (m *Monitor) Snapshot() QoS {
	return QoS{
		ThroughputBps: m.tput.Value(),
		DelayMs:       m.delay.Value(),
		LossRate:      m.loss.Value(),
	}
}

// Ready reports whether both throughput and delay have been observed at
// least once, i.e. the snapshot is meaningful.
func (m *Monitor) Ready() bool {
	return m.tput.Initialized() && m.delay.Initialized()
}
