package classifier

import (
	"testing"

	"exbox/internal/excr"
	"exbox/internal/svm"
)

func TestHealthRetrainRecords(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	ac.EnableHealth(HealthConfig{})
	if !ac.HealthEnabled() {
		t.Fatal("EnableHealth did not take")
	}
	if v := ac.ModelVersion(); v != 0 {
		t.Fatalf("bootstrap model version = %d, want 0", v)
	}
	feedRandom(ac, wifiOracle(), 30, 21)
	if ac.Bootstrapping() {
		t.Fatal("should have graduated")
	}
	snap, ok := ac.HealthSnapshot()
	if !ok {
		t.Fatal("HealthSnapshot not available")
	}
	if snap.Retrains == 0 || len(snap.History) == 0 {
		t.Fatalf("no retrain records: %+v", snap)
	}
	if snap.ModelVersion == 0 || snap.ModelVersion != ac.ModelVersion() {
		t.Fatalf("snapshot model version %d vs classifier %d", snap.ModelVersion, ac.ModelVersion())
	}
	last := snap.History[len(snap.History)-1]
	if last.Version != snap.ModelVersion {
		t.Fatalf("latest record version %d != published model %d", last.Version, snap.ModelVersion)
	}
	for i, rec := range snap.History {
		if rec.Version != uint64(i+1) {
			t.Fatalf("record %d version = %d, want monotonic from 1", i, rec.Version)
		}
		if rec.TrainingSize <= 0 || rec.SupportVectors <= 0 || rec.Seconds <= 0 || rec.UnixNanos == 0 {
			t.Fatalf("record %d not filled in: %+v", i, rec)
		}
		if rec.Solve == nil {
			t.Fatalf("record %d missing solver stats for the SVM learner", i)
		}
		if rec.Solve.Rows != rec.TrainingSize || rec.Solve.Iters <= 0 {
			t.Fatalf("record %d solver stats inconsistent: %+v", i, rec.Solve)
		}
	}
	// The decision path must stamp the same version onto its verdicts.
	d := ac.Decide(webArrival(2))
	if d.Model != snap.ModelVersion {
		t.Fatalf("Decision.Model = %d, want %d", d.Model, snap.ModelVersion)
	}
}

// TestHealthHistoryBounded pins the retrain-record ring: History keeps
// the most recent cfg.History fits, oldest first.
func TestHealthHistoryBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 1
	ac := New(excr.DefaultSpace, cfg)
	ac.EnableHealth(HealthConfig{History: 4})
	feedRandom(ac, wifiOracle(), 40, 5)
	snap, _ := ac.HealthSnapshot()
	if snap.Retrains <= 4 {
		t.Fatalf("test needs more than 4 retrains, got %d", snap.Retrains)
	}
	if len(snap.History) != 4 {
		t.Fatalf("history len = %d, want 4", len(snap.History))
	}
	for i := 1; i < len(snap.History); i++ {
		if snap.History[i].Version != snap.History[i-1].Version+1 {
			t.Fatalf("history not chronological: %+v", snap.History)
		}
	}
	if snap.History[3].Version != snap.ModelVersion {
		t.Fatalf("ring lost the newest record: %+v", snap.History)
	}
}

func TestHealthDriftWindows(t *testing.T) {
	ac := onlineClassifier(t, svm.RBF)
	ac.EnableHealth(HealthConfig{DriftWindow: 64})
	var s Scratch

	// Two windows from the same arrival distribution: the first freezes
	// the reference, the second produces a (small) PSI.
	for i := 0; i < 128; i++ {
		ac.DecideScratch(webArrival(i%6), &s)
	}
	snap, _ := ac.HealthSnapshot()
	if !snap.DriftReady || snap.DriftWindows != 1 {
		t.Fatalf("drift not ready after two windows: %+v", snap)
	}
	samePSI := snap.Drift

	// A window from a very different regime (deep overload, margins far
	// negative) must move the statistic.
	overload := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).
			Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 18).Set(excr.Conferencing, 0, 15),
		Class: excr.Conferencing,
	}
	for i := 0; i < 64; i++ {
		ac.DecideScratch(overload, &s)
	}
	snap, _ = ac.HealthSnapshot()
	if snap.DriftWindows != 2 {
		t.Fatalf("expected a second comparison window: %+v", snap)
	}
	if snap.Drift <= samePSI {
		t.Fatalf("shifted margins should raise PSI: same-dist %v, shifted %v", samePSI, snap.Drift)
	}
}

func TestHealthAgreementEWMA(t *testing.T) {
	ac := onlineClassifier(t, svm.Linear)
	ac.EnableHealth(HealthConfig{AgreementAlpha: 0.25})
	empty := webArrival(0)
	if !ac.Decide(empty).Admit {
		t.Fatal("empty cell should admit; test premise broken")
	}
	// Labels that agree with the model: EWMA seeded at 1 stays 1.
	for i := 0; i < 8; i++ {
		ac.Observe(excr.Sample{Arrival: empty, Label: 1})
	}
	snap, _ := ac.HealthSnapshot()
	if snap.AgreementSamples < 8 || snap.Agreement != 1 {
		t.Fatalf("all-agreeing feedback: %+v", snap)
	}
	// Contradicting labels must pull the EWMA down. Scoring happens
	// against the model *before* the sample can trigger a refit, so the
	// disagreement is registered even if the boundary later moves.
	before := snap.Agreement
	for i := 0; i < 8; i++ {
		ac.Observe(excr.Sample{Arrival: empty, Label: -1})
	}
	snap, _ = ac.HealthSnapshot()
	if snap.Agreement >= before {
		t.Fatalf("contradicting feedback did not lower agreement: %v -> %v", before, snap.Agreement)
	}
}

// TestDecideAllocsWithHealth extends the zero-allocation contract to a
// health-enabled classifier: the drift counters on the decision path
// are atomics over preallocated bins, so margins observed per decision
// must not add an allocation — including across window rotations.
func TestDecideAllocsWithHealth(t *testing.T) {
	for _, kernel := range []svm.KernelKind{svm.Linear, svm.RBF} {
		ac := onlineClassifier(t, kernel)
		// A window far smaller than the sample count, so rotations happen
		// inside the measured loop.
		ac.EnableHealth(HealthConfig{DriftWindow: 16})
		a := webArrival(3)
		var s Scratch
		var sink float64
		ac.DecideScratch(a, &s)
		if got := testing.AllocsPerRun(200, func() {
			sink += ac.DecideScratch(a, &s).Margin
		}); got != 0 {
			t.Errorf("%v DecideScratch with health: %v allocs/op, want 0", kernel, got)
		}
		_ = sink
	}
}

// TestEnableHealthFirstCallWins pins the idempotence EnableHealth
// promises Instrument: a second call (say a re-instrumented middlebox)
// must keep the first monitor and its accumulated state.
func TestEnableHealthFirstCallWins(t *testing.T) {
	ac := onlineClassifier(t, svm.Linear)
	ac.EnableHealth(HealthConfig{DriftWindow: 8})
	var s Scratch
	for i := 0; i < 16; i++ {
		ac.DecideScratch(webArrival(i%4), &s)
	}
	snap1, _ := ac.HealthSnapshot()
	if !snap1.DriftReady {
		t.Fatal("drift should be ready")
	}
	ac.EnableHealth(DefaultHealthConfig()) // must be a no-op
	snap2, _ := ac.HealthSnapshot()
	if snap2.DriftReady != snap1.DriftReady || snap2.DriftWindows != snap1.DriftWindows {
		t.Fatalf("second EnableHealth reset the monitor: %+v vs %+v", snap1, snap2)
	}
}
