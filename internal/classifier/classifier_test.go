package classifier

import (
	"math"
	"sync"
	"testing"

	"exbox/internal/apps"
	"exbox/internal/dtree"
	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
	"exbox/internal/svm"
	"exbox/internal/traffic"
)

// wifiOracle returns a ground-truth labeler on the simulated WiFi cell.
func wifiOracle() apps.Oracle {
	return apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
}

// feedRandom streams n labeled random arrivals into the classifier and
// returns the events used.
func feedRandom(ac *AdmittanceClassifier, o apps.Oracle, n int, seed int64) []traffic.Event {
	rng := mathx.NewRand(seed)
	seq := traffic.Random(rng, n, 20, 0, excr.DefaultSpace)
	evs := traffic.Arrivals(seq, nil)
	for _, e := range evs {
		ac.Observe(excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
	}
	return evs
}

func TestBootstrapGraduates(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	if !ac.Bootstrapping() {
		t.Fatal("fresh classifier should bootstrap")
	}
	d := ac.Decide(excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web})
	if !d.Admit || !d.Bootstrap {
		t.Fatal("bootstrap phase must admit everything")
	}
	feedRandom(ac, wifiOracle(), 20, 1)
	if ac.Bootstrapping() {
		t.Fatalf("classifier should graduate after diverse training (cv=%v, set=%d)",
			ac.LastCVScore(), ac.TrainingSetSize())
	}
	if ac.LastCVScore() < 0.7 {
		t.Fatalf("graduation cv score %v below threshold", ac.LastCVScore())
	}
}

func TestOnlineDecisionsMatchOracle(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	o := wifiOracle()
	feedRandom(ac, o, 25, 2)
	if ac.Bootstrapping() {
		t.Fatal("should be online")
	}
	// Fresh arrivals: accuracy must be well above chance.
	rng := mathx.NewRand(3)
	var conf metrics.Confusion
	for _, e := range traffic.Arrivals(traffic.Random(rng, 20, 20, 0, excr.DefaultSpace), nil) {
		d := ac.Decide(e.Arrival)
		pred := -1.0
		if d.Admit {
			pred = 1.0
		}
		conf.Observe(pred, o.Label(e.Arrival))
	}
	if conf.Accuracy() < 0.8 {
		t.Fatalf("online accuracy = %v (%v)", conf.Accuracy(), conf)
	}
	if conf.Precision() < 0.8 {
		t.Fatalf("online precision = %v (%v)", conf.Precision(), conf)
	}
}

func TestMarginDepth(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	feedRandom(ac, wifiOracle(), 25, 4)
	empty := excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Conferencing}
	// Inside the training range but clearly over capacity:
	// 15·0.8 + 18·2.5 + 15·1.5 ≈ 79 Mbps of demand on a ~65 Mbps cell.
	outside := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).
			Set(excr.Web, 0, 15).Set(excr.Streaming, 0, 18).Set(excr.Conferencing, 0, 15),
		Class: excr.Conferencing,
	}
	de, do := ac.Decide(empty), ac.Decide(outside)
	if !de.Admit {
		t.Fatal("empty network should admit")
	}
	if do.Admit {
		t.Fatal("overloaded matrix should reject the arrival")
	}
	if de.Margin <= 0 || do.Margin >= 0 || de.Margin <= do.Margin {
		t.Fatalf("margins should straddle the boundary: inside=%v outside=%v", de.Margin, do.Margin)
	}
}

func TestObservePanicsOnBadLabel(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for label 0")
		}
	}()
	ac.Observe(excr.Sample{Arrival: excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace)}, Label: 0})
}

func TestReplaceRepeatedMatrix(t *testing.T) {
	cfg := DefaultConfig()
	ac := New(excr.DefaultSpace, cfg)
	a := excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 2), Class: excr.Web}
	ac.Observe(excr.Sample{Arrival: a, Label: 1})
	ac.Observe(excr.Sample{Arrival: a, Label: -1})
	if ac.TrainingSetSize() != 1 {
		t.Fatalf("repeated matrix should be replaced, set=%d", ac.TrainingSetSize())
	}
	if ac.samples[0].Label != -1 {
		t.Fatal("newest label should win")
	}
	if ac.Observed() != 2 {
		t.Fatal("Observed should count raw observations")
	}

	// Ablation: append-only keeps both.
	cfg.ReplaceRepeated = false
	ac2 := New(excr.DefaultSpace, cfg)
	ac2.Observe(excr.Sample{Arrival: a, Label: 1})
	ac2.Observe(excr.Sample{Arrival: a, Label: -1})
	if ac2.TrainingSetSize() != 2 {
		t.Fatalf("append-only should keep both, set=%d", ac2.TrainingSetSize())
	}
}

func TestEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxTrainingSet = 50
	ac := New(excr.DefaultSpace, cfg)
	feedRandom(ac, wifiOracle(), 12, 5)
	if ac.TrainingSetSize() > 50 {
		t.Fatalf("training set %d exceeds cap", ac.TrainingSetSize())
	}
	// Index must stay consistent after eviction.
	if len(ac.index) != len(ac.samples) || len(ac.keys) != len(ac.samples) {
		t.Fatal("index/keys out of sync after eviction")
	}
	for i, k := range ac.keys {
		if ac.index[k] != i {
			t.Fatal("index points at wrong slot after eviction")
		}
	}
}

// webArrival returns a distinct arrival keyed on n for eviction tests.
func webArrival(n int) excr.Arrival {
	return excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, n),
		Class:  excr.Web,
	}
}

func TestEvictionKeepsRecentlyObserved(t *testing.T) {
	// A matrix the network keeps revisiting must survive eviction even
	// though it was first seen earliest: replacement moves it to the
	// tail, so eviction is least-recently-observed, not first-seen.
	cfg := DefaultConfig()
	cfg.MaxTrainingSet = 5
	ac := New(excr.DefaultSpace, cfg)
	for i := 0; i < 5; i++ {
		ac.Observe(excr.Sample{Arrival: webArrival(i), Label: 1})
	}
	// Re-observe the oldest matrix: it is now the freshest.
	ac.Observe(excr.Sample{Arrival: webArrival(0), Label: -1})
	if ac.TrainingSetSize() != 5 {
		t.Fatalf("replacement must not grow the set, got %d", ac.TrainingSetSize())
	}
	// One more distinct matrix pushes the set past the cap; the victim
	// must be matrix 1 (least recently observed), not matrix 0.
	ac.Observe(excr.Sample{Arrival: webArrival(5), Label: 1})
	if ac.TrainingSetSize() != 5 {
		t.Fatalf("set should stay at cap, got %d", ac.TrainingSetSize())
	}
	k0, k1 := sampleKey(webArrival(0)), sampleKey(webArrival(1))
	if _, ok := ac.index[k0]; !ok {
		t.Fatal("re-observed matrix was evicted despite being freshest")
	}
	if _, ok := ac.index[k1]; ok {
		t.Fatal("least-recently-observed matrix should have been evicted")
	}
	// The surviving copy must carry the replacement's label.
	if got := ac.samples[ac.index[k0]].Label; got != -1 {
		t.Fatalf("survivor label = %v, want the re-observed -1", got)
	}
	for i, k := range ac.keys {
		if ac.index[k] != i {
			t.Fatal("index out of sync after touch+evict")
		}
	}
}

func TestEvictionAppendOnlyDuplicateIndex(t *testing.T) {
	// Append-only mode can hold several copies of one key; eviction of
	// an old copy must not clobber the index entry of a surviving newer
	// copy.
	cfg := DefaultConfig()
	cfg.ReplaceRepeated = false
	cfg.MaxTrainingSet = 3
	ac := New(excr.DefaultSpace, cfg)
	dup := webArrival(0)
	ac.Observe(excr.Sample{Arrival: dup, Label: 1})
	ac.Observe(excr.Sample{Arrival: webArrival(1), Label: 1})
	ac.Observe(excr.Sample{Arrival: webArrival(2), Label: -1})
	ac.Observe(excr.Sample{Arrival: dup, Label: -1}) // evicts the first copy of dup
	if ac.TrainingSetSize() != 3 {
		t.Fatalf("set = %d, want 3", ac.TrainingSetSize())
	}
	i, ok := ac.index[sampleKey(dup)]
	if !ok {
		t.Fatal("surviving duplicate lost its index entry")
	}
	if ac.samples[i].Label != -1 {
		t.Fatalf("index points at the wrong copy: label %v", ac.samples[i].Label)
	}
	for j, k := range ac.keys {
		if k == ac.keys[i] && j > i {
			t.Fatal("index does not point at the newest copy")
		}
	}
}

func TestDeferRetrainMaintain(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeferRetrain = true
	ac := New(excr.DefaultSpace, cfg)
	o := wifiOracle()
	feedRandom(ac, o, 25, 2)
	// Deferred mode: bootstrap CV never runs on the Observe path, so
	// the classifier is still bootstrapping and work is pending.
	if !ac.Bootstrapping() {
		t.Fatal("deferred classifier must not graduate inline")
	}
	if !ac.RetrainPending() {
		t.Fatal("crossing CV boundaries should mark work pending")
	}
	if err := ac.Maintain(); err != nil {
		t.Fatal(err)
	}
	if ac.Bootstrapping() {
		t.Fatalf("Maintain should graduate (cv=%v, set=%d)", ac.LastCVScore(), ac.TrainingSetSize())
	}
	if ac.RetrainPending() {
		t.Fatal("Maintain must clear the pending latch")
	}

	// Online: a burst crossing several batch boundaries coalesces into
	// one pending fit.
	feedRandom(ac, o, 60, 3)
	if !ac.RetrainPending() {
		t.Fatal("online batches should mark a retrain pending")
	}
	if err := ac.Maintain(); err != nil {
		t.Fatal(err)
	}
	if ac.RetrainPending() {
		t.Fatal("pending latch should clear after the coalesced fit")
	}
	// Idempotent when nothing is pending.
	if err := ac.Maintain(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentDecideObserveRetrain(t *testing.T) {
	// Decide is a lock-free snapshot read; hammer it while Observe and
	// Retrain mutate training state. Run under -race.
	ac := New(excr.DefaultSpace, DefaultConfig())
	o := wifiOracle()
	feedRandom(ac, o, 25, 4)
	if ac.Bootstrapping() {
		t.Fatal("should be online before the stress phase")
	}
	evs := traffic.Arrivals(traffic.Random(mathx.NewRand(5), 40, 20, 0, excr.DefaultSpace), nil)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ac.Decide(evs[i%len(evs)].Arrival)
			}
		}()
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := mathx.NewRand(seed)
			for _, e := range traffic.Arrivals(traffic.Random(rng, 30, 20, 0, excr.DefaultSpace), nil) {
				ac.Observe(excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
			}
		}(int64(10 + g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			_ = ac.Retrain()
		}
	}()
	wg.Wait()
	if ac.Bootstrapping() {
		t.Fatal("classifier regressed to bootstrap")
	}
	if d := ac.Decide(webArrival(0)); d.Bootstrap {
		t.Fatal("post-stress decision should use the trained model")
	}
}

func TestRetrainNotReady(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	if err := ac.Retrain(); err != ErrNotReady {
		t.Fatalf("empty retrain err = %v", err)
	}
	a := excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web}
	ac.Observe(excr.Sample{Arrival: a, Label: 1})
	if err := ac.Retrain(); err != ErrNotReady {
		t.Fatalf("one-class retrain err = %v", err)
	}
	if err := ac.ForceOnline(); err != ErrNotReady {
		t.Fatalf("ForceOnline should propagate ErrNotReady, got %v", err)
	}
	if !ac.Bootstrapping() {
		t.Fatal("failed ForceOnline must stay in bootstrap")
	}
}

func TestForceOnline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CVThreshold = 0.99999 // make natural graduation implausible
	cfg.MinBootstrap = 1 << 30
	ac := New(excr.DefaultSpace, cfg)
	o := wifiOracle()
	rng := mathx.NewRand(6)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 20, 20, 0, excr.DefaultSpace), nil) {
		ac.Observe(excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
	}
	if !ac.Bootstrapping() {
		t.Fatal("should still bootstrap under extreme threshold")
	}
	if err := ac.ForceOnline(); err != nil {
		t.Fatal(err)
	}
	if ac.Bootstrapping() {
		t.Fatal("ForceOnline should end bootstrap")
	}
}

func TestOnlineAdaptsToNetworkChange(t *testing.T) {
	// Figure 11 in miniature: train on a clean network, then flip the
	// ground truth to a throttled network and keep feeding batches;
	// accuracy must recover.
	cfg := DefaultConfig()
	cfg.BatchSize = 10
	ac := New(excr.DefaultSpace, cfg)
	clean := wifiOracle()
	feedRandom(ac, clean, 25, 7)
	if ac.Bootstrapping() {
		t.Fatal("should be online after clean training")
	}

	// Throttled network: capacity halved.
	cfgW := netsim.SimWiFi()
	cfgW.PHYRateBps = map[excr.SNRLevel]float64{excr.SNRLow: 6e6, excr.SNRHigh: 40e6}
	throttled := apps.Oracle{Net: netsim.FluidWiFi{Config: cfgW}}

	accOn := func(o apps.Oracle, seed int64) float64 {
		rng := mathx.NewRand(seed)
		var conf metrics.Confusion
		for _, e := range traffic.Arrivals(traffic.Random(rng, 15, 20, 0, excr.DefaultSpace), nil) {
			d := ac.Decide(e.Arrival)
			pred := -1.0
			if d.Admit {
				pred = 1.0
			}
			conf.Observe(pred, o.Label(e.Arrival))
		}
		return conf.Accuracy()
	}
	before := accOn(throttled, 8)

	// Online updates against the throttled truth.
	rng := mathx.NewRand(9)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 35, 20, 0, excr.DefaultSpace), nil) {
		ac.Observe(excr.Sample{Arrival: e.Arrival, Label: throttled.Label(e.Arrival)})
	}
	after := accOn(throttled, 10)
	if after < before {
		t.Fatalf("online learning failed to adapt: before=%v after=%v", before, after)
	}
	if after < 0.75 {
		t.Fatalf("post-adaptation accuracy %v too low", after)
	}
}

func TestDecisionDeterministic(t *testing.T) {
	build := func() *AdmittanceClassifier {
		ac := New(excr.DefaultSpace, DefaultConfig())
		feedRandom(ac, wifiOracle(), 15, 11)
		return ac
	}
	a, b := build(), build()
	probe := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 10),
		Class:  excr.Web,
	}
	if a.Decide(probe) != b.Decide(probe) {
		t.Fatal("identical training should give identical decisions")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	ac := New(excr.DefaultSpace, Config{SVM: DefaultConfig().SVM})
	if ac.cfg.BatchSize != 20 || ac.cfg.CVFolds != 5 || ac.cfg.CVThreshold != 0.7 ||
		ac.cfg.MinBootstrap != 20 || ac.cfg.CVEvery != 10 {
		t.Fatalf("zero-value config not defaulted: %+v", ac.cfg)
	}
	if ac.Name() != "ExBox" {
		t.Fatal("Name wrong")
	}
}

func TestDecisionTreeLearnerPluggable(t *testing.T) {
	// The paper: "other supervised classification methods (e.g.,
	// decision trees) could be used by ExBox as well". Swap the
	// learner and verify the classifier still works end to end.
	cfg := DefaultConfig()
	cfg.Learner = learner.Tree{Config: dtree.DefaultConfig()}
	ac := New(excr.DefaultSpace, cfg)
	o := wifiOracle()
	feedRandom(ac, o, 35, 21)
	if ac.Bootstrapping() {
		t.Fatalf("tree-backed classifier did not graduate (cv=%v)", ac.LastCVScore())
	}
	rng := mathx.NewRand(22)
	var conf metrics.Confusion
	for _, e := range traffic.Arrivals(traffic.Random(rng, 20, 20, 0, excr.DefaultSpace), nil) {
		d := ac.Decide(e.Arrival)
		pred := -1.0
		if d.Admit {
			pred = 1.0
		}
		conf.Observe(pred, o.Label(e.Arrival))
	}
	// Trees trail the RBF SVM here (one reason the paper picked SVM),
	// but a pluggable learner must still be clearly better than chance.
	if conf.Accuracy() < 0.7 {
		t.Fatalf("tree-backed accuracy = %v (%v)", conf.Accuracy(), conf)
	}
}

// onlineClassifier trains a classifier to the online phase with the
// given kernel, for the fast-path tests.
func onlineClassifier(t *testing.T, kernel svm.KernelKind) *AdmittanceClassifier {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SVM.Kernel = kernel
	ac := New(excr.DefaultSpace, cfg)
	feedRandom(ac, wifiOracle(), 30, 11)
	if ac.Bootstrapping() {
		if err := ac.ForceOnline(); err != nil {
			t.Fatal(err)
		}
	}
	return ac
}

// TestDecideAllocs locks in the zero-allocation contract of the online
// decision path for both kernels: plain Decide (pool-backed) and
// DecideScratch with a per-worker Scratch must not allocate.
func TestDecideAllocs(t *testing.T) {
	for _, kernel := range []svm.KernelKind{svm.Linear, svm.RBF} {
		ac := onlineClassifier(t, kernel)
		a := webArrival(3)
		var s Scratch
		var sink float64
		ac.Decide(a)            // warm the pool
		ac.DecideScratch(a, &s) // grow the scratch
		if got := testing.AllocsPerRun(200, func() {
			sink += ac.Decide(a).Margin
		}); got != 0 {
			t.Errorf("%v Decide: %v allocs/op, want 0", kernel, got)
		}
		if got := testing.AllocsPerRun(200, func() {
			sink += ac.DecideScratch(a, &s).Margin
		}); got != 0 {
			t.Errorf("%v DecideScratch: %v allocs/op, want 0", kernel, got)
		}
		_ = sink
	}
}

// TestDecideBatchMatchesDecide pins the batched scorer to the scalar
// path on the same snapshot, and checks the warmed batch is
// allocation-free.
func TestDecideBatchMatchesDecide(t *testing.T) {
	for _, kernel := range []svm.KernelKind{svm.Linear, svm.RBF} {
		ac := onlineClassifier(t, kernel)
		var arrivals []excr.Arrival
		for n := 0; n < 12; n++ {
			arrivals = append(arrivals, webArrival(n))
		}
		var s Scratch
		out := ac.DecideBatch(nil, arrivals, &s)
		if len(out) != len(arrivals) {
			t.Fatalf("%v: %d decisions for %d arrivals", kernel, len(out), len(arrivals))
		}
		for i, a := range arrivals {
			want := ac.Decide(a)
			got := out[i]
			if got.Admit != want.Admit || got.Bootstrap != want.Bootstrap ||
				math.Abs(got.Margin-want.Margin) > 1e-12 || math.Abs(got.Depth-want.Depth) > 1e-12 {
				t.Fatalf("%v arrival %d: batch %+v, scalar %+v", kernel, i, got, want)
			}
		}
		dst := make([]Decision, len(arrivals))
		var sink float64
		if got := testing.AllocsPerRun(100, func() {
			dst = ac.DecideBatch(dst, arrivals, &s)
			sink += dst[0].Margin
		}); got != 0 {
			t.Errorf("%v DecideBatch: %v allocs/op, want 0", kernel, got)
		}
		_ = sink
	}
}

// TestDecideBatchBootstrap: during bootstrap the batch admits
// everything, like the scalar path.
func TestDecideBatchBootstrap(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	out := ac.DecideBatch(nil, []excr.Arrival{webArrival(0), webArrival(1)}, nil)
	for i, d := range out {
		if !d.Admit || !d.Bootstrap {
			t.Fatalf("bootstrap batch decision %d = %+v, want admit", i, d)
		}
	}
	if got := ac.DecideBatch(nil, nil, nil); len(got) != 0 {
		t.Fatalf("empty batch returned %d decisions", len(got))
	}
}

// constPredictor is a degenerate model whose every training decision
// is 0 — the case that produces a zero calibration.
type constPredictor struct{ v float64 }

func (p constPredictor) Decision([]float64) float64 { return p.v }

// TestZeroCalibrationDepth is the regression test for the depth guard:
// a snapshot with calibration 0 must yield Depth 0, not NaN/±Inf,
// which would poison network-selection ordering.
func TestZeroCalibrationDepth(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	ac.state.Store(&modelSnapshot{model: constPredictor{v: 2.5}, calibration: 0})
	a := webArrival(1)
	d := ac.Decide(a)
	if d.Margin != 2.5 || d.Depth != 0 {
		t.Fatalf("zero-calibration Decide = %+v, want Margin 2.5 Depth 0", d)
	}
	if b := ac.DecideBatch(nil, []excr.Arrival{a}, nil); b[0].Depth != 0 {
		t.Fatalf("zero-calibration DecideBatch depth = %v, want 0", b[0].Depth)
	}
}
