package classifier

import (
	"math"
	"testing"

	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/svm"
	"exbox/internal/traffic"
)

// persistProbes returns fresh arrivals (not drawn from the training
// feed) to compare decision functions on.
func persistProbes(n int, seed int64) []excr.Arrival {
	rng := mathx.NewRand(seed)
	evs := traffic.Arrivals(traffic.Random(rng, n, 20, 0, excr.DefaultSpace), nil)
	out := make([]excr.Arrival, len(evs))
	for i, e := range evs {
		out[i] = e.Arrival
	}
	return out
}

// TestPersistRoundTrip is the classifier-level warm-boot property: a
// fresh classifier restored from an exported state must serve the very
// same decisions — margin and depth bit-equal — with no refit.
func TestPersistRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmStart = true
	src := New(excr.DefaultSpace, cfg)
	feedRandom(src, wifiOracle(), 40, 51)
	if src.Bootstrapping() {
		t.Fatal("source classifier should be online")
	}

	ps, err := src.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if ps.Bootstrap || ps.Model == nil {
		t.Fatal("export of an online classifier must carry a model")
	}
	if ps.Warm == nil {
		t.Fatal("warm-start classifier must export its solver seed")
	}

	dst := New(excr.DefaultSpace, cfg)
	if err := dst.ImportState(ps); err != nil {
		t.Fatalf("ImportState: %v", err)
	}
	if dst.Bootstrapping() {
		t.Fatal("restored classifier still bootstrapping")
	}
	if got, want := dst.ModelVersion(), src.ModelVersion(); got != want {
		t.Fatalf("model version %d after restore, want %d", got, want)
	}
	if got, want := dst.TrainingSetSize(), src.TrainingSetSize(); got != want {
		t.Fatalf("training set %d after restore, want %d", got, want)
	}
	if got, want := dst.Observed(), src.Observed(); got != want {
		t.Fatalf("observed %d after restore, want %d", got, want)
	}
	for _, a := range persistProbes(30, 52) {
		da, db := src.Decide(a), dst.Decide(a)
		if da.Admit != db.Admit ||
			math.Float64bits(da.Margin) != math.Float64bits(db.Margin) ||
			math.Float64bits(da.Depth) != math.Float64bits(db.Depth) {
			t.Fatalf("restored decision diverged: %+v != %+v for %v", da, db, a)
		}
	}
}

// TestPersistRestoredClassifierKeepsLearning: the restored training
// window and warm seed must let online learning continue — the next
// batch boundary triggers a (warm) refit that publishes a strictly
// newer model version.
func TestPersistRestoredClassifierKeepsLearning(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmStart = true
	src := New(excr.DefaultSpace, cfg)
	feedRandom(src, wifiOracle(), 40, 53)
	ps, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	dst := New(excr.DefaultSpace, cfg)
	if err := dst.ImportState(ps); err != nil {
		t.Fatal(err)
	}
	restored := dst.ModelVersion()
	feedRandom(dst, wifiOracle(), 30, 54)
	if dst.ModelVersion() <= restored {
		t.Fatalf("model version %d did not advance past restored %d", dst.ModelVersion(), restored)
	}
	if dst.Bootstrapping() {
		t.Fatal("restored classifier fell back to bootstrap")
	}
}

// TestPersistBootstrapRoundTrip: a bootstrapping classifier exports a
// model-less state and a restore resumes the bootstrap where it left
// off — samples and counters intact, no model published.
func TestPersistBootstrapRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	src := New(excr.DefaultSpace, cfg)
	// A couple of observations: not enough to graduate.
	o := wifiOracle()
	rng := mathx.NewRand(55)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 3, 20, 0, excr.DefaultSpace), nil) {
		src.Observe(excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
	}
	if !src.Bootstrapping() {
		t.Skip("classifier graduated on a tiny feed")
	}
	ps, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Bootstrap || ps.Model != nil {
		t.Fatal("bootstrap export must be model-less")
	}
	dst := New(excr.DefaultSpace, cfg)
	if err := dst.ImportState(ps); err != nil {
		t.Fatal(err)
	}
	if !dst.Bootstrapping() {
		t.Fatal("restored classifier should still bootstrap")
	}
	if got, want := dst.TrainingSetSize(), src.TrainingSetSize(); got != want {
		t.Fatalf("training set %d, want %d", got, want)
	}
	d := dst.Decide(excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web})
	if !d.Admit || !d.Bootstrap {
		t.Fatal("restored bootstrap phase must admit everything")
	}
}

// TestImportStateRejectsCorrupt sweeps the validation surface: every
// rejected import must leave the classifier exactly as it was.
func TestImportStateRejectsCorrupt(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmStart = true
	src := New(excr.DefaultSpace, cfg)
	feedRandom(src, wifiOracle(), 40, 56)
	base, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(ps *PersistState)
	}{
		{"nil state", func(ps *PersistState) {}},
		{"space mismatch", func(ps *PersistState) { ps.Space = excr.Space{Classes: 5, Levels: 3} }},
		{"bootstrap with model", func(ps *PersistState) { ps.Bootstrap = true }},
		{"negative counters", func(ps *PersistState) { ps.Observed = -1 }},
		{"cv out of range", func(ps *PersistState) { ps.LastCVScore = 1.5 }},
		{"NaN calibration", func(ps *PersistState) { ps.Calibration = math.NaN() }},
		{"bad sample label", func(ps *PersistState) { ps.Samples[0].Label = 0.5 }},
		{"sample space mismatch", func(ps *PersistState) {
			other := excr.Space{Classes: 2, Levels: 1}
			ps.Samples[0].Arrival.Matrix = excr.NewMatrix(other)
		}},
		{"corrupt model", func(ps *PersistState) { ps.Model.Gamma = -1 }},
		{"warm misalignment", func(ps *PersistState) { ps.Warm.Keys = ps.Warm.Keys[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := New(excr.DefaultSpace, cfg)
			var ps *PersistState
			if tc.name != "nil state" {
				// Re-export per case: mutations are applied to a private copy.
				fresh, err := src.ExportState()
				if err != nil {
					t.Fatal(err)
				}
				tc.mutate(fresh)
				ps = fresh
			}
			if err := dst.ImportState(ps); err == nil {
				t.Fatal("corrupt state was accepted")
			}
			if !dst.Bootstrapping() {
				t.Fatal("rejected import must leave the classifier cold")
			}
			if dst.TrainingSetSize() != 0 || dst.Observed() != 0 {
				t.Fatal("rejected import leaked training state")
			}
			// The untouched cold classifier still works.
			d := dst.Decide(excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web})
			if !d.Admit || !d.Bootstrap {
				t.Fatal("classifier unusable after rejected import")
			}
		})
	}

	// The unmutated state still imports — the sweep above failed for the
	// right reasons, not because the baseline is broken.
	dst := New(excr.DefaultSpace, cfg)
	if err := dst.ImportState(base); err != nil {
		t.Fatalf("baseline import: %v", err)
	}
}

// TestImportStateWarmSeedRequiresWarmLearner: a snapshot carrying a
// warm seed must be rejected by a classifier whose learner cannot hold
// one, not silently dropped.
func TestImportStateWarmSeedRequiresWarmLearner(t *testing.T) {
	warmCfg := DefaultConfig()
	warmCfg.WarmStart = true
	src := New(excr.DefaultSpace, warmCfg)
	feedRandom(src, wifiOracle(), 40, 57)
	ps, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if ps.Warm == nil {
		t.Fatal("warm classifier exported no seed")
	}

	coldCfg := DefaultConfig()
	coldCfg.WarmStart = false
	dst := New(excr.DefaultSpace, coldCfg)
	if err := dst.ImportState(ps); err == nil {
		t.Fatal("warm seed accepted by a cold-start learner")
	}
	// Dropping the seed makes the same snapshot importable.
	ps.Warm = nil
	if err := dst.ImportState(ps); err != nil {
		t.Fatalf("seedless import: %v", err)
	}
}

// TestImportStateTruncatesOversizedWindow: a snapshot from a larger
// MaxTrainingSet must restore into a smaller one keeping the newest
// samples, exactly like Observe's eviction would.
func TestImportStateTruncatesOversizedWindow(t *testing.T) {
	cfg := DefaultConfig()
	src := New(excr.DefaultSpace, cfg)
	feedRandom(src, wifiOracle(), 60, 58)
	ps, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	small := cfg
	small.MaxTrainingSet = 10
	dst := New(excr.DefaultSpace, small)
	if err := dst.ImportState(ps); err != nil {
		t.Fatal(err)
	}
	if got := dst.TrainingSetSize(); got > 10 {
		t.Fatalf("training set %d exceeds cap 10", got)
	}
}

// Compile-time interface sanity for the exported warm state types used
// by the snapshot codec.
var (
	_ = learner.WarmSVMState{}
	_ = svm.ModelState{}
)
