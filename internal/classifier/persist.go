package classifier

import (
	"errors"
	"fmt"

	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/svm"
)

// This file is the classifier's persistence boundary: PersistState is
// everything a restarted process needs to serve admissions from the
// same boundary — the published model's inference representation, the
// training window, the phase counters, and the warm-start solver seed
// — exported under the training locks so the snapshot is a consistent
// fit, and imported with full validation so a corrupt or version-skewed
// snapshot degrades to a cold start instead of a panic. The binary
// codec lives in internal/snapshot; this layer only speaks structs.

// PersistState is one classifier's complete restorable state.
type PersistState struct {
	// FitSeq is the model version of the published snapshot (0 while
	// bootstrapping); the restored classifier resumes versioning above
	// it, so audit records never see a version reused across a restart.
	FitSeq      uint64
	Bootstrap   bool
	Calibration float64 // depth normalizer of the published fit
	Observed    int
	SinceTrain  int
	SinceCV     int
	LastCVScore float64
	Space       excr.Space
	// Samples is the deduplicated training window in LRU order (oldest
	// first), exactly as the next refit would consume it.
	Samples []excr.Sample
	// Model is the published inference state, nil while bootstrapping.
	Model *svm.ModelState
	// Warm is the warm-start solver seed, nil when the learner keeps
	// none (cold-start learners, or no fit yet).
	Warm *learner.WarmSVMState
}

// ErrUnsupportedLearner is returned by ExportState when the published
// model is not an SVM (e.g. the decision-tree ablation): the snapshot
// format only carries SVM inference state.
var ErrUnsupportedLearner = errors.New("classifier: published model is not serializable")

// ExportState captures a consistent snapshot of the classifier under
// the training locks: the published model cannot change mid-export and
// the training window matches the phase counters. It is safe to call
// concurrently with Decide (which stays lock-free) and with Observe.
func (ac *AdmittanceClassifier) ExportState() (*PersistState, error) {
	// fitMu first, then mu — the same order the fit path composes them
	// (Observe releases mu before fit takes fitMu), so no inversion.
	ac.fitMu.Lock()
	defer ac.fitMu.Unlock()
	st := ac.state.Load()
	ps := &PersistState{
		FitSeq:      st.version,
		Bootstrap:   st.bootstrap,
		Calibration: st.calibration,
		Space:       ac.space,
	}
	if st.model != nil {
		m, ok := st.model.(*svm.Model)
		if !ok {
			return nil, ErrUnsupportedLearner
		}
		ms := m.State()
		ps.Model = &ms
	}
	if wl, ok := ac.learner.(*learner.WarmSVM); ok {
		if ws, ok := wl.ExportState(); ok {
			ps.Warm = &ws
		}
	}
	ac.mu.Lock()
	ps.Samples = append([]excr.Sample(nil), ac.samples...)
	ps.Observed = ac.observed
	ps.SinceTrain = ac.sinceTrain
	ps.SinceCV = ac.sinceCV
	ps.LastCVScore = ac.lastCVScore
	ac.mu.Unlock()
	return ps, nil
}

// ImportState restores a previously exported state: it validates
// everything (space match, model shape, sample labels and features,
// counter ranges), rebuilds the training index, seeds the warm-start
// learner, and atomically publishes the restored model so the next
// Decide serves from the saved boundary with no refit. On any
// validation error the classifier is left exactly as it was — the
// caller keeps its cold-start state.
func (ac *AdmittanceClassifier) ImportState(ps *PersistState) error {
	if ps == nil {
		return errors.New("classifier: nil persist state")
	}
	if ps.Space != ac.space {
		return fmt.Errorf("classifier: snapshot space %dx%d, classifier space %dx%d",
			ps.Space.Classes, ps.Space.Levels, ac.space.Classes, ac.space.Levels)
	}
	if (ps.Model == nil) != ps.Bootstrap {
		return errors.New("classifier: bootstrap flag inconsistent with model presence")
	}
	if ps.Observed < 0 || ps.SinceTrain < 0 || ps.SinceCV < 0 ||
		!(ps.LastCVScore >= 0 && ps.LastCVScore <= 1) ||
		!(ps.Calibration >= 0) || !mathx.AllFinite([]float64{ps.Calibration}) {
		return errors.New("classifier: snapshot counters out of range")
	}
	feat := make([]float64, excr.FeatureDim(ac.space))
	for i, s := range ps.Samples {
		if s.Label != 1 && s.Label != -1 {
			return fmt.Errorf("classifier: snapshot sample %d label %v", i, s.Label)
		}
		if s.Arrival.Matrix.Space() != ac.space {
			return fmt.Errorf("classifier: snapshot sample %d matrix space mismatch", i)
		}
		if feat = s.Arrival.FeaturesInto(feat); !mathx.AllFinite(feat) {
			return fmt.Errorf("classifier: snapshot sample %d has non-finite features", i)
		}
	}
	var m *svm.Model
	if ps.Model != nil {
		var err error
		if m, err = svm.ModelFromState(*ps.Model); err != nil {
			return err
		}
		if m.Dim() != excr.FeatureDim(ac.space) {
			return fmt.Errorf("classifier: snapshot model dim %d, space wants %d",
				m.Dim(), excr.FeatureDim(ac.space))
		}
	}
	if ps.Warm != nil {
		wl, ok := ac.learner.(*learner.WarmSVM)
		if !ok {
			return errors.New("classifier: snapshot carries a warm seed but the learner is not warm-starting")
		}
		if err := wl.ImportState(*ps.Warm); err != nil {
			return err
		}
	}

	samples := append([]excr.Sample(nil), ps.Samples...)
	if max := ac.cfg.MaxTrainingSet; max > 0 && len(samples) > max {
		samples = append([]excr.Sample(nil), samples[len(samples)-max:]...)
	}
	keys := make([]string, len(samples))
	index := make(map[string]int, len(samples))
	for i, s := range samples {
		keys[i] = sampleKey(s.Arrival)
		index[keys[i]] = i // duplicates (ReplaceRepeated off): newest wins, as in Observe
	}

	ac.fitMu.Lock()
	defer ac.fitMu.Unlock()
	ac.mu.Lock()
	ac.samples = samples
	ac.keys = keys
	ac.index = index
	ac.observed = ps.Observed
	ac.sinceTrain = ps.SinceTrain
	ac.sinceCV = ps.SinceCV
	ac.lastCVScore = ps.LastCVScore
	ac.retrainPending = false
	ac.mu.Unlock()
	ac.metrics.TrainingSize.Set(int64(len(samples)))

	// Resume versioning at or above the snapshot's fit sequence so a
	// post-restore refit publishes a strictly newer version.
	for {
		cur := ac.fitSeq.Load()
		if ps.FitSeq <= cur || ac.fitSeq.CompareAndSwap(cur, ps.FitSeq) {
			break
		}
	}
	snap := &modelSnapshot{bootstrap: ps.Model == nil, version: ps.FitSeq}
	if m != nil {
		snap.model = m
		snap.fast = m
		if m.HasApprox() {
			snap.approx = m
		}
		snap.calibration = ps.Calibration
	}
	if h := ac.health.Load(); h != nil {
		// The restored tier gets a fresh oracle-gate trial, like any
		// newly published fit.
		h.resetRFF()
	}
	ac.state.Store(snap)
	ac.rffDemoted.Store(false)
	return nil
}
