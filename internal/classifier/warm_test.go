package classifier

import (
	"math"
	"sync"
	"testing"

	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/obs"
	"exbox/internal/traffic"
)

// TestWarmStartClassifierEquivalence runs two classifiers — one
// refitting cold (the pre-PR behavior), one seeding every online refit
// from the previous solver state — through an identical
// bootstrap→online observation stream, and requires they make the same
// admission decisions everywhere but a thin band around the learned
// boundary. Warm starting is a solver accelerant, not a model change.
func TestWarmStartClassifierEquivalence(t *testing.T) {
	warmCfg := DefaultConfig()
	warmCfg.WarmStart = true
	warmCfg.BatchSize = 10
	warm := New(excr.DefaultSpace, warmCfg)
	var warmFits obs.Counter
	warm.SetMetrics(Metrics{WarmFits: &warmFits})
	// The cold twin only needs to be current when decisions are
	// compared: an enormous batch size skips its intermediate refits
	// (a pure test-speed measure) and one Retrain below lands it on
	// exactly the final training set.
	coldCfg := DefaultConfig()
	coldCfg.BatchSize = 1 << 20
	cold := New(excr.DefaultSpace, coldCfg)

	o := wifiOracle()
	rng := mathx.NewRand(61)
	// Enough arrivals to graduate and then cross many online batch
	// boundaries, so several warm-seeded refits happen.
	evs := traffic.Arrivals(traffic.Random(rng, 130, 20, 0, excr.DefaultSpace), nil)
	for _, e := range evs {
		s := excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}
		warm.Observe(s)
		cold.Observe(s)
	}
	if warm.Bootstrapping() || cold.Bootstrapping() {
		t.Fatal("both classifiers should be online")
	}
	if warmFits.Value() == 0 {
		t.Fatal("online refits should have used the warm seed")
	}
	if err := cold.Retrain(); err != nil {
		t.Fatal(err)
	}

	probes := traffic.Arrivals(traffic.Random(mathx.NewRand(62), 120, 20, 0, excr.DefaultSpace), nil)
	var compared, disagree int
	for _, e := range probes {
		dw, dc := warm.Decide(e.Arrival), cold.Decide(e.Arrival)
		// The warm model keeps an earlier feature standardization, so
		// its margins are not bitwise the cold ones; skip probes the
		// cold model itself is unsure about.
		if math.Abs(dc.Depth) < 0.05 {
			continue
		}
		compared++
		if dw.Admit != dc.Admit {
			disagree++
		}
	}
	if compared < 50 {
		t.Fatalf("probe set too easy: only %d off-boundary probes", compared)
	}
	if disagree > compared/50 {
		t.Fatalf("warm and cold classifiers disagree on %d/%d off-boundary probes",
			disagree, compared)
	}
}

// TestWarmFitsMetricCold pins the counter semantics: a cold-configured
// classifier must never report warm fits.
func TestWarmFitsMetricCold(t *testing.T) {
	ac := New(excr.DefaultSpace, DefaultConfig())
	var warmFits obs.Counter
	ac.SetMetrics(Metrics{WarmFits: &warmFits})
	feedRandom(ac, wifiOracle(), 80, 63)
	if ac.Bootstrapping() {
		t.Fatal("should be online")
	}
	if warmFits.Value() != 0 {
		t.Fatalf("cold classifier reported %d warm fits", warmFits.Value())
	}
}

// TestWarmLearnerSelection checks New picks the stateful warm SVM only
// when asked, and that an explicit Learner override always wins.
func TestWarmLearnerSelection(t *testing.T) {
	if _, ok := New(excr.DefaultSpace, DefaultConfig()).learner.(*learner.WarmSVM); ok {
		t.Fatal("default config must use the stateless SVM learner")
	}
	cfg := DefaultConfig()
	cfg.WarmStart = true
	if _, ok := New(excr.DefaultSpace, cfg).learner.(*learner.WarmSVM); !ok {
		t.Fatal("WarmStart config should select the warm SVM learner")
	}
	cfg.Learner = learner.SVM{Config: cfg.SVM}
	if _, ok := New(excr.DefaultSpace, cfg).learner.(learner.SVM); !ok {
		t.Fatal("explicit Learner must override WarmStart selection")
	}
}

// TestDeferRetrainWarmRace stresses the deferred-retrain path with
// warm seeding under the race detector: concurrent Observe streams,
// lock-free Decides, a Maintain loop standing in for the per-cell
// background retrainer, and periodic forced Retrains all share the
// warm learner's state.
func TestDeferRetrainWarmRace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmStart = true
	cfg.DeferRetrain = true
	cfg.BatchSize = 10
	ac := New(excr.DefaultSpace, cfg)
	var warmFits obs.Counter
	ac.SetMetrics(Metrics{WarmFits: &warmFits})
	o := wifiOracle()
	feedRandom(ac, o, 30, 71)
	if err := ac.Maintain(); err != nil {
		t.Fatal(err)
	}
	if ac.Bootstrapping() {
		t.Fatal("should graduate before the stress phase")
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// The background retrainer: drain pending work until told to stop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := ac.Maintain(); err != nil && err != ErrNotReady {
					t.Error(err)
					return
				}
			}
		}
	}()
	probe := traffic.Arrivals(traffic.Random(mathx.NewRand(72), 30, 20, 0, excr.DefaultSpace), nil)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				ac.Decide(probe[i%len(probe)].Arrival)
			}
		}()
	}
	var feeders sync.WaitGroup
	for g := 0; g < 2; g++ {
		feeders.Add(1)
		go func(seed int64) {
			defer feeders.Done()
			rng := mathx.NewRand(seed)
			for _, e := range traffic.Arrivals(traffic.Random(rng, 120, 20, 0, excr.DefaultSpace), nil) {
				ac.Observe(excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
			}
		}(int64(80 + g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			_ = ac.Retrain()
		}
	}()
	feeders.Wait()
	close(stop)
	wg.Wait()
	// One final drain so the last marked batch is fitted.
	if err := ac.Maintain(); err != nil {
		t.Fatal(err)
	}
	if ac.Bootstrapping() {
		t.Fatal("classifier regressed to bootstrap")
	}
	if warmFits.Value() == 0 {
		t.Fatal("stress run should have produced warm-seeded fits")
	}
}
