package classifier

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"exbox/internal/excr"
	"exbox/internal/obs"
	"exbox/internal/svm"
)

// HealthConfig tunes the classifier's model-health monitor
// (EnableHealth). The zero value is usable: every field has a
// default.
type HealthConfig struct {
	// History is how many retrain records are kept (default 64).
	History int
	// DriftWindow is how many decision margins make one drift window.
	// The first completed window after the classifier goes online
	// becomes the frozen reference distribution; every later window is
	// compared against it with a smoothed PSI (default 256).
	DriftWindow int
	// AgreementAlpha is the EWMA step for the online agreement score —
	// how often the current model's prediction for an incoming labeled
	// sample matches its label (default 0.02, ≈ a 50-sample horizon).
	AgreementAlpha float64
	// RFFAgreementMin is the oracle gate for the approximate scoring
	// tier: when the EWMA of RFF-vs-exact sign agreement (same alpha as
	// AgreementAlpha) drops below this threshold, the classifier is
	// demoted to exact scoring until the next fit publishes a fresh
	// tier (default 0.9).
	RFFAgreementMin float64
	// RFFMinSamples is how many oracle comparisons must accumulate
	// before the gate may demote, so a couple of early disagreements
	// can't condemn a tier (default 32).
	RFFMinSamples int
}

// DefaultHealthConfig returns the defaults described on HealthConfig.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{History: 64, DriftWindow: 256, AgreementAlpha: 0.02,
		RFFAgreementMin: 0.9, RFFMinSamples: 32}
}

func (c HealthConfig) withDefaults() HealthConfig {
	d := DefaultHealthConfig()
	if c.History <= 0 {
		c.History = d.History
	}
	if c.DriftWindow <= 1 {
		c.DriftWindow = d.DriftWindow
	}
	if c.AgreementAlpha <= 0 || c.AgreementAlpha > 1 {
		c.AgreementAlpha = d.AgreementAlpha
	}
	if c.RFFAgreementMin <= 0 || c.RFFAgreementMin > 1 {
		c.RFFAgreementMin = d.RFFAgreementMin
	}
	if c.RFFMinSamples <= 0 {
		c.RFFMinSamples = d.RFFMinSamples
	}
	return c
}

// RetrainRecord is the health monitor's account of one published fit:
// what model version it produced, what it cost, and — when the learner
// exposes solver accounting — where the solve time went.
type RetrainRecord struct {
	// Version is the model version the fit published (monotonic per
	// classifier; decisions carry it as Decision.Model).
	Version   uint64 `json:"version"`
	UnixNanos int64  `json:"unix_nanos"`
	// Warm reports whether the solver was seeded from the previous
	// fit's state.
	Warm bool `json:"warm"`
	// TrainingSize is the number of rows fitted; SupportVectors how
	// many the published model retained.
	TrainingSize   int `json:"training_size"`
	SupportVectors int `json:"support_vectors"`
	// CVScore is the most recent bootstrap cross-validation accuracy
	// at the time of the fit (0 before the first check).
	CVScore float64 `json:"cv_score"`
	// Seconds is the wall time of the whole fit, training plus depth
	// calibration.
	Seconds float64 `json:"seconds"`
	// Solve is the solver's phase split (kernel/cache/shrink, warm vs
	// cold); nil for learners without solver accounting (the decision
	// tree ablation).
	Solve *svm.SolveStats `json:"solve,omitempty"`
}

// HealthSnapshot is the exported state of the model-health monitor.
type HealthSnapshot struct {
	ModelVersion uint64  `json:"model_version"`
	Retrains     int     `json:"retrains"`
	LastCV       float64 `json:"last_cv"`
	// Drift is the latest windowed PSI of the decision-margin
	// distribution against the post-graduation reference window; valid
	// once DriftReady (one reference window plus one comparison window
	// completed).
	Drift        float64 `json:"drift_psi"`
	DriftReady   bool    `json:"drift_ready"`
	DriftWindows int64   `json:"drift_windows"`
	// Agreement is the EWMA of "did the current model agree with the
	// incoming ground-truth label" over the last ~1/alpha samples.
	Agreement        float64 `json:"agreement"`
	AgreementSamples int     `json:"agreement_samples"`
	// RFF tier state: RFFActive means the published model carries an
	// approximate scoring tier and it is currently serving decisions;
	// RFFDemoted means the oracle gate flipped scoring back to the
	// exact slab. RFFAgreement/RFFSamples expose the gate's EWMA of
	// approximate-vs-exact sign agreement for the current model.
	RFFActive    bool    `json:"rff_active"`
	RFFDemoted   bool    `json:"rff_demoted"`
	RFFAgreement float64 `json:"rff_agreement"`
	RFFSamples   int     `json:"rff_samples"`
	// History is the retained retrain records, oldest first.
	History []RetrainRecord `json:"history"`
}

// modelHealth is the monitor's state. The margin-drift counters are
// the only part touched by the decision hot path, and they are one
// binary search plus two atomic adds — no lock, no allocation (the
// window-rotation buffers are preallocated).
type modelHealth struct {
	cfg HealthConfig

	mu      sync.Mutex
	records []RetrainRecord // ring once len reaches cfg.History
	next    int             // ring cursor (oldest record when full)
	total   int

	// Online agreement EWMA, updated under mu from Observe (which is
	// already serialized by the classifier's training lock).
	agree  float64
	agreeN int
	feat   []float64
	z      []float64

	// RFF oracle gate: EWMA of approximate-vs-exact sign agreement for
	// the currently published tier, reset on every fit. Under mu.
	rffAgree float64
	rffN     int

	// Margin drift. cur accumulates the running window lock-free; when
	// curN reaches the window size the counts swap into swap (under
	// rotateMu) and become either the frozen reference or one PSI
	// comparison.
	bounds   []float64
	cur      []atomic.Int64 // len(bounds)+1, last is overflow
	curN     atomic.Int64
	rotateMu sync.Mutex
	swap     []int64
	ref      []int64
	refN     int64
	refSet   atomic.Bool
	psiBits  atomic.Uint64
	psiSet   atomic.Bool
	windows  atomic.Int64
}

// marginBounds is the fixed binning for drift windows: log-spaced and
// mirrored around zero, like the margin histograms, because the
// interesting movement is near the boundary.
func marginBounds() []float64 {
	return obs.SignedExpBuckets(0.01, 2, 10) // ±[0.01 .. 5.12] and 0
}

func newModelHealth(cfg HealthConfig) *modelHealth {
	cfg = cfg.withDefaults()
	bounds := marginBounds()
	return &modelHealth{
		cfg:    cfg,
		bounds: bounds,
		cur:    make([]atomic.Int64, len(bounds)+1),
		swap:   make([]int64, len(bounds)+1),
		ref:    make([]int64, len(bounds)+1),
	}
}

// EnableHealth turns on model-health monitoring: per-retrain records,
// margin-distribution drift and the online agreement score, surfaced
// through HealthSnapshot (and the middlebox's /debug/health verdict).
// The first call wins; later calls (for example a re-instrumented
// middlebox) keep the monitor and its accumulated reference window.
func (ac *AdmittanceClassifier) EnableHealth(cfg HealthConfig) {
	ac.health.CompareAndSwap(nil, newModelHealth(cfg))
}

// HealthEnabled reports whether EnableHealth has been called.
func (ac *AdmittanceClassifier) HealthEnabled() bool { return ac.health.Load() != nil }

// ModelVersion returns the version of the currently published model
// (0 while bootstrapping: no model has been fit).
func (ac *AdmittanceClassifier) ModelVersion() uint64 { return ac.state.Load().version }

// HealthSnapshot returns the monitor's current state; ok is false when
// EnableHealth was never called.
func (ac *AdmittanceClassifier) HealthSnapshot() (HealthSnapshot, bool) {
	h := ac.health.Load()
	if h == nil {
		return HealthSnapshot{}, false
	}
	snap := HealthSnapshot{
		ModelVersion: ac.ModelVersion(),
		LastCV:       ac.LastCVScore(),
		Drift:        math.Float64frombits(h.psiBits.Load()),
		DriftReady:   h.psiSet.Load(),
		DriftWindows: h.windows.Load(),
	}
	st := ac.state.Load()
	snap.RFFDemoted = ac.rffDemoted.Load()
	snap.RFFActive = st.approx != nil && !snap.RFFDemoted
	h.mu.Lock()
	snap.Retrains = h.total
	snap.Agreement = h.agree
	snap.AgreementSamples = h.agreeN
	snap.RFFAgreement = h.rffAgree
	snap.RFFSamples = h.rffN
	if len(h.records) < h.cfg.History {
		snap.History = append([]RetrainRecord(nil), h.records...)
	} else {
		snap.History = make([]RetrainRecord, 0, len(h.records))
		snap.History = append(snap.History, h.records[h.next:]...)
		snap.History = append(snap.History, h.records[:h.next]...)
	}
	h.mu.Unlock()
	return snap, true
}

// observeMargin folds one decision margin into the running drift
// window: one binary search, two atomic adds, and — once per window —
// a rotation over preallocated buffers. Allocation-free.
func (h *modelHealth) observeMargin(m float64) {
	i := sort.SearchFloat64s(h.bounds, m)
	h.cur[i].Add(1)
	if h.curN.Add(1) == int64(h.cfg.DriftWindow) {
		h.rotate()
	}
}

// rotate closes the current window: the first completed window becomes
// the frozen post-graduation reference, every later one produces a PSI
// against it. Concurrent decisions keep counting into cur while the
// swap runs; the handful that land mid-swap smear into the next
// window, which is fine for a drift statistic.
func (h *modelHealth) rotate() {
	h.rotateMu.Lock()
	defer h.rotateMu.Unlock()
	var total int64
	for i := range h.cur {
		h.swap[i] = h.cur[i].Swap(0)
		total += h.swap[i]
	}
	h.curN.Store(0)
	if !h.refSet.Load() {
		copy(h.ref, h.swap)
		h.refN = total
		h.refSet.Store(true)
		return
	}
	h.psiBits.Store(math.Float64bits(psiOf(h.ref, h.refN, h.swap, total)))
	h.psiSet.Store(true)
	h.windows.Add(1)
}

// psiOf is the population-stability index between two binned
// distributions, with +0.5 Laplace smoothing per bin so empty bins
// (routine at these window sizes) don't blow the logarithm up.
func psiOf(ref []int64, refN int64, cur []int64, curN int64) float64 {
	if refN == 0 || curN == 0 {
		return 0
	}
	k := 0.5 * float64(len(ref))
	var sum float64
	for i := range ref {
		p := (float64(ref[i]) + 0.5) / (float64(refN) + k)
		q := (float64(cur[i]) + 0.5) / (float64(curN) + k)
		sum += (q - p) * math.Log(q/p)
	}
	return sum
}

// record appends one retrain record to the bounded history.
func (h *modelHealth) record(rec RetrainRecord) {
	h.mu.Lock()
	if len(h.records) < h.cfg.History {
		h.records = append(h.records, rec)
	} else {
		h.records[h.next] = rec
		h.next = (h.next + 1) % h.cfg.History
	}
	h.total++
	h.mu.Unlock()
}

// observeSample scores an incoming ground-truth sample against the
// currently published model and folds the agreement into the EWMA:
// a live accuracy estimate that needs no extra labels. Called from
// Observe (serialized by the training lock), never from Decide.
func (ac *AdmittanceClassifier) healthObserveSample(h *modelHealth, s excr.Sample) {
	st := ac.state.Load()
	if st.bootstrap || st.model == nil {
		return
	}
	h.mu.Lock()
	h.feat = s.Arrival.FeaturesInto(h.feat)
	var margin float64
	if st.fast != nil {
		if need := st.fast.Dim(); cap(h.z) < need {
			h.z = make([]float64, need)
		}
		margin = st.fast.DecisionInto(h.z[:cap(h.z)], h.feat)
	} else {
		margin = st.model.Decision(h.feat)
	}
	agree := 0.0
	if (margin >= 0) == (s.Label == 1) {
		agree = 1
	}
	if h.agreeN == 0 {
		h.agree = agree
	} else {
		h.agree += h.cfg.AgreementAlpha * (agree - h.agree)
	}
	h.agreeN++
	// Oracle gate for the approximate tier: the exact margin just
	// computed above is the oracle, one extra DecisionApprox per
	// labeled sample is the gate's whole cost. Demotion flips the
	// classifier's lock-free rffDemoted flag, which the decision paths
	// read; it stays set until the next fit publishes a fresh tier.
	if st.approx != nil && !ac.rffDemoted.Load() {
		am := st.approx.DecisionApprox(h.feat)
		ok := 0.0
		if (am >= 0) == (margin >= 0) {
			ok = 1
		}
		if h.rffN == 0 {
			h.rffAgree = ok
		} else {
			h.rffAgree += h.cfg.AgreementAlpha * (ok - h.rffAgree)
		}
		h.rffN++
		if h.rffN >= h.cfg.RFFMinSamples && h.rffAgree < h.cfg.RFFAgreementMin {
			if !ac.rffDemoted.Swap(true) {
				ac.metrics.RFFDemotions.Inc()
			}
		}
	}
	h.mu.Unlock()
}

// resetRFF starts the oracle gate's agreement EWMA over; the fit path
// calls it when publishing a new model so a stale tier's score cannot
// condemn (or excuse) its successor.
func (h *modelHealth) resetRFF() {
	h.mu.Lock()
	h.rffAgree = 0
	h.rffN = 0
	h.mu.Unlock()
}

// retrainRecordOf assembles the health record for a published fit.
func retrainRecordOf(version uint64, rows int, cv, seconds float64, m interface{ NumSV() int }, stats *svm.SolveStats) RetrainRecord {
	rec := RetrainRecord{
		Version:      version,
		UnixNanos:    time.Now().UnixNano(),
		TrainingSize: rows,
		CVScore:      cv,
		Seconds:      seconds,
		Solve:        stats,
	}
	if stats != nil {
		rec.Warm = stats.Warm
	}
	if m != nil {
		rec.SupportVectors = m.NumSV()
	}
	return rec
}
