package classifier

import (
	"testing"

	"exbox/internal/excr"
)

// TestAppendSampleKeyMatchesSampleKey pins appendSampleKey to the
// fmt-based sampleKey byte for byte: the observation path's index
// probes go through the append form, so any drift between the two
// would silently split the replace-repeated policy into two key
// spaces.
func TestAppendSampleKeyMatchesSampleKey(t *testing.T) {
	var buf []byte
	for n := 0; n < 40; n++ {
		a := webArrival(n)
		a.Class = excr.AppClass(n % excr.DefaultSpace.Classes)
		a.Level = excr.SNRLevel(n % excr.DefaultSpace.Levels)
		a.Matrix = a.Matrix.Inc(excr.Streaming, 0)
		want := sampleKey(a)
		buf = appendSampleKey(buf[:0], a)
		if string(buf) != want {
			t.Fatalf("arrival %d: appendSampleKey %q, sampleKey %q", n, buf, want)
		}
	}
}

// TestObserveSteadyStateAllocs locks in the allocation contract of the
// steady-state feedback path: once a tuple's key is in the index, a
// repeat observation is a replacement hit — key built in the reusable
// buffer, map probed through the no-alloc conversion, sample slot
// overwritten in place — and with DeferRetrain the phase machinery
// only flips a pending bit. Zero allocations, or the per-expiry
// feedback burst starts taxing the collector.
func TestObserveSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeferRetrain = true
	if !cfg.ReplaceRepeated {
		t.Fatal("default config lost ReplaceRepeated; the steady-state path depends on it")
	}
	ac := New(excr.DefaultSpace, cfg)
	s := excr.Sample{Arrival: webArrival(3), Label: 1}
	ac.Observe(s) // first sight inserts the key
	if got := testing.AllocsPerRun(500, func() { ac.Observe(s) }); got != 0 {
		t.Errorf("steady-state Observe: %v allocs/op, want 0", got)
	}

	// The batched entry point shares observeLocked, so a warmed burst
	// of replacement hits must stay allocation-free too.
	burst := make([]excr.Sample, 8)
	for i := range burst {
		burst[i] = s
	}
	ac.ObserveBatch(burst)
	if got := testing.AllocsPerRun(200, func() { ac.ObserveBatch(burst) }); got != 0 {
		t.Errorf("steady-state ObserveBatch: %v allocs/op, want 0", got)
	}
}
