package classifier

import (
	"math"
	"testing"

	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/obs"
)

// paritySamples builds labeled arrivals whose ground truth is the
// parity of the total flow count — a checkerboard in count space. A
// high-gamma exact RBF memorizes it; a tiny random-Fourier dictionary
// (and its linear terms) cannot track the memorized boundary, which is
// exactly the failure mode the oracle gate exists to catch.
func paritySamples(n int, seed int64) []excr.Sample {
	rng := mathx.NewRand(seed)
	s := excr.DefaultSpace
	out := make([]excr.Sample, 0, n)
	for i := 0; i < n; i++ {
		m := excr.NewMatrix(s)
		total := 0
		for c := 0; c < s.Classes; c++ {
			k := rng.Intn(6)
			m = m.Set(excr.AppClass(c), 0, k)
			total += k
		}
		label := 1.0
		if total%2 == 1 {
			label = -1
		}
		out = append(out, excr.Sample{
			Arrival: excr.Arrival{Matrix: m, Class: excr.AppClass(rng.Intn(s.Classes))},
			Label:   label,
		})
	}
	return out
}

// rffAdversaryConfig is a classifier setup whose exact model is wiggly
// (memorizing gamma) while the approximate tier is starved (4-feature
// dictionary): the tier's sign agreement lands near chance, far below
// the demotion threshold.
func rffAdversaryConfig(rff bool) Config {
	cfg := DefaultConfig()
	cfg.SVM.Gamma = 10 // memorize the parity checkerboard
	cfg.SVM.RFF = rff
	cfg.SVM.RFFDim = 4
	cfg.BatchSize = 100000 // no refit while the gate accumulates
	cfg.MinBootstrap = 1 << 30
	return cfg
}

// TestRFFDemotionEndToEnd drives the whole oracle-gate lifecycle
// through the public classifier surface: a fit publishes an RFF tier,
// the tier serves decisions, labeled observations reveal it disagrees
// with the exact boundary, the gate demotes it — after which
// DecideScratch must produce margins bit-identical to a twin
// classifier that never had a tier — and a fresh fit promotes again.
func TestRFFDemotionEndToEnd(t *testing.T) {
	train := paritySamples(120, 1)
	probes := paritySamples(40, 2)

	reg := obs.NewRegistry()
	ac := New(excr.DefaultSpace, rffAdversaryConfig(true))
	ac.SetMetrics(Metrics{
		BadFeatures:   reg.Counter("bad"),
		RFFDemotions:  reg.Counter("demotions"),
		RFFPromotions: reg.Counter("promotions"),
	})
	ac.EnableHealth(HealthConfig{RFFMinSamples: 16})

	// Twin: identical data and hyperparameters, tier disabled. The RFF
	// config fields never touch the SMO solve, so both classifiers
	// publish bit-identical exact models.
	twin := New(excr.DefaultSpace, rffAdversaryConfig(false))
	twin.EnableHealth(HealthConfig{RFFMinSamples: 16})

	for _, s := range train {
		ac.Observe(s)
		twin.Observe(s)
	}
	if err := ac.ForceOnline(); err != nil {
		t.Fatal(err)
	}
	if err := twin.ForceOnline(); err != nil {
		t.Fatal(err)
	}

	snap, ok := ac.HealthSnapshot()
	if !ok || !snap.RFFActive || snap.RFFDemoted {
		t.Fatalf("after fit: want active undemoted tier, got %+v", snap)
	}
	if tsnap, _ := twin.HealthSnapshot(); tsnap.RFFActive {
		t.Fatal("twin must not carry a tier")
	}

	// While the tier serves, margins come from the RFF readout and must
	// differ numerically from the twin's exact slab on the same rows.
	var sc, tsc Scratch
	differ := false
	for _, p := range probes {
		if ac.DecideScratch(p.Arrival, &sc).Margin != twin.DecideScratch(p.Arrival, &tsc).Margin {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("approximate tier produced exact-path margins on every probe; tier not in use?")
	}

	// Labeled traffic drives the gate: each Observe scores the sample
	// through both the exact oracle and the tier. The starved tier
	// tracks a memorized checkerboard at roughly chance, so the
	// agreement EWMA collapses and the gate demotes.
	gate := paritySamples(120, 3)
	for _, s := range gate {
		ac.Observe(s)
		if ac.HealthEnabled() {
			if snap, _ := ac.HealthSnapshot(); snap.RFFDemoted {
				break
			}
		}
	}
	snap, _ = ac.HealthSnapshot()
	if !snap.RFFDemoted || snap.RFFActive {
		t.Fatalf("gate did not demote: agreement=%v samples=%d", snap.RFFAgreement, snap.RFFSamples)
	}
	if got := reg.Counter("demotions").Value(); got != 1 {
		t.Fatalf("demotions counter = %d, want 1", got)
	}
	if snap.RFFAgreement >= 0.9 {
		t.Fatalf("demoted with agreement %v >= threshold", snap.RFFAgreement)
	}

	// Demoted scoring must be the exact fast path: bit-identical to the
	// twin's margins, model version for model version.
	for i, p := range probes {
		got := ac.DecideScratch(p.Arrival, &sc)
		want := twin.DecideScratch(p.Arrival, &tsc)
		if got.Margin != want.Margin || got.Admit != want.Admit {
			t.Fatalf("probe %d post-demotion: margin %v admit %v, twin %v %v",
				i, got.Margin, got.Admit, want.Margin, want.Admit)
		}
	}

	// DecideBatch must take the same demoted path.
	arrivals := make([]excr.Arrival, len(probes))
	for i, p := range probes {
		arrivals[i] = p.Arrival
	}
	batch := ac.DecideBatch(nil, arrivals, &sc)
	for i, p := range probes {
		if want := twin.DecideScratch(p.Arrival, &tsc); batch[i].Margin != want.Margin {
			t.Fatalf("batch probe %d post-demotion: %v, twin %v", i, batch[i].Margin, want.Margin)
		}
	}

	// A fresh fit rebuilds the tier and clears the demotion (counted as
	// a promotion), with the gate's EWMA starting over.
	if err := ac.Retrain(); err != nil {
		t.Fatal(err)
	}
	snap, _ = ac.HealthSnapshot()
	if snap.RFFDemoted || !snap.RFFActive {
		t.Fatalf("refit did not promote: %+v", snap)
	}
	if snap.RFFSamples != 0 {
		t.Fatalf("gate EWMA not reset on refit: %d samples", snap.RFFSamples)
	}
	if got := reg.Counter("promotions").Value(); got != 1 {
		t.Fatalf("promotions counter = %d, want 1", got)
	}
}

// TestRFFHealthyTierStaysPromoted is the converse: on the separable
// WiFi workload, a tier built from a reasonably sized fit tracks the
// exact boundary almost perfectly, so labeled traffic must not demote
// it. (A graduation-sized fit of ~25 rows is genuinely borderline —
// the tier hovers right at the threshold — which is the gate working
// as designed, not a healthy tier.)
func TestRFFHealthyTierStaysPromoted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SVM.RFF = true
	cfg.BatchSize = 100000
	cfg.MinBootstrap = 1 << 30 // bootstrap the full set, fit once
	ac := New(excr.DefaultSpace, cfg)
	ac.EnableHealth(HealthConfig{RFFMinSamples: 8})
	o := wifiOracle()
	feedRandom(ac, o, 200, 31)
	if err := ac.ForceOnline(); err != nil {
		t.Fatal(err)
	}
	snap, _ := ac.HealthSnapshot()
	if !snap.RFFActive {
		t.Fatal("tier not built on the 200-sample fit")
	}
	feedRandom(ac, o, 100, 32)
	snap, _ = ac.HealthSnapshot()
	if snap.RFFDemoted {
		t.Fatalf("healthy tier demoted: agreement=%v samples=%d", snap.RFFAgreement, snap.RFFSamples)
	}
	if snap.RFFSamples == 0 {
		t.Fatal("gate saw no samples")
	}
	if snap.RFFAgreement < 0.95 {
		t.Fatalf("healthy-workload agreement only %v", snap.RFFAgreement)
	}
}

// nanLearner trains a predictor that returns NaN for every row — the
// stand-in for a numerically poisoned model, since excr features
// themselves (integer counts) can never be non-finite.
type nanLearner struct{}

func (nanLearner) Name() string { return "nan" }

func (nanLearner) Train(x [][]float64, y []float64) (learner.Predictor, error) {
	return nanPredictor{}, nil
}

type nanPredictor struct{}

func (nanPredictor) Decision(row []float64) float64 { return math.NaN() }

// TestNaNMarginRejected pins the decision-path guard: a NaN margin is
// counted as a bad feature, forces a reject, and never reaches the
// margin histogram or the drift bins.
func TestNaNMarginRejected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Learner = nanLearner{}
	cfg.MinBootstrap = 1 << 30
	reg := obs.NewRegistry()
	ac := New(excr.DefaultSpace, cfg)
	margin := reg.Histogram("margin", obs.SignedExpBuckets(0.01, 2, 10))
	ac.SetMetrics(Metrics{
		BadFeatures: reg.Counter("bad"),
		Admits:      reg.Counter("admits"),
		Rejects:     reg.Counter("rejects"),
		Margin:      margin,
	})
	ac.EnableHealth(HealthConfig{})
	for _, s := range paritySamples(30, 5) {
		ac.Observe(s)
	}
	if err := ac.ForceOnline(); err != nil {
		t.Fatal(err)
	}

	probes := paritySamples(10, 6)
	var sc Scratch
	for i, p := range probes {
		d := ac.DecideScratch(p.Arrival, &sc)
		if d.Admit || d.Margin != 0 || d.Depth != 0 {
			t.Fatalf("probe %d: NaN margin produced %+v, want reject with zero margin", i, d)
		}
		if d.Model == 0 {
			t.Fatalf("probe %d: reject decision lost the model version", i)
		}
	}
	if got := reg.Counter("bad").Value(); got != int64(len(probes)) {
		t.Fatalf("bad-features counter = %d, want %d", got, len(probes))
	}
	if got := reg.Counter("admits").Value(); got != 0 {
		t.Fatalf("admits = %d, want 0", got)
	}
	if got := margin.Count(); got != 0 {
		t.Fatalf("margin histogram saw %d NaN observations", got)
	}
	snap, _ := ac.HealthSnapshot()
	if snap.DriftWindows != 0 || snap.DriftReady {
		t.Fatalf("NaN margins leaked into drift windows: %+v", snap)
	}

	// Batch path: every row finite, every margin NaN — all rejected and
	// all counted, none observed.
	arrivals := make([]excr.Arrival, len(probes))
	for i, p := range probes {
		arrivals[i] = p.Arrival
	}
	before := reg.Counter("bad").Value()
	for i, d := range ac.DecideBatch(nil, arrivals, &sc) {
		if d.Admit || d.Margin != 0 {
			t.Fatalf("batch probe %d: %+v, want reject", i, d)
		}
	}
	if got := reg.Counter("bad").Value() - before; got != int64(len(probes)) {
		t.Fatalf("batch bad-features delta = %d, want %d", got, len(probes))
	}
	if got := margin.Count(); got != 0 {
		t.Fatalf("batch leaked %d NaN margins into the histogram", got)
	}
	if got := reg.Counter("rejects").Value(); got != int64(2*len(probes)) {
		t.Fatalf("rejects = %d, want %d", got, 2*len(probes))
	}
}
