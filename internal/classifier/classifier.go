// Package classifier implements ExBox's Admittance Classifier
// (Section 3.1 and Figure 4 of the paper): an online SVM that learns
// the boundary of the Experiential Capacity Region and classifies each
// arriving flow as admissible (+1) or inadmissible (−1).
//
// The classifier runs in two phases:
//
//   - Bootstrap: every flow is admitted and its observed (X_m, Y_m)
//     tuple is recorded. Periodic n-fold cross-validation measures how
//     trustworthy the learned boundary is; once accuracy crosses the
//     configured threshold the classifier goes online.
//
//   - Online learning: each arrival is classified by the trained SVM.
//     Observed tuples continue to accumulate, and after every batch of
//     B flows the SVM is retrained on everything seen so far. A traffic
//     matrix seen again replaces its previously observed QoE label, so
//     the training set tracks the network as it drifts.
package classifier

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/obs"
	"exbox/internal/svm"
)

// Metrics is the classifier's telemetry hookup. Every field is
// optional (nil fields no-op), and every update on the Decide path is
// a single atomic operation — instrumentation never adds a lock or an
// allocation to admission. Wire it with SetMetrics before the
// classifier sees concurrent traffic; exboxcore.Middlebox.Instrument
// does this per cell.
type Metrics struct {
	// Decide path (lock-free, atomic-only). Total decisions are not a
	// separate counter — every decision lands in exactly one of Admits
	// or Rejects, so the total is derived at scrape time and the hot
	// path saves an atomic op.
	BootstrapDecisions *obs.Counter   // decided by the admit-everything bootstrap
	Admits             *obs.Counter   // classifier said admissible (incl. bootstrap)
	Rejects            *obs.Counter   // classifier said inadmissible
	Margin             *obs.Histogram // signed SVM decision values

	// Training path (under the training lock / fit lock).
	Observations *obs.Counter    // labeled tuples fed in
	Replacements *obs.Counter    // repeated matrices that replaced their label
	Evictions    *obs.Counter    // LRU-evicted training samples
	TrainingSize *obs.Gauge      // current deduplicated training-set size
	Fits         *obs.Counter    // model fits published
	WarmFits     *obs.Counter    // fits seeded from the previous solver state
	FitErrors    *obs.Counter    // fits that failed (incl. not-ready)
	FitSeconds   *obs.Histogram  // wall time per fit, train + calibration
	CVChecks     *obs.Counter    // bootstrap cross-validation runs
	CVScore      *obs.GaugeFloat // most recent cross-validation accuracy
	Graduations  *obs.Counter    // bootstrap -> online phase transitions

	// Solver cache behavior, accumulated per fit when model health is
	// enabled and the learner exposes solver accounting.
	KernelCacheHits   *obs.Counter // kernel-row lookups served from cache
	KernelCacheMisses *obs.Counter // kernel rows computed

	// BadFeatures counts observations and decisions rejected at the
	// feature boundary: a non-finite feature row, or a model that
	// returned a NaN margin. Neither is allowed to reach the margin
	// histogram or the drift bins.
	BadFeatures *obs.Counter

	// RFF tier lifecycle (see EnableHealth's oracle gate): demotions
	// flip scoring back to the exact kernel walk when the approximate
	// tier's agreement EWMA drops below the threshold; promotions count
	// demoted classifiers restored by a fresh fit that rebuilt a tier.
	RFFDemotions  *obs.Counter
	RFFPromotions *obs.Counter
}

// Controller is the common admission-control interface shared by the
// Admittance Classifier and the RateBased/MaxClient baselines.
type Controller interface {
	// Decide returns the admission decision for an arriving flow.
	Decide(a excr.Arrival) Decision
	// Observe feeds a ground-truth labeled tuple to learners;
	// baselines ignore it.
	Observe(s excr.Sample)
	// Name identifies the controller in experiment output.
	Name() string
}

// Decision is the outcome of classifying one arrival.
type Decision struct {
	// Admit is true when the flow should be admitted.
	Admit bool
	// Margin is the signed SVM decision value: how far inside
	// (positive) or outside (negative) the capacity region the
	// post-admission state sits. Baselines and the bootstrap phase
	// report 0.
	Margin float64
	// Depth is the margin normalized by the largest absolute decision
	// value seen on the training set, yielding a roughly [-1, 1] score
	// comparable across cells. Network selection ranks admitting cells
	// by Depth.
	Depth float64
	// Bootstrap is true when the decision was made during the
	// bootstrap phase (everything is admitted unconditionally).
	Bootstrap bool
	// Model is the version of the model snapshot that made the
	// decision (monotonic per classifier, 0 during bootstrap), so
	// audit records and traces can tie a verdict to the exact boundary
	// that produced it.
	Model uint64
}

// Config holds Admittance Classifier hyperparameters.
type Config struct {
	// SVM is the underlying learner configuration, used when Learner
	// is nil.
	SVM svm.Config
	// Learner overrides the learning technique (e.g. learner.Tree for
	// the decision-tree ablation). Nil uses an SVM with the SVM config,
	// the paper's choice.
	Learner learner.Learner
	// BatchSize is B: the SVM is retrained after this many new
	// observations in the online phase. The paper uses 20 for WiFi,
	// 10 for LTE, and 100–400 in the large mixed-SNR simulations.
	BatchSize int
	// CVFolds is n for the bootstrap cross-validation.
	CVFolds int
	// CVThreshold is the cross-validation accuracy that ends the
	// bootstrap phase.
	CVThreshold float64
	// MinBootstrap is the minimum number of observations before
	// cross-validation is attempted (the paper observes ≈50 samples
	// suffice).
	MinBootstrap int
	// CVEvery spaces out cross-validation checks during bootstrap.
	CVEvery int
	// ReplaceRepeated controls whether a re-observed traffic matrix
	// replaces its old label (the paper's behavior, and the default)
	// or is appended as a fresh sample (ablation).
	ReplaceRepeated bool
	// MaxTrainingSet caps the training-set size; least-recently
	// observed samples are evicted first. 0 means unlimited.
	MaxTrainingSet int
	// Seed drives fold shuffling and is part of the deterministic
	// behavior of the classifier.
	Seed int64
	// WarmStart seeds each online refit from the previous fit's solver
	// state (dual variables keyed by traffic matrix, frozen feature
	// standardization): after a batch of B lands, SMO starts from the
	// last boundary instead of from zero, making the paper's
	// retrain-every-batch loop cheap. Seeds are re-aligned by sample
	// key, so replacement, reordering and LRU eviction of training
	// rows invalidate exactly the affected rows rather than the whole
	// seed; the solver itself falls back to a cold fit when the set
	// churned too much. Off by default so experiment output is
	// bit-identical to the cold path; exboxd enables it.
	WarmStart bool
	// DeferRetrain moves the SVM fits off the Observe path: batch
	// boundaries (and bootstrap cross-validation checks) mark a
	// retrain pending instead of fitting inline, and a background
	// worker — exboxcore's per-cell retrainer — performs the fit via
	// Maintain. Off by default, which keeps Observe→Decide
	// synchronous and deterministic for experiments.
	DeferRetrain bool
}

// DefaultConfig returns the configuration used for the WiFi testbed
// experiments.
func DefaultConfig() Config {
	return Config{
		SVM:             svm.DefaultConfig(),
		BatchSize:       20,
		CVFolds:         5,
		CVThreshold:     0.7,
		MinBootstrap:    20,
		CVEvery:         10,
		ReplaceRepeated: true,
		MaxTrainingSet:  1500,
		Seed:            1,
	}
}

// modelSnapshot is the immutable published state Decide reads: the
// trained model, its depth normalizer, and the phase flag. A new
// snapshot is atomically swapped in after every fit, so the admission
// path never takes a lock (trained svm/dtree models are themselves
// immutable and safe for concurrent use).
type modelSnapshot struct {
	model       learner.Predictor
	fast        learner.FastPredictor // model's fast path, nil when not provided
	approx      learner.ApproxPredictor
	calibration float64 // max |decision| over the training set
	bootstrap   bool
	version     uint64 // monotonic fit counter, 0 while bootstrapping
}

// Scratch is per-caller workspace for the allocation-free decision
// paths: feature rows, the standardized-sample buffer, and the batch
// slabs all live here and are grown on demand. A Scratch must not be
// used concurrently; hold one per worker (cmd/exboxd does) or let
// Decide borrow one from the internal pool. The classifier never
// retains a Scratch or any slice inside it beyond the call.
type Scratch struct {
	feat  []float64   // one feature row (DecideScratch)
	z     []float64   // standardized-sample buffer for DecisionInto
	slab  []float64   // flat feature storage for DecideBatch rows
	rows  [][]float64 // row views into slab
	score []float64   // raw decision values for a batch
	batch []float64   // FastPredictor.DecisionBatch workspace
	bad   []bool      // per-row non-finite-feature marks for DecideBatch
}

// scratchPool backs plain Decide so callers that don't hold their own
// Scratch still hit the zero-allocation path (pooling a pointer type
// keeps Get/Put allocation-free).
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// AdmittanceClassifier learns the ExCR boundary online. It is safe for
// concurrent use: Decide is a lock-free read of the atomically
// published model snapshot, while Observe and the retraining entry
// points serialize on an internal training lock. With
// Config.DeferRetrain the expensive SVM fits additionally move to a
// background caller of Maintain, leaving Observe cheap.
type AdmittanceClassifier struct {
	cfg   Config
	space excr.Space

	// mu guards the training set and phase counters below. The rng is
	// only consumed under mu (bootstrap cross-validation).
	mu             sync.Mutex
	rng            *rand.Rand
	samples        []excr.Sample
	keys           []string
	index          map[string]int
	sinceTrain     int
	sinceCV        int
	observed       int
	lastCVScore    float64
	retrainPending bool

	// fitMu serializes model fits so concurrent Retrain/Maintain calls
	// publish snapshots in a well-defined order.
	fitMu  sync.Mutex
	state  atomic.Pointer[modelSnapshot]
	fitSeq atomic.Uint64 // model-version source, incremented per published fit

	// health is the optional model-health monitor (EnableHealth); nil
	// costs the hot paths one pointer load and branch.
	health atomic.Pointer[modelHealth]

	// rffDemoted is the oracle gate's verdict on the published model's
	// approximate scoring tier: when set, the decision paths ignore
	// snapshot.approx and score through the exact fast path. Set by the
	// health monitor when the RFF-vs-oracle agreement EWMA drops below
	// threshold, cleared when a fresh fit publishes a new tier. Read
	// lock-free on every decision.
	rffDemoted atomic.Bool

	// obsFeat is Observe's feature scratch, guarded by mu, for the
	// finite-features check at the observation boundary. keyBuf is the
	// reusable sample-key buffer: the replace-repeated lookup builds
	// the key bytes here and probes the index without materializing a
	// string, so a steady-state (replacement-hit) observation
	// allocates nothing.
	obsFeat []float64
	keyBuf  []byte

	learner learner.Learner

	// metrics is the telemetry hookup (zero value: all no-ops). Set
	// once via SetMetrics before concurrent use; the fields are atomic
	// primitives, so updates themselves are always race-free.
	metrics Metrics
}

// New returns a fresh classifier in the bootstrap phase for the given
// traffic-matrix space.
func New(space excr.Space, cfg Config) *AdmittanceClassifier {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 20
	}
	if cfg.CVFolds < 2 {
		cfg.CVFolds = 5
	}
	if cfg.CVThreshold <= 0 {
		cfg.CVThreshold = 0.7
	}
	if cfg.MinBootstrap <= 0 {
		cfg.MinBootstrap = 20
	}
	if cfg.CVEvery <= 0 {
		cfg.CVEvery = 10
	}
	l := cfg.Learner
	if l == nil {
		if cfg.WarmStart {
			l = learner.NewWarmSVM(cfg.SVM)
		} else {
			l = learner.SVM{Config: cfg.SVM}
		}
	}
	ac := &AdmittanceClassifier{
		cfg:     cfg,
		space:   space,
		rng:     mathx.NewRand(cfg.Seed),
		index:   make(map[string]int),
		learner: l,
	}
	ac.state.Store(&modelSnapshot{bootstrap: true})
	return ac
}

// Name implements Controller.
func (ac *AdmittanceClassifier) Name() string { return "ExBox" }

// SetMetrics wires the classifier's telemetry. Call it once, before
// the classifier sees concurrent traffic (typically right after New);
// the middlebox does this when a registry is attached.
func (ac *AdmittanceClassifier) SetMetrics(m Metrics) { ac.metrics = m }

// Bootstrapping reports whether the classifier is still in its
// bootstrap (observe-everything) phase.
func (ac *AdmittanceClassifier) Bootstrapping() bool { return ac.state.Load().bootstrap }

// TrainingSetSize returns the current number of (deduplicated)
// training tuples.
func (ac *AdmittanceClassifier) TrainingSetSize() int {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return len(ac.samples)
}

// Observed returns the total number of observations fed to the
// classifier, before deduplication.
func (ac *AdmittanceClassifier) Observed() int {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.observed
}

// LastCVScore returns the most recent bootstrap cross-validation
// accuracy (0 before the first check).
func (ac *AdmittanceClassifier) LastCVScore() float64 {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.lastCVScore
}

// RetrainPending reports whether deferred training work is queued for
// Maintain (always false without Config.DeferRetrain).
func (ac *AdmittanceClassifier) RetrainPending() bool {
	ac.mu.Lock()
	defer ac.mu.Unlock()
	return ac.retrainPending
}

// sampleKey identifies a tuple for the replace-repeated-matrix policy:
// the paper replaces the observed QoE when the same traffic matrix
// recurs; the arriving flow's class and level are part of the state.
func sampleKey(a excr.Arrival) string {
	return fmt.Sprintf("%s|%d|%d", a.Matrix.Key(), a.Class, a.Level)
}

// appendSampleKey is sampleKey into a reusable buffer, byte-identical
// to it (the alloc-free pinning test holds the two together). The
// observation path builds the key here and only materializes a string
// for genuinely new samples.
func appendSampleKey(dst []byte, a excr.Arrival) []byte {
	dst = a.Matrix.AppendKey(dst)
	dst = append(dst, '|')
	dst = strconv.AppendInt(dst, int64(a.Class), 10)
	dst = append(dst, '|')
	return strconv.AppendInt(dst, int64(a.Level), 10)
}

// Observe implements Controller: it folds one ground-truth labeled
// tuple into the training set and advances the phase machinery —
// cross-validation during bootstrap, batch retraining online (or, with
// DeferRetrain, marking the work pending for Maintain).
func (ac *AdmittanceClassifier) Observe(s excr.Sample) {
	ac.mu.Lock()
	req := ac.observeLocked(s)
	ac.mu.Unlock()
	if req != nil {
		_ = ac.fit(req)
	}
}

// ObserveBatch feeds a burst of labeled tuples under one hold of the
// training lock — the per-burst entry point of the ingest datapath,
// amortizing the lock handshake and the phase accounting that Observe
// pays per sample. Semantics are identical to calling Observe in
// sequence: when a sample crosses a batch boundary (or a bootstrap CV
// checkpoint) without DeferRetrain, the lock is dropped, the fit runs
// inline, and the batch resumes — so later samples in the burst see
// exactly the phase transitions the per-sample path would have
// produced.
func (ac *AdmittanceClassifier) ObserveBatch(samples []excr.Sample) {
	ac.mu.Lock()
	for i := range samples {
		if req := ac.observeLocked(samples[i]); req != nil {
			ac.mu.Unlock()
			_ = ac.fit(req)
			ac.mu.Lock()
		}
	}
	ac.mu.Unlock()
}

// observeLocked is the body shared by Observe and ObserveBatch: fold
// one labeled tuple into the training set and return the fit to run
// outside the lock, if the phase machinery asks for one. Caller holds
// mu.
func (ac *AdmittanceClassifier) observeLocked(s excr.Sample) *fitRequest {
	if s.Label != 1 && s.Label != -1 {
		panic(fmt.Sprintf("classifier: label %v, want ±1", s.Label))
	}
	// Reject corrupt observations at the boundary: a NaN or ±Inf
	// feature would poison every fused dot product downstream (training
	// rows, margins, the drift bins). The UDP observation path computes
	// features from packet counters, so this should never fire — which
	// is exactly why it is a counter and not a panic.
	ac.obsFeat = s.Arrival.FeaturesInto(ac.obsFeat)
	if !mathx.AllFinite(ac.obsFeat) {
		ac.metrics.BadFeatures.Inc()
		return nil
	}
	ac.observed++
	ac.metrics.Observations.Inc()
	if h := ac.health.Load(); h != nil {
		// Score the sample against the model that would have decided
		// it, before this observation can trigger a refit.
		ac.healthObserveSample(h, s)
	}
	ac.keyBuf = appendSampleKey(ac.keyBuf[:0], s.Arrival)
	// The []byte→string conversion in the index probe does not
	// allocate (compiler-recognized map-lookup form), so the
	// replacement hit — the steady state once the matrix space has
	// been explored — is allocation-free end to end.
	if i, ok := ac.index[string(ac.keyBuf)]; ok && ac.cfg.ReplaceRepeated {
		ac.samples[i] = s
		ac.touchLocked(i)
		ac.metrics.Replacements.Inc()
	} else {
		key := string(ac.keyBuf)
		ac.samples = append(ac.samples, s)
		ac.keys = append(ac.keys, key)
		ac.index[key] = len(ac.samples) - 1
		ac.evictIfNeededLocked()
	}
	ac.metrics.TrainingSize.Set(int64(len(ac.samples)))
	return ac.advancePhaseLocked()
}

// advancePhaseLocked runs the per-observation phase accounting and
// returns the fit to perform outside the training lock, if any. With
// DeferRetrain it marks the work pending instead. Caller holds mu.
func (ac *AdmittanceClassifier) advancePhaseLocked() *fitRequest {
	if ac.state.Load().bootstrap {
		ac.sinceCV++
		if len(ac.samples) < ac.cfg.MinBootstrap || ac.sinceCV < ac.cfg.CVEvery {
			return nil
		}
		ac.sinceCV = 0
		if ac.cfg.DeferRetrain {
			ac.retrainPending = true
			return nil
		}
		return ac.crossValidateLocked()
	}
	ac.sinceTrain++
	if ac.sinceTrain < ac.cfg.BatchSize {
		return nil
	}
	ac.sinceTrain = 0
	if ac.cfg.DeferRetrain {
		ac.retrainPending = true
		return nil
	}
	x, y, keys := ac.datasetLocked()
	return &fitRequest{x: x, y: y, keys: keys}
}

// touchLocked moves the just-replaced sample at slot i to the tail so
// eviction order is least-recently-observed: a matrix the network keeps
// revisiting (and re-confirming) must outlive matrices not seen since.
// Caller holds mu.
func (ac *AdmittanceClassifier) touchLocked(i int) {
	last := len(ac.samples) - 1
	if i == last {
		return
	}
	s, k := ac.samples[i], ac.keys[i]
	copy(ac.samples[i:], ac.samples[i+1:])
	copy(ac.keys[i:], ac.keys[i+1:])
	ac.samples[last], ac.keys[last] = s, k
	for j := i; j <= last; j++ {
		ac.index[ac.keys[j]] = j
	}
}

// evictIfNeededLocked drops the least-recently-observed samples beyond
// MaxTrainingSet. Caller holds mu.
func (ac *AdmittanceClassifier) evictIfNeededLocked() {
	max := ac.cfg.MaxTrainingSet
	if max <= 0 || len(ac.samples) <= max {
		return
	}
	drop := len(ac.samples) - max
	ac.metrics.Evictions.Add(int64(drop))
	for pos, k := range ac.keys[:drop] {
		// With ReplaceRepeated off the same key can appear several
		// times and the index tracks the newest copy; only delete
		// entries that still point into the dropped prefix.
		if ac.index[k] == pos {
			delete(ac.index, k)
		}
	}
	ac.samples = append([]excr.Sample(nil), ac.samples[drop:]...)
	ac.keys = append([]string(nil), ac.keys[drop:]...)
	for i, k := range ac.keys {
		ac.index[k] = i
	}
}

// crossValidateLocked runs the bootstrap n-fold cross-validation and,
// when accuracy clears the threshold, returns the graduation fit.
// Caller holds mu (the CV consumes ac.rng and reads the dataset).
func (ac *AdmittanceClassifier) crossValidateLocked() *fitRequest {
	x, y, keys := ac.datasetLocked()
	ac.metrics.CVChecks.Inc()
	acc, err := learner.CrossValidate(ac.learner, x, y, ac.cfg.CVFolds, ac.rng)
	if err != nil {
		return nil // e.g. single-class folds dominate; keep bootstrapping
	}
	ac.lastCVScore = acc
	ac.metrics.CVScore.Set(acc)
	if acc < ac.cfg.CVThreshold {
		return nil
	}
	return &fitRequest{x: x, y: y, keys: keys, graduate: true}
}

// datasetLocked materializes the training matrices for the SVM, plus
// the per-row sample keys the warm-start path re-aligns seeds by.
// Caller holds mu; the returned slices are private copies safe to use
// after the lock is released.
func (ac *AdmittanceClassifier) datasetLocked() ([][]float64, []float64, []string) {
	x := make([][]float64, len(ac.samples))
	y := make([]float64, len(ac.samples))
	for i, s := range ac.samples {
		x[i] = s.Arrival.Features()
		y[i] = s.Label
	}
	return x, y, append([]string(nil), ac.keys...)
}

// ErrNotReady is returned by Retrain when no model can be fit yet
// (no samples, or a single class observed).
var ErrNotReady = errors.New("classifier: not enough label diversity to train")

// fitRequest is a snapshot of the dataset to train on, taken under mu
// so the expensive fit itself runs without blocking Observe.
type fitRequest struct {
	x        [][]float64
	y        []float64
	keys     []string // per-row sample keys, for warm-seed re-alignment
	graduate bool     // leave bootstrap on success
}

// fit trains on the snapshot and atomically publishes the new model.
func (ac *AdmittanceClassifier) fit(req *fitRequest) error {
	ac.fitMu.Lock()
	defer ac.fitMu.Unlock()
	if len(req.x) == 0 {
		ac.metrics.FitErrors.Inc()
		return ErrNotReady
	}
	start := time.Now()
	// With model health enabled, ask the learner for the solver's
	// per-phase accounting; learners without it fall back to the plain
	// entry points and the record simply carries no solve split.
	h := ac.health.Load()
	var stats *svm.SolveStats
	if h != nil {
		stats = new(svm.SolveStats)
	}
	var m learner.Predictor
	var err error
	if wl, ok := ac.learner.(learner.WarmLearner); ok && ac.cfg.WarmStart && len(req.keys) == len(req.x) {
		var warmed bool
		if wdl, ok := ac.learner.(learner.WarmDetailedLearner); ok && stats != nil {
			m, warmed, err = wdl.TrainWarmDetailed(req.x, req.y, req.keys, stats)
		} else {
			stats = nil
			m, warmed, err = wl.TrainWarm(req.x, req.y, req.keys)
		}
		if warmed {
			ac.metrics.WarmFits.Inc()
		}
	} else if dl, ok := ac.learner.(learner.DetailedLearner); ok && stats != nil {
		m, err = dl.TrainDetailed(req.x, req.y, stats)
	} else {
		stats = nil
		m, err = ac.learner.Train(req.x, req.y)
	}
	if errors.Is(err, learner.ErrOneClass) {
		ac.metrics.FitErrors.Inc()
		return ErrNotReady
	}
	if err != nil {
		ac.metrics.FitErrors.Inc()
		return err
	}
	// Calibrate the depth normalizer: the largest absolute decision
	// value over the training set. Margins divided by it are roughly
	// comparable across independently trained cells.
	fast, _ := m.(learner.FastPredictor)
	calib := 0.0
	if fast != nil {
		for _, d := range fast.DecisionBatch(nil, req.x, nil) {
			if d = math.Abs(d); d > calib {
				calib = d
			}
		}
	} else {
		for _, row := range req.x {
			if d := math.Abs(m.Decision(row)); d > calib {
				calib = d
			}
		}
	}
	if calib < 1e-9 {
		calib = 1
	}
	// The approximate tier ships only when the learner actually built
	// it for this fit (svm with Config.RFF whose readout regression
	// succeeded); otherwise the snapshot scores exactly.
	var approx learner.ApproxPredictor
	if ap, ok := m.(learner.ApproxPredictor); ok && ap.HasApprox() {
		approx = ap
	}
	wasBoot := ac.state.Load().bootstrap
	boot := wasBoot && !req.graduate
	version := ac.fitSeq.Add(1)
	if h != nil {
		// The oracle gate judges one tier against one model: a new fit
		// starts the agreement EWMA over.
		h.resetRFF()
	}
	ac.state.Store(&modelSnapshot{model: m, fast: fast, approx: approx, calibration: calib, bootstrap: boot, version: version})
	// A fresh fit clears a demotion: the new tier gets its own trial
	// (counted as a promotion only when there is a tier to promote).
	if wasDemoted := ac.rffDemoted.Swap(false); wasDemoted && approx != nil {
		ac.metrics.RFFPromotions.Inc()
	}
	ac.metrics.Fits.Inc()
	elapsed := time.Since(start).Seconds()
	ac.metrics.FitSeconds.Observe(elapsed)
	if wasBoot && !boot {
		ac.metrics.Graduations.Inc()
	}
	if h != nil {
		if stats != nil {
			ac.metrics.KernelCacheHits.Add(int64(stats.CacheHits))
			ac.metrics.KernelCacheMisses.Add(int64(stats.CacheMisses))
		}
		nsv, _ := m.(interface{ NumSV() int })
		h.record(retrainRecordOf(version, len(req.x), ac.LastCVScore(), elapsed, nsv, stats))
	}
	return nil
}

// Retrain fits the SVM on the full training set now, regardless of
// batch accounting. The middlebox calls this when it detects drastic
// network changes (Section 4.3).
func (ac *AdmittanceClassifier) Retrain() error {
	ac.mu.Lock()
	x, y, keys := ac.datasetLocked()
	ac.mu.Unlock()
	return ac.fit(&fitRequest{x: x, y: y, keys: keys})
}

// Maintain performs the deferred training work marked pending by
// Observe under Config.DeferRetrain: the bootstrap cross-validation
// and graduation, or an online batch refit, whichever the phase calls
// for. It is the entry point for the per-cell background retrainer and
// a no-op when nothing is pending. Bursts of observations coalesce
// into one fit: however many batch boundaries passed since the last
// call, Maintain trains once on everything seen so far.
func (ac *AdmittanceClassifier) Maintain() error {
	ac.mu.Lock()
	if !ac.retrainPending {
		ac.mu.Unlock()
		return nil
	}
	ac.retrainPending = false
	var req *fitRequest
	if ac.state.Load().bootstrap {
		req = ac.crossValidateLocked()
	} else {
		x, y, keys := ac.datasetLocked()
		req = &fitRequest{x: x, y: y, keys: keys}
	}
	ac.mu.Unlock()
	if req == nil {
		return nil
	}
	return ac.fit(req)
}

// Decide implements Controller. During bootstrap every flow is
// admitted (the paper's ExBox performs no admission control until the
// classifier graduates); online, the SVM's sign decides and the margin
// reports depth inside the region. Decide is lock-free: it reads the
// last published model snapshot, so admission never waits on training.
func (ac *AdmittanceClassifier) Decide(a excr.Arrival) Decision {
	s := scratchPool.Get().(*Scratch)
	d := ac.DecideScratch(a, s)
	scratchPool.Put(s)
	return d
}

// DecideScratch is Decide with caller-owned workspace: per-worker
// callers (exboxd's packet workers) hold a Scratch each so the online
// decision performs no allocation. A nil Scratch falls back to the
// internal pool.
func (ac *AdmittanceClassifier) DecideScratch(a excr.Arrival, s *Scratch) Decision {
	if s == nil {
		return ac.Decide(a)
	}
	st := ac.state.Load()
	if st.bootstrap || st.model == nil {
		ac.metrics.BootstrapDecisions.Inc()
		ac.metrics.Admits.Inc()
		return Decision{Admit: true, Bootstrap: true}
	}
	s.feat = a.FeaturesInto(s.feat)
	if !mathx.AllFinite(s.feat) {
		ac.metrics.BadFeatures.Inc()
		ac.metrics.Rejects.Inc()
		return Decision{Model: st.version}
	}
	var margin float64
	if st.approx != nil && !ac.rffDemoted.Load() {
		margin = st.approx.DecisionApprox(s.feat)
	} else if st.fast != nil {
		if need := st.fast.Dim(); cap(s.z) < need {
			s.z = make([]float64, need)
		}
		margin = st.fast.DecisionInto(s.z[:cap(s.z)], s.feat)
	} else {
		margin = st.model.Decision(s.feat)
	}
	if margin != margin { // NaN: reject, and keep it out of the drift bins
		ac.metrics.BadFeatures.Inc()
		ac.metrics.Rejects.Inc()
		return Decision{Model: st.version}
	}
	ac.metrics.Margin.Observe(margin)
	if h := ac.health.Load(); h != nil {
		h.observeMargin(margin)
	}
	if margin >= 0 {
		ac.metrics.Admits.Inc()
	} else {
		ac.metrics.Rejects.Inc()
	}
	return Decision{Admit: margin >= 0, Margin: margin, Depth: depthOf(margin, st.calibration), Model: st.version}
}

// DecideBatch scores every arrival against one model snapshot — the
// consistency the Reevaluate sweep and SelectNetwork fan-out need: a
// concurrent refit cannot change the boundary mid-batch. Decisions are
// written into dst (grown when too small) and returned. With a
// caller-owned Scratch the whole batch is one pass over the SV slab
// and allocation-free; metrics count every decision, batched into two
// counter updates.
func (ac *AdmittanceClassifier) DecideBatch(dst []Decision, arrivals []excr.Arrival, s *Scratch) []Decision {
	n := len(arrivals)
	if n == 0 {
		return dst[:0]
	}
	if s == nil {
		s = scratchPool.Get().(*Scratch)
		defer scratchPool.Put(s)
	}
	dst = ac.scoreBatch(dst, arrivals, s)
	if dst[0].Bootstrap {
		ac.metrics.BootstrapDecisions.Add(int64(n))
		ac.metrics.Admits.Add(int64(n))
		return dst
	}
	h := ac.health.Load()
	var admits, rejects, nbad int64
	for i, d := range dst {
		if s.bad[i] {
			nbad++
			rejects++
			continue
		}
		ac.metrics.Margin.Observe(d.Margin)
		if h != nil {
			h.observeMargin(d.Margin)
		}
		if d.Admit {
			admits++
		} else {
			rejects++
		}
	}
	if nbad > 0 {
		ac.metrics.BadFeatures.Add(nbad)
	}
	ac.metrics.Admits.Add(admits)
	ac.metrics.Rejects.Add(rejects)
	return dst
}

// PeekBatch scores every arrival like DecideBatch but records nothing:
// no counters, no margin histogram, no health samples. It exists for
// speculative scoring — the burst-admission cascade (exboxcore's
// AdmitBurst) may score a candidate several times under different
// traffic-matrix assumptions and commit only one of those scores, and
// only the committed decision may reach telemetry (via
// RecordDecision, with the row's Bad mark). After the call, Bad(i)
// reports whether row i was forced to reject at the feature boundary.
// Requires a caller-owned Scratch, since the Bad marks live in it.
func (ac *AdmittanceClassifier) PeekBatch(dst []Decision, arrivals []excr.Arrival, s *Scratch) []Decision {
	if len(arrivals) == 0 {
		return dst[:0]
	}
	return ac.scoreBatch(dst, arrivals, s)
}

// RecordDecision performs the per-decision telemetry that DecideScratch
// would have recorded for d: the verdict counter, margin histogram and
// health sample (or the bootstrap/bad-feature counters). bad is the
// scratch's Bad mark for the row d came from. AdmitBurst calls it once
// per candidate, in packet order, when the cascade commits the
// candidate's final decision.
func (ac *AdmittanceClassifier) RecordDecision(d Decision, bad bool) {
	if d.Bootstrap {
		ac.metrics.BootstrapDecisions.Inc()
		ac.metrics.Admits.Inc()
		return
	}
	if bad {
		ac.metrics.BadFeatures.Inc()
		ac.metrics.Rejects.Inc()
		return
	}
	ac.metrics.Margin.Observe(d.Margin)
	if h := ac.health.Load(); h != nil {
		h.observeMargin(d.Margin)
	}
	if d.Admit {
		ac.metrics.Admits.Inc()
	} else {
		ac.metrics.Rejects.Inc()
	}
}

// Bad reports whether row i of this Scratch's most recent
// PeekBatch/DecideBatch was rejected at the feature boundary (a
// non-finite feature row, or a NaN margin from the model). Valid until
// the Scratch's next batch call.
func (s *Scratch) Bad(i int) bool { return s.bad[i] }

// scoreBatch is the scoring core of DecideBatch and PeekBatch: extract
// features into the scratch slab, score the whole batch against one
// model snapshot, and write the decisions — recording no telemetry.
// s.bad[i] marks rows forced to reject at the feature boundary
// (including NaN margins). Caller guarantees n > 0 and s != nil.
func (ac *AdmittanceClassifier) scoreBatch(dst []Decision, arrivals []excr.Arrival, s *Scratch) []Decision {
	n := len(arrivals)
	if cap(dst) < n {
		dst = make([]Decision, n)
	}
	dst = dst[:n]
	st := ac.state.Load()
	if cap(s.bad) < n {
		s.bad = make([]bool, n)
	}
	bad := s.bad[:n]
	if st.bootstrap || st.model == nil {
		for i := range dst {
			dst[i] = Decision{Admit: true, Bootstrap: true}
			bad[i] = false
		}
		return dst
	}
	fd := excr.FeatureDim(ac.space)
	if cap(s.slab) < n*fd {
		s.slab = make([]float64, n*fd)
	}
	if cap(s.rows) < n {
		s.rows = make([][]float64, n)
	}
	rows := s.rows[:n]
	for i, a := range arrivals {
		rows[i] = a.FeaturesInto(s.slab[i*fd : i*fd : (i+1)*fd])
		if bad[i] = !mathx.AllFinite(rows[i]); bad[i] {
			// Zero the row so the slab pass stays finite; the verdict
			// for this row is forced to reject below.
			for j := range rows[i] {
				rows[i][j] = 0
			}
		}
	}
	if cap(s.score) < n {
		s.score = make([]float64, n)
	}
	scores := s.score[:n]
	if st.approx != nil && !ac.rffDemoted.Load() {
		for i, row := range rows {
			scores[i] = st.approx.DecisionApprox(row)
		}
	} else if st.fast != nil {
		if need := st.fast.BatchScratch(n); cap(s.batch) < need {
			s.batch = make([]float64, need)
		}
		scores = st.fast.DecisionBatch(scores, rows, s.batch[:cap(s.batch)])
	} else {
		for i, row := range rows {
			scores[i] = st.model.Decision(row)
		}
	}
	for i, margin := range scores {
		if bad[i] || margin != margin {
			bad[i] = true // NaN margin from a finite row counts as bad
			dst[i] = Decision{Model: st.version}
			continue
		}
		dst[i] = Decision{Admit: margin >= 0, Margin: margin, Depth: depthOf(margin, st.calibration), Model: st.version}
	}
	return dst
}

// depthOf normalizes a margin by the snapshot's calibration. A zero
// (or negative) calibration — the all-training-points-on-boundary
// degenerate fit — yields Depth 0 instead of NaN/±Inf, which would
// otherwise poison network-selection ordering.
func depthOf(margin, calibration float64) float64 {
	if calibration > 0 {
		return margin / calibration
	}
	return 0
}

// ForceOnline ends the bootstrap phase immediately if a model can be
// trained, returning ErrNotReady otherwise. Experiments use it when
// they pre-train from an initial dataset (e.g. the 10% bootstrap sets
// of Figures 11, 13, 14).
func (ac *AdmittanceClassifier) ForceOnline() error {
	ac.mu.Lock()
	x, y, keys := ac.datasetLocked()
	ac.mu.Unlock()
	return ac.fit(&fitRequest{x: x, y: y, keys: keys, graduate: true})
}
