// Package classifier implements ExBox's Admittance Classifier
// (Section 3.1 and Figure 4 of the paper): an online SVM that learns
// the boundary of the Experiential Capacity Region and classifies each
// arriving flow as admissible (+1) or inadmissible (−1).
//
// The classifier runs in two phases:
//
//   - Bootstrap: every flow is admitted and its observed (X_m, Y_m)
//     tuple is recorded. Periodic n-fold cross-validation measures how
//     trustworthy the learned boundary is; once accuracy crosses the
//     configured threshold the classifier goes online.
//
//   - Online learning: each arrival is classified by the trained SVM.
//     Observed tuples continue to accumulate, and after every batch of
//     B flows the SVM is retrained on everything seen so far. A traffic
//     matrix seen again replaces its previously observed QoE label, so
//     the training set tracks the network as it drifts.
package classifier

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/mathx"
	"exbox/internal/svm"
)

// Controller is the common admission-control interface shared by the
// Admittance Classifier and the RateBased/MaxClient baselines.
type Controller interface {
	// Decide returns the admission decision for an arriving flow.
	Decide(a excr.Arrival) Decision
	// Observe feeds a ground-truth labeled tuple to learners;
	// baselines ignore it.
	Observe(s excr.Sample)
	// Name identifies the controller in experiment output.
	Name() string
}

// Decision is the outcome of classifying one arrival.
type Decision struct {
	// Admit is true when the flow should be admitted.
	Admit bool
	// Margin is the signed SVM decision value: how far inside
	// (positive) or outside (negative) the capacity region the
	// post-admission state sits. Baselines and the bootstrap phase
	// report 0.
	Margin float64
	// Depth is the margin normalized by the largest absolute decision
	// value seen on the training set, yielding a roughly [-1, 1] score
	// comparable across cells. Network selection ranks admitting cells
	// by Depth.
	Depth float64
	// Bootstrap is true when the decision was made during the
	// bootstrap phase (everything is admitted unconditionally).
	Bootstrap bool
}

// Config holds Admittance Classifier hyperparameters.
type Config struct {
	// SVM is the underlying learner configuration, used when Learner
	// is nil.
	SVM svm.Config
	// Learner overrides the learning technique (e.g. learner.Tree for
	// the decision-tree ablation). Nil uses an SVM with the SVM config,
	// the paper's choice.
	Learner learner.Learner
	// BatchSize is B: the SVM is retrained after this many new
	// observations in the online phase. The paper uses 20 for WiFi,
	// 10 for LTE, and 100–400 in the large mixed-SNR simulations.
	BatchSize int
	// CVFolds is n for the bootstrap cross-validation.
	CVFolds int
	// CVThreshold is the cross-validation accuracy that ends the
	// bootstrap phase.
	CVThreshold float64
	// MinBootstrap is the minimum number of observations before
	// cross-validation is attempted (the paper observes ≈50 samples
	// suffice).
	MinBootstrap int
	// CVEvery spaces out cross-validation checks during bootstrap.
	CVEvery int
	// ReplaceRepeated controls whether a re-observed traffic matrix
	// replaces its old label (the paper's behavior, and the default)
	// or is appended as a fresh sample (ablation).
	ReplaceRepeated bool
	// MaxTrainingSet caps the training-set size; oldest samples are
	// evicted first. 0 means unlimited.
	MaxTrainingSet int
	// Seed drives fold shuffling and is part of the deterministic
	// behavior of the classifier.
	Seed int64
}

// DefaultConfig returns the configuration used for the WiFi testbed
// experiments.
func DefaultConfig() Config {
	return Config{
		SVM:             svm.DefaultConfig(),
		BatchSize:       20,
		CVFolds:         5,
		CVThreshold:     0.7,
		MinBootstrap:    20,
		CVEvery:         10,
		ReplaceRepeated: true,
		MaxTrainingSet:  1500,
		Seed:            1,
	}
}

// AdmittanceClassifier learns the ExCR boundary online. It is not safe
// for concurrent use; the middlebox serializes access per cell.
type AdmittanceClassifier struct {
	cfg   Config
	space excr.Space
	rng   *rand.Rand

	samples []excr.Sample
	keys    []string
	index   map[string]int

	learner     learner.Learner
	model       learner.Predictor
	calibration float64 // max |decision| over the training set
	bootstrap   bool
	sinceTrain  int
	sinceCV     int
	observed    int
	lastCVScore float64
}

// New returns a fresh classifier in the bootstrap phase for the given
// traffic-matrix space.
func New(space excr.Space, cfg Config) *AdmittanceClassifier {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 20
	}
	if cfg.CVFolds < 2 {
		cfg.CVFolds = 5
	}
	if cfg.CVThreshold <= 0 {
		cfg.CVThreshold = 0.7
	}
	if cfg.MinBootstrap <= 0 {
		cfg.MinBootstrap = 20
	}
	if cfg.CVEvery <= 0 {
		cfg.CVEvery = 10
	}
	l := cfg.Learner
	if l == nil {
		l = learner.SVM{Config: cfg.SVM}
	}
	return &AdmittanceClassifier{
		cfg:       cfg,
		space:     space,
		rng:       mathx.NewRand(cfg.Seed),
		index:     make(map[string]int),
		learner:   l,
		bootstrap: true,
	}
}

// Name implements Controller.
func (ac *AdmittanceClassifier) Name() string { return "ExBox" }

// Bootstrapping reports whether the classifier is still in its
// bootstrap (observe-everything) phase.
func (ac *AdmittanceClassifier) Bootstrapping() bool { return ac.bootstrap }

// TrainingSetSize returns the current number of (deduplicated)
// training tuples.
func (ac *AdmittanceClassifier) TrainingSetSize() int { return len(ac.samples) }

// Observed returns the total number of observations fed to the
// classifier, before deduplication.
func (ac *AdmittanceClassifier) Observed() int { return ac.observed }

// LastCVScore returns the most recent bootstrap cross-validation
// accuracy (0 before the first check).
func (ac *AdmittanceClassifier) LastCVScore() float64 { return ac.lastCVScore }

// sampleKey identifies a tuple for the replace-repeated-matrix policy:
// the paper replaces the observed QoE when the same traffic matrix
// recurs; the arriving flow's class and level are part of the state.
func sampleKey(a excr.Arrival) string {
	return fmt.Sprintf("%s|%d|%d", a.Matrix.Key(), a.Class, a.Level)
}

// Observe implements Controller: it folds one ground-truth labeled
// tuple into the training set and advances the phase machinery —
// cross-validation during bootstrap, batch retraining online.
func (ac *AdmittanceClassifier) Observe(s excr.Sample) {
	if s.Label != 1 && s.Label != -1 {
		panic(fmt.Sprintf("classifier: label %v, want ±1", s.Label))
	}
	ac.observed++
	key := sampleKey(s.Arrival)
	if i, ok := ac.index[key]; ok && ac.cfg.ReplaceRepeated {
		ac.samples[i] = s
	} else {
		ac.samples = append(ac.samples, s)
		ac.keys = append(ac.keys, key)
		ac.index[key] = len(ac.samples) - 1
		ac.evictIfNeeded()
	}

	if ac.bootstrap {
		ac.sinceCV++
		if len(ac.samples) >= ac.cfg.MinBootstrap && ac.sinceCV >= ac.cfg.CVEvery {
			ac.sinceCV = 0
			ac.tryGraduate()
		}
		return
	}
	ac.sinceTrain++
	if ac.sinceTrain >= ac.cfg.BatchSize {
		ac.sinceTrain = 0
		_ = ac.Retrain()
	}
}

// evictIfNeeded drops the oldest samples beyond MaxTrainingSet.
func (ac *AdmittanceClassifier) evictIfNeeded() {
	max := ac.cfg.MaxTrainingSet
	if max <= 0 || len(ac.samples) <= max {
		return
	}
	drop := len(ac.samples) - max
	for _, k := range ac.keys[:drop] {
		delete(ac.index, k)
	}
	ac.samples = append([]excr.Sample(nil), ac.samples[drop:]...)
	ac.keys = append([]string(nil), ac.keys[drop:]...)
	for i, k := range ac.keys {
		ac.index[k] = i
	}
}

// tryGraduate runs n-fold cross-validation and, if accuracy clears the
// threshold, trains the operational model and leaves bootstrap.
func (ac *AdmittanceClassifier) tryGraduate() {
	x, y := ac.dataset()
	acc, err := learner.CrossValidate(ac.learner, x, y, ac.cfg.CVFolds, ac.rng)
	if err != nil {
		return // e.g. single-class folds dominate; keep bootstrapping
	}
	ac.lastCVScore = acc
	if acc < ac.cfg.CVThreshold {
		return
	}
	if err := ac.Retrain(); err == nil {
		ac.bootstrap = false
	}
}

// dataset materializes the training matrices for the SVM.
func (ac *AdmittanceClassifier) dataset() ([][]float64, []float64) {
	x := make([][]float64, len(ac.samples))
	y := make([]float64, len(ac.samples))
	for i, s := range ac.samples {
		x[i] = s.Arrival.Features()
		y[i] = s.Label
	}
	return x, y
}

// ErrNotReady is returned by Retrain when no model can be fit yet
// (no samples, or a single class observed).
var ErrNotReady = errors.New("classifier: not enough label diversity to train")

// Retrain fits the SVM on the full training set now, regardless of
// batch accounting. The middlebox calls this when it detects drastic
// network changes (Section 4.3).
func (ac *AdmittanceClassifier) Retrain() error {
	x, y := ac.dataset()
	if len(x) == 0 {
		return ErrNotReady
	}
	m, err := ac.learner.Train(x, y)
	if errors.Is(err, learner.ErrOneClass) {
		return ErrNotReady
	}
	if err != nil {
		return err
	}
	ac.model = m
	// Calibrate the depth normalizer: the largest absolute decision
	// value over the training set. Margins divided by it are roughly
	// comparable across independently trained cells.
	calib := 0.0
	for _, s := range ac.samples {
		if d := math.Abs(m.Decision(s.Arrival.Features())); d > calib {
			calib = d
		}
	}
	if calib < 1e-9 {
		calib = 1
	}
	ac.calibration = calib
	return nil
}

// Decide implements Controller. During bootstrap every flow is
// admitted (the paper's ExBox performs no admission control until the
// classifier graduates); online, the SVM's sign decides and the margin
// reports depth inside the region.
func (ac *AdmittanceClassifier) Decide(a excr.Arrival) Decision {
	if ac.bootstrap || ac.model == nil {
		return Decision{Admit: true, Bootstrap: true}
	}
	margin := ac.model.Decision(a.Features())
	return Decision{Admit: margin >= 0, Margin: margin, Depth: margin / ac.calibration}
}

// ForceOnline ends the bootstrap phase immediately if a model can be
// trained, returning ErrNotReady otherwise. Experiments use it when
// they pre-train from an initial dataset (e.g. the 10% bootstrap sets
// of Figures 11, 13, 14).
func (ac *AdmittanceClassifier) ForceOnline() error {
	if err := ac.Retrain(); err != nil {
		return err
	}
	ac.bootstrap = false
	return nil
}
