package ring

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-5, 2}, {0, 2}, {1, 2}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1024, 1024}, {1025, 2048},
	} {
		if got := New[int](tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFIFOSingleProducer(t *testing.T) {
	r := New[int](8)
	for i := 0; i < 8; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("push succeeded on full ring")
	}
	if d := r.Depth(); d != 8 {
		t.Fatalf("Depth = %d, want 8", d)
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop succeeded on empty ring")
	}
	if d := r.Depth(); d != 0 {
		t.Fatalf("Depth = %d, want 0", d)
	}
}

// TestWrapAround cycles the ring through many laps so the sequence
// arithmetic is exercised far past the first pass over the slots.
func TestWrapAround(t *testing.T) {
	r := New[int](4)
	next := 0
	for lap := 0; lap < 1000; lap++ {
		for i := 0; i < 3; i++ {
			if !r.TryPush(lap*3 + i) {
				t.Fatalf("lap %d: push failed", lap)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.Pop()
			if !ok || v != next {
				t.Fatalf("lap %d: Pop = %d,%v, want %d,true", lap, v, ok, next)
			}
			next++
		}
	}
}

// TestDrainBurst checks the burst drain moves at most len(buf) entries
// and leaves the rest queued.
func TestDrainBurst(t *testing.T) {
	r := New[int](16)
	for i := 0; i < 10; i++ {
		r.TryPush(i)
	}
	buf := make([]int, 4)
	if n := r.Drain(buf); n != 4 {
		t.Fatalf("Drain = %d, want 4", n)
	}
	for i, v := range buf {
		if v != i {
			t.Fatalf("buf[%d] = %d, want %d", i, v, i)
		}
	}
	if d := r.Depth(); d != 6 {
		t.Fatalf("Depth after partial drain = %d, want 6", d)
	}
	if n := r.Drain(make([]int, 16)); n != 6 {
		t.Fatalf("second Drain = %d, want 6", n)
	}
}

// TestConcurrentProducersConsumer is the -race stress test: several
// producers push disjoint value ranges while the single consumer
// drains in bursts. Every pushed-and-accepted value must come out
// exactly once, in per-producer FIFO order, and drops must equal
// pushes minus pops.
func TestConcurrentProducersConsumer(t *testing.T) {
	const (
		producers = 4
		perProd   = 6000
	)
	r := New[int](256)
	accepted := make([]int64, producers)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := int64(0)
			for i := 0; i < perProd; i++ {
				if r.TryPush(p*perProd + i) {
					n++
				}
				// Yield now and then so the consumer gets scheduled even
				// on GOMAXPROCS=1 — otherwise a producer can run its
				// whole loop against a full ring and drop everything,
				// which tests nothing.
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
			accepted[p] = n
		}(p)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	// Consumer: drain in bursts until all producers are done and the
	// ring is empty. Track per-producer order and counts.
	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	got := make([]int64, producers)
	buf := make([]int, 64)
	producing := true
	for producing || r.Depth() > 0 {
		select {
		case <-done:
			producing = false
		default:
		}
		n := r.Drain(buf)
		for _, v := range buf[:n] {
			p, seq := v/perProd, v%perProd
			if seq <= lastSeen[p] {
				t.Fatalf("producer %d: value %d arrived after %d (order violated or duplicate)", p, seq, lastSeen[p])
			}
			lastSeen[p] = seq
			got[p]++
		}
	}
	for p := 0; p < producers; p++ {
		if got[p] != accepted[p] {
			t.Errorf("producer %d: consumed %d, accepted %d", p, got[p], accepted[p])
		}
		if accepted[p] == 0 {
			t.Errorf("producer %d: every push dropped — overflow path starved the producer entirely", p)
		}
	}
}

// TestOverflowBackpressure fills the ring with no consumer running and
// checks that exactly Cap pushes succeed, the rest fail cleanly, and
// the queue drains intact afterwards — the drop-with-counter contract
// the gateway relies on.
func TestOverflowBackpressure(t *testing.T) {
	r := New[int](32)
	pushed, dropped := 0, 0
	for i := 0; i < 100; i++ {
		if r.TryPush(i) {
			pushed++
		} else {
			dropped++
		}
	}
	if pushed != 32 || dropped != 68 {
		t.Fatalf("pushed %d dropped %d, want 32/68", pushed, dropped)
	}
	for i := 0; i < 32; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = %d,%v, want %d,true (oldest entries must survive overflow)", v, ok, i)
		}
	}
	// After a full drain the ring must accept a full capacity again.
	for i := 0; i < 32; i++ {
		if !r.TryPush(i) {
			t.Fatalf("push %d failed after drain", i)
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.TryPush(i)
		r.Pop()
	}
}

func BenchmarkDrainBurst64(b *testing.B) {
	r := New[int](1024)
	buf := make([]int, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			r.TryPush(j)
		}
		r.Drain(buf)
	}
}

func TestTryPushWakeSemantics(t *testing.T) {
	r := New[int](4)

	// First entry into an empty ring lands on the consumer's cursor:
	// the consumer may be parked, so the producer must signal.
	if pushed, wake := r.TryPushWake(1); !pushed || !wake {
		t.Fatalf("first push: pushed=%v wake=%v, want true/true", pushed, wake)
	}
	// Entries behind a queued one never need a signal: whoever
	// published the entry at the cursor owes the wake.
	if pushed, wake := r.TryPushWake(2); !pushed || wake {
		t.Fatalf("second push: pushed=%v wake=%v, want true/false", pushed, wake)
	}

	buf := make([]int, 8)
	if n := r.Drain(buf); n != 2 {
		t.Fatalf("Drain = %d, want 2", n)
	}
	// The cursor caught up: the next push is wake-worthy again.
	if pushed, wake := r.TryPushWake(3); !pushed || !wake {
		t.Fatalf("post-drain push: pushed=%v wake=%v, want true/true", pushed, wake)
	}

	for i := 0; i < 3; i++ {
		r.TryPushWake(10 + i)
	}
	if pushed, _ := r.TryPushWake(99); pushed {
		t.Fatal("push into full ring succeeded")
	}
}

// TestTryPushWakeNoMissedWakeups drives the production wake protocol
// under race: producers publish with TryPushWake and only signal the
// buffered wake channel when the push reports the consumer may be
// parked; the consumer parks on the channel whenever a drain comes up
// empty. If the protocol could lose a wakeup, the consumer would park
// forever with entries queued and the watchdog below fires.
func TestTryPushWakeNoMissedWakeups(t *testing.T) {
	const producers = 2
	const perProd = 50000
	r := New[int](64)
	wakeCh := make(chan struct{}, 1)

	for p := 0; p < producers; p++ {
		go func() {
			for i := 0; i < perProd; i++ {
				for {
					pushed, wake := r.TryPushWake(i)
					if wake {
						select {
						case wakeCh <- struct{}{}:
						default:
						}
					}
					if pushed {
						break
					}
					runtime.Gosched()
				}
			}
		}()
	}

	buf := make([]int, 32)
	consumed := 0
	watchdog := time.After(30 * time.Second)
	for consumed < producers*perProd {
		n := r.Drain(buf)
		if n == 0 {
			select {
			case <-wakeCh:
			case <-watchdog:
				t.Fatalf("consumer parked with entries pending after %d/%d: missed wakeup", consumed, producers*perProd)
			}
			continue
		}
		consumed += n
	}
}
