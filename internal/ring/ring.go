// Package ring provides the bounded lock-free MPSC ring buffer behind
// the exboxd burst-ingest datapath: the socket read loop publishes
// packet entries from any number of producer goroutines, and exactly
// one worker drains them in bursts.
//
// The design is the classic Vyukov bounded queue: a power-of-two slot
// array where every slot carries a sequence number that encodes, for
// lock-free readers and writers, whether the slot currently holds the
// value for the producer lap or the consumer lap. Producers claim a
// slot with one CAS on the tail and then publish by storing the slot's
// next sequence; the single consumer needs no CAS at all — it owns the
// head and just waits for each slot's sequence to catch up. There is
// no blocking anywhere: a full ring fails the push (the gateway counts
// the drop and moves on, which is the right behavior on a datapath —
// backpressure on a UDP ingest loop is just a slower kind of drop).
package ring

import (
	"math/bits"
	"sync/atomic"
)

// slot pairs a value with its Vyukov sequence number. seq == index
// means "free for the producer whose tail position maps here";
// seq == index+1 means "published, waiting for the consumer";
// after consumption the consumer stores index+capacity so the slot is
// free again for the next lap.
type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPSC is a bounded multi-producer single-consumer queue of T with
// power-of-two capacity. TryPush is safe from any number of
// goroutines; Pop, Drain and the drain side of Depth assume exactly
// one consumer goroutine. The zero value is not usable — construct
// with New.
type MPSC[T any] struct {
	mask  uint64
	slots []slot[T]

	// tail is the producer cursor (next position to claim) and head
	// the consumer cursor (next position to pop). They sit on separate
	// cache lines so producers hammering tail don't invalidate the
	// consumer's head line.
	tail atomic.Uint64
	_    [56]byte
	head atomic.Uint64
	_    [56]byte
}

// New returns a ring with capacity rounded up to the next power of two
// (minimum 2). Capacity is fixed for the ring's lifetime.
func New[T any](capacity int) *MPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	c := 1 << bits.Len(uint(capacity-1)) // next power of two
	r := &MPSC[T]{mask: uint64(c - 1), slots: make([]slot[T], c)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring's (power-of-two) capacity.
func (r *MPSC[T]) Cap() int { return len(r.slots) }

// TryPush publishes v and reports whether it fit. It never blocks: a
// full ring returns false immediately and the caller decides what a
// drop means (exboxd counts it in exbox_ring_drops_total).
func (r *MPSC[T]) TryPush(v T) bool {
	_, ok := r.push(v)
	return ok
}

// TryPushWake publishes v like TryPush and additionally reports
// whether the consumer may be parked waiting for this entry: true
// when, after the publish, the consumer's cursor already points at the
// just-filled slot. Producers pairing the ring with a wake signal can
// skip the signal when it is false — the consumer then has entries
// queued ahead of this one, and whoever published the entry its cursor
// does point at is the one responsible for waking it. (The sequencing
// is safe: the slot's sequence is stored before the head load, both
// are sequentially consistent atomics, so either the consumer's next
// pop sees the publish, or this load sees the consumer's cursor parked
// on the slot and wake comes back true. Spurious trues are possible
// and harmless; false negatives are not possible.)
func (r *MPSC[T]) TryPushWake(v T) (pushed, wake bool) {
	pos, ok := r.push(v)
	if !ok {
		return false, false
	}
	return true, r.head.Load() == pos
}

// push claims a slot, publishes v and returns the claimed position.
func (r *MPSC[T]) push(v T) (uint64, bool) {
	pos := r.tail.Load()
	for {
		s := &r.slots[pos&r.mask]
		seq := s.seq.Load()
		switch d := int64(seq - pos); {
		case d == 0:
			// Slot free for this position: claim it. On CAS failure
			// another producer took pos; reload and retry.
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				return pos, true
			}
			pos = r.tail.Load()
		case d < 0:
			// The consumer hasn't freed this slot from the previous
			// lap: the ring is full.
			return pos, false
		default:
			// Another producer claimed pos but hasn't published yet,
			// or we raced far behind; resync with the tail.
			pos = r.tail.Load()
		}
	}
}

// Pop removes the oldest entry. Single consumer only.
func (r *MPSC[T]) Pop() (v T, ok bool) {
	pos := r.head.Load()
	s := &r.slots[pos&r.mask]
	seq := s.seq.Load()
	if int64(seq-(pos+1)) < 0 {
		// Next slot not published yet: empty (or a producer mid-claim,
		// which for the consumer is the same thing — nothing readable).
		return v, false
	}
	v = s.val
	var zero T
	s.val = zero // drop references so consumed payloads can be GC'd
	s.seq.Store(pos + r.mask + 1)
	r.head.Store(pos + 1)
	return v, true
}

// Drain pops up to len(buf) entries into buf and returns how many it
// moved. This is the burst entry point: one call per wakeup gives the
// worker a batch to process with all per-burst costs amortized. Unlike
// a loop over Pop, the consumer cursor is published once for the whole
// batch — producers never read it for fullness (slot sequences carry
// that), so deferring the store costs nothing but a slightly staler
// Depth, and TryPushWake stays safe because the cursor is always
// published before the consumer can observe an empty ring and park.
// Single consumer only.
func (r *MPSC[T]) Drain(buf []T) int {
	pos := r.head.Load()
	n := 0
	for n < len(buf) {
		s := &r.slots[pos&r.mask]
		if int64(s.seq.Load()-(pos+1)) < 0 {
			break // next slot not published: empty for the consumer
		}
		// Unlike Pop, the slot is not zeroed: a drained slot keeps its
		// value until a producer's next lap overwrites it, so a ring of
		// capacity C retains references to at most C consumed entries.
		// That bounded retention buys back a per-slot clear (and its
		// write barrier) on the hot path; callers queuing entries that
		// pin large payloads should size the ring accordingly or Pop.
		buf[n] = s.val
		s.seq.Store(pos + r.mask + 1)
		pos++
		n++
	}
	if n > 0 {
		r.head.Store(pos)
	}
	return n
}

// Depth returns a point-in-time estimate of the number of queued
// entries. It reads both cursors without synchronizing against
// in-flight operations, so it is only approximate — exactly what a
// telemetry gauge needs and nothing more.
func (r *MPSC[T]) Depth() int {
	d := int64(r.tail.Load() - r.head.Load())
	if d < 0 {
		d = 0
	}
	if max := int64(len(r.slots)); d > max {
		d = max
	}
	return int(d)
}
