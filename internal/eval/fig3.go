package eval

import (
	"fmt"

	"exbox/internal/apps"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
)

// Figure3 regenerates the SNR-impact experiment of Section 2: four
// phones stream video on one WiFi AP while their split between high
// and low SNR positions varies from (4,0) to (0,4). The figure reports
// the mean video startup delay of the high-SNR and of the low-SNR
// group per split, against the 5 s acceptability threshold.
//
// The expected shape is the 802.11 performance anomaly: adding
// low-SNR clients degrades the high-SNR clients too, and the all-low
// split blows far past the threshold ("the video does not even play").
func Figure3(Scale) Figure {
	net := netsim.FluidWiFi{Config: netsim.TestbedWiFi()}
	const clients = 4

	var high, low Series
	high.Name = "startup-delay-s/high-snr"
	low.Name = "startup-delay-s/low-snr"

	for nHigh := clients; nHigh >= 0; nHigh-- {
		nLow := clients - nHigh
		m := excr.NewMatrix(excr.MixedSNRSpace).
			Set(excr.Streaming, excr.SNRHigh, nHigh).
			Set(excr.Streaming, excr.SNRLow, nLow)
		flows := netsim.FlowsForMatrix(m)
		qos := net.Evaluate(flows)
		var hi, lo []float64
		for i, f := range flows {
			d := apps.Measure(excr.Streaming, qos[i], nil).Value
			if f.Level == excr.SNRHigh {
				hi = append(hi, d)
			} else {
				lo = append(lo, d)
			}
		}
		x := float64(nLow) // split index: 0 = (4,0) … 4 = (0,4)
		if len(hi) > 0 {
			high.Points = append(high.Points, Point{X: x, Y: mathx.Mean(hi)})
		}
		if len(lo) > 0 {
			low.Points = append(low.Points, Point{X: x, Y: mathx.Mean(lo)})
		}
	}
	return Figure{
		ID:     "fig3",
		Title:  "Impact of SNR on video streaming QoE (4 clients, splits (4,0)…(0,4))",
		Series: []Series{high, low},
		Notes: []string{
			fmt.Sprintf("x = number of low-SNR clients; QoE threshold = %.0f s startup delay", apps.StartupThresholdSec),
		},
	}
}
