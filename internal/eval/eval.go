// Package eval is the experiment harness: one runner per figure of the
// paper's evaluation (Sections 2, 5 and 6). Each runner regenerates
// the corresponding figure's data series from this repository's
// substrates, so the whole evaluation can be reproduced with
// cmd/exbench or the root benchmarks.
//
// Runners accept a Scale so tests can exercise the full pipeline
// cheaply while benchmarks run at paper scale.
package eval

import (
	"fmt"
	"strings"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/metrics"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks sample counts for tests while preserving every
	// pipeline stage and the qualitative shapes.
	Quick Scale = iota
	// Full runs at the paper's reported sizes.
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// Point is one (x, y) sample of a series.
type Point struct {
	X, Y float64
}

// Series is one labeled line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Last returns the final point of the series; it panics when empty.
func (s Series) Last() Point {
	if len(s.Points) == 0 {
		panic("eval: empty series " + s.Name)
	}
	return s.Points[len(s.Points)-1]
}

// Figure is a regenerated figure: named series plus free-form notes
// (fitted parameters, capacities, etc).
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// Get returns the named series, or false.
func (f Figure) Get(name string) (Series, bool) {
	for _, s := range f.Series {
		if s.Name == name {
			return s, true
		}
	}
	return Series{}, false
}

// MustGet returns the named series and panics if missing.
func (f Figure) MustGet(name string) Series {
	s, ok := f.Get(name)
	if !ok {
		panic(fmt.Sprintf("eval: figure %s has no series %q", f.ID, name))
	}
	return s
}

// Render formats the figure as an aligned text table, one row per x
// value, one column per series — the form cmd/exbench prints and
// EXPERIMENTS.md records.
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	if len(f.Series) == 0 {
		return b.String()
	}
	// Collect x values in order of the first series that has them.
	seen := map[float64]bool{}
	var xs []float64
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	fmt.Fprintf(&b, "%12s", "x")
	for _, s := range f.Series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%12.4g", x)
		for _, s := range f.Series {
			v, ok := seriesAt(s, x)
			if ok {
				fmt.Fprintf(&b, " %22.4f", v)
			} else {
				fmt.Fprintf(&b, " %22s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func seriesAt(s Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// LabeledEvent is one flow arrival with its ground-truth label.
type LabeledEvent struct {
	Arrival excr.Arrival
	Label   float64
}

// replayResult carries per-controller cumulative metrics sampled at
// checkpoints of the online stream.
type replayResult struct {
	name      string
	x         []float64 // samples fed online at each checkpoint
	precision []float64
	recall    []float64
	accuracy  []float64
	perClass  map[excr.AppClass]*metrics.Confusion
}

// replay evaluates controllers on a shared online stream: each event
// is first classified by every controller, then its ground truth is
// fed to them (learners retrain per their batch schedule). Cumulative
// precision/recall/accuracy are recorded every window events.
func replay(events []LabeledEvent, controllers []classifier.Controller, window int) []replayResult {
	if window <= 0 {
		window = 20
	}
	out := make([]replayResult, len(controllers))
	confs := make([]metrics.Confusion, len(controllers))
	for i, c := range controllers {
		out[i] = replayResult{name: c.Name(), perClass: map[excr.AppClass]*metrics.Confusion{}}
	}
	checkpoint := func(n int) {
		for i := range out {
			out[i].x = append(out[i].x, float64(n))
			out[i].precision = append(out[i].precision, confs[i].Precision())
			out[i].recall = append(out[i].recall, confs[i].Recall())
			out[i].accuracy = append(out[i].accuracy, confs[i].Accuracy())
		}
	}
	for n, e := range events {
		for i, c := range controllers {
			d := c.Decide(e.Arrival)
			pred := -1.0
			if d.Admit {
				pred = 1.0
			}
			confs[i].Observe(pred, e.Label)
			pc := out[i].perClass[e.Arrival.Class]
			if pc == nil {
				pc = &metrics.Confusion{}
				out[i].perClass[e.Arrival.Class] = pc
			}
			pc.Observe(pred, e.Label)
			c.Observe(excr.Sample{Arrival: e.Arrival, Label: e.Label})
		}
		if (n+1)%window == 0 {
			checkpoint(n + 1)
		}
	}
	if len(events)%window != 0 {
		checkpoint(len(events))
	}
	return out
}

// seriesFrom converts a replay metric into figure series, one per
// controller, named "<metric>/<controller>".
func seriesFrom(results []replayResult, metric string) []Series {
	var out []Series
	for _, r := range results {
		s := Series{Name: metric + "/" + r.name}
		var ys []float64
		switch metric {
		case "precision":
			ys = r.precision
		case "recall":
			ys = r.recall
		case "accuracy":
			ys = r.accuracy
		default:
			panic("eval: unknown metric " + metric)
		}
		for i, x := range r.x {
			s.Points = append(s.Points, Point{X: x, Y: ys[i]})
		}
		out = append(out, s)
	}
	return out
}
