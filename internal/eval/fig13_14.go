package eval

import (
	"fmt"

	"exbox/internal/baseline"
	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/qoe"
	"exbox/internal/testbed"
	"exbox/internal/traffic"
)

// trainEstimator builds the network-side QoE estimator used by the
// scale-up studies, exactly as the paper does: fit IQX per class on a
// WiFi testbed training sweep, then use it to label simulated traffic.
func trainEstimator(seed int64) *qoe.Estimator {
	tb := testbed.New(testbed.WiFi, seed)
	est, err := qoe.Train(tb, []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}, 3)
	if err != nil {
		panic(fmt.Sprintf("eval: estimator training failed: %v", err))
	}
	return est
}

// simEvents labels a stream of arrivals on a simulated cell with the
// IQX estimator ("as the simulation progresses, we collect QoS
// information and compute QoE using IQX").
func simEvents(est *qoe.Estimator, net netsim.Network, evs []traffic.Event, limit int) []LabeledEvent {
	var out []LabeledEvent
	for _, e := range evs {
		if limit > 0 && len(out) >= limit {
			break
		}
		y, err := est.LabelArrival(net, e.Arrival)
		if err != nil {
			continue
		}
		out = append(out, LabeledEvent{Arrival: e.Arrival, Label: y})
	}
	return out
}

// simCapacity is the RateBased capacity for the simulated cells: the
// effective goodput of the ns-3-like WiFi cell and LTE cell.
func simCapacity(kind netsim.CellKind) float64 {
	if kind == netsim.WiFiCell {
		return 97.5e6 // 150 Mbps PHY × 0.65 MAC efficiency
	}
	return 75e6
}

// Figure13 regenerates the mixed-SNR study (Section 6.3): LiveLab
// traffic on the simulated 802.11n WLAN where every new flow lands in
// a random high/low SNR position; X gains the per-SNR dimensions. The
// classifier bootstraps on 10% of the data and is compared against the
// baselines for batch sizes 100/200/400.
func Figure13(scale Scale) Figure {
	samples := 21000
	batches := []int{100, 200, 400}
	window := 400
	if scale == Quick {
		samples = 1500
		batches = []int{50, 100, 200}
		window = 150
	}
	seed := int64(130)
	est := trainEstimator(seed)
	net := netsim.FluidWiFi{Config: netsim.SimWiFi()}

	// LiveLab traffic, levels assigned uniformly at random.
	cfg := traffic.DefaultLiveLab()
	cfg.Space = excr.DefaultSpace
	var seq []excr.Matrix
	for days := 14; ; days += 28 {
		cfg.Days = days
		seq = traffic.LiveLab(mathx.NewRand(seed+1), cfg)
		if len(traffic.Arrivals(seq, nil)) >= samples || days > 400 {
			break
		}
	}
	// Re-space arrivals into the mixed-SNR universe.
	mixedSeq := make([]excr.Matrix, len(seq))
	for i, m := range seq {
		mm := excr.NewMatrix(excr.MixedSNRSpace)
		for c := 0; c < excr.NumAppClasses; c++ {
			mm = mm.Set(excr.AppClass(c), excr.SNRHigh, m.ClassTotal(excr.AppClass(c)))
		}
		mixedSeq[i] = mm
	}
	levels := traffic.RandomLevels(mathx.NewRand(seed+2), excr.MixedSNRSpace)
	evs := traffic.Arrivals(mixedSeq, levels)
	events := simEvents(est, net, evs, samples)

	nBoot := len(events) / 10
	fig := Figure{
		ID:    "fig13",
		Title: "Mixed-SNR WiFi simulation: precision vs samples fed online",
		Notes: []string{fmt.Sprintf("%d labeled samples, %d used for bootstrap", len(events), nBoot)},
	}
	for _, batch := range batches {
		ccfg := classifier.DefaultConfig()
		ccfg.BatchSize = batch
		ccfg.Seed = seed + 3
		ac := classifier.New(excr.MixedSNRSpace, ccfg)
		for _, e := range events[:nBoot] {
			ac.Observe(excr.Sample{Arrival: e.Arrival, Label: e.Label})
		}
		_ = ac.ForceOnline()
		res := replay(events[nBoot:], []classifier.Controller{ac}, window)
		s := seriesFrom(res, "precision")[0]
		s.Name = fmt.Sprintf("precision/ExBox-b%d", batch)
		fig.Series = append(fig.Series, s)
	}
	res := replay(events[nBoot:], []classifier.Controller{
		baseline.NewRateBased(simCapacity(netsim.WiFiCell)),
		baseline.NewMaxClient(10),
	}, window)
	fig.Series = append(fig.Series, seriesFrom(res, "precision")...)
	return fig
}

// Figure14 regenerates the populous-network study (Section 6.4):
// admission control in simulated cells carrying tens of concurrent
// flows. WiFi uses random traffic matrices restricted to >20
// simultaneous flows; LTE runs the LiveLab trace with no flow-count
// restriction. Labels come from the IQX estimator; the classifier
// bootstraps on 10% of each dataset.
func Figure14(scale Scale) []Figure {
	wifiSamples, lteSamples := 800, 650
	batch, window := 10, 50
	if scale == Quick {
		wifiSamples, lteSamples, window = 500, 400, 50
	}
	seed := int64(140)
	est := trainEstimator(seed)

	var out []Figure

	// WiFi: populous random matrices (total > 20 flows).
	{
		net := netsim.FluidWiFi{Config: netsim.SimWiFi()}
		rng := mathx.NewRand(seed + 1)
		var seq []excr.Matrix
		for len(traffic.Arrivals(seq, nil)) < wifiSamples*2 {
			batchSeq := traffic.Random(rng, 200, 25, 0, excr.DefaultSpace)
			for _, m := range batchSeq {
				if m.Total() > 20 {
					seq = append(seq, m)
				}
			}
		}
		events := simEvents(est, net, traffic.Arrivals(seq, nil), wifiSamples)
		out = append(out, populousFigure("fig14-wifi",
			"Populous WiFi simulation (>20 concurrent flows)", events, batch, window, seed+2, netsim.WiFiCell))
	}

	// LTE: LiveLab without the 8-flow restriction.
	{
		net := netsim.FluidLTE{Config: netsim.SimLTE()}
		cfg := traffic.DefaultLiveLab()
		// The scale-up study covers a populous campus cell; double the
		// user population so busy-hour concurrency reaches the tens of
		// flows the paper simulates.
		cfg.Users = 68
		var seq []excr.Matrix
		for days := 14; ; days += 28 {
			cfg.Days = days
			seq = traffic.LiveLab(mathx.NewRand(seed+3), cfg)
			if len(traffic.Arrivals(seq, nil)) >= lteSamples || days > 200 {
				break
			}
		}
		// Use the trailing window of the trace: LiveLab mornings are
		// nearly idle, and the paper's 650 tuples span busy hours.
		evs := traffic.Arrivals(seq, nil)
		if len(evs) > lteSamples {
			evs = evs[len(evs)-lteSamples:]
		}
		events := simEvents(est, net, evs, lteSamples)
		out = append(out, populousFigure("fig14-lte",
			"Populous LTE simulation (LiveLab, unrestricted)", events, batch, window, seed+4, netsim.LTECell))
	}
	return out
}

func populousFigure(id, title string, events []LabeledEvent, batch, window int, seed int64, kind netsim.CellKind) Figure {
	nBoot := len(events) / 10
	ccfg := classifier.DefaultConfig()
	ccfg.BatchSize = batch
	ccfg.Seed = seed
	space := excr.DefaultSpace
	if len(events) > 0 {
		space = events[0].Arrival.Matrix.Space()
	}
	ac := classifier.New(space, ccfg)
	for _, e := range events[:nBoot] {
		ac.Observe(excr.Sample{Arrival: e.Arrival, Label: e.Label})
	}
	_ = ac.ForceOnline()
	controllers := []classifier.Controller{
		ac,
		baseline.NewRateBased(simCapacity(kind)),
		baseline.NewMaxClient(10),
	}
	res := replay(events[nBoot:], controllers, window)
	fig := comparisonFigure(id, title, res)
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d labeled samples, %d used for bootstrap, batch %d", len(events), nBoot, batch))
	return fig
}
