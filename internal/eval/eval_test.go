package eval

import (
	"strings"
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
)

func TestScaleString(t *testing.T) {
	if Quick.String() != "quick" || Full.String() != "full" {
		t.Fatal("Scale strings wrong")
	}
}

func TestSeriesLastPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Series{Name: "empty"}.Last()
}

func TestFigureGetAndRender(t *testing.T) {
	fig := Figure{
		ID:    "t",
		Title: "test",
		Notes: []string{"a note"},
		Series: []Series{
			{Name: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3}}},
			{Name: "b", Points: []Point{{X: 1, Y: 5}}},
		},
	}
	if _, ok := fig.Get("a"); !ok {
		t.Fatal("Get(a) failed")
	}
	if _, ok := fig.Get("zzz"); ok {
		t.Fatal("Get(zzz) should fail")
	}
	out := fig.Render()
	for _, want := range []string{"== t: test ==", "# a note", "a", "b", "2.0000", "-"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render missing %q:\n%s", want, out)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustGet should panic for missing series")
		}
	}()
	fig.MustGet("zzz")
}

func TestNormalizeQoE(t *testing.T) {
	if NormalizeQoE(excr.Web, 0.5) != 1 || NormalizeQoE(excr.Web, 10) != 0 {
		t.Fatal("web normalization endpoints wrong")
	}
	if NormalizeQoE(excr.Conferencing, 42) != 1 || NormalizeQoE(excr.Conferencing, 15) != 0 {
		t.Fatal("conferencing normalization endpoints wrong")
	}
	if v := NormalizeQoE(excr.Streaming, 8.5); v <= 0 || v >= 1 {
		t.Fatalf("mid streaming normalization = %v", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown class should panic")
		}
	}()
	NormalizeQoE(excr.AppClass(9), 1)
}

func TestFigure2Shapes(t *testing.T) {
	hm := Figure2(Quick)
	if len(hm) != 3 {
		t.Fatalf("want 3 heatmaps, got %d", len(hm))
	}
	stream := hm[0]
	if stream.Render() == "" {
		t.Fatal("empty render")
	}
	// Streaming QoE degrades down the rows (more streams) and across
	// the columns (more conferencing): corner checks.
	last := len(stream.Ys) - 1
	if !(stream.Values[0][0] > 0.8) {
		t.Fatalf("empty-ish cell should have high QoE, got %v", stream.Values[0][0])
	}
	if !(stream.Values[last][0] < 0.2) {
		t.Fatalf("50-streams cell should be bad, got %v", stream.Values[last][0])
	}
	// The paper's asymmetry: conferencing-only capacity exceeds
	// streaming-only capacity. Find the largest count with good QoE
	// along each axis of the overall heatmap.
	overall := hm[2]
	maxStream, maxConf := 0, 0
	for i, y := range overall.Ys {
		if overall.Values[i][0] >= 0.5 {
			maxStream = y
		}
	}
	for j, x := range overall.Xs {
		if overall.Values[0][j] >= 0.5 {
			maxConf = x
		}
	}
	if maxConf <= maxStream {
		t.Fatalf("conferencing capacity (%d) should exceed streaming capacity (%d)", maxConf, maxStream)
	}
	if maxStream < 15 || maxStream > 35 {
		t.Fatalf("streaming capacity = %d, want ≈25 region", maxStream)
	}
	if maxConf < 33 {
		t.Fatalf("conferencing capacity = %d, want ≈40+", maxConf)
	}
}

func TestFigure3Shape(t *testing.T) {
	fig := Figure3(Quick)
	high := fig.MustGet("startup-delay-s/high-snr")
	low := fig.MustGet("startup-delay-s/low-snr")
	// All-high split meets the 5 s threshold.
	if high.Points[0].Y > 5 {
		t.Fatalf("(4,0) split should meet the threshold, got %v", high.Points[0].Y)
	}
	// The anomaly: high-SNR clients degrade as low-SNR clients join.
	for i := 1; i < len(high.Points); i++ {
		if high.Points[i].Y < high.Points[i-1].Y-1e-9 {
			t.Fatal("high-SNR startup delay should not improve with more low-SNR clients")
		}
	}
	// (2,2) split already violates the threshold for everyone.
	if v := high.Points[2].Y; v < 5 {
		t.Fatalf("(2,2) split should violate the threshold, got %v", v)
	}
	// All-low split is catastrophically bad (the video barely plays).
	if last := low.Last().Y; last < 15 {
		t.Fatalf("(0,4) split should be far past the threshold, got %v", last)
	}
}

// checkComparison asserts the qualitative Figures 7/8 claims on one
// comparison figure: ExBox precision and accuracy at the final
// checkpoint within/above the paper's bands and at least on par with
// the baselines' worst case.
func checkComparison(t *testing.T, fig Figure) {
	t.Helper()
	exP := fig.MustGet("precision/ExBox").Last().Y
	exA := fig.MustGet("accuracy/ExBox").Last().Y
	exR := fig.MustGet("recall/ExBox").Last().Y
	mcP := fig.MustGet("precision/MaxClient").Last().Y
	if exP < 0.75 {
		t.Fatalf("%s: ExBox precision %v too low", fig.ID, exP)
	}
	if exA < 0.7 {
		t.Fatalf("%s: ExBox accuracy %v too low", fig.ID, exA)
	}
	if exR < 0.6 {
		t.Fatalf("%s: ExBox recall %v too low", fig.ID, exR)
	}
	if exP+0.05 < mcP && exA < fig.MustGet("accuracy/MaxClient").Last().Y {
		t.Fatalf("%s: ExBox (p=%v) should not lose to MaxClient (p=%v) on both metrics", fig.ID, exP, mcP)
	}
}

func TestFigure7(t *testing.T) {
	figs := Figure7(Quick)
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		checkComparison(t, fig)
	}
	// Random traffic: ExBox must beat MaxClient on accuracy at the end
	// (the paper's headline ordering).
	random := figs[0]
	if random.MustGet("accuracy/ExBox").Last().Y < random.MustGet("accuracy/MaxClient").Last().Y {
		t.Fatal("fig7-random: ExBox accuracy should beat MaxClient")
	}
}

func TestFigure8(t *testing.T) {
	figs := Figure8(Quick)
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		checkComparison(t, fig)
	}
	// LTE improves with samples (paper: "ExBox over LTE adapts faster").
	ex := figs[0].MustGet("precision/ExBox")
	if ex.Last().Y < ex.Points[0].Y-0.05 {
		t.Fatalf("fig8-random: ExBox precision should not degrade: %v -> %v", ex.Points[0].Y, ex.Last().Y)
	}
}

func TestFigure9(t *testing.T) {
	figs := Figure9(Quick)
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		ex := fig.MustGet("accuracy/ExBox")
		if len(ex.Points) != excr.NumAppClasses {
			t.Fatalf("%s: want one point per class, got %d", fig.ID, len(ex.Points))
		}
		for _, p := range ex.Points {
			if p.Y < 0.6 {
				t.Fatalf("%s: per-class accuracy %v too low for class %v", fig.ID, p.Y, p.X)
			}
		}
	}
}

func TestFigure10BatchSensitivity(t *testing.T) {
	figs := Figure10(Quick)
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	for _, fig := range figs {
		for _, b := range []string{"precision/ExBox-b10", "precision/ExBox-b20", "precision/ExBox-b40"} {
			s := fig.MustGet(b)
			if s.Last().Y < 0.75 {
				t.Fatalf("%s: %s final precision %v too low", fig.ID, b, s.Last().Y)
			}
		}
		// Baselines present exactly once.
		if _, ok := fig.Get("precision/RateBased"); !ok {
			t.Fatalf("%s: RateBased series missing", fig.ID)
		}
	}
}

func TestFigure11Adaptation(t *testing.T) {
	figs := Figure11(Quick)
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	// WiFi: precision recovers with online batches (final >= first) and
	// ends above the baselines-or-near, per the paper's Figure 11.
	wifi := figs[0]
	ex := wifi.MustGet("precision/ExBox")
	if ex.Last().Y < ex.Points[0].Y-0.02 {
		t.Fatalf("fig11-wifi: precision did not recover: %v -> %v", ex.Points[0].Y, ex.Last().Y)
	}
	if ex.Last().Y < 0.8 {
		t.Fatalf("fig11-wifi: final precision %v, want >= 0.8", ex.Last().Y)
	}
	mc := wifi.MustGet("precision/MaxClient")
	if ex.Last().Y < mc.Last().Y {
		t.Fatal("fig11-wifi: adapted ExBox should beat MaxClient")
	}
}

func TestFigure12Fits(t *testing.T) {
	fig := Figure12(Quick)
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 fitted curves, got %d", len(fig.Series))
	}
	if len(fig.Notes) != 3 {
		t.Fatalf("want 3 fit notes, got %d: %v", len(fig.Notes), fig.Notes)
	}
	web := fig.MustGet("iqx-fit/web")
	conf := fig.MustGet("iqx-fit/conferencing")
	// Directions: web PLT falls with QoS; PSNR rises.
	if !(web.Points[0].Y > web.Last().Y) {
		t.Fatal("web fit should decrease with QoS")
	}
	if !(conf.Points[0].Y < conf.Last().Y) {
		t.Fatal("conferencing fit should increase with QoS")
	}
	for _, n := range fig.Notes {
		if strings.Contains(n, "fit failed") {
			t.Fatalf("fit failed: %s", n)
		}
	}
}

func TestFigure13MixedSNR(t *testing.T) {
	fig := Figure13(Quick)
	// The paper's claims: ExBox precision ≥ 0.8 with larger batches
	// pushing toward 0.95; RateBased materially lower.
	small := fig.MustGet("precision/ExBox-b50")
	rate := fig.MustGet("precision/RateBased")
	if small.Last().Y < 0.85 {
		t.Fatalf("ExBox-b50 final precision %v, want >= 0.85", small.Last().Y)
	}
	if rate.Last().Y > small.Last().Y-0.05 {
		t.Fatalf("RateBased (%v) should trail ExBox (%v) clearly under SNR diversity",
			rate.Last().Y, small.Last().Y)
	}
}

func TestFigure14Populous(t *testing.T) {
	figs := Figure14(Quick)
	if len(figs) != 2 {
		t.Fatalf("want 2 figures, got %d", len(figs))
	}
	wifi, lte := figs[0], figs[1]
	if p := wifi.MustGet("precision/ExBox").Last().Y; p < 0.85 {
		t.Fatalf("fig14-wifi: ExBox precision %v, want ≈0.9", p)
	}
	if r := wifi.MustGet("recall/ExBox").Last().Y; r < 0.7 {
		t.Fatalf("fig14-wifi: ExBox recall %v too low", r)
	}
	// MaxClient=10 collapses in populous networks (the paper's point
	// about count-based admission control).
	if a := wifi.MustGet("accuracy/MaxClient").Last().Y; a > 0.7 {
		t.Fatalf("fig14-wifi: MaxClient accuracy %v unexpectedly high", a)
	}
	// LTE: ExBox climbs to ≈0.9+ precision; RateBased trails badly
	// because it ignores the per-UE capacity cost.
	exP := lte.MustGet("precision/ExBox").Last().Y
	rbP := lte.MustGet("precision/RateBased").Last().Y
	if exP < 0.85 {
		t.Fatalf("fig14-lte: ExBox precision %v, want >= 0.85", exP)
	}
	if rbP > exP-0.1 {
		t.Fatalf("fig14-lte: RateBased (%v) should trail ExBox (%v)", rbP, exP)
	}
}

// alwaysAdmit is a trivial controller for replay plumbing tests.
type alwaysAdmit struct{}

func (alwaysAdmit) Decide(excr.Arrival) classifier.Decision {
	return classifier.Decision{Admit: true}
}
func (alwaysAdmit) Observe(excr.Sample) {}
func (alwaysAdmit) Name() string        { return "always-admit" }

func TestReplayWindowing(t *testing.T) {
	// replay checkpoints every window and once more at the tail.
	var events []LabeledEvent
	m := excr.NewMatrix(excr.DefaultSpace)
	for i := 0; i < 25; i++ {
		label := 1.0
		if i%5 == 0 {
			label = -1
		}
		events = append(events, LabeledEvent{
			Arrival: excr.Arrival{Matrix: m, Class: excr.Web},
			Label:   label,
		})
	}
	res := replay(events, []classifier.Controller{alwaysAdmit{}}, 10)
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}
	r := res[0]
	if len(r.x) != 3 || r.x[0] != 10 || r.x[1] != 20 || r.x[2] != 25 {
		t.Fatalf("checkpoints = %v, want [10 20 25]", r.x)
	}
	// Always-admit: precision = fraction of positives, recall = 1.
	if r.recall[2] != 1 {
		t.Fatalf("recall = %v, want 1", r.recall[2])
	}
	if r.precision[2] != 20.0/25.0 {
		t.Fatalf("precision = %v, want 0.8", r.precision[2])
	}
	if r.perClass[excr.Web] == nil || r.perClass[excr.Web].Total() != 25 {
		t.Fatal("per-class confusion not accumulated")
	}
}
