package eval

import (
	"fmt"

	"exbox/internal/apps"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
)

// Heatmap is a regenerated heatmap figure: Values[i][j] is the cell
// for Ys[i] (rows) and Xs[j] (columns).
type Heatmap struct {
	ID, Title      string
	XLabel, YLabel string
	Xs, Ys         []int
	Values         [][]float64
}

// Render formats the heatmap as a text grid.
func (h Heatmap) Render() string {
	s := fmt.Sprintf("== %s: %s ==\n# rows: %s, cols: %s\n", h.ID, h.Title, h.YLabel, h.XLabel)
	s += fmt.Sprintf("%6s", "")
	for _, x := range h.Xs {
		s += fmt.Sprintf(" %5d", x)
	}
	s += "\n"
	for i, y := range h.Ys {
		s += fmt.Sprintf("%6d", y)
		for j := range h.Xs {
			s += fmt.Sprintf(" %5.2f", h.Values[i][j])
		}
		s += "\n"
	}
	return s
}

// NormalizeQoE maps a raw class QoE value into [0, 1] (1 = excellent),
// the normalization Figure 2 applies so different class metrics can be
// averaged.
func NormalizeQoE(class excr.AppClass, value float64) float64 {
	switch class {
	case excr.Web:
		return mathx.Clamp((10-value)/(10-0.5), 0, 1)
	case excr.Streaming:
		return mathx.Clamp((15-value)/(15-2), 0, 1)
	case excr.Conferencing:
		return mathx.Clamp((value-15)/(42-15), 0, 1)
	default:
		panic(fmt.Sprintf("eval: no normalization for %v", class))
	}
}

// Figure2 regenerates the Section 2 motivation heatmaps: median
// streaming QoE, median conferencing QoE, and overall network QoE as
// the numbers of streaming and conferencing flows vary on the
// simulated WiFi cell.
func Figure2(scale Scale) []Heatmap {
	step := 5
	if scale == Full {
		step = 2
	}
	const max = 50
	var counts []int
	for v := 0; v <= max; v += step {
		counts = append(counts, v)
	}
	net := netsim.FluidWiFi{Config: netsim.SimWiFi()}

	grid := func(f func(stream, conf int) float64) [][]float64 {
		vals := make([][]float64, len(counts))
		for i, s := range counts {
			vals[i] = make([]float64, len(counts))
			for j, c := range counts {
				vals[i][j] = f(s, c)
			}
		}
		return vals
	}

	evalCell := func(stream, conf int) (streamQoE, confQoE []float64) {
		m := excr.NewMatrix(excr.DefaultSpace).
			Set(excr.Streaming, 0, stream).Set(excr.Conferencing, 0, conf)
		flows := netsim.FlowsForMatrix(m)
		qos := net.Evaluate(flows)
		for i, f := range flows {
			q := apps.Measure(f.Class, qos[i], nil)
			n := NormalizeQoE(f.Class, q.Value)
			if f.Class == excr.Streaming {
				streamQoE = append(streamQoE, n)
			} else {
				confQoE = append(confQoE, n)
			}
		}
		return streamQoE, confQoE
	}

	streaming := grid(func(s, c int) float64 {
		sq, _ := evalCell(s, c)
		if len(sq) == 0 {
			return 1
		}
		return mathx.Median(sq)
	})
	conferencing := grid(func(s, c int) float64 {
		_, cq := evalCell(s, c)
		if len(cq) == 0 {
			return 1
		}
		return mathx.Median(cq)
	})
	overall := grid(func(s, c int) float64 {
		sq, cq := evalCell(s, c)
		all := append(sq, cq...)
		if len(all) == 0 {
			return 1
		}
		return mathx.Median(all)
	})

	mk := func(id, title string, vals [][]float64) Heatmap {
		return Heatmap{
			ID: id, Title: title,
			XLabel: "# video conferencing flows", YLabel: "# streaming flows",
			Xs: counts, Ys: counts, Values: vals,
		}
	}
	return []Heatmap{
		mk("fig2a", "Median QoE for streaming flows", streaming),
		mk("fig2b", "Median QoE for video conferencing flows", conferencing),
		mk("fig2c", "Average QoE of the network", overall),
	}
}
