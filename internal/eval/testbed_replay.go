package eval

import (
	"fmt"

	"exbox/internal/baseline"
	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/testbed"
	"exbox/internal/traffic"
)

// Scheme selects a traffic workload.
type Scheme int

const (
	// RandomScheme is the paper's fully random traffic-matrix pattern.
	RandomScheme Scheme = iota
	// LiveLabScheme is the LiveLab-derived realistic pattern.
	LiveLabScheme
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	if s == RandomScheme {
		return "random"
	}
	return "livelab"
}

// testbedCapacity returns the RateBased capacity C for each testbed —
// the maximum UDP throughput the paper measured (20 Mbps WiFi hotspot,
// >30 Mbps LTE small cell).
func testbedCapacity(kind testbed.Kind) float64 {
	if kind == testbed.WiFi {
		return 20e6
	}
	return 32e6
}

// testbedEvents derives a labeled arrival stream for one testbed and
// scheme. Arrivals whose post-admission matrix exceeds the hardware
// client limit are skipped, exactly as the paper restricted its traces.
func testbedEvents(tb *testbed.Testbed, scheme Scheme, nMatrices int, seed int64) []LabeledEvent {
	rng := mathx.NewRand(seed)
	var seq []excr.Matrix
	switch scheme {
	case RandomScheme:
		seq = traffic.Random(rng, nMatrices, tb.MaxClients, tb.MaxClients, excr.DefaultSpace)
	case LiveLabScheme:
		cfg := traffic.DefaultLiveLab()
		cfg.MaxTotal = tb.MaxClients
		// LiveLab change-points carry ~0.5 arrivals each; scale the
		// horizon until the derived event count suffices.
		for days := 14; ; days += 28 {
			cfg.Days = days
			seq = traffic.LiveLab(mathx.NewRand(seed), cfg)
			if len(traffic.Arrivals(seq, nil)) >= nMatrices || days > 400 {
				break
			}
		}
	default:
		panic("eval: unknown scheme")
	}
	var out []LabeledEvent
	for _, e := range traffic.Arrivals(seq, nil) {
		y, err := tb.Label(e.Arrival)
		if err != nil {
			continue // over the client limit
		}
		out = append(out, LabeledEvent{Arrival: e.Arrival, Label: y})
	}
	return out
}

// bootstrapThenOnline feeds events into a fresh Admittance Classifier
// until it graduates (or maxBootstrap events pass, after which it is
// forced online), returning the classifier and the remaining online
// stream.
func bootstrapThenOnline(cfg classifier.Config, events []LabeledEvent, maxBootstrap int) (*classifier.AdmittanceClassifier, []LabeledEvent) {
	space := excr.DefaultSpace
	if len(events) > 0 {
		space = events[0].Arrival.Matrix.Space()
	}
	ac := classifier.New(space, cfg)
	used := 0
	for used < len(events) && ac.Bootstrapping() && used < maxBootstrap {
		e := events[used]
		ac.Observe(excr.Sample{Arrival: e.Arrival, Label: e.Label})
		used++
	}
	if ac.Bootstrapping() {
		// The paper's bootstrap always terminates because admission
		// control cannot start otherwise; mirror that determinism.
		_ = ac.ForceOnline()
	}
	return ac, events[used:]
}

// ReplayConfig parameterizes a testbed comparison run (Figures 7, 8,
// 9, 10).
type ReplayConfig struct {
	Kind      testbed.Kind
	Scheme    Scheme
	BatchSize int
	Online    int // online samples to evaluate
	Window    int // checkpoint spacing
	Seed      int64
}

// runTestbedComparison executes one ExBox-vs-baselines replay and
// returns the per-controller results plus the events replayed.
func runTestbedComparison(cfg ReplayConfig) ([]replayResult, []LabeledEvent) {
	tb := testbed.New(cfg.Kind, cfg.Seed)
	// A matrix yields ~tb.MaxClients/2 arrivals on average; generate
	// enough, then trim after bootstrap.
	need := cfg.Online + 400
	events := testbedEvents(tb, cfg.Scheme, need/3+100, cfg.Seed+1)

	ccfg := classifier.DefaultConfig()
	ccfg.BatchSize = cfg.BatchSize
	ccfg.Seed = cfg.Seed + 2
	ac, online := bootstrapThenOnline(ccfg, events, 120)
	if len(online) > cfg.Online {
		online = online[:cfg.Online]
	}

	controllers := []classifier.Controller{
		ac,
		baseline.NewRateBased(testbedCapacity(cfg.Kind)),
		baseline.NewMaxClient(10),
	}
	return replay(online, controllers, cfg.Window), online
}

// comparisonFigure renders a testbed comparison as the paper's
// three-panel (precision/recall/accuracy vs samples) figure.
func comparisonFigure(id, title string, results []replayResult) Figure {
	fig := Figure{ID: id, Title: title}
	for _, metric := range []string{"precision", "accuracy", "recall"} {
		fig.Series = append(fig.Series, seriesFrom(results, metric)...)
	}
	return fig
}

// Figure7 regenerates the WiFi-testbed comparison (precision, accuracy
// and recall vs samples fed online, Random and LiveLab traffic;
// batch 20).
func Figure7(scale Scale) []Figure {
	online, window := 240, 20
	if scale == Quick {
		online, window = 120, 20
	}
	var out []Figure
	for _, scheme := range []Scheme{RandomScheme, LiveLabScheme} {
		res, _ := runTestbedComparison(ReplayConfig{
			Kind: testbed.WiFi, Scheme: scheme, BatchSize: 20,
			Online: online, Window: window, Seed: 70 + int64(scheme),
		})
		fig := comparisonFigure(
			fmt.Sprintf("fig7-%s", scheme),
			fmt.Sprintf("WiFi testbed, %s traffic: ExBox vs RateBased vs MaxClient", scheme),
			res)
		out = append(out, fig)
	}
	return out
}

// Figure8 regenerates the LTE-testbed comparison (batch 10, up to 90
// samples fed online).
func Figure8(scale Scale) []Figure {
	online, window := 90, 10
	if scale == Quick {
		online, window = 60, 10
	}
	var out []Figure
	for _, scheme := range []Scheme{RandomScheme, LiveLabScheme} {
		res, _ := runTestbedComparison(ReplayConfig{
			Kind: testbed.LTE, Scheme: scheme, BatchSize: 10,
			Online: online, Window: window, Seed: 80 + int64(scheme),
		})
		fig := comparisonFigure(
			fmt.Sprintf("fig8-%s", scheme),
			fmt.Sprintf("LTE testbed, %s traffic: ExBox vs RateBased vs MaxClient", scheme),
			res)
		out = append(out, fig)
	}
	return out
}

// Figure9 regenerates the per-application accuracy comparison (Random
// traffic on both testbeds). The x axis is the application class index
// (0 = web, 1 = streaming, 2 = conferencing).
func Figure9(scale Scale) []Figure {
	online := 240
	if scale == Quick {
		online = 120
	}
	var out []Figure
	for _, kind := range []testbed.Kind{testbed.WiFi, testbed.LTE} {
		batch := 20
		if kind == testbed.LTE {
			batch = 10
		}
		res, _ := runTestbedComparison(ReplayConfig{
			Kind: kind, Scheme: RandomScheme, BatchSize: batch,
			Online: online, Window: 20, Seed: 90 + int64(kind),
		})
		fig := Figure{
			ID:    fmt.Sprintf("fig9-%s", kind),
			Title: fmt.Sprintf("Per-application accuracy on the %s (Random traffic)", kind),
			Notes: []string{"x = application class: 0 web, 1 streaming, 2 conferencing"},
		}
		for _, r := range res {
			s := Series{Name: "accuracy/" + r.name}
			for c := 0; c < excr.NumAppClasses; c++ {
				pc := r.perClass[excr.AppClass(c)]
				if pc == nil {
					continue
				}
				s.Points = append(s.Points, Point{X: float64(c), Y: pc.Accuracy()})
			}
			fig.Series = append(fig.Series, s)
		}
		out = append(out, fig)
	}
	return out
}

// Figure10 regenerates the batch-size sensitivity study: ExBox with
// batches 10/20/40 against the (batch-insensitive) baselines on both
// testbeds, Random traffic.
func Figure10(scale Scale) []Figure {
	online := 300
	if scale == Quick {
		online = 120
	}
	var out []Figure
	for _, kind := range []testbed.Kind{testbed.WiFi, testbed.LTE} {
		if kind == testbed.LTE {
			online = online / 2
		}
		fig := Figure{
			ID:    fmt.Sprintf("fig10-%s", kind),
			Title: fmt.Sprintf("Sensitivity to batch size on the %s (Random traffic)", kind),
		}
		for _, batch := range []int{10, 20, 40} {
			res, _ := runTestbedComparison(ReplayConfig{
				Kind: kind, Scheme: RandomScheme, BatchSize: batch,
				Online: online, Window: 20, Seed: 100 + int64(kind),
			})
			// res[0] is ExBox; baselines are identical across batches.
			ex := seriesFrom(res[:1], "precision")[0]
			ex.Name = fmt.Sprintf("precision/ExBox-b%d", batch)
			fig.Series = append(fig.Series, ex)
			if batch == 10 {
				fig.Series = append(fig.Series, seriesFrom(res[1:], "precision")...)
			}
		}
		out = append(out, fig)
	}
	return out
}
