package eval

import (
	"fmt"

	"exbox/internal/baseline"
	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/iqx"
	"exbox/internal/mathx"
	"exbox/internal/testbed"
)

// Figure11 regenerates the network-change adaptation experiment: the
// Admittance Classifier bootstraps on 10% of data from the clean
// network, then every subsequent arrival is labeled by a traffic-
// shaped network with 200 ms of added latency. Precision starts poor
// and recovers as online batches retrain the model.
func Figure11(scale Scale) []Figure {
	var out []Figure
	for _, kind := range []testbed.Kind{testbed.WiFi, testbed.LTE} {
		online, window, batch := 225, 25, 20
		if kind == testbed.LTE {
			online, window, batch = 120, 20, 10
		}
		if scale == Quick {
			online /= 2
		}
		seed := 110 + int64(kind)
		tb := testbed.New(kind, seed)

		// Clean-network stream for bootstrap (the "10% data points").
		cleanEvents := testbedEvents(tb, RandomScheme, 80, seed+1)
		nBoot := len(cleanEvents) / 10
		if nBoot < 25 {
			nBoot = 25
		}
		ccfg := classifier.DefaultConfig()
		ccfg.BatchSize = batch
		ccfg.Seed = seed + 2
		ac := classifier.New(excr.DefaultSpace, ccfg)
		for _, e := range cleanEvents[:nBoot] {
			ac.Observe(excr.Sample{Arrival: e.Arrival, Label: e.Label})
		}
		_ = ac.ForceOnline()

		// Throttle the path: 200 ms added latency, as in the paper.
		tb.Throttle(0, 200, 0)
		shaped := testbedEvents(tb, RandomScheme, online, seed+3)
		if len(shaped) > online {
			shaped = shaped[:online]
		}
		controllers := []classifier.Controller{
			ac,
			baseline.NewRateBased(testbedCapacity(kind)),
			baseline.NewMaxClient(10),
		}
		res := replay(shaped, controllers, window)
		fig := comparisonFigure(
			fmt.Sprintf("fig11-%s", kind),
			fmt.Sprintf("Adaptation to network change on the %s (bootstrap clean, then +200 ms latency)", kind),
			res)
		out = append(out, fig)
	}
	return out
}

// Figure12 regenerates the IQX fitting study: for each application
// class, a single training device sweeps shaped rate/latency profiles;
// the (QoS, QoE) pairs are fit with the IQX hypothesis. The figure's
// series are the fitted curves over the observed QoS range; the notes
// record the fitted parameters and RMSE (the paper reports 1.37 s web,
// 3.64 s streaming, 4.462 dB conferencing).
func Figure12(scale Scale) Figure {
	runs := 10
	if scale == Quick {
		runs = 3
	}
	tb := testbed.New(testbed.WiFi, 120)
	fig := Figure{ID: "fig12", Title: "Fitting the IQX equation for web, streaming and conferencing"}
	for _, class := range []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing} {
		pts := tb.TrainingSweep(class, testbed.DefaultSweepRates(), testbed.DefaultSweepDelays(), runs)
		qos := make([]float64, len(pts))
		qoeVals := make([]float64, len(pts))
		for i, p := range pts {
			qos[i] = p.QoS
			qoeVals[i] = p.QoE
		}
		res, err := iqx.Fit(qos, qoeVals)
		if err != nil {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%v: fit failed: %v", class, err))
			continue
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("%v: %v, RMSE %.3f (n=%d)", class, res.Model, res.RMSE, len(pts)))
		// Fitted curve over the normalized QoS range.
		lo, hi := mathx.Min(qos), mathx.Max(qos)
		s := Series{Name: "iqx-fit/" + class.String()}
		for _, t := range mathx.Linspace(0, 1, 11) {
			q := lo + t*(hi-lo)
			s.Points = append(s.Points, Point{X: t, Y: res.Model.Eval(q)})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
