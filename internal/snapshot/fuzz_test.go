package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzDecode is the decoder's hostile-input harness: whatever bytes
// arrive — torn writes, bit rot, version skew, adversarial lengths —
// Decode must return an error or a state, never panic and never
// over-allocate past the input size. When a mutated input does decode
// (the fuzzer can fix up the CRC), the state must re-encode and
// re-decode to the same payload, pinning the codec's determinism.
func FuzzDecode(f *testing.F) {
	// Seed corpus: a hand-built minimal valid snapshot (bootstrap state,
	// no model, no warm seed) plus envelope mutations of it.
	minimal := encodeMinimal()
	f.Add([]byte{})
	f.Add([]byte("EXSN"))
	f.Add(minimal)
	short := append([]byte(nil), minimal[:len(minimal)-3]...)
	f.Add(short)
	junk := append(append([]byte(nil), minimal...), 0xDE, 0xAD)
	f.Add(junk)
	skew := append([]byte(nil), minimal...)
	binary.LittleEndian.PutUint16(skew[4:], Version+7)
	f.Add(skew)

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(ps)
		ps2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted snapshot does not decode: %v", err)
		}
		if !bytes.Equal(re, Encode(ps2)) {
			t.Fatal("codec is not deterministic across a round trip")
		}
	})
}

// encodeMinimal builds the smallest interesting valid snapshot without
// going through a trained classifier: a 3x1 bootstrap state with one
// sample.
func encodeMinimal() []byte {
	var w writer
	w.u64(0)      // fitSeq
	w.bool(true)  // bootstrap
	w.f64(0)      // calibration
	w.u64(1)      // observed
	w.u64(1)      // sinceTrain
	w.u64(1)      // sinceCV
	w.f64(0)      // lastCVScore
	w.u32(3)      // classes
	w.u32(1)      // levels
	w.u32(1)      // one sample
	w.u32(2)      // counts[0]
	w.u32(0)      // counts[1]
	w.u32(1)      // counts[2]
	w.u32(0)      // class
	w.u32(0)      // level
	w.f64(1)      // label
	w.bool(false) // no model
	w.bool(false) // no warm seed

	payload := w.buf
	out := make([]byte, headerLen+len(payload)+trailerLen)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], Version)
	binary.LittleEndian.PutUint64(out[6:], uint64(len(payload)))
	copy(out[headerLen:], payload)
	binary.LittleEndian.PutUint32(out[headerLen+len(payload):], crc32.Checksum(payload, crcTable))
	return out
}
