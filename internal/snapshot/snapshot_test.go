package snapshot

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/traffic"

	"exbox/internal/apps"
	"exbox/internal/netsim"
)

// trainedState builds a real classifier state to push through the
// codec: train on the simulated WiFi cell, export.
func trainedState(t *testing.T, warm, rff bool) *classifier.PersistState {
	t.Helper()
	cfg := classifier.DefaultConfig()
	cfg.WarmStart = warm
	cfg.SVM.RFF = rff
	if rff {
		cfg.SVM.RFFDim = 64
	}
	ac := classifier.New(excr.DefaultSpace, cfg)
	o := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(31)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 40, 20, 0, excr.DefaultSpace), nil) {
		ac.Observe(excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
	}
	if ac.Bootstrapping() {
		t.Fatal("classifier did not graduate")
	}
	ps, err := ac.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name      string
		warm, rff bool
	}{
		{"cold", false, false},
		{"warm", true, false},
		{"warm+rff", true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ps := trainedState(t, tc.warm, tc.rff)
			got, err := Decode(Encode(ps))
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(ps, got) {
				t.Fatal("state diverged through the codec")
			}
			// And the decoded state must actually import — the codec's
			// output feeds classifier.ImportState in production.
			dst := classifier.New(excr.DefaultSpace, classifier.DefaultConfig())
			if tc.warm {
				cfg := classifier.DefaultConfig()
				cfg.WarmStart = true
				dst = classifier.New(excr.DefaultSpace, cfg)
			}
			if err := dst.ImportState(got); err != nil {
				t.Fatalf("ImportState of decoded snapshot: %v", err)
			}
		})
	}
}

// TestDecodedDecisionsBitEqual: encode, decode, import into a fresh
// classifier, and compare decisions bit-for-bit with the source — the
// full disk-shaped round trip, not just struct equality.
func TestDecodedDecisionsBitEqual(t *testing.T) {
	cfg := classifier.DefaultConfig()
	cfg.WarmStart = true
	src := classifier.New(excr.DefaultSpace, cfg)
	o := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(32)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 40, 20, 0, excr.DefaultSpace), nil) {
		src.Observe(excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)})
	}
	ps, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(Encode(ps))
	if err != nil {
		t.Fatal(err)
	}
	dst := classifier.New(excr.DefaultSpace, cfg)
	if err := dst.ImportState(got); err != nil {
		t.Fatal(err)
	}
	probes := traffic.Arrivals(traffic.Random(mathx.NewRand(33), 25, 20, 0, excr.DefaultSpace), nil)
	for _, e := range probes {
		da, db := src.Decide(e.Arrival), dst.Decide(e.Arrival)
		if da.Admit != db.Admit ||
			math.Float64bits(da.Margin) != math.Float64bits(db.Margin) ||
			math.Float64bits(da.Depth) != math.Float64bits(db.Depth) {
			t.Fatalf("decoded decision diverged: %+v != %+v", da, db)
		}
	}
}

func TestDecodeRejectsEnvelopeDefects(t *testing.T) {
	valid := Encode(trainedState(t, true, false))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"short", func(b []byte) []byte { return b[:10] }},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], Version+1)
			return b
		}},
		{"zero version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:], 0)
			return b
		}},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-20] }},
		{"trailing junk", func(b []byte) []byte { return append(b, 0xAA, 0xBB) }},
		{"length lies", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[6:], 1<<40)
			return b
		}},
		{"crc mismatch", func(b []byte) []byte { b[len(b)-1] ^= 0xFF; return b }},
		{"payload flip", func(b []byte) []byte { b[headerLen+3] ^= 0x01; return b }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), valid...))
			if _, err := Decode(b); err == nil {
				t.Fatal("defective envelope was accepted")
			}
		})
	}
	if _, err := Decode(valid); err != nil {
		t.Fatalf("pristine envelope rejected: %v", err)
	}
}

// TestDecodeTruncationSweep chops the envelope at every length; none
// may decode successfully (the CRC covers the full payload) and none
// may panic.
func TestDecodeTruncationSweep(t *testing.T) {
	valid := Encode(trainedState(t, true, false))
	for n := 0; n < len(valid); n++ {
		if _, err := Decode(valid[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(valid))
		}
	}
}

// TestDecodeCorruptionSweep flips one byte at a time across the whole
// envelope. Every flip must either error out or — only when the flip
// lands in ignored bound positions — produce a state; it must never
// panic. (A single-byte flip in the payload is always caught by the
// CRC; flips in the header are caught by magic/version/length checks;
// a flip in the CRC itself mismatches the payload.)
func TestDecodeCorruptionSweep(t *testing.T) {
	valid := Encode(trainedState(t, false, false))
	for i := 0; i < len(valid); i++ {
		for _, bit := range []byte{0x01, 0x80} {
			b := append([]byte(nil), valid...)
			b[i] ^= bit
			if _, err := Decode(b); err == nil {
				t.Fatalf("byte %d flipped by %#x decoded cleanly", i, bit)
			}
		}
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cell.snap")
	first := Encode(trainedState(t, false, false))
	if err := Save(path, first); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, first) {
		t.Fatal("loaded bytes differ from saved")
	}
	// Overwrite in place: the rename replaces the old file whole.
	second := Encode(trainedState(t, true, false))
	if err := Save(path, second); err != nil {
		t.Fatalf("Save overwrite: %v", err)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, second) {
		t.Fatal("overwrite did not replace the file")
	}
	// No temp litter left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot dir holds %d entries, want 1", len(entries))
	}
}

func TestSaveFailsIntoMissingDir(t *testing.T) {
	err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.snap"), []byte("data"))
	if err == nil {
		t.Fatal("Save into a missing directory succeeded")
	}
}
