// Package snapshot is the versioned binary codec and atomic file
// persistence for ExBox's per-cell inference state: the classifier's
// PersistState — published model, training window, phase counters,
// warm-start seed — flattened to a checksummed byte envelope that a
// restarted (or remote, see ROADMAP item 1) middlebox can restore
// with bit-identical decisions.
//
// Envelope layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "EXSN"
//	4       2     format version (currently 2)
//	6       8     payload length
//	14      n     payload (version-specific field stream)
//	14+n    4     CRC-32C (Castagnoli) over the payload
//
// Decode is strict by design: wrong magic, unknown version, a payload
// length that disagrees with the buffer (truncation or trailing
// junk), a checksum mismatch, or any field that runs past the buffer
// all return an error — never a panic — so a torn write or a
// version-skewed file degrades to a cold start. Structural invariants
// of the decoded state (slab strides, scaler lengths, finite values)
// are enforced one layer up by svm.ModelFromState and
// classifier.ImportState, which the decoded struct must pass before
// any of it reaches a decision path.
//
// Save writes atomically: temp file in the destination directory,
// fsync, rename. Readers therefore always see either the previous
// complete snapshot or the new one, never a torn file.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/learner"
	"exbox/internal/svm"
)

// Version is the current snapshot format version. Decode rejects
// anything else; bumping it is how incompatible layout changes stay
// restart-safe (an old daemon refuses a new file and cold-starts).
// v2 appended Config.QuantizeSVs to the model field stream.
const Version = 2

// magic identifies a snapshot file.
var magic = [4]byte{'E', 'X', 'S', 'N'}

// headerLen is magic + version + payload length; trailerLen the CRC.
const (
	headerLen  = 4 + 2 + 8
	trailerLen = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxSpaceSide bounds the decoded traffic-matrix space per axis — far
// above any real deployment, low enough that a corrupt header cannot
// demand a gigantic allocation before the per-field bounds checks run.
const maxSpaceSide = 1 << 16

// Encode flattens the state into a self-validating snapshot envelope.
func Encode(ps *classifier.PersistState) []byte {
	var w writer
	w.u64(ps.FitSeq)
	w.bool(ps.Bootstrap)
	w.f64(ps.Calibration)
	w.u64(uint64(ps.Observed))
	w.u64(uint64(ps.SinceTrain))
	w.u64(uint64(ps.SinceCV))
	w.f64(ps.LastCVScore)
	w.u32(uint32(ps.Space.Classes))
	w.u32(uint32(ps.Space.Levels))
	w.u32(uint32(len(ps.Samples)))
	for _, s := range ps.Samples {
		for _, c := range s.Arrival.Matrix.Counts() {
			w.u32(uint32(c))
		}
		w.u32(uint32(s.Arrival.Class))
		w.u32(uint32(s.Arrival.Level))
		w.f64(s.Label)
	}
	if m := ps.Model; m != nil {
		w.bool(true)
		w.u32(uint32(m.Config.Kernel))
		w.f64(m.Config.C)
		w.f64(m.Config.Gamma)
		w.f64(m.Config.Tol)
		w.f64(m.Config.Eps)
		w.u64(uint64(m.Config.MaxPasses))
		w.u64(uint64(m.Config.MaxIter))
		w.u64(uint64(m.Config.CacheRows))
		w.bool(m.Config.RFF)
		w.u64(uint64(m.Config.RFFDim))
		w.f64(m.Config.PruneTol)
		w.bool(m.Config.QuantizeSVs)
		w.f64(m.Gamma)
		w.u32(uint32(m.Dim))
		w.f64s(m.ScalerMean)
		w.f64s(m.ScalerStd)
		w.f64s(m.SVCoef)
		w.f64(m.B)
		w.f64s(m.WLinear)
		w.f64s(m.WFold)
		w.f64(m.BFold)
		w.f64s(m.SVSlab)
		w.f64s(m.SVNorm)
		if r := m.RFF; r != nil {
			w.bool(true)
			w.u32(uint32(r.NumFreq))
			w.u32(uint32(r.Dim))
			w.f64s(r.WProj)
			w.f64s(r.Phase)
			w.f64s(r.WCos)
			w.f64s(r.WSin)
			w.f64s(r.WLin)
			w.f64(r.Bias)
		} else {
			w.bool(false)
		}
	} else {
		w.bool(false)
	}
	if ws := ps.Warm; ws != nil {
		w.bool(true)
		w.f64s(ws.Warm.Alpha)
		w.f64(ws.Warm.B)
		w.f64s(ws.Warm.ScalerMean)
		w.f64s(ws.Warm.ScalerStd)
		w.u64(uint64(ws.Warm.N))
		w.u64(uint64(ws.Warm.Age))
		w.u32(uint32(len(ws.Keys)))
		for _, k := range ws.Keys {
			w.str(k)
		}
		w.f64s(ws.Labels)
	} else {
		w.bool(false)
	}

	payload := w.buf
	out := make([]byte, headerLen+len(payload)+trailerLen)
	copy(out, magic[:])
	binary.LittleEndian.PutUint16(out[4:], Version)
	binary.LittleEndian.PutUint64(out[6:], uint64(len(payload)))
	copy(out[headerLen:], payload)
	binary.LittleEndian.PutUint32(out[headerLen+len(payload):], crc32.Checksum(payload, crcTable))
	return out
}

// Decode parses a snapshot envelope back into a PersistState. Any
// structural defect — bad magic, unknown version, truncation, trailing
// bytes, checksum mismatch, a field running past the buffer — returns
// an error; Decode never panics on hostile input. The result still
// must pass classifier.ImportState before serving decisions.
func Decode(data []byte) (*classifier.PersistState, error) {
	if len(data) < headerLen+trailerLen {
		return nil, fmt.Errorf("snapshot: %d bytes, shorter than the envelope", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, errors.New("snapshot: bad magic")
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, fmt.Errorf("snapshot: format version %d, this build reads %d", v, Version)
	}
	plen := binary.LittleEndian.Uint64(data[6:])
	if plen != uint64(len(data)-headerLen-trailerLen) {
		return nil, fmt.Errorf("snapshot: payload length %d disagrees with %d-byte file (truncated or trailing bytes)",
			plen, len(data))
	}
	payload := data[headerLen : len(data)-trailerLen]
	want := binary.LittleEndian.Uint32(data[len(data)-trailerLen:])
	if got := crc32.Checksum(payload, crcTable); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch (%08x != %08x)", got, want)
	}

	r := &reader{buf: payload}
	ps := &classifier.PersistState{
		FitSeq:      r.u64(),
		Bootstrap:   r.bool(),
		Calibration: r.f64(),
		Observed:    r.count(),
		SinceTrain:  r.count(),
		SinceCV:     r.count(),
		LastCVScore: r.f64(),
	}
	classes := int(r.u32())
	levels := int(r.u32())
	if r.err == nil && (classes < 1 || classes > maxSpaceSide || levels < 1 || levels > maxSpaceSide) {
		return nil, fmt.Errorf("snapshot: implausible space %dx%d", classes, levels)
	}
	if r.err != nil {
		return nil, r.err
	}
	ps.Space = excr.Space{Classes: classes, Levels: levels}
	dim := classes * levels
	nsamples := r.len(4*dim + 4 + 4 + 8) // counts + class + level + label per sample
	if r.err != nil {
		return nil, r.err
	}
	ps.Samples = make([]excr.Sample, 0, nsamples)
	counts := make([]int, dim)
	for i := 0; i < nsamples; i++ {
		for j := range counts {
			counts[j] = int(r.u32())
		}
		class := excr.AppClass(r.u32())
		level := excr.SNRLevel(r.u32())
		label := r.f64()
		if r.err != nil {
			return nil, r.err
		}
		ps.Samples = append(ps.Samples, excr.Sample{
			Arrival: excr.Arrival{Matrix: excr.MatrixFromCounts(ps.Space, counts), Class: class, Level: level},
			Label:   label,
		})
	}
	if r.bool() { // model present
		m := &svm.ModelState{}
		m.Config.Kernel = svm.KernelKind(r.u32())
		m.Config.C = r.f64()
		m.Config.Gamma = r.f64()
		m.Config.Tol = r.f64()
		m.Config.Eps = r.f64()
		m.Config.MaxPasses = r.count()
		m.Config.MaxIter = r.count()
		m.Config.CacheRows = r.count()
		m.Config.RFF = r.bool()
		m.Config.RFFDim = r.count()
		m.Config.PruneTol = r.f64()
		m.Config.QuantizeSVs = r.bool()
		m.Gamma = r.f64()
		m.Dim = int(r.u32())
		m.ScalerMean = r.f64s()
		m.ScalerStd = r.f64s()
		m.SVCoef = r.f64s()
		m.B = r.f64()
		m.WLinear = r.f64s()
		m.WFold = r.f64s()
		m.BFold = r.f64()
		m.SVSlab = r.f64s()
		m.SVNorm = r.f64s()
		if r.bool() { // rff present
			rf := &svm.RFFState{}
			rf.NumFreq = int(r.u32())
			rf.Dim = int(r.u32())
			rf.WProj = r.f64s()
			rf.Phase = r.f64s()
			rf.WCos = r.f64s()
			rf.WSin = r.f64s()
			rf.WLin = r.f64s()
			rf.Bias = r.f64()
			m.RFF = rf
		}
		ps.Model = m
	}
	if r.bool() { // warm seed present
		ws := &learner.WarmSVMState{}
		ws.Warm.Alpha = r.f64s()
		ws.Warm.B = r.f64()
		ws.Warm.ScalerMean = r.f64s()
		ws.Warm.ScalerStd = r.f64s()
		ws.Warm.N = r.count()
		ws.Warm.Age = r.count()
		nkeys := r.len(4) // each key is at least a length prefix
		if r.err != nil {
			return nil, r.err
		}
		ws.Keys = make([]string, 0, nkeys)
		for i := 0; i < nkeys; i++ {
			ws.Keys = append(ws.Keys, r.str())
			if r.err != nil {
				return nil, r.err
			}
		}
		ws.Labels = r.f64s()
		ps.Warm = ws
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("snapshot: %d undecoded trailing payload bytes", len(r.buf)-r.off)
	}
	return ps, nil
}

// Save writes data to path atomically: a temp file in the same
// directory is written, fsynced, and renamed over the destination, so
// a crash mid-write can never leave a torn snapshot behind.
func Save(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	// Persist the rename itself; best-effort — some filesystems refuse
	// directory fsync, and the data file is already durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads a snapshot file; the caller Decodes it.
func Load(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// writer accumulates the little-endian payload stream.
type writer struct{ buf []byte }

func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}
func (w *writer) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}
func (w *writer) f64s(s []float64) {
	w.u32(uint32(len(s)))
	for _, v := range s {
		w.f64(v)
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// reader walks the payload with sticky-error bounds checking: the
// first out-of-bounds read latches err and every later read returns a
// zero value, so decode control flow stays linear and panic-free.
type reader struct {
	buf []byte
	off int
	err error
}

var errTruncated = errors.New("snapshot: payload truncated mid-field")

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || len(r.buf)-r.off < n {
		if r.err == nil {
			r.err = errTruncated
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		r.err = errors.New("snapshot: corrupt boolean")
		return false
	}
	return b[0] == 1
}

// count decodes a non-negative integer counter written as u64,
// rejecting values that don't fit a signed int.
func (r *reader) count() int {
	v := r.u64()
	if r.err == nil && v > math.MaxInt64/2 {
		r.err = errors.New("snapshot: counter out of range")
		return 0
	}
	return int(v)
}

// len decodes a collection length and verifies the remaining payload
// can actually hold that many elements of elemSize bytes, so a corrupt
// length can never demand an allocation bigger than the input itself.
func (r *reader) len(elemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n*elemSize < 0 || n*elemSize > len(r.buf)-r.off {
		r.err = errTruncated
		return 0
	}
	return n
}

func (r *reader) f64s() []float64 {
	n := r.len(8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) str() string {
	n := r.len(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
