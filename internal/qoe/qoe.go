// Package qoe implements ExBox's QoE Estimator (Section 3.2): the
// network-side component that estimates each application's quality of
// experience from passive QoS measurements using per-class IQX models,
// and thresholds the estimates into the ±1 labels the Admittance
// Classifier trains on.
//
// The estimator is trained once per application class from a single
// instrumented training device (the testbed's TrainingSweep); after
// that, no client cooperation is needed — exactly the deployment story
// the paper argues for in BYOD enterprise networks.
package qoe

import (
	"fmt"

	"exbox/internal/apps"
	"exbox/internal/excr"
	"exbox/internal/iqx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
	"exbox/internal/testbed"
)

// Threshold is a per-class acceptability rule on the QoE metric.
type Threshold struct {
	// Value is the boundary in class units (seconds or dB).
	Value float64
	// LowerIsBetter is true for delay-like metrics (page load time,
	// startup delay) and false for PSNR-like metrics.
	LowerIsBetter bool
}

// Acceptable applies the rule.
func (t Threshold) Acceptable(v float64) bool {
	if t.LowerIsBetter {
		return v <= t.Value
	}
	return v >= t.Value
}

// DefaultThresholds returns the class thresholds used across the
// paper's evaluation (3 s PLT, 5 s startup, 30 dB PSNR).
func DefaultThresholds() map[excr.AppClass]Threshold {
	return map[excr.AppClass]Threshold{
		excr.Web:          {Value: apps.WebPLTThresholdSec, LowerIsBetter: true},
		excr.Streaming:    {Value: apps.StartupThresholdSec, LowerIsBetter: true},
		excr.Conferencing: {Value: apps.PSNRThresholdDB, LowerIsBetter: false},
	}
}

// ClassModel bundles one class's fitted IQX model with its fit quality
// and threshold.
type ClassModel struct {
	Model     iqx.Model
	RMSE      float64
	Threshold Threshold
}

// Estimator maps passive QoS measurements to per-class QoE estimates
// and admissibility labels.
type Estimator struct {
	models map[excr.AppClass]ClassModel
}

// NewEstimator returns an estimator with the given per-class models.
func NewEstimator(models map[excr.AppClass]ClassModel) *Estimator {
	return &Estimator{models: models}
}

// Train builds an estimator by running the Figure 12 methodology on a
// testbed: for each class, a single training client sweeps the shaped
// rate/latency grid, and IQX is fit to the collected (QoS, QoE) pairs.
func Train(tb *testbed.Testbed, classes []excr.AppClass, runs int) (*Estimator, error) {
	models := make(map[excr.AppClass]ClassModel, len(classes))
	thresholds := DefaultThresholds()
	for _, class := range classes {
		pts := tb.TrainingSweep(class, testbed.DefaultSweepRates(), testbed.DefaultSweepDelays(), runs)
		qos := make([]float64, len(pts))
		qoeVals := make([]float64, len(pts))
		for i, p := range pts {
			qos[i] = p.QoS
			qoeVals[i] = p.QoE
		}
		res, err := iqx.Fit(qos, qoeVals)
		if err != nil {
			return nil, fmt.Errorf("qoe: fitting %v: %w", class, err)
		}
		th, ok := thresholds[class]
		if !ok {
			return nil, fmt.Errorf("qoe: no threshold for class %v", class)
		}
		models[class] = ClassModel{Model: res.Model, RMSE: res.RMSE, Threshold: th}
	}
	return &Estimator{models: models}, nil
}

// Classes returns the classes the estimator has models for.
func (e *Estimator) Classes() []excr.AppClass {
	out := make([]excr.AppClass, 0, len(e.models))
	for c := excr.AppClass(0); int(c) < excr.NumAppClasses+8; c++ {
		if _, ok := e.models[c]; ok {
			out = append(out, c)
		}
	}
	return out
}

// Model returns the class model, and whether it exists.
func (e *Estimator) Model(c excr.AppClass) (ClassModel, bool) {
	m, ok := e.models[c]
	return m, ok
}

// Estimate returns the estimated QoE (class units) for a flow of the
// class experiencing the given QoS.
func (e *Estimator) Estimate(c excr.AppClass, q metrics.QoS) (float64, error) {
	m, ok := e.models[c]
	if !ok {
		return 0, fmt.Errorf("qoe: no model for class %v", c)
	}
	return m.Model.Eval(q.Scalar()), nil
}

// LabelFlow thresholds the estimate into ±1.
func (e *Estimator) LabelFlow(c excr.AppClass, q metrics.QoS) (float64, error) {
	m, ok := e.models[c]
	if !ok {
		return 0, fmt.Errorf("qoe: no model for class %v", c)
	}
	if m.Threshold.Acceptable(m.Model.Eval(q.Scalar())) {
		return 1, nil
	}
	return -1, nil
}

// LabelMatrix runs a traffic matrix on the network and labels it from
// the network side: +1 when the estimated QoE of every active flow is
// acceptable. This is how the scale-up simulations compute Y_m —
// "as the simulation progresses, we collect QoS information and
// compute QoE using IQX".
func (e *Estimator) LabelMatrix(net netsim.Network, m excr.Matrix) (float64, error) {
	flows := netsim.FlowsForMatrix(m)
	qos := net.Evaluate(flows)
	for i, f := range flows {
		y, err := e.LabelFlow(f.Class, qos[i])
		if err != nil {
			return 0, err
		}
		if y < 0 {
			return -1, nil
		}
	}
	return 1, nil
}

// LabelArrival labels an arrival from the network side: the label of
// the post-admission matrix.
func (e *Estimator) LabelArrival(net netsim.Network, a excr.Arrival) (float64, error) {
	return e.LabelMatrix(net, a.After())
}
