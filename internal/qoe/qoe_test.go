package qoe

import (
	"testing"

	"exbox/internal/apps"
	"exbox/internal/excr"
	"exbox/internal/iqx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
	"exbox/internal/testbed"
)

func allClasses() []excr.AppClass {
	return []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}
}

func trainedEstimator(t *testing.T) *Estimator {
	t.Helper()
	tb := testbed.New(testbed.WiFi, 42)
	e, err := Train(tb, allClasses(), 3)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestThreshold(t *testing.T) {
	lower := Threshold{Value: 3, LowerIsBetter: true}
	if !lower.Acceptable(2.5) || lower.Acceptable(3.5) {
		t.Fatal("lower-is-better threshold wrong")
	}
	higher := Threshold{Value: 30}
	if !higher.Acceptable(35) || higher.Acceptable(25) {
		t.Fatal("higher-is-better threshold wrong")
	}
}

func TestDefaultThresholdsCoverClasses(t *testing.T) {
	th := DefaultThresholds()
	for _, c := range allClasses() {
		if _, ok := th[c]; !ok {
			t.Fatalf("missing threshold for %v", c)
		}
	}
}

func TestTrainProducesSaneModels(t *testing.T) {
	e := trainedEstimator(t)
	if got := len(e.Classes()); got != 3 {
		t.Fatalf("Classes = %d, want 3", got)
	}
	for _, c := range allClasses() {
		m, ok := e.Model(c)
		if !ok {
			t.Fatalf("no model for %v", c)
		}
		if m.RMSE <= 0 {
			t.Fatalf("%v RMSE = %v", c, m.RMSE)
		}
		// Direction must match the app metric.
		if c == excr.Conferencing && m.Model.Decreasing() {
			t.Fatal("conferencing model should increase with QoS")
		}
		if c != excr.Conferencing && !m.Model.Decreasing() {
			t.Fatalf("%v model should decrease with QoS", c)
		}
	}
}

func TestEstimateTracksGroundTruth(t *testing.T) {
	e := trainedEstimator(t)
	// Good and bad QoS: estimated labels must match the ground truth
	// thresholds' verdicts.
	good := metrics.QoS{ThroughputBps: 10e6, DelayMs: 20}
	bad := metrics.QoS{ThroughputBps: 0.15e6, DelayMs: 280, LossRate: 0.02}
	for _, c := range allClasses() {
		yGood, err := e.LabelFlow(c, good)
		if err != nil {
			t.Fatal(err)
		}
		if yGood != 1 {
			est, _ := e.Estimate(c, good)
			t.Fatalf("%v: good QoS labeled %v (estimate %v)", c, yGood, est)
		}
		yBad, err := e.LabelFlow(c, bad)
		if err != nil {
			t.Fatal(err)
		}
		if yBad != -1 {
			est, _ := e.Estimate(c, bad)
			t.Fatalf("%v: bad QoS labeled %v (estimate %v)", c, yBad, est)
		}
	}
}

func TestLabelAgreementWithOracle(t *testing.T) {
	// The network-side estimator should agree with device-side ground
	// truth on a large majority of random matrices — this is the crux
	// of the IQX substitution.
	e := trainedEstimator(t)
	net := netsim.FluidWiFi{Config: netsim.SimWiFi()}
	oracle := apps.Oracle{Net: net}
	agree, total := 0, 0
	for web := 0; web <= 24; web += 6 {
		for stream := 0; stream <= 24; stream += 6 {
			for conf := 0; conf <= 24; conf += 6 {
				m := excr.NewMatrix(excr.DefaultSpace).
					Set(excr.Web, 0, web).Set(excr.Streaming, 0, stream).Set(excr.Conferencing, 0, conf)
				if m.Total() == 0 {
					continue
				}
				est, err := e.LabelMatrix(net, m)
				if err != nil {
					t.Fatal(err)
				}
				truth := 1.0
				if !oracle.Achievable(m) {
					truth = -1
				}
				if est == truth {
					agree++
				}
				total++
			}
		}
	}
	frac := float64(agree) / float64(total)
	if frac < 0.85 {
		t.Fatalf("estimator agrees with ground truth on %.2f of matrices, want >= 0.85", frac)
	}
}

func TestUnknownClassErrors(t *testing.T) {
	e := NewEstimator(map[excr.AppClass]ClassModel{})
	if _, err := e.Estimate(excr.Web, metrics.QoS{}); err == nil {
		t.Fatal("expected error for missing model")
	}
	if _, err := e.LabelFlow(excr.Web, metrics.QoS{}); err == nil {
		t.Fatal("expected error for missing model")
	}
	net := netsim.FluidWiFi{Config: netsim.SimWiFi()}
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 1)
	if _, err := e.LabelMatrix(net, m); err == nil {
		t.Fatal("expected error for missing model in LabelMatrix")
	}
}

func TestLabelArrival(t *testing.T) {
	e := trainedEstimator(t)
	net := netsim.FluidWiFi{Config: netsim.SimWiFi()}
	light := excr.Arrival{Matrix: excr.NewMatrix(excr.DefaultSpace), Class: excr.Web}
	y, err := e.LabelArrival(net, light)
	if err != nil || y != 1 {
		t.Fatalf("light arrival: y=%v err=%v", y, err)
	}
	heavy := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 40),
		Class:  excr.Streaming,
	}
	y, err = e.LabelArrival(net, heavy)
	if err != nil || y != -1 {
		t.Fatalf("heavy arrival: y=%v err=%v", y, err)
	}
}

func TestNewEstimatorRoundTrip(t *testing.T) {
	m := map[excr.AppClass]ClassModel{
		excr.Web: {
			Model:     iqx.Model{Alpha: 1, Beta: 10, Gamma: 2},
			Threshold: Threshold{Value: 3, LowerIsBetter: true},
		},
	}
	e := NewEstimator(m)
	got, ok := e.Model(excr.Web)
	if !ok || got.Model.Alpha != 1 {
		t.Fatal("Model round trip failed")
	}
	// High QoS → estimate near alpha (1s) → acceptable.
	y, err := e.LabelFlow(excr.Web, metrics.QoS{ThroughputBps: 50e6, DelayMs: 10})
	if err != nil || y != 1 {
		t.Fatalf("y=%v err=%v", y, err)
	}
}
