package flowclass

import (
	"testing"

	"exbox/internal/excr"
	"exbox/internal/flows"
	"exbox/internal/mathx"
	"exbox/internal/traffic"
)

func allClasses() []excr.AppClass {
	return []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}
}

func TestFeaturesValidation(t *testing.T) {
	if _, err := Features(nil); err == nil {
		t.Fatal("expected error for empty head")
	}
	if _, err := Features([]flows.PacketMeta{{Time: 1, Bytes: 10}}); err == nil {
		t.Fatal("expected error for single packet")
	}
	f, err := Features([]flows.PacketMeta{
		{Time: 1, Bytes: 300, Up: true},
		{Time: 1.1, Bytes: 1400},
		{Time: 1.15, Bytes: 1400},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != NumFeatures {
		t.Fatalf("feature dim = %d, want %d", len(f), NumFeatures)
	}
	// Up fraction = 1/3, down share near 0.9.
	if f[0] < 0.3 || f[0] > 0.35 {
		t.Fatalf("up fraction = %v", f[0])
	}
	if f[6] < 0.85 || f[6] > 0.95 {
		t.Fatalf("down share = %v", f[6])
	}
}

func TestFeaturesAllUp(t *testing.T) {
	// No downlink packets must not divide by zero.
	f, err := Features([]flows.PacketMeta{
		{Time: 1, Bytes: 100, Up: true},
		{Time: 2, Bytes: 100, Up: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f[1] != 0 || f[2] != 0 || f[6] != 0 {
		t.Fatalf("downlink features should be zero: %v", f)
	}
}

func TestTrainAndClassifyAccuracy(t *testing.T) {
	rng := mathx.NewRand(1)
	c, err := Train(allClasses(), 60, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Held-out flows.
	correct, total := 0, 0
	eval := mathx.NewRand(2)
	for _, class := range allClasses() {
		for i := 0; i < 40; i++ {
			tr := traffic.Synthesize(class, 12, eval)
			head := headFromTrace(tr, 10)
			got, conf, err := c.ClassifyFlow(&flows.Flow{Head: head})
			if err != nil {
				t.Fatal(err)
			}
			if conf <= 0 || conf > 1+1e-9 {
				t.Fatalf("posterior out of range: %v", conf)
			}
			if got == class {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Fatalf("classification accuracy = %v, want >= 0.9", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	rng := mathx.NewRand(3)
	if _, err := Train(nil, 10, 10, rng); err == nil {
		t.Fatal("expected error for no classes")
	}
	if _, err := Train(allClasses(), 1, 10, rng); err == nil {
		t.Fatal("expected error for too few flows")
	}
}

func TestClassifyValidation(t *testing.T) {
	rng := mathx.NewRand(4)
	c, err := Train(allClasses(), 20, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Classify([]float64{1, 2}); err == nil {
		t.Fatal("expected error for wrong feature dim")
	}
	if _, _, err := c.ClassifyFlow(&flows.Flow{}); err == nil {
		t.Fatal("expected error for empty flow head")
	}
}

func TestPortHint(t *testing.T) {
	if c, ok := PortHint(443); !ok || c != excr.Web {
		t.Fatal("443 should hint web")
	}
	if c, ok := PortHint(19302); !ok || c != excr.Conferencing {
		t.Fatal("19302 should hint conferencing")
	}
	if c, ok := PortHint(1935); !ok || c != excr.Streaming {
		t.Fatal("1935 should hint streaming")
	}
	if _, ok := PortHint(22); ok {
		t.Fatal("22 should not be recognized")
	}
}

func TestTrainingDeterministic(t *testing.T) {
	a, err := Train(allClasses(), 30, 10, mathx.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(allClasses(), 30, 10, mathx.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	probe, _ := Features(headFromTrace(traffic.Synthesize(excr.Web, 12, mathx.NewRand(6)), 10))
	ca, pa, _ := a.Classify(probe)
	cb, pb, _ := b.Classify(probe)
	if ca != cb || pa != pb {
		t.Fatal("same seed should give same classifier")
	}
}
