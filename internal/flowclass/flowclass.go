// Package flowclass classifies flows into application classes from
// their first few packets — the traffic-classification substrate the
// paper assumes (it cites a long line of prior work and notes such
// classifiers achieve "modest accuracy" even on encrypted traffic).
//
// The classifier is a Gaussian naive Bayes over payload-free features
// of the flow head (packet sizes, directions, interarrival times),
// trained on synthetic per-class traces from internal/traffic. A
// port-based hint is available as a fallback for well-known services.
package flowclass

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"exbox/internal/excr"
	"exbox/internal/flows"
	"exbox/internal/traffic"
)

// NumFeatures is the dimensionality of the feature vector extracted
// from a flow head.
const NumFeatures = 7

// Features summarizes the first packets of a flow into a fixed-size
// vector: up-packet fraction, mean/max downlink size, mean uplink
// size, mean and coefficient-of-variation of interarrival gaps, and
// downlink byte share.
func Features(head []flows.PacketMeta) ([]float64, error) {
	if len(head) < 2 {
		return nil, errors.New("flowclass: need at least 2 packets")
	}
	var upCount, downBytes, upBytes, downMax float64
	var downCount float64
	for _, p := range head {
		if p.Up {
			upCount++
			upBytes += float64(p.Bytes)
		} else {
			downCount++
			downBytes += float64(p.Bytes)
			if float64(p.Bytes) > downMax {
				downMax = float64(p.Bytes)
			}
		}
	}
	gaps := make([]float64, 0, len(head)-1)
	var gapSum float64
	for i := 1; i < len(head); i++ {
		g := head[i].Time - head[i-1].Time
		if g < 0 {
			g = 0
		}
		gaps = append(gaps, g)
		gapSum += g
	}
	gapMean := gapSum / float64(len(gaps))
	var gapVar float64
	for _, g := range gaps {
		d := g - gapMean
		gapVar += d * d
	}
	gapVar /= float64(len(gaps))
	gapCV := 0.0
	if gapMean > 1e-9 {
		gapCV = math.Sqrt(gapVar) / gapMean
	}
	meanDown := 0.0
	if downCount > 0 {
		meanDown = downBytes / downCount
	}
	meanUp := 0.0
	if upCount > 0 {
		meanUp = upBytes / upCount
	}
	total := downBytes + upBytes
	downShare := 0.0
	if total > 0 {
		downShare = downBytes / total
	}
	return []float64{
		upCount / float64(len(head)),
		meanDown,
		downMax,
		meanUp,
		gapMean,
		gapCV,
		downShare,
	}, nil
}

// Classifier is a Gaussian naive Bayes model over head features.
type Classifier struct {
	classes []excr.AppClass
	mean    [][]float64
	vari    [][]float64
	prior   []float64
}

// Train fits the classifier from nPerClass synthetic flows of each
// class, using heads of headCap packets.
func Train(classes []excr.AppClass, nPerClass, headCap int, rng *rand.Rand) (*Classifier, error) {
	if len(classes) == 0 {
		return nil, errors.New("flowclass: no classes")
	}
	if nPerClass < 2 {
		return nil, errors.New("flowclass: need at least 2 flows per class")
	}
	if headCap < 2 {
		headCap = 10
	}
	c := &Classifier{
		classes: append([]excr.AppClass(nil), classes...),
		mean:    make([][]float64, len(classes)),
		vari:    make([][]float64, len(classes)),
		prior:   make([]float64, len(classes)),
	}
	for ci, class := range classes {
		var rows [][]float64
		for i := 0; i < nPerClass; i++ {
			tr := traffic.Synthesize(class, 12, rng)
			head := headFromTrace(tr, headCap)
			f, err := Features(head)
			if err != nil {
				continue
			}
			rows = append(rows, f)
		}
		if len(rows) < 2 {
			return nil, fmt.Errorf("flowclass: class %v produced too few usable flows", class)
		}
		c.mean[ci] = make([]float64, NumFeatures)
		c.vari[ci] = make([]float64, NumFeatures)
		for _, r := range rows {
			for j, v := range r {
				c.mean[ci][j] += v
			}
		}
		for j := range c.mean[ci] {
			c.mean[ci][j] /= float64(len(rows))
		}
		for _, r := range rows {
			for j, v := range r {
				d := v - c.mean[ci][j]
				c.vari[ci][j] += d * d
			}
		}
		for j := range c.vari[ci] {
			c.vari[ci][j] /= float64(len(rows))
			// Variance floor keeps the likelihood finite for features
			// that are near-constant within a class.
			if c.vari[ci][j] < 1e-6 {
				c.vari[ci][j] = 1e-6
			}
		}
		c.prior[ci] = 1 / float64(len(classes))
	}
	return c, nil
}

// headFromTrace converts the first packets of a synthetic trace into
// flow-table packet metadata.
func headFromTrace(tr traffic.Trace, headCap int) []flows.PacketMeta {
	n := headCap
	if n > len(tr.Packets) {
		n = len(tr.Packets)
	}
	head := make([]flows.PacketMeta, n)
	for i := 0; i < n; i++ {
		p := tr.Packets[i]
		head[i] = flows.PacketMeta{Time: p.TimeSec, Bytes: p.Bytes, Up: p.Up}
	}
	return head
}

// Classify returns the most likely class for the feature vector and
// the posterior probability of that class.
func (c *Classifier) Classify(features []float64) (excr.AppClass, float64, error) {
	if len(features) != NumFeatures {
		return 0, 0, fmt.Errorf("flowclass: got %d features, want %d", len(features), NumFeatures)
	}
	logp := make([]float64, len(c.classes))
	for ci := range c.classes {
		lp := math.Log(c.prior[ci])
		for j, v := range features {
			m, s2 := c.mean[ci][j], c.vari[ci][j]
			lp += -0.5*math.Log(2*math.Pi*s2) - (v-m)*(v-m)/(2*s2)
		}
		logp[ci] = lp
	}
	best := 0
	for ci := range logp {
		if logp[ci] > logp[best] {
			best = ci
		}
	}
	// Posterior via log-sum-exp.
	var denom float64
	for _, lp := range logp {
		denom += math.Exp(lp - logp[best])
	}
	return c.classes[best], 1 / denom, nil
}

// ClassifyFlow extracts features from the flow's head and classifies
// it.
func (c *Classifier) ClassifyFlow(f *flows.Flow) (excr.AppClass, float64, error) {
	feats, err := Features(f.Head)
	if err != nil {
		return 0, 0, err
	}
	return c.Classify(feats)
}

// PortHint returns a class guess from the server port for well-known
// services, and whether the port is recognized. Real deployments use
// it to shortcut classification for unambiguous services.
func PortHint(dstPort uint16) (excr.AppClass, bool) {
	switch dstPort {
	case 80, 443, 8080:
		return excr.Web, true
	case 1935, 8443: // RTMP, streaming CDN alt
		return excr.Streaming, true
	case 3478, 19302, 19305: // STUN/TURN, Google Meet/Hangouts media
		return excr.Conferencing, true
	default:
		return 0, false
	}
}
