package apps

import (
	"testing"
	"testing/quick"

	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
)

func goodQoS() metrics.QoS {
	return metrics.QoS{ThroughputBps: 10e6, DelayMs: 20, LossRate: 0}
}

func badQoS() metrics.QoS {
	return metrics.QoS{ThroughputBps: 0.2e6, DelayMs: 600, LossRate: 0.1}
}

func TestMeasureGoodAndBad(t *testing.T) {
	for _, class := range []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing} {
		good := Measure(class, goodQoS(), nil)
		if !good.Acceptable() {
			t.Fatalf("%v: good QoS should be acceptable, got %v", class, good)
		}
		bad := Measure(class, badQoS(), nil)
		if bad.Acceptable() {
			t.Fatalf("%v: bad QoS should be unacceptable, got %v", class, bad)
		}
	}
}

func TestMeasureUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown class")
		}
	}()
	Measure(excr.AppClass(9), goodQoS(), nil)
}

func TestQoEString(t *testing.T) {
	if Measure(excr.Web, goodQoS(), nil).String() == "" {
		t.Fatal("String empty")
	}
	if Measure(excr.Conferencing, goodQoS(), nil).String() == "" {
		t.Fatal("String empty")
	}
}

func TestThresholdDirections(t *testing.T) {
	// Web/Streaming: lower is better. Conferencing: higher is better.
	if !(QoE{Class: excr.Web, Value: 2.9}).Acceptable() || (QoE{Class: excr.Web, Value: 3.1}).Acceptable() {
		t.Fatal("web threshold direction wrong")
	}
	if !(QoE{Class: excr.Streaming, Value: 4.9}).Acceptable() || (QoE{Class: excr.Streaming, Value: 5.1}).Acceptable() {
		t.Fatal("streaming threshold direction wrong")
	}
	if !(QoE{Class: excr.Conferencing, Value: 31}).Acceptable() || (QoE{Class: excr.Conferencing, Value: 29}).Acceptable() {
		t.Fatal("conferencing threshold direction wrong")
	}
}

// Property: every class's QoE degrades monotonically as QoS worsens
// along each axis.
func TestQuickMonotoneDegradation(t *testing.T) {
	rng := mathx.NewRand(31)
	worse := func(q metrics.QoS, axis int) metrics.QoS {
		switch axis {
		case 0:
			q.ThroughputBps *= 0.5
		case 1:
			q.DelayMs += 100
		default:
			q.LossRate = mathx.Clamp(q.LossRate+0.05, 0, 1)
		}
		return q
	}
	f := func() bool {
		q := metrics.QoS{
			ThroughputBps: 0.3e6 + rng.Float64()*15e6,
			DelayMs:       5 + rng.Float64()*400,
			LossRate:      rng.Float64() * 0.2,
		}
		axis := rng.Intn(3)
		for _, class := range []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing} {
			before := Measure(class, q, nil).Value
			after := Measure(class, worse(q, axis), nil).Value
			switch class {
			case excr.Conferencing:
				if after > before+1e-9 {
					return false
				}
			default:
				if after < before-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseIsBoundedAndDeterministic(t *testing.T) {
	rng1 := mathx.NewRand(5)
	rng2 := mathx.NewRand(5)
	for i := 0; i < 100; i++ {
		a := Measure(excr.Web, goodQoS(), rng1)
		b := Measure(excr.Web, goodQoS(), rng2)
		if a != b {
			t.Fatal("same seed should give same noisy measurement")
		}
		base := Measure(excr.Web, goodQoS(), nil).Value
		if a.Value < base*0.84 || a.Value > base*1.16 {
			t.Fatalf("noise out of bounds: %v vs base %v", a.Value, base)
		}
	}
}

func TestPSNRClamped(t *testing.T) {
	q := Measure(excr.Conferencing, metrics.QoS{ThroughputBps: 0, DelayMs: 2000, LossRate: 1}, nil)
	if q.Value < confMinPSNR-1e-9 {
		t.Fatalf("PSNR below floor: %v", q.Value)
	}
	q = Measure(excr.Conferencing, metrics.QoS{ThroughputBps: 100e6, DelayMs: 1, LossRate: 0}, nil)
	if q.Value > confMaxPSNR+1e-9 {
		t.Fatalf("PSNR above ceiling: %v", q.Value)
	}
}

func TestOracleLightVsOverload(t *testing.T) {
	o := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	light := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 3)
	if !o.Achievable(light) {
		t.Fatal("3 streaming flows should be achievable on the sim cell")
	}
	heavy := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 45)
	if o.Achievable(heavy) {
		t.Fatal("45 streaming flows should not be achievable")
	}
	// Labels follow achievability of the post-admission matrix.
	almost := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 2)
	if o.Label(excr.Arrival{Matrix: almost, Class: excr.Streaming, Level: 0}) != 1 {
		t.Fatal("admitting a 3rd streaming flow should be labeled +1")
	}
	full := excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 44)
	if o.Label(excr.Arrival{Matrix: full, Class: excr.Streaming, Level: 0}) != -1 {
		t.Fatal("admitting a 45th streaming flow should be labeled -1")
	}
}

func TestOracleMeasureMatrixOrder(t *testing.T) {
	o := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	m := excr.NewMatrix(excr.DefaultSpace).Set(excr.Web, 0, 1).Set(excr.Conferencing, 0, 2)
	qoe := o.MeasureMatrix(m)
	if len(qoe) != 3 {
		t.Fatalf("len = %d", len(qoe))
	}
	if qoe[0].Class != excr.Web || qoe[1].Class != excr.Conferencing || qoe[2].Class != excr.Conferencing {
		t.Fatalf("class order wrong: %v", qoe)
	}
}

// Property: the oracle's region is monotone — removing flows from an
// achievable matrix keeps it achievable. This is the capacity-region
// property the whole ExCR idea rests on.
func TestQuickRegionMonotone(t *testing.T) {
	o := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(33)
	f := func() bool {
		m := excr.NewMatrix(excr.DefaultSpace)
		for c := 0; c < 3; c++ {
			m = m.Set(excr.AppClass(c), 0, rng.Intn(20))
		}
		if m.Total() == 0 || !o.Achievable(m) {
			return true // vacuous
		}
		// Drop one random flow: must remain achievable.
		for c := 0; c < 3; c++ {
			if m.Get(excr.AppClass(c), 0) > 0 {
				if !o.Achievable(m.Dec(excr.AppClass(c), 0)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRegionSliceShape(t *testing.T) {
	// Figure 2's qualitative claim: ≈25 streaming max but ≈40
	// conferencing max on the ns-3-like WiFi cell.
	o := Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	r := o.Region(excr.DefaultSpace)
	s := r.Slice(excr.Streaming, excr.Conferencing, 0, 50, 50)
	maxStream := -1
	for i := 0; i <= 50; i++ {
		if s[i][0] {
			maxStream = i
		}
	}
	maxConf := -1
	for j := 0; j <= 50; j++ {
		if s[0][j] {
			maxConf = j
		}
	}
	if maxStream < 18 || maxStream > 32 {
		t.Fatalf("streaming-only capacity = %d, want ≈25", maxStream)
	}
	if maxConf < 33 || maxConf > 50 {
		t.Fatalf("conferencing-only capacity = %d, want ≈40", maxConf)
	}
	if maxConf <= maxStream {
		t.Fatal("conferencing capacity should exceed streaming capacity")
	}
}
