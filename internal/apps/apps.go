// Package apps models the paper's instrumented client applications:
// the ground-truth QoE each app measures on the device as a function
// of the network QoS its flow receives.
//
//   - Web browsing reports page load time (seconds); the paper deems
//     a load acceptable under 3 s.
//   - Video streaming reports startup delay (seconds); acceptable
//     under 5 s (Figure 3's threshold).
//   - Video conferencing reports received-video PSNR (dB); acceptable
//     above 30 dB.
//
// These analytic models substitute for the paper's Android apps
// (WebView page loads, the YouTube player API, screen-recorded
// Hangouts calls). Only the monotone QoS→QoE relationship and its
// threshold crossings matter to ExBox, and those are preserved: QoE
// degrades with falling throughput, rising delay and rising loss, with
// app-specific sensitivities (web and conferencing are delay-heavy,
// streaming is throughput-heavy).
package apps

import (
	"fmt"
	"math"
	"math/rand"

	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
	"exbox/internal/netsim"
)

// Default QoE thresholds per class, as used across the evaluation.
const (
	// WebPLTThresholdSec is the maximum acceptable page load time.
	WebPLTThresholdSec = 3.0
	// StartupThresholdSec is the maximum acceptable video startup
	// delay (Figure 3 uses 5 s).
	StartupThresholdSec = 5.0
	// PSNRThresholdDB is the minimum acceptable conferencing PSNR.
	PSNRThresholdDB = 30.0
	// TimeoutSec caps time-valued measurements: the instrumented apps
	// abandon a page load or video start after 30 s ("the video does
	// not even play" cases of Figure 3 are recorded at the timeout).
	TimeoutSec = 30.0
)

// Page and buffer sizes behind the analytic models. Burst rates: a
// page fetch or a startup buffer fill runs at TCP burst speed, several
// times the flow's long-run average demand; congestion scales the
// burst down in proportion to how much of the flow's steady demand the
// network could satisfy.
const (
	webPageBytes       = 0.8e6 // mobile page weight (Amazon/BBC/YouTube home)
	webRoundTrips      = 4     // DNS + TCP + TLS + HTTP
	webDemandBps       = 1.0e6 // steady mean demand (matches netsim profile)
	webBurstBps        = 4.0e6 // unconstrained page-fetch rate
	streamBufferBytes  = 2.0e6 // startup buffer for 720p playback
	streamRoundTrips   = 2
	streamDemandBps    = 4.0e6 // steady mean demand (matches netsim profile)
	streamBurstBps     = 8.0e6 // unconstrained buffer-fill rate
	confCodecDemandBps = 2.0e6 // Hangouts-like video call rate
	confMaxPSNR        = 42.0
	confMinPSNR        = 8.0
)

// QoE is one ground-truth application measurement.
type QoE struct {
	Class excr.AppClass
	// Value is in class units: seconds for Web and Streaming, dB for
	// Conferencing.
	Value float64
}

// Acceptable reports whether the measurement meets its class's QoE
// threshold.
func (q QoE) Acceptable() bool {
	switch q.Class {
	case excr.Web:
		return q.Value <= WebPLTThresholdSec
	case excr.Streaming:
		return q.Value <= StartupThresholdSec
	case excr.Conferencing:
		return q.Value >= PSNRThresholdDB
	default:
		panic(fmt.Sprintf("apps: no threshold for class %v", q.Class))
	}
}

// String renders the measurement with its unit.
func (q QoE) String() string {
	switch q.Class {
	case excr.Conferencing:
		return fmt.Sprintf("%s PSNR %.1f dB", q.Class, q.Value)
	default:
		return fmt.Sprintf("%s %.2f s", q.Class, q.Value)
	}
}

// Measure returns the ground-truth QoE a flow of the class would
// record under the given QoS. rng adds measurement noise; pass nil for
// the noiseless model.
func Measure(class excr.AppClass, qos metrics.QoS, rng *rand.Rand) QoE {
	var v float64
	switch class {
	case excr.Web:
		v = webPLT(qos)
	case excr.Streaming:
		v = startupDelay(qos)
	case excr.Conferencing:
		v = psnr(qos)
	default:
		panic(fmt.Sprintf("apps: no model for class %v", class))
	}
	if rng != nil {
		// Multiplicative measurement noise, ~5% sigma, clamped so a
		// noisy sample can never change sign or hit zero.
		v *= mathx.TruncNormal(rng, 1, 0.05, 0.85, 1.15)
	}
	if class == excr.Conferencing {
		v = mathx.Clamp(v, confMinPSNR, confMaxPSNR)
	} else {
		v = math.Min(v, TimeoutSec)
	}
	return QoE{Class: class, Value: v}
}

// burstRate estimates the transfer rate a short burst achieves: the
// unconstrained burst rate scaled by the square of the flow's
// delivered-throughput ratio. The quadratic reflects how TCP bursts
// collapse under contention — slower ramp-up, more retransmissions —
// so delay-style QoE degrades well before hard saturation, as the
// paper's testbeds exhibit. Crucially the slowdown is a function of
// per-flow goodput, which the gateway's passive QoS measurement sees.
func burstRate(q metrics.QoS, demandBps, burstBps float64) float64 {
	u := mathx.Clamp(q.ThroughputBps/demandBps, 0, 1)
	return math.Max(burstBps*u*u, 1e4)
}

// webPLT models page load time: protocol round trips plus transfer
// time at burst speed, inflated by retransmissions under loss.
func webPLT(q metrics.QoS) float64 {
	rtt := q.DelayMs / 1e3
	plt := webRoundTrips*rtt + (webPageBytes*8)/burstRate(q, webDemandBps, webBurstBps)
	// TCP loss recovery: each percent of loss costs extra RTTs.
	plt *= 1 + 8*q.LossRate
	return plt
}

// startupDelay models how long the player buffers before playback:
// request round trips plus the time to fill the startup buffer at
// burst speed.
func startupDelay(q metrics.QoS) float64 {
	rtt := q.DelayMs / 1e3
	d := streamRoundTrips*rtt + (streamBufferBytes*8)/burstRate(q, streamDemandBps, streamBurstBps)
	d *= 1 + 5*q.LossRate
	return d
}

// psnr models received-video quality for a realtime call: full quality
// requires the codec rate; starvation, loss and latency all cut into
// the score.
func psnr(q metrics.QoS) float64 {
	rateFactor := mathx.Clamp(q.ThroughputBps/confCodecDemandBps, 0, 1)
	p := confMaxPSNR
	p -= 22 * (1 - rateFactor) // starved encoder drops quality
	p -= 60 * q.LossRate       // missing frames dominate
	if over := q.DelayMs - 150; over > 0 {
		p -= over / 25 // late frames get discarded by the jitter buffer
	}
	return mathx.Clamp(p, confMinPSNR, confMaxPSNR)
}

// Oracle produces ground-truth admissibility labels by running a
// traffic matrix on a network backend and checking every flow's QoE
// against its class threshold — the role the instrumented testbed
// plays in the paper's trace collection.
type Oracle struct {
	Net netsim.Network
	// Rng adds app measurement noise; nil means noiseless.
	Rng *rand.Rand
}

// MeasureMatrix runs the matrix on the network and returns the
// ground-truth QoE of every active flow, in netsim.FlowsForMatrix
// order.
func (o Oracle) MeasureMatrix(m excr.Matrix) []QoE {
	flows := netsim.FlowsForMatrix(m)
	qos := o.Net.Evaluate(flows)
	out := make([]QoE, len(flows))
	for i, f := range flows {
		out[i] = Measure(f.Class, qos[i], o.Rng)
	}
	return out
}

// Achievable reports whether the matrix lies inside the experiential
// capacity region: every active flow's QoE is acceptable.
func (o Oracle) Achievable(m excr.Matrix) bool {
	for _, q := range o.MeasureMatrix(m) {
		if !q.Acceptable() {
			return false
		}
	}
	return true
}

// Label returns the paper's Y_m for an arrival: +1 when admitting the
// flow still leaves every flow (including the new one) with acceptable
// QoE, −1 otherwise.
func (o Oracle) Label(a excr.Arrival) float64 {
	if o.Achievable(a.After()) {
		return 1
	}
	return -1
}

// Region returns the oracle's ground-truth ExCR view.
func (o Oracle) Region(s excr.Space) excr.Region {
	return excr.Region{Space: s, Achievable: o.Achievable}
}
