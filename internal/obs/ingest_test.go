package obs

import (
	"strings"
	"testing"
)

func TestIngestMetrics(t *testing.T) {
	reg := NewRegistry()
	depth := int64(0)
	im := NewIngestMetrics(reg, func() int64 { return depth })

	im.Drops.Add(3)
	for _, n := range []float64{1, 1, 4, 64, 300} {
		im.BurstSize.Observe(n)
	}
	depth = 17

	out := reg.String()
	for _, want := range []string{
		"exbox_ring_depth 17",
		"exbox_ring_drops_total 3",
		"exbox_burst_size",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, out)
		}
	}
	if got := im.BurstSize.Count(); got != 5 {
		t.Fatalf("burst histogram count %d, want 5", got)
	}
}

func TestIngestMetricsNilDepth(t *testing.T) {
	reg := NewRegistry()
	NewIngestMetrics(reg, nil)
	if !strings.Contains(reg.String(), "exbox_ring_depth 0") {
		t.Fatalf("nil depth should read 0:\n%s", reg.String())
	}
}
