package obs

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var gf *GaugeFloat
	var h *Histogram
	var ring *AuditRing
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	gf.Set(1.5)
	h.Observe(0.1)
	ring.Record(DecisionRecord{})
	if c.Value() != 0 || g.Value() != 0 || gf.Value() != 0 || h.Count() != 0 || ring.Len() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatal("same name must return the same counter")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Fatal("aliased counters must share state")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type name collision must panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	h := newHistogram("lat_seconds", ExpBuckets(0.001, 10, 4)) // 1ms, 10ms, 100ms, 1s
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 5.5605; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// 0.0005 -> le 1ms; 0.005 x2 -> le 10ms; 0.05 -> le 100ms;
	// 0.5 -> le 1s; 5 -> overflow.
	wantCum := []int64{1, 3, 4, 5}
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if cum != wantCum[i] {
			t.Fatalf("cumulative bucket %d = %d, want %d", i, cum, wantCum[i])
		}
	}
	if h.counts[len(h.bounds)].Load() != 1 {
		t.Fatal("overflow bucket must hold the out-of-range value")
	}
	if q := h.Quantile(0.5); q != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", q)
	}
	if q := h.Quantile(1); q != 1 {
		t.Fatalf("p100 = %v, want last finite bound 1", q)
	}
}

func TestSignedExpBuckets(t *testing.T) {
	b := SignedExpBuckets(0.25, 2, 3) // -1 -0.5 -0.25 0 0.25 0.5 1
	want := []float64{-1, -0.5, -0.25, 0, 0.25, 0.5, 1}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range b {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	h := newHistogram("margin", b)
	h.Observe(-0.3) // first bound >= -0.3 is -0.25
	if h.counts[2].Load() != 1 {
		t.Fatal("-0.3 must land in the le=-0.25 bucket")
	}
}

func TestAuditRingWrapAndSnapshot(t *testing.T) {
	r := NewAuditRing(4)
	for i := 0; i < 10; i++ {
		r.Record(DecisionRecord{Cell: "ap0", Margin: float64(i)})
	}
	if r.Len() != 4 || r.Seq() != 10 {
		t.Fatalf("len=%d seq=%d, want 4 and 10", r.Len(), r.Seq())
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, rec := range snap {
		if rec.Seq != uint64(7+i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (last 4, oldest first)", i, rec.Seq, 7+i)
		}
		if rec.UnixNanos == 0 {
			t.Fatal("records must be timestamped")
		}
	}
}

func TestConcurrentUpdatesAreConsistent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total")
	h := r.Histogram("val", ExpBuckets(1, 2, 8))
	ring := NewAuditRing(64)
	r.SetRing(ring)

	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(float64(i%7) + 1)
				ring.Record(DecisionRecord{Cell: "ap0", Margin: float64(i)})
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*perWorker {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", cum, h.Count())
	}
	if ring.Seq() != workers*perWorker || ring.Len() != 64 {
		t.Fatalf("ring seq=%d len=%d", ring.Seq(), ring.Len())
	}
}

func TestWriteTextAndHandlers(t *testing.T) {
	r := NewRegistry()
	r.Counter("exbox_admit_total").Add(3)
	r.Gauge("exbox_flows").Set(7)
	r.GaugeFloat("exbox_cv_score").Set(0.85)
	r.GaugeFunc("exbox_shard_0_flows", func() float64 { return 2 })
	r.Histogram("exbox_fit_seconds", ExpBuckets(0.001, 10, 3)).Observe(0.002)
	ring := NewAuditRing(8)
	ring.Record(DecisionRecord{Cell: "ap0", Verdict: "admit", Matrix: "1,0,0"})
	r.SetRing(ring)

	page := r.String()
	for _, want := range []string{
		"exbox_admit_total 3",
		"exbox_flows 7",
		"exbox_cv_score 0.85",
		"exbox_shard_0_flows 2",
		`exbox_fit_seconds_bucket{le="0.01"} 1`,
		"exbox_fit_seconds_count 1",
	} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}

	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "exbox_admit_total 3") {
		t.Fatalf("metrics handler: code=%d body=%q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.AuditHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/admissions", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"verdict":"admit"`) {
		t.Fatalf("audit handler: code=%d body=%q", rec.Code, rec.Body.String())
	}

	ev := r.Expvar()()
	m, ok := ev.(map[string]interface{})
	if !ok {
		t.Fatalf("expvar snapshot is %T", ev)
	}
	if m["exbox_admit_total"] != int64(3) || m["audit_ring_len"] != 1 {
		t.Fatalf("expvar snapshot wrong: %v", m)
	}
}

func TestEstimateQuantileInterpolates(t *testing.T) {
	h := newHistogram("lat_seconds", ExpBuckets(0.001, 10, 4)) // 1ms, 10ms, 100ms, 1s
	if h.EstimateQuantile(0.5) != 0 {
		t.Fatal("empty histogram must estimate 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(0.005) // all mass in the (1ms, 10ms] bucket
	}
	// Rank 50 of 100, all in one bucket: frac = 0.5, log-linear between
	// 1ms and 10ms -> sqrt(1e-3 * 1e-2).
	want := math.Sqrt(1e-3 * 1e-2)
	if got := h.EstimateQuantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	// The estimate must stay inside the bucket and below the coarse
	// upper-bound Quantile.
	if got := h.EstimateQuantile(0.99); got <= 1e-3 || got > 1e-2 {
		t.Fatalf("p99 = %v escaped its bucket", got)
	}
	if h.EstimateQuantile(0.5) > h.Quantile(0.5) {
		t.Fatalf("interpolated estimate %v should not exceed bucket bound %v",
			h.EstimateQuantile(0.5), h.Quantile(0.5))
	}

	// First bucket of positive bounds interpolates linearly from 0.
	h2 := newHistogram("h2", ExpBuckets(1, 10, 3))
	for i := 0; i < 4; i++ {
		h2.Observe(0.5)
	}
	if got := h2.EstimateQuantile(0.5); got <= 0 || got > 1 {
		t.Fatalf("first-bucket estimate = %v, want in (0, 1]", got)
	}

	// Overflow reports the last finite bound, like Quantile.
	h3 := newHistogram("h3", ExpBuckets(1, 10, 2))
	h3.Observe(1e6)
	if got := h3.EstimateQuantile(0.5); got != 10 {
		t.Fatalf("overflow estimate = %v, want 10", got)
	}

	// Signed bounds: the (-inf, lo] bucket has no lower edge.
	h4 := newHistogram("h4", SignedExpBuckets(0.01, 2, 3))
	h4.Observe(-100)
	if got := h4.EstimateQuantile(0.5); got != -0.04 {
		t.Fatalf("(-inf, -0.04] estimate = %v, want -0.04", got)
	}
}

func TestWriteTextEmitsPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", ExpBuckets(0.001, 10, 4))
	for i := 0; i < 10; i++ {
		h.Observe(0.005)
	}
	page := r.String()
	for _, want := range []string{"lat_seconds_p50 ", "lat_seconds_p95 ", "lat_seconds_p99 "} {
		if !strings.Contains(page, want) {
			t.Fatalf("metrics page missing %q:\n%s", want, page)
		}
	}
	// The emitted p50 must be the interpolated estimate, not the coarse
	// bucket bound.
	var got float64
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, "lat_seconds_p50 ") {
			if _, err := fmt.Sscanf(line, "lat_seconds_p50 %g", &got); err != nil {
				t.Fatal(err)
			}
		}
	}
	if want := h.EstimateQuantile(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("page p50 = %v, want EstimateQuantile's %v", got, want)
	}
}

// TestAuditRingSeqAndTimestamps pins the record-ordering contract the
// exporter relies on: every record carries a monotonic sequence number
// and a wall-clock stamp, so scrapes can be ordered and joined across
// pulls.
func TestAuditRingSeqAndTimestamps(t *testing.T) {
	r := NewAuditRing(8)
	t0 := time.Now().UnixNano()
	for i := 0; i < 5; i++ {
		r.Record(DecisionRecord{Cell: "ap0", Verdict: "admit"})
	}
	recs := r.Snapshot()
	if len(recs) != 5 {
		t.Fatalf("len = %d, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want contiguous from 1", i, rec.Seq)
		}
		if rec.UnixNanos < t0 || rec.UnixNanos > time.Now().UnixNano() {
			t.Fatalf("record %d timestamp %d outside test window", i, rec.UnixNanos)
		}
	}
	// A caller-provided timestamp is kept (the middlebox stamps records
	// from its monotonic epoch).
	r.Record(DecisionRecord{UnixNanos: 42})
	recs = r.Snapshot()
	if got := recs[len(recs)-1]; got.UnixNanos != 42 || got.Seq != 6 {
		t.Fatalf("caller timestamp not preserved: %+v", got)
	}
}
