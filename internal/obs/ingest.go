package obs

// Ingest telemetry: the per-worker MPSC rings between the gateway's
// read loop and its packet workers are invisible to every other layer,
// so their health signals — occupancy, overflow drops, and how large
// the drained bursts actually are — get their own small metric bundle
// here. One IngestMetrics covers all workers: drops and burst sizes
// are already per-event atomics, and depth is read across the rings at
// scrape time, so nothing on the publish or drain path ever touches a
// lock.

// IngestMetrics is the ring datapath's metric bundle. Workers count
// every overflow drop in Drops and observe each drained burst's size
// in BurstSize; the registry scrapes total ring depth through the
// gauge function passed to NewIngestMetrics.
type IngestMetrics struct {
	// Drops counts packets the read loop could not publish because the
	// target worker's ring was full (exbox_ring_drops_total).
	Drops *Counter
	// BurstSize is the log-bucketed histogram of drained burst sizes
	// (exbox_burst_size): buckets 1, 2, 4, ... 256, so the operator
	// can tell a trickle (bursts of 1 — the ring never fills, batching
	// is idle) from saturation (bursts pinned at the -burst cap).
	BurstSize *Histogram
}

// NewIngestMetrics registers the ingest ring telemetry: the
// exbox_ring_depth gauge (the summed occupancy depth() reports at
// scrape time), the exbox_ring_drops_total counter and the
// exbox_burst_size histogram. depth may be nil when the caller has no
// rings to report (the gauge then reads 0).
func NewIngestMetrics(reg *Registry, depth func() int64) *IngestMetrics {
	reg.GaugeFunc("exbox_ring_depth", func() float64 {
		if depth == nil {
			return 0
		}
		return float64(depth())
	})
	return &IngestMetrics{
		Drops:     reg.Counter("exbox_ring_drops_total"),
		BurstSize: reg.Histogram("exbox_burst_size", ExpBuckets(1, 2, 9)),
	}
}
