package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// MetricsHandler serves the plaintext metrics page.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.WriteText(w)
	})
}

// AuditHandler serves the decision audit ring as a JSON array,
// oldest-first (empty array when no ring is attached).
func (r *Registry) AuditHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := r.Ring().Snapshot()
		if recs == nil {
			recs = []DecisionRecord{}
		}
		json.NewEncoder(w).Encode(recs)
	})
}

// ServeMux returns the observability endpoint bundle cmd/exboxd serves
// behind -http:
//
//	/metrics           plaintext metrics page
//	/debug/admissions  decision audit ring (JSON)
//	/debug/vars        expvar (the process-global map)
//	/debug/pprof/...   runtime profiling
func (r *Registry) ServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/admissions", r.AuditHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Expvar returns an expvar.Func rendering a JSON snapshot of every
// metric (histograms appear as {count, sum, mean, p50, p99}) plus the
// audit ring's depth.
func (r *Registry) Expvar() expvar.Func {
	return func() interface{} {
		out := make(map[string]interface{})
		for _, m := range r.snapshot() {
			switch v := m.(type) {
			case *Counter:
				out[v.name] = v.Value()
			case *Gauge:
				out[v.name] = v.Value()
			case *GaugeFloat:
				out[v.name] = v.Value()
			case *funcGauge:
				out[v.name] = v.fn()
			case *Histogram:
				out[v.name] = map[string]interface{}{
					"count": v.Count(),
					"sum":   v.Sum(),
					"mean":  v.Mean(),
					"p50":   v.Quantile(0.5),
					"p99":   v.Quantile(0.99),
				}
			}
		}
		if ring := r.Ring(); ring != nil {
			out["audit_ring_len"] = ring.Len()
			out["audit_ring_seq"] = ring.Seq()
		}
		return out
	}
}

// publishMu serializes PublishExpvar's check-then-publish against the
// process-global expvar map.
var publishMu sync.Mutex

// PublishExpvar publishes the registry's snapshot into the
// process-global expvar map under the given name, so /debug/vars
// carries it. Idempotent per name: the first registry to claim a name
// keeps it (expvar offers no unpublish, so tests should use distinct
// names).
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, r.Expvar())
	}
}
