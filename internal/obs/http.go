package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"exbox/internal/obs/trace"
)

// MetricsHandler serves the plaintext metrics page with the
// Prometheus text-exposition content type (version=0.0.4, the marker
// standard scrapers negotiate on). HEAD is answered with headers only,
// so liveness probes don't pay for a full render.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		r.WriteText(w)
	})
}

// AuditHandler serves the decision audit ring as a JSON array,
// oldest-first (empty array when no ring is attached).
func (r *Registry) AuditHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		recs := r.Ring().Snapshot()
		if recs == nil {
			recs = []DecisionRecord{}
		}
		json.NewEncoder(w).Encode(recs)
	})
}

// TracesHandler serves the flow-lifecycle trace ring as a JSON array,
// oldest-started first (empty array when no tracer is attached).
// Query filters compose: `?cell=` and `?verdict=` match exactly,
// `?class=` matches the numeric application class, and `?limit=` keeps
// only the most recently started matches.
func (r *Registry) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		views := r.Tracer().Snapshot()
		q := req.URL.Query()
		cell, verdict := q.Get("cell"), q.Get("verdict")
		class, classSet := -1, false
		if s := q.Get("class"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				class, classSet = v, true
			}
		}
		out := views[:0]
		for _, v := range views {
			if cell != "" && v.Cell != cell {
				continue
			}
			if verdict != "" && v.Verdict != verdict {
				continue
			}
			if classSet && v.Class != class {
				continue
			}
			out = append(out, v)
		}
		if s := q.Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(out) {
				out = out[len(out)-n:]
			}
		}
		if out == nil {
			out = []trace.View{}
		}
		json.NewEncoder(w).Encode(out)
	})
}

// HealthHandler serves the attached health report as JSON, or
// {"status":"unknown"} when no source is wired.
func (r *Registry) HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if fn := r.Health(); fn != nil {
			json.NewEncoder(w).Encode(fn())
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"status": "unknown"})
	})
}

// ServeMux returns the observability endpoint bundle cmd/exboxd serves
// behind -http:
//
//	/metrics           plaintext metrics page
//	/debug/admissions  decision audit ring (JSON)
//	/debug/traces      flow-lifecycle traces (JSON, filterable)
//	/debug/health      model/system health verdict (JSON)
//	/debug/vars        expvar (the process-global map)
//	/debug/pprof/...   runtime profiling
func (r *Registry) ServeMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/admissions", r.AuditHandler())
	mux.Handle("/debug/traces", r.TracesHandler())
	mux.Handle("/debug/health", r.HealthHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Expvar returns an expvar.Func rendering a JSON snapshot of every
// metric (histograms appear as {count, sum, mean, p50, p99}) plus the
// audit ring's depth.
func (r *Registry) Expvar() expvar.Func {
	return func() interface{} {
		out := make(map[string]interface{})
		for _, m := range r.snapshot() {
			switch v := m.(type) {
			case *Counter:
				out[v.name] = v.Value()
			case *Gauge:
				out[v.name] = v.Value()
			case *GaugeFloat:
				out[v.name] = v.Value()
			case *funcGauge:
				out[v.name] = v.fn()
			case *Info:
				out[v.name] = v.labels
			case *Histogram:
				out[v.name] = map[string]interface{}{
					"count": v.Count(),
					"sum":   v.Sum(),
					"mean":  v.Mean(),
					"p50":   v.EstimateQuantile(0.5),
					"p99":   v.EstimateQuantile(0.99),
				}
			}
		}
		if ring := r.Ring(); ring != nil {
			out["audit_ring_len"] = ring.Len()
			out["audit_ring_seq"] = ring.Seq()
		}
		return out
	}
}

// publishMu serializes PublishExpvar's check-then-publish against the
// process-global expvar map.
var publishMu sync.Mutex

// PublishExpvar publishes the registry's snapshot into the
// process-global expvar map under the given name, so /debug/vars
// carries it. Idempotent per name: the first registry to claim a name
// keeps it (expvar offers no unpublish, so tests should use distinct
// names).
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) == nil {
		expvar.Publish(name, r.Expvar())
	}
}
