package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestQuantileConcurrentObserve is the regression test for the
// rank-vs-walk race: Quantile used to derive the rank from one pass
// over the atomic buckets and run the cumulative walk in a second
// pass, so a rank computed against a later (larger) total could
// exceed everything an earlier walk accumulated and fall through to
// the overflow bound. With every observed value landing in the first
// two buckets, any answer above bound 2 is that race. Run with -race
// in CI for the memory-model angle on top of this value assertion.
func TestQuantileConcurrentObserve(t *testing.T) {
	h := newHistogram("conc", []float64{1, 2, 3, 4, 5})
	var wg sync.WaitGroup
	var done atomic.Bool
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := 0.5
			if w%2 == 1 {
				v = 1.5 // second bucket
			}
			for i := 0; i < 100000; i++ {
				h.Observe(v)
			}
		}(w)
	}
	go func() { wg.Wait(); done.Store(true) }()
	for !done.Load() {
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 && got > 2 {
				t.Fatalf("Quantile(%v) = %v under concurrent writes; all mass is at or below 2", q, got)
			}
			if got := h.EstimateQuantile(q); got != 0 && got > 2 {
				t.Fatalf("EstimateQuantile(%v) = %v under concurrent writes; all mass is at or below 2", q, got)
			}
		}
	}
	wg.Wait()
	if h.Count() != 400000 {
		t.Fatalf("count = %d after writers finished, want 400000", h.Count())
	}

	// Quiescent exactness: with writers stopped the bucketed quantiles
	// are deterministic.
	if got := h.Quantile(1); got != 2 {
		t.Fatalf("quiescent Quantile(1) = %v, want 2", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("quiescent Quantile(0) = %v, want 1", got)
	}
}

// TestQuantileRankClamp: ranks computed from q at either edge must be
// clamped into [1, total] — q=0 still reports the first occupied
// bucket and q=1 never walks past the data.
func TestQuantileRankClamp(t *testing.T) {
	h := newHistogram("clamp", []float64{1, 2, 3})
	h.Observe(2.5)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 3 {
			t.Fatalf("Quantile(%v) = %v, want 3 (single sample in bucket 3)", q, got)
		}
		if got := h.EstimateQuantile(q); got < 2 || got > 3 {
			t.Fatalf("EstimateQuantile(%v) = %v, want within (2, 3]", q, got)
		}
	}
}
