package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram with atomic bucket counts.
// Observe is allocation-free and lock-free: a binary search over the
// immutable bounds plus three atomic updates. Bounds are upper bounds
// in ascending order; values above the last bound land in an implicit
// +Inf overflow bucket. Buckets are usually log-spaced (ExpBuckets)
// so a handful of them cover nanoseconds-to-seconds latencies or the
// dynamic range of SVM margins (SignedExpBuckets).
type Histogram struct {
	name   string
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	noSum  bool           // skip the sum: distribution-only histograms
}

func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = ExpBuckets(1e-6, 4, 12) // 1µs .. ~4200s, a safe default
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not sorted", name))
	}
	b := append([]float64(nil), bounds...)
	return &Histogram{name: name, bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First index with bounds[i] >= v: bucket i counts values <= its
	// upper bound, the overflow bucket everything past the last bound.
	// The total count is derived from the buckets at scrape time, so
	// one observation is one bucket increment plus (unless noSum) the
	// running-sum update.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	if h.noSum {
		return
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil histogram),
// summed over the buckets at read time.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns Sum/Count, 0 before the first observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Name returns the registered name.
func (h *Histogram) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// snapshotCounts copies the bucket counts into one local slice and
// returns them with their total. Quantile math must run against this
// single snapshot: deriving the rank from one pass over the atomics
// and the cumulative walk from a second pass races concurrent Observe
// calls — buckets read later see increments the rank pass missed, and
// (worse) a rank computed from a later total can exceed what an
// earlier cumulative walk ever reaches, spuriously reporting the
// overflow bound. One snapshot makes rank and walk agree by
// construction. The slice allocates, which is fine on these cold
// scrape/log paths.
func (h *Histogram) snapshotCounts() ([]int64, int64) {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 <= q <= 1): the upper bound of the bucket holding the q-th
// observation, or the last finite bound for the overflow bucket.
// Bucketed quantiles are coarse by construction; they are meant for
// the periodic stats log line, not for precision analysis.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total := h.snapshotCounts()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1] // overflow: report last finite bound
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// EstimateQuantile returns an interpolated estimate of the q-quantile
// (0 <= q <= 1): the bucket holding the q-th observation is found as
// in Quantile, then the position within it is interpolated —
// log-linearly when both edges are positive (the bucket shapes here
// are log-spaced, so that is the natural assumption about how mass
// spreads inside one), linearly otherwise. The overflow bucket has no
// upper edge and reports the last finite bound, like Quantile.
func (h *Histogram) EstimateQuantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts, total := h.snapshotCounts()
	if total == 0 {
		return 0
	}
	rank := math.Ceil(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > float64(total) {
		rank = float64(total)
	}
	var cum int64
	for i, n := range counts {
		cum += n
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // overflow: no upper edge
		}
		hi := h.bounds[i]
		var lo float64
		if i > 0 {
			lo = h.bounds[i-1]
		} else if hi > 0 {
			lo = 0 // first bucket of positive-only bounds
		} else {
			return hi // (-inf, hi]: no lower edge to interpolate from
		}
		frac := (rank - float64(cum-n)) / float64(n)
		if lo > 0 && hi > lo {
			return lo * math.Pow(hi/lo, frac)
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// writeText renders Prometheus-style cumulative buckets plus _sum,
// _count and estimated-percentile lines (the latter so a latency
// regression is readable straight off the /metrics page without
// reassembling buckets).
func (h *Histogram) writeText(w io.Writer) error {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%v\"} %d\n", h.name, b, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum); err != nil {
		return err
	}
	if !h.noSum {
		if _, err := fmt.Fprintf(w, "%s_sum %v\n", h.name, h.Sum()); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_count %d\n", h.name, cum); err != nil {
		return err
	}
	for _, p := range [...]struct {
		suffix string
		q      float64
	}{{"p50", 0.5}, {"p95", 0.95}, {"p99", 0.99}} {
		if _, err := fmt.Fprintf(w, "%s_%s %v\n", h.name, p.suffix, h.EstimateQuantile(p.q)); err != nil {
			return err
		}
	}
	return nil
}

// ExpBuckets returns n log-spaced upper bounds start, start*factor,
// start*factor², ... — the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// SignedExpBuckets returns log-spaced bounds mirrored around zero:
// -start*factorⁿ⁻¹ ... -start, 0, start ... start*factorⁿ⁻¹. It is
// the bucket shape for signed quantities like SVM decision margins,
// where resolution matters most near the boundary.
func SignedExpBuckets(start, factor float64, n int) []float64 {
	pos := ExpBuckets(start, factor, n)
	out := make([]float64, 0, 2*n+1)
	for i := n - 1; i >= 0; i-- {
		out = append(out, -pos[i])
	}
	out = append(out, 0)
	out = append(out, pos...)
	return out
}
