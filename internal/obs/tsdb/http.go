package tsdb

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// sinceNanos resolves the `?since=` filter: a Go duration ("90s",
// "5m") means that-long-ago relative to now, a bare integer means unix
// seconds, empty (or unparseable) means everything retained.
func sinceNanos(s string, now time.Time) int64 {
	if s == "" {
		return 0
	}
	if d, err := time.ParseDuration(s); err == nil && d > 0 {
		return now.Add(-d).UnixNano()
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil && sec > 0 {
		return sec * int64(time.Second)
	}
	return 0
}

// Handler serves the store as JSON at /debug/timeline: an array of
// {name, kind, resolution_seconds, points} objects, points as
// [unixNanos, value] pairs oldest-first. Query filters compose:
// `?metric=` substring-matches series names, `?cell=` keeps one cell's
// series (matched via the exbox_cell_<id>_ naming convention), and
// `?since=` trims old points (duration-ago like "5m", or unix
// seconds).
func (db *DB) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		out := db.Query(q.Get("metric"), q.Get("cell"), sinceNanos(q.Get("since"), time.Now()))
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}

// BinaryHandler serves the full store as one binary timeline dump at
// /timeline.bin (see EncodeBinary) — the compact form a cluster-mode
// aggregator pulls instead of JSON. The same query filters as Handler
// apply.
func (db *DB) BinaryHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		out := db.Query(q.Get("metric"), q.Get("cell"), sinceNanos(q.Get("since"), time.Now()))
		buf := EncodeBinary(out)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(buf)))
		if req.Method == http.MethodHead {
			return
		}
		w.Write(buf)
	})
}
