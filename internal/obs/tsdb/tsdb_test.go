package tsdb

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"exbox/internal/obs"
)

// fakeSampler feeds tick synthetic samples: a map snapshot per call so
// tests drive exact values and cumulative-vs-level semantics.
type fakeSampler struct {
	mu      sync.Mutex
	kind    map[string]bool // cumulative?
	vals    map[string]float64
	dropped map[string]bool
}

func newFakeSampler() *fakeSampler {
	return &fakeSampler{kind: map[string]bool{}, vals: map[string]float64{}, dropped: map[string]bool{}}
}

func (f *fakeSampler) set(name string, cumulative bool, v float64) {
	f.mu.Lock()
	f.kind[name], f.vals[name] = cumulative, v
	f.mu.Unlock()
}

func (f *fakeSampler) Sample(fn func(name string, cumulative bool, v float64)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for name, v := range f.vals {
		if !f.dropped[name] {
			fn(name, f.kind[name], v)
		}
	}
}

const sec = int64(time.Second)

// TestDeltaSemantics pins the counter rules: the first sighting primes
// the baseline and emits nothing, later ticks emit per-interval
// increases, and a reset (value below the previous sample) is treated
// as a restart — the new total IS the delta.
func TestDeltaSemantics(t *testing.T) {
	src := newFakeSampler()
	db := New(src, Config{Resolution: time.Second, Retention: time.Minute})

	src.set("c_total", true, 100)
	db.tick(1 * sec) // primes only
	src.set("c_total", true, 107)
	db.tick(2 * sec) // delta 7
	src.set("c_total", true, 107)
	db.tick(3 * sec) // delta 0
	src.set("c_total", true, 3)
	db.tick(4 * sec) // reset: delta = new total

	out := db.Query("c_total", "", 0)
	if len(out) != 1 {
		t.Fatalf("series: got %d, want 1", len(out))
	}
	if out[0].Kind != "delta" {
		t.Fatalf("kind: got %q, want delta", out[0].Kind)
	}
	want := []Point{{2 * sec, 7}, {3 * sec, 0}, {4 * sec, 3}}
	if !reflect.DeepEqual(out[0].Points, want) {
		t.Fatalf("points: got %v, want %v", out[0].Points, want)
	}
}

// TestGaugeSemantics pins that levels are recorded as-is from the
// first tick, including decreases.
func TestGaugeSemantics(t *testing.T) {
	src := newFakeSampler()
	db := New(src, Config{Resolution: time.Second, Retention: time.Minute})
	for i, v := range []float64{5, 9, 2} {
		src.set("depth", false, v)
		db.tick(int64(i+1) * sec)
	}
	out := db.Query("depth", "", 0)
	want := []Point{{1 * sec, 5}, {2 * sec, 9}, {3 * sec, 2}}
	if len(out) != 1 || !reflect.DeepEqual(out[0].Points, want) {
		t.Fatalf("points: got %+v, want %v", out, want)
	}
}

// TestRingWraparound overfills a small ring and checks the snapshot
// keeps exactly the newest ringSize points, oldest-first.
func TestRingWraparound(t *testing.T) {
	src := newFakeSampler()
	// 4s retention at 1s resolution → ring of 4 points.
	db := New(src, Config{Resolution: time.Second, Retention: 4 * time.Second})
	if db.ringSize != 4 {
		t.Fatalf("ring size: got %d, want 4", db.ringSize)
	}
	for i := 1; i <= 11; i++ {
		src.set("g", false, float64(i))
		db.tick(int64(i) * sec)
	}
	out := db.Query("g", "", 0)
	want := []Point{{8 * sec, 8}, {9 * sec, 9}, {10 * sec, 10}, {11 * sec, 11}}
	if len(out) != 1 || !reflect.DeepEqual(out[0].Points, want) {
		t.Fatalf("wrapped points: got %+v, want %v", out, want)
	}
	// since filter trims from the same wrapped window.
	out = db.Query("g", "", 10*sec)
	want = []Point{{10 * sec, 10}, {11 * sec, 11}}
	if len(out) != 1 || !reflect.DeepEqual(out[0].Points, want) {
		t.Fatalf("since-filtered points: got %+v, want %v", out, want)
	}
	// A since filter past the newest point drops the series entirely.
	if out := db.Query("g", "", 12*sec); len(out) != 0 {
		t.Fatalf("future since: got %+v, want empty", out)
	}
}

// TestQueryFilters exercises the metric substring and cell filters
// against the obs naming convention.
func TestQueryFilters(t *testing.T) {
	src := newFakeSampler()
	db := New(src, Config{})
	src.set("exbox_cell_ap0_admit_total", true, 1)
	src.set("exbox_cell_ap0_reject_total", true, 1)
	src.set("exbox_cell_ap_1_admit_total", true, 1)
	src.set("exbox_gw_forwarded_packets_total", true, 1)
	db.tick(1 * sec)
	for name, v := range map[string]float64{
		"exbox_cell_ap0_admit_total":       5,
		"exbox_cell_ap0_reject_total":      6,
		"exbox_cell_ap_1_admit_total":      7,
		"exbox_gw_forwarded_packets_total": 8,
	} {
		src.set(name, true, v)
	}
	db.tick(2 * sec)

	if out := db.Query("", "", 0); len(out) != 4 {
		t.Fatalf("unfiltered: got %d series, want 4", len(out))
	}
	out := db.Query("admit_total", "", 0)
	if len(out) != 2 {
		t.Fatalf("metric filter: got %d series, want 2", len(out))
	}
	// Sorted by name.
	if out[0].Name > out[1].Name {
		t.Fatalf("unsorted output: %q before %q", out[0].Name, out[1].Name)
	}
	// Cell filter goes through SanitizeName: "ap/1" → ap_1.
	out = db.Query("", "ap/1", 0)
	if len(out) != 1 || out[0].Name != "exbox_cell_ap_1_admit_total" {
		t.Fatalf("cell filter: got %+v", out)
	}
	if out := db.Query("reject", "ap/1", 0); len(out) != 0 {
		t.Fatalf("composed filters: got %+v, want empty", out)
	}
}

// TestBinaryRoundTrip pins Encode/DecodeBinary as inverses, including
// non-finite values and empty dumps.
func TestBinaryRoundTrip(t *testing.T) {
	in := []SeriesDump{
		{Name: "a_total", Kind: "delta", ResolutionSeconds: 1, Points: []Point{{1 * sec, 3}, {2 * sec, 0.25}}},
		{Name: "b", Kind: "gauge", ResolutionSeconds: 0.25, Points: []Point{{3 * sec, -7.5}}},
		{Name: "empty", Kind: "gauge", ResolutionSeconds: 1, Points: []Point{}},
	}
	buf := EncodeBinary(in)
	out, err := DecodeBinary(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// DeepEqual quirk: Encode/Decode turn empty non-nil slices into
	// empty slices as well, so compare structurally.
	if len(out) != len(in) {
		t.Fatalf("series: got %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Name != in[i].Name || out[i].Kind != in[i].Kind ||
			out[i].ResolutionSeconds != in[i].ResolutionSeconds ||
			!reflect.DeepEqual(out[i].Points, in[i].Points) {
			t.Fatalf("series %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
	if _, err := DecodeBinary(EncodeBinary(nil)); err != nil {
		t.Fatalf("empty dump: %v", err)
	}
}

// TestBinaryDecodeCorruption flips bytes and truncates at every
// prefix: DecodeBinary must return ErrCorrupt (never panic, never
// accept).
func TestBinaryDecodeCorruption(t *testing.T) {
	buf := EncodeBinary([]SeriesDump{
		{Name: "a_total", Kind: "delta", ResolutionSeconds: 1, Points: []Point{{1 * sec, 3}, {2 * sec, 4}}},
	})
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeBinary(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		if out, err := DecodeBinary(mut); err == nil {
			// A flipped float payload bit that still CRC-matches is
			// impossible; any accepted mutation is a checksum hole.
			t.Fatalf("byte flip at %d accepted: %+v", i, out)
		}
	}
}

// TestPointJSON pins the compact pair form both ways and the
// non-finite clamp.
func TestPointJSON(t *testing.T) {
	b, err := json.Marshal(Point{UnixNanos: 42, Value: 1.5})
	if err != nil || string(b) != "[42,1.5]" {
		t.Fatalf("marshal: %s, %v", b, err)
	}
	var p Point
	if err := json.Unmarshal([]byte("[42,1.5]"), &p); err != nil || p != (Point{42, 1.5}) {
		t.Fatalf("unmarshal: %+v, %v", p, err)
	}
	if b, _ := json.Marshal(Point{1, math.NaN()}); string(b) != "[1,0]" {
		t.Fatalf("NaN clamp: %s", b)
	}
	if b, _ := json.Marshal(Point{1, math.Inf(-1)}); string(b) != "[1,0]" {
		t.Fatalf("Inf clamp: %s", b)
	}
}

// TestHandlerAgainstRegistry drives the HTTP path against a real obs
// registry: counters become delta series, gauges stay levels, and the
// JSON round-trips through the documented shape.
func TestHandlerAgainstRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("exbox_cell_ap0_admit_total")
	g := reg.Gauge("exbox_ring_depth")
	db := New(reg, Config{Resolution: time.Second, Retention: time.Minute})

	c.Add(10)
	g.Set(3)
	db.tick(1 * sec)
	c.Add(5)
	g.Set(4)
	db.tick(2 * sec)

	rec := httptest.NewRecorder()
	db.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline?metric=admit_total&cell=ap0", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type: %q", ct)
	}
	var out []SeriesDump
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("json: %v (%.200s)", err, rec.Body.String())
	}
	if len(out) != 1 || out[0].Name != "exbox_cell_ap0_admit_total" || out[0].Kind != "delta" {
		t.Fatalf("got %+v", out)
	}
	if want := []Point{{2 * sec, 5}}; !reflect.DeepEqual(out[0].Points, want) {
		t.Fatalf("points: got %v, want %v", out[0].Points, want)
	}

	// The binary endpoint serves the same store; HEAD carries the
	// length and no body.
	rec = httptest.NewRecorder()
	db.BinaryHandler().ServeHTTP(rec, httptest.NewRequest("HEAD", "/timeline.bin", nil))
	if rec.Body.Len() != 0 || rec.Header().Get("Content-Length") == "" || rec.Header().Get("Content-Length") == "0" {
		t.Fatalf("HEAD: body %d bytes, length %q", rec.Body.Len(), rec.Header().Get("Content-Length"))
	}
	rec = httptest.NewRecorder()
	db.BinaryHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/timeline.bin", nil))
	dec, err := DecodeBinary(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("binary decode: %v", err)
	}
	if len(dec) != 2 { // counter series + gauge series
		t.Fatalf("binary series: got %d, want 2", len(dec))
	}
}

// TestConcurrentScrapeUnderLoad races ticks against JSON and binary
// scrapes — run under -race this is the handler's data-race proof.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("exbox_cell_ap0_admit_total")
	h := reg.Histogram("exbox_admit_seconds", obs.ExpBuckets(1e-6, 2, 10))
	db := New(reg, Config{Resolution: time.Millisecond, Retention: 64 * time.Millisecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // the ticker
		defer wg.Done()
		now := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			now += sec
			c.Add(3)
			h.Observe(1e-5)
			db.tick(now)
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // the scrapers
			defer wg.Done()
			for j := 0; j < 200; j++ {
				rec := httptest.NewRecorder()
				db.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
				if !bytes.HasPrefix(bytes.TrimSpace(rec.Body.Bytes()), []byte("[")) {
					t.Errorf("non-array response: %.80s", rec.Body.String())
					return
				}
				rec = httptest.NewRecorder()
				db.BinaryHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/timeline.bin", nil))
				if _, err := DecodeBinary(rec.Body.Bytes()); err != nil {
					t.Errorf("binary decode under load: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSinceNanos pins the ?since= grammar.
func TestSinceNanos(t *testing.T) {
	now := time.Unix(1000, 0)
	if got := sinceNanos("", now); got != 0 {
		t.Fatalf("empty: %d", got)
	}
	if got := sinceNanos("5m", now); got != now.Add(-5*time.Minute).UnixNano() {
		t.Fatalf("duration: %d", got)
	}
	if got := sinceNanos("900", now); got != 900*sec {
		t.Fatalf("unix seconds: %d", got)
	}
	if got := sinceNanos("bogus", now); got != 0 {
		t.Fatalf("garbage: %d", got)
	}
}
