// Package tsdb is the gateway's in-process metric history: a
// fixed-memory windowed time-series store over the obs registry. A
// background ticker samples every registered counter, gauge and
// histogram (via Registry.Sample) into one power-of-two ring of
// (unixNanos, value) points per metric, so "what did this series do
// over the last 15 minutes" is answerable from inside the process —
// the substrate /debug/timeline serves as JSON, /timeline.bin serves
// as a compact binary dump for future cluster-mode aggregation, and
// post-mortems correlate against the flight recorder's event journal.
//
// Semantics follow the metric kind: counters (and histogram _count
// fan-outs) are cumulative totals, so the store records the
// per-interval delta — the rate shape an operator actually reads —
// with counter resets (a value below the previous sample, e.g. after
// a registry swap) treated as a restart from zero. Gauges and
// quantile estimates are levels, recorded as-is. Memory is fixed at
// ring-size × series-count; nothing on the datapath ever touches the
// store — ticks run on one background goroutine and take the store's
// write lock off the hot path.
package tsdb

import (
	"sort"
	"strings"
	"sync"
	"time"

	"exbox/internal/obs"
)

// Kind says how a series' points were derived from the underlying
// metric.
type Kind uint8

const (
	// KindGauge points are sampled levels.
	KindGauge Kind = iota
	// KindDelta points are per-interval increases of a cumulative
	// counter.
	KindDelta
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindDelta {
		return "delta"
	}
	return "gauge"
}

// Point is one sample: a wall-clock stamp and a value. It marshals as
// the compact JSON pair [unixNanos, value] (see MarshalJSON).
type Point struct {
	UnixNanos int64
	Value     float64
}

// series is one metric's ring of points plus the delta state for
// cumulative sources.
type series struct {
	name   string
	kind   Kind
	points []Point // power-of-two ring
	n      uint64  // total points ever written
	last   float64 // previous raw cumulative value (KindDelta)
	primed bool    // last is valid (first sample only primes)
}

func (s *series) push(p Point) {
	s.points[s.n&uint64(len(s.points)-1)] = p
	s.n++
}

// snapshot returns the ring's points oldest-first, filtered to
// UnixNanos >= sinceNanos.
func (s *series) snapshot(sinceNanos int64) []Point {
	out := make([]Point, 0, len(s.points))
	start := uint64(0)
	if s.n > uint64(len(s.points)) {
		start = s.n - uint64(len(s.points))
	}
	for i := start; i < s.n; i++ {
		p := s.points[i&uint64(len(s.points)-1)]
		if p.UnixNanos >= sinceNanos {
			out = append(out, p)
		}
	}
	return out
}

// Sampler is the slice of obs.Registry the store ticks against; it is
// an interface so tests can feed synthetic samples without a registry.
type Sampler interface {
	Sample(fn func(name string, cumulative bool, v float64))
}

// Config sizes the store.
type Config struct {
	// Resolution is the sampling interval (default 1s).
	Resolution time.Duration
	// Retention is the window each series keeps (default 15m). The
	// per-series ring is sized to the next power of two covering
	// Retention/Resolution points.
	Retention time.Duration
}

func (c Config) withDefaults() Config {
	if c.Resolution <= 0 {
		c.Resolution = time.Second
	}
	if c.Retention <= 0 {
		c.Retention = 15 * time.Minute
	}
	if c.Retention < c.Resolution {
		c.Retention = c.Resolution
	}
	return c
}

// DB is the windowed time-series store. Construct with New; safe for
// concurrent use (one ticking goroutine, any number of readers).
type DB struct {
	cfg      Config
	src      Sampler
	ringSize int

	mu     sync.RWMutex
	series map[string]*series
}

// New returns a store sampling src on the given config.
func New(src Sampler, cfg Config) *DB {
	cfg = cfg.withDefaults()
	points := int(cfg.Retention / cfg.Resolution)
	if points < 1 {
		points = 1
	}
	size := 1
	for size < points {
		size <<= 1
	}
	return &DB{cfg: cfg, src: src, ringSize: size, series: make(map[string]*series)}
}

// Resolution returns the effective sampling interval.
func (db *DB) Resolution() time.Duration { return db.cfg.Resolution }

// Retention returns the effective retention window.
func (db *DB) Retention() time.Duration { return db.cfg.Retention }

// Run ticks the store every Resolution until done is closed. Run the
// usual way:
//
//	go db.Run(done)
func (db *DB) Run(done <-chan struct{}) {
	t := time.NewTicker(db.cfg.Resolution)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case now := <-t.C:
			db.tick(now.UnixNano())
		}
	}
}

// tick takes one sample of every metric, stamped nowNanos. Exported
// behavior is driven through Run; tests call tick directly with
// synthetic clocks.
func (db *DB) tick(nowNanos int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.src.Sample(func(name string, cumulative bool, v float64) {
		s := db.series[name]
		if s == nil {
			kind := KindGauge
			if cumulative {
				kind = KindDelta
			}
			s = &series{name: name, kind: kind, points: make([]Point, db.ringSize)}
			db.series[name] = s
		}
		if s.kind == KindDelta {
			if !s.primed {
				// First sighting primes the baseline; emitting the whole
				// running total as one "delta" would spike every new
				// series' first point.
				s.last, s.primed = v, true
				return
			}
			d := v - s.last
			if d < 0 {
				// Counter reset (restarted registry / wrapped source):
				// the new total is the increase since the reset.
				d = v
			}
			s.last = v
			s.push(Point{UnixNanos: nowNanos, Value: d})
			return
		}
		s.push(Point{UnixNanos: nowNanos, Value: v})
	})
}

// SeriesDump is one series as Query returns it and the JSON/binary
// codecs carry it.
type SeriesDump struct {
	Name              string  `json:"name"`
	Kind              string  `json:"kind"`
	ResolutionSeconds float64 `json:"resolution_seconds"`
	Points            []Point `json:"points"`
}

// Query returns the stored series sorted by name, points oldest-first
// and filtered to stamps >= sinceNanos (pass 0 for everything).
// metricSub, when non-empty, keeps only series whose name contains it;
// cell, when non-empty, keeps only that cell's series — names
// containing "_cell_<sanitized id>_" per the obs naming convention.
// Series left with no points after filtering are dropped.
func (db *DB) Query(metricSub, cell string, sinceNanos int64) []SeriesDump {
	var cellTag string
	if cell != "" {
		cellTag = "_cell_" + obs.SanitizeName(cell) + "_"
	}
	db.mu.RLock()
	matched := make([]*series, 0, len(db.series))
	for name, s := range db.series {
		if metricSub != "" && !strings.Contains(name, metricSub) {
			continue
		}
		if cellTag != "" && !strings.Contains(name, cellTag) {
			continue
		}
		matched = append(matched, s)
	}
	out := make([]SeriesDump, 0, len(matched))
	for _, s := range matched {
		pts := s.snapshot(sinceNanos)
		if len(pts) == 0 {
			continue
		}
		out = append(out, SeriesDump{
			Name:              s.name,
			Kind:              s.kind.String(),
			ResolutionSeconds: db.cfg.Resolution.Seconds(),
			Points:            pts,
		})
	}
	db.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
