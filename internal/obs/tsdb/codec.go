package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Point marshals as the compact JSON pair [unixNanos, value]: a
// 15-minute × 1-second timeline is ~900 points per series, and the
// pair form keeps /debug/timeline responses a third the size of
// object-per-point.
func (p Point) MarshalJSON() ([]byte, error) {
	v := p.Value
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0 // non-finite is not JSON; a zeroed sample beats a broken page
	}
	return fmt.Appendf(nil, "[%d,%g]", p.UnixNanos, v), nil
}

// UnmarshalJSON accepts the pair form.
func (p *Point) UnmarshalJSON(b []byte) error {
	var t int64
	var v float64
	if _, err := fmt.Sscanf(string(b), "[%d,%g]", &t, &v); err != nil {
		return fmt.Errorf("tsdb: point %q: %w", b, err)
	}
	p.UnixNanos, p.Value = t, v
	return nil
}

// Binary timeline dump, the /timeline.bin payload. Same envelope
// discipline as internal/snapshot — magic, version, length, CRC-32C
// (Castagnoli) over the payload — so a cluster-mode aggregator can
// reject torn or corrupt dumps before parsing a byte:
//
//	magic "EXTL" | u16 version | u64 payloadLen | payload | u32 CRC
//
// payload:
//
//	u32 nSeries, then per series:
//	  u16 nameLen | name | u8 kind | u64 resolutionNanos |
//	  u32 nPoints | nPoints × (i64 unixNanos, f64 value)
//
// All integers little-endian; floats are IEEE-754 bits.
const (
	binMagic   = "EXTL"
	binVersion = 1
)

var (
	// ErrCorrupt reports a structurally invalid or CRC-failing dump.
	ErrCorrupt = errors.New("tsdb: corrupt timeline dump")
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// EncodeBinary renders series as a binary timeline dump.
func EncodeBinary(series []SeriesDump) []byte {
	payload := make([]byte, 0, 1024)
	payload = binary.LittleEndian.AppendUint32(payload, uint32(len(series)))
	for _, s := range series {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(s.Name)))
		payload = append(payload, s.Name...)
		var kind byte
		if s.Kind == KindDelta.String() {
			kind = byte(KindDelta)
		}
		payload = append(payload, kind)
		payload = binary.LittleEndian.AppendUint64(payload, uint64(s.ResolutionSeconds*1e9))
		payload = binary.LittleEndian.AppendUint32(payload, uint32(len(s.Points)))
		for _, p := range s.Points {
			payload = binary.LittleEndian.AppendUint64(payload, uint64(p.UnixNanos))
			payload = binary.LittleEndian.AppendUint64(payload, math.Float64bits(p.Value))
		}
	}
	out := make([]byte, 0, len(binMagic)+2+8+len(payload)+4)
	out = append(out, binMagic...)
	out = binary.LittleEndian.AppendUint16(out, binVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(payload, castagnoli))
	return out
}

// DecodeBinary parses a binary timeline dump. Decoding is sticky and
// bounds-checked: any truncation, length skew or CRC mismatch returns
// ErrCorrupt (wrapped with detail) and never panics.
func DecodeBinary(data []byte) ([]SeriesDump, error) {
	head := len(binMagic) + 2 + 8
	if len(data) < head+4 {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrCorrupt, len(data), head+4)
	}
	if string(data[:len(binMagic)]) != binMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[len(binMagic):]); v != binVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, binVersion)
	}
	plen := binary.LittleEndian.Uint64(data[len(binMagic)+2:])
	if plen != uint64(len(data)-head-4) {
		return nil, fmt.Errorf("%w: payload length %d, have %d", ErrCorrupt, plen, len(data)-head-4)
	}
	payload := data[head : head+int(plen)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(data[head+int(plen):]); got != want {
		return nil, fmt.Errorf("%w: CRC %08x, want %08x", ErrCorrupt, got, want)
	}
	r := binReader{buf: payload}
	n := r.u32()
	// Each series costs at least 2+1+8+4 bytes; a count beyond that
	// bound is a lie, not a big dump.
	if uint64(n) > uint64(len(payload))/15 {
		return nil, fmt.Errorf("%w: series count %d", ErrCorrupt, n)
	}
	out := make([]SeriesDump, 0, n)
	for i := uint32(0); i < n; i++ {
		var s SeriesDump
		s.Name = r.str()
		kind := Kind(r.u8())
		resNanos := r.u64()
		np := r.u32()
		if uint64(np) > uint64(len(r.buf)-r.off)/16 {
			return nil, fmt.Errorf("%w: series %q point count %d", ErrCorrupt, s.Name, np)
		}
		if r.err != nil {
			break
		}
		s.Kind = kind.String()
		s.ResolutionSeconds = float64(resNanos) / 1e9
		s.Points = make([]Point, np)
		for j := range s.Points {
			s.Points[j] = Point{UnixNanos: int64(r.u64()), Value: math.Float64frombits(r.u64())}
		}
		out = append(out, s)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, r.err)
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.buf)-r.off)
	}
	return out, nil
}

// binReader is a sticky-error little-endian cursor: the first
// out-of-bounds read latches the error and every later read returns
// zero, so decode loops need one error check at the end, not one per
// field.
type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.buf)-r.off < n {
		r.err = fmt.Errorf("truncated at offset %d (want %d bytes, have %d)", r.off, n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *binReader) str() string {
	b := r.take(2)
	if b == nil {
		return ""
	}
	return string(r.take(int(binary.LittleEndian.Uint16(b))))
}
