package obs_test

import (
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	"exbox/internal/apps"
	"exbox/internal/classifier"
	"exbox/internal/exboxcore"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/obs"
	"exbox/internal/traffic"
)

// scrape fetches a path from the test server and returns the body.
func scrape(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return string(body)
}

// parseMetrics reads the plaintext exposition into name -> value,
// skipping histogram bucket lines (their names carry a {le=...}).
func parseMetrics(page string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(page, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 || strings.Contains(fields[0], "{") {
			continue
		}
		if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
			out[fields[0]] = v
		}
	}
	return out
}

// TestMiddleboxScrapeConsistency drives an instrumented Middlebox from
// many goroutines while a real HTTP listener serves the registry, then
// checks that the scraped counters and histograms are mutually
// consistent: every admission is accounted exactly once at every
// layer. Run under -race this also proves the lock-free hot-path
// instrumentation is data-race free against concurrent scrapes.
func TestMiddleboxScrapeConsistency(t *testing.T) {
	reg := obs.NewRegistry()
	mb := exboxcore.New(excr.DefaultSpace, exboxcore.Discontinue)
	mb.Instrument(reg, 128)
	if _, err := mb.AddCell("ap0", classifier.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	oracle := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(1)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap0", excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)}); err != nil {
			t.Fatal(err)
		}
	}
	if mb.Cell("ap0").Classifier.Bootstrapping() {
		if err := mb.Cell("ap0").Classifier.ForceOnline(); err != nil {
			t.Fatal(err)
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: reg.ServeMux()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Record the post-bootstrap baseline so assertions below count
	// only the traffic this test drives.
	before := parseMetrics(scrape(t, base, "/metrics"))

	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() { // concurrent scraper: races with the hot path
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
				resp, err := http.Get(base + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				m := excr.NewMatrix(excr.DefaultSpace).
					Set(excr.Streaming, 0, (w+i)%20).
					Set(excr.Web, 0, i%5)
				a := excr.Arrival{Matrix: m, Class: excr.AppClass(i % 3)}
				if _, err := mb.Admit("ap0", a); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()

	const total = workers * perWorker
	after := parseMetrics(scrape(t, base, "/metrics"))
	delta := func(name string) float64 { return after[name] - before[name] }

	if got := delta("exbox_cell_ap0_clf_decisions_total"); got != total {
		t.Fatalf("clf decisions = %v, want %v", got, total)
	}
	if got := delta("exbox_cell_ap0_clf_admit_total") + delta("exbox_cell_ap0_clf_reject_total"); got != total {
		t.Fatalf("clf admits+rejects = %v, want %v", got, total)
	}
	if got := delta("exbox_cell_ap0_admit_total") + delta("exbox_cell_ap0_reject_total"); got != total {
		t.Fatalf("cell verdicts = %v, want %v", got, total)
	}
	// The cell is online, so every decision contributes one margin
	// sample; admission latency is sampled 1-in-16 (the sampling reads
	// the ring sequence racily, so allow slack around total/16).
	if got := delta("exbox_cell_ap0_clf_margin_count"); got != total {
		t.Fatalf("margin histogram count = %v, want %v", got, total)
	}
	if got := delta("exbox_admit_seconds_count"); got < total/64 || got > total/4 {
		t.Fatalf("admit latency count = %v, want about %v (1-in-16 sampling)", got, total/16)
	}
	if after["exbox_cell_ap0_clf_training_size"] <= 0 {
		t.Fatal("training-size gauge not exported")
	}

	ring := reg.Ring()
	if ring.Len() != 128 {
		t.Fatalf("audit ring len = %d, want full at 128", ring.Len())
	}
	if got := ring.Seq() - uint64(before["exbox_cell_ap0_clf_decisions_total"]); got != total {
		t.Fatalf("audit ring seq delta = %d, want %d", got, total)
	}
	snap := ring.Snapshot()
	if len(snap) != 128 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for _, rec := range snap {
		if rec.Cell != "ap0" || rec.Verdict == "" || rec.Matrix == "" {
			t.Fatalf("malformed audit record: %+v", rec)
		}
	}

	// The other endpoints answer on the same listener.
	if page := scrape(t, base, "/debug/admissions"); !strings.Contains(page, `"cell":"ap0"`) {
		t.Fatalf("/debug/admissions missing records: %.200s", page)
	}
	reg.PublishExpvar("exbox_integration_test")
	if page := scrape(t, base, "/debug/vars"); !strings.Contains(page, "exbox_integration_test") {
		t.Fatal("/debug/vars missing the published registry")
	}
	if page := scrape(t, base, "/debug/pprof/cmdline"); page == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
