package trace

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSampledDeterministicAndRoughFraction(t *testing.T) {
	tr := New(64, 16)
	if tr.SampleEvery() != 16 {
		t.Fatalf("SampleEvery = %d, want 16", tr.SampleEvery())
	}
	hits := 0
	const n = 1 << 14
	for i := 0; i < n; i++ {
		id := ID(mix(uint64(i) * 0x9e3779b97f4a7c15))
		first := tr.Sampled(id)
		if tr.Sampled(id) != first {
			t.Fatalf("sampling decision for %v not deterministic", id)
		}
		if first {
			hits++
		}
	}
	// Head sampling is a hash cut, not a counter: expect ~1/16 within a
	// generous band.
	if lo, hi := n/32, n/8; hits < lo || hits > hi {
		t.Fatalf("sampled %d of %d ids, want within [%d, %d]", hits, n, lo, hi)
	}
	if New(8, 1).Sampled(ID(12345)) != true {
		t.Fatal("sampleEvery=1 must sample every flow")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Sampled(ID(1)) {
		t.Fatal("nil tracer must sample nothing")
	}
	if tr.Start(1, "c", 0, 0, "r") != nil || tr.Promote(1, "c", 0, 0, "r", 0) != nil {
		t.Fatal("nil tracer must return nil traces")
	}
	if tr.Snapshot() != nil || tr.Started() != 0 || tr.Promoted() != 0 || tr.SampleEvery() != 0 {
		t.Fatal("nil tracer accessors must be zero")
	}
	var ft *FlowTrace
	ft.Add(Span{})
	ft.AddCoalesced(Span{})
	ft.SetClass(1)
	ft.Close()
}

func TestStartPublishesInFlight(t *testing.T) {
	tr := New(8, 1)
	ft := tr.Start(ID(7), "ap0", -1, 1, "sampled")
	ft.Add(Span{Kind: KindArrival, UnixNanos: 100})
	views := tr.Snapshot()
	if len(views) != 1 {
		t.Fatalf("in-flight trace not visible: %d views", len(views))
	}
	v := views[0]
	if v.Complete {
		t.Fatal("trace should not be complete before Close")
	}
	if v.Cell != "ap0" || v.Class != -1 || v.Level != 1 || v.Reason != "sampled" {
		t.Fatalf("view metadata wrong: %+v", v)
	}
	ft.SetClass(2)
	ft.Add(Span{Kind: KindDecision, UnixNanos: 200, Verdict: "reject", Margin: -0.5, Model: 3})
	ft.Close()
	v = tr.Snapshot()[0]
	if !v.Complete || v.Class != 2 || v.Verdict != "reject" || len(v.Spans) != 2 {
		t.Fatalf("closed view wrong: %+v", v)
	}
}

func TestSnapshotOldestFirstAndRingOverwrite(t *testing.T) {
	tr := New(4, 1)
	for i := 0; i < 6; i++ {
		ft := tr.Start(ID(i), "c", i, 0, "sampled")
		ft.Add(Span{Kind: KindArrival, UnixNanos: int64(i)})
	}
	views := tr.Snapshot()
	if len(views) != 4 {
		t.Fatalf("ring of 4 returned %d views", len(views))
	}
	for i, v := range views {
		if want := 2 + i; v.Class != want {
			t.Fatalf("view %d class = %d, want %d (oldest-started first)", i, v.Class, want)
		}
	}
	if tr.Started() != 6 {
		t.Fatalf("Started = %d, want 6", tr.Started())
	}
}

func TestPromoteBackfillsArrival(t *testing.T) {
	tr := New(8, 1<<20) // sampling rate so high nothing head-samples
	if tr.Sampled(ID(42)) {
		t.Skip("id happens to be head-sampled at 1<<20; pick another")
	}
	ft := tr.Promote(ID(42), "ap0", 1, 0, "rejected", 12345)
	if ft == nil {
		t.Fatal("promotion must always create a trace")
	}
	if tr.Promoted() != 1 || tr.Started() != 1 {
		t.Fatalf("counters: promoted=%d started=%d", tr.Promoted(), tr.Started())
	}
	v := tr.Snapshot()[0]
	if len(v.Spans) != 1 || v.Spans[0].Kind != KindArrival || v.Spans[0].UnixNanos != 12345 || v.Spans[0].Note != "backfilled" {
		t.Fatalf("promoted trace missing backfilled arrival: %+v", v.Spans)
	}
	if v.Reason != "rejected" {
		t.Fatalf("reason = %q", v.Reason)
	}
}

func TestAddCoalesced(t *testing.T) {
	tr := New(8, 1)
	ft := tr.Start(1, "c", 0, 0, "sampled")
	for i := 0; i < 10; i++ {
		ft.AddCoalesced(Span{Kind: KindMonitor, Verdict: "keep", UnixNanos: int64(100 + i), Margin: float64(i)})
	}
	ft.Add(Span{Kind: KindReevaluate, Verdict: "evict", UnixNanos: 200})
	v := ft.View()
	if len(v.Spans) != 2 {
		t.Fatalf("coalescing failed: %d spans", len(v.Spans))
	}
	keep := v.Spans[0]
	if keep.Count != 10 || keep.UnixNanos != 100 || keep.DurNanos != 9 || keep.Margin != 9 {
		t.Fatalf("coalesced span wrong: %+v", keep)
	}
	if v.Verdict != "evict" {
		t.Fatalf("verdict should follow the re-evaluation: %q", v.Verdict)
	}
	// A different verdict must not merge.
	ft2 := tr.Start(2, "c", 0, 0, "sampled")
	ft2.AddCoalesced(Span{Kind: KindMonitor, Verdict: "keep"})
	ft2.AddCoalesced(Span{Kind: KindMonitor, Verdict: "evict"})
	if got := len(ft2.View().Spans); got != 2 {
		t.Fatalf("distinct verdicts coalesced into %d spans", got)
	}
}

func TestSpanCapCountsDrops(t *testing.T) {
	tr := New(8, 1)
	ft := tr.Start(1, "c", 0, 0, "sampled")
	for i := 0; i < maxSpans+5; i++ {
		ft.Add(Span{Kind: KindObserve, UnixNanos: int64(i)})
	}
	v := ft.View()
	if len(v.Spans) != maxSpans {
		t.Fatalf("span storage grew past cap: %d", len(v.Spans))
	}
	if v.Dropped != 5 {
		t.Fatalf("dropped = %d, want 5", v.Dropped)
	}
}

func TestViewJSONRoundTrip(t *testing.T) {
	tr := New(8, 1)
	ft := tr.Start(ID(0xabc), "ap0", 2, 1, "sampled")
	ft.Add(Span{Kind: KindDecision, UnixNanos: 10, Verdict: "admit", Margin: 0.5, Depth: 0.2, Model: 7})
	ft.Close()
	b, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back []View
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round trip: %v (%s)", err, b)
	}
	if len(back) != 1 || back[0].Spans[0].Kind != KindDecision || back[0].Spans[0].Model != 7 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back[0].ID != "0000000000000abc" {
		t.Fatalf("hex id = %q", back[0].ID)
	}
}

func TestIDFromString(t *testing.T) {
	a, b := IDFromString("1.2.3.4:80->sink:9/udp"), IDFromString("1.2.3.4:81->sink:9/udp")
	if a == b {
		t.Fatal("distinct keys hashed to the same trace ID")
	}
	if a != IDFromString("1.2.3.4:80->sink:9/udp") {
		t.Fatal("IDFromString not deterministic")
	}
}

// TestConcurrentTracing races writers against snapshotting readers; the
// race detector is the assertion.
func TestConcurrentTracing(t *testing.T) {
	tr := New(32, 1)
	var writers sync.WaitGroup
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				for _, v := range tr.Snapshot() {
					_ = v.Verdict
				}
			}
		}
	}()
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				ft := tr.Start(ID(w*1000+i), "c", i%3, 0, "sampled")
				ft.Add(Span{Kind: KindArrival, UnixNanos: int64(i)})
				ft.AddCoalesced(Span{Kind: KindMonitor, Verdict: "keep", UnixNanos: int64(i + 1)})
				ft.Close()
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if tr.Started() != 2000 {
		t.Fatalf("Started = %d, want 2000", tr.Started())
	}
}
