// Package trace is the flow-lifecycle tracing layer: per-flow spans
// from arrival through classification, admission decision, monitor
// verdicts and re-evaluation to expiry, collected into a lock-free
// bounded ring and exported as JSON on /debug/traces.
//
// Sampling is head-based and allocation-conscious: whether a flow is
// traced is decided once, at arrival, by hashing its trace ID — a pure
// function, no state, no allocation — so the untraced hot path pays a
// single branch. Flows that become interesting only later (a rejected
// admission, a re-evaluation flip) are promoted into the ring
// after the fact with their arrival span backfilled, so the traces an
// operator actually needs are always captured regardless of the
// sampling rate.
//
// A FlowTrace is published into the ring when it starts, so in-flight
// traces are visible to scrapes; spans are appended under a per-trace
// mutex that only sampled flows ever touch. Span storage is a
// fixed-capacity slice allocated once per trace — appends never grow
// it, and periodic spans (monitor verdicts) coalesce into their
// predecessor instead of accumulating, so a long-lived flow's trace
// stays bounded.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ID identifies one flow across its trace spans. The gateway derives
// it from the flow key, so both directions of a flow share an ID.
type ID uint64

// IDFromString hashes a flow key (FNV-64a) into a trace ID.
func IDFromString(s string) ID {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return ID(h)
}

// SpanKind names one phase of the flow lifecycle.
type SpanKind uint8

// The lifecycle phases a span can cover, in their natural order.
const (
	// KindArrival marks the flow's first packet.
	KindArrival SpanKind = iota
	// KindClassify is traffic classification from the head packets.
	KindClassify
	// KindDecision is the admission decision (margin, model version).
	KindDecision
	// KindSelect is a network-selection evaluation across cells.
	KindSelect
	// KindMonitor is a periodic re-evaluation that kept the flow;
	// consecutive keeps coalesce into one span with a count.
	KindMonitor
	// KindReevaluate is a re-evaluation verdict that flipped the flow
	// to evicted (Section 4.3 dynamics).
	KindReevaluate
	// KindObserve is the ground-truth feedback sample fed back for
	// online learning when the flow ends.
	KindObserve
	// KindExpiry marks the flow leaving the table.
	KindExpiry
)

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	switch k {
	case KindArrival:
		return "arrival"
	case KindClassify:
		return "classify"
	case KindDecision:
		return "decision"
	case KindSelect:
		return "select"
	case KindMonitor:
		return "monitor"
	case KindReevaluate:
		return "reevaluate"
	case KindObserve:
		return "observe"
	case KindExpiry:
		return "expiry"
	default:
		return fmt.Sprintf("kind%d", uint8(k))
	}
}

// MarshalJSON renders the kind as its name.
func (k SpanKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the name form MarshalJSON writes, so exported
// traces round-trip (test harnesses re-read /debug/traces).
func (k *SpanKind) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' {
		s = s[1 : len(s)-1]
	}
	for c := KindArrival; c <= KindExpiry; c++ {
		if c.String() == s {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("trace: unknown span kind %q", s)
}

// Span is one event or phase in a flow's lifecycle. Numeric fields
// carry the classifier detail the span kind calls for (margin, depth
// and model version on decisions and re-evaluations); unused fields
// stay zero and are elided from the JSON.
type Span struct {
	Kind      SpanKind `json:"kind"`
	UnixNanos int64    `json:"unix_nanos"`
	DurNanos  int64    `json:"dur_nanos,omitempty"`
	// Count is how many consecutive identical events this span stands
	// for (see FlowTrace.AddCoalesced); 0 and 1 both mean one.
	Count     int     `json:"count,omitempty"`
	Verdict   string  `json:"verdict,omitempty"`
	Margin    float64 `json:"margin,omitempty"`
	Depth     float64 `json:"depth,omitempty"`
	Model     uint64  `json:"model,omitempty"`
	Bootstrap bool    `json:"bootstrap,omitempty"`
	Note      string  `json:"note,omitempty"`
}

// maxSpans caps the spans kept per trace. The storage is allocated
// once when the trace starts; later spans are counted as dropped
// rather than grown into. Coalescing keeps ordinary lifecycles far
// below the cap.
const maxSpans = 24

// FlowTrace accumulates one flow's spans. It is created by a Tracer
// (Start or Promote) and already published: scrapes may read it while
// the flow is still live, so appends and snapshots synchronize on an
// internal mutex that only traced flows ever touch. All methods are
// nil-safe, so untraced flows (a nil *FlowTrace) cost one branch.
type FlowTrace struct {
	id     ID
	cell   string
	reason string

	mu      sync.Mutex
	class   int
	level   int
	spans   []Span
	dropped int
	verdict string // latest decision / re-evaluation verdict
	done    bool
}

// Add appends one span, dropping it (and counting the drop) when the
// trace is at capacity.
func (ft *FlowTrace) Add(s Span) {
	if ft == nil {
		return
	}
	ft.mu.Lock()
	ft.addLocked(s)
	ft.mu.Unlock()
}

// AddCoalesced appends one span, merging it into the previous span
// when that span has the same kind and verdict: the predecessor's
// count and timestamp advance instead of a new span accumulating.
// Periodic monitor verdicts use this so a long-lived flow's trace
// stays one span per verdict streak, not one per tick.
func (ft *FlowTrace) AddCoalesced(s Span) {
	if ft == nil {
		return
	}
	ft.mu.Lock()
	if n := len(ft.spans); n > 0 {
		last := &ft.spans[n-1]
		if last.Kind == s.Kind && last.Verdict == s.Verdict {
			if last.Count == 0 {
				last.Count = 1
			}
			last.Count++
			last.DurNanos = s.UnixNanos - last.UnixNanos
			last.Margin = s.Margin
			last.Depth = s.Depth
			last.Model = s.Model
			ft.mu.Unlock()
			return
		}
	}
	ft.addLocked(s)
	ft.mu.Unlock()
}

// addLocked is the append core. Caller holds mu.
func (ft *FlowTrace) addLocked(s Span) {
	if s.Verdict != "" && (s.Kind == KindDecision || s.Kind == KindReevaluate) {
		ft.verdict = s.Verdict
	}
	if len(ft.spans) >= cap(ft.spans) {
		ft.dropped++
		return
	}
	ft.spans = append(ft.spans, s)
}

// SetClass records the flow's application class once traffic
// classification resolves it (traces start before the class is known).
func (ft *FlowTrace) SetClass(class int) {
	if ft == nil {
		return
	}
	ft.mu.Lock()
	ft.class = class
	ft.mu.Unlock()
}

// Close marks the trace complete: the flow's lifecycle ended and no
// further spans are expected.
func (ft *FlowTrace) Close() {
	if ft == nil {
		return
	}
	ft.mu.Lock()
	ft.done = true
	ft.mu.Unlock()
}

// View is the immutable JSON form of one trace.
type View struct {
	ID       string `json:"id"`
	Cell     string `json:"cell"`
	Class    int    `json:"class"`
	Level    int    `json:"level"`
	Reason   string `json:"reason"`
	Verdict  string `json:"verdict,omitempty"`
	Complete bool   `json:"complete"`
	Dropped  int    `json:"dropped,omitempty"`
	Spans    []Span `json:"spans"`
}

// View snapshots the trace.
func (ft *FlowTrace) View() View {
	ft.mu.Lock()
	v := View{
		ID:       fmt.Sprintf("%016x", uint64(ft.id)),
		Cell:     ft.cell,
		Class:    ft.class,
		Level:    ft.level,
		Reason:   ft.reason,
		Verdict:  ft.verdict,
		Complete: ft.done,
		Dropped:  ft.dropped,
		Spans:    append([]Span(nil), ft.spans...),
	}
	ft.mu.Unlock()
	return v
}

// Tracer owns the sampling decision and the bounded ring of published
// traces. Writers claim a slot with one atomic increment and publish
// with one atomic pointer store, exactly like the decision audit ring;
// readers snapshot without blocking writers. All methods are nil-safe.
type Tracer struct {
	slots      []atomic.Pointer[FlowTrace]
	seq        atomic.Uint64
	sampleMask uint64
	rate       int

	started  atomic.Int64
	promoted atomic.Int64
}

// New returns a tracer keeping the last capacity traces (<= 0
// defaults to 256, rounded up to a power of two) and head-sampling
// one flow in sampleEvery by trace-ID hash (<= 1 samples every flow;
// rounded up to a power of two so the decision is mask arithmetic).
func New(capacity, sampleEvery int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	rate := 1
	for rate < sampleEvery {
		rate <<= 1
	}
	return &Tracer{
		slots:      make([]atomic.Pointer[FlowTrace], size),
		sampleMask: uint64(rate - 1),
		rate:       rate,
	}
}

// mix is the splitmix64 finalizer: it decorrelates the sampling
// decision from structure in the raw IDs.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SampleEvery returns the head-sampling rate (1 = every flow).
func (tr *Tracer) SampleEvery() int {
	if tr == nil {
		return 0
	}
	return tr.rate
}

// Sampled reports the head-sampling decision for a flow: stateless,
// deterministic, allocation-free. Nil tracers sample nothing.
func (tr *Tracer) Sampled(id ID) bool {
	return tr != nil && mix(uint64(id))&tr.sampleMask == 0
}

// Start creates a trace for a head-sampled flow and publishes it into
// the ring immediately, so in-flight traces are scrape-visible. The
// class may be -1 until classification resolves it (SetClass).
func (tr *Tracer) Start(id ID, cell string, class, level int, reason string) *FlowTrace {
	if tr == nil {
		return nil
	}
	ft := &FlowTrace{
		id:     id,
		cell:   cell,
		class:  class,
		level:  level,
		reason: reason,
		spans:  make([]Span, 0, maxSpans),
	}
	tr.started.Add(1)
	seq := tr.seq.Add(1)
	tr.slots[(seq-1)&uint64(len(tr.slots)-1)].Store(ft)
	return ft
}

// Promote creates an always-sampled trace for a flow whose lifecycle
// became interesting after head sampling skipped it — a rejected
// admission or a re-evaluation flip — backfilling the arrival span
// from the flow's recorded first-seen time so the exported trace is
// still complete.
func (tr *Tracer) Promote(id ID, cell string, class, level int, reason string, arrivalNanos int64) *FlowTrace {
	if tr == nil {
		return nil
	}
	ft := tr.Start(id, cell, class, level, reason)
	tr.promoted.Add(1)
	ft.Add(Span{Kind: KindArrival, UnixNanos: arrivalNanos, Note: "backfilled"})
	return ft
}

// Started returns how many traces were ever started (including
// promotions); Promoted counts just the promotions.
func (tr *Tracer) Started() int64 {
	if tr == nil {
		return 0
	}
	return tr.started.Load()
}

// Promoted returns how many traces were promoted after head sampling
// had skipped them.
func (tr *Tracer) Promoted() int64 {
	if tr == nil {
		return 0
	}
	return tr.promoted.Load()
}

// Snapshot returns views of the ring's traces, oldest-started first.
// Like the audit ring, the cut is best-effort under concurrent
// writers.
func (tr *Tracer) Snapshot() []View {
	if tr == nil {
		return nil
	}
	seq := tr.seq.Load()
	out := make([]View, 0, len(tr.slots))
	// Walk from the oldest live slot forward so views come out in
	// start order.
	n := uint64(len(tr.slots))
	start := uint64(0)
	if seq > n {
		start = seq - n
	}
	for s := start; s < start+n; s++ {
		if p := tr.slots[s&(n-1)].Load(); p != nil {
			out = append(out, p.View())
		}
	}
	return out
}
