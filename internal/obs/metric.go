package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. All methods
// are nil-safe no-ops so uninstrumented layers pay only a predictable
// branch.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative for the counter to stay
// monotone; obs does not enforce it).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name returns the registered name.
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is an atomic integer gauge (a level, not a count): shard
// occupancy, training-set size, queue depth.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Name returns the registered name.
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// GaugeFloat is an atomic float64 gauge (stored as IEEE-754 bits):
// cross-validation scores, EWMA levels.
type GaugeFloat struct {
	name string
	bits atomic.Uint64
}

// Set stores the current value.
func (g *GaugeFloat) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *GaugeFloat) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Name returns the registered name.
func (g *GaugeFloat) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// funcGauge is a scrape-time computed gauge; it only exists inside a
// registry (see Registry.GaugeFunc).
type funcGauge struct {
	name string
	fn   func() float64
}

// Info is a constant informational metric: it renders as
// `name{key="value",...} 1`, the Prometheus build-info idiom, carrying
// identity in its labels rather than its value. Labels are fixed at
// registration (see Registry.Info).
type Info struct {
	name   string
	labels string // pre-rendered `{k="v",...}`, "" when label-free
}

// Name returns the registered name.
func (i *Info) Name() string {
	if i == nil {
		return ""
	}
	return i.name
}

// Labels returns the pre-rendered label block (`{k="v",...}`), or ""
// when the info metric carries no labels.
func (i *Info) Labels() string {
	if i == nil {
		return ""
	}
	return i.labels
}
