// Package obs is the gateway's telemetry layer: allocation-free atomic
// counters and gauges, log-bucketed histograms, and a bounded ring
// buffer auditing the last N admission decisions. Everything a packet
// worker touches is lock-free — a metric update is one or two atomic
// operations — so instrumentation can stay enabled on the hot path
// without perturbing the concurrency the datapath was built around.
//
// Metrics live in a Registry keyed by name. Registration (Counter,
// Gauge, Histogram, ...) takes a lock and is get-or-create, so layers
// can be wired independently; updates never lock. The registry renders
// as a plaintext /metrics page (Prometheus-style exposition), as an
// expvar.Func for /debug/vars, and ServeMux bundles both with
// net/http/pprof — the trio cmd/exboxd serves behind its -http flag.
//
// Naming convention: lowercase snake_case, `exbox_` prefix,
// `_total` suffix for counters, `_seconds` for duration histograms,
// per-cell metrics as `exbox_cell_<id>_...` and per-shard gauges as
// `<prefix>_shard_<i>_...`. All methods on metric types are nil-safe
// no-ops, so instrumented code runs unchanged when a layer is not
// wired to a registry.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"exbox/internal/obs/trace"
)

// Registry holds named metrics and renders them for export. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]interface{}
	ring    *AuditRing
	tracer  *trace.Tracer
	health  func() interface{}
}

// NewRegistry returns an empty metric registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]interface{})}
}

// register is the get-or-create core: an existing metric of the same
// type is returned, a name collision across types panics (it is a
// wiring bug, not a runtime condition).
func (r *Registry) register(name string, create func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := create()
	r.metrics[name] = m
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	m := r.register(name, func() interface{} { return &Counter{name: name} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the named integer gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	m := r.register(name, func() interface{} { return &Gauge{name: name} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, m))
	}
	return g
}

// GaugeFloat returns the named float gauge, creating it on first use.
func (r *Registry) GaugeFloat(name string) *GaugeFloat {
	m := r.register(name, func() interface{} { return &GaugeFloat{name: name} })
	g, ok := m.(*GaugeFloat)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, m))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// Scrapes run off the hot path, so fn may take locks (e.g. counting
// flows under a shard lock). Re-registering a name keeps the first fn.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.register(name, func() interface{} { return &funcGauge{name: name, fn: fn} })
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (see ExpBuckets / SignedExpBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	m := r.register(name, func() interface{} { return newHistogram(name, bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, m))
	}
	return h
}

// HistogramNoSum returns the named histogram without a running sum:
// one atomic bucket increment per Observe, nothing else. It is the
// shape for distribution-only quantities — an SVM margin's sum is
// meaningless (positive and negative margins cancel), but its bucket
// distribution is the whole point.
func (r *Registry) HistogramNoSum(name string, bounds []float64) *Histogram {
	m := r.register(name, func() interface{} {
		h := newHistogram(name, bounds)
		h.noSum = true
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, m))
	}
	return h
}

// Info registers a constant informational metric rendering as
// `name{key="value",...} 1` (the Prometheus build-info idiom). Labels
// are sorted by key for deterministic output; values are escaped per
// the exposition format. Re-registering a name keeps the first labels.
func (r *Registry) Info(name string, labels map[string]string) *Info {
	m := r.register(name, func() interface{} {
		return &Info{name: name, labels: renderLabels(labels)}
	})
	i, ok := m.(*Info)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T", name, m))
	}
	return i
}

// renderLabels pre-renders a label map as `{k="v",...}` with sorted
// keys and exposition-format escaping (backslash, quote, newline).
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(esc.Replace(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// SanitizeName lowercases an identifier and folds anything outside
// [a-z0-9_] to '_' so free-form IDs (cell names, file names) compose
// into valid metric names. It is the naming rule behind the
// `exbox_cell_<id>_...` convention, exported so timeline consumers can
// map a cell ID to its metric prefix the same way the middlebox does.
func SanitizeName(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, id)
}

// SetRing attaches the decision audit ring exported by AuditHandler
// and the expvar snapshot. The middlebox wires its ring here.
func (r *Registry) SetRing(ring *AuditRing) {
	r.mu.Lock()
	r.ring = ring
	r.mu.Unlock()
}

// Ring returns the attached decision audit ring, or nil.
func (r *Registry) Ring() *AuditRing {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring
}

// SetTracer attaches the flow-lifecycle tracer exported by
// TracesHandler on /debug/traces.
func (r *Registry) SetTracer(tr *trace.Tracer) {
	r.mu.Lock()
	r.tracer = tr
	r.mu.Unlock()
}

// Tracer returns the attached flow tracer, or nil.
func (r *Registry) Tracer() *trace.Tracer {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tracer
}

// SetHealth attaches the health-report source exported by
// HealthHandler on /debug/health. fn is called at scrape time (off the
// hot path; it may take locks) and its result is rendered as JSON —
// the middlebox wires its green/yellow/red verdict here.
func (r *Registry) SetHealth(fn func() interface{}) {
	r.mu.Lock()
	r.health = fn
	r.mu.Unlock()
}

// Health returns the attached health-report source, or nil.
func (r *Registry) Health() func() interface{} {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.health
}

// snapshot returns the metrics sorted by name for deterministic
// rendering.
func (r *Registry) snapshot() []interface{} {
	r.mu.RLock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]interface{}, len(names))
	for i, n := range names {
		out[i] = r.metrics[n]
	}
	r.mu.RUnlock()
	return out
}

// Sample walks every registered metric as named scalar samples, in
// sorted name order — the iteration surface the windowed time-series
// store ticks against. cumulative reports whether the value is a
// monotone running total (counters, histogram counts) the consumer
// should difference into per-interval deltas, or a level (gauges,
// quantile estimates) to record as-is. Histograms fan out into three
// samples: `<name>_count` (cumulative) plus `<name>_p50` and
// `<name>_p99` estimated-quantile levels. Info metrics carry identity,
// not a signal, and are skipped. Sample runs off the hot path: it
// takes the registry read lock and histogram quantiles allocate.
func (r *Registry) Sample(fn func(name string, cumulative bool, v float64)) {
	for _, m := range r.snapshot() {
		switch v := m.(type) {
		case *Counter:
			fn(v.name, true, float64(v.Value()))
		case *Gauge:
			fn(v.name, false, float64(v.Value()))
		case *GaugeFloat:
			fn(v.name, false, v.Value())
		case *funcGauge:
			fn(v.name, false, v.fn())
		case *Histogram:
			fn(v.name+"_count", true, float64(v.Count()))
			fn(v.name+"_p50", false, v.EstimateQuantile(0.5))
			fn(v.name+"_p99", false, v.EstimateQuantile(0.99))
		}
	}
}

// WriteText renders every metric as plaintext, one `name value` line
// per scalar and Prometheus-style cumulative `_bucket{le="..."}`,
// `_sum` and `_count` lines per histogram.
func (r *Registry) WriteText(w io.Writer) error {
	for _, m := range r.snapshot() {
		var err error
		switch v := m.(type) {
		case *Counter:
			_, err = fmt.Fprintf(w, "%s %d\n", v.name, v.Value())
		case *Gauge:
			_, err = fmt.Fprintf(w, "%s %d\n", v.name, v.Value())
		case *GaugeFloat:
			_, err = fmt.Fprintf(w, "%s %v\n", v.name, v.Value())
		case *funcGauge:
			_, err = fmt.Fprintf(w, "%s %v\n", v.name, v.fn())
		case *Info:
			_, err = fmt.Fprintf(w, "%s%s 1\n", v.name, v.labels)
		case *Histogram:
			err = v.writeText(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// String renders the registry as the /metrics page would.
func (r *Registry) String() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}
