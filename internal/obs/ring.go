package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// DecisionRecord is one admission decision as the audit ring keeps it:
// enough to reconstruct *why* the middlebox admitted or rejected a
// flow after the fact — which cell, what the arrival looked like, what
// traffic matrix conditioned the decision, how deep inside (or
// outside) the capacity region the classifier placed it, and whether
// the cell was still bootstrapping. Records are immutable once stored.
type DecisionRecord struct {
	Seq       uint64  `json:"seq"`
	UnixNanos int64   `json:"unix_nanos"`
	Cell      string  `json:"cell"`
	Class     int     `json:"class"`
	Level     int     `json:"level"`
	Matrix    string  `json:"matrix"`
	Margin    float64 `json:"margin"`
	Depth     float64 `json:"depth"`
	Verdict   string  `json:"verdict"`
	Bootstrap bool    `json:"bootstrap"`
	// Model is the version of the classifier model that made the
	// decision (0 during bootstrap), tying each audited verdict to the
	// exact boundary that produced it.
	Model uint64 `json:"model,omitempty"`
}

// AuditRing is a bounded, lock-free ring buffer over the last N
// admission decisions. Writers claim a slot with one atomic increment
// and publish an immutable record into it with one atomic pointer
// store (the single small allocation on the instrumented admission
// path); readers snapshot without blocking writers. Overwrites are by
// design: the ring answers "what were the last N decisions", not
// "every decision ever".
type AuditRing struct {
	slots []atomic.Pointer[DecisionRecord]
	seq   atomic.Uint64
}

// NewAuditRing returns a ring keeping the last n decisions (n <= 0
// defaults to 256). n is rounded up to a power of two so the hot-path
// slot computation is a mask, not a division.
func NewAuditRing(n int) *AuditRing {
	if n <= 0 {
		n = 256
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &AuditRing{slots: make([]atomic.Pointer[DecisionRecord], size)}
}

// Record stores one decision, stamping its sequence number and time,
// and returns the assigned sequence number (0 on a nil ring) so other
// event sinks — the flight recorder — can tag their copy of the same
// decision with the identical sequence. Nil-safe; safe for concurrent
// use.
func (r *AuditRing) Record(rec DecisionRecord) uint64 {
	if r == nil {
		return 0
	}
	rec.Seq = r.seq.Add(1)
	if rec.UnixNanos == 0 {
		rec.UnixNanos = time.Now().UnixNano()
	}
	r.slots[(rec.Seq-1)&uint64(len(r.slots)-1)].Store(&rec)
	return rec.Seq
}

// Cap returns the ring capacity.
func (r *AuditRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Len returns how many records the ring currently holds (capped at
// its capacity).
func (r *AuditRing) Len() int {
	if r == nil {
		return 0
	}
	n := r.seq.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Seq returns the total number of decisions ever recorded, including
// the ones the ring has since overwritten.
func (r *AuditRing) Seq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Snapshot returns the ring's records ordered oldest-first. Under
// concurrent writes the snapshot is a best-effort cut — a slot claimed
// but not yet published may still show its previous record — which is
// exactly what a post-hoc audit trail needs and all a lock-free reader
// can promise.
func (r *AuditRing) Snapshot() []DecisionRecord {
	if r == nil {
		return nil
	}
	out := make([]DecisionRecord, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
