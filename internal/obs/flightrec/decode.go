package flightrec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// DecodedRecord is a Record with its cell index resolved against the
// segment's journaled cell table.
type DecodedRecord struct {
	Record
	CellName string
}

var (
	// ErrCorrupt reports a segment whose header is unreadable — wrong
	// magic or version; nothing in the file is trustworthy.
	ErrCorrupt = errors.New("flightrec: corrupt segment")
	// ErrTruncated reports a segment that stopped decoding mid-stream —
	// a partial or CRC-failing frame, the expected shape of the live
	// segment after a crash. Every record from the fully-written frames
	// before the break is still returned.
	ErrTruncated = errors.New("flightrec: truncated segment")
)

// DecodeSegment decodes one segment. It never panics on hostile input:
// every read is bounds-checked, and decoding is sticky — the records
// of every fully-written frame up to the first bad byte are returned,
// with err nil on a clean end, ErrTruncated (wrapped with detail) when
// the tail is torn or corrupt, ErrCorrupt when the header itself is
// bad.
func DecodeSegment(data []byte) ([]DecodedRecord, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, want >= %d", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[len(segMagic):]); v != segVersion {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, segVersion)
	}
	var (
		out   []DecodedRecord
		cells []string
		off   = headerSize
	)
	for off < len(data) {
		if len(data)-off < frameHead {
			return out, fmt.Errorf("%w: partial frame header at offset %d", ErrTruncated, off)
		}
		typ := data[off]
		plen := int(binary.LittleEndian.Uint32(data[off+1:]))
		if plen < 0 || len(data)-off-frameHead < plen+4 {
			return out, fmt.Errorf("%w: partial frame (%d payload bytes) at offset %d", ErrTruncated, plen, off)
		}
		payload := data[off+frameHead : off+frameHead+plen]
		crc := binary.LittleEndian.Uint32(data[off+frameHead+plen:])
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			return out, fmt.Errorf("%w: frame CRC %08x, want %08x at offset %d", ErrTruncated, got, crc, off)
		}
		switch typ {
		case frameCells:
			table, err := decodeCellTable(payload)
			if err != nil {
				return out, fmt.Errorf("%w: %v at offset %d", ErrTruncated, err, off)
			}
			cells = table
		case frameRecords:
			if plen%recordSize != 0 {
				return out, fmt.Errorf("%w: records frame of %d bytes at offset %d", ErrTruncated, plen, off)
			}
			for i := 0; i < plen; i += recordSize {
				rec := decodeRecord(payload[i : i+recordSize])
				dr := DecodedRecord{Record: rec}
				if int(rec.Cell) < len(cells) {
					dr.CellName = cells[rec.Cell]
				}
				out = append(out, dr)
			}
		default:
			// Unknown frame types are skippable by construction (framed
			// with their own length and CRC): a newer writer's extra
			// frames don't strand an older decoder.
		}
		off += frameHead + plen + 4
	}
	return out, nil
}

// decodeRecord decodes one 48-byte wire record.
func decodeRecord(b []byte) Record {
	return Record{
		UnixNanos: int64(binary.LittleEndian.Uint64(b)),
		Seq:       binary.LittleEndian.Uint64(b[8:]),
		Model:     binary.LittleEndian.Uint64(b[16:]),
		Value:     math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
		Aux:       math.Float64frombits(binary.LittleEndian.Uint64(b[32:])),
		Cell:      binary.LittleEndian.Uint16(b[40:]),
		Class:     int8(b[42]),
		Level:     int8(b[43]),
		Kind:      Kind(b[44]),
		Verdict:   b[45],
		Flags:     b[46],
	}
}

// decodeCellTable parses a cell-table payload.
func decodeCellTable(payload []byte) ([]string, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("cell table of %d bytes", len(payload))
	}
	n := int(binary.LittleEndian.Uint32(payload))
	// Each entry costs at least 2 bytes; a count beyond that is a lie.
	if n < 0 || n > (len(payload)-4)/2+1 {
		return nil, fmt.Errorf("cell table count %d", n)
	}
	out := make([]string, 0, n)
	off := 4
	for i := 0; i < n; i++ {
		if len(payload)-off < 2 {
			return nil, fmt.Errorf("cell table truncated at entry %d", i)
		}
		l := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if len(payload)-off < l {
			return nil, fmt.Errorf("cell table name %d overruns", i)
		}
		out = append(out, string(payload[off:off+l]))
		off += l
	}
	return out, nil
}

// ReadDir decodes every segment under dir — sealed segments
// oldest-first, then the live current segment — and returns the merged
// records sorted by timestamp (sequence as tiebreak). Per-segment
// decode failures don't discard the rest: all recoverable records are
// returned alongside the joined errors, ErrTruncated on the live
// segment being the expected post-crash shape.
func ReadDir(dir string) ([]DecodedRecord, error) {
	paths, err := sealedSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("flightrec: %w", err)
	}
	if cur := filepath.Join(dir, currentName); fileExists(cur) {
		paths = append(paths, cur)
	}
	var out []DecodedRecord
	var errs []error
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		recs, err := DecodeSegment(data)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", filepath.Base(p), err))
		}
		out = append(out, recs...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].UnixNanos != out[j].UnixNanos {
			return out[i].UnixNanos < out[j].UnixNanos
		}
		return out[i].Seq < out[j].Seq
	})
	return out, errors.Join(errs...)
}

func fileExists(p string) bool {
	_, err := os.Stat(p)
	return err == nil
}
