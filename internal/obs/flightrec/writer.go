package flightrec

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Segment format. A segment file is:
//
//	magic "EXFR" | u16 version
//
// followed by self-delimiting frames:
//
//	u8 frameType | u32 payloadLen | payload | u32 CRC-32C(payload)
//
// frameCells payload: u32 n, then n × (u16 nameLen | name) — the full
// interned cell table, rewritten whenever it grows so every record
// frame is preceded by a table covering its indices. frameRecords
// payload: n × 48-byte records (see encodeRecord). All integers
// little-endian. A torn tail (the crash case) breaks at a frame
// boundary at worst mid-frame, and the CRC makes a partial final frame
// detectable, so decode recovers every fully-written frame.
const (
	segMagic   = "EXFR"
	segVersion = 1

	frameCells   = 1
	frameRecords = 2

	recordSize = 48
	headerSize = len(segMagic) + 2
	frameHead  = 1 + 4
)

// currentName is the live segment's file name; sealed segments are
// renamed to flight-<firstUnixNanos>.exfr.
const currentName = "flight-current.exfr"

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord appends rec's 48-byte wire form.
func encodeRecord(b []byte, rec Record) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(rec.UnixNanos))
	b = binary.LittleEndian.AppendUint64(b, rec.Seq)
	b = binary.LittleEndian.AppendUint64(b, rec.Model)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.Value))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(rec.Aux))
	b = binary.LittleEndian.AppendUint16(b, rec.Cell)
	b = append(b, byte(rec.Class), byte(rec.Level), byte(rec.Kind), rec.Verdict, rec.Flags, 0)
	return b
}

// WriterConfig sizes the background writer.
type WriterConfig struct {
	// Dir is the segment directory (created if missing). Required.
	Dir string
	// SegmentBytes caps one segment before rotation (default 1 MiB).
	SegmentBytes int
	// MaxSegments caps how many segments (sealed + current) are kept;
	// older sealed segments are pruned (default 8).
	MaxSegments int
}

func (c WriterConfig) withDefaults() WriterConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.SegmentBytes < headerSize+frameHead+recordSize {
		c.SegmentBytes = headerSize + frameHead + recordSize
	}
	if c.MaxSegments <= 0 {
		c.MaxSegments = 8
	}
	return c
}

// writer is the single consumer draining a Recorder's ring to disk.
type writer struct {
	rec *Recorder
	cfg WriterConfig

	f         *os.File
	size      int
	firstTS   int64 // first record stamp in the current segment
	wroteRecs bool
	tableLen  int // interned cells covered by the last table frame

	buf   []byte   // frame build buffer, reused
	batch []Record // drain buffer, reused
}

// RunWriter drains the recorder into segment files under cfg.Dir until
// done is closed, then flushes the backlog, syncs and returns. It is
// the ring's single consumer — run exactly one per recorder:
//
//	go func() { _ = rec.RunWriter(cfg, done) }()
//
// Setup errors (unwritable directory) are returned immediately;
// runtime write errors abort the writer with the error (the recorder
// keeps accepting records, which then age out as ring drops — a dead
// disk must not take the datapath with it).
func (r *Recorder) RunWriter(cfg WriterConfig, done <-chan struct{}) error {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return fmt.Errorf("flightrec: empty segment directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	w := &writer{rec: r, cfg: cfg, batch: make([]Record, 512)}
	if err := w.sealStale(); err != nil {
		return err
	}
	if err := w.openSegment(); err != nil {
		return err
	}
	defer w.f.Close()

	// The pull cadence: a wake from a producer when the ring goes
	// non-empty, with a timer backstop so a missed wake (benign race)
	// or a quiet trickle still flushes promptly.
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-done:
			if err := w.drainAll(); err != nil {
				return err
			}
			return w.f.Sync()
		case <-r.wake:
		case <-tick.C:
		}
		if err := w.drainAll(); err != nil {
			return err
		}
	}
}

// drainAll moves everything currently in the ring to disk, fsyncing
// once per call so records are on stable storage within one flush
// cadence of being recorded.
func (w *writer) drainAll() error {
	wrote := false
	for {
		n := w.rec.ring.Drain(w.batch)
		if n == 0 {
			break
		}
		if err := w.writeBatch(w.batch[:n]); err != nil {
			return err
		}
		wrote = true
	}
	if !wrote {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("flightrec: sync: %w", err)
	}
	if w.size >= w.cfg.SegmentBytes {
		return w.rotate()
	}
	return nil
}

// writeBatch writes one records frame (preceded by a fresh cell-table
// frame whenever the table grew, so the frame's indices all resolve).
func (w *writer) writeBatch(recs []Record) error {
	if n := w.rec.cellCount(); n > w.tableLen {
		if err := w.writeCellTable(); err != nil {
			return err
		}
	}
	w.buf = w.buf[:0]
	for _, rec := range recs {
		w.buf = encodeRecord(w.buf, rec)
	}
	if !w.wroteRecs {
		w.firstTS, w.wroteRecs = recs[0].UnixNanos, true
	}
	return w.writeFrame(frameRecords, w.buf)
}

// writeCellTable journals the current interned cell table.
func (w *writer) writeCellTable() error {
	cells := w.rec.cellTable()
	payload := binary.LittleEndian.AppendUint32(nil, uint32(len(cells)))
	for _, name := range cells {
		payload = binary.LittleEndian.AppendUint16(payload, uint16(len(name)))
		payload = append(payload, name...)
	}
	if err := w.writeFrame(frameCells, payload); err != nil {
		return err
	}
	w.tableLen = len(cells)
	return nil
}

// writeFrame writes one framed payload to the current segment.
func (w *writer) writeFrame(typ byte, payload []byte) error {
	head := make([]byte, 0, frameHead)
	head = append(head, typ)
	head = binary.LittleEndian.AppendUint32(head, uint32(len(payload)))
	frame := append(head, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("flightrec: write: %w", err)
	}
	w.size += len(frame)
	return nil
}

// openSegment creates a fresh current segment with its header and an
// initial cell-table frame.
func (w *writer) openSegment() error {
	f, err := os.OpenFile(filepath.Join(w.cfg.Dir, currentName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("flightrec: %w", err)
	}
	hdr := make([]byte, 0, headerSize)
	hdr = append(hdr, segMagic...)
	hdr = binary.LittleEndian.AppendUint16(hdr, segVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("flightrec: write header: %w", err)
	}
	w.f, w.size, w.firstTS, w.wroteRecs, w.tableLen = f, headerSize, 0, false, 0
	return w.writeCellTable()
}

// rotate seals the current segment under its first record's timestamp
// (atomic rename — a reader never sees a half-sealed file), prunes old
// sealed segments beyond MaxSegments-1, and opens a fresh current.
func (w *writer) rotate() error {
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("flightrec: close: %w", err)
	}
	ts := w.firstTS
	if ts == 0 {
		ts = time.Now().UnixNano()
	}
	sealed := filepath.Join(w.cfg.Dir, fmt.Sprintf("flight-%020d.exfr", ts))
	if err := os.Rename(filepath.Join(w.cfg.Dir, currentName), sealed); err != nil {
		return fmt.Errorf("flightrec: seal: %w", err)
	}
	w.prune()
	return w.openSegment()
}

// sealStale preserves a current segment left behind by a previous
// process (the crash case): it is sealed under its first record's
// timestamp before openSegment would truncate it.
func (w *writer) sealStale() error {
	cur := filepath.Join(w.cfg.Dir, currentName)
	data, err := os.ReadFile(cur)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("flightrec: %w", err)
	}
	ts := time.Now().UnixNano()
	if recs, _ := DecodeSegment(data); len(recs) > 0 {
		ts = recs[0].UnixNanos
	}
	sealed := filepath.Join(w.cfg.Dir, fmt.Sprintf("flight-%020d.exfr", ts))
	if err := os.Rename(cur, sealed); err != nil {
		return fmt.Errorf("flightrec: seal stale: %w", err)
	}
	w.prune()
	return nil
}

// prune removes the oldest sealed segments beyond MaxSegments-1
// (leaving room for the current segment). Sealed names embed
// zero-padded nanosecond stamps, so lexical order is age order.
func (w *writer) prune() {
	sealed, err := sealedSegments(w.cfg.Dir)
	if err != nil {
		return // pruning is best-effort; the writer must keep recording
	}
	for len(sealed) > w.cfg.MaxSegments-1 {
		os.Remove(sealed[0])
		sealed = sealed[1:]
	}
}

// sealedSegments lists the sealed segment paths oldest-first.
func sealedSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if name == currentName || !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".exfr") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out, nil
}
