// Package flightrec is the gateway's flight recorder: an always-on,
// crash-safe binary journal of the events that matter in a post-mortem
// — admission verdicts with their margins, health transitions, retrain
// and snapshot events, ingest-ring drops, SLO breaches. The datapath
// side is a single by-value publish into a bounded lock-free ring
// (zero allocations, no locks, drops counted under overload — a flight
// recorder must never become backpressure); a background writer drains
// the ring and spills fixed-width 48-byte records into size-capped
// segment files under the internal/snapshot envelope discipline
// (magic/version, CRC-32C per frame, atomic rename rotation), so after
// a SIGKILL every fully-written frame decodes and `exlog` can replay
// exactly what the daemon did last.
package flightrec

import (
	"sync"
	"sync/atomic"
	"time"

	"exbox/internal/ring"
)

// Kind tags what a record describes.
type Kind uint8

const (
	// KindAdmission is one admission decision; Seq matches the audit
	// ring's sequence for the same decision, Value is the SVM margin,
	// Aux the normalized depth, Verdict the disposition.
	KindAdmission Kind = 1
	// KindHealth is a health-status transition; Value is the new
	// status (0 green / 1 yellow / 2 red), Aux the previous one.
	KindHealth Kind = 2
	// KindRetrain is a completed background refit; Model is the new
	// model version, Value the fit latency in seconds.
	KindRetrain Kind = 3
	// KindSnapshot is a model-snapshot save (Verdict 0) or load
	// (Verdict 1) or rejected load (Verdict 2); Model is the model
	// version involved when known.
	KindSnapshot Kind = 4
	// KindRingDrop reports ingest-ring drops; Value is how many drops
	// were newly observed since the last such record.
	KindRingDrop Kind = 5
	// KindSLOBreach is an SLO burn-rate alert transition; Value is the
	// fast-window burn rate, Aux the slow-window burn rate, Verdict the
	// new severity (1 yellow, 2 red, 0 recovered).
	KindSLOBreach Kind = 6
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindAdmission:
		return "admission"
	case KindHealth:
		return "health"
	case KindRetrain:
		return "retrain"
	case KindSnapshot:
		return "snapshot"
	case KindRingDrop:
		return "ringdrop"
	case KindSLOBreach:
		return "slobreach"
	default:
		return "unknown"
	}
}

// KindFromString inverts String (empty Kind 0 for unknown names).
func KindFromString(s string) Kind {
	for k := KindAdmission; k <= KindSLOBreach; k++ {
		if k.String() == s {
			return k
		}
	}
	return 0
}

// Admission-verdict values (mirroring exboxcore's Verdict order, which
// flightrec cannot import — exboxcore imports flightrec).
const (
	VerdictAdmit       = 0
	VerdictReject      = 1
	VerdictLowPriority = 2
)

// VerdictString renders an admission verdict value.
func VerdictString(v uint8) string {
	switch v {
	case VerdictAdmit:
		return "admit"
	case VerdictReject:
		return "reject"
	case VerdictLowPriority:
		return "low-priority"
	default:
		return "unknown"
	}
}

// FlagBootstrap marks an admission decided during the classifier's
// bootstrap phase.
const FlagBootstrap uint8 = 1 << 0

// Record is one fixed-width flight-recorder event. Cell is an index
// into the recorder's interned cell-name table (0 = no cell); the
// writer journals the table alongside the records so decoders can
// resolve names. The fixed 48-byte wire shape (see recordSize) is what
// keeps the hot-path enqueue a single by-value ring publish.
type Record struct {
	UnixNanos int64
	Seq       uint64 // audit-ring sequence for admissions, else 0
	Model     uint64 // classifier model version when known
	Value     float64
	Aux       float64
	Cell      uint16
	Class     int8
	Level     int8
	Kind      Kind
	Verdict   uint8
	Flags     uint8
}

// Recorder is the in-process side: a bounded MPSC ring any number of
// producers publish into plus the interned cell-name table. Construct
// with NewRecorder; all producer-side methods are nil-safe no-ops so
// instrumented code runs unchanged when no recorder is wired.
type Recorder struct {
	ring  *ring.MPSC[Record]
	wake  chan struct{}
	drops atomic.Uint64

	// The cell table interns cell names once, off the hot path (at
	// instrumentation time), so hot-path records carry a uint16.
	mu      sync.Mutex
	cellIdx map[string]uint16
	cells   []string
}

// NewRecorder returns a recorder whose ring holds capacity records
// (rounded up to a power of two; <= 0 defaults to 65536). Size the
// ring for the burst the background writer must absorb: a full ring
// drops records (counted), it never blocks a producer.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &Recorder{
		ring:    ring.New[Record](capacity),
		wake:    make(chan struct{}, 1),
		cellIdx: map[string]uint16{"": 0},
		cells:   []string{""},
	}
}

// CellIndex interns a cell name and returns its table index (0 is
// reserved for "no cell"). Call at wiring time, not on the hot path;
// the table is append-only and capped at 65535 entries (overflow maps
// to 0). Nil-safe.
func (r *Recorder) CellIndex(name string) uint16 {
	if r == nil || name == "" {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.cellIdx[name]; ok {
		return i
	}
	if len(r.cells) > 0xFFFF {
		return 0
	}
	i := uint16(len(r.cells))
	r.cellIdx[name] = i
	r.cells = append(r.cells, name)
	return i
}

// cellTable snapshots the interned names (index = position).
func (r *Recorder) cellTable() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.cells...)
}

// cellCount returns how many names are interned.
func (r *Recorder) cellCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cells)
}

// Record publishes one event: a time stamp (when the caller didn't
// provide one), one lock-free ring publish, and at most one
// non-blocking channel send to wake the writer. No locks, no
// allocations — safe on the unsampled admission path. A full ring
// counts a drop and moves on. Nil-safe.
func (r *Recorder) Record(rec Record) {
	if r == nil {
		return
	}
	if rec.UnixNanos == 0 {
		rec.UnixNanos = time.Now().UnixNano()
	}
	pushed, wake := r.ring.TryPushWake(rec)
	if !pushed {
		r.drops.Add(1)
		return
	}
	if wake {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// Drops returns how many records the ring rejected because the writer
// fell behind. Nil-safe.
func (r *Recorder) Drops() uint64 {
	if r == nil {
		return 0
	}
	return r.drops.Load()
}

// Depth returns the ring's current backlog estimate. Nil-safe.
func (r *Recorder) Depth() int {
	if r == nil {
		return 0
	}
	return r.ring.Depth()
}
