package flightrec

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// runWriter starts RunWriter on a fresh goroutine and returns a stop
// function that shuts it down and reports its error.
func runWriter(t *testing.T, r *Recorder, cfg WriterConfig) (stop func() error) {
	t.Helper()
	done := make(chan struct{})
	errc := make(chan error, 1)
	go func() { errc <- r.RunWriter(cfg, done) }()
	var once bool
	return func() error {
		if once {
			return nil
		}
		once = true
		close(done)
		select {
		case err := <-errc:
			return err
		case <-time.After(5 * time.Second):
			t.Fatal("writer did not stop")
			return nil
		}
	}
}

// TestRoundTrip records a spread of event kinds, stops the writer and
// decodes the directory: every record must come back bit-for-bit with
// its cell name resolved.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(1 << 10)
	ap0 := r.CellIndex("ap0")
	ap1 := r.CellIndex("ap/1")
	stop := runWriter(t, r, WriterConfig{Dir: dir})

	in := []Record{
		{UnixNanos: 10, Seq: 1, Model: 3, Value: -0.25, Aux: 0.5, Cell: ap0, Class: 2, Level: 1, Kind: KindAdmission, Verdict: VerdictReject, Flags: FlagBootstrap},
		{UnixNanos: 20, Cell: ap1, Kind: KindHealth, Value: 2, Aux: 0},
		{UnixNanos: 30, Cell: ap0, Kind: KindRetrain, Model: 4, Value: 0.012},
		{UnixNanos: 40, Cell: ap0, Kind: KindSnapshot, Model: 4, Verdict: 0},
		{UnixNanos: 50, Kind: KindRingDrop, Value: 17},
		{UnixNanos: 60, Cell: ap1, Kind: KindSLOBreach, Verdict: 2, Value: 8.5, Aux: 6.1},
	}
	for _, rec := range in {
		r.Record(rec)
	}
	if err := stop(); err != nil {
		t.Fatalf("writer: %v", err)
	}

	out, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("records: got %d, want %d", len(out), len(in))
	}
	for i, want := range in {
		if out[i].Record != want {
			t.Errorf("record %d: got %+v, want %+v", i, out[i].Record, want)
		}
	}
	if out[0].CellName != "ap0" || out[1].CellName != "ap/1" || out[4].CellName != "" {
		t.Fatalf("cell names: %q %q %q", out[0].CellName, out[1].CellName, out[4].CellName)
	}
	if r.Drops() != 0 {
		t.Fatalf("drops: %d", r.Drops())
	}
}

// TestRecordStampsAndDrops pins the producer contract: a zero
// timestamp is stamped at publish, a full ring counts a drop instead
// of blocking, and every producer-side method is nil-safe.
func TestRecordStampsAndDrops(t *testing.T) {
	r := NewRecorder(2) // ring.New rounds up; keep it tiny
	capacity := 0
	for {
		before := r.Depth()
		r.Record(Record{Kind: KindRingDrop})
		if r.Depth() == before {
			break
		}
		capacity++
	}
	if r.Drops() != 1 {
		t.Fatalf("drops after overfill: %d", r.Drops())
	}
	// Drain one and check the stamp was filled in.
	var batch [1]Record
	if n := r.ring.Drain(batch[:]); n != 1 || batch[0].UnixNanos == 0 {
		t.Fatalf("drained %d, stamp %d", n, batch[0].UnixNanos)
	}

	var nilRec *Recorder
	nilRec.Record(Record{})
	if nilRec.CellIndex("x") != 0 || nilRec.Drops() != 0 || nilRec.Depth() != 0 {
		t.Fatal("nil recorder not a no-op")
	}
}

// TestCellInterning pins index stability, the reserved zero index and
// the overflow clamp path's determinism.
func TestCellInterning(t *testing.T) {
	r := NewRecorder(16)
	a := r.CellIndex("ap0")
	b := r.CellIndex("ap1")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("indices: %d %d", a, b)
	}
	if r.CellIndex("ap0") != a {
		t.Fatal("re-intern changed index")
	}
	if r.CellIndex("") != 0 {
		t.Fatal("empty name must map to 0")
	}
	if got := r.cellTable(); len(got) != 3 || got[0] != "" || got[a] != "ap0" || got[b] != "ap1" {
		t.Fatalf("table: %v", got)
	}
}

// TestDecodeTruncatedTail cuts a valid segment at every byte offset:
// DecodeSegment must never panic, must return ErrCorrupt only for
// header damage, and for mid-stream cuts must return ErrTruncated with
// every fully-written frame's records intact.
func TestDecodeTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(64)
	ap0 := r.CellIndex("ap0")
	stop := runWriter(t, r, WriterConfig{Dir: dir})
	for i := 0; i < 5; i++ {
		r.Record(Record{UnixNanos: int64(i + 1), Seq: uint64(i), Cell: ap0, Kind: KindAdmission})
	}
	if err := stop(); err != nil {
		t.Fatalf("writer: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		t.Fatal(err)
	}
	full, err := DecodeSegment(data)
	if err != nil || len(full) != 5 {
		t.Fatalf("clean decode: %d records, %v", len(full), err)
	}

	for cut := 0; cut < len(data); cut++ {
		recs, err := DecodeSegment(data[:cut])
		if cut < headerSize {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut %d: err %v, want ErrCorrupt", cut, err)
			}
			continue
		}
		// A cut landing exactly on a frame boundary decodes cleanly (the
		// prefix really is a complete segment); anywhere else must be
		// flagged as truncated.
		if err != nil && !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut %d: err %v, want nil or ErrTruncated", cut, err)
		}
		// Whatever decoded must be a strict prefix of the full decode.
		if len(recs) > len(full) {
			t.Fatalf("cut %d: %d records from a %d-record segment", cut, len(recs), len(full))
		}
		for i, rec := range recs {
			if rec != full[i] {
				t.Fatalf("cut %d: record %d diverged", cut, i)
			}
		}
	}
}

// TestDecodeByteFlips flips each byte of a segment: decode must never
// panic and never silently accept a damaged frame — every flip either
// fails (truncated/corrupt) or, when it lands in an already-undecoded
// region, changes nothing.
func TestDecodeByteFlips(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(64)
	r.CellIndex("ap0")
	stop := runWriter(t, r, WriterConfig{Dir: dir})
	for i := 0; i < 3; i++ {
		r.Record(Record{UnixNanos: int64(i + 1), Kind: KindAdmission, Cell: 1})
	}
	if err := stop(); err != nil {
		t.Fatalf("writer: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, currentName))
	if err != nil {
		t.Fatal(err)
	}
	full, _ := DecodeSegment(data)

	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20
		recs, err := DecodeSegment(mut) // must not panic
		if err == nil && len(recs) == len(full) {
			same := true
			for j := range recs {
				if recs[j] != full[j] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("flip at %d decoded identically with nil error — CRC hole", i)
			}
		}
	}
}

// TestRotationAndPrune forces tiny segments: the writer must seal by
// rename, cap the directory at MaxSegments, keep newest data, and
// journal the cell table into every segment so sealed files decode
// standalone.
func TestRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	r := NewRecorder(1 << 10)
	ap0 := r.CellIndex("ap0")
	stop := runWriter(t, r, WriterConfig{Dir: dir, SegmentBytes: 256, MaxSegments: 3})
	const total = 200
	for i := 0; i < total; i++ {
		r.Record(Record{UnixNanos: int64(i + 1), Seq: uint64(i), Cell: ap0, Kind: KindAdmission})
		if i%20 == 0 {
			time.Sleep(2 * time.Millisecond) // let the writer interleave drains
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("writer: %v", err)
	}

	sealed, err := sealedSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sealed) == 0 || len(sealed) > 2 { // MaxSegments 3 = 2 sealed + current
		t.Fatalf("sealed segments: %d (%v)", len(sealed), sealed)
	}
	// Every sealed segment decodes standalone with resolved cell names.
	for _, p := range sealed {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := DecodeSegment(data)
		if err != nil || len(recs) == 0 {
			t.Fatalf("%s: %d records, %v", p, len(recs), err)
		}
		for _, rec := range recs {
			if rec.CellName != "ap0" {
				t.Fatalf("%s: unresolved cell %q", p, rec.CellName)
			}
		}
	}
	// The merged view ends with the newest record, in order.
	recs, err := ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(recs) == 0 || recs[len(recs)-1].Seq != total-1 {
		t.Fatalf("newest record missing: %d records, last seq %d", len(recs), recs[len(recs)-1].Seq)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].UnixNanos < recs[i-1].UnixNanos {
			t.Fatalf("unsorted merge at %d", i)
		}
	}
}

// TestSealStale simulates a crash-restart: a leftover current segment
// must be sealed (preserved under its first stamp), not truncated, and
// the next writer's records must merge after it.
func TestSealStale(t *testing.T) {
	dir := t.TempDir()

	r1 := NewRecorder(64)
	r1.CellIndex("ap0")
	stop1 := runWriter(t, r1, WriterConfig{Dir: dir})
	r1.Record(Record{UnixNanos: 100, Seq: 1, Cell: 1, Kind: KindAdmission})
	if err := stop1(); err != nil {
		t.Fatalf("writer 1: %v", err)
	}
	// Simulate the torn tail a kill -9 leaves: append garbage that the
	// next decode must flag but survive.
	cur := filepath.Join(dir, currentName)
	f, err := os.OpenFile(cur, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{frameRecords, 0xFF, 0xFF})
	f.Close()

	r2 := NewRecorder(64)
	r2.CellIndex("ap0")
	stop2 := runWriter(t, r2, WriterConfig{Dir: dir})
	r2.Record(Record{UnixNanos: 200, Seq: 2, Cell: 1, Kind: KindAdmission})
	if err := stop2(); err != nil {
		t.Fatalf("writer 2: %v", err)
	}

	recs, err := ReadDir(dir)
	if err == nil || !errors.Is(err, ErrTruncated) {
		t.Fatalf("expected truncation report from the stale segment, got %v", err)
	}
	if len(recs) != 2 || recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("merged records: %+v", recs)
	}
	sealed, _ := sealedSegments(dir)
	if len(sealed) != 1 || !strings.Contains(sealed[0], fmt.Sprintf("%020d", 100)) {
		t.Fatalf("stale segment not sealed under its first stamp: %v", sealed)
	}
}

// TestRecordZeroAlloc pins the producer publish at zero allocations —
// the property that lets the unsampled admission path journal every
// verdict for free.
func TestRecordZeroAlloc(t *testing.T) {
	r := NewRecorder(1 << 16)
	cell := r.CellIndex("ap0")
	rec := Record{UnixNanos: 1, Seq: 9, Cell: cell, Kind: KindAdmission, Value: 0.5}
	if n := testing.AllocsPerRun(1000, func() { r.Record(rec) }); n != 0 {
		t.Fatalf("Record allocates %v/op, want 0", n)
	}
}

// TestKindStrings pins the Kind/verdict name round-trips exlog's
// filters rely on.
func TestKindStrings(t *testing.T) {
	for k := KindAdmission; k <= KindSLOBreach; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Fatalf("kind %d round-trips to %d via %q", k, got, k.String())
		}
	}
	if KindFromString("nope") != 0 || KindFromString("") != 0 {
		t.Fatal("unknown kind must map to 0")
	}
	for v, want := range map[uint8]string{0: "admit", 1: "reject", 2: "low-priority", 9: "unknown"} {
		if got := VerdictString(v); got != want {
			t.Fatalf("verdict %d: %q, want %q", v, got, want)
		}
	}
}
