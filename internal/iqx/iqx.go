// Package iqx implements the IQX hypothesis of Fiedler, Hossfeld and
// Tran-Gia — "a generic quantitative relationship between quality of
// experience and quality of service" — used by ExBox's QoE Estimator:
//
//	QoE = α + β·exp(−γ·QoS)
//
// Each application class gets its own fitted (α, β, γ). The package
// provides evaluation, inversion, and least-squares fitting from
// (QoS, QoE) observations collected on a training device, via
// Gauss-Newton with Levenberg-style damping and a multistart grid over
// γ to escape the model's flat regions.
package iqx

import (
	"errors"
	"fmt"
	"math"

	"exbox/internal/mathx"
)

// Model holds fitted IQX parameters for one application class.
type Model struct {
	Alpha float64 // asymptotic QoE as QoS → ∞
	Beta  float64 // QoE swing: Model at QoS=0 is Alpha+Beta
	Gamma float64 // sensitivity of QoE to QoS
}

// Eval returns the modeled QoE at the given scalar QoS.
func (m Model) Eval(qos float64) float64 {
	return m.Alpha + m.Beta*math.Exp(-m.Gamma*qos)
}

// Invert returns the QoS at which the model crosses the given QoE, or
// an error when the target lies outside the model's range. It is used
// to translate administrator QoE thresholds into QoS thresholds.
func (m Model) Invert(qoe float64) (float64, error) {
	if m.Beta == 0 || m.Gamma == 0 {
		return 0, errors.New("iqx: model is constant, cannot invert")
	}
	ratio := (qoe - m.Alpha) / m.Beta
	if ratio <= 0 {
		return 0, fmt.Errorf("iqx: QoE %v unreachable (asymptote %v)", qoe, m.Alpha)
	}
	return -math.Log(ratio) / m.Gamma, nil
}

// Decreasing reports whether higher QoS improves the metric by
// lowering it (true for delay-like QoE metrics such as page load time
// or startup delay, where β > 0) as opposed to raising it (PSNR-like,
// β < 0).
func (m Model) Decreasing() bool { return m.Beta > 0 }

// String renders the model for logs and EXPERIMENTS.md.
func (m Model) String() string {
	return fmt.Sprintf("QoE = %.4g + %.4g·exp(−%.4g·QoS)", m.Alpha, m.Beta, m.Gamma)
}

// FitResult bundles a fitted model with its goodness of fit.
type FitResult struct {
	Model Model
	RMSE  float64
}

// Fit estimates (α, β, γ) from paired observations by nonlinear least
// squares. For each candidate γ on a log grid, the conditionally linear
// parameters (α, β) are solved in closed form; the best candidate then
// seeds a damped Gauss-Newton refinement over all three parameters.
//
// At least three distinct QoS values are required.
func Fit(qos, qoe []float64) (FitResult, error) {
	if len(qos) != len(qoe) {
		return FitResult{}, fmt.Errorf("iqx: %d QoS values but %d QoE values", len(qos), len(qoe))
	}
	if len(qos) < 3 {
		return FitResult{}, errors.New("iqx: need at least 3 observations")
	}
	distinct := map[float64]struct{}{}
	for _, q := range qos {
		distinct[q] = struct{}{}
	}
	if len(distinct) < 3 {
		return FitResult{}, errors.New("iqx: need at least 3 distinct QoS values")
	}

	span := mathx.Max(qos) - mathx.Min(qos)
	if span <= 0 {
		return FitResult{}, errors.New("iqx: QoS values have no spread")
	}

	best := FitResult{RMSE: math.Inf(1)}
	// γ grid: decay lengths from 100× the span down to 1/100 of it.
	for _, g := range mathx.Linspace(-2, 2, 41) {
		gamma := math.Pow(10, g) / span
		alpha, beta, ok := linearFit(qos, qoe, gamma)
		if !ok {
			continue
		}
		cand := Model{Alpha: alpha, Beta: beta, Gamma: gamma}
		if r := rmse(cand, qos, qoe); r < best.RMSE {
			best = FitResult{Model: cand, RMSE: r}
		}
	}
	if math.IsInf(best.RMSE, 1) {
		return FitResult{}, errors.New("iqx: no viable starting point")
	}
	refined := gaussNewton(best.Model, qos, qoe)
	if r := rmse(refined, qos, qoe); r < best.RMSE {
		best = FitResult{Model: refined, RMSE: r}
	}
	return best, nil
}

// linearFit solves for (α, β) given a fixed γ.
func linearFit(qos, qoe []float64, gamma float64) (alpha, beta float64, ok bool) {
	rows := make([][]float64, len(qos))
	for i, q := range qos {
		rows[i] = []float64{1, math.Exp(-gamma * q)}
	}
	coef, err := mathx.LeastSquares(rows, qoe)
	if err != nil {
		return 0, 0, false
	}
	return coef[0], coef[1], true
}

func rmse(m Model, qos, qoe []float64) float64 {
	pred := make([]float64, len(qos))
	for i, q := range qos {
		pred[i] = m.Eval(q)
	}
	return mathx.RMSE(pred, qoe)
}

// gaussNewton refines the model with a damped Gauss-Newton iteration on
// the residuals r_i = m(qos_i) − qoe_i.
func gaussNewton(m Model, qos, qoe []float64) Model {
	lambda := 1e-3
	cur := m
	curErr := rmse(cur, qos, qoe)
	for iter := 0; iter < 100; iter++ {
		// Jacobian: ∂r/∂α = 1, ∂r/∂β = e^{−γq}, ∂r/∂γ = −β q e^{−γq}.
		jtj := make([][]float64, 3)
		for i := range jtj {
			jtj[i] = make([]float64, 3)
		}
		jtr := make([]float64, 3)
		for i, q := range qos {
			e := math.Exp(-cur.Gamma * q)
			j := [3]float64{1, e, -cur.Beta * q * e}
			r := cur.Eval(q) - qoe[i]
			for a := 0; a < 3; a++ {
				jtr[a] += j[a] * r
				for b := 0; b < 3; b++ {
					jtj[a][b] += j[a] * j[b]
				}
			}
		}
		for a := 0; a < 3; a++ {
			jtj[a][a] *= 1 + lambda
		}
		step, err := mathx.SolveLinear(jtj, jtr)
		if err != nil {
			break
		}
		next := Model{
			Alpha: cur.Alpha - step[0],
			Beta:  cur.Beta - step[1],
			Gamma: cur.Gamma - step[2],
		}
		nextErr := rmse(next, qos, qoe)
		if math.IsNaN(nextErr) || nextErr >= curErr {
			lambda *= 10
			if lambda > 1e8 {
				break
			}
			continue
		}
		improvement := curErr - nextErr
		cur, curErr = next, nextErr
		lambda = math.Max(lambda/10, 1e-12)
		if improvement < 1e-10*(1+curErr) {
			break
		}
	}
	return cur
}
