package iqx

import (
	"math"
	"testing"
	"testing/quick"

	"exbox/internal/mathx"
)

func TestEval(t *testing.T) {
	m := Model{Alpha: 1, Beta: 9, Gamma: 2}
	if got := m.Eval(0); got != 10 {
		t.Fatalf("Eval(0) = %v, want 10", got)
	}
	if got := m.Eval(1000); math.Abs(got-1) > 1e-9 {
		t.Fatalf("Eval(∞) = %v, want → 1", got)
	}
}

func TestInvert(t *testing.T) {
	m := Model{Alpha: 1, Beta: 9, Gamma: 2}
	q, err := m.Invert(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Eval(q); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Eval(Invert(5)) = %v", got)
	}
	if _, err := m.Invert(0.5); err == nil {
		t.Fatal("expected error below asymptote")
	}
	if _, err := (Model{Alpha: 1}).Invert(1); err == nil {
		t.Fatal("expected error for constant model")
	}
}

func TestDecreasing(t *testing.T) {
	if !(Model{Beta: 3}).Decreasing() {
		t.Fatal("positive beta should be Decreasing")
	}
	if (Model{Beta: -3}).Decreasing() {
		t.Fatal("negative beta should not be Decreasing")
	}
}

func TestString(t *testing.T) {
	if (Model{Alpha: 1, Beta: 2, Gamma: 3}).String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestFitRecoversExactModel(t *testing.T) {
	truth := Model{Alpha: 2, Beta: 12, Gamma: 0.8}
	qos := mathx.Linspace(0, 10, 40)
	qoe := make([]float64, len(qos))
	for i, q := range qos {
		qoe[i] = truth.Eval(q)
	}
	res, err := Fit(qos, qoe)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 1e-6 {
		t.Fatalf("RMSE = %v on noiseless data, want ~0 (model %v)", res.RMSE, res.Model)
	}
	if math.Abs(res.Model.Alpha-truth.Alpha) > 1e-3 ||
		math.Abs(res.Model.Beta-truth.Beta) > 1e-3 ||
		math.Abs(res.Model.Gamma-truth.Gamma) > 1e-3 {
		t.Fatalf("recovered %v, want %v", res.Model, truth)
	}
}

func TestFitNegativeBeta(t *testing.T) {
	// PSNR-like metric: grows with QoS toward an asymptote.
	truth := Model{Alpha: 35, Beta: -30, Gamma: 1.5}
	qos := mathx.Linspace(0, 5, 30)
	qoe := make([]float64, len(qos))
	for i, q := range qos {
		qoe[i] = truth.Eval(q)
	}
	res, err := Fit(qos, qoe)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 1e-5 {
		t.Fatalf("RMSE = %v, model %v", res.RMSE, res.Model)
	}
	if res.Model.Decreasing() {
		t.Fatal("fit should preserve increasing QoE shape")
	}
}

func TestFitWithNoise(t *testing.T) {
	truth := Model{Alpha: 1, Beta: 10, Gamma: 0.5}
	rng := mathx.NewRand(3)
	var qos, qoe []float64
	for i := 0; i < 200; i++ {
		q := rng.Float64() * 12
		qos = append(qos, q)
		qoe = append(qoe, truth.Eval(q)+rng.NormFloat64()*0.4)
	}
	res, err := Fit(qos, qoe)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 0.6 {
		t.Fatalf("noisy RMSE = %v, want <= 0.6", res.RMSE)
	}
	// Parameters should land near the truth despite noise.
	if math.Abs(res.Model.Alpha-truth.Alpha) > 0.5 ||
		math.Abs(res.Model.Gamma-truth.Gamma) > 0.3 {
		t.Fatalf("fit %v too far from truth %v", res.Model, truth)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for too few points")
	}
	if _, err := Fit([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("expected error for no distinct QoS")
	}
}

func TestFitConstantData(t *testing.T) {
	// Flat QoE: fit should succeed with β ≈ 0 and near-zero RMSE.
	qos := mathx.Linspace(0, 10, 20)
	qoe := make([]float64, len(qos))
	for i := range qoe {
		qoe[i] = 5
	}
	res, err := Fit(qos, qoe)
	if err != nil {
		t.Fatal(err)
	}
	if res.RMSE > 1e-8 {
		t.Fatalf("flat-data RMSE = %v", res.RMSE)
	}
	if math.Abs(res.Model.Eval(3)-5) > 1e-6 {
		t.Fatalf("flat fit evaluates to %v", res.Model.Eval(3))
	}
}

// Property: fitted model never has larger RMSE than the best grid
// candidate would, and round-tripping Eval∘Invert is the identity in
// the reachable range.
func TestQuickFitInvertRoundTrip(t *testing.T) {
	rng := mathx.NewRand(5)
	f := func() bool {
		truth := Model{
			Alpha: rng.Float64() * 10,
			Beta:  1 + rng.Float64()*20,
			Gamma: 0.1 + rng.Float64()*2,
		}
		qos := mathx.Linspace(0, 8, 25)
		qoe := make([]float64, len(qos))
		for i, q := range qos {
			qoe[i] = truth.Eval(q)
		}
		res, err := Fit(qos, qoe)
		if err != nil || res.RMSE > 1e-4 {
			return false
		}
		m := res.Model
		for _, q := range []float64{0.5, 2, 5} {
			v := m.Eval(q)
			back, err := m.Invert(v)
			if err != nil || math.Abs(back-q) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eval is monotone in QoS (direction given by sign of beta).
func TestQuickEvalMonotone(t *testing.T) {
	rng := mathx.NewRand(6)
	f := func() bool {
		m := Model{
			Alpha: rng.NormFloat64() * 5,
			Beta:  rng.NormFloat64() * 10,
			Gamma: rng.Float64() * 3,
		}
		prev := m.Eval(0)
		for q := 0.2; q <= 10; q += 0.2 {
			v := m.Eval(q)
			if m.Beta > 0 && v > prev+1e-12 {
				return false
			}
			if m.Beta < 0 && v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
