package traffic

import (
	"math/rand"
	"sort"

	"exbox/internal/excr"
	"exbox/internal/mathx"
)

// Packet is one packet of a synthetic application trace. Traces stand
// in for the paper's real captures (a Skype video call, a YouTube HD
// session, a BBC page load) and feed both the flow classifier's
// training and the examples' replay plumbing.
type Packet struct {
	TimeSec float64 // offset from the start of the trace
	Bytes   int     // wire size
	Up      bool    // true for client→server (uplink) packets
}

// Trace is a time-ordered packet sequence of one application flow.
type Trace struct {
	Class   excr.AppClass
	Packets []Packet
}

// Duration returns the timestamp of the last packet, or 0 for an empty
// trace.
func (t Trace) Duration() float64 {
	if len(t.Packets) == 0 {
		return 0
	}
	return t.Packets[len(t.Packets)-1].TimeSec
}

// Bytes returns the total wire bytes in the trace.
func (t Trace) Bytes() int {
	var n int
	for _, p := range t.Packets {
		n += p.Bytes
	}
	return n
}

// Synthesize returns a class-typical trace of roughly the given
// duration. The signatures are deliberately distinct, mirroring what
// first-packet classifiers exploit in real traffic:
//
//   - Web: a few small uplink requests, each answered by a short burst
//     of full-size downlink packets, then silence.
//   - Streaming: periodic multi-packet chunk downloads of full-size
//     packets with tiny uplink ACK-like traffic.
//   - Conferencing: steady ~30 packets/s in both directions, mid-size
//     downlink frames and smaller uplink frames.
func Synthesize(class excr.AppClass, durationSec float64, rng *rand.Rand) Trace {
	var pkts []Packet
	switch class {
	case excr.Web:
		t := 0.0
		for t < durationSec {
			// Request.
			pkts = append(pkts, Packet{TimeSec: t, Bytes: 300 + rng.Intn(200), Up: true})
			// Response burst: a heavy-tailed object size.
			objBytes := int(mathx.Pareto(rng, 1.3, 20e3, 600e3))
			burstT := t + 0.03 + rng.Float64()*0.05
			for sent := 0; sent < objBytes; sent += 1400 {
				pkts = append(pkts, Packet{TimeSec: burstT, Bytes: 1400, Up: false})
				burstT += 0.001 + rng.Float64()*0.002
			}
			// Think time before the next object/page.
			t = burstT + 0.5 + mathx.Exponential(rng, 2.0)
		}
	case excr.Streaming:
		t := 0.2
		for t < durationSec {
			// One media chunk every ~2 s.
			chunkBytes := 500e3 + rng.Float64()*200e3
			burstT := t
			for sent := 0.0; sent < chunkBytes; sent += 1400 {
				pkts = append(pkts, Packet{TimeSec: burstT, Bytes: 1400, Up: false})
				burstT += 0.0005 + rng.Float64()*0.0005
			}
			// Sparse uplink acknowledgements.
			pkts = append(pkts, Packet{TimeSec: burstT, Bytes: 80, Up: true})
			t += 1.8 + rng.Float64()*0.4
		}
	case excr.Conferencing:
		const fps = 30.0
		for t := 0.0; t < durationSec; t += 1 / fps {
			jitter := rng.Float64() * 0.004
			pkts = append(pkts, Packet{TimeSec: t + jitter, Bytes: 700 + rng.Intn(500), Up: false})
			pkts = append(pkts, Packet{TimeSec: t + jitter + 0.002, Bytes: 200 + rng.Intn(200), Up: true})
		}
	default:
		// Unknown classes synthesize a generic low-rate stream.
		for t := 0.0; t < durationSec; t += 0.1 {
			pkts = append(pkts, Packet{TimeSec: t, Bytes: 500, Up: false})
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].TimeSec < pkts[j].TimeSec })
	return Trace{Class: class, Packets: pkts}
}

// Merge interleaves several traces into one time-ordered packet
// sequence tagged by source index — the tcpreplay-style injector that
// feeds merged per-class traces into the simulator.
func Merge(traces []Trace) []TaggedPacket {
	var out []TaggedPacket
	for i, tr := range traces {
		for _, p := range tr.Packets {
			out = append(out, TaggedPacket{Flow: i, Packet: p})
		}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].TimeSec < out[b].TimeSec })
	return out
}

// TaggedPacket is a packet attributed to the flow (trace index) it
// belongs to after merging.
type TaggedPacket struct {
	Flow int
	Packet
}
