// Package traffic generates the workloads the paper evaluates on: the
// Random traffic-matrix scheme, a generative stand-in for Rice
// University's LiveLab dataset, the arrival/departure event streams
// derived from matrix sequences, and synthetic per-class packet traces
// standing in for the Skype/YouTube/BBC captures replayed into ns-3.
package traffic

import (
	"math/rand"
	"sort"

	"exbox/internal/excr"
	"exbox/internal/mathx"
)

// Random generates n traffic matrices whose per-class counts change
// randomly and drastically between consecutive samples — the paper's
// Random scheme. Each class count is drawn uniformly, then the matrix
// is rejected if the total exceeds maxTotal (the testbed client
// limit); maxTotal <= 0 means unbounded with per-class counts up to
// perClassMax.
func Random(rng *rand.Rand, n, perClassMax, maxTotal int, space excr.Space) []excr.Matrix {
	if perClassMax < 1 {
		perClassMax = 1
	}
	out := make([]excr.Matrix, 0, n)
	for len(out) < n {
		m := excr.NewMatrix(space)
		for c := 0; c < space.Classes; c++ {
			count := rng.Intn(perClassMax + 1)
			if space.Levels == 1 {
				m = m.Set(excr.AppClass(c), 0, count)
			} else {
				// Scatter the class's flows across SNR levels.
				for i := 0; i < count; i++ {
					m = m.Inc(excr.AppClass(c), excr.SNRLevel(rng.Intn(space.Levels)))
				}
			}
		}
		if maxTotal > 0 && m.Total() > maxTotal {
			continue
		}
		out = append(out, m)
	}
	return out
}

// LiveLabConfig parameterizes the generative LiveLab-like workload.
// Defaults mirror the dataset the paper mined: 34 users, app usage
// dominated by web with streaming second and conferencing third, and
// clear diurnal activity.
type LiveLabConfig struct {
	Users    int
	Days     int
	Space    excr.Space
	MaxTotal int // drop change-points whose total exceeds this; 0 = keep all
}

// DefaultLiveLab returns the configuration that yields on the order of
// the paper's ≈1700 chronological traffic matrices per few days of
// usage.
func DefaultLiveLab() LiveLabConfig {
	return LiveLabConfig{Users: 34, Days: 3, Space: excr.DefaultSpace}
}

// session is one app usage interval of one user.
type session struct {
	start, end float64 // hours since epoch
	class      excr.AppClass
}

// LiveLab synthesizes a chronological sequence of traffic matrices
// from a generative model of the Rice LiveLab usage logs: each user
// starts app sessions at diurnally modulated random times; web
// sessions are frequent and short, streaming sessions longer,
// conferencing sessions rarer and longer still. Every session start or
// end is a change-point; the active-session counts per class at each
// change-point form the matrix sequence, exactly how the paper derived
// matrices from the real dataset.
func LiveLab(rng *rand.Rand, cfg LiveLabConfig) []excr.Matrix {
	if cfg.Users <= 0 || cfg.Days <= 0 {
		return nil
	}
	space := cfg.Space
	if !space.Valid() {
		space = excr.DefaultSpace
	}

	// Per-class behavior: relative popularity and mean duration.
	popularity := map[excr.AppClass]float64{
		excr.Web:          0.62,
		excr.Streaming:    0.28,
		excr.Conferencing: 0.10,
	}
	meanDurationH := map[excr.AppClass]float64{
		excr.Web:          6.0 / 60,  // ~6 min of browsing
		excr.Streaming:    12.0 / 60, // ~12 min of video
		excr.Conferencing: 25.0 / 60, // ~25 min calls
	}
	classes := []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}
	weights := make([]float64, len(classes))
	for i, c := range classes {
		weights[i] = popularity[c]
	}

	var sessions []session
	horizon := float64(cfg.Days) * 24
	for u := 0; u < cfg.Users; u++ {
		// Mean sessions per day varies by user (light vs heavy users).
		// Smartphone users open apps dozens of times a day; the mix
		// yields the multi-flow concurrency the dataset exhibits.
		perDay := 25 + rng.Float64()*30
		t := rng.Float64() * 24 / perDay
		for t < horizon {
			hour := t - 24*float64(int(t/24))
			if rng.Float64() < diurnal(hour) {
				class := classes[mathx.WeightedChoice(rng, weights)]
				dur := mathx.Exponential(rng, meanDurationH[class])
				sessions = append(sessions, session{start: t, end: t + dur, class: class})
			}
			t += mathx.Exponential(rng, 24/perDay)
		}
	}

	// Change-points: session boundaries in time order.
	type edge struct {
		at    float64
		class excr.AppClass
		delta int
	}
	var edges []edge
	for _, s := range sessions {
		edges = append(edges, edge{s.start, s.class, +1}, edge{s.end, s.class, -1})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].at < edges[j].at })

	counts := make([]int, space.Classes)
	var out []excr.Matrix
	for _, e := range edges {
		if int(e.class) < space.Classes {
			counts[e.class] += e.delta
			if counts[e.class] < 0 {
				counts[e.class] = 0
			}
		}
		m := excr.NewMatrix(space)
		for c, n := range counts {
			m = m.Set(excr.AppClass(c), 0, n)
		}
		if cfg.MaxTotal > 0 && m.Total() > cfg.MaxTotal {
			continue
		}
		out = append(out, m)
	}
	return out
}

// diurnal returns the session-start acceptance probability by local
// hour: quiet at night, busy across the day with an evening peak.
func diurnal(hour float64) float64 {
	switch {
	case hour < 7:
		return 0.15
	case hour < 9:
		return 0.6
	case hour < 17:
		return 0.8
	case hour < 22:
		return 1.0
	default:
		return 0.4
	}
}
