package traffic

import (
	"math/rand"

	"exbox/internal/excr"
)

// Event is one flow arrival: a flow of class Class at SNR level Level
// arrives while the network carries Before. It is exactly the X_m
// tuple the Admittance Classifier consumes.
type Event struct {
	Arrival excr.Arrival
}

// Arrivals derives the chronological arrival events implied by a
// matrix sequence: whenever a cell count rises between consecutive
// matrices, one arrival event per added flow is emitted, carrying the
// matrix as it stood just before that flow joined. Departures update
// the running state silently (they generate no classifier decisions).
//
// assignLevel maps each new flow to an SNR level; it receives the
// flow's class and must return a level valid for the space. For
// single-level spaces pass nil.
func Arrivals(seq []excr.Matrix, assignLevel func(excr.AppClass) excr.SNRLevel) []Event {
	if len(seq) == 0 {
		return nil
	}
	space := seq[0].Space()
	cur := excr.NewMatrix(space)
	var out []Event
	for _, target := range seq {
		// Departures first: flows leaving between samples free room.
		// The sequence fixes per-class totals; which SNR level loses a
		// flow is resolved deterministically (fullest level first).
		for c := 0; c < space.Classes; c++ {
			cls := excr.AppClass(c)
			for cur.ClassTotal(cls) > target.ClassTotal(cls) {
				cur = cur.Dec(cls, fullestLevel(cur, cls))
			}
		}
		// Arrivals: one event per added flow, carrying the pre-arrival
		// matrix.
		for c := 0; c < space.Classes; c++ {
			cls := excr.AppClass(c)
			for cur.ClassTotal(cls) < target.ClassTotal(cls) {
				lvl := excr.SNRLevel(0)
				if assignLevel != nil {
					lvl = assignLevel(cls)
				}
				out = append(out, Event{Arrival: excr.Arrival{Matrix: cur, Class: cls, Level: lvl}})
				cur = cur.Inc(cls, lvl)
			}
		}
	}
	return out
}

// fullestLevel returns the SNR level holding the most flows of the
// class (lowest index wins ties); used to pick which flow departs.
func fullestLevel(m excr.Matrix, c excr.AppClass) excr.SNRLevel {
	space := m.Space()
	best, bestN := excr.SNRLevel(0), -1
	for l := 0; l < space.Levels; l++ {
		if n := m.Get(c, excr.SNRLevel(l)); n > bestN {
			best, bestN = excr.SNRLevel(l), n
		}
	}
	return best
}

// RandomLevels returns an assignLevel function that places each new
// flow in a uniformly random SNR level, the paper's mixed-SNR
// methodology ("for each new flow, we randomly position the client in
// a high or low SNR location").
func RandomLevels(rng *rand.Rand, space excr.Space) func(excr.AppClass) excr.SNRLevel {
	return func(excr.AppClass) excr.SNRLevel {
		return excr.SNRLevel(rng.Intn(space.Levels))
	}
}
