package traffic

import (
	"bytes"
	"errors"
	"testing"

	"exbox/internal/excr"
	"exbox/internal/mathx"
)

func TestTraceRoundTrip(t *testing.T) {
	for _, class := range []excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing} {
		orig := Synthesize(class, 10, mathx.NewRand(int64(class)+1))
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("%v: %v", class, err)
		}
		if got.Class != orig.Class {
			t.Fatalf("class %v != %v", got.Class, orig.Class)
		}
		if len(got.Packets) != len(orig.Packets) {
			t.Fatalf("packet count %d != %d", len(got.Packets), len(orig.Packets))
		}
		for i := range got.Packets {
			g, o := got.Packets[i], orig.Packets[i]
			// Timestamps are quantized to microseconds by the format.
			if g.Bytes != o.Bytes || g.Up != o.Up {
				t.Fatalf("packet %d mismatch: %+v vs %+v", i, g, o)
			}
			if d := g.TimeSec - o.TimeSec; d < -1e-6 || d > 1e-6 {
				t.Fatalf("packet %d timestamp drift %v", i, d)
			}
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); !errors.Is(err, ErrBadTrace) {
		t.Fatal("bad magic should be ErrBadTrace")
	}
	// Valid header, truncated body.
	orig := Synthesize(excr.Web, 3, mathx.NewRand(9))
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadTrace(bytes.NewReader(cut)); !errors.Is(err, ErrBadTrace) {
		t.Fatalf("truncated body: err = %v, want ErrBadTrace", err)
	}
	// Empty input.
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should error")
	}
}

func TestWriteTraceRejectsNegative(t *testing.T) {
	bad := Trace{Class: excr.Web, Packets: []Packet{{TimeSec: -1, Bytes: 10}}}
	var buf bytes.Buffer
	if _, err := bad.WriteTo(&buf); !errors.Is(err, ErrBadTrace) {
		t.Fatal("negative time should be rejected")
	}
}

func TestReadTraceEmptyTrace(t *testing.T) {
	empty := Trace{Class: excr.Conferencing}
	var buf bytes.Buffer
	if _, err := empty.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Class != excr.Conferencing || len(got.Packets) != 0 {
		t.Fatalf("empty round trip wrong: %+v", got)
	}
}
