package traffic

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"exbox/internal/excr"
)

// This file implements a compact binary trace format ("pcap-lite") so
// synthetic traces can be captured once and replayed across runs and
// tools, the role tcpreplay-ready captures play in the paper's
// simulation pipeline.
//
// Layout (little endian):
//
//	magic   uint32  0x45584254 ("EXBT")
//	version uint16  1
//	class   uint16  application class
//	count   uint32  number of packets
//	packets count × { timeUs uint64; bytes uint32; flags uint8 }
//
// flags bit 0 = uplink.

const (
	traceMagic   = 0x45584254
	traceVersion = 1
)

// ErrBadTrace is returned when decoding malformed trace data.
var ErrBadTrace = errors.New("traffic: malformed trace")

// WriteTo serializes the trace in pcap-lite format.
func (t Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := write(uint32(traceMagic)); err != nil {
		return n, err
	}
	if err := write(uint16(traceVersion)); err != nil {
		return n, err
	}
	if err := write(uint16(t.Class)); err != nil {
		return n, err
	}
	if err := write(uint32(len(t.Packets))); err != nil {
		return n, err
	}
	for _, p := range t.Packets {
		if p.TimeSec < 0 || p.Bytes < 0 {
			return n, fmt.Errorf("%w: negative time or size", ErrBadTrace)
		}
		var flags uint8
		if p.Up {
			flags |= 1
		}
		if err := write(uint64(p.TimeSec * 1e6)); err != nil {
			return n, err
		}
		if err := write(uint32(p.Bytes)); err != nil {
			return n, err
		}
		if err := write(flags); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace decodes one pcap-lite trace.
func ReadTrace(r io.Reader) (Trace, error) {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return Trace{}, err
	}
	if magic != traceMagic {
		return Trace{}, fmt.Errorf("%w: bad magic %#x", ErrBadTrace, magic)
	}
	var version, class uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return Trace{}, err
	}
	if version != traceVersion {
		return Trace{}, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, version)
	}
	if err := binary.Read(br, binary.LittleEndian, &class); err != nil {
		return Trace{}, err
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return Trace{}, err
	}
	const maxPackets = 50_000_000 // sanity bound against corrupt headers
	if count > maxPackets {
		return Trace{}, fmt.Errorf("%w: packet count %d too large", ErrBadTrace, count)
	}
	tr := Trace{Class: excr.AppClass(class), Packets: make([]Packet, 0, count)}
	prev := -1.0
	for i := uint32(0); i < count; i++ {
		var timeUs uint64
		var size uint32
		var flags uint8
		if err := binary.Read(br, binary.LittleEndian, &timeUs); err != nil {
			return Trace{}, fmt.Errorf("%w: truncated at packet %d", ErrBadTrace, i)
		}
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return Trace{}, fmt.Errorf("%w: truncated at packet %d", ErrBadTrace, i)
		}
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return Trace{}, fmt.Errorf("%w: truncated at packet %d", ErrBadTrace, i)
		}
		ts := float64(timeUs) / 1e6
		if ts < prev {
			return Trace{}, fmt.Errorf("%w: timestamps not monotone at packet %d", ErrBadTrace, i)
		}
		prev = ts
		tr.Packets = append(tr.Packets, Packet{TimeSec: ts, Bytes: int(size), Up: flags&1 != 0})
	}
	return tr, nil
}
