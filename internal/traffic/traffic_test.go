package traffic

import (
	"testing"

	"exbox/internal/excr"
	"exbox/internal/mathx"
)

func TestRandomScheme(t *testing.T) {
	rng := mathx.NewRand(1)
	ms := Random(rng, 100, 5, 10, excr.DefaultSpace)
	if len(ms) != 100 {
		t.Fatalf("len = %d", len(ms))
	}
	for _, m := range ms {
		if m.Total() > 10 {
			t.Fatalf("matrix %v exceeds maxTotal", m)
		}
		for c := 0; c < 3; c++ {
			if m.ClassTotal(excr.AppClass(c)) > 5 {
				t.Fatalf("matrix %v exceeds perClassMax", m)
			}
		}
	}
	// The scheme must actually vary.
	distinct := map[string]bool{}
	for _, m := range ms {
		distinct[m.Key()] = true
	}
	if len(distinct) < 30 {
		t.Fatalf("only %d distinct matrices in 100 draws", len(distinct))
	}
}

func TestRandomMixedSNRSpace(t *testing.T) {
	rng := mathx.NewRand(2)
	ms := Random(rng, 50, 6, 0, excr.MixedSNRSpace)
	sawLow, sawHigh := false, false
	for _, m := range ms {
		if m.LevelTotal(excr.SNRLow) > 0 {
			sawLow = true
		}
		if m.LevelTotal(excr.SNRHigh) > 0 {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Fatal("mixed-SNR random scheme should populate both levels")
	}
}

func TestLiveLabShape(t *testing.T) {
	rng := mathx.NewRand(3)
	ms := LiveLab(rng, DefaultLiveLab())
	if len(ms) < 800 || len(ms) > 8000 {
		t.Fatalf("LiveLab produced %d matrices, want on the order of the paper's ≈1700", len(ms))
	}
	// Web must dominate, conferencing must be rarest, as in the dataset.
	var web, stream, conf int
	for _, m := range ms {
		web += m.ClassTotal(excr.Web)
		stream += m.ClassTotal(excr.Streaming)
		conf += m.ClassTotal(excr.Conferencing)
	}
	if !(web > stream) {
		t.Fatalf("web (%d) should dominate streaming (%d)", web, stream)
	}
	if conf == 0 {
		t.Fatal("conferencing sessions should occur")
	}
}

func TestLiveLabMaxTotalFilter(t *testing.T) {
	rng := mathx.NewRand(4)
	cfg := DefaultLiveLab()
	cfg.MaxTotal = 8
	for _, m := range LiveLab(rng, cfg) {
		if m.Total() > 8 {
			t.Fatalf("matrix %v exceeds MaxTotal", m)
		}
	}
}

func TestLiveLabDegenerate(t *testing.T) {
	rng := mathx.NewRand(5)
	if LiveLab(rng, LiveLabConfig{}) != nil {
		t.Fatal("zero config should yield nil")
	}
}

func TestArrivalsDeriveEvents(t *testing.T) {
	s := excr.DefaultSpace
	seq := []excr.Matrix{
		excr.NewMatrix(s).Set(excr.Web, 0, 2),
		excr.NewMatrix(s).Set(excr.Web, 0, 1).Set(excr.Streaming, 0, 1),
		excr.NewMatrix(s).Set(excr.Web, 0, 3).Set(excr.Streaming, 0, 1),
	}
	evs := Arrivals(seq, nil)
	// 2 web arrivals, then 1 streaming, then 2 more web.
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	if evs[0].Arrival.Matrix.Total() != 0 {
		t.Fatal("first arrival should see an empty network")
	}
	if evs[1].Arrival.Matrix.Get(excr.Web, 0) != 1 {
		t.Fatal("second web arrival should see one web flow")
	}
	if evs[2].Arrival.Class != excr.Streaming {
		t.Fatalf("third event class = %v", evs[2].Arrival.Class)
	}
	// After the second matrix, one web flow departed: the streaming
	// arrival sees 1 web flow.
	if evs[2].Arrival.Matrix.Get(excr.Web, 0) != 1 {
		t.Fatalf("streaming arrival sees %v", evs[2].Arrival.Matrix)
	}
	if got := Arrivals(nil, nil); got != nil {
		t.Fatal("empty sequence should give nil")
	}
}

func TestArrivalsConsistentState(t *testing.T) {
	// Property: replaying arrivals and the implied departures always
	// matches the per-class totals of the sequence.
	rng := mathx.NewRand(6)
	seq := Random(rng, 50, 6, 0, excr.DefaultSpace)
	evs := Arrivals(seq, nil)
	// Rebuild final state.
	cur := excr.NewMatrix(excr.DefaultSpace)
	i := 0
	for _, target := range seq {
		for c := 0; c < 3; c++ {
			cls := excr.AppClass(c)
			for cur.ClassTotal(cls) > target.ClassTotal(cls) {
				cur = cur.Dec(cls, 0)
			}
		}
		for c := 0; c < 3; c++ {
			cls := excr.AppClass(c)
			for cur.ClassTotal(cls) < target.ClassTotal(cls) {
				if i >= len(evs) {
					t.Fatal("ran out of events")
				}
				if evs[i].Arrival.Class != cls {
					t.Fatalf("event %d class %v, want %v", i, evs[i].Arrival.Class, cls)
				}
				if !evs[i].Arrival.Matrix.Equal(cur) {
					t.Fatalf("event %d pre-matrix %v, want %v", i, evs[i].Arrival.Matrix, cur)
				}
				cur = cur.Inc(cls, 0)
				i++
			}
		}
	}
	if i != len(evs) {
		t.Fatalf("consumed %d of %d events", i, len(evs))
	}
}

func TestArrivalsRandomLevels(t *testing.T) {
	rng := mathx.NewRand(7)
	seq := Random(rng, 40, 8, 0, excr.MixedSNRSpace)
	// Project sequence to class totals only (levels assigned at
	// arrival): use a single-level projection of the same sequence.
	levels := RandomLevels(mathx.NewRand(8), excr.MixedSNRSpace)
	evs := Arrivals(seq, levels)
	sawLow, sawHigh := false, false
	for _, e := range evs {
		switch e.Arrival.Level {
		case excr.SNRLow:
			sawLow = true
		case excr.SNRHigh:
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Fatal("RandomLevels should assign both SNR levels")
	}
}

func TestSynthesizeSignatures(t *testing.T) {
	rng := mathx.NewRand(9)
	web := Synthesize(excr.Web, 30, rng)
	stream := Synthesize(excr.Streaming, 30, rng)
	conf := Synthesize(excr.Conferencing, 30, rng)

	for _, tr := range []Trace{web, stream, conf} {
		if len(tr.Packets) == 0 {
			t.Fatalf("%v trace empty", tr.Class)
		}
		// Time-ordered.
		for i := 1; i < len(tr.Packets); i++ {
			if tr.Packets[i].TimeSec < tr.Packets[i-1].TimeSec {
				t.Fatalf("%v trace out of order", tr.Class)
			}
		}
		if tr.Duration() <= 0 || tr.Bytes() <= 0 {
			t.Fatalf("%v trace has no duration/bytes", tr.Class)
		}
	}
	// Streaming moves far more bytes than web; conferencing has the
	// most uplink packets.
	if stream.Bytes() < 2*web.Bytes() {
		t.Fatalf("streaming bytes %d should dwarf web bytes %d", stream.Bytes(), web.Bytes())
	}
	up := func(tr Trace) int {
		n := 0
		for _, p := range tr.Packets {
			if p.Up {
				n++
			}
		}
		return n
	}
	if up(conf) <= up(web) || up(conf) <= up(stream) {
		t.Fatal("conferencing should have the most uplink packets")
	}
	// Unknown class still synthesizes something.
	if len(Synthesize(excr.AppClass(9), 5, rng).Packets) == 0 {
		t.Fatal("unknown class should produce a generic trace")
	}
}

func TestMerge(t *testing.T) {
	rng := mathx.NewRand(10)
	a := Synthesize(excr.Web, 5, rng)
	b := Synthesize(excr.Conferencing, 5, rng)
	merged := Merge([]Trace{a, b})
	if len(merged) != len(a.Packets)+len(b.Packets) {
		t.Fatal("merge lost packets")
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].TimeSec < merged[i-1].TimeSec {
			t.Fatal("merged stream out of order")
		}
	}
	saw0, saw1 := false, false
	for _, p := range merged {
		if p.Flow == 0 {
			saw0 = true
		}
		if p.Flow == 1 {
			saw1 = true
		}
	}
	if !saw0 || !saw1 {
		t.Fatal("merge should tag both flows")
	}
}

func TestTraceDeterminism(t *testing.T) {
	a := Synthesize(excr.Streaming, 10, mathx.NewRand(11))
	b := Synthesize(excr.Streaming, 10, mathx.NewRand(11))
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("same seed should give same trace")
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatal("same seed should give identical packets")
		}
	}
}
