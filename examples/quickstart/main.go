// Quickstart: learn a wireless cell's Experiential Capacity Region and
// use it for admission control — the whole ExBox loop in ~60 lines of
// API calls.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"exbox"
	"exbox/internal/mathx"
)

func main() {
	// 1. A wireless cell. Here the ns-3-like simulated 802.11n WLAN;
	// in a deployment this is the network behind your gateway.
	cell := exbox.FluidWiFi{Config: exbox.SimWiFiConfig()}

	// 2. Ground truth comes from instrumented apps measuring QoE on
	// the device side (page load time, video startup delay, PSNR).
	oracle := exbox.Oracle{Net: cell}

	// 3. The Admittance Classifier starts in its bootstrap phase:
	// every flow is admitted while it observes (X, Y) tuples.
	ac := exbox.NewAdmittanceClassifier(exbox.DefaultSpace, exbox.DefaultClassifierConfig())

	rng := mathx.NewRand(42)
	seq := exbox.RandomMatrices(rng, 30, 20, 0, exbox.DefaultSpace)
	for _, ev := range exbox.ArrivalEvents(seq, nil) {
		ac.Observe(exbox.Sample{Arrival: ev.Arrival, Label: oracle.Label(ev.Arrival)})
	}
	if ac.Bootstrapping() {
		log.Fatal("classifier did not graduate; feed it more diverse traffic")
	}
	fmt.Printf("classifier online after %d observations (cross-validation %.2f)\n\n",
		ac.Observed(), ac.LastCVScore())

	// 4. Admission control: classify arrivals against the learned
	// region.
	cases := []struct {
		desc    string
		matrix  exbox.Matrix
		arrival exbox.AppClass
	}{
		{"empty cell, streaming flow", exbox.NewMatrix(exbox.DefaultSpace), exbox.Streaming},
		{"10 streams, another stream", exbox.NewMatrix(exbox.DefaultSpace).Set(exbox.Streaming, 0, 10), exbox.Streaming},
		{"22 streams, web flow", exbox.NewMatrix(exbox.DefaultSpace).Set(exbox.Streaming, 0, 22), exbox.Web},
		{"18 streams + 14 calls, another call", exbox.NewMatrix(exbox.DefaultSpace).
			Set(exbox.Streaming, 0, 18).Set(exbox.Conferencing, 0, 14), exbox.Conferencing},
	}
	for _, c := range cases {
		d := ac.Decide(exbox.Arrival{Matrix: c.matrix, Class: c.arrival})
		verdict := "REJECT"
		if d.Admit {
			verdict = "admit"
		}
		truth := oracle.Label(exbox.Arrival{Matrix: c.matrix, Class: c.arrival})
		fmt.Printf("%-38s -> %-6s (margin %+.2f, ground truth %+v)\n", c.desc, verdict, d.Margin, truth)
	}
}
