// Enterprise: a working day of LiveLab-style traffic through one
// enterprise WiFi AP, comparing ExBox's admission control against the
// RateBased and MaxClient baselines and against an uncontrolled
// network — the scenario the paper's introduction motivates.
//
//	go run ./examples/enterprise
package main

import (
	"fmt"

	"exbox"
	"exbox/internal/mathx"
	"exbox/internal/metrics"
)

func main() {
	tb := exbox.NewTestbed(exbox.WiFiTestbed, 99)
	oracle := tb.Oracle()

	// A day of traffic from the LiveLab-like generator, restricted to
	// the AP's 10-client capacity the way the paper filtered its traces.
	cfg := exbox.DefaultLiveLab()
	cfg.Days = 2
	cfg.MaxTotal = tb.MaxClients
	seq := exbox.LiveLabMatrices(mathx.NewRand(7), cfg)
	events := exbox.ArrivalEvents(seq, nil)
	fmt.Printf("enterprise AP: %d traffic matrices, %d flow arrivals\n\n", len(seq), len(events))

	controllers := []exbox.Controller{
		exbox.NewAdmittanceClassifier(exbox.DefaultSpace, exbox.DefaultClassifierConfig()),
		exbox.NewRateBased(20e6), // the hotspot's measured UDP capacity
		exbox.NewMaxClient(10),
	}

	confusions := make([]metrics.Confusion, len(controllers))
	var happy, unhappy int
	for _, ev := range events {
		y, err := tb.Label(ev.Arrival)
		if err != nil {
			continue
		}
		if y > 0 {
			happy++
		} else {
			unhappy++
		}
		for i, ctl := range controllers {
			d := ctl.Decide(ev.Arrival)
			pred := -1.0
			if d.Admit {
				pred = 1
			}
			if !d.Bootstrap {
				confusions[i].Observe(pred, y)
			}
			ctl.Observe(exbox.Sample{Arrival: ev.Arrival, Label: y})
		}
	}

	fmt.Printf("ground truth: %d admissible arrivals, %d inadmissible (%.0f%%)\n\n",
		happy, unhappy, 100*float64(unhappy)/float64(happy+unhappy))
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "controller", "precision", "recall", "accuracy", "decisions")
	for i, ctl := range controllers {
		c := confusions[i]
		fmt.Printf("%-12s %10.3f %10.3f %10.3f %10d\n",
			ctl.Name(), c.Precision(), c.Recall(), c.Accuracy(), c.Total())
	}

	// What would the users have experienced without any control? Every
	// inadmissible arrival would have degraded someone's QoE.
	fmt.Printf("\nwithout admission control, %d arrivals would have degraded the cell's QoE\n", unhappy)
	_ = oracle
}
