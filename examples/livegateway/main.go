// Livegateway: ExBox in the packet path over real UDP sockets. A
// gateway goroutine forwards client datagrams to a sink, maintains a
// flow table, classifies flows from their first packets with the
// naive-Bayes traffic classifier, and drops flows the Admittance
// Classifier rejects. Two well-behaved clients and one cell-filling
// burst of streaming clients demonstrate an actual rejection.
//
//	go run ./examples/livegateway
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"exbox"
	"exbox/internal/classifier"
	"exbox/internal/exboxcore"
	"exbox/internal/excr"
	"exbox/internal/flowclass"
	"exbox/internal/flows"
	"exbox/internal/mathx"
	"exbox/internal/obs"
	"exbox/internal/obs/trace"
	"exbox/internal/obs/tsdb"
	"exbox/internal/traffic"
)

const cell = exboxcore.CellID("ap0")

func main() {
	// Gateway socket and upstream sink.
	gw, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer gw.Close()
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		log.Fatal(err)
	}
	defer sink.Close()

	// Train the two learners offline: the flow classifier from
	// synthetic traces, the admittance classifier from a *small* cell's
	// ground truth so a handful of streams already fills it.
	rng := mathx.NewRand(3)
	fc, err := flowclass.Train([]excr.AppClass{excr.Web, excr.Streaming, excr.Conferencing}, 40, 10, rng)
	if err != nil {
		log.Fatal(err)
	}
	smallCell := exbox.TestbedWiFiConfig()
	oracle := exbox.Oracle{Net: exbox.FluidWiFi{Config: smallCell}}
	mb := exboxcore.New(excr.DefaultSpace, exboxcore.Discontinue)
	// The same telemetry registry exboxd serves over -http; here it
	// feeds the closing summary (and keeps an audit trail of the
	// demo's decisions).
	reg := obs.NewRegistry()
	mb.Instrument(reg, 64)
	// Trace every flow (sampleEvery=1): the demo is small and the point
	// is to show a complete rejected-flow lifecycle at the end.
	tracer := trace.New(64, 1)
	mb.InstrumentTracing(tracer)
	reg.SetTracer(tracer)
	reg.SetHealth(func() interface{} { return mb.Health() })
	// QoE SLO burn-rate accounting over a demo-sized window, and the
	// windowed timeline store exboxd serves at /debug/timeline — here it
	// feeds the closing per-second history line.
	mb.EnableSLO(exboxcore.SLOConfig{SlowWindow: 30 * time.Second, MinTicks: 1})
	timeline := tsdb.New(reg, tsdb.Config{Resolution: 250 * time.Millisecond, Retention: time.Minute})
	if _, err := mb.AddCell(cell, classifier.DefaultConfig()); err != nil {
		log.Fatal(err)
	}
	for _, ev := range traffic.Arrivals(traffic.Random(rng, 30, 10, 10, excr.DefaultSpace), nil) {
		mb.Observe(cell, excr.Sample{Arrival: ev.Arrival, Label: oracle.Label(ev.Arrival)})
	}

	table := flows.NewTable(10, 30)
	var mu sync.Mutex
	start := time.Now()
	decisions := make(chan string, 64)

	// Forwarding loop, with a periodic expiry sweep so idle flows leave
	// the traffic matrix instead of inflating every later decision.
	done := make(chan struct{})
	go timeline.Run(done)
	go func() {
		buf := make([]byte, 64*1024)
		lastSweep := 0.0
		for {
			select {
			case <-done:
				return
			default:
			}
			gw.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			n, src, err := gw.ReadFromUDP(buf)
			now := time.Since(start).Seconds()
			if now-lastSweep >= 1 {
				lastSweep = now
				mu.Lock()
				for _, f := range table.Expire(now) {
					if f.Trace != nil {
						f.Trace.Add(trace.Span{Kind: trace.KindExpiry, UnixNanos: time.Now().UnixNano()})
						f.Trace.Close()
					}
				}
				mu.Unlock()
			}
			if err != nil {
				continue
			}
			up := n > 0 && buf[0] == 'U'
			mu.Lock()
			key := flows.Key{Src: src.IP.String(), SrcPort: uint16(src.Port), Dst: "sink", DstPort: 9, Proto: flows.UDP}
			f := table.Observe(key, flows.PacketMeta{Time: now, Bytes: n, Up: up})
			f.SNR = excr.SNRHigh
			if f.Packets == 1 {
				f.Trace = tracer.Start(trace.IDFromString(f.Key.String()), string(cell), -1, int(f.SNR), "sampled")
				f.Trace.Add(trace.Span{Kind: trace.KindArrival, UnixNanos: time.Now().UnixNano()})
			}
			if f.ReadyToClassify(table.HeadCap) {
				if class, _, err := fc.ClassifyFlow(f); err == nil {
					f.Class, f.Classified = class, true
					f.Trace.SetClass(int(class))
					f.Trace.Add(trace.Span{Kind: trace.KindClassify, UnixNanos: time.Now().UnixNano(), Note: class.String()})
					// Propagate the flow's SNR with the same collapse
					// rule Reevaluate uses for single-level spaces.
					lvl := f.SNR
					if excr.DefaultSpace.Levels == 1 {
						lvl = 0
					}
					out, err := mb.AdmitTraced(cell, excr.Arrival{Matrix: table.Matrix(excr.DefaultSpace), Class: class, Level: lvl}, nil, f.Trace)
					if err == nil {
						f.Decided = true
						f.Admitted = out.Verdict == exboxcore.Admit
						decisions <- fmt.Sprintf("%s -> %v as %v", f.Key, out.Verdict, class)
					}
				}
			}
			forward := !(f.Decided && !f.Admitted)
			mu.Unlock()
			if forward {
				gw.WriteToUDP(buf[:n], sink.LocalAddr().(*net.UDPAddr))
			}
		}
	}()

	// Clients: a web flow and a call first, then a burst of six
	// streaming flows that overruns the small cell — the later ones
	// must be rejected.
	var wg sync.WaitGroup
	send := func(class excr.AppClass, seed int64, d time.Duration) {
		defer wg.Done()
		conn, err := net.DialUDP("udp", nil, gw.LocalAddr().(*net.UDPAddr))
		if err != nil {
			log.Print(err)
			return
		}
		defer conn.Close()
		payload := make([]byte, 64*1024)
		tr := traffic.Synthesize(class, d.Seconds(), mathx.NewRand(seed))
		t0 := time.Now()
		for _, p := range tr.Packets {
			at := time.Duration(p.TimeSec * float64(time.Second))
			if sleep := at - time.Since(t0); sleep > 0 {
				time.Sleep(sleep)
			}
			if time.Since(t0) > d {
				return
			}
			payload[0] = 'D'
			if p.Up {
				payload[0] = 'U'
			}
			size := p.Bytes
			if size > len(payload) {
				size = len(payload)
			}
			conn.Write(payload[:size])
		}
	}
	wg.Add(2)
	go send(excr.Web, 101, 4*time.Second)
	go send(excr.Conferencing, 102, 4*time.Second)
	time.Sleep(500 * time.Millisecond)
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go send(excr.Streaming, 200+int64(i), 3*time.Second)
	}

	go func() { wg.Wait(); close(done) }()
	for {
		select {
		case d := <-decisions:
			fmt.Println(d)
		case <-done:
			// The verdict tallies come from the instrumented registry —
			// the same counters a scrape of exboxd's /metrics would show
			// — instead of re-parsing the decision log.
			admitted := reg.Counter("exbox_cell_ap0_admit_total").Value()
			rejected := reg.Counter("exbox_cell_ap0_reject_total").Value()
			fmt.Printf("\n%d flows admitted, %d rejected by the live gateway\n", admitted, rejected)
			if ring := mb.AuditRing(); ring != nil {
				recs := ring.Snapshot()
				fmt.Printf("audit trail holds %d decisions; last:\n", len(recs))
				for i := len(recs) - 3; i < len(recs); i++ {
					if i >= 0 {
						r := recs[i]
						fmt.Printf("  #%d cell=%s class=%d matrix=<%s> margin=%+.2f %s\n",
							r.Seq, r.Cell, r.Class, r.Matrix, r.Margin, r.Verdict)
					}
				}
			}
			// One rejected flow's full lifecycle, as /debug/traces would
			// serve it, and the health verdict /debug/health computes.
			for _, v := range tracer.Snapshot() {
				if v.Verdict != "reject" {
					continue
				}
				fmt.Printf("rejected flow trace %s (class %d):\n", v.ID, v.Class)
				for _, sp := range v.Spans {
					fmt.Printf("  %-10v %s margin=%+.2f model=%d %s\n",
						sp.Kind, sp.Verdict, sp.Margin, sp.Model, sp.Note)
				}
				break
			}
			// The windowed timeline the tsdb sampler accumulated while the
			// demo ran — what exboxd's /debug/timeline would serve.
			for _, s := range timeline.Query("admit_total", "", 0) {
				var sum float64
				for _, p := range s.Points {
					sum += p.Value
				}
				fmt.Printf("timeline %s (%s): %d samples, %.0f admits recorded\n",
					s.Name, s.Kind, len(s.Points), sum)
			}
			rep := mb.Health()
			fmt.Printf("health verdict: %v (%d cells", rep.Status, len(rep.Cells))
			for _, c := range rep.Cells {
				if c.Health != nil {
					fmt.Printf("; %s model=v%d drift=%.3f agreement=%.2f",
						c.Cell, c.ModelVersion, c.Health.Drift, c.Health.Agreement)
				}
			}
			fmt.Println(")")
			return
		}
	}
}
