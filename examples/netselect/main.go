// Netselect: hybrid WiFi+LTE network selection (Section 4.1). The
// middlebox learns one Admittance Classifier per cell and steers each
// arriving flow to the cell whose post-admission state sits deepest
// inside its capacity region; flows no cell can take are rejected.
//
//	go run ./examples/netselect
package main

import (
	"fmt"
	"log"

	"exbox"
	"exbox/internal/mathx"
)

func main() {
	wifi := exbox.FluidWiFi{Config: exbox.SimWiFiConfig()}
	lte := exbox.FluidLTE{Config: exbox.SimLTEConfig()}
	wifiOracle := exbox.Oracle{Net: wifi}
	lteOracle := exbox.Oracle{Net: lte}

	mb := exbox.NewMiddlebox(exbox.DefaultSpace, exbox.Discontinue)
	if _, err := mb.AddCell("wifi-ap1", exbox.DefaultClassifierConfig()); err != nil {
		log.Fatal(err)
	}
	if _, err := mb.AddCell("lte-enb1", exbox.DefaultClassifierConfig()); err != nil {
		log.Fatal(err)
	}

	// Train both cells from their own ground truth.
	rng := mathx.NewRand(11)
	for _, ev := range exbox.ArrivalEvents(exbox.RandomMatrices(rng, 30, 20, 0, exbox.DefaultSpace), nil) {
		mb.Observe("wifi-ap1", exbox.Sample{Arrival: ev.Arrival, Label: wifiOracle.Label(ev.Arrival)})
		mb.Observe("lte-enb1", exbox.Sample{Arrival: ev.Arrival, Label: lteOracle.Label(ev.Arrival)})
	}
	for _, cell := range mb.Cells() {
		if cell.Classifier.Bootstrapping() {
			log.Fatalf("cell %s did not graduate", cell.ID)
		}
		fmt.Printf("cell %-9s online (training set %d)\n", cell.ID, cell.Classifier.TrainingSetSize())
	}
	fmt.Println()

	// Each cell carries its own load; new flows arrive and the
	// middlebox places them.
	wifiLoad := exbox.NewMatrix(exbox.DefaultSpace).Set(exbox.Streaming, 0, 8)
	lteLoad := exbox.NewMatrix(exbox.DefaultSpace).Set(exbox.Conferencing, 0, 4)

	for i := 0; i < 14; i++ {
		class := []exbox.AppClass{exbox.Streaming, exbox.Web, exbox.Conferencing}[i%3]
		out, ok, err := mb.SelectNetwork([]exbox.Candidate{
			{Cell: "wifi-ap1", Arrival: exbox.Arrival{Matrix: wifiLoad, Class: class}},
			{Cell: "lte-enb1", Arrival: exbox.Arrival{Matrix: lteLoad, Class: class}},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("flow %2d (%-12v): no cell can take it -> %v\n", i, class, out.Verdict)
			continue
		}
		fmt.Printf("flow %2d (%-12v): -> %-9s (depth %.2f)  wifi=%v lte=%v\n",
			i, class, out.Cell, out.Decision.Depth, wifiLoad, lteLoad)
		// The admitted flow loads its cell.
		if out.Cell == "wifi-ap1" {
			wifiLoad = wifiLoad.Inc(class, 0)
		} else {
			lteLoad = lteLoad.Inc(class, 0)
		}
	}

	// Dynamics (Section 4.3): after the placements, re-evaluate the
	// WiFi cell; flows that no longer fit are flagged for offload.
	var active []exbox.ActiveFlow
	id := 0
	for c := 0; c < 3; c++ {
		for i := 0; i < wifiLoad.Get(exbox.AppClass(c), 0); i++ {
			active = append(active, exbox.ActiveFlow{ID: id, Class: exbox.AppClass(c)})
			id++
		}
	}
	evict, err := mb.Reevaluate("wifi-ap1", wifiLoad, active)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-evaluation of wifi-ap1 (%v): %d of %d flows flagged for offload\n",
		wifiLoad, len(evict), len(active))
}
