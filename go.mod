module exbox

go 1.22
