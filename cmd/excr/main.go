// Command excr learns the Experiential Capacity Region of a simulated
// wireless cell and renders a 2-D slice of it as an ASCII map, with
// the ground-truth region for comparison. It is the fastest way to
// *see* what ExBox learns.
//
// Usage:
//
//	excr [-cell wifi|lte] [-samples 600] [-xclass streaming] [-yclass conferencing] [-max 50]
//
// Legend: '#' learned admissible and truly achievable, 'x' learned
// admissible but NOT achievable (false admit), '.' learned
// inadmissible but achievable (missed capacity), ' ' both agree the
// point is outside.
package main

import (
	"flag"
	"fmt"
	"os"

	"exbox/internal/apps"
	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/traffic"
)

func classByName(name string) (excr.AppClass, bool) {
	switch name {
	case "web":
		return excr.Web, true
	case "streaming":
		return excr.Streaming, true
	case "conferencing":
		return excr.Conferencing, true
	}
	return 0, false
}

func main() {
	cell := flag.String("cell", "wifi", "cell type: wifi or lte")
	samples := flag.Int("samples", 600, "labeled training samples to feed the classifier")
	xName := flag.String("xclass", "conferencing", "class on the x axis")
	yName := flag.String("yclass", "streaming", "class on the y axis")
	max := flag.Int("max", 50, "largest per-class flow count to map")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	xClass, ok := classByName(*xName)
	if !ok {
		fmt.Fprintf(os.Stderr, "excr: unknown class %q\n", *xName)
		os.Exit(2)
	}
	yClass, ok := classByName(*yName)
	if !ok {
		fmt.Fprintf(os.Stderr, "excr: unknown class %q\n", *yName)
		os.Exit(2)
	}

	var net netsim.Network
	switch *cell {
	case "wifi":
		net = netsim.FluidWiFi{Config: netsim.SimWiFi()}
	case "lte":
		net = netsim.FluidLTE{Config: netsim.SimLTE()}
	default:
		fmt.Fprintf(os.Stderr, "excr: unknown cell %q\n", *cell)
		os.Exit(2)
	}
	oracle := apps.Oracle{Net: net}

	// Train the Admittance Classifier on random traffic.
	ac := classifier.New(excr.DefaultSpace, classifier.DefaultConfig())
	rng := mathx.NewRand(*seed)
	fed := 0
	// Cover the whole displayed range so the map never asks the SVM to
	// extrapolate beyond its training distribution.
	perClass := *max
	if perClass < 10 {
		perClass = 10
	}
	for fed < *samples {
		for _, e := range traffic.Arrivals(traffic.Random(rng, 20, perClass, 0, excr.DefaultSpace), nil) {
			if fed >= *samples {
				break
			}
			ac.Observe(excr.Sample{Arrival: e.Arrival, Label: oracle.Label(e.Arrival)})
			fed++
		}
	}
	if ac.Bootstrapping() {
		if err := ac.ForceOnline(); err != nil {
			fmt.Fprintf(os.Stderr, "excr: classifier not trainable: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("Learned ExCR of %s after %d samples (training set %d, cv %.2f)\n",
		net.Name(), ac.Observed(), ac.TrainingSetSize(), ac.LastCVScore())
	fmt.Printf("y: # %s flows (0 at bottom), x: # %s flows\n\n", yClass, xClass)

	learned := func(m excr.Matrix) bool {
		// A matrix is inside the learned region when removing any one
		// flow and re-admitting it classifies positive; probing with a
		// zero-cost query: classify the matrix as "arrival of its last
		// flow". For display, probe with a web arrival on top of m-1.
		if m.Total() == 0 {
			return true
		}
		// Use the matrix minus one yClass flow if possible, else xClass.
		if m.Get(yClass, 0) > 0 {
			return ac.Decide(excr.Arrival{Matrix: m.Dec(yClass, 0), Class: yClass}).Admit
		}
		if m.Get(xClass, 0) > 0 {
			return ac.Decide(excr.Arrival{Matrix: m.Dec(xClass, 0), Class: xClass}).Admit
		}
		return true
	}
	truth := oracle.Region(excr.DefaultSpace)

	step := 1
	if *max > 40 {
		step = 2
	}
	for y := *max; y >= 0; y -= step {
		fmt.Printf("%4d |", y)
		for x := 0; x <= *max; x += step {
			m := excr.NewMatrix(excr.DefaultSpace).Set(yClass, 0, y).Set(xClass, 0, x)
			l := learned(m)
			tr := truth.Achievable(m)
			var ch byte
			switch {
			case l && tr:
				ch = '#'
			case l && !tr:
				ch = 'x'
			case !l && tr:
				ch = '.'
			default:
				ch = ' '
			}
			fmt.Printf("%c", ch)
		}
		fmt.Println()
	}
	fmt.Printf("     +%s\n", dashes((*max/step)+1))
	fmt.Println("\n# admissible&achievable  x false-admit  . missed-capacity  (blank) outside")
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}
