// Command exbench regenerates the data behind every figure of the
// ExBox paper's evaluation. It prints each figure as an aligned text
// table (the same rows/series the paper plots) so results can be
// diffed against EXPERIMENTS.md.
//
// Usage:
//
//	exbench [-scale quick|full] [-figure all|fig2|fig3|fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14]
//	exbench -bench [-benchout BENCH_pr3.json] [-benchcount 5]
//
// Quick scale shrinks sample counts for fast runs while preserving the
// qualitative shapes; full scale matches the paper's sizes (Figure 13
// at full scale labels 21000 samples and takes minutes).
//
// -bench skips the figures and instead runs the middlebox performance
// benchmarks (warm/cold classifier retrains, parallel admission) in
// process, emitting a machine-readable JSON snapshot in the same
// format as the committed BENCH_baseline.json that the CI perf gate
// (internal/tools/benchcheck) compares against.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"exbox/internal/eval"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	figure := flag.String("figure", "all", "which figure to regenerate (all, fig2, fig3, fig7..fig14)")
	benchMode := flag.Bool("bench", false, "run performance benchmarks instead of figures, emit JSON")
	benchOut := flag.String("benchout", "", "write the -bench JSON snapshot here instead of stdout")
	benchCount := flag.Int("benchcount", 3, "repeat each -bench benchmark this many times, record the median")
	flag.Parse()

	if *benchMode {
		if err := runBench(*benchOut, *benchCount); err != nil {
			fmt.Fprintf(os.Stderr, "exbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var scale eval.Scale
	switch *scaleFlag {
	case "quick":
		scale = eval.Quick
	case "full":
		scale = eval.Full
	default:
		fmt.Fprintf(os.Stderr, "exbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	type runner struct {
		id  string
		run func()
	}
	printFigs := func(figs ...eval.Figure) {
		for _, f := range figs {
			fmt.Print(f.Render())
		}
	}
	runners := []runner{
		{"fig2", func() {
			for _, h := range eval.Figure2(scale) {
				fmt.Print(h.Render())
			}
		}},
		{"fig3", func() { printFigs(eval.Figure3(scale)) }},
		{"fig7", func() { printFigs(eval.Figure7(scale)...) }},
		{"fig8", func() { printFigs(eval.Figure8(scale)...) }},
		{"fig9", func() { printFigs(eval.Figure9(scale)...) }},
		{"fig10", func() { printFigs(eval.Figure10(scale)...) }},
		{"fig11", func() { printFigs(eval.Figure11(scale)...) }},
		{"fig12", func() { printFigs(eval.Figure12(scale)) }},
		{"fig13", func() { printFigs(eval.Figure13(scale)) }},
		{"fig14", func() { printFigs(eval.Figure14(scale)...) }},
	}

	ran := false
	for _, r := range runners {
		if *figure != "all" && *figure != r.id {
			continue
		}
		start := time.Now()
		r.run()
		fmt.Printf("[%s @ %s scale: %v]\n\n", r.id, scale, time.Since(start).Round(time.Millisecond))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "exbench: unknown figure %q\n", *figure)
		os.Exit(2)
	}
}
