package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"exbox/internal/apps"
	"exbox/internal/classifier"
	"exbox/internal/exboxcore"
	"exbox/internal/excr"
	"exbox/internal/mathx"
	"exbox/internal/netsim"
	"exbox/internal/svm"
	"exbox/internal/tools/benchjson"
	"exbox/internal/traffic"
)

// runBench executes the middlebox's key performance benchmarks in
// process — the warm/cold SMO retrains the online classifier lives on,
// and the lock-free admission path — and writes a machine-readable
// snapshot (the benchjson format shared with the CI perf gate) to out,
// or stdout when out is empty. Each benchmark runs `count` times and
// the snapshot records the median, matching how benchcheck summarizes
// `go test -bench -count N` output.
func runBench(out string, count int) error {
	if count < 1 {
		count = 1
	}
	type bench struct {
		name string
		run  func(b *testing.B)
	}
	benches := []bench{
		// ExBox's online cadence: a cell that has observed n tuples
		// refits after a batch of B more. 500/10 is the paper's LTE
		// batch size at a mature training set; 1000/20 the WiFi batch
		// size at the simulation scale. Cold solves from zero; Warm
		// seeds from the previous fit's solver state.
		{"BenchmarkRetrainCold", benchRetrainSolve(500, 10, false)},
		{"BenchmarkRetrainWarm", benchRetrainSolve(500, 10, true)},
		{"BenchmarkRetrainCold1k", benchRetrainSolve(1000, 20, false)},
		{"BenchmarkRetrainWarm1k", benchRetrainSolve(1000, 20, true)},
		{"BenchmarkAdmitParallel", benchAdmit},
		// The steady-state inference fast path: one RBF decision over a
		// several-hundred-SV model with caller scratch (0 allocs/op).
		{"BenchmarkDecisionRBF", benchDecisionRBF},
	}

	f := &benchjson.File{
		Go:         runtime.Version(),
		Source:     "exbench -bench",
		Benchmarks: make(map[string]benchjson.Entry, len(benches)),
	}
	for _, b := range benches {
		samples := make([]float64, 0, count)
		allocs := make([]float64, 0, count)
		for i := 0; i < count; i++ {
			r := testing.Benchmark(b.run)
			if r.N == 0 {
				return fmt.Errorf("benchmark %s did not run (failed inside the harness?)", b.name)
			}
			samples = append(samples, float64(r.NsPerOp()))
			allocs = append(allocs, float64(r.AllocsPerOp()))
		}
		med := benchjson.Median(samples)
		f.Benchmarks[b.name] = benchjson.Entry{
			NsPerOp: med, Samples: len(samples),
			AllocsPerOp: benchjson.Median(allocs), AllocSamples: len(allocs),
		}
		fmt.Fprintf(os.Stderr, "%-28s %12.0f ns/op  %6.1f allocs/op (median of %d)\n",
			b.name, med, benchjson.Median(allocs), len(samples))
	}

	if out == "" {
		f.Schema = benchjson.Schema
		raw, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(append(raw, '\n'))
		return err
	}
	return f.Write(out)
}

// benchShellData builds a dim-d dataset with a spherical class
// boundary — curved like the ExCR boundary, so the RBF kernel does
// real work (mirrors the dataset of internal/svm's retrain
// benchmarks).
func benchShellData(n, dim int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		var r float64
		if i%2 == 0 {
			r = 0.2 + rng.Float64()*0.8
		} else {
			r = 2.0 + rng.Float64()*1.5
		}
		var norm float64
		for j := range row {
			row[j] = rng.NormFloat64()
			norm += row[j] * row[j]
		}
		norm = math.Sqrt(norm)
		for j := range row {
			row[j] = row[j] / norm * r
		}
		x = append(x, row)
		if i%2 == 0 {
			y = append(y, 1)
		} else {
			y = append(y, -1)
		}
	}
	return x, y
}

func benchRetrainSolve(n, batch int, warmStart bool) func(b *testing.B) {
	return func(b *testing.B) {
		x, y := benchShellData(n+batch, 5, 41)
		cfg := svm.DefaultConfig()
		_, warm, err := svm.Solve(cfg, x[:n], y[:n], nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var seed *svm.WarmState
			if warmStart {
				seed = warm
			}
			if _, _, err := svm.Solve(cfg, x, y, seed); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchAdmit(b *testing.B) {
	mb := exboxcore.New(excr.DefaultSpace, exboxcore.Discontinue)
	if _, err := mb.AddCell("ap", classifier.DefaultConfig()); err != nil {
		b.Fatal(err)
	}
	o := apps.Oracle{Net: netsim.FluidWiFi{Config: netsim.SimWiFi()}}
	rng := mathx.NewRand(1)
	for _, e := range traffic.Arrivals(traffic.Random(rng, 25, 20, 0, excr.DefaultSpace), nil) {
		if err := mb.Observe("ap", excr.Sample{Arrival: e.Arrival, Label: o.Label(e.Arrival)}); err != nil {
			b.Fatal(err)
		}
	}
	if mb.Cell("ap").Classifier.Bootstrapping() {
		b.Fatal("cell did not graduate")
	}
	probe := excr.Arrival{
		Matrix: excr.NewMatrix(excr.DefaultSpace).Set(excr.Streaming, 0, 12),
		Class:  excr.Web,
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := mb.Admit("ap", probe); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchOverlapData builds two heavily overlapping Gaussian clouds so
// the RBF fit retains several hundred support vectors — the slab-walk
// regime the inference fast path is built for (mirrors the dataset of
// internal/svm's decision benchmarks).
func benchOverlapData(n, dim int, seed int64) (x [][]float64, y []float64) {
	rng := mathx.NewRand(seed)
	for i := 0; i < n; i++ {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		label := 1.0
		if i%2 == 0 {
			for j := range row {
				row[j] += 0.8
			}
			label = -1
		}
		x = append(x, row)
		y = append(y, label)
	}
	return x, y
}

func benchDecisionRBF(b *testing.B) {
	x, y := benchOverlapData(600, 5, 41)
	m, err := svm.Train(svm.DefaultConfig(), x, y)
	if err != nil {
		b.Fatal(err)
	}
	scratch := make([]float64, m.Dim())
	row := x[1]
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.DecisionInto(scratch, row)
	}
	_ = sink
}
