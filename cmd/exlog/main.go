// Command exlog decodes flight-recorder segments and reconstructs the
// gateway's post-mortem timeline: what ExBox admitted, rejected,
// retrained, snapshotted and alerted on — right up to the last
// fully-written frame before a crash. It reads a segment directory
// (-dir, as written by exboxd -flightdir) or individual segment files,
// merges and sorts the records, applies the filters, and prints one
// line per event (or JSON with -json).
//
// Usage:
//
//	exlog -dir /var/lib/exbox/flight
//	exlog -dir flight -cell ap0 -kind admission -verdict reject -since 5m
//	exlog -json flight/flight-current.exfr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"exbox/internal/obs/flightrec"
)

func main() {
	var (
		dir     = flag.String("dir", "", "flight-recorder segment directory (exboxd -flightdir)")
		cell    = flag.String("cell", "", "keep only this cell's events")
		kind    = flag.String("kind", "", "keep only this event kind (admission, health, retrain, snapshot, ringdrop, slobreach)")
		verdict = flag.String("verdict", "", "keep only admissions with this verdict (admit, reject, low-priority)")
		since   = flag.String("since", "", "keep events after this time (duration ago like 10m, or unix seconds)")
		until   = flag.String("until", "", "keep events before this time (duration ago, or unix seconds)")
		asJSON  = flag.Bool("json", false, "emit JSON lines instead of the human timeline")
	)
	flag.Parse()

	recs, err := collect(*dir, flag.Args())
	if err != nil {
		// A truncated live segment is the expected post-crash shape:
		// report it, keep the records that decoded.
		fmt.Fprintf(os.Stderr, "exlog: %v\n", err)
	}
	if recs == nil && err != nil && len(flag.Args()) == 0 && *dir == "" {
		os.Exit(2)
	}

	f := filter{
		cell:    *cell,
		kind:    flightrec.KindFromString(*kind),
		verdict: *verdict,
		since:   parseWhen(*since, time.Now()),
		until:   parseWhen(*until, time.Now()),
	}
	if *kind != "" && f.kind == 0 {
		fmt.Fprintf(os.Stderr, "exlog: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	for _, r := range recs {
		if !f.keep(r) {
			continue
		}
		if *asJSON {
			enc.Encode(jsonRecord(r))
			continue
		}
		fmt.Println(formatRecord(r))
	}
}

// collect merges a directory's segments with any explicitly named
// segment files.
func collect(dir string, files []string) ([]flightrec.DecodedRecord, error) {
	if dir == "" && len(files) == 0 {
		return nil, fmt.Errorf("nothing to decode: pass -dir or segment files")
	}
	var out []flightrec.DecodedRecord
	var firstErr error
	if dir != "" {
		recs, err := flightrec.ReadDir(dir)
		out, firstErr = recs, err
	}
	for _, p := range files {
		data, err := os.ReadFile(p)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		recs, err := flightrec.DecodeSegment(data)
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", p, err)
		}
		out = append(out, recs...)
	}
	return out, firstErr
}

// filter is the record predicate; zero fields match everything.
type filter struct {
	cell         string
	kind         flightrec.Kind
	verdict      string
	since, until int64
}

func (f filter) keep(r flightrec.DecodedRecord) bool {
	if f.cell != "" && r.CellName != f.cell {
		return false
	}
	if f.kind != 0 && r.Kind != f.kind {
		return false
	}
	if f.verdict != "" && (r.Kind != flightrec.KindAdmission || flightrec.VerdictString(r.Verdict) != f.verdict) {
		return false
	}
	if f.since != 0 && r.UnixNanos < f.since {
		return false
	}
	if f.until != 0 && r.UnixNanos > f.until {
		return false
	}
	return true
}

// parseWhen resolves a time filter: a Go duration means that-long-ago,
// a bare integer means unix seconds, empty means unbounded (0).
func parseWhen(s string, now time.Time) int64 {
	if s == "" {
		return 0
	}
	if d, err := time.ParseDuration(s); err == nil && d > 0 {
		return now.Add(-d).UnixNano()
	}
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil && sec > 0 {
		return sec * int64(time.Second)
	}
	fmt.Fprintf(os.Stderr, "exlog: unparseable time %q (want a duration like 10m or unix seconds)\n", s)
	os.Exit(2)
	return 0
}

// formatRecord renders one timeline line.
func formatRecord(r flightrec.DecodedRecord) string {
	ts := time.Unix(0, r.UnixNanos).UTC().Format("2006-01-02T15:04:05.000000Z")
	cell := r.CellName
	if cell == "" {
		cell = "-"
	}
	switch r.Kind {
	case flightrec.KindAdmission:
		boot := ""
		if r.Flags&flightrec.FlagBootstrap != 0 {
			boot = " bootstrap"
		}
		return fmt.Sprintf("%s admission cell=%s seq=%d verdict=%s margin=%+.6g depth=%.4g class=%d level=%d model=%d%s",
			ts, cell, r.Seq, flightrec.VerdictString(r.Verdict), r.Value, r.Aux, r.Class, r.Level, r.Model, boot)
	case flightrec.KindHealth:
		return fmt.Sprintf("%s health cell=%s status=%s previous=%s",
			ts, cell, statusName(r.Value), statusName(r.Aux))
	case flightrec.KindRetrain:
		return fmt.Sprintf("%s retrain cell=%s model=%d fit_seconds=%.6g", ts, cell, r.Model, r.Value)
	case flightrec.KindSnapshot:
		op := [...]string{"saved", "loaded", "rejected"}
		o := "unknown"
		if int(r.Verdict) < len(op) {
			o = op[r.Verdict]
		}
		return fmt.Sprintf("%s snapshot cell=%s op=%s fit_seq=%d", ts, cell, o, r.Model)
	case flightrec.KindRingDrop:
		return fmt.Sprintf("%s ringdrop drops=%g", ts, r.Value)
	case flightrec.KindSLOBreach:
		sev := statusName(float64(r.Verdict))
		return fmt.Sprintf("%s slobreach cell=%s severity=%s burn_fast=%.3g burn_slow=%.3g",
			ts, cell, sev, r.Value, r.Aux)
	default:
		return fmt.Sprintf("%s unknown kind=%d cell=%s value=%g", ts, r.Kind, cell, r.Value)
	}
}

func statusName(v float64) string {
	switch int(v) {
	case 0:
		return "green"
	case 1:
		return "yellow"
	case 2:
		return "red"
	default:
		return "unknown"
	}
}

// jsonRecord is the -json line shape: the decoded record with
// symbolic kind/verdict names alongside the raw fields.
func jsonRecord(r flightrec.DecodedRecord) map[string]interface{} {
	out := map[string]interface{}{
		"unix_nanos": r.UnixNanos,
		"kind":       r.Kind.String(),
		"cell":       r.CellName,
		"value":      r.Value,
		"aux":        r.Aux,
		"model":      r.Model,
	}
	if r.Kind == flightrec.KindAdmission {
		out["seq"] = r.Seq
		out["verdict"] = flightrec.VerdictString(r.Verdict)
		out["class"] = r.Class
		out["level"] = r.Level
		out["bootstrap"] = r.Flags&flightrec.FlagBootstrap != 0
	} else {
		out["verdict"] = r.Verdict
	}
	return out
}
