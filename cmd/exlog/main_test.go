package main

import (
	"strings"
	"testing"
	"time"

	"exbox/internal/obs/flightrec"
)

func adm(ts int64, cell string, seq uint64, verdict uint8) flightrec.DecodedRecord {
	return flightrec.DecodedRecord{
		Record: flightrec.Record{
			UnixNanos: ts, Seq: seq, Kind: flightrec.KindAdmission,
			Verdict: verdict, Value: -0.5, Aux: 0.25, Class: 1, Level: 0, Model: 7,
		},
		CellName: cell,
	}
}

// TestFilterKeep sweeps the record predicate: each filter alone and
// composed, with zero values matching everything.
func TestFilterKeep(t *testing.T) {
	r := adm(100, "ap0", 3, flightrec.VerdictReject)
	health := flightrec.DecodedRecord{
		Record:   flightrec.Record{UnixNanos: 200, Kind: flightrec.KindHealth, Value: 2},
		CellName: "ap0",
	}
	cases := []struct {
		name string
		f    filter
		rec  flightrec.DecodedRecord
		want bool
	}{
		{"zero filter", filter{}, r, true},
		{"cell match", filter{cell: "ap0"}, r, true},
		{"cell miss", filter{cell: "ap1"}, r, false},
		{"kind match", filter{kind: flightrec.KindAdmission}, r, true},
		{"kind miss", filter{kind: flightrec.KindRetrain}, r, false},
		{"verdict match", filter{verdict: "reject"}, r, true},
		{"verdict miss", filter{verdict: "admit"}, r, false},
		{"verdict on non-admission", filter{verdict: "reject"}, health, false},
		{"since keeps newer", filter{since: 50}, r, true},
		{"since drops older", filter{since: 150}, r, false},
		{"until keeps older", filter{until: 150}, r, true},
		{"until drops newer", filter{until: 50}, r, false},
		{"composed pass", filter{cell: "ap0", kind: flightrec.KindAdmission, verdict: "reject", since: 50, until: 150}, r, true},
		{"composed fail on one", filter{cell: "ap0", kind: flightrec.KindAdmission, verdict: "reject", since: 150}, r, false},
	}
	for _, tc := range cases {
		if got := tc.f.keep(tc.rec); got != tc.want {
			t.Errorf("%s: keep = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestParseWhen pins the -since/-until grammar (the garbage path calls
// os.Exit and is covered by the usage contract, not here).
func TestParseWhen(t *testing.T) {
	now := time.Unix(1000, 0)
	if got := parseWhen("", now); got != 0 {
		t.Fatalf("empty: %d", got)
	}
	if got := parseWhen("10m", now); got != now.Add(-10*time.Minute).UnixNano() {
		t.Fatalf("duration: %d", got)
	}
	if got := parseWhen("900", now); got != 900*int64(time.Second) {
		t.Fatalf("unix seconds: %d", got)
	}
}

// TestFormatRecord spot-checks one line per kind: the kind tag, the
// cell and the load-bearing fields must all render.
func TestFormatRecord(t *testing.T) {
	cases := []struct {
		rec  flightrec.DecodedRecord
		want []string
	}{
		{adm(1, "ap0", 3, flightrec.VerdictReject), []string{"admission", "cell=ap0", "seq=3", "verdict=reject", "margin=-0.5", "model=7"}},
		{
			flightrec.DecodedRecord{Record: flightrec.Record{Kind: flightrec.KindAdmission, Flags: flightrec.FlagBootstrap}},
			[]string{"admission", "cell=-", "bootstrap"},
		},
		{
			flightrec.DecodedRecord{Record: flightrec.Record{Kind: flightrec.KindHealth, Value: 2, Aux: 0}, CellName: "ap0"},
			[]string{"health", "status=red", "previous=green"},
		},
		{
			flightrec.DecodedRecord{Record: flightrec.Record{Kind: flightrec.KindRetrain, Model: 9, Value: 0.25}, CellName: "ap0"},
			[]string{"retrain", "model=9", "fit_seconds=0.25"},
		},
		{
			flightrec.DecodedRecord{Record: flightrec.Record{Kind: flightrec.KindSnapshot, Model: 4, Verdict: 2}, CellName: "ap0"},
			[]string{"snapshot", "op=rejected", "fit_seq=4"},
		},
		{
			flightrec.DecodedRecord{Record: flightrec.Record{Kind: flightrec.KindRingDrop, Value: 17}},
			[]string{"ringdrop", "drops=17"},
		},
		{
			flightrec.DecodedRecord{Record: flightrec.Record{Kind: flightrec.KindSLOBreach, Verdict: 1, Value: 3.5, Aux: 1.5}, CellName: "ap0"},
			[]string{"slobreach", "severity=yellow", "burn_fast=3.5", "burn_slow=1.5"},
		},
	}
	for _, tc := range cases {
		line := formatRecord(tc.rec)
		for _, frag := range tc.want {
			if !strings.Contains(line, frag) {
				t.Errorf("%s line %q missing %q", tc.rec.Kind, line, frag)
			}
		}
	}
}

// TestJSONRecord pins the -json shape: symbolic names plus the
// admission-only fields gated on the kind.
func TestJSONRecord(t *testing.T) {
	out := jsonRecord(adm(1, "ap0", 3, flightrec.VerdictAdmit))
	if out["kind"] != "admission" || out["verdict"] != "admit" || out["cell"] != "ap0" {
		t.Fatalf("admission json: %v", out)
	}
	if _, ok := out["seq"]; !ok {
		t.Fatalf("admission json missing seq: %v", out)
	}
	out = jsonRecord(flightrec.DecodedRecord{Record: flightrec.Record{Kind: flightrec.KindHealth, Value: 1}})
	if out["kind"] != "health" {
		t.Fatalf("health json: %v", out)
	}
	if _, ok := out["seq"]; ok {
		t.Fatalf("health json leaks admission fields: %v", out)
	}
}

// TestCollect merges a directory with explicit files and reports the
// no-input error.
func TestCollect(t *testing.T) {
	if _, err := collect("", nil); err == nil {
		t.Fatal("no inputs must error")
	}
	if _, err := collect("", []string{"/nonexistent/segment.exfr"}); err == nil {
		t.Fatal("missing file must error")
	}
}
