package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"exbox/internal/classifier"
	"exbox/internal/excr"
	"exbox/internal/flows"
	"exbox/internal/obs"
	"exbox/internal/obs/trace"
)

func scrape(t *testing.T, base, path string) string {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	return string(body)
}

// metricValue pulls one scalar from a /metrics page.
func metricValue(page, name string) float64 {
	for _, line := range strings.Split(page, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				return v
			}
		}
	}
	return 0
}

// TestGatewayTelemetryEndToEnd boots the real gateway datapath with
// its telemetry endpoints on ephemeral ports, drives UDP flows long
// enough for admission decisions, and checks that the decisions are
// visible on /metrics, in the audit ring, and on the debug endpoints
// — the same wiring `exboxd -http :9090` serves.
func TestGatewayTelemetryEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	gw, err := newGateway("127.0.0.1:0", excr.DefaultSpace, 8, gatewayOptions{warmStart: true}, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()

	done := make(chan struct{})
	var loops sync.WaitGroup
	gw.spawn(done, &loops)
	defer func() {
		close(done)
		loops.Wait()
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: reg.ServeMux()}
	go srv.Serve(ln)
	defer srv.Close()
	reg.PublishExpvar("exbox")
	base := "http://" + ln.Addr().String()

	// Four clients, each sending enough packets to fill the head
	// (HeadCap is 10) and force an admission decision.
	const clients, packets = 4, 14
	payload := make([]byte, 400)
	payload[0] = 'U'
	for c := 0; c < clients; c++ {
		conn, err := net.DialUDP("udp", nil, gw.conn.LocalAddr().(*net.UDPAddr))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < packets; p++ {
			if _, err := conn.Write(payload); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond) // don't overrun the socket buffer
		}
		conn.Close()
	}

	deadline := time.Now().Add(10 * time.Second)
	for gw.admitted.Value()+gw.rejected.Value() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d/%d flows decided", gw.admitted.Value()+gw.rejected.Value(), clients)
		}
		time.Sleep(20 * time.Millisecond)
	}

	page := scrape(t, base, "/metrics")
	if got := metricValue(page, "exbox_gw_admitted_flows_total") + metricValue(page, "exbox_gw_rejected_flows_total"); got < clients {
		t.Fatalf("gateway decisions on /metrics = %v, want >= %d", got, clients)
	}
	if metricValue(page, "exbox_gw_forwarded_packets_total") <= 0 {
		t.Fatal("no forwarded packets on /metrics")
	}
	if got := metricValue(page, "exbox_cell_ap0_admit_total") + metricValue(page, "exbox_cell_ap0_reject_total"); got < clients {
		t.Fatalf("cell verdicts on /metrics = %v, want >= %d", got, clients)
	}
	if metricValue(page, "exbox_cell_ap0_clf_training_size") <= 0 {
		t.Fatal("classifier training-size gauge missing from /metrics")
	}
	if !strings.Contains(page, "exbox_admit_seconds_bucket{le=") {
		t.Fatal("admission-latency histogram missing from /metrics")
	}
	if metricValue(page, "exbox_flows_tracked_flows") <= 0 {
		t.Fatal("flow-table occupancy gauge missing from /metrics")
	}

	ring := gw.mb.AuditRing()
	if ring == nil || ring.Len() < clients {
		t.Fatalf("audit ring should hold the decisions, len=%d", ring.Len())
	}
	for _, rec := range ring.Snapshot() {
		if rec.Cell != string(cellID) || rec.Verdict == "" {
			t.Fatalf("malformed audit record: %+v", rec)
		}
	}
	if body := scrape(t, base, "/debug/admissions"); !strings.Contains(body, `"cell":"ap0"`) {
		t.Fatalf("/debug/admissions missing decisions: %.200s", body)
	}
	if body := scrape(t, base, "/debug/vars"); !strings.Contains(body, `"exbox"`) {
		t.Fatal("/debug/vars missing the published registry")
	}
	if body := scrape(t, base, "/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}

// TestGatewayTracingAndHealthEndToEnd boots the gateway with tracing
// on (sampling every flow), scrapes /metrics, /debug/traces and
// /debug/health concurrently with a live packet workload — the race
// detector covers the tracer's lock-free ring against the datapath —
// then forces a rejection (by pre-inflating the admitted matrix) and
// an expiry sweep, and checks /debug/traces serves at least one
// complete rejected-flow lifecycle and /debug/health a verdict.
func TestGatewayTracingAndHealthEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := trace.New(64, 1)
	gw, err := newGateway("127.0.0.1:0", excr.DefaultSpace, 8, gatewayOptions{warmStart: true}, reg, tracer)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()

	// Pre-inflate the admitted matrix with phantom flows in every class
	// so the real arrivals classify against a saturated cell and get
	// rejected whatever class the traffic classifier assigns them.
	for i := 0; i < 120; i++ {
		k := flows.Key{Src: "10.9.9.9", Dst: "sink", SrcPort: uint16(20000 + i), DstPort: 9, Proto: flows.UDP}
		gw.table.Do(k, func(tb *flows.Table) {
			f := tb.Observe(k, flows.PacketMeta{Time: 0, Bytes: 100, Up: true})
			f.Class, f.Classified = excr.AppClass(i%3), true
			f.Decided, f.Admitted = true, true
			gw.table.TrackAdmitted(f)
		})
	}
	// The bootstrap fit never saw matrices this crowded, so teach the
	// classifier the saturated region: oracle-labeled samples around the
	// inflated matrix (all negative — the cell is overrun), then a
	// synchronous retrain so the workload's decisions see the boundary.
	current := gw.table.Matrix()
	for i := 0; i < 30; i++ {
		m := current
		for j := 0; j < i%5; j++ {
			m = m.Dec(excr.AppClass(j%3), 0)
		}
		arr := excr.Arrival{Matrix: m, Class: excr.AppClass(i % 3), Level: 0}
		if err := gw.mb.Observe(cellID, excr.Sample{Arrival: arr, Label: gw.oracle.Label(arr)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.mb.Cell(cellID).Classifier.Retrain(); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var loops sync.WaitGroup
	gw.spawn(done, &loops)
	defer func() {
		close(done)
		loops.Wait()
	}()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: reg.ServeMux()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Scrapers race the packet workers for the whole workload.
	stopScrape := make(chan struct{})
	var scrapers sync.WaitGroup
	for i := 0; i < 3; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				for _, p := range []string{"/metrics", "/debug/traces", "/debug/health"} {
					if resp, err := http.Get(base + p); err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}()
	}

	const clients, packets = 4, 14
	payload := make([]byte, 400)
	payload[0] = 'U'
	for c := 0; c < clients; c++ {
		conn, err := net.DialUDP("udp", nil, gw.conn.LocalAddr().(*net.UDPAddr))
		if err != nil {
			t.Fatal(err)
		}
		for p := 0; p < packets; p++ {
			if _, err := conn.Write(payload); err != nil {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		conn.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for gw.rejected.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for a rejection (admitted=%d rejected=%d)",
				gw.admitted.Value(), gw.rejected.Value())
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(stopScrape)
	scrapers.Wait()

	// Force every flow to expire so rejected traces complete with their
	// observe/expiry spans, then check the exported lifecycle.
	gw.sweep(1e9, new(classifier.Scratch))
	gw.checkHealth()

	body := scrape(t, base, "/debug/traces?verdict=reject")
	var views []trace.View
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatalf("/debug/traces: %v (%.200s)", err, body)
	}
	if len(views) == 0 {
		t.Fatalf("no rejected traces on /debug/traces: %.300s", scrape(t, base, "/debug/traces"))
	}
	complete := false
	for _, v := range views {
		if !v.Complete {
			continue
		}
		kinds := map[trace.SpanKind]bool{}
		var model uint64
		for _, sp := range v.Spans {
			kinds[sp.Kind] = true
			if sp.Kind == trace.KindDecision {
				model = sp.Model
			}
		}
		if kinds[trace.KindArrival] && kinds[trace.KindDecision] && kinds[trace.KindExpiry] && model > 0 {
			complete = true
		}
	}
	if !complete {
		t.Fatalf("no complete rejected trace (arrival+decision+expiry with model version): %+v", views)
	}

	health := scrape(t, base, "/debug/health")
	var rep struct {
		Status string `json:"status"`
		Cells  []struct {
			Cell         string `json:"cell"`
			ModelVersion uint64 `json:"model_version"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(health), &rep); err != nil {
		t.Fatalf("/debug/health: %v (%.200s)", err, health)
	}
	if rep.Status == "" || len(rep.Cells) != 1 || rep.Cells[0].Cell != string(cellID) {
		t.Fatalf("unexpected /debug/health payload: %.300s", health)
	}
	if got := metricValue(scrape(t, base, "/metrics"), "exbox_health_status"); got < 0 || got > 2 {
		t.Fatalf("exbox_health_status gauge out of range: %v", got)
	}
}

// TestSNRStablePerClient pins the per-client SNR contract: every flow
// from one client address must land in the same SNR bin regardless of
// source port (link quality belongs to the host, not the socket).
func TestSNRStablePerClient(t *testing.T) {
	ip := net.ParseIP("10.1.2.3")
	want := snrFor(&net.UDPAddr{IP: ip, Port: 1000})
	for port := 1001; port < 1064; port++ {
		if got := snrFor(&net.UDPAddr{IP: ip, Port: port}); got != want {
			t.Fatalf("client SNR changed with source port %d: %v != %v", port, got, want)
		}
	}
}

// TestValidateFlags sweeps the fail-fast flag validation: every
// rejected combination names the offending flag, every sane one
// passes.
func TestValidateFlags(t *testing.T) {
	// sane holds the passing default for every argument; each case
	// overrides what it sweeps so new flags don't rewrite the table.
	type args struct {
		workers, shards, traceSample, traceBuf int
		rffDim, burst, ringSize, latSample     int
		rffAgreement, sloObj                   float64
		tsRes, tsRetain, sloWindow             time.Duration
	}
	sane := args{4, 32, 16, 256, 256, 64, 1024, 16, 0.9, 0.99, time.Second, 15 * time.Minute, 15 * time.Minute}
	cases := []struct {
		name    string
		mut     func(*args)
		wantErr string
	}{
		{"defaults", func(*args) {}, ""},
		{"tracing off", func(a *args) { a.traceSample = 0 }, ""},
		{"tracing off zero buf", func(a *args) { a.traceSample, a.traceBuf = 0, 0 }, ""},
		{"negative tracesample", func(a *args) { a.traceSample = -1 }, "-tracesample"},
		{"negative tracebuf", func(a *args) { a.traceBuf = -1 }, "-tracebuf"},
		{"zero tracebuf while tracing", func(a *args) { a.traceBuf = 0 }, "-tracebuf"},
		{"zero workers", func(a *args) { a.workers = 0 }, "-workers"},
		{"zero shards", func(a *args) { a.shards = 0 }, "-shards"},
		{"rffdim zero", func(a *args) { a.rffDim = 0 }, "-rffdim"},
		{"rffdim one", func(a *args) { a.rffDim = 1 }, "-rffdim"},
		{"rffdim minimal", func(a *args) { a.rffDim = 2 }, ""},
		{"agreement zero", func(a *args) { a.rffAgreement = 0 }, "-rffagreement"},
		{"agreement negative", func(a *args) { a.rffAgreement = -0.5 }, "-rffagreement"},
		{"agreement above one", func(a *args) { a.rffAgreement = 1.5 }, "-rffagreement"},
		{"agreement one", func(a *args) { a.rffAgreement = 1 }, ""},
		{"zero burst", func(a *args) { a.burst = 0 }, "-burst"},
		{"negative burst", func(a *args) { a.burst = -1 }, "-burst"},
		{"burst of one", func(a *args) { a.burst = 1 }, ""},
		{"ring smaller than burst", func(a *args) { a.ringSize = 32 }, "-ringsize"},
		{"ring equals burst", func(a *args) { a.ringSize = 64 }, ""},
		{"zero latsample", func(a *args) { a.latSample = 0 }, "-latsample"},
		{"negative latsample", func(a *args) { a.latSample = -4 }, "-latsample"},
		{"latsample every admission", func(a *args) { a.latSample = 1 }, ""},
		{"sloobj zero", func(a *args) { a.sloObj = 0 }, "-sloobj"},
		{"sloobj one", func(a *args) { a.sloObj = 1 }, "-sloobj"},
		{"sloobj three nines", func(a *args) { a.sloObj = 0.999 }, ""},
		{"zero tsres", func(a *args) { a.tsRes = 0 }, "-tsres"},
		{"negative tsres", func(a *args) { a.tsRes = -time.Second }, "-tsres"},
		{"retention below resolution", func(a *args) { a.tsRetain = time.Millisecond }, "-tsretain"},
		{"coarse timeline", func(a *args) { a.tsRes, a.tsRetain = 10*time.Second, time.Hour }, ""},
		{"slo window too short", func(a *args) { a.sloWindow = 10 * time.Second }, "-slowindow"},
		{"slo window minimum", func(a *args) { a.sloWindow = 15 * time.Second }, ""},
	}
	for _, tc := range cases {
		a := sane
		tc.mut(&a)
		err := validateFlags(a.workers, a.shards, a.traceSample, a.traceBuf, a.rffDim, a.burst, a.ringSize, a.latSample, a.rffAgreement, a.sloObj, a.tsRes, a.tsRetain, a.sloWindow)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %v, want mention of %s", tc.name, err, tc.wantErr)
		}
	}
}

// TestGatewayRFFOptions boots the gateway with the RFF tier enabled
// and checks the wiring end to end: the custom demotion threshold
// survives Instrument (EnableHealth is first-call-wins), the
// bootstrap fit ships a tier, and the per-cell rff metrics exist.
func TestGatewayRFFOptions(t *testing.T) {
	reg := obs.NewRegistry()
	gw, err := newGateway("127.0.0.1:0", excr.DefaultSpace, 8,
		gatewayOptions{warmStart: true, rff: true, rffDim: 128, rffAgreement: 0.5}, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer gw.close()
	clf := gw.mb.Cell(cellID).Classifier
	if !clf.HealthEnabled() {
		t.Fatal("health monitoring not enabled")
	}
	snap, ok := clf.HealthSnapshot()
	if !ok {
		t.Fatal("no health snapshot")
	}
	if !snap.RFFActive || snap.RFFDemoted {
		t.Fatalf("bootstrap fit did not publish an active tier: %+v", snap)
	}
	rep := gw.mb.Health()
	found := false
	for _, chk := range rep.Cells[0].Checks {
		if chk.Name == "rff_tier" {
			found = true
		}
	}
	if !found {
		t.Fatalf("rff_tier check missing from /debug/health: %+v", rep.Cells[0].Checks)
	}
	if reg.Counter("exbox_cell_ap0_clf_rff_demotions_total").Value() != 0 {
		t.Fatal("spurious demotion on the bootstrap fit")
	}
}
