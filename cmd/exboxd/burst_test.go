package main

import (
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"runtime"
	"sort"
	"testing"

	"exbox/internal/excr"
	"exbox/internal/flows"
	"exbox/internal/obs"
)

// burstGateway builds a deterministic gateway for the burst tests: the
// fixed training seed inside newGateway means two calls yield
// bit-identical models, so the per-packet and burst paths can be
// compared across separate instances. No goroutines are spawned — the
// tests drive processBurst directly.
func burstGateway(t testing.TB, shards int) *gateway {
	t.Helper()
	reg := obs.NewRegistry()
	gw, err := newGateway("127.0.0.1:0", excr.DefaultSpace, shards, gatewayOptions{
		warmStart: true, workers: 1, burst: 64, ringSize: 1024,
		// Inline fits: with the background retrainer, the model version
		// a decision sees would depend on retrain timing, and two
		// gateway instances would not be bit-comparable.
		syncRetrain: true,
	}, reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.close)
	gw.noForwardIO = true
	return gw
}

// burstPackets synthesizes a deterministic interleaved packet stream:
// nFlows clients sending perFlow packets each, round-robin, so every
// burst mixes flows at different lifecycle stages (filling heads,
// classification-ready, decided).
func burstPackets(gw *gateway, nFlows, perFlow int) []pkt {
	clients := make([]*clientEntry, nFlows)
	for fl := range clients {
		clients[fl] = internTestClient(gw, fl)
	}
	var out []pkt
	tm := 0.0
	for p := 0; p < perFlow; p++ {
		for fl := 0; fl < nFlows; fl++ {
			tm += 0.0003
			out = append(out, pkt{
				ce:   clients[fl],
				meta: flows.PacketMeta{Time: tm, Bytes: 200 + 97*((p+fl)%7), Up: (p+fl)%3 == 0},
			})
		}
	}
	return out
}

// testClientSrc is the synthetic client address for client number fl.
func testClientSrc(fl int) *net.UDPAddr {
	return &net.UDPAddr{IP: net.IPv4(10, byte(fl/200), byte(fl%200+1), 7), Port: 40000 + fl}
}

// internTestClient mirrors the read loop's client interning for the
// synthetic client numbered fl.
func internTestClient(gw *gateway, fl int) *clientEntry {
	return newInterner(gw).get(testClientSrc(fl))
}

// flowStateString flattens the table's decided/admitted state into a
// sorted, comparable string.
func flowStateString(gw *gateway) string {
	active := gw.table.Active()
	lines := make([]string, 0, len(active))
	for _, f := range active {
		lines = append(lines, fmt.Sprintf("%v classified=%v class=%v decided=%v admitted=%v pkts=%d",
			f.Key, f.Classified, f.Class, f.Decided, f.Admitted, f.Packets))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}

// TestBurstSizeInvariance is the gateway-level determinism check the
// issue asks for: the same packet sequence chopped into bursts of 1
// (the per-packet limit of the pipeline) and bursts of 32 must produce
// bit-identical admission decisions, audit-ring contents, counters and
// flow states. One shard keeps the grouped visit order equal to
// arrival order so the two runs are comparable packet for packet.
func TestBurstSizeInvariance(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)

	gwA := burstGateway(t, 1)
	gwB := burstGateway(t, 1)
	pktsA := burstPackets(gwA, 48, 14)
	pktsB := burstPackets(gwB, 48, 14)

	wsA := newWorkerState(64)
	for i := range pktsA {
		gwA.processBurst(wsA, pktsA[i:i+1])
	}
	wsB := newWorkerState(64)
	for off := 0; off < len(pktsB); off += 32 {
		end := off + 32
		if end > len(pktsB) {
			end = len(pktsB)
		}
		gwB.processBurst(wsB, pktsB[off:end])
	}

	for _, c := range []struct {
		name string
		a, b *obs.Counter
	}{
		{"admitted", gwA.admitted, gwB.admitted},
		{"rejected", gwA.rejected, gwB.rejected},
		{"forwarded", gwA.forwarded, gwB.forwarded},
		{"dropped", gwA.dropped, gwB.dropped},
	} {
		if c.a.Value() != c.b.Value() {
			t.Errorf("%s diverged: per-packet %d, burst %d", c.name, c.a.Value(), c.b.Value())
		}
	}
	if gwA.admitted.Value() == 0 {
		t.Fatal("workload produced no admissions; the invariance check is vacuous")
	}
	if gwA.rejected.Value() == 0 {
		t.Fatal("workload produced no rejections; the burst cascade was never exercised")
	}

	ra, rb := gwA.reg.Ring().Snapshot(), gwB.reg.Ring().Snapshot()
	if len(ra) != len(rb) {
		t.Fatalf("audit ring length diverged: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		a, b := ra[i], rb[i]
		a.UnixNanos, b.UnixNanos = 0, 0
		if a != b {
			t.Fatalf("audit record %d diverged:\nper-packet %+v\nburst      %+v", i, ra[i], rb[i])
		}
	}

	if sa, sb := flowStateString(gwA), flowStateString(gwB); sa != sb {
		t.Fatalf("flow states diverged:\nper-packet:\n%s\nburst:\n%s", sa, sb)
	}
}

// datagram is one raw ingest event as the benchmarks' producers see
// it: the client address and the packet metadata, nothing derived. The
// per-packet baseline and the burst pipeline both start from this —
// the work each path does to get from an address to an accounted flow
// is exactly what the benchmark compares.
type datagram struct {
	src  *net.UDPAddr
	meta flows.PacketMeta
}

// perPacketHandle replicates the committed pre-burst datapath (the old
// gateway.handle, see git history): the flow key is built from the
// source address on every packet — one IP-string allocation each —
// then one locked table visit, classification and a single-arrival
// admission inside the visit, forward verdict settled synchronously.
func perPacketHandle(g *gateway, src *net.UDPAddr, meta flows.PacketMeta, ws *workerState) {
	key := flows.Key{
		Src: src.IP.String(), Dst: "sink",
		SrcPort: uint16(src.Port), DstPort: 9, Proto: flows.UDP,
	}
	var fwd bool
	g.table.Do(key, func(t *flows.Table) {
		f := t.Observe(key, meta)
		if f.Packets == 1 {
			f.SNR = snrFor(src)
		}
		if f.ReadyToClassify(t.HeadCap) {
			g.classifyAndDecide(f, ws.burst.Clf())
		}
		fwd = !(f.Decided && !f.Admitted)
	})
	if fwd {
		g.forwarded.Inc()
	} else {
		g.dropped.Inc()
	}
}

// ingestWorkload returns a steady-state round of UDP-shaped traffic:
// nFlows long-lived flows, already past their head and decided during
// warmup, each contributing one train of trainLen back-to-back packets
// per round — the per-flow burstiness real UDP sources (video frames,
// voice packetization) produce on the wire.
func ingestWorkload(tb testing.TB, gw *gateway, nFlows, trainLen int, warm func([]datagram)) []datagram {
	var warmup []datagram
	tm := 0.0
	for p := 0; p < 12; p++ {
		for fl := 0; fl < nFlows; fl++ {
			tm += 0.0003
			warmup = append(warmup, datagram{
				src:  testClientSrc(fl),
				meta: flows.PacketMeta{Time: tm, Bytes: 200 + 97*((p+fl)%7), Up: (p+fl)%3 == 0},
			})
		}
	}
	warm(warmup)
	if gw.admitted.Value()+gw.rejected.Value() == 0 {
		tb.Fatal("warmup decided no flows")
	}
	var round []datagram
	tm = 100.0
	for fl := 0; fl < nFlows; fl++ {
		src := testClientSrc(fl)
		for p := 0; p < trainLen; p++ {
			tm += 0.0001
			round = append(round, datagram{
				src:  src,
				meta: flows.PacketMeta{Time: tm, Bytes: 200 + 97*((p+fl)%7), Up: (p+fl)%3 == 0},
			})
		}
	}
	return round
}

// BenchmarkIngestPerPacket is the per-packet baseline: each datagram
// is handed off once (the channel stands in for the shared-socket
// serialization of the old design, charitably — a real recvfrom costs
// far more) and handled by the committed pre-burst datapath, key
// construction, locked table visit and single-arrival admission
// included.
func BenchmarkIngestPerPacket(b *testing.B) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	gw := burstGateway(b, 32)
	ws := newWorkerState(64)
	round := ingestWorkload(b, gw, 64, 16, func(warmup []datagram) {
		for _, d := range warmup {
			perPacketHandle(gw, d.src, d.meta, ws)
		}
	})
	ch := make(chan datagram, 256)
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		j := 0
		for i := 0; i < b.N; i++ {
			ch <- round[j]
			if j++; j == len(round) {
				j = 0
			}
		}
		close(ch)
	}()
	for d := range ch {
		perPacketHandle(gw, d.src, d.meta, ws)
	}
}

// BenchmarkIngestBurst is the burst-batched datapath on the identical
// workload: the producer interns each datagram's client and publishes
// into the worker's MPSC ring with the production wake protocol
// (exactly what readLoop does after the socket read), the consumer
// drains bursts and runs processBurst. The acceptance bar is >= 3x the
// per-packet baseline's ops/sec.
func BenchmarkIngestBurst(b *testing.B) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	gw := burstGateway(b, 32)
	ws := newWorkerState(64)
	in := newInterner(gw)
	round := ingestWorkload(b, gw, 64, 16, func(warmup []datagram) {
		var pkts []pkt
		for _, d := range warmup {
			pkts = append(pkts, pkt{ce: in.get(d.src), meta: d.meta})
		}
		for off := 0; off < len(pkts); off += 64 {
			end := off + 64
			if end > len(pkts) {
				end = len(pkts)
			}
			gw.processBurst(ws, pkts[off:end])
		}
	})
	r, wakeCh := gw.rings[0], gw.wake[0]
	b.ReportAllocs()
	b.ResetTimer()
	go func() {
		j := 0
		for i := 0; i < b.N; i++ {
			d := &round[j]
			if j++; j == len(round) {
				j = 0
			}
			p := pkt{ce: in.get(d.src), meta: d.meta}
			for {
				pushed, wake := r.TryPushWake(p)
				if pushed {
					if wake {
						select {
						case wakeCh <- struct{}{}:
						default:
						}
					}
					break
				}
				// Full ring: make sure the consumer is awake, then yield.
				select {
				case wakeCh <- struct{}{}:
				default:
				}
				runtime.Gosched()
			}
		}
	}()
	drained := 0
	for drained < b.N {
		n := r.Drain(ws.pkts)
		if n == 0 {
			<-wakeCh
			continue
		}
		gw.processBurst(ws, ws.pkts[:n])
		drained += n
	}
}
